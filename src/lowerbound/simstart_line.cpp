#include "lowerbound/simstart_line.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "lowerbound/line_drift.hpp"
#include "lowerbound/transition_digraph.hpp"
#include "tree/builders.hpp"

namespace rvt::lowerbound {

SimStartInstance build_simstart_instance(const sim::LineAutomaton& a,
                                         std::uint64_t gamma_cap,
                                         std::uint64_t horizon) {
  a.validate();
  const std::uint64_t K = static_cast<std::uint64_t>(a.num_states());
  SimStartInstance out;

  const TransitionDigraph digraph = analyze_pi_prime(a);
  out.gamma = digraph.gamma(gamma_cap);
  if (out.gamma >= gamma_cap) {
    out.gamma_overflow = true;
    return out;
  }

  const PhaseDrift d0 = analyze_drift(a, 0);
  const PhaseDrift d1 = analyze_drift(a, 1);
  if (!d0.unbounded && !d1.unbounded) {
    out.bounded_case = true;
    const std::int64_t D = std::max(d0.max_abs_pos, d1.max_abs_pos) + 1;
    out.range_d = D;
    const tree::NodeId edges = static_cast<tree::NodeId>(4 * D + 4);
    out.line = tree::line_edge_colored(edges + 1, 0);
    out.u = static_cast<tree::NodeId>(D + 1);
    out.v = static_cast<tree::NodeId>(3 * D + 2);
    sim::LineAutomatonAgent agent_u(a, "victim-u"), agent_v(a, "victim-v");
    out.verdict =
        verify_never_meet(out.line, agent_u, agent_v,
                          {out.u, out.v, 0, 0,
                           std::max<std::uint64_t>(horizon, 4)});
    out.construction_ok = !out.verdict.met && out.verdict.certified_forever;
    return out;
  }

  // Unbounded branch. Agent A sits at abs position 0 with phase 0; agent
  // A' at abs 1; by the mirror symmetry of that placement rel'(t) =
  // -rel(t), so one simulation provides both trajectories.
  // A must itself be unbounded under phase 0: if only phase 1 drifts,
  // swap the roles by re-coloring (phase flip == placing the pair on the
  // other edge parity), which is the same automaton on the mirrored line;
  // we simply run the analysis with the drifting phase and color the
  // finite line accordingly.
  const int phase = d0.unbounded ? 0 : 1;

  const std::uint64_t threshold = 2 * out.gamma + 2 * K;
  std::vector<std::int64_t> pos;  // pos[r] = position after tick r+1
  sim::ZLineSim sim(a, phase);
  std::uint64_t t0 = 0;
  int state_t0 = -1;
  const std::uint64_t t0_cap =
      (threshold + 2) * (4 * K + 8) + 4 * K + 8;
  while (true) {
    const auto s = sim.tick();
    pos.push_back(s.pos);
    if (static_cast<std::uint64_t>(std::llabs(s.pos)) >= threshold) {
      t0 = s.round;
      state_t0 = s.state;
      break;
    }
    if (s.round > t0_cap) return out;  // should not happen when unbounded
  }
  const int ci = digraph.circuit_of[state_t0];
  if (ci < 0) return out;  // t0 >= K guarantees circuit membership
  const std::uint64_t clen = digraph.circuits[ci].size();

  // Extreme position of circuit C_i starting at t0.
  std::vector<std::int64_t> u_pos{pos.back()};  // u_0 .. u_clen
  for (std::uint64_t j = 0; j < clen; ++j) {
    const auto s = sim.tick();
    pos.push_back(s.pos);
    u_pos.push_back(s.pos);
  }
  const std::int64_t drift = u_pos.back() - u_pos.front();
  if (drift == 0) return out;  // not the drifting circuit (unexpected)
  const int sigma = drift > 0 ? 1 : -1;
  std::int64_t best = 0;
  for (std::uint64_t j = 0; j <= clen; ++j) {
    best = std::max(best, sigma * (u_pos[j] - u_pos[0]));
  }
  std::uint64_t jstar = 0;
  for (std::uint64_t j = 1; j <= clen; ++j) {
    if (sigma * (u_pos[j] - u_pos[0]) == best) {
      jstar = j;
      break;
    }
  }
  if (jstar == 0) return out;
  out.t0 = t0;
  out.tau = t0 + jstar;
  out.x = std::llabs(u_pos[jstar]);

  // Advance to tau' = tau + 2*gamma for x'.
  while (pos.size() < out.tau + 2 * out.gamma) {
    pos.push_back(sim.tick().pos);
  }
  out.x_prime = std::llabs(pos[out.tau + 2 * out.gamma - 1]);
  if (out.x_prime <= out.x) return out;  // paper guarantees >, bail if not

  // Build the finite line: x + 1 + x' edges. Map infinite coordinates onto
  // it so that the drifting direction of A points into its x-edge section.
  const std::int64_t x = out.x, xp = out.x_prime;
  const std::int64_t num_edges = x + 1 + xp;
  std::int64_t a_node, b_node;
  int fc;
  // A's absolute drift direction: rel drift is sigma; with phase flip the
  // mapping below keeps the e-edge color equal to the color A saw between
  // itself and A' in the infinite placement.
  if (sigma < 0) {
    a_node = x;       // A's section: nodes 0..x (x edges) to its left
    b_node = x + 1;
    fc = static_cast<int>(((x + phase) % 2 + 2) % 2);
  } else {
    a_node = xp + 1;  // orientation reversed: A's section to its right
    b_node = xp;
    fc = static_cast<int>(((xp + phase) % 2 + 2) % 2);
  }
  out.line = tree::line_edge_colored(
      static_cast<tree::NodeId>(num_edges + 1), fc);
  out.u = static_cast<tree::NodeId>(a_node);
  out.v = static_cast<tree::NodeId>(b_node);

  sim::LineAutomatonAgent agent_u(a, "victim-u"), agent_v(a, "victim-v");
  out.verdict = verify_never_meet(out.line, agent_u, agent_v,
                                  {out.u, out.v, 0, 0, horizon});
  out.construction_ok = !out.verdict.met && out.verdict.certified_forever;
  return out;
}

}  // namespace rvt::lowerbound

#include "lowerbound/arbdelay_line.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "lowerbound/line_drift.hpp"
#include "tree/builders.hpp"

namespace rvt::lowerbound {

namespace {

struct ZEvent {
  std::uint64_t round;
  std::int64_t pos_before;
  int state;
};

/// Move events of the automaton on the infinite line (phase-colored),
/// capped at `max_events` or `max_rounds`.
std::vector<ZEvent> z_events(const sim::LineAutomaton& a, int phase,
                             std::size_t max_events,
                             std::uint64_t max_rounds) {
  sim::ZLineSim sim(a, phase);
  std::vector<ZEvent> ev;
  std::int64_t prev = 0;
  for (std::uint64_t r = 0; r < max_rounds && ev.size() < max_events; ++r) {
    const auto s = sim.tick();
    if (s.action != sim::kStay) {
      ev.push_back({s.round, prev, s.state});
    }
    prev = s.pos;
  }
  return ev;
}

ArbDelayInstance bounded_instance(const sim::LineAutomaton& a,
                                  std::int64_t d_bound,
                                  std::uint64_t horizon) {
  ArbDelayInstance out;
  out.bounded_case = true;
  const std::int64_t D = d_bound + 1;  // margin
  out.range_d = D;
  const tree::NodeId edges = static_cast<tree::NodeId>(4 * D + 4);
  out.line = tree::line_edge_colored(edges + 1, 0);
  out.u = static_cast<tree::NodeId>(D + 1);
  out.v = static_cast<tree::NodeId>(3 * D + 2);
  out.theta = 0;
  sim::LineAutomatonAgent agent_u(a, "victim-u"), agent_v(a, "victim-v");
  out.verdict = verify_never_meet(
      out.line, agent_u, agent_v,
      {out.u, out.v, out.theta, 0, std::max<std::uint64_t>(horizon, 4)});
  out.construction_ok = !out.verdict.met && out.verdict.certified_forever;
  return out;
}

}  // namespace

ArbDelayInstance build_arbdelay_instance(const sim::LineAutomaton& a,
                                         std::uint64_t horizon) {
  a.validate();
  const int K = a.num_states();
  const PhaseDrift d0 = analyze_drift(a, 0);
  const PhaseDrift d1 = analyze_drift(a, 1);

  if (!d0.unbounded && !d1.unbounded) {
    return bounded_instance(a, std::max(d0.max_abs_pos, d1.max_abs_pos),
                            horizon);
  }
  const int phase = d0.unbounded ? 0 : 1;

  // Find (t1, x1, s) and (t2, x2 = x1 + r, s) with r even and nonzero.
  const std::size_t max_events = static_cast<std::size_t>(K) * 8 + 64;
  const std::uint64_t max_rounds =
      (static_cast<std::uint64_t>(K) * 8 + 64) *
      (static_cast<std::uint64_t>(K) * 4 + 8);
  const std::vector<ZEvent> ev = z_events(a, phase, max_events, max_rounds);

  std::size_t i_found = ev.size(), j_found = ev.size();
  for (std::size_t i = 0; i < ev.size() && i_found == ev.size(); ++i) {
    for (std::size_t j = i + 1; j < ev.size(); ++j) {
      if (ev[j].state != ev[i].state) continue;
      const std::int64_t gap = ev[j].pos_before - ev[i].pos_before;
      if (gap == 0 || (gap % 2) != 0) continue;
      i_found = i;
      j_found = j;
      break;
    }
  }
  ArbDelayInstance out;
  if (i_found == ev.size()) return out;  // construction_ok == false

  const std::int64_t x1_rel = ev[i_found].pos_before;
  const std::int64_t r = ev[j_found].pos_before - x1_rel;
  const std::uint64_t t1 = ev[i_found].round;
  const std::uint64_t t2 = ev[j_found].round;

  // Maximum deviation of the walk from its start through round t2, to size
  // the line so neither single-agent trajectory touches an endpoint early.
  std::int64_t maxdev = 0;
  {
    sim::ZLineSim sim(a, phase);
    for (std::uint64_t rr = 0; rr < t2; ++rr) {
      const auto s = sim.tick();
      maxdev = std::max<std::int64_t>(maxdev, std::llabs(s.pos));
    }
  }

  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::int64_t margin = (maxdev + std::llabs(r) + 4) << attempt;
    std::int64_t num_edges = 2 * margin + 2 * (2 * (K + 1)) + 1;
    if (num_edges % 2 == 0) ++num_edges;
    const std::int64_t m = (num_edges - 1) / 2;  // central edge index
    const int fc = static_cast<int>(m % 2);
    // u parity so that the u-agent sees its right edge in color == phase.
    std::int64_t u_abs = margin + 1;
    if (((u_abs + fc) % 2 + 2) % 2 != phase) ++u_abs;
    const std::int64_t v_abs = num_edges - (u_abs - r);
    if (v_abs <= 0 || v_abs > num_edges || v_abs == u_abs) continue;

    const tree::Tree line =
        tree::line_symmetric_colored(static_cast<tree::NodeId>(num_edges));
    const std::int64_t x1_abs = u_abs + x1_rel;
    const std::int64_t y1_abs = num_edges - x1_abs;

    // Premise checks on the finite line: the u-agent leaves x1 in state s
    // at round t1, and the v-agent leaves M(x1) in the same state at t2.
    {
      sim::LineAutomatonAgent probe(a);
      const auto evs = run_single(line, probe,
                                  static_cast<tree::NodeId>(u_abs), t1);
      const bool ok =
          !evs.empty() && evs.back().round == t1 &&
          evs.back().node == x1_abs &&
          evs.back().state == ((static_cast<std::uint64_t>(ev[i_found].state)
                                << 1));
      if (!ok) continue;
    }
    {
      sim::LineAutomatonAgent probe(a);
      const auto evs = run_single(line, probe,
                                  static_cast<tree::NodeId>(v_abs), t2);
      const bool ok =
          !evs.empty() && evs.back().round == t2 &&
          evs.back().node == y1_abs &&
          evs.back().state == ((static_cast<std::uint64_t>(ev[i_found].state)
                                << 1));
      if (!ok) continue;
    }

    out.bounded_case = false;
    out.line = line;
    out.u = static_cast<tree::NodeId>(u_abs);
    out.v = static_cast<tree::NodeId>(v_abs);
    out.theta = t2 - t1;
    out.x1_abs = x1_abs;
    out.r = r;
    out.t1 = t1;
    out.t2 = t2;
    out.state_s = static_cast<std::uint64_t>(ev[i_found].state);
    sim::LineAutomatonAgent agent_u(a, "victim-u"), agent_v(a, "victim-v");
    out.verdict = verify_never_meet(out.line, agent_u, agent_v,
                                    {out.u, out.v, out.theta, 0, horizon});
    out.construction_ok =
        !out.verdict.met && out.verdict.certified_forever;
    return out;
  }
  return out;  // placement failed after retries
}

}  // namespace rvt::lowerbound

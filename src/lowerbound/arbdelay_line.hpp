// The Theorem 3.1 adversary: rendezvous with arbitrary delay on the line
// defeats any K-state agent on a line of length O(K), proving the
// Omega(log n) memory lower bound.
//
// Two branches, as in the paper's proof:
//
//  * bounded range: if the agent never leaves a window of radius D around
//    its start, place the two copies with disjoint activity ranges on a
//    line of 4D+4 edges (odd node count => central node => the positions
//    are not perfectly symmetrizable); they trivially never meet.
//
//  * unbounded: find the first two distinct nodes x1, x2 of the trajectory
//    that the agent leaves in the same state s (pigeonhole over K states;
//    we additionally require the positional gap r = x2 - x1 to be even so
//    the 2-coloring is preserved under the shift). On a symmetrically
//    2-colored line place one agent at u and the other at the mirror image
//    of u - r, and delay the u-agent by theta = t2 - t1. At time t2 both
//    agents leave the mirror-symmetric pair (x1, M(x1)) in the same state
//    s, after which the mirror symmetry of the labeling pins them into
//    symmetric trajectories forever — they can never be at the same node
//    because the mirror of a line with an odd edge count fixes no node.
//    The initial positions differ from a mirror pair by the shift r != 0,
//    so they are NOT perfectly symmetrizable and rendezvous was required.
//
// Every instance is verified by simulation, and the non-meeting claim is
// certified forever via the configuration-cycle argument (verify.hpp).
#pragma once

#include <cstdint>

#include "lowerbound/verify.hpp"
#include "sim/automaton.hpp"
#include "tree/tree.hpp"

namespace rvt::lowerbound {

struct ArbDelayInstance {
  bool construction_ok = false;  ///< premises established and verified
  bool bounded_case = false;

  tree::Tree line = tree::Tree::single_node();
  tree::NodeId u = -1, v = -1;
  std::uint64_t theta = 0;  ///< delay imposed on the u-agent

  // Unbounded-branch certificate.
  std::int64_t x1_abs = -1;  ///< node the agent leaves twice in state s
  std::int64_t r = 0;        ///< positional gap x2 - x1 (even, nonzero)
  std::uint64_t t1 = 0, t2 = 0;
  std::uint64_t state_s = 0;

  // Bounded-branch certificate.
  std::int64_t range_d = 0;

  NeverMeetResult verdict;
};

/// Builds and verifies the Theorem 3.1 instance for `a`. `horizon` caps the
/// never-meet search (the periodicity certificate normally fires far
/// earlier).
ArbDelayInstance build_arbdelay_instance(const sim::LineAutomaton& a,
                                         std::uint64_t horizon);

}  // namespace rvt::lowerbound

#include "lowerbound/verify.hpp"

#include <array>
#include <stdexcept>

#include "sim/automaton.hpp"
#include "sim/compiled.hpp"

namespace rvt::lowerbound {

namespace {

using Config = std::array<std::uint64_t, 6>;

Config snapshot(const sim::TwoAgentRun& run, const sim::Agent& a,
                const sim::Agent& b) {
  const tree::WalkPos pa = run.pos_a();
  const tree::WalkPos pb = run.pos_b();
  return {static_cast<std::uint64_t>(pa.node),
          static_cast<std::uint64_t>(pa.in_port + 1),
          a.state_signature(),
          static_cast<std::uint64_t>(pb.node),
          static_cast<std::uint64_t>(pb.in_port + 1),
          b.state_signature()};
}

}  // namespace

bool compiled_engine_fits(const tree::Tree& t,
                          const sim::TabularAutomaton& a) {
  return sim::CompiledConfigEngine::stamp_entries(t, a) <=
         kCompiledStampBudget;
}

NeverMeetResult verify_never_meet(const tree::Tree& t, sim::Agent& a,
                                  sim::Agent& b, const sim::RunConfig& cfg) {
  // Capability dispatch: any agent pair that exposes tabular dynamics and
  // still sits in its initial configuration can be verified analytically,
  // whatever the concrete agent classes are. The substrate only has to fit
  // the automata's degree model and the engine's memory budget.
  const sim::TabularAutomaton* ta = a.tabular();
  const sim::TabularAutomaton* tb = b.tabular();
  if (ta != nullptr && tb != nullptr && a.fresh() && b.fresh() &&
      t.node_count() >= 2 && t.max_degree() <= ta->max_degree &&
      t.max_degree() <= tb->max_degree && compiled_engine_fits(t, *ta) &&
      compiled_engine_fits(t, *tb)) {
    const sim::CompiledConfigEngine engine_a(t, *ta);
    if (*ta == *tb) {
      return sim::verify_never_meet_compiled(engine_a, engine_a, cfg);
    }
    return sim::verify_never_meet_compiled(
        engine_a, sim::CompiledConfigEngine(t, *tb), cfg);
  }
  return verify_never_meet_reference(t, a, b, cfg);
}

NeverMeetResult verify_never_meet_reference(const tree::Tree& t, sim::Agent& a,
                                            sim::Agent& b,
                                            const sim::RunConfig& cfg) {
  if (cfg.max_rounds == 0) {
    throw std::invalid_argument("verify_never_meet: max_rounds must be > 0");
  }
  sim::TwoAgentRun run(t, a, b, cfg);
  NeverMeetResult r;
  r.engine = sim::VerifyEngine::kReference;

  // Brent's algorithm over the deterministic configuration sequence that
  // begins once both agents have started.
  bool anchored = false;
  Config anchor{};
  std::uint64_t power = 1, lam = 0;

  while (run.round() < cfg.max_rounds) {
    const bool met = run.tick();
    r.rounds_checked = run.round();
    if (met) {
      r.met = true;
      r.meeting_round = run.round() - 1;
      return r;
    }
    if (!run.both_started()) continue;
    const Config cur = snapshot(run, a, b);
    if (!anchored) {
      if (a.state_signature() == sim::Agent::kNoSignature ||
          b.state_signature() == sim::Agent::kNoSignature) {
        throw std::invalid_argument(
            "verify_never_meet: agents must expose state signatures");
      }
      anchor = cur;
      anchored = true;
      power = 1;
      lam = 0;
      continue;
    }
    ++lam;
    if (cur == anchor) {
      r.certified_forever = true;
      r.cycle_length = lam;
      return r;
    }
    if (lam == power) {  // move the anchor forward, double the window
      anchor = cur;
      power *= 2;
      lam = 0;
    }
  }
  return r;  // horizon exhausted without certificate (rare; report as-is)
}

std::vector<LeaveEvent> run_single(const tree::Tree& t, sim::Agent& ag,
                                   tree::NodeId start, std::uint64_t rounds) {
  std::vector<LeaveEvent> events;
  tree::WalkPos pos{start, -1};
  for (std::uint64_t round = 1; round <= rounds; ++round) {
    const sim::Observation obs{pos.in_port, t.degree(pos.node)};
    const int action = ag.step(obs);
    if (action == sim::kStay) {
      pos.in_port = -1;
      continue;
    }
    if (action < 0) {
      throw std::invalid_argument(
          "run_single: agent action must be kStay or a port candidate >= 0");
    }
    events.push_back({round, pos.node, ag.state_signature()});
    const int d = t.degree(pos.node);
    const tree::Port out = static_cast<tree::Port>(action % d);
    const tree::NodeId next = t.neighbor(pos.node, out);
    pos = {next, t.reverse_port(pos.node, out)};
  }
  return events;
}

}  // namespace rvt::lowerbound

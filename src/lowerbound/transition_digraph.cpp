#include "lowerbound/transition_digraph.hpp"

#include "util/math.hpp"

namespace rvt::lowerbound {

TransitionDigraph analyze_pi_prime(const sim::LineAutomaton& a) {
  a.validate();
  const int n = a.num_states();
  TransitionDigraph d;
  d.pi_prime.resize(n);
  for (int s = 0; s < n; ++s) d.pi_prime[s] = a.next_internal(s);
  d.circuit_of.assign(n, -1);

  // Functional-graph cycle detection: color 0 = unvisited, 1 = on the
  // current path, 2 = finished.
  std::vector<int> color(n, 0);
  for (int s0 = 0; s0 < n; ++s0) {
    if (color[s0] != 0) continue;
    std::vector<int> path;
    int s = s0;
    while (color[s] == 0) {
      color[s] = 1;
      path.push_back(s);
      s = d.pi_prime[s];
    }
    if (color[s] == 1) {
      // Found a new circuit: the suffix of `path` starting at s.
      std::vector<int> circuit;
      bool in = false;
      for (int v : path) {
        if (v == s) in = true;
        if (in) {
          circuit.push_back(v);
          d.circuit_of[v] = static_cast<int>(d.circuits.size());
        }
      }
      d.circuits.push_back(std::move(circuit));
    }
    for (int v : path) color[v] = 2;
  }
  return d;
}

std::uint64_t TransitionDigraph::gamma(std::uint64_t cap) const {
  std::uint64_t g = 1;
  for (const auto& c : circuits) {
    g = util::saturating_lcm(g, c.size(), cap);
    if (g >= cap) return cap;
  }
  return g;
}

int TransitionDigraph::tail_length(int s) const {
  int k = 0;
  while (circuit_of[s] < 0) {
    s = pi_prime[s];
    ++k;
  }
  return k;
}

}  // namespace rvt::lowerbound

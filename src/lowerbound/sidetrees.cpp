#include "lowerbound/sidetrees.hpp"

#include <map>
#include <stdexcept>

#include "tree/canonical.hpp"

namespace rvt::lowerbound {

namespace {

/// Simulates one tour: the agent has just issued, in state `s`, the move
/// from the path node u into the side tree's root. It arrives at the root
/// through the root's last port (the joining edge). Returns the behavior.
TourBehavior simulate_tour(const sim::TreeAutomaton& a, const tree::Tree& side,
                           int s, std::uint64_t cap) {
  // Gadget: the side tree itself, plus the knowledge that the root has one
  // extra (joining) edge. Inside the tree every observation is authentic
  // if we report the root's degree as deg_side(root) + 1 and treat the
  // joining port as port deg_side(root).
  const tree::NodeId root = 0;
  const tree::Port join_port = side.degree(root);  // next free port at root

  TourBehavior out;
  int state = s;
  tree::NodeId node = root;
  tree::Port in = join_port;
  for (std::uint64_t round = 1; round <= cap; ++round) {
    const int deg =
        side.degree(node) + (node == root ? 1 : 0);  // instance degree
    // Transition on the (entry port, degree) input, then act.
    state = a.delta[state][in + 1][deg - 1];
    const int act = a.lambda[state];
    if (act == sim::kStay) {
      in = -1;
      continue;
    }
    const tree::Port outp = static_cast<tree::Port>(act % deg);
    if (node == root && outp == join_port) {
      // Exits the side tree back to the path node.
      out.exits = true;
      out.exit_state = state;
      out.rounds = round;
      return out;
    }
    const tree::NodeId next = side.neighbor(node, outp);
    in = side.reverse_port(node, outp);
    node = next;
  }
  return out;  // never exits within cap
}

}  // namespace

std::vector<TourBehavior> behavior_function(const sim::TreeAutomaton& a,
                                            const tree::Tree& side) {
  a.validate();
  const std::uint64_t cap =
      static_cast<std::uint64_t>(a.num_states()) * 4 *
          static_cast<std::uint64_t>(side.node_count()) +
      8;
  std::vector<TourBehavior> table(a.num_states());
  for (int s = 0; s < a.num_states(); ++s) {
    table[s] = simulate_tour(a, side, s, cap);
  }
  return table;
}

SideTreeCollision build_sidetree_instance(const sim::TreeAutomaton& a, int i,
                                          int m, std::uint64_t horizon) {
  if (i < 2) throw std::invalid_argument("build_sidetree_instance: i >= 2");
  SideTreeCollision out;
  out.i = i;

  std::map<std::vector<TourBehavior>, std::uint64_t> seen;
  const std::uint64_t total = 1ull << (i - 1);
  std::uint64_t m1 = 0, m2 = 0;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    const tree::Tree side = tree::side_tree(i, mask);
    auto table = behavior_function(a, side);
    auto [it, inserted] = seen.try_emplace(std::move(table), mask);
    out.masks_scanned = mask + 1;
    if (!inserted) {
      m1 = it->second;
      m2 = mask;
      out.found = true;
      break;
    }
  }
  if (!out.found) return out;
  out.mask1 = m1;
  out.mask2 = m2;

  const tree::Tree t1 = tree::side_tree(i, m1);
  const tree::Tree t2 = tree::side_tree(i, m2);

  // Sanity companion: the T1+T1 instance is symmetric w.r.t. its labeling
  // (positions u, v symmetric => no algorithm whatsoever can meet there).
  {
    const tree::TwoSided sym = tree::two_sided_tree(t1, t1, m);
    out.symmetric_companion_is_symmetric =
        tree::symmetric_positions(sym.tree, sym.u, sym.v);
  }

  const tree::TwoSided inst = tree::two_sided_tree(t1, t2, m);
  out.instance = inst.tree;
  out.u = inst.u;
  out.v = inst.v;
  out.instance_not_symmetrizable =
      !tree::perfectly_symmetrizable(out.instance, out.u, out.v);

  sim::TreeAutomatonAgent agent_u(a, "victim-u"), agent_v(a, "victim-v");
  out.verdict = verify_never_meet(out.instance, agent_u, agent_v,
                                  {out.u, out.v, 0, 0, horizon});
  out.construction_ok = out.instance_not_symmetrizable && !out.verdict.met &&
                        out.verdict.certified_forever &&
                        out.symmetric_companion_is_symmetric;
  return out;
}

}  // namespace rvt::lowerbound

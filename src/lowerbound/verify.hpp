// Non-meeting verification with a periodicity certificate.
//
// Each lower-bound construction must demonstrate that a specific pair of
// finite-state agents never meets on a specific instance. For finite
// automata the joint configuration
//     (state_A, position_A, entry_port_A, state_B, position_B, entry_port_B)
// evolves deterministically once both agents have started, so if a
// configuration repeats without a meeting in between, the run is periodic
// and the agents never meet — for all time, not just for the simulated
// horizon. We detect the repeat with Brent's cycle-finding algorithm (O(1)
// memory), checking for co-location every round.
#pragma once

#include <cstdint>

#include "sim/agent.hpp"
#include "sim/simulator.hpp"
#include "tree/tree.hpp"

namespace rvt::lowerbound {

struct NeverMeetResult {
  bool met = false;                 ///< construction FAILED if true
  std::uint64_t meeting_round = 0;  ///< valid when met
  bool certified_forever = false;   ///< configuration cycle found
  std::uint64_t cycle_length = 0;   ///< period of the certified cycle
  std::uint64_t rounds_checked = 0;
};

/// Runs agents a and b per cfg (cfg.max_rounds caps the search). Both
/// agents must implement state_signature(). Throws std::invalid_argument
/// if either returns Agent::kNoSignature on the first started round.
///
/// Fast path: when both agents are fresh LineAutomatonAgents on a line,
/// the verdict is computed by the compiled configuration engine
/// (sim/compiled.hpp) — same result, field for field, without stepping the
/// agents (they are left untouched, unlike the reference stepper which
/// advances them). Everything else falls back to the reference stepper.
NeverMeetResult verify_never_meet(const tree::Tree& t, sim::Agent& a,
                                  sim::Agent& b, const sim::RunConfig& cfg);

/// The legacy per-round interpretive stepper (virtual dispatch + Brent's
/// cycle finding over joint snapshots). Kept as the differential-testing
/// oracle for the compiled engine and for agents outside the line-automaton
/// model (tree-general agents like core::RendezvousAgent).
NeverMeetResult verify_never_meet_reference(const tree::Tree& t, sim::Agent& a,
                                            sim::Agent& b,
                                            const sim::RunConfig& cfg);

/// Single-agent run on a tree recording "leaving events" (paper §3: the
/// agent reaches node x in state s if s is the state in which it leaves x).
struct LeaveEvent {
  std::uint64_t round;    ///< 1-based round of the move
  tree::NodeId node;      ///< the node being left
  std::uint64_t state;    ///< state_signature() when the move was issued
};

/// Simulates `ag` alone from `start` for `rounds` rounds; returns all
/// leaving events (moves only; null moves produce no event).
std::vector<LeaveEvent> run_single(const tree::Tree& t, sim::Agent& ag,
                                   tree::NodeId start, std::uint64_t rounds);

}  // namespace rvt::lowerbound

// Non-meeting verification with a periodicity certificate.
//
// Each lower-bound construction must demonstrate that a specific pair of
// finite-state agents never meets on a specific instance. For finite
// automata the joint configuration
//     (state_A, position_A, entry_port_A, state_B, position_B, entry_port_B)
// evolves deterministically once both agents have started, so if a
// configuration repeats without a meeting in between, the run is periodic
// and the agents never meet — for all time, not just for the simulated
// horizon. We detect the repeat with Brent's cycle-finding algorithm (O(1)
// memory), checking for co-location every round — or, for agents that
// expose tabular dynamics, reconstruct the same verdict analytically with
// the compiled configuration engine (sim/compiled.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/agent.hpp"
#include "sim/simulator.hpp"
#include "sim/verdict.hpp"
#include "tree/tree.hpp"

namespace rvt::lowerbound {

/// The shared verification verdict (sim/verdict.hpp); the historical name
/// survives for the adversaries and their callers. `engine` records which
/// engine actually produced the verdict — check it when a workload is
/// assumed to run on the compiled fast path.
using NeverMeetResult = sim::Verdict;

/// Compiled-engine memory budget, in visit-stamp entries (the engine's
/// dominant allocation, ~12 bytes each; see
/// CompiledConfigEngine::stamp_entries). Past this (~200 MB) the
/// O(1)-memory reference stepper is the safer choice.
inline constexpr std::uint64_t kCompiledStampBudget = std::uint64_t{1} << 24;

/// True iff verify_never_meet would be willing to build a compiled engine
/// for this (tree, automaton) pair — i.e. its stamp table fits
/// kCompiledStampBudget. Exposed so the dispatch boundary is unit-testable
/// without allocating engines.
bool compiled_engine_fits(const tree::Tree& t, const sim::TabularAutomaton& a);

/// Runs agents a and b per cfg (cfg.max_rounds caps the search). Both
/// agents must implement state_signature(). Throws std::invalid_argument
/// if either returns Agent::kNoSignature on the first started round.
///
/// Fast path: when both agents expose tabular dynamics (Agent::tabular())
/// and are fresh() on a tree within their degree model and the engine
/// budget, the verdict is computed by the compiled configuration engine
/// (sim/compiled.hpp) — same result, field for field, without stepping the
/// agents (they are left untouched, unlike the reference stepper which
/// advances them). Everything else falls back to the reference stepper;
/// the verdict's `engine` field reports which engine ran.
NeverMeetResult verify_never_meet(const tree::Tree& t, sim::Agent& a,
                                  sim::Agent& b, const sim::RunConfig& cfg);

/// The legacy per-round interpretive stepper (virtual dispatch + Brent's
/// cycle finding over joint snapshots). Kept as the differential-testing
/// oracle for the compiled engine and for agents outside the tabular
/// model (algorithmic agents like core::RendezvousAgent).
NeverMeetResult verify_never_meet_reference(const tree::Tree& t, sim::Agent& a,
                                            sim::Agent& b,
                                            const sim::RunConfig& cfg);

/// Single-agent run on a tree recording "leaving events" (paper §3: the
/// agent reaches node x in state s if s is the state in which it leaves x).
struct LeaveEvent {
  std::uint64_t round;    ///< 1-based round of the move
  tree::NodeId node;      ///< the node being left
  std::uint64_t state;    ///< state_signature() when the move was issued
};

/// Simulates `ag` alone from `start` for `rounds` rounds; returns all
/// leaving events (moves only; null moves produce no event).
std::vector<LeaveEvent> run_single(const tree::Tree& t, sim::Agent& ag,
                                   tree::NodeId start, std::uint64_t rounds);

}  // namespace rvt::lowerbound

// The Theorem 4.2 adversary: rendezvous with SIMULTANEOUS start on the
// line defeats any K-state agent on a line of length O(K^K), proving the
// Omega(log log n) memory lower bound.
//
// Construction (paper §4.2): let gamma = lcm of the circuit lengths of the
// transition digraph of pi'(s) = pi(s, 2). Place two copies adjacently on
// the infinite 2-colored line; by the mirror symmetry of that placement
// the second agent's trajectory is the reflection of the first's. Wait
// until the agent is 2*gamma + 2K from its start (time t0), find the
// extreme position of its current circuit C_i (first reached at time tau,
// distance x), and set x' = the distance of the mirrored agent at time
// tau' = tau + 2*gamma (x' > x since it keeps drifting). The finite
// instance is the line of x + 1 + x' edges with the agents at the two ends
// of the central-pair edge e, colored exactly as in the infinite line.
// x != x', so the positions are not perfectly symmetrizable, yet the
// delay-2*gamma parity argument (paper Lemmas 4.4-4.8) keeps the agents at
// odd distance or far apart forever.
//
// The bounded-range branch reuses the disjoint-activity construction.
// All instances are verified by simulation with the configuration-cycle
// certificate.
#pragma once

#include <cstdint>

#include "lowerbound/verify.hpp"
#include "sim/automaton.hpp"
#include "tree/tree.hpp"

namespace rvt::lowerbound {

struct SimStartInstance {
  bool construction_ok = false;
  bool bounded_case = false;
  bool gamma_overflow = false;  ///< lcm exceeded the cap; no instance built

  tree::Tree line = tree::Tree::single_node();
  tree::NodeId u = -1, v = -1;  ///< the two agents' starts (adjacent)

  std::uint64_t gamma = 0;
  std::uint64_t t0 = 0, tau = 0;
  std::int64_t x = 0, x_prime = 0;
  std::int64_t range_d = 0;  ///< bounded branch

  NeverMeetResult verdict;
};

SimStartInstance build_simstart_instance(const sim::LineAutomaton& a,
                                         std::uint64_t gamma_cap,
                                         std::uint64_t horizon);

}  // namespace rvt::lowerbound

// Boundedness / drift analysis of a line automaton on the infinite
// 2-colored line.
//
// Once past its transient, an automaton's future on the infinite line is
// determined by (state, color of the edge to its right), a finite
// configuration space. The first repeat of that configuration closes a
// cycle with some net displacement Delta: Delta == 0 means the agent stays
// within a bounded window forever (the "bounded range" branch of both line
// lower bounds); Delta != 0 means it drifts to infinity in direction
// sign(Delta).
#pragma once

#include <cstdint>

#include "sim/automaton.hpp"

namespace rvt::lowerbound {

struct PhaseDrift {
  bool unbounded = false;
  int drift_sign = 0;                 ///< sign(Delta) when unbounded
  std::int64_t delta_per_cycle = 0;   ///< net displacement per config cycle
  std::int64_t max_abs_pos = 0;       ///< max |pos| through the first cycle
  std::uint64_t cycle_start_round = 0;
  std::uint64_t cycle_len = 0;
};

/// Analyzes the automaton started at position 0 of the infinite line whose
/// edge {z, z+1} has color (z + phase) mod 2.
PhaseDrift analyze_drift(const sim::LineAutomaton& a, int phase);

}  // namespace rvt::lowerbound

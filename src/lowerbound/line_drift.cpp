#include "lowerbound/line_drift.hpp"

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>

namespace rvt::lowerbound {

PhaseDrift analyze_drift(const sim::LineAutomaton& a, int phase) {
  sim::ZLineSim sim(a, phase);
  PhaseDrift out;
  // Configurations: (state, color of right edge). The first tick consumes
  // the initial-state special case, so start recording after it.
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::int64_t>> seen;
  const std::uint64_t limit =
      4 * static_cast<std::uint64_t>(a.num_states()) + 8;
  for (std::uint64_t r = 0; r < limit; ++r) {
    const auto snap = sim.tick();
    out.max_abs_pos = std::max<std::int64_t>(out.max_abs_pos,
                                             std::llabs(snap.pos));
    const std::pair<int, int> cfg{snap.state, sim.edge_color(snap.pos)};
    auto it = seen.find(cfg);
    if (it != seen.end()) {
      const auto [round0, pos0] = it->second;
      out.delta_per_cycle = snap.pos - pos0;
      out.cycle_start_round = round0;
      out.cycle_len = snap.round - round0;
      out.unbounded = out.delta_per_cycle != 0;
      out.drift_sign = out.delta_per_cycle > 0
                           ? 1
                           : (out.delta_per_cycle < 0 ? -1 : 0);
      return out;
    }
    seen.emplace(cfg, std::pair{snap.round, snap.pos});
  }
  throw std::logic_error("analyze_drift: no configuration repeat (bug)");
}

}  // namespace rvt::lowerbound

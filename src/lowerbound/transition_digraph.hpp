// Transition digraph of pi'(s) = pi(s, 2) — the degree-2 restriction of an
// agent's transition function (paper §4.2).
//
// pi' is a function on the finite state set, so its digraph decomposes into
// connected components each consisting of one circuit with in-trees hanging
// off it. The Theorem 4.2 adversary needs the circuits C_1..C_r and
// gamma = lcm(|C_1|, ..., |C_r|).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/automaton.hpp"

namespace rvt::lowerbound {

struct TransitionDigraph {
  std::vector<int> pi_prime;             ///< pi'(s) per state
  std::vector<std::vector<int>> circuits;  ///< states of each circuit
  std::vector<int> circuit_of;           ///< circuit index of s, -1 if on a tail

  /// lcm of circuit lengths, saturated at cap (the construction refuses
  /// automata whose gamma would exceed it).
  std::uint64_t gamma(std::uint64_t cap) const;

  /// Steps until state s enters its circuit (0 if already on one).
  int tail_length(int s) const;
};

TransitionDigraph analyze_pi_prime(const sim::LineAutomaton& a);

}  // namespace rvt::lowerbound

// The Theorem 4.3 adversary: Omega(log l) memory is needed for rendezvous
// with simultaneous start in max-degree-3 trees with l leaves.
//
// For l = 2i there are 2^{i-1} pairwise non-isomorphic "side trees" (an
// (i+1)-node path with either a leaf or a degree-2-node-plus-leaf hung on
// each internal node). For a K-state agent, its *behavior function* on a
// side tree maps the state s in which the agent enters a tour of the tree
// (from the adjacent path node) to the pair (exit state, tour duration).
// There are at most (K*D)^K behavior functions (D = max tour length), so
// for K small enough two distinct side trees T1, T2 share one — the agent
// literally cannot tell them apart. Joining T1 and T2 by a symmetrically
// labeled path of odd length then yields a NON-symmetrizable instance on
// which the two agents enter and leave their respective side trees always
// at the same time in the same state; on the path the parity argument
// keeps them apart, so they never meet.
//
// The companion instance joining T1 with itself is symmetric with respect
// to its port labeling, certifying that the construction sits exactly on
// the feasibility boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lowerbound/verify.hpp"
#include "sim/automaton.hpp"
#include "tree/builders.hpp"
#include "tree/tree.hpp"

namespace rvt::lowerbound {

/// Behavior of one tour: state in which the agent exits the side tree and
/// the number of rounds spent inside. `exits == false` encodes a tour that
/// never returns (the agent loops inside or stalls).
struct TourBehavior {
  bool exits = false;
  int exit_state = -1;
  std::uint64_t rounds = 0;
  friend bool operator==(const TourBehavior&, const TourBehavior&) = default;
  friend auto operator<=>(const TourBehavior&, const TourBehavior&) = default;
};

/// The behavior function of `a` on side tree `s`: entry i indexed by the
/// state in which the agent crosses from the adjacent path node into the
/// root. `entry_port_at_u` is the port at the path node toward the root
/// (it determines nothing inside the tree; tours start at the root).
std::vector<TourBehavior> behavior_function(const sim::TreeAutomaton& a,
                                            const tree::Tree& side);

struct SideTreeCollision {
  bool found = false;
  int i = 0;  ///< side-tree parameter; the instance has l = 2i leaves
  std::uint64_t mask1 = 0, mask2 = 0;
  std::uint64_t masks_scanned = 0;

  tree::Tree instance = tree::Tree::single_node();
  tree::NodeId u = -1, v = -1;

  bool symmetric_companion_is_symmetric = false;  ///< sanity certificate
  bool instance_not_symmetrizable = false;        ///< feasibility certificate
  NeverMeetResult verdict;
  bool construction_ok = false;
};

/// Scans side trees of parameter `i` for a behavior-function collision of
/// `a`, builds the two-sided instance with joining parameter m (even,
/// >= 2), and verifies non-meeting. Stops at the first collision.
SideTreeCollision build_sidetree_instance(const sim::TreeAutomaton& a, int i,
                                          int m, std::uint64_t horizon);

}  // namespace rvt::lowerbound

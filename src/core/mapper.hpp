// Reference exploration: reconstructing the whole anonymous tree from one
// basic walk's observation stream.
//
// The oracle-backed Explo (DESIGN.md S1) asserts that everything Fact 2.1
// grants an agent is learnable by walking. This module proves it
// constructively at the O(n log n)-memory reference point: an agent that
// performs the basic walk (exit (i+1) mod d) while maintaining an explicit
// map. The key structural fact (tested in test_properties.cpp) is that on
// a tree the basic walk is a DFS: from a node first entered through port
// q, exiting any port p != q leads to a NEVER-VISITED child, and the tour
// of that child's subtree returns through p; exiting q itself climbs back
// to the (already known) parent. So a stack of pending ports reconstructs
// the tree unambiguously and detects termination after exactly 2(n-1)
// steps — without knowing n in advance.
//
// The reconstruction is node-renamed (first-visit order, start = 0) but
// port-exact, so it is port-isomorphic to the real tree rooted at the
// start; explo() on the reconstruction must agree with explo() on the real
// tree in every numeric output. The tests check both.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "tree/tree.hpp"

namespace rvt::core {

class MapperAgent final : public sim::Agent {
 public:
  MapperAgent() = default;

  int step(const sim::Observation& obs) override;

  /// O(n log n) bits: the explicit map. Reported as edges * (2 ids + 2
  /// ports); this agent is the reference point the paper's O(log l +
  /// log log n) result is measured against.
  std::uint64_t memory_bits() const override;
  std::string name() const override { return "mapper"; }

  bool done() const { return done_; }

  /// The reconstructed tree (node 0 = the start), available once done().
  /// Throws std::logic_error before completion.
  tree::Tree reconstruction() const;

  /// Steps taken so far (== 2(n-1) when done).
  std::uint64_t steps_walked() const { return steps_; }

 private:
  struct NodeInfo {
    int degree = -1;               // -1 until observed
    tree::Port entry_port = -1;    // port of first entry (-1 for the root)
    tree::Port next_port = 0;      // next port to probe
    std::vector<tree::NodeId> nbr; // neighbor by port (-1 unknown)
    std::vector<tree::Port> rev;   // reverse port by port
  };

  void observe_current(const sim::Observation& obs);

  std::vector<NodeInfo> nodes_;
  std::vector<tree::NodeId> stack_;  // path from root to current node
  tree::Port pending_port_ = -1;     // port we left the previous node by
  bool started_ = false;
  bool done_ = false;
  std::uint64_t steps_ = 0;
};

}  // namespace rvt::core

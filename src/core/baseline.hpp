// Arbitrary-delay baseline: Theta(log n)-bit rendezvous in trees.
//
// The paper's comparison point is the O(log n)-bit arbitrary-delay
// algorithm of Czyzowicz, Kosowski and Pelc [14] for arbitrary graphs.
// Per DESIGN.md substitution S2 we implement a tree-specialized
// arbitrary-delay agent with the same Theta(log n) memory footprint:
//
//  * central node or asymmetric central edge: walk to the designated node
//    and park — delay-proof.
//  * symmetric central edge: position labels + a Manchester-coded
//    activity schedule (the label-based technique of Dessmark, Fraigniaud,
//    Kowalski and Pelc, Algorithmica 2006). The label is the T-step length
//    L + L-hat of the basic walk from the start to the farthest extremity
//    of the central path (a value <= 4n, so Theta(log n) bits). Time is
//    cut into letters of W = 8(n-1) rounds. The agent repeats the word
//        A A A P | b_1 b_1' | b_2 b_2' | ... | b_r b_r'
//    where b_k is the k-th bit of the label (fixed width r derived from
//    n), encoded ACTIVE-then-PASSIVE for 1 and PASSIVE-then-ACTIVE for 0.
//    An ACTIVE letter is 4 back-to-back Euler tours from the agent's
//    anchor; a PASSIVE letter parks at the anchor. Distinct labels make
//    the words differ, so under any start delay some passive letter of
//    one agent overlaps an active letter of the other by >= 2
//    tour-lengths, which contains a complete Euler tour — a tour visits
//    every node, so the agents meet.
//
// Labels can collide on instances where both agents' walks happen to have
// equal length (Lemma 4.3 shows full-profile equality implies perfect
// symmetrizability, but single-length equality does not); the E3 harness
// checks labels via label() and reports such instances separately. The
// measured memory is Theta(log n) — the quantity the memory-gap experiment
// compares against the Theorem 4.1 agent.
#pragma once

#include <cstdint>
#include <string>

#include "core/explo.hpp"
#include "sim/agent.hpp"
#include "sim/meter.hpp"
#include "tree/tree.hpp"

namespace rvt::core {

class BaselineAgent final : public sim::Agent {
 public:
  BaselineAgent(const tree::Tree& t, tree::NodeId start);

  int step(const sim::Observation& obs) override;
  std::uint64_t memory_bits() const override;
  std::string name() const override { return "baseline-logn"; }

  const ExploInfo& info() const { return info_; }
  std::uint64_t label() const { return label_.get(); }

 private:
  enum class Phase { kStart, kToLeaf, kToTarget, kSchedule, kPark };

  /// True iff the agent is ACTIVE during word letter `letter`.
  bool letter_active(std::uint64_t letter) const;

  const ExploInfo info_;
  Phase phase_ = Phase::kStart;
  bool fresh_ = true;
  unsigned label_width_ = 0;  ///< r: fixed bit width of the label

  sim::MemoryMeter meter_;
  sim::MeteredCounter& label_ = meter_.counter("label");
  sim::MeteredCounter& ktar_ = meter_.counter("k_target");
  sim::MeteredCounter& acnt_ = meter_.counter("arrivals");
  sim::MeteredCounter& letter_ = meter_.counter("letter");
  sim::MeteredCounter& pos_ = meter_.counter("pos_in_letter");
  sim::MeteredCounter& last_in_ = meter_.counter("last_in");
  sim::MeteredCounter& tour_len_ = meter_.counter("tour_len");
};

}  // namespace rvt::core

#include "core/rendezvous_agent.hpp"

#include <stdexcept>

#include "util/primes.hpp"

namespace rvt::core {

namespace {
constexpr std::uint64_t kControlStates = 14ull * 2 * 2 * 2 * 2;
}

RendezvousAgent::RendezvousAgent(const tree::Tree& t, tree::NodeId start,
                                 RendezvousOptions opts)
    : info_(explo(t, start)), opts_(opts) {
  meter_.declare_control_states(kControlStates);
  nu_ = static_cast<std::uint64_t>(info_.nu);
  ell_ = static_cast<std::uint64_t>(info_.ell);
  ktar_ = info_.tprime_arrivals_to_target;
  if (info_.central_port_at_target >= 0) {
    cport_mine_ = static_cast<std::uint64_t>(info_.central_port_at_target);
  }
  // Provision the statically bounded counters to their capacity (the
  // high-water mark survives the reset), so memory_bits() reports the
  // width the agent must allocate rather than how far a short run
  // happened to push each counter. The prime-machinery counters (i, p,
  // prime_index, tick) stay run-measured: their growth to O(log n) values
  // IS the log log n term of the theorem.
  if (info_.kind == TreeKind::kCentralEdgeSymmetric) {
    const std::uint64_t arr_bound = 2 * (nu_.get() - 1);
    acnt_.set(arr_bound);
    acnt_.reset();
    sacnt_.set(arr_bound);
    sacnt_.reset();
    j_.set(arr_bound);
    j_.reset();
    seg_.set(20 * ell_.get() + 2);
    seg_.reset();
  } else {
    acnt_.set(ktar_.get());
    acnt_.reset();
  }
}

RendezvousAgent::SegKind RendezvousAgent::seg_kind() const {
  switch (seg_.get() % 4) {
    case 0: return SegKind::kBw;
    case 1: return SegKind::kC;
    case 2: return SegKind::kCbw;
    default: return SegKind::kC;
  }
}

void RendezvousAgent::after_vhat() {
  // We are standing at v_hat. Timed mode first performs the Stage-1
  // Explo(v_hat) stand-in tour; then (after_explo_stage1) Synchro or the
  // walk to the designated node.
  if (opts_.timed_explo) {
    phase_ = Phase::kExploTour;
    acnt_.reset();
    fresh_ = true;
    return;
  }
  after_explo_stage1();
}

void RendezvousAgent::after_explo_stage1() {
  if (info_.kind == TreeKind::kCentralEdgeSymmetric) {
    phase_ = Phase::kSynchro;
    acnt_.reset();
    sacnt_.reset();
    fresh_ = true;
  } else {
    enter_to_target();
  }
}

void RendezvousAgent::enter_to_target() {
  if (ktar_.get() == 0) {
    // v_hat is the designated node itself.
    if (info_.kind == TreeKind::kCentralEdgeSymmetric) {
      enter_outer_loop();
    } else {
      phase_ = Phase::kPark;
    }
    return;
  }
  phase_ = Phase::kToTarget;
  acnt_.reset();
  fresh_ = true;
}

void RendezvousAgent::enter_outer_loop() {
  if (outer_entry_step_ == 0) outer_entry_step_ = steps_observed_;
  i_ = 1;
  second_loop_ = false;
  at_mine_ = true;
  enter_inner(0);
}

void RendezvousAgent::enter_inner(std::uint64_t j) {
  j_ = j;
  if (j == 0 || !opts_.desync_inner_loops) {
    enter_prime();
    return;
  }
  phase_ = Phase::kInnerBw;
  acnt_.reset();
  fresh_ = true;
}

void RendezvousAgent::enter_inner2(std::uint64_t j) {
  const std::uint64_t bound = 2 * (nu_.get() - 1);
  if (!opts_.desync_inner_loops) j = bound + 1;  // skip the reset walks
  if (j == 0) j = 1;                             // bw(0)/cbw(0) are empty
  if (j > bound) {
    phase_ = Phase::kCrossC2;
    fresh_ = true;
    return;
  }
  j_ = j;
  phase_ = Phase::kInner2Bw;
  acnt_.reset();
  fresh_ = true;
}

void RendezvousAgent::enter_prime() {
  phase_ = Phase::kPrime;
  pidx_ = 1;
  p_ = 2;
  travs_ = 0;
  seg_ = 0;
  acnt_.reset();
  fresh_ = true;
  tick_ = p_.get() - 1;
}

void RendezvousAgent::after_prime_done() {
  // prime(i) ended back at the extremity it started from. Next j, or the
  // reset half of the outer iteration.
  const std::uint64_t bound = 2 * (nu_.get() - 1);
  if (opts_.desync_inner_loops && j_.get() < bound) {
    enter_inner(j_.get() + 1);
  } else {
    phase_ = Phase::kCrossC1;
    fresh_ = true;
  }
}

void RendezvousAgent::advance_prime_segment() {
  seg_.increment();
  acnt_.reset();
  fresh_ = true;
  const std::uint64_t total_segments = 20 * ell_.get() + 3;
  if (seg_.get() < total_segments) return;
  // One full traversal of P done; we now stand at the opposite extremity.
  seg_ = 0;
  ++travs_;
  if (travs_ < 2) return;  // traverse P twice per prime
  travs_ = 0;
  pidx_.increment();
  p_ = util::next_prime(p_.get());
  tick_ = p_.get() - 1;
  if (pidx_.get() > i_.get()) {
    after_prime_done();
  }
}

void RendezvousAgent::handle_arrival(const sim::Observation& obs) {
  const bool arrived = obs.in_port >= 0;
  if (!arrived) return;
  const bool at_tprime_node = obs.degree != 2;

  switch (phase_) {
    case Phase::kToLeaf:
      if (obs.degree == 1) after_vhat();
      break;

    case Phase::kExploTour:
      if (at_tprime_node) {
        acnt_.increment();
        if (acnt_.get() == 2 * (nu_.get() - 1)) after_explo_stage1();
      }
      break;

    case Phase::kSynchro:
      if (at_tprime_node) {
        sacnt_.increment();
        if (sacnt_.get() == 2 * (nu_.get() - 1)) {
          enter_to_target();
        } else if (opts_.timed_explo) {
          // Explo-bis(w) insertion at every visited T' node except the
          // very last return to v_hat.
          saved_in_ = static_cast<std::uint64_t>(obs.in_port);
          phase_ = Phase::kSynchroInsert;
          acnt_.reset();
          fresh_ = true;
        }
      }
      break;

    case Phase::kSynchroInsert:
      if (at_tprime_node) {
        acnt_.increment();
        if (acnt_.get() == 2 * (nu_.get() - 1)) {
          // Back at w; resume the Synchro walk as if the insertion never
          // happened: the next exit continues from the saved entry port.
          phase_ = Phase::kSynchro;
          last_in_ = saved_in_.get();
          fresh_ = false;
        }
      }
      break;

    case Phase::kToTarget:
      if (at_tprime_node) {
        acnt_.increment();
        if (acnt_.get() == ktar_.get()) {
          if (info_.kind == TreeKind::kCentralEdgeSymmetric) {
            enter_outer_loop();
          } else {
            phase_ = Phase::kPark;
          }
        }
      }
      break;

    case Phase::kInnerBw:
    case Phase::kInner2Bw:
      if (at_tprime_node) {
        acnt_.increment();
        if (acnt_.get() == j_.get()) {
          phase_ = phase_ == Phase::kInnerBw ? Phase::kInnerCbw
                                             : Phase::kInner2Cbw;
          acnt_.reset();
          fresh_ = true;
        }
      }
      break;

    case Phase::kInnerCbw:
    case Phase::kInner2Cbw:
      if (at_tprime_node) {
        acnt_.increment();
        if (acnt_.get() == j_.get()) {
          if (phase_ == Phase::kInnerCbw) {
            enter_prime();
          } else {
            enter_inner2(j_.get() + 1);
          }
        }
      }
      break;

    case Phase::kPrime:
      switch (seg_kind()) {
        case SegKind::kBw:
        case SegKind::kCbw:
          if (at_tprime_node) {
            acnt_.increment();
            if (acnt_.get() == 2 * (nu_.get() - 1)) advance_prime_segment();
          }
          break;
        case SegKind::kC:
          if (at_tprime_node) {
            // Completed a traversal of the central path: we changed ends.
            at_mine_ = !at_mine_;
            if (at_mine_) {
              cport_mine_ = static_cast<std::uint64_t>(obs.in_port);
            } else {
              cport_other_ = static_cast<std::uint64_t>(obs.in_port);
            }
            advance_prime_segment();
          }
          break;
      }
      break;

    case Phase::kCrossC1:
    case Phase::kCrossC2:
      if (at_tprime_node) {
        at_mine_ = !at_mine_;
        if (at_mine_) {
          cport_mine_ = static_cast<std::uint64_t>(obs.in_port);
        } else {
          cport_other_ = static_cast<std::uint64_t>(obs.in_port);
        }
        if (phase_ == Phase::kCrossC1) {
          second_loop_ = true;
          enter_inner2(0);
        } else {
          second_loop_ = false;
          i_.increment();
          enter_inner(0);
        }
      }
      break;

    case Phase::kStart:
    case Phase::kPark:
      break;
  }
}

int RendezvousAgent::act_walk(const sim::Observation& obs) {
  // Shared movement rules for the walking phases. `fresh_` marks the first
  // move of the current walk segment.
  const int d = obs.degree;
  switch (phase_) {
    case Phase::kToLeaf:
    case Phase::kExploTour:
    case Phase::kSynchro:
    case Phase::kSynchroInsert:
    case Phase::kToTarget:
    case Phase::kInnerBw:
    case Phase::kInner2Bw:
      if (fresh_) {
        fresh_ = false;
        return 0;  // bw starts by port 0
      }
      return static_cast<int>((last_in_.get() + 1) %
                              static_cast<std::uint64_t>(d));

    case Phase::kInnerCbw:
    case Phase::kInner2Cbw:
      if (fresh_) {
        fresh_ = false;
        return static_cast<int>(last_in_.get());  // re-cross the entry edge
      }
      return static_cast<int>(
          (last_in_.get() + static_cast<std::uint64_t>(d) - 1) %
          static_cast<std::uint64_t>(d));

    case Phase::kCrossC1:
    case Phase::kCrossC2:
      if (fresh_) {
        fresh_ = false;
        return static_cast<int>(at_mine_ ? cport_mine_.get()
                                         : cport_other_.get());
      }
      return static_cast<int>((last_in_.get() + 1) %
                              static_cast<std::uint64_t>(d));

    default:
      throw std::logic_error("act_walk: not a walking phase");
  }
}

int RendezvousAgent::decide(const sim::Observation& obs) {
  switch (phase_) {
    case Phase::kStart: {
      if (obs.degree == 2) {
        phase_ = Phase::kToLeaf;
        fresh_ = true;
        return act_walk(obs);
      }
      after_vhat();
      return decide(obs);
    }

    case Phase::kPark:
      return sim::kStay;

    case Phase::kToLeaf:
    case Phase::kExploTour:
    case Phase::kSynchro:
    case Phase::kSynchroInsert:
    case Phase::kToTarget:
    case Phase::kInnerBw:
    case Phase::kInnerCbw:
    case Phase::kInner2Bw:
    case Phase::kInner2Cbw:
    case Phase::kCrossC1:
    case Phase::kCrossC2:
      return act_walk(obs);

    case Phase::kPrime: {
      if (tick_.get() > 0) {
        tick_.decrement();
        return sim::kStay;
      }
      tick_ = p_.get() - 1;
      const int d = obs.degree;
      switch (seg_kind()) {
        case SegKind::kBw:
          if (fresh_) {
            fresh_ = false;
            return 0;
          }
          return static_cast<int>((last_in_.get() + 1) %
                                  static_cast<std::uint64_t>(d));
        case SegKind::kC:
          if (fresh_) {
            fresh_ = false;
            return static_cast<int>(at_mine_ ? cport_mine_.get()
                                             : cport_other_.get());
          }
          return static_cast<int>((last_in_.get() + 1) %
                                  static_cast<std::uint64_t>(d));
        case SegKind::kCbw:
          if (fresh_) {
            fresh_ = false;
            return static_cast<int>(last_in_.get());
          }
          return static_cast<int>(
              (last_in_.get() + static_cast<std::uint64_t>(d) - 1) %
              static_cast<std::uint64_t>(d));
      }
      throw std::logic_error("unreachable");
    }
  }
  throw std::logic_error("decide: unknown phase");
}

int RendezvousAgent::step(const sim::Observation& obs) {
  ++steps_observed_;
  if (obs.in_port >= 0) {
    last_in_ = static_cast<std::uint64_t>(obs.in_port);
  }
  handle_arrival(obs);
  return decide(obs);
}

std::uint64_t RendezvousAgent::memory_bits() const {
  return meter_.total_bits();
}

std::string RendezvousAgent::phase_name() const {
  switch (phase_) {
    case Phase::kStart: return "start";
    case Phase::kToLeaf: return "to_leaf";
    case Phase::kExploTour: return "explo_tour";
    case Phase::kSynchro: return "synchro";
    case Phase::kSynchroInsert: return "synchro_insert";
    case Phase::kToTarget: return "to_target";
    case Phase::kPark: return "park";
    case Phase::kInnerBw: return "inner_bw";
    case Phase::kInnerCbw: return "inner_cbw";
    case Phase::kPrime: return "prime_on_P";
    case Phase::kCrossC1: return "cross_C_out";
    case Phase::kInner2Bw: return "inner2_bw";
    case Phase::kInner2Cbw: return "inner2_cbw";
    case Phase::kCrossC2: return "cross_C_back";
  }
  return "?";
}

}  // namespace rvt::core

#include "core/baseline.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace rvt::core {

BaselineAgent::BaselineAgent(const tree::Tree& t, tree::NodeId start)
    : info_(explo(t, start)) {
  meter_.declare_control_states(5ull * 2);
  ktar_ = info_.tprime_arrivals_to_target;
  if (info_.kind == TreeKind::kCentralEdgeSymmetric) {
    label_ = info_.steps_to_vhat + info_.tsteps_to_target;
    // Fixed label width: both agents derive the same r from n, and every
    // label value (<= 4n) fits.
    label_width_ =
        util::bit_width_for(4 * static_cast<std::uint64_t>(info_.n));
    tour_len_ = 2 * (static_cast<std::uint64_t>(info_.n) - 1);
    // Provision the schedule counters to capacity so memory_bits()
    // reports allocation width, not how far a short run pushed them.
    pos_.set(4 * tour_len_.get() - 1);
    pos_.reset();
    letter_.set(4 + 2ull * label_width_ - 1);
    letter_.reset();
  }
  acnt_.set(ktar_.get());
  acnt_.reset();
}

bool BaselineAgent::letter_active(std::uint64_t letter) const {
  // Preamble A A A P: a Manchester pair contains exactly one ACTIVE
  // letter, so a run of >= 3 ACTIVE letters occurs only at the preamble —
  // making the word rotation-unique and two distinct labels never
  // circularly equal.
  if (letter < 4) return letter != 3;
  const std::uint64_t k = letter - 4;
  const unsigned bit_index =
      label_width_ - 1 - static_cast<unsigned>(k / 2);  // MSB first
  const bool bit = (label_.get() >> bit_index) & 1;
  const bool first_half = (k % 2) == 0;
  return bit == first_half;  // 1 -> A,P ; 0 -> P,A
}

int BaselineAgent::step(const sim::Observation& obs) {
  if (obs.in_port >= 0) last_in_ = static_cast<std::uint64_t>(obs.in_port);
  const std::uint64_t d = static_cast<std::uint64_t>(obs.degree);

  // Arrival bookkeeping / phase transitions.
  switch (phase_) {
    case Phase::kStart:
      phase_ = obs.degree == 2 ? Phase::kToLeaf : Phase::kToTarget;
      if (phase_ == Phase::kToTarget && ktar_.get() == 0) {
        phase_ = info_.kind == TreeKind::kCentralEdgeSymmetric
                     ? Phase::kSchedule
                     : Phase::kPark;
      }
      acnt_.reset();
      fresh_ = true;
      break;
    case Phase::kToLeaf:
      if (obs.in_port >= 0 && obs.degree == 1) {
        phase_ = ktar_.get() == 0
                     ? (info_.kind == TreeKind::kCentralEdgeSymmetric
                            ? Phase::kSchedule
                            : Phase::kPark)
                     : Phase::kToTarget;
        acnt_.reset();
        fresh_ = true;
      }
      break;
    case Phase::kToTarget:
      if (obs.in_port >= 0 && obs.degree != 2) {
        acnt_.increment();
        if (acnt_.get() == ktar_.get()) {
          phase_ = info_.kind == TreeKind::kCentralEdgeSymmetric
                       ? Phase::kSchedule
                       : Phase::kPark;
          letter_.reset();
          pos_.reset();
          fresh_ = true;
        }
      }
      break;
    default:
      break;
  }

  // Act.
  switch (phase_) {
    case Phase::kPark:
      return sim::kStay;

    case Phase::kToLeaf:
    case Phase::kToTarget: {
      if (fresh_) {
        fresh_ = false;
        return 0;
      }
      return static_cast<int>((last_in_.get() + 1) % d);
    }

    case Phase::kSchedule: {
      // Letters of W = 4 * tour_len rounds; the repeating word is the
      // preamble plus the Manchester-coded label, 3 + 2r letters long.
      const std::uint64_t W = 4 * tour_len_.get();
      const std::uint64_t word_len = 4 + 2ull * label_width_;
      const bool active = letter_active(letter_.get());
      const std::uint64_t pos = pos_.get();
      pos_.increment();
      if (pos_.get() == W) {
        pos_.reset();
        letter_ = (letter_.get() + 1) % word_len;
      }
      if (!active) return sim::kStay;
      // Active: back-to-back Euler tours; each tour starts at the anchor
      // by port 0.
      if (pos % tour_len_.get() == 0) return 0;
      return static_cast<int>((last_in_.get() + 1) % d);
    }

    case Phase::kStart:
      break;
  }
  throw std::logic_error("BaselineAgent: unreachable");
}

std::uint64_t BaselineAgent::memory_bits() const {
  return meter_.total_bits();
}

}  // namespace rvt::core

#include "core/prime_protocol.hpp"

#include <stdexcept>

#include "util/primes.hpp"

namespace rvt::core {

int PrimeAgent::step(const sim::Observation& obs) {
  if (obs.degree != 1 && obs.degree != 2) {
    throw std::logic_error("PrimeAgent used off a path");
  }
  meter_.declare_control_states(4);  // {InitRun, Loop} x {just-moved?}
  if (obs.in_port >= 0) last_in_ = static_cast<std::uint64_t>(obs.in_port);

  if (phase_ == Phase::kInitRun) {
    if (obs.degree == 1) {
      // Reached an extremity (or started on one): enter the prime loop.
      // This arrival is not a completed traversal, so don't fall through
      // to the leaf-arrival bookkeeping below.
      phase_ = Phase::kLoop;
      prime_ = 2;
      half_traversals_ = 0;
      tick_ = prime_.get() - 1;
      tick_.decrement();
      return sim::kStay;
    } else {
      // Speed 1: keep walking. First move: arbitrary direction = port 0;
      // afterwards continue away from where we came.
      if (!started_) {
        started_ = true;
        return 0;
      }
      return static_cast<int>(1 - last_in_.get());
    }
  }

  // Loop phase. Count a completed traversal on each arrival at a leaf.
  if (obs.in_port >= 0 && obs.degree == 1) {
    ++half_traversals_;
    ++total_traversals_;
    if (half_traversals_ == 2) {
      half_traversals_ = 0;
      prime_ = util::next_prime(prime_.get());
    }
  }
  if (tick_.get() > 0) {
    tick_.decrement();
    return sim::kStay;
  }
  tick_ = prime_.get() - 1;
  started_ = true;
  if (obs.degree == 1) return 0;  // turn around at an extremity
  return static_cast<int>(1 - last_in_.get());
}

std::uint64_t PrimeAgent::memory_bits() const { return meter_.total_bits(); }

}  // namespace rvt::core

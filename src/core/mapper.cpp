#include "core/mapper.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math.hpp"

namespace rvt::core {

void MapperAgent::observe_current(const sim::Observation& obs) {
  NodeInfo info;
  info.degree = obs.degree;
  info.entry_port = obs.in_port;
  info.nbr.assign(obs.degree, -1);
  info.rev.assign(obs.degree, -1);
  nodes_.push_back(std::move(info));
}

int MapperAgent::step(const sim::Observation& obs) {
  if (done_) return sim::kStay;

  if (!started_) {
    started_ = true;
    observe_current(obs);  // the root, entry_port == -1
    stack_ = {0};
    if (obs.degree == 0) {  // single-node tree
      done_ = true;
      return sim::kStay;
    }
    pending_port_ = 0;  // basic walk: leave the start by port 0
    ++steps_;
    return 0;
  }

  // A move happened last round: we arrived via obs.in_port. Identify
  // where: leaving a non-root node by its entry port climbs to the parent;
  // anything else discovered a brand-new child (basic walks are DFS on
  // trees).
  const tree::NodeId prev = stack_.back();
  if (stack_.size() > 1 && nodes_[prev].entry_port == pending_port_) {
    stack_.pop_back();
    const tree::NodeId cur = stack_.back();
    if (nodes_[cur].degree != obs.degree) {
      throw std::logic_error("MapperAgent: parent degree mismatch");
    }
  } else {
    const tree::NodeId fresh = static_cast<tree::NodeId>(nodes_.size());
    observe_current(obs);
    nodes_[prev].nbr[pending_port_] = fresh;
    nodes_[prev].rev[pending_port_] = obs.in_port;
    nodes_[fresh].nbr[obs.in_port] = prev;
    nodes_[fresh].rev[obs.in_port] = pending_port_;
    stack_.push_back(fresh);
  }

  // Termination: back at the root with every root port wired.
  if (stack_.size() == 1) {
    bool complete = true;
    for (const tree::NodeId nb : nodes_[0].nbr) complete &= nb >= 0;
    if (complete) {
      done_ = true;
      return sim::kStay;
    }
  }

  // Continue the basic walk.
  const tree::Port out =
      static_cast<tree::Port>((obs.in_port + 1) % obs.degree);
  pending_port_ = out;
  ++steps_;
  return out;
}

std::uint64_t MapperAgent::memory_bits() const {
  const std::uint64_t n = nodes_.size();
  if (n <= 1) return 1;
  int maxdeg = 1;
  for (const auto& info : nodes_) {
    maxdeg = std::max(maxdeg, info.degree);
  }
  // (n-1) edges, each two (node id, port) endpoints.
  return (n - 1) * 2 *
         (util::bit_width_for(n) +
          util::bit_width_for(static_cast<std::uint64_t>(maxdeg)));
}

tree::Tree MapperAgent::reconstruction() const {
  if (!done_) {
    throw std::logic_error("MapperAgent: reconstruction before completion");
  }
  const tree::NodeId n = static_cast<tree::NodeId>(nodes_.size());
  if (n == 1) return tree::Tree::single_node();
  std::vector<tree::PortedEdge> edges;
  for (tree::NodeId a = 0; a < n; ++a) {
    for (tree::Port p = 0; p < nodes_[a].degree; ++p) {
      const tree::NodeId b = nodes_[a].nbr[p];
      if (b < 0) throw std::logic_error("MapperAgent: incomplete map");
      if (a < b) edges.push_back({a, b, p, nodes_[a].rev[p]});
    }
  }
  return tree::Tree(n, edges);
}

}  // namespace rvt::core

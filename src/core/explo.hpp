// Procedure Explo / Explo-bis (paper Fact 2.1 and §4.1 Stage 1).
//
// Fact 2.1 (citing the log-memory tree exploration of Gasieniec, Pelc,
// Radzik and Zhang, SODA 2007) grants an agent the following knowledge,
// computed from its own starting position with O(log m) bits: the number of
// nodes, whether the tree has a central node / an asymmetric central edge /
// a symmetric central edge, and the minimum number of basic-walk steps from
// its start to the designated node (the central node, the canonical
// extremity, or the *farthest* extremity of the central edge), along with
// the port of the central edge at that node.
//
// Explo-bis runs Explo on the contraction T' after first walking to v-hat:
// v itself when deg(v) != 2, else the first leaf reached by a basic walk.
//
// Per DESIGN.md substitution S1, this module computes those outputs
// directly from the tree (the cited exploration machinery is prior work,
// not this paper's contribution); the agent is *charged* the memory the
// fact guarantees — O(log nu) bits, nu = |T'| <= 2*leaves - 1 — by loading
// the numeric outputs into metered counters. All the *walking* that
// Explo-bis implies for the timing analysis (the v -> v-hat leg) is
// performed physically by the agents.
#pragma once

#include <cstdint>

#include "tree/contraction.hpp"
#include "tree/tree.hpp"

namespace rvt::core {

enum class TreeKind {
  kCentralNode,            ///< T' has a central node
  kCentralEdgeAsymmetric,  ///< central edge, halves distinguishable
  kCentralEdgeSymmetric,   ///< central edge, port-preserving symmetry
};

struct ExploInfo {
  TreeKind kind = TreeKind::kCentralNode;

  std::int64_t n = 0;    ///< number of nodes of T
  std::int64_t nu = 0;   ///< number of nodes of T' (paper's nu)
  std::int64_t ell = 0;  ///< number of leaves of T (== leaves of T')

  tree::NodeId v_hat = -1;        ///< v, or the leaf Explo-bis walks to
  std::uint64_t steps_to_vhat = 0;  ///< L: basic-walk T-steps v -> v_hat

  /// The designated node, in T coordinates: the central node of T' (as a T
  /// node), the canonical extremity of an asymmetric central edge, or the
  /// farthest extremity of a symmetric central edge as seen from v_hat.
  tree::NodeId target = -1;

  /// Number of T'-node arrivals of the minimal basic walk from v_hat to
  /// `target` (a T'-scale quantity, <= 2(nu-1); this is how the agent
  /// addresses the target with O(log l) bits).
  std::uint64_t tprime_arrivals_to_target = 0;

  /// T-steps of that same minimal basic walk (the paper's L-hat; used by
  /// the O(log n) baseline's label, not by the Theorem 4.1 agent).
  std::uint64_t tsteps_to_target = 0;

  /// For the central-edge kinds: port of the central edge at `target`.
  tree::Port central_port_at_target = -1;
};

/// Runs the Explo-bis computation for an agent whose initial position is
/// `v`. Requires t.node_count() >= 2.
ExploInfo explo(const tree::Tree& t, tree::NodeId v);

/// Canonical total order key of a rooted port-labeled tree: preorder
/// serialization (deg, parent_port, then per ascending port: port, reverse
/// port, subtree). Equal vectors <=> port-preserving rooted isomorphism;
/// lexicographic comparison gives the canonical-extremity tie-break that
/// both agents agree on. Exposed for tests.
std::vector<std::int64_t> port_code_vec(const tree::Tree& t,
                                        tree::NodeId root,
                                        tree::Port parent_port);

}  // namespace rvt::core

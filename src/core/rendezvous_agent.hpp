// The Theorem 4.1 agent: deterministic rendezvous with simultaneous start
// in arbitrary trees with O(log l + log log n) bits of memory.
//
// Program (paper §4.1), executed identically by both agents:
//
//  Stage 1   Explo-bis: if the start has degree 2, basic-walk to the first
//            leaf (v-hat); run Explo on the contraction T' (oracle, see
//            DESIGN.md S1). Now the agent knows nu = |T'|, l, whether T'
//            has a central node / asymmetric central edge / symmetric
//            central edge, and how to reach the designated node by a
//            minimal basic walk, addressed in T'-arrival counts.
//
//  Stage 2   * central node, or asymmetric central edge: walk there, park.
//            * symmetric central edge: the hard case —
//              2.1 Synchro: full basic walk around T (2(nu-1) T'-edge
//                  traversals) back to v-hat; re-synchronizes the agents to
//                  a delay of exactly |L - L'| (Claim 4.2).
//              2.2 Walk to the farthest extremity v-hat-far of the central
//                  path C, then run the Figure-2 loop:
//                    for i = 1, 2, ...:
//                      for j = 0..2(nu-1):
//                        bw(j); cbw(j);            # desynchronization
//                        prime(i) on the rendezvous path P
//                      cross C; for j = 0..2(nu-1): bw(j); cbw(j); cross C
//                  where P = (Bu|C|Bv-bar|C)^{5l} | (Bu|C|Bv-bar) is the
//                  non-simple rendezvous path of Claim 4.3, traversed by
//                  executing (bw(2(nu-1)), C, cbw(2(nu-1)), C)... at speed
//                  1/p_k for the k-th prime, twice per prime.
//
// Lemma 4.3 guarantees that for non perfectly-symmetrizable starts some
// inner iteration j gives the agents a nonzero start delay on P, and
// Lemma 4.1's divisibility argument then produces a meeting once the prime
// index i is large enough (i = O(log n)).
//
// All persistent data lives in metered counters; every counter is bounded
// by O(nu) = O(l) except the prime machinery (values O(log n)), so the
// measured memory is O(log l + log log n) — experiment E2 plots it.
#pragma once

#include <cstdint>
#include <string>

#include "core/explo.hpp"
#include "sim/agent.hpp"
#include "sim/meter.hpp"
#include "tree/tree.hpp"

namespace rvt::core {

struct RendezvousOptions {
  /// E8 ablation: when false, the bw(j)/cbw(j) desynchronization walks of
  /// both inner loops are skipped, so (Claim 4.4) the agents keep their
  /// initial delay |t - t'| at every prime(i) start; on instances with
  /// t == t' they dance symmetrically forever and never meet.
  bool desync_inner_loops = true;

  /// When true, every Explo-bis call site performs a real full Euler tour
  /// (basic walk until 2(nu-1) T'-arrivals — detectable with O(log l)
  /// bits): once at Stage 1 from v-hat, and once at every T'-node arrival
  /// of Synchro except the last return, exactly the paper's insertion
  /// schedule. Both agents insert the same multiset of tour durations
  /// (2(nu-1) tours of 2(n-1) steps each), so Claim 4.2 still pins the
  /// post-Synchro delay to |L - L'|; the mode exercises that machinery
  /// with nonzero Explo durations instead of the instant oracle.
  bool timed_explo = false;
};

class RendezvousAgent final : public sim::Agent {
 public:
  RendezvousAgent(const tree::Tree& t, tree::NodeId start,
                  RendezvousOptions opts = {});

  int step(const sim::Observation& obs) override;
  std::uint64_t memory_bits() const override;
  std::string name() const override { return "rendezvous"; }

  const ExploInfo& info() const { return info_; }
  const sim::MemoryMeter& meter() const { return meter_; }
  std::string phase_name() const;
  std::uint64_t outer_index() const { return i_.get(); }

  /// Harness diagnostics (not part of the agent's charged memory): number
  /// of step() calls so far, and the step at which the agent entered the
  /// Figure-2 outer loop (its arrival time t at the anchor; 0 if not yet).
  /// The Claim 4.2 test compares |t - t'| against |(L+L^) - (L'+L^')|.
  std::uint64_t steps_observed() const { return steps_observed_; }
  std::uint64_t outer_entry_step() const { return outer_entry_step_; }

 private:
  enum class Phase {
    kStart,
    kToLeaf,        // stage 1: walk v -> v_hat
    kExploTour,     // timed_explo: Euler tour standing in for Explo(v_hat)
    kSynchro,       // stage 2.1
    kSynchroInsert, // timed_explo: Explo-bis(w) insertion tour
    kToTarget,      // minimal basic walk v_hat -> target
    kPark,          // central node / asymmetric edge: wait forever
    kInnerBw,       // figure 2, first inner loop bw(j)
    kInnerCbw,      //                              cbw(j)
    kPrime,         // prime(i) along the rendezvous path P
    kCrossC1,       // go to the other extremity of C
    kInner2Bw,      // second inner loop bw(j)
    kInner2Cbw,     //                  cbw(j)
    kCrossC2,       // return to the original extremity
  };

  enum class SegKind { kBw, kC, kCbw };
  SegKind seg_kind() const;

  void handle_arrival(const sim::Observation& obs);
  int decide(const sim::Observation& obs);

  void after_vhat();
  void after_explo_stage1();
  void enter_to_target();
  void enter_outer_loop();
  void enter_inner(std::uint64_t j);
  void enter_inner2(std::uint64_t j);
  void enter_prime();
  void advance_prime_segment();
  void after_prime_done();
  int act_walk(const sim::Observation& obs);

  const ExploInfo info_;
  const RendezvousOptions opts_;

  Phase phase_ = Phase::kStart;
  bool fresh_ = true;      // next move is the first of the current walk
  bool at_mine_ = true;    // currently anchored at own extremity of C
  bool second_loop_ = false;
  int travs_ = 0;          // P traversals completed for the current prime
  std::uint64_t steps_observed_ = 0;   // diagnostics only
  std::uint64_t outer_entry_step_ = 0;

  sim::MemoryMeter meter_;
  sim::MeteredCounter& nu_ = meter_.counter("nu");
  sim::MeteredCounter& ell_ = meter_.counter("ell");
  sim::MeteredCounter& ktar_ = meter_.counter("k_target");
  sim::MeteredCounter& acnt_ = meter_.counter("arrivals");
  sim::MeteredCounter& j_ = meter_.counter("j");
  sim::MeteredCounter& i_ = meter_.counter("i");
  sim::MeteredCounter& pidx_ = meter_.counter("prime_index");
  sim::MeteredCounter& p_ = meter_.counter("p");
  sim::MeteredCounter& tick_ = meter_.counter("tick");
  sim::MeteredCounter& seg_ = meter_.counter("segment");
  sim::MeteredCounter& cport_mine_ = meter_.counter("cport_mine");
  sim::MeteredCounter& cport_other_ = meter_.counter("cport_other");
  sim::MeteredCounter& last_in_ = meter_.counter("last_in");
  sim::MeteredCounter& sacnt_ = meter_.counter("synchro_arrivals");
  sim::MeteredCounter& saved_in_ = meter_.counter("saved_in");
};

}  // namespace rvt::core

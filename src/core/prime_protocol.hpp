// The `prime` protocol (paper Lemma 4.1): blind-agent rendezvous on paths
// with O(log log m) bits of memory.
//
//   start in arbitrary direction;
//   move at speed 1 until reaching one extremity of the path;
//   p <- 2;
//   while no rendezvous:
//     traverse the entire path twice, at speed 1/p;
//     p <- smallest prime larger than p;
//
// Speed 1/p means the agent idles p-1 rounds before every edge crossing.
// The agent is blind: at a degree-2 node it only distinguishes the edge it
// came in by from the other one, and it turns around at extremities. The
// divisibility argument of Lemma 4.1 shows the agents meet at or before
// the prime p_j where prod_{i<=j} p_i exceeds m^2, i.e. p_j = O(log m),
// hence both the current-prime counter and the idle tick fit in
// O(log log m) bits.
#pragma once

#include <cstdint>
#include <string>

#include "sim/agent.hpp"
#include "sim/meter.hpp"

namespace rvt::core {

class PrimeAgent final : public sim::Agent {
 public:
  PrimeAgent() = default;

  int step(const sim::Observation& obs) override;
  std::uint64_t memory_bits() const override;
  std::string name() const override { return "prime"; }

  std::uint64_t current_prime() const { return prime_.get(); }
  std::uint64_t traversals_completed() const { return total_traversals_; }

 private:
  enum class Phase { kInitRun, kLoop };
  Phase phase_ = Phase::kInitRun;
  bool started_ = false;
  int half_traversals_ = 0;        // leaf arrivals since last prime bump
  std::uint64_t total_traversals_ = 0;

  sim::MemoryMeter meter_;
  sim::MeteredCounter& prime_ = meter_.counter("p");
  sim::MeteredCounter& tick_ = meter_.counter("tick");
  sim::MeteredCounter& last_in_ = meter_.counter("last_in");
};

}  // namespace rvt::core

#include "core/explo.hpp"

#include <stdexcept>

#include "tree/center.hpp"
#include "tree/walk.hpp"

namespace rvt::core {

using tree::NodeId;
using tree::Port;
using tree::Tree;

std::vector<std::int64_t> port_code_vec(const Tree& t, NodeId root,
                                        Port parent_port) {
  std::vector<std::int64_t> out;
  struct Frame {
    NodeId node;
    Port parent_port;
    Port next_port = 0;
  };
  std::vector<Frame> stack{{root, parent_port, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_port == 0) {
      out.push_back(t.degree(f.node));
      out.push_back(f.parent_port);
    }
    bool descended = false;
    while (f.next_port < t.degree(f.node)) {
      const Port p = f.next_port++;
      if (p == f.parent_port) continue;
      out.push_back(p);
      out.push_back(t.reverse_port(f.node, p));
      stack.push_back({t.neighbor(f.node, p), t.reverse_port(f.node, p), 0});
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }
  return out;
}

namespace {

/// Number of T'-node arrivals along the minimal basic walk in T from
/// `start` (a T'-node) to `target` (a T'-node). 0 if equal.
std::uint64_t tprime_arrivals(const Tree& t, NodeId start, NodeId target,
                              std::uint64_t* tsteps_out) {
  std::uint64_t arrivals = 0;
  if (start == target) {
    if (tsteps_out) *tsteps_out = 0;
    return 0;
  }
  const std::uint64_t bound =
      2 * static_cast<std::uint64_t>(t.node_count() - 1);
  tree::WalkPos pos{start, -1};
  for (std::uint64_t k = 1; k <= bound; ++k) {
    pos = tree::bw_step(t, pos);
    if (t.degree(pos.node) != 2) ++arrivals;
    if (pos.node == target) {
      if (tsteps_out) *tsteps_out = k;
      return arrivals;
    }
  }
  throw std::logic_error("tprime_arrivals: target unreachable");
}

}  // namespace

ExploInfo explo(const Tree& t, NodeId v) {
  if (t.node_count() < 2) {
    throw std::invalid_argument("explo: need at least 2 nodes");
  }
  if (v < 0 || v >= t.node_count()) {
    throw std::invalid_argument("explo: start out of range");
  }
  ExploInfo info;
  info.n = t.node_count();
  info.ell = t.leaf_count();

  // Explo-bis stage: v_hat.
  if (t.degree(v) != 2) {
    info.v_hat = v;
    info.steps_to_vhat = 0;
  } else {
    const std::uint64_t bound =
        2 * static_cast<std::uint64_t>(t.node_count() - 1);
    const tree::WalkResult r = tree::basic_walk_until(
        t, v,
        [&t](const tree::WalkPos& p, std::uint64_t) {
          return t.degree(p.node) == 1;
        },
        bound);
    if (!r.stopped) throw std::logic_error("explo: no leaf reached");
    info.v_hat = r.pos.node;
    info.steps_to_vhat = r.steps;
  }

  const tree::Contraction c = tree::contract(t);
  info.nu = c.nu();

  const tree::Center center = tree::find_center(c.tprime);
  if (center.has_node()) {
    info.kind = TreeKind::kCentralNode;
    info.target = c.to_t[*center.node];
    info.central_port_at_target = -1;
  } else {
    const auto [xp, yp] = *center.edge;
    const Port cx = c.tprime.port_towards(xp, yp);
    const Port cy = c.tprime.port_towards(yp, xp);
    const auto code_x = port_code_vec(c.tprime, xp, cx);
    const auto code_y = port_code_vec(c.tprime, yp, cy);
    const bool symmetric = (cx == cy) && (code_x == code_y);
    if (!symmetric) {
      info.kind = TreeKind::kCentralEdgeAsymmetric;
      // Canonical extremity: both agents pick the same side by comparing
      // (port of the central edge, then the rooted port code).
      NodeId chosen = xp;
      if (cy < cx || (cy == cx && code_y < code_x)) chosen = yp;
      info.target = c.to_t[chosen];
      info.central_port_at_target =
          chosen == xp ? cx : cy;
    } else {
      info.kind = TreeKind::kCentralEdgeSymmetric;
      // Farthest extremity from v_hat: the endpoint in the other half.
      // The minimal basic walk from v_hat first reaches the near endpoint
      // and crosses the central edge exactly once before reaching the far
      // one, so "in the other half" == "reached later".
      const NodeId x = c.to_t[xp];
      const NodeId y = c.to_t[yp];
      std::uint64_t steps_x = 0, steps_y = 0;
      tprime_arrivals(t, info.v_hat, x, &steps_x);
      tprime_arrivals(t, info.v_hat, y, &steps_y);
      NodeId far = steps_x >= steps_y ? x : y;
      if (info.v_hat == x) far = y;
      if (info.v_hat == y) far = x;
      info.target = far;
      info.central_port_at_target =
          far == x ? cx : cy;
    }
  }
  info.tprime_arrivals_to_target = tprime_arrivals(
      t, info.v_hat, info.target, &info.tsteps_to_target);
  return info;
}

}  // namespace rvt::core

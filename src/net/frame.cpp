#include "net/frame.hpp"

namespace rvt::net {

namespace {

/// Fills [buf, buf+want) from the stream. Returns false when the very
/// first read hit end-of-stream (caller decides whether that is a clean
/// boundary close); EOF after the first byte is a truncation and
/// throws. `idle_ok` lets the very first read report a quiet stream via
/// RecvStatus handling in the caller — signalled here by NetTimeout
/// propagating when *idle is set.
bool read_exact(ByteStream& s, std::uint8_t* buf, std::size_t want,
                bool idle_ok, bool* idle) {
  std::size_t got = 0;
  unsigned stalls = 0;
  while (got < want) {
    std::size_t n = 0;
    try {
      n = s.read_some(buf + got, want - got);
    } catch (const NetTimeout&) {
      if (got == 0 && idle_ok) {
        *idle = true;
        return false;
      }
      if (++stalls >= kFrameStallLimit) {
        throw NetError("frame: stream stalled mid-frame");
      }
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // boundary close
      throw dist::SerializeError(
          "frame: end of stream inside a frame (truncated message)");
    }
    stalls = 0;
    got += n;
  }
  return true;
}

}  // namespace

void send_frame(ByteStream& s, dist::WireKind kind,
                std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> framed =
      dist::frame_payload(kind, payload);
  s.write_all(framed.data(), framed.size());
}

RecvStatus recv_frame(ByteStream& s, Frame& out, bool idle_ok) {
  std::uint8_t header[dist::kWireFrameBytes];
  bool idle = false;
  if (!read_exact(s, header, sizeof(header), idle_ok, &idle)) {
    return idle ? RecvStatus::kIdle : RecvStatus::kEof;
  }
  // Validates magic/version/reserved and the max-payload guard before
  // the payload is allocated or read.
  const dist::FrameInfo info =
      dist::validate_frame_header({header, sizeof(header)});
  out.kind = info.kind;
  out.payload.resize(info.payload_bytes);
  if (info.payload_bytes > 0) {
    bool payload_idle = false;
    if (!read_exact(s, out.payload.data(), out.payload.size(),
                    /*idle_ok=*/false, &payload_idle)) {
      throw dist::SerializeError(
          "frame: end of stream inside a frame (truncated message)");
    }
  }
  if (dist::fnv1a64(out.payload) != info.payload_checksum) {
    throw dist::SerializeError("frame: payload checksum mismatch");
  }
  return RecvStatus::kFrame;
}

}  // namespace rvt::net

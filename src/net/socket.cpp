#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace rvt::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

TcpStream::TcpStream(int fd) : fd_(fd) {
  // Writes to a peer that already vanished must surface as NetError,
  // not kill the process.
#ifdef SO_NOSIGPIPE
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

TcpStream::~TcpStream() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t TcpStream::read_some(void* p, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got > 0) return static_cast<std::size_t>(got);
    if (got == 0) return 0;  // clean end-of-stream
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw NetTimeout("net: read timed out");
    }
    throw NetError(errno_text("net: recv"));
  }
}

void TcpStream::write_all(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  while (n > 0) {
    const ssize_t put = ::send(fd_, b, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw NetError(errno_text("net: send"));
    }
    b += put;
    n -= static_cast<std::size_t>(put);
  }
}

void TcpStream::set_read_timeout_ms(unsigned ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::unique_ptr<TcpStream> tcp_connect(const std::string& host,
                                       std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw NetError("net: cannot resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  int last_errno = 0;
  for (addrinfo* a = res; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = last_errno;
    throw NetError(errno_text(("net: connect to " + host + ":" +
                               std::to_string(port))
                                  .c_str()));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpStream>(fd);
}

TcpListener::TcpListener(std::uint16_t port) : fd_(-1) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw NetError(errno_text("net: socket"));
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = errno_text("net: bind");
    ::close(fd_);
    throw NetError(msg);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string msg = errno_text("net: getsockname");
    ::close(fd_);
    throw NetError(msg);
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 64) != 0) {
    const std::string msg = errno_text("net: listen");
    ::close(fd_);
    throw NetError(msg);
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpStream> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::make_unique<TcpStream>(fd);
    }
    if (errno == EINTR) continue;
    // close() shuts the listener down; a woken accept reports "closed",
    // not an error. The fd itself stays open until the destructor so a
    // concurrent accept can never race onto a recycled descriptor.
    if (closed_) return nullptr;
    throw NetError(errno_text("net: accept"));
  }
}

void TcpListener::close() {
  if (closed_) return;
  closed_ = true;
  ::shutdown(fd_, SHUT_RDWR);  // wakes a blocked accept (EINVAL)
}

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path) {
  const std::unique_ptr<TcpStream> s = tcp_connect(host, port);
  s->set_read_timeout_ms(5000);
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  s->write_all(req.data(), req.size());
  std::string resp;
  char buf[4096];
  for (;;) {
    const std::size_t got = s->read_some(buf, sizeof(buf));
    if (got == 0) break;
    resp.append(buf, got);
  }
  const std::size_t eol = resp.find("\r\n");
  if (eol == std::string::npos) {
    throw NetError("http: malformed response");
  }
  if (resp.compare(0, 5, "HTTP/") != 0 ||
      resp.substr(0, eol).find(" 200 ") == std::string::npos) {
    throw NetError("http: status not 200: " + resp.substr(0, eol));
  }
  const std::size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) {
    throw NetError("http: missing header terminator");
  }
  return resp.substr(body + 4);
}

}  // namespace rvt::net

// Message framing over a ByteStream: the dist/ wire format (32-byte
// checksummed header + payload), one frame per protocol message.
//
// The receive path is written against hostile transports and proves it
// in tests (tests/test_net.cpp) with 1-byte dribbles, torn tails and
// perpetual stalls:
//  * a truncated message is NEVER accepted — end-of-stream mid-frame is
//    a SerializeError, only a close at an exact frame boundary is kEof;
//  * a reader with a stream timeout NEVER blocks forever — after
//    kFrameStallLimit consecutive empty reads mid-frame it throws
//    NetError;
//  * the header's length field is validated against
//    dist::kMaxWirePayloadBytes BEFORE any payload allocation, and the
//    payload checksum is verified before the frame is surfaced.
#pragma once

#include <span>
#include <vector>

#include "dist/serialize.hpp"
#include "net/socket.hpp"

namespace rvt::net {

/// One received message: validated kind + checksum-verified payload.
struct Frame {
  dist::WireKind kind{};
  std::vector<std::uint8_t> payload;
};

enum class RecvStatus {
  kFrame,  ///< out holds a validated frame
  kEof,    ///< peer closed cleanly AT a frame boundary
  kIdle,   ///< idle_ok and the stream timed out with nothing read
};

/// Consecutive timed-out reads tolerated once a frame has begun (or at
/// a boundary when the caller did not opt into kIdle). With a typical
/// 200ms stream timeout this bounds a stalled peer at ~10s.
inline constexpr unsigned kFrameStallLimit = 50;

/// Sends one framed message.
void send_frame(ByteStream& s, dist::WireKind kind,
                std::span<const std::uint8_t> payload);

/// Reads exactly one frame; see the file comment for the guarantees.
/// Cross-version headers throw dist::WireVersionError, corruption and
/// truncation dist::SerializeError, a stalled or broken transport
/// NetError. kIdle is only returned when `idle_ok` and the first read
/// of a frame timed out with zero bytes consumed.
RecvStatus recv_frame(ByteStream& s, Frame& out, bool idle_ok = false);

}  // namespace rvt::net

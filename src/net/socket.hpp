// TCP primitives for the shard-dispatch service tier (svc/).
//
// Deliberately thin: blocking sockets, one stream class, one listener
// class, and a ByteStream abstraction so the framing layer (net/frame.hpp)
// and every protocol test can run over a scripted fake transport instead
// of a real socket. Timeouts are per-read (SO_RCVTIMEO) and surface as
// NetTimeout — the framing layer turns "timed out at a frame boundary"
// into an idle tick and "timed out mid-frame, repeatedly" into a hard
// error, so nothing above this layer ever blocks forever on a silent
// peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace rvt::net {

struct NetError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A read found no bytes within the stream's read timeout. Distinct
/// from NetError so callers can treat "peer is quiet" differently from
/// "transport is broken".
struct NetTimeout : NetError {
  using NetError::NetError;
};

/// The transport the framing layer reads and writes. Implemented by
/// TcpStream for real sockets and by scripted fakes in tests.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Blocks until at least one byte is available and returns the count
  /// read (1..n), or 0 on clean end-of-stream. Throws NetTimeout when
  /// the stream's read timeout elapses with nothing read, NetError on
  /// transport failure. May return FEWER bytes than asked — callers
  /// must loop (and the framing layer's tests deliver 1-byte dribbles
  /// to keep them honest).
  virtual std::size_t read_some(void* p, std::size_t n) = 0;

  /// Writes all n bytes or throws NetError.
  virtual void write_all(const void* p, std::size_t n) = 0;
};

/// Blocking TCP stream over an owned fd (also adopts one end of a
/// socketpair in tests).
class TcpStream final : public ByteStream {
 public:
  explicit TcpStream(int fd);
  ~TcpStream() override;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  std::size_t read_some(void* p, std::size_t n) override;
  void write_all(const void* p, std::size_t n) override;

  /// Read timeout applied to each read_some (0 = block indefinitely).
  void set_read_timeout_ms(unsigned ms);

  int fd() const { return fd_; }

 private:
  int fd_;
};

/// Connects to host:port (numeric or resolvable name). Throws NetError.
std::unique_ptr<TcpStream> tcp_connect(const std::string& host,
                                       std::uint16_t port);

/// Listening TCP socket; port 0 binds an ephemeral port (port() reports
/// the one the kernel picked — how tests and CI avoid port collisions).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; returns nullptr once close() has
  /// been called (the shutdown wakes a blocked accept). Throws NetError
  /// on any other failure.
  std::unique_ptr<TcpStream> accept();

  /// Stops accepting: wakes any blocked accept() (which then returns
  /// nullptr). Safe to call from another thread; idempotent.
  void close();

 private:
  int fd_;
  std::uint16_t port_ = 0;
  bool closed_ = false;
};

/// Minimal HTTP/1.0 GET — the metrics-endpoint client used by bench E15
/// and tests. Returns the response body; throws NetError on transport
/// failure or a non-200 status.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path);

}  // namespace rvt::net

// Batched multi-walk orbit extraction for CompiledConfigEngine.
//
// extract_orbits_batch() advances up to kBatchWalks independent
// configuration walks (different start nodes of one binding) in lockstep
// through one interleaved loop. Each iteration first runs the stamp phase
// lane by lane in a fixed order — check the visit stamp, retire the lane
// on a hit, record the configuration otherwise — and then advances every
// surviving lane one step of the compiled dynamics. The step is where the
// batch pays off: a single walk is a serial chain of dependent indexed
// loads (deg -> delta -> actd -> nbrev), so its throughput is bounded by
// memory latency; eight interleaved walks issue eight independent chains,
// filling the memory-level parallelism the hardware has to offer. The
// step has two structurally identical implementations — a scalar lane
// loop, and an AVX2 kernel that replaces the per-lane loads with vector
// gathers — selected at runtime via sim/simd.hpp. Both stamp in the same
// lane order, so the extracted orbits are bit-identical across paths.
//
// Because the lanes share the epoch's stamp table, a walk can retire
// against a configuration stamped by another IN-FLIGHT lane of the same
// batch, not just against a completed orbit. The resolution pass after
// the stepping loop finalizes lanes in dependency order:
//
//   1. lanes that hit their own stamp close their cycle directly;
//   2. lanes whose hit owner is complete (a previous extraction, or a
//      lane finalized earlier in this pass) splice via the same
//      finalize_merged() path the one-walk extractor uses;
//   3. what remains are dependency rings — lane A retired on a stamp of
//      lane B which retired on a stamp of A (possibly through more
//      lanes). The lanes of a ring jointly walked one new cycle: each
//      lane owns the segment [J_pred, I) of it, where I is the lane's
//      own length and J_pred the index at which its ring predecessor hit
//      it, so lambda is the sum of the segment lengths, each lane's
//      projection tail ends at its segment head (sn_mu = J_pred), and
//      the node/port arrays are completed by splicing the ring segments
//      in order — the entry port at each segment head is the seam port
//      its ring predecessor retired with, exactly the one-walk merge
//      seam rule applied around a ring.
//
// Ring resolution can strand chains (a lane pending on a ring lane), so
// steps 2 and 3 alternate until every lane is finalized. Which start ends
// up owning a shared cycle (Orbit::cycle_root) depends on this order and
// may differ from one-at-a-time extraction; root equality, phases and all
// verdict-relevant fields remain consistent — the differential tests
// assert orbits match field for field.
#include <cstdint>
#include <stdexcept>

#include "sim/compiled.hpp"
#include "sim/simd.hpp"

#if defined(RVT_SIMD_AVX2) && defined(__x86_64__)
#include <immintrin.h>
#endif

namespace rvt::sim {

namespace {

/// Flattened-table pointers the lane steppers read (no engine access).
struct StepTables {
  const std::int32_t* deg32;
  const std::int32_t* delta;
  const std::int32_t* actd;
  const std::uint32_t* nbrev;
  std::int32_t D;
};

/// One compiled-dynamics step for every lane in [0, W). Lanes hold
/// (sig, node, in_port) unpacked as int32; sig's low bit is the
/// first-step flag.
void step_lanes_scalar(const StepTables& tb, std::int32_t* sig,
                       std::int32_t* node, std::int32_t* inp,
                       std::size_t W) {
  const std::int32_t D = tb.D;
  for (std::size_t w = 0; w < W; ++w) {
    const std::int32_t d = tb.deg32[node[w]];
    const std::int32_t s2 =
        (sig[w] & 1)
            ? (sig[w] >> 1)
            : tb.delta[(static_cast<std::size_t>(sig[w] >> 1) * (D + 1) +
                        (inp[w] + 1)) *
                           D +
                       (d - 1)];
    const std::int32_t outp =
        tb.actd[static_cast<std::size_t>(s2) * D + (d - 1)];
    sig[w] = s2 << 1;
    if (outp >= 0) {
      const std::uint32_t packed =
          tb.nbrev[static_cast<std::size_t>(node[w]) * D + outp];
      node[w] = static_cast<std::int32_t>(packed >> 8);
      inp[w] = static_cast<std::int32_t>(packed & 255);
    } else {
      inp[w] = -1;
    }
  }
}

#if defined(RVT_SIMD_AVX2) && defined(__x86_64__)
/// The same step as vector gathers over all kBatchWalks lanes at once.
/// Retired lanes keep stepping harmlessly ("zombie lanes"): the compiled
/// map is total, so their state stays in-domain and is simply never read
/// again — cheaper than masking every gather.
__attribute__((target("avx2"))) void step_lanes_avx2(const StepTables& tb,
                                                     std::int32_t* sig,
                                                     std::int32_t* node,
                                                     std::int32_t* inp) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i vD = _mm256_set1_epi32(tb.D);
  const __m256i vD1 = _mm256_set1_epi32(tb.D + 1);

  const __m256i vsig =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(sig));
  const __m256i vnode =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(node));
  const __m256i vinp =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(inp));

  const __m256i vd = _mm256_i32gather_epi32(tb.deg32, vnode, 4);
  const __m256i dm1 = _mm256_sub_epi32(vd, one);
  const __m256i s1 = _mm256_srai_epi32(vsig, 1);
  // delta index: (s1 * (D + 1) + (inp + 1)) * D + (d - 1)
  const __m256i didx = _mm256_add_epi32(
      _mm256_mullo_epi32(
          _mm256_add_epi32(_mm256_mullo_epi32(s1, vD1),
                           _mm256_add_epi32(vinp, one)),
          vD),
      dm1);
  const __m256i vdelta = _mm256_i32gather_epi32(tb.delta, didx, 4);
  // First-step lanes (sig bit 0) act from their state without transition.
  const __m256i first =
      _mm256_cmpeq_epi32(_mm256_and_si256(vsig, one), one);
  const __m256i s2 = _mm256_blendv_epi8(vdelta, s1, first);
  // Resolved action per (state, degree): -1 = stay, else the exit port.
  const __m256i aidx =
      _mm256_add_epi32(_mm256_mullo_epi32(s2, vD), dm1);
  const __m256i vout = _mm256_i32gather_epi32(tb.actd, aidx, 4);
  const __m256i stay = _mm256_cmpgt_epi32(zero, vout);
  // Stay lanes gather port 0 (always in range) and discard the result.
  const __m256i nidx = _mm256_add_epi32(_mm256_mullo_epi32(vnode, vD),
                                        _mm256_max_epi32(vout, zero));
  const __m256i packed = _mm256_i32gather_epi32(
      reinterpret_cast<const std::int32_t*>(tb.nbrev), nidx, 4);
  const __m256i moved_node = _mm256_srli_epi32(packed, 8);
  const __m256i moved_port =
      _mm256_and_si256(packed, _mm256_set1_epi32(255));

  _mm256_store_si256(reinterpret_cast<__m256i*>(sig),
                     _mm256_slli_epi32(s2, 1));
  _mm256_store_si256(reinterpret_cast<__m256i*>(node),
                     _mm256_blendv_epi8(moved_node, vnode, stay));
  _mm256_store_si256(
      reinterpret_cast<__m256i*>(inp),
      _mm256_blendv_epi8(moved_port, _mm256_set1_epi32(-1), stay));
}
#endif

}  // namespace

void CompiledConfigEngine::extract_orbits_batch(
    std::span<const tree::NodeId> starts) const {
  if (!tables_valid_) {
    throw std::logic_error(
        "CompiledConfigEngine: extraction after rebind_adopted — the "
        "compiled tables belong to an older binding (full rebind needed)");
  }
  const std::size_t W = starts.size();
  // Lane state, unpacked SoA so the SIMD kernel can load it whole.
  alignas(32) std::int32_t sig[kBatchWalks];
  alignas(32) std::int32_t node[kBatchWalks];
  alignas(32) std::int32_t inp[kBatchWalks];
  struct Lane {
    std::uint32_t start = 0;
    std::uint64_t steps = 0;       ///< own recorded length I
    bool active = false;
    bool resolved = false;
    std::uint32_t hit_owner = 0;   ///< stamp owner the lane retired on
    std::uint32_t hit_j = 0;       ///< stamp index within the owner's walk
    std::int16_t seam_port = 0;    ///< lane's own entry port at retirement
    Orbit* out = nullptr;
  };
  Lane lane[kBatchWalks];

  const std::int32_t init_sig = (automaton_.initial << 1) | 1;
  for (std::size_t w = 0; w < kBatchWalks; ++w) {
    // Unused lanes carry lane 0's start configuration: the SIMD kernel
    // steps all kBatchWalks lanes unconditionally, so every lane must
    // hold in-domain values; inactive lanes never stamp or record.
    const tree::NodeId s = w < W ? starts[w] : starts[0];
    sig[w] = init_sig;
    node[w] = s;
    inp[w] = -1;
    if (w < W) {
      lane[w].start = static_cast<std::uint32_t>(s);
      lane[w].active = true;
      lane[w].out = &orbits_[static_cast<std::size_t>(s)];
      lane[w].out->node.clear();
      lane[w].out->in_port.clear();
    }
  }
  extracted_count_ += W;

  const StepTables tb{deg32_.data(), delta_.data(), actd_.data(),
                      nbrev_.data(), max_deg_};
  const std::uint32_t sig_span =
      static_cast<std::uint32_t>(automaton_.num_states()) * 2;
  const std::int32_t pslots = port_slots_;
#if defined(RVT_SIMD_AVX2) && defined(__x86_64__)
  const bool use_avx2 = simd_enabled();
#endif

  std::size_t remaining = W;
  while (remaining > 0) {
    // Stamp phase, in lane order (the order defines which walk owns a
    // configuration both lanes reach the same iteration — deterministic
    // and identical across the scalar and SIMD step paths).
    for (std::size_t w = 0; w < W; ++w) {
      Lane& L = lane[w];
      if (!L.active) continue;
      const std::int32_t pslot = pslots == 1 ? 0 : inp[w] + 1;
      Stamp& stamp =
          stamps_[(static_cast<std::size_t>(node[w]) * pslots + pslot) *
                      sig_span +
                  sig[w]];
      if (stamp.epoch == epoch_) {
        L.active = false;
        L.hit_owner = stamp.owner;
        L.hit_j = stamp.index;
        L.seam_port = static_cast<std::int16_t>(inp[w]);
        --remaining;
        continue;
      }
      stamp = {epoch_, L.start, static_cast<std::uint32_t>(L.steps)};
      L.out->node.push_back(static_cast<tree::NodeId>(node[w]));
      L.out->in_port.push_back(static_cast<std::int16_t>(inp[w]));
      ++L.steps;
    }
    if (remaining == 0) break;
#if defined(RVT_SIMD_AVX2) && defined(__x86_64__)
    if (use_avx2) {
      step_lanes_avx2(tb, sig, node, inp);
    } else {
      step_lanes_scalar(tb, sig, node, inp, W);
    }
#else
    step_lanes_scalar(tb, sig, node, inp, W);
#endif
  }

  // --- Resolution ---------------------------------------------------------
  const auto lane_of = [&](std::uint32_t owner) -> int {
    for (std::size_t w = 0; w < W; ++w) {
      if (lane[w].start == owner) return static_cast<int>(w);
    }
    return -1;
  };
  const auto finalize_seams = [&](Orbit& out) {
    if (out.in_port[out.sn_mu] == out.in_port[out.sn_mu + out.lambda]) {
      out.mu = out.sn_mu;
      out.node.pop_back();
      out.in_port.pop_back();
    } else {
      out.mu = out.sn_mu + 1;
    }
    build_first_visit(out, n_);
  };

  // 1. Lanes that closed their own cycle.
  std::size_t unresolved = W;
  for (std::size_t w = 0; w < W; ++w) {
    Lane& L = lane[w];
    if (L.hit_owner != L.start) continue;
    Orbit& out = *L.out;
    out.sn_mu = L.hit_j;
    out.lambda = L.steps - L.hit_j;
    out.cycle_root = L.start;
    out.cycle_phase = 0;
    if (out.in_port[out.sn_mu] == L.seam_port) {
      out.mu = out.sn_mu;
    } else {
      out.mu = out.sn_mu + 1;
      out.node.push_back(out.node[out.sn_mu]);  // same projection pair
      out.in_port.push_back(L.seam_port);
    }
    build_first_visit(out, n_);
    orbit_epoch_[L.start] = epoch_;
    L.resolved = true;
    --unresolved;
  }

  while (unresolved > 0) {
    // 2. Chains onto completed orbits (previous extractions or lanes
    // already finalized this pass).
    bool progress = false;
    for (std::size_t w = 0; w < W; ++w) {
      Lane& L = lane[w];
      if (L.resolved) continue;
      const int ow = lane_of(L.hit_owner);
      if (ow >= 0 && !lane[ow].resolved) continue;
      finalize_merged(*L.out, orbits_[L.hit_owner], L.steps, L.hit_j,
                      L.seam_port);
      orbit_epoch_[L.start] = epoch_;
      L.resolved = true;
      --unresolved;
      progress = true;
    }
    if (progress || unresolved == 0) continue;

    // 3. A dependency ring. Follow owner links from the first unresolved
    // lane; the cyclic part of the walk is the ring (the prefix, if any,
    // is a chain step 2 will pick up afterwards).
    int walk_pos[kBatchWalks];
    int walk_order[kBatchWalks];
    for (std::size_t w = 0; w < kBatchWalks; ++w) walk_pos[w] = -1;
    int cur = -1;
    for (std::size_t w = 0; w < W; ++w) {
      if (!lane[w].resolved) {
        cur = static_cast<int>(w);
        break;
      }
    }
    int depth = 0;
    while (walk_pos[cur] < 0) {
      walk_pos[cur] = depth;
      walk_order[depth++] = cur;
      cur = lane_of(lane[cur].hit_owner);  // unresolved in-batch by step 2
    }
    const int ring_begin = walk_pos[cur];
    const int c = depth - ring_begin;
    const int* ring = walk_order + ring_begin;  // r[t]'s owner is r[t+1 mod c]

    // Segment of r[t] is [J_pred, I_t): the jointly-walked cycle in order.
    std::uint64_t lambda = 0;
    std::uint64_t seg_len[kBatchWalks];
    for (int t = 0; t < c; ++t) {
      const Lane& pred = lane[ring[(t + c - 1) % c]];
      seg_len[t] = lane[ring[t]].steps - pred.hit_j;
      lambda += seg_len[t];
    }
    std::uint64_t phase = 0;
    for (int t = 0; t < c; ++t) {
      Lane& L = lane[ring[t]];
      const Lane& pred = lane[ring[(t + c - 1) % c]];
      Orbit& out = *L.out;
      out.lambda = lambda;
      out.sn_mu = pred.hit_j;
      out.cycle_root = lane[ring[0]].start;
      out.cycle_phase = phase;
      // Splice the remaining cycle + seam entry from the ring segments,
      // starting at the lane's own retirement point. Only indices below a
      // host's own length are read, so hosts finalized earlier in this
      // ring (whose arrays have grown) still serve their segment intact.
      const std::uint64_t need = out.sn_mu + lambda + 1;
      int u = (t + 1) % c;
      std::uint64_t m = L.hit_j;
      bool at_head = true;
      for (std::uint64_t i = L.steps; i < need; ++i) {
        const Lane& H = lane[ring[u]];
        const Lane& hpred = lane[ring[(u + c - 1) % c]];
        out.node.push_back(H.out->node[m]);
        out.in_port.push_back(at_head ? hpred.seam_port
                                      : H.out->in_port[m]);
        at_head = false;
        if (++m == H.steps) {
          u = (u + 1) % c;
          m = lane[ring[(u + c - 1) % c]].hit_j;
          at_head = true;
        }
      }
      finalize_seams(out);
      orbit_epoch_[L.start] = epoch_;
      L.resolved = true;
      --unresolved;
      phase += seg_len[t];
    }
  }
}

}  // namespace rvt::sim

// Runtime SIMD dispatch for the batched orbit stepper.
//
// The batched stepper (sim/compiled_batch.cpp) has two structurally
// identical implementations: a scalar lane loop, and an AVX2 kernel that
// advances all lanes through one gather-based step. Which one runs is
// decided once per process:
//
//  * compile-time: the AVX2 kernel exists only when the build enables it
//    (CMake option RVT_SIMD, on by default; -DRVT_SIMD=OFF builds the
//    scalar-only library for hardware without AVX2 — CI exercises that
//    configuration explicitly);
//  * run-time: the CPU must actually report AVX2 (checked via
//    __builtin_cpu_supports at first use), and the RVT_SIMD environment
//    variable can force the scalar path ("0", "off", "scalar" — useful to
//    time or differential-test both paths with one binary);
//  * programmatic: set_simd_enabled(false) forces the scalar path from
//    tests regardless of hardware (it can only narrow the choice —
//    enabling has no effect when the binary or CPU lacks AVX2).
//
// Both paths produce bit-identical orbits, so dispatch is purely a
// performance decision; the differential tests assert exactly that.
#pragma once

namespace rvt::sim {

/// True iff the AVX2 batched stepper is compiled in AND the CPU supports
/// it AND the environment does not force scalar. Decided once, cached.
bool simd_available();

/// Whether the batched stepper currently takes the SIMD path:
/// simd_available() and not programmatically disabled.
bool simd_enabled();

/// Narrow (or restore) the runtime choice; enabling is a no-op when
/// simd_available() is false. Not thread-safe against concurrent batched
/// extraction — flip it between sweeps (tests, benches).
void set_simd_enabled(bool enabled);

/// "avx2" or "scalar" — the path the batched stepper takes right now;
/// recorded by the bench JSON reports for trajectory comparability.
const char* simd_path_name();

}  // namespace rvt::sim

// Sharded cross-worker orbit cache.
//
// Exhaustive enumeration fans (automaton x instance) grids across sweep
// workers, and each worker owns a private CompiledConfigEngine — so
// without coordination the same (tree, automaton) binding's orbits are
// extracted once per WORKER whenever a binding is visited by more than
// one of them (grids spanning chunks, repeated profile passes, warm-up +
// timed runs). OrbitCache makes extraction once-per-MACHINE: workers
// publish the immutable OrbitSet they extracted (orbits + collision
// tables) under a 128-bit content key of the binding, and every other
// worker adopts the published set read-only.
//
// Concurrency design:
//  * N shards, selected by key hash. Each shard keeps its published
//    entries in a fixed-capacity open-addressed table of atomic entry
//    pointers — the HIT path linear-probes it lock-free (acquire loads
//    only; entries are immutable and never removed within an epoch, so
//    probing is sound without any reader coordination). Capacity is fixed
//    up front: an enumeration knows its scale, and a growable lock-free
//    table is complexity the workloads don't need — a full shard simply
//    rejects further publishes (counted).
//  * Misses take the shard mutex. The first worker to miss a key CLAIMS
//    it (acquire() returns nullptr) and must publish() or abandon() it;
//    workers that miss a claimed key block on the shard condition
//    variable until the publisher finishes, then adopt the published set
//    — so no orbit set is ever extracted twice for one (key, epoch),
//    which the concurrency tests assert via engine extraction counters.
//    (If a publish is rejected over budget, or a claim abandoned, the
//    blocked workers re-contend and one of them extracts — the
//    no-duplicate guarantee is best-effort only once the budget is hit.)
//  * Epochs invalidate in O(1): advance_epoch() bumps the epoch counter
//    and frees stale entries. It is NOT safe concurrently with
//    acquire/publish — quiesce workers between sweeps first (the
//    enumeration harness does: epochs advance between phases, never
//    inside one).
//
// The memory budget caps the bytes of published sets; past it, publishes
// are rejected (counted in stats) and workers simply keep their private
// extraction — the cache degrades to a no-op rather than evicting under
// readers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/compiled.hpp"

namespace rvt::sim {

/// 128-bit content key identifying one (tree, automaton) binding. Two
/// independent 64-bit FNV-1a streams over the serialized tables make an
/// accidental collision astronomically unlikely at enumeration scale
/// (~2^-65 per pair of distinct bindings).
struct OrbitKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const OrbitKey&, const OrbitKey&) = default;
};

/// Content hash of a tree's port-labeled structure (degree sequence +
/// (neighbor, reverse port) per port). Compute once per tree and combine
/// with automaton keys — hashing the tree per rebind would waste the
/// zero-allocation sweep loop.
OrbitKey tree_orbit_key(const tree::Tree& t);
/// Content hash of an automaton's tables.
OrbitKey automaton_orbit_key(const TabularAutomaton& a);
/// Content hash of the automaton's canonical reachable form
/// (sim::canonical_reachable_form): enumerated bindings that differ only
/// in unreachable states, state numbering, impossible-input entries or
/// degree-equivalent actions hash to ONE key, so the cache extracts and
/// publishes their (identical) orbits once. The enumeration pipeline
/// keys bindings with this; verdicts are unchanged because key-equal
/// automata produce identical trajectories on every tree the binding
/// can query.
OrbitKey canonical_automaton_key(const TabularAutomaton& a);
/// Order-sensitive combination of two keys.
OrbitKey combine_orbit_keys(const OrbitKey& tree, const OrbitKey& automaton);

/// Fault-handling counters of a durable tier. Every OrbitStore reports
/// them (zeros when the implementation has no fault handling) so the
/// shard runner can surface retry/degradation telemetry without knowing
/// the concrete tier — the counters ride EnumTelemetry into journal-run
/// output and the bench-report `faults` block.
struct OrbitTierFaultStats {
  std::uint64_t retries = 0;      ///< transient IO failures re-attempted
  std::uint64_t exhausted = 0;    ///< operations that failed every attempt
  std::uint64_t quarantined = 0;  ///< corrupt tier files renamed aside
  bool degraded = false;          ///< tier disabled itself (compute-through)
};

/// Durable second tier behind an OrbitCache: a key-value store of
/// published OrbitSets shared ACROSS processes (dist/serialize.hpp's
/// FsOrbitStore backs it with one file per 128-bit content key on a
/// shared filesystem). The cache consults it with the claim already
/// held, so the claim/publish discipline extends across the machine
/// boundary: at most one worker PER PROCESS pays the load, and every
/// in-memory publish is forwarded for other processes to adopt.
class OrbitStore {
 public:
  virtual ~OrbitStore() = default;
  /// Fault counters accumulated so far; default: a tier with no fault
  /// handling reports zeros.
  virtual OrbitTierFaultStats fault_stats() const { return {}; }
  /// The stored set for `key`, or nullptr when absent — and on ANY
  /// failure (unreadable, truncated, corrupt): a broken tier entry must
  /// degrade to a cache miss, never into an exception on the sweep path.
  virtual std::shared_ptr<const CompiledConfigEngine::OrbitSet> load(
      const OrbitKey& key) = 0;
  /// Best-effort durable publish; failures are swallowed (the in-memory
  /// tier stays authoritative). Implementations must publish atomically
  /// (write-temp + rename) so concurrent writers of one key — identical
  /// payloads by content addressing — can never expose a torn file.
  virtual void store(
      const OrbitKey& key,
      const std::shared_ptr<const CompiledConfigEngine::OrbitSet>& set) = 0;
};

class OrbitCache {
 public:
  using OrbitSet = CompiledConfigEngine::OrbitSet;

  struct Stats {
    std::uint64_t hits = 0;       ///< acquire served a published set
    std::uint64_t misses = 0;     ///< acquire granted a claim
    std::uint64_t waits = 0;      ///< acquire blocked on another's claim
    std::uint64_t publishes = 0;  ///< sets accepted into the cache
    std::uint64_t rejects = 0;    ///< publishes dropped (budget/capacity)
    std::uint64_t tier_hits = 0;    ///< claims served by the backing tier
    std::uint64_t tier_stores = 0;  ///< publishes forwarded to the tier
  };

  /// `shard_count` is rounded up to a power of two (default 16);
  /// `capacity` is the total entry budget across shards (rounded so each
  /// shard's table is a power of two; default 2^17 entries ~ 1 MiB of
  /// slots); `max_bytes` caps the approximate footprint of published sets
  /// (default 2 GiB — far above the batteries' needs, so rejects only
  /// guard runaway workloads).
  explicit OrbitCache(unsigned shard_count = 16,
                      std::size_t capacity = std::size_t{1} << 17,
                      std::size_t max_bytes = std::size_t{1} << 31);
  ~OrbitCache();

  OrbitCache(const OrbitCache&) = delete;
  OrbitCache& operator=(const OrbitCache&) = delete;

  /// Attaches a durable backing tier (not owned; must outlive the
  /// cache). acquire() consults it before granting a claim — a tier hit
  /// is published into the memory table and served like any other hit —
  /// and publish() forwards accepted sets to it. NOT thread-safe: attach
  /// before the workers start, like the constructor parameters.
  void set_backing(OrbitStore* store) { backing_ = store; }

  /// The attached tier (or nullptr) — the shard runner reads its fault
  /// counters through this after a run.
  OrbitStore* backing() const { return backing_; }

  /// Lock-free on hit: the published set for `key` in the current epoch.
  /// On miss the backing tier (if any) is consulted — a tier hit is
  /// published and returned like a memory hit. Otherwise the caller
  /// becomes the key's PUBLISHER (returns nullptr) and must call
  /// publish() or abandon() for the same key — other workers asking for
  /// it block until then.
  std::shared_ptr<const OrbitSet> acquire(const OrbitKey& key);

  /// Non-claiming lock-free probe: the published set or nullptr, with no
  /// claim, no blocking and no stats. The raw pointer stays valid until
  /// advance_epoch() (entries are never freed within an epoch) — the
  /// prefetch hint path of the enumeration pipeline, not a substitute
  /// for acquire().
  const OrbitSet* peek(const OrbitKey& key) const;

  /// Publishes the claimed key's set and wakes its waiters. Over budget
  /// the set is dropped (waiters wake, re-contend, and one re-extracts).
  void publish(const OrbitKey& key, std::shared_ptr<const OrbitSet> set);

  /// Releases a claim without publishing (extraction failed); waiters
  /// re-contend for the claim.
  void abandon(const OrbitKey& key);

  /// Invalidates every entry and frees them. Requires quiescence: no
  /// concurrent acquire/publish, no outstanding claims.
  void advance_epoch();

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  std::size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  Stats stats() const;

 private:
  struct Node {
    OrbitKey key;
    std::uint64_t epoch = 0;
    std::shared_ptr<const OrbitSet> set;
  };
  /// One probe slot: the key mirror lives next to the pointer so a probe
  /// costs one cache line, not a Node dereference per compared entry.
  /// The publisher writes hi/lo before the release store of node (under
  /// the shard mutex); readers only read them after an acquire load sees
  /// node != nullptr, so the mirrors are race-free.
  struct Slot {
    std::atomic<Node*> node{nullptr};
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
  };
  struct Shard {
    /// Open-addressed, linear-probed, power-of-two sized. Slots go from
    /// nullptr to a published Node exactly once per epoch (store-release
    /// under the shard mutex); readers probe with acquire loads only.
    std::vector<Slot> slots;
    std::size_t filled = 0;  ///< guarded by mu
    std::mutex mu;
    std::condition_variable cv;
    std::vector<OrbitKey> claimed;  ///< keys currently being extracted
  };

  /// The memory-table half of publish(): releases the claim, installs
  /// the entry, wakes waiters. publish() additionally forwards to the
  /// backing tier; the tier-hit path of acquire() must not (it would
  /// re-store the bytes it just loaded).
  void publish_local(const OrbitKey& key, std::shared_ptr<const OrbitSet> set);

  Shard& shard_for(const OrbitKey& key);
  const Shard& shard_for(const OrbitKey& key) const;
  static std::size_t probe_start(const Shard& sh, const OrbitKey& key);
  /// Lock-free probe for `key`; returns the node or nullptr.
  static const Node* find(const Shard& sh, const OrbitKey& key,
                          std::uint64_t epoch);

  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t max_bytes_ = 0;
  OrbitStore* backing_ = nullptr;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, waits_{0}, publishes_{0},
      rejects_{0}, tier_hits_{0}, tier_stores_{0};
};

}  // namespace rvt::sim

#include "sim/simulator.hpp"

#include <stdexcept>

namespace rvt::sim {

TwoAgentRun::TwoAgentRun(const tree::Tree& t, Agent& a, Agent& b,
                         const RunConfig& cfg)
    : t_(t),
      a_(a),
      b_(b),
      pos_a_{cfg.start_a, -1},
      pos_b_{cfg.start_b, -1},
      delay_a_(cfg.delay_a),
      delay_b_(cfg.delay_b) {
  if (cfg.start_a < 0 || cfg.start_a >= t.node_count() || cfg.start_b < 0 ||
      cfg.start_b >= t.node_count()) {
    throw std::invalid_argument("TwoAgentRun: start out of range");
  }
  if (cfg.start_a == cfg.start_b) {
    throw std::invalid_argument("TwoAgentRun: starts must differ");
  }
}

void TwoAgentRun::step_agent(Agent& ag, tree::WalkPos& pos,
                             std::uint64_t delay, std::uint64_t& moves) {
  if (round_ < delay) return;  // not started yet: physically idle
  const Observation obs{pos.in_port, t_.degree(pos.node)};
  const int action = ag.step(obs);
  if (action == kStay) {
    pos.in_port = -1;  // paper: after a null move the input reads (-1, d)
    return;
  }
  if (action < 0) {
    throw std::logic_error("Agent returned an action < -1");
  }
  const int d = t_.degree(pos.node);
  const tree::Port out = static_cast<tree::Port>(action % d);
  const tree::NodeId next = t_.neighbor(pos.node, out);
  pos = {next, t_.reverse_port(pos.node, out)};
  ++moves;
}

bool TwoAgentRun::tick() {
  step_agent(a_, pos_a_, delay_a_, moves_a_);
  step_agent(b_, pos_b_, delay_b_, moves_b_);
  ++round_;
  return pos_a_.node == pos_b_.node;
}

GatherResult run_gathering(const tree::Tree& t,
                           const std::vector<Agent*>& agents,
                           const GatherConfig& cfg) {
  const std::size_t k = agents.size();
  if (k < 2) throw std::invalid_argument("run_gathering: need >= 2 agents");
  if (cfg.starts.size() != k) {
    throw std::invalid_argument("run_gathering: starts size mismatch");
  }
  if (!cfg.delays.empty() && cfg.delays.size() != k) {
    throw std::invalid_argument("run_gathering: delays size mismatch");
  }
  if (cfg.max_rounds == 0) {
    throw std::invalid_argument("run_gathering: max_rounds must be > 0");
  }
  std::vector<tree::WalkPos> pos(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (cfg.starts[i] < 0 || cfg.starts[i] >= t.node_count()) {
      throw std::invalid_argument("run_gathering: start out of range");
    }
    pos[i] = {cfg.starts[i], -1};
  }

  GatherResult r;
  for (std::uint64_t round = 0; round < cfg.max_rounds; ++round) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t delay = cfg.delays.empty() ? 0 : cfg.delays[i];
      if (round < delay) continue;
      const Observation obs{pos[i].in_port, t.degree(pos[i].node)};
      const int action = agents[i]->step(obs);
      if (action == kStay) {
        pos[i].in_port = -1;
        continue;
      }
      if (action < 0) throw std::logic_error("Agent action < -1");
      const int d = t.degree(pos[i].node);
      const tree::Port out = static_cast<tree::Port>(action % d);
      const tree::NodeId next = t.neighbor(pos[i].node, out);
      pos[i] = {next, t.reverse_port(pos[i].node, out)};
    }
    // Gathering demands ALL k agents on one node: resolve the common node
    // first and only report it once every position matched — a strict
    // subset meeting somewhere (e.g. two of three agents colliding) must
    // never be reported as a gathering.
    const tree::NodeId everyone_at = pos[0].node;
    bool all_same = true;
    for (std::size_t i = 1; i < k; ++i) {
      all_same = all_same && pos[i].node == everyone_at;
    }
    r.rounds_executed = round + 1;
    if (all_same) {
      r.gathered = true;
      r.gather_round = round;
      r.gather_node = everyone_at;
      break;
    }
  }
  for (Agent* a : agents) r.memory_bits.push_back(a->memory_bits());
  return r;
}

RunResult run_rendezvous(const tree::Tree& t, Agent& a, Agent& b,
                         const RunConfig& cfg, const TraceFn& trace) {
  if (cfg.max_rounds == 0) {
    throw std::invalid_argument("run_rendezvous: max_rounds must be > 0");
  }
  TwoAgentRun run(t, a, b, cfg);
  RunResult r;
  for (std::uint64_t round = 0; round < cfg.max_rounds; ++round) {
    const bool met = run.tick();
    if (trace) trace(round, run.pos_a(), run.pos_b());
    if (met) {
      r.met = true;
      r.meeting_round = round;
      r.meeting_node = run.pos_a().node;
      break;
    }
  }
  r.rounds_executed = run.round();
  r.moves_a = run.moves_a();
  r.moves_b = run.moves_b();
  r.memory_bits_a = a.memory_bits();
  r.memory_bits_b = b.memory_bits();
  return r;
}

}  // namespace rvt::sim

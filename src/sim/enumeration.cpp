#include "sim/enumeration.hpp"

#include <stdexcept>

#include "sim/verify_core.hpp"

namespace rvt::sim {

EnumerationContext::EnumerationContext(std::span<const EnumGrid> grids,
                                       std::uint64_t max_rounds,
                                       OrbitCache* cache)
    : grids_(grids), max_rounds_(max_rounds), cache_(cache) {
  if (max_rounds_ == 0) {
    throw std::invalid_argument(
        "EnumerationContext: max_rounds must be > 0");
  }
  slots_.resize(grids_.size());
  for (std::size_t g = 0; g < grids_.size(); ++g) {
    const EnumGrid& grid = grids_[g];
    if (grid.tree == nullptr || grid.tree->node_count() < 2) {
      throw std::invalid_argument(
          "EnumerationContext: grid needs a tree with >= 2 nodes");
    }
    const tree::NodeId n = grid.tree->node_count();
    Slot& slot = slots_[g];
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    for (const PairQuery& q : grid.queries) {
      if (q.start_a < 0 || q.start_a >= n || q.start_b < 0 ||
          q.start_b >= n) {
        throw std::invalid_argument("EnumerationContext: start range");
      }
      if (q.start_a == q.start_b) {
        throw std::invalid_argument(
            "EnumerationContext: starts must differ");
      }
      for (const tree::NodeId s : {q.start_a, q.start_b}) {
        if (!seen[static_cast<std::size_t>(s)]) {
          seen[static_cast<std::size_t>(s)] = 1;
          slot.warm_starts.push_back(s);
        }
      }
    }
    slot.orbit_ptr.assign(static_cast<std::size_t>(n), nullptr);
    if (cache_ != nullptr) slot.tree_key = tree_orbit_key(*grid.tree);
  }
}

void EnumerationContext::bind(const TabularAutomaton& a) {
  automaton_ = &a;
  ++serial_;
  automaton_key_valid_ = false;
}

EnumerationContext::Slot& EnumerationContext::prepare(std::size_t g) {
  if (automaton_ == nullptr) {
    throw std::logic_error("EnumerationContext: bind() an automaton first");
  }
  Slot& slot = slots_[g];
  if (slot.warmed_serial == serial_) return slot;
  const bool constructed = !slot.engine.has_value();
  if (constructed) {
    slot.engine.emplace(*grids_[g].tree, *automaton_);
  }
  const bool bound = slot.bound_serial == serial_;  // via prepare_scan
  slot.cache_hit = false;
  if (!bound) ++stats_.bindings;
  if (cache_ != nullptr) {
    if (!automaton_key_valid_) {
      automaton_key_ = automaton_orbit_key(*automaton_);
      automaton_key_valid_ = true;
    }
    const OrbitKey key = combine_orbit_keys(slot.tree_key, automaton_key_);
    auto set = cache_->acquire(key);
    if (set != nullptr) {
      // Adopt only if the published set covers every start this grid
      // queries (it does when the key was published by a same-grid
      // worker; a different grid's publication may not) — then the
      // engine skips recompiling its tables entirely, and prefetching
      // the set's buffers hides their DRAM latency behind the rest of
      // the preparation.
      bool covered = true;
      for (const tree::NodeId s : slot.warm_starts) {
        if (!set->has_orbit[static_cast<std::size_t>(s)]) {
          covered = false;
          break;
        }
        const auto& o = set->orbits[static_cast<std::size_t>(s)];
        // The orbit pointers come straight from the set (stable: the
        // engine holds the shared_ptr until its next rebind), and the
        // prefetches pull the buffers the verdict loop will touch.
        slot.orbit_ptr[static_cast<std::size_t>(s)] = &o;
        __builtin_prefetch(o.node.data());
        __builtin_prefetch(o.first_visit.data());
      }
      if (covered) {
        slot.engine->rebind_adopted(std::move(set));
        slot.cache_hit = true;
        ++stats_.cache_hits;
        slot.bound_serial = serial_;
        slot.warmed_serial = serial_;
        return slot;
      } else {
        // Partial coverage: bind fully and extract the gaps locally (we
        // hold no claim, so nothing is published).
        if (!constructed && !bound) slot.engine->rebind(*automaton_);
        slot.engine->adopt_shared_orbits(std::move(set));
        slot.engine->warm_orbits(slot.warm_starts);
        slot.cache_hit = true;
        ++stats_.cache_hits;
      }
    } else {
      // We hold the claim: extract the whole grid's needs (orbits via the
      // batched stepper, collision tables of shared cycles) and publish.
      ++stats_.cache_misses;
      try {
        if (!constructed && !bound) slot.engine->rebind(*automaton_);
        const CompiledConfigEngine& e = *slot.engine;
        e.warm_orbits(slot.warm_starts);
        tree::NodeId pa = -1, pb = -1;
        for (const PairQuery& q : grids_[g].queries) {
          if (q.start_a == pa && q.start_b == pb) continue;  // delay run
          pa = q.start_a;
          pb = q.start_b;
          const auto& A = e.orbit(q.start_a);
          const auto& B = e.orbit(q.start_b);
          if (A.lambda <= CompiledConfigEngine::kCollisionLimit &&
              B.lambda <= CompiledConfigEngine::kCollisionLimit) {
            e.cycle_pair_collisions(A.cycle_root, B.cycle_root);
          }
        }
        cache_->publish(key, e.snapshot_orbits());
      } catch (...) {
        cache_->abandon(key);
        throw;
      }
    }
  } else {
    if (!constructed && !bound) slot.engine->rebind(*automaton_);
    slot.engine->warm_orbits(slot.warm_starts);
  }
  // Orbit references are stable for the rest of the binding (every start
  // a query can touch is warmed); snapshot them for the verdict loops.
  for (const tree::NodeId s : slot.warm_starts) {
    slot.orbit_ptr[static_cast<std::size_t>(s)] = &slot.engine->orbit(s);
  }
  slot.bound_serial = serial_;
  slot.warmed_serial = serial_;
  return slot;
}

EnumerationContext::Slot& EnumerationContext::prepare_scan(std::size_t g) {
  if (automaton_ == nullptr) {
    throw std::logic_error("EnumerationContext: bind() an automaton first");
  }
  if (cache_ != nullptr) return prepare(g);  // cached sweeps warm fully
  Slot& slot = slots_[g];
  if (slot.bound_serial == serial_) return slot;
  if (!slot.engine.has_value()) {
    slot.engine.emplace(*grids_[g].tree, *automaton_);
  } else {
    slot.engine->rebind(*automaton_);
  }
  slot.cache_hit = false;
  ++stats_.bindings;
  slot.bound_serial = serial_;
  return slot;
}

void EnumerationContext::prefetch_next(std::size_t g) {
  if (cache_ == nullptr || !automaton_key_valid_) return;
  const std::size_t h = g + 1;
  if (h >= grids_.size()) return;
  Slot& next = slots_[h];
  if (next.bound_serial == serial_) return;  // already prepared
  const CompiledConfigEngine::OrbitSet* set =
      cache_->peek(combine_orbit_keys(next.tree_key, automaton_key_));
  if (set == nullptr) return;
  // Pull everything the next binding's verdict loop will touch: the
  // published sets live in DRAM between passes (the working set of a
  // battery far exceeds the caches), and the current grid's ~microseconds
  // of query work are exactly the lead time needed to hide that latency.
  const char* headers =
      reinterpret_cast<const char*>(set->orbits.data());
  const std::size_t header_bytes =
      set->orbits.size() * sizeof(CompiledConfigEngine::Orbit);
  for (std::size_t off = 0; off < header_bytes; off += 64) {
    __builtin_prefetch(headers + off);
  }
  const char* cindex =
      reinterpret_cast<const char*>(set->collision_index.data());
  const std::size_t cindex_bytes =
      set->collision_index.size() * sizeof(std::int32_t);
  for (std::size_t off = 0; off < cindex_bytes; off += 64) {
    __builtin_prefetch(cindex + off);
  }
  for (const auto& pair : set->collisions) {
    __builtin_prefetch(pair.table.data());
  }
  for (const tree::NodeId s : next.warm_starts) {
    if (!set->has_orbit[static_cast<std::size_t>(s)]) return;
    const auto& o = set->orbits[static_cast<std::size_t>(s)];
    __builtin_prefetch(o.node.data());
    __builtin_prefetch(o.first_visit.data());
  }
}

namespace {

/// Battery grids are pair-major runs of delays: refresh the pair-invariant
/// state only when the (start_a, start_b) pair changes.
inline void refresh_pair(detail::PairState& st,
                         const CompiledConfigEngine& e,
                         const CompiledConfigEngine::Orbit* const* optr,
                         const PairQuery& q) {
  if (st.start_a != q.start_a || st.start_b != q.start_b) {
    st = detail::make_pair_state(e, *optr[q.start_a], *optr[q.start_b],
                                 /*same_engine=*/true, q.start_a, q.start_b);
  }
}

}  // namespace

std::span<const Verdict> EnumerationContext::verify(std::size_t g) {
  Slot& slot = prepare(g);
  prefetch_next(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto* optr = slot.orbit_ptr.data();
  const auto& queries = grids_[g].queries;
  const bool cache_hit = slot.cache_hit;
  verdicts_.resize(queries.size());
  detail::PairState st;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PairQuery& q = queries[i];
    refresh_pair(st, e, optr, q);
    verdicts_[i] =
        detail::verify_with_state(st, q.delay_a, q.delay_b, max_rounds_);
    verdicts_[i].cache_hit = cache_hit;
  }
  stats_.queries += queries.size();
  return {verdicts_.data(), queries.size()};
}

std::ptrdiff_t EnumerationContext::first_unmet(std::size_t g) {
  Slot& slot = prepare_scan(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto& queries = grids_[g].queries;
  detail::PairState st;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PairQuery& q = queries[i];
    if (st.start_a != q.start_a || st.start_b != q.start_b) {
      // orbit() extracts on demand: a scan that defeats on the first
      // pairs only ever walks those pairs' orbits.
      st = detail::make_pair_state(e, e.orbit(q.start_a),
                                   e.orbit(q.start_b),
                                   /*same_engine=*/true, q.start_a,
                                   q.start_b);
    }
    ++stats_.queries;
    if (!detail::met_with_state(st, q.delay_a, q.delay_b, max_rounds_)) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::uint64_t EnumerationContext::count_unmet(std::size_t g) {
  Slot& slot = prepare(g);
  prefetch_next(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto* optr = slot.orbit_ptr.data();
  const auto& queries = grids_[g].queries;
  std::uint64_t unmet = 0;
  const PairQuery* qdata = queries.data();
  const std::size_t nq = queries.size();
  std::size_t i = 0;
  while (i < nq) {
    const PairQuery& q = qdata[i];
    std::size_t j = i + 1;
    while (j < nq && qdata[j].start_a == q.start_a &&
           qdata[j].start_b == q.start_b) {
      ++j;
    }
    const detail::PairState st = detail::make_pair_state(
        e, *optr[q.start_a], *optr[q.start_b], /*same_engine=*/true,
        q.start_a, q.start_b);
    unmet += detail::count_unmet_run(st, qdata + i, j - i, max_rounds_);
    i = j;
  }
  stats_.queries += queries.size();
  return unmet;
}

EnumTelemetry EnumerationContext::telemetry() const {
  EnumTelemetry t = stats_;
  for (const Slot& slot : slots_) {
    if (slot.engine.has_value()) {
      t.orbits_extracted += slot.engine->orbits_extracted();
    }
  }
  return t;
}

}  // namespace rvt::sim

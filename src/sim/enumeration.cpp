#include "sim/enumeration.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/verify_core.hpp"

namespace rvt::sim {

namespace {

/// Observability for the binding path, split by orbit-cache outcome so
/// the scrape shows the tier's latency shape (a hot tier keeps the hit
/// histogram orders of magnitude below the miss one). Gated: a
/// disabled process pays exactly the obs::enabled() relaxed load —
/// prepare() passes t0 == 0 and this returns on the first branch. The
/// registry references are static locals, so the lookup mutex is paid
/// once per process, not per binding.
inline void note_binding_prepared(std::uint64_t t0_ns, bool cache_hit) {
  if (t0_ns == 0) return;
  static obs::Histogram& hit_ns =
      obs::Registry::instance().histogram("rvt_enum_bind_hit_ns");
  static obs::Histogram& miss_ns =
      obs::Registry::instance().histogram("rvt_enum_bind_miss_ns");
  static obs::Counter& hits =
      obs::Registry::instance().counter("rvt_orbit_cache_hits_total");
  static obs::Counter& misses =
      obs::Registry::instance().counter("rvt_orbit_cache_misses_total");
  const std::uint64_t dt = obs::now_ns() - t0_ns;
  (cache_hit ? hit_ns : miss_ns).record(dt);
  (cache_hit ? hits : misses).add(1);
}

}  // namespace

EnumerationContext::EnumerationContext(std::span<const EnumGrid> grids,
                                       std::uint64_t max_rounds,
                                       OrbitCache* cache)
    : grids_(grids), max_rounds_(max_rounds), cache_(cache) {
  if (max_rounds_ == 0) {
    throw std::invalid_argument(
        "EnumerationContext: max_rounds must be > 0");
  }
  slots_.resize(grids_.size());
  for (std::size_t g = 0; g < grids_.size(); ++g) {
    const EnumGrid& grid = grids_[g];
    if (grid.tree == nullptr || grid.tree->node_count() < 2) {
      throw std::invalid_argument(
          "EnumerationContext: grid needs a tree with >= 2 nodes");
    }
    if (grid.agents < 2 || grid.agents > kMaxGatherAgents) {
      throw std::invalid_argument(
          "EnumerationContext: grid arity out of [2, kMaxGatherAgents]");
    }
    if (grid.starts.size() % grid.agents != 0 ||
        grid.delays.size() != grid.starts.size()) {
      throw std::invalid_argument(
          "EnumerationContext: grid storage is not k-fold (starts/delays "
          "must hold `agents` entries per query)");
    }
    const tree::NodeId n = grid.tree->node_count();
    Slot& slot = slots_[g];
    slot.meet_ok = grid.agents == 2;
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    const std::size_t k = grid.agents;
    for (std::size_t q = 0; q < grid.query_count(); ++q) {
      const tree::NodeId* s = grid.starts.data() + q * k;
      for (std::size_t i = 0; i < k; ++i) {
        if (s[i] < 0 || s[i] >= n) {
          throw std::invalid_argument("EnumerationContext: start range");
        }
        if (!seen[static_cast<std::size_t>(s[i])]) {
          seen[static_cast<std::size_t>(s[i])] = 1;
          slot.warm_starts.push_back(s[i]);
        }
      }
      // Equal starts are legal (gathering permits co-located agents) but
      // disqualify the grid from the meet API, whose pair semantics
      // require distinct agents.
      if (k == 2 && s[0] == s[1]) slot.meet_ok = false;
    }
    slot.orbit_ptr.assign(static_cast<std::size_t>(n), nullptr);
    if (cache_ != nullptr) slot.tree_key = tree_orbit_key(*grid.tree);
  }
}

void EnumerationContext::require_meet(std::size_t g) const {
  if (!slots_[g].meet_ok) {
    throw std::invalid_argument(
        "EnumerationContext: the meet API needs a 2-agent grid with "
        "distinct starts per query (use the gathering API otherwise)");
  }
}

void EnumerationContext::bind(const TabularAutomaton& a) {
  automaton_ = &a;
  ++serial_;
  automaton_key_valid_ = false;
}

EnumerationContext::Slot& EnumerationContext::prepare(std::size_t g) {
  if (automaton_ == nullptr) {
    throw std::logic_error("EnumerationContext: bind() an automaton first");
  }
  Slot& slot = slots_[g];
  if (slot.warmed_serial == serial_) return slot;
  const std::uint64_t obs_t0 = obs::enabled() ? obs::now_ns() : 0;
  const bool constructed = !slot.engine.has_value();
  if (constructed) {
    slot.engine.emplace(*grids_[g].tree, *automaton_);
  }
  const bool bound = slot.bound_serial == serial_;  // via prepare_scan
  slot.cache_hit = false;
  if (!bound) ++stats_.bindings;
  if (cache_ != nullptr) {
    if (!automaton_key_valid_) {
      // Canonical dedup key: equivalent enumerated automata (unreachable
      // states, renumbering, impossible-input entries) share one cache
      // entry — and one extraction — per tree.
      const TabularAutomaton canon = canonical_reachable_form(*automaton_);
      if (!(canon == *automaton_)) ++stats_.canonical_collapses;
      automaton_key_ = automaton_orbit_key(canon);
      automaton_key_valid_ = true;
    }
    const OrbitKey key = combine_orbit_keys(slot.tree_key, automaton_key_);
    auto set = cache_->acquire(key);
    if (set != nullptr) {
      // Adopt only if the published set covers every start this grid
      // queries (it does when the key was published by a same-grid
      // worker; a different grid's publication may not) — then the
      // engine skips recompiling its tables entirely, and prefetching
      // the set's buffers hides their DRAM latency behind the rest of
      // the preparation.
      bool covered = true;
      for (const tree::NodeId s : slot.warm_starts) {
        if (!set->has_orbit[static_cast<std::size_t>(s)]) {
          covered = false;
          break;
        }
        const auto& o = set->orbits[static_cast<std::size_t>(s)];
        // The orbit pointers come straight from the set (stable: the
        // engine holds the shared_ptr until its next rebind), and the
        // prefetches pull the buffers the verdict loop will touch.
        slot.orbit_ptr[static_cast<std::size_t>(s)] = &o;
        __builtin_prefetch(o.node.data());
        __builtin_prefetch(o.first_visit.data());
      }
      if (covered) {
        slot.engine->rebind_adopted(std::move(set));
        slot.cache_hit = true;
        ++stats_.cache_hits;
        slot.bound_serial = serial_;
        slot.warmed_serial = serial_;
        note_binding_prepared(obs_t0, true);
        return slot;
      } else {
        // Partial coverage: bind fully and extract the gaps locally (we
        // hold no claim, so nothing is published).
        if (!constructed && !bound) slot.engine->rebind(*automaton_);
        slot.engine->adopt_shared_orbits(std::move(set));
        slot.engine->warm_orbits(slot.warm_starts);
        slot.cache_hit = true;
        ++stats_.cache_hits;
      }
    } else {
      // We hold the claim: extract the whole grid's needs (orbits via the
      // batched stepper, collision tables of the cycles any query pair
      // can touch) and publish.
      ++stats_.cache_misses;
      try {
        if (!constructed && !bound) slot.engine->rebind(*automaton_);
        const CompiledConfigEngine& e = *slot.engine;
        e.warm_orbits(slot.warm_starts);
        const EnumGrid& grid = grids_[g];
        const std::size_t k = grid.agents;
        const tree::NodeId* prev = nullptr;
        for (std::size_t q = 0; q < grid.query_count(); ++q) {
          const tree::NodeId* s = grid.starts.data() + q * k;
          if (prev != nullptr &&
              std::memcmp(prev, s, k * sizeof(tree::NodeId)) == 0) {
            continue;  // delay run: same tuple, same tables
          }
          prev = s;
          for (std::size_t i = 0; i < k; ++i) {
            const auto& A = e.orbit(s[i]);
            for (std::size_t j = i + 1; j < k; ++j) {
              const auto& B = e.orbit(s[j]);
              if (A.lambda <= CompiledConfigEngine::kCollisionLimit &&
                  B.lambda <= CompiledConfigEngine::kCollisionLimit) {
                e.cycle_pair_collisions(A.cycle_root, B.cycle_root);
              }
            }
          }
        }
        cache_->publish(key, e.snapshot_orbits());
      } catch (...) {
        cache_->abandon(key);
        throw;
      }
    }
  } else {
    if (!constructed && !bound) slot.engine->rebind(*automaton_);
    slot.engine->warm_orbits(slot.warm_starts);
  }
  // Orbit references are stable for the rest of the binding (every start
  // a query can touch is warmed); snapshot them for the verdict loops.
  for (const tree::NodeId s : slot.warm_starts) {
    slot.orbit_ptr[static_cast<std::size_t>(s)] = &slot.engine->orbit(s);
  }
  slot.bound_serial = serial_;
  slot.warmed_serial = serial_;
  note_binding_prepared(obs_t0, slot.cache_hit);
  return slot;
}

EnumerationContext::Slot& EnumerationContext::prepare_scan(std::size_t g) {
  if (automaton_ == nullptr) {
    throw std::logic_error("EnumerationContext: bind() an automaton first");
  }
  if (cache_ != nullptr) return prepare(g);  // cached sweeps warm fully
  Slot& slot = slots_[g];
  if (slot.bound_serial == serial_) return slot;
  if (!slot.engine.has_value()) {
    slot.engine.emplace(*grids_[g].tree, *automaton_);
  } else {
    slot.engine->rebind(*automaton_);
  }
  slot.cache_hit = false;
  ++stats_.bindings;
  slot.bound_serial = serial_;
  return slot;
}

void EnumerationContext::prefetch_next(std::size_t g) {
  if (cache_ == nullptr || !automaton_key_valid_) return;
  const std::size_t h = g + 1;
  if (h >= grids_.size()) return;
  Slot& next = slots_[h];
  if (next.bound_serial == serial_) return;  // already prepared
  const CompiledConfigEngine::OrbitSet* set =
      cache_->peek(combine_orbit_keys(next.tree_key, automaton_key_));
  if (set == nullptr) return;
  // Pull everything the next binding's verdict loop will touch: the
  // published sets live in DRAM between passes (the working set of a
  // battery far exceeds the caches), and the current grid's ~microseconds
  // of query work are exactly the lead time needed to hide that latency.
  const char* headers =
      reinterpret_cast<const char*>(set->orbits.data());
  const std::size_t header_bytes =
      set->orbits.size() * sizeof(CompiledConfigEngine::Orbit);
  for (std::size_t off = 0; off < header_bytes; off += 64) {
    __builtin_prefetch(headers + off);
  }
  const char* cindex =
      reinterpret_cast<const char*>(set->collision_index.data());
  const std::size_t cindex_bytes =
      set->collision_index.size() * sizeof(std::int32_t);
  for (std::size_t off = 0; off < cindex_bytes; off += 64) {
    __builtin_prefetch(cindex + off);
  }
  for (const auto& pair : set->collisions) {
    __builtin_prefetch(pair.table.data());
  }
  for (const tree::NodeId s : next.warm_starts) {
    if (!set->has_orbit[static_cast<std::size_t>(s)]) return;
    const auto& o = set->orbits[static_cast<std::size_t>(s)];
    __builtin_prefetch(o.node.data());
    __builtin_prefetch(o.first_visit.data());
  }
}

namespace {

/// Battery grids are pair-major runs of delays: refresh the pair-invariant
/// state only when the (start_a, start_b) pair changes.
inline void refresh_pair(detail::PairState& st,
                         const CompiledConfigEngine& e,
                         const CompiledConfigEngine::Orbit* const* optr,
                         const tree::NodeId* s) {
  if (st.start_a != s[0] || st.start_b != s[1]) {
    st = detail::make_pair_state(e, *optr[s[0]], *optr[s[1]],
                                 /*same_engine=*/true, s[0], s[1]);
  }
}

/// Tuple-major analogue: refresh the tuple-invariant state only when the
/// k-tuple of starts changes.
inline void refresh_tuple(detail::TupleState& st,
                          const CompiledConfigEngine& e,
                          const CompiledConfigEngine::Orbit* const* optr,
                          const tree::NodeId* s, std::size_t k) {
  if (st.k == k &&
      std::memcmp(st.start, s, k * sizeof(tree::NodeId)) == 0) {
    return;
  }
  const CompiledConfigEngine::Orbit* orbs[kMaxGatherAgents];
  for (std::size_t i = 0; i < k; ++i) orbs[i] = optr[s[i]];
  st = detail::make_tuple_state(e, orbs, s, k);
}

}  // namespace

std::span<const Verdict> EnumerationContext::verify(std::size_t g) {
  require_meet(g);
  Slot& slot = prepare(g);
  prefetch_next(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto* optr = slot.orbit_ptr.data();
  const EnumGrid& grid = grids_[g];
  const std::size_t nq = grid.query_count();
  const bool cache_hit = slot.cache_hit;
  verdicts_.resize(nq);
  detail::PairState st;
  for (std::size_t i = 0; i < nq; ++i) {
    const tree::NodeId* s = grid.starts.data() + 2 * i;
    const std::uint64_t* d = grid.delays.data() + 2 * i;
    refresh_pair(st, e, optr, s);
    verdicts_[i] = detail::verify_with_state(st, d[0], d[1], max_rounds_);
    verdicts_[i].cache_hit = cache_hit;
  }
  stats_.queries += nq;
  return {verdicts_.data(), nq};
}

std::ptrdiff_t EnumerationContext::first_unmet(std::size_t g) {
  require_meet(g);
  Slot& slot = prepare_scan(g);
  const CompiledConfigEngine& e = *slot.engine;
  const EnumGrid& grid = grids_[g];
  const std::size_t nq = grid.query_count();
  detail::PairState st;
  for (std::size_t i = 0; i < nq; ++i) {
    const tree::NodeId* s = grid.starts.data() + 2 * i;
    const std::uint64_t* d = grid.delays.data() + 2 * i;
    if (st.start_a != s[0] || st.start_b != s[1]) {
      // orbit() extracts on demand: a scan that defeats on the first
      // pairs only ever walks those pairs' orbits.
      st = detail::make_pair_state(e, e.orbit(s[0]), e.orbit(s[1]),
                                   /*same_engine=*/true, s[0], s[1]);
    }
    ++stats_.queries;
    if (!detail::met_with_state(st, d[0], d[1], max_rounds_)) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::uint64_t EnumerationContext::count_unmet(std::size_t g) {
  require_meet(g);
  Slot& slot = prepare(g);
  prefetch_next(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto* optr = slot.orbit_ptr.data();
  const EnumGrid& grid = grids_[g];
  std::uint64_t unmet = 0;
  const tree::NodeId* sdata = grid.starts.data();
  const std::uint64_t* ddata = grid.delays.data();
  const std::size_t nq = grid.query_count();
  std::size_t i = 0;
  while (i < nq) {
    const tree::NodeId* s = sdata + 2 * i;
    std::size_t j = i + 1;
    while (j < nq && sdata[2 * j] == s[0] && sdata[2 * j + 1] == s[1]) {
      ++j;
    }
    const detail::PairState st = detail::make_pair_state(
        e, *optr[s[0]], *optr[s[1]], /*same_engine=*/true, s[0], s[1]);
    unmet += detail::count_unmet_run(st, ddata + 2 * i, j - i, max_rounds_);
    i = j;
  }
  stats_.queries += nq;
  return unmet;
}

std::span<const GatherVerdict> EnumerationContext::verify_gather(
    std::size_t g) {
  Slot& slot = prepare(g);
  prefetch_next(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto* optr = slot.orbit_ptr.data();
  const EnumGrid& grid = grids_[g];
  const std::size_t k = grid.agents;
  const std::size_t nq = grid.query_count();
  const bool cache_hit = slot.cache_hit;
  gather_verdicts_.resize(nq);
  detail::TupleState st;
  for (std::size_t i = 0; i < nq; ++i) {
    const tree::NodeId* s = grid.starts.data() + k * i;
    const std::uint64_t* d = grid.delays.data() + k * i;
    refresh_tuple(st, e, optr, s, k);
    gather_verdicts_[i] = detail::gather_with_state(st, d, max_rounds_);
    gather_verdicts_[i].cache_hit = cache_hit;
  }
  stats_.queries += nq;
  return {gather_verdicts_.data(), nq};
}

std::ptrdiff_t EnumerationContext::first_ungathered(std::size_t g) {
  Slot& slot = prepare_scan(g);
  const CompiledConfigEngine& e = *slot.engine;
  const EnumGrid& grid = grids_[g];
  const std::size_t k = grid.agents;
  const std::size_t nq = grid.query_count();
  detail::TupleState st;
  for (std::size_t i = 0; i < nq; ++i) {
    const tree::NodeId* s = grid.starts.data() + k * i;
    const std::uint64_t* d = grid.delays.data() + k * i;
    if (st.k != k ||
        std::memcmp(st.start, s, k * sizeof(tree::NodeId)) != 0) {
      // orbit() extracts on demand, like the first_unmet scan.
      const CompiledConfigEngine::Orbit* orbs[kMaxGatherAgents];
      for (std::size_t a = 0; a < k; ++a) orbs[a] = &e.orbit(s[a]);
      st = detail::make_tuple_state(e, orbs, s, k);
    }
    ++stats_.queries;
    if (!detail::scan_gather(st, d, max_rounds_).gathered) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::uint64_t EnumerationContext::count_ungathered(std::size_t g) {
  Slot& slot = prepare(g);
  prefetch_next(g);
  const CompiledConfigEngine& e = *slot.engine;
  const auto* optr = slot.orbit_ptr.data();
  const EnumGrid& grid = grids_[g];
  const std::size_t k = grid.agents;
  const tree::NodeId* sdata = grid.starts.data();
  const std::uint64_t* ddata = grid.delays.data();
  const std::size_t nq = grid.query_count();
  std::uint64_t ungathered = 0;
  detail::TupleState st;
  std::size_t i = 0;
  while (i < nq) {
    const tree::NodeId* s = sdata + k * i;
    std::size_t j = i + 1;
    while (j < nq &&
           std::memcmp(sdata + k * j, s, k * sizeof(tree::NodeId)) == 0) {
      ++j;
    }
    refresh_tuple(st, e, optr, s, k);
    ungathered +=
        detail::count_ungathered_run(st, ddata + k * i, j - i, max_rounds_);
    i = j;
  }
  stats_.queries += nq;
  return ungathered;
}

EnumTelemetry EnumerationContext::telemetry() const {
  EnumTelemetry t = stats_;
  for (const Slot& slot : slots_) {
    if (slot.engine.has_value()) {
      t.orbits_extracted += slot.engine->orbits_extracted();
    }
  }
  return t;
}

}  // namespace rvt::sim

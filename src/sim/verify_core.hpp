// The per-query verdict core of the compiled engine, inlinable into batch
// loops.
//
// The verdict reconstruction (see sim/compiled.hpp for the math) splits
// three ways, matching how the battery loops consume it:
//
//   make_pair_state()    pair-invariant work — orbit headers, the cycle
//                        relationship (gcd/lcm, the cycle-pair collision
//                        table) and the first-visit lookups. Battery
//                        grids are pair-major runs of delays, so this
//                        runs once per (start_a, start_b).
//   scan_meeting()       delay-dependent search for the earliest meeting
//                        (one-walker phase, transient scan, in-cycle
//                        collision decision + first-round scan).
//   verify_with_state()  the full five-field verdict (Brent detection
//                        round, certificate cycle length) — what
//                        verify()/verify_grid return.
//   met_with_state()     the met/unmet classification alone — what
//                        defeat counting needs; skips the Brent window
//                        arithmetic entirely on the (majority) unmet
//                        outcomes.
//
// Everything assumes validated inputs (distinct in-range starts,
// max_rounds > 0, orbits fetched from the right engines):
// sim::verify_never_meet_compiled wraps the checks for single calls,
// while the grid/enumeration paths validate a whole batch once.
//
// Micro-structure tuned for the exhaustive-battery workloads (millions of
// queries against tiny orbits): the Brent detection window is a bit_ceil
// instead of a shift loop, and every modulo whose numerator is almost
// always within a couple of periods goes through wrap_mod's subtract-first
// path — integer division only on the rare large-delay query.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/compiled.hpp"
#include "sim/verdict.hpp"

namespace rvt::sim::detail {

/// x mod m for x that is usually < 2m (orbit tails and battery delays are
/// small next to the cycle): two conditional subtracts cover the common
/// cases before paying for a division.
inline std::uint64_t wrap_mod(std::uint64_t x, std::uint64_t m) {
  if (x < m) return x;
  x -= m;
  if (x < m) return x;
  x -= m;
  if (x < m) return x;
  return x % m;
}

/// Pair-invariant half of the verdict: everything about (A, B) that does
/// not depend on the delays. Valid as long as the two orbits are (i.e.
/// until the owning engine rebinds).
struct PairState {
  const CompiledConfigEngine::Orbit* A = nullptr;
  const CompiledConfigEngine::Orbit* B = nullptr;
  tree::NodeId start_a = -1;
  tree::NodeId start_b = -1;
  std::uint64_t lam_a = 0, lam_b = 0;
  std::uint64_t gcd_l = 0, lam_joint = 0;
  /// Cached orbit headers: the delay loop reads these from the (hot)
  /// state instead of re-chasing the Orbit structs per query.
  std::uint64_t mu_a = 0, mu_b = 0;
  std::size_t size_a = 0, size_b = 0;
  const tree::NodeId* na = nullptr;  ///< A.node.data()
  const tree::NodeId* nb = nullptr;  ///< B.node.data()
  /// First-visit steps for the one-walker phase: B's orbit onto parked
  /// start_a (used when delay_a > delay_b) and vice versa.
  std::uint32_t fv_b_at_a = 0;
  std::uint32_t fv_a_at_b = 0;
  /// Cycle-pair collision table (gcd_l entries), or nullptr when
  /// unavailable (different engines, cycles past kCollisionLimit, build
  /// gave up) — the fallbacks scan or intersect residues instead.
  const std::uint8_t* collisions = nullptr;
  /// Alignment bases: the collision class for delays (da, db) is
  /// (lhs0 + db) - (rhs0 + da) mod gcd_l.
  std::uint64_t lhs0 = 0, rhs0 = 0;
};

inline PairState make_pair_state(const CompiledConfigEngine& engine_a,
                                 const CompiledConfigEngine::Orbit& A,
                                 const CompiledConfigEngine::Orbit& B,
                                 bool same_engine, tree::NodeId start_a,
                                 tree::NodeId start_b) {
  PairState st;
  st.A = &A;
  st.B = &B;
  st.start_a = start_a;
  st.start_b = start_b;
  st.lam_a = A.lambda;
  st.lam_b = B.lambda;
  // Orbits that merged share a cycle, so the equal-lambda case is the
  // common one — take it without any division.
  if (st.lam_a == st.lam_b) {
    st.gcd_l = st.lam_a;
    st.lam_joint = st.lam_a;
  } else {
    st.gcd_l = std::gcd(st.lam_a, st.lam_b);
    st.lam_joint = st.lam_a / st.gcd_l * st.lam_b;
  }
  st.mu_a = A.mu;
  st.mu_b = B.mu;
  st.size_a = A.node.size();
  st.size_b = B.node.size();
  st.na = A.node.data();
  st.nb = B.node.data();
  st.fv_b_at_a = B.first_visit[start_a];
  st.fv_a_at_b = A.first_visit[start_b];
  if (same_engine && st.lam_a <= CompiledConfigEngine::kCollisionLimit &&
      st.lam_b <= CompiledConfigEngine::kCollisionLimit) {
    const auto table =
        engine_a.cycle_pair_lookup(A.cycle_root, B.cycle_root);
    if (!table.empty()) {  // empty: build gave up, fall back to scanning
      st.collisions = table.data();
      st.lhs0 = A.cycle_phase + B.sn_mu;
      st.rhs0 = B.cycle_phase + A.sn_mu;
    }
  }
  return st;
}

/// Delay-dependent meeting search. Returns whether the later agent acts
/// within the horizon at all (`late` = it does not), whether a meeting
/// was found, and its round (<= M by construction).
///
/// With kExistenceOnly the in-cycle phase may report a meeting WITHOUT
/// locating its first round (t_meet is then a round <= the true one):
/// when the collision table says the joint cycle meets and the whole
/// first period fits the horizon (Tc + lam_joint - 1 <= M), the earliest
/// meeting provably lies within both the horizon and the Brent detection
/// round (which is always >= Tc + lam_joint), so met/unmet
/// classification needs no scan. Only met_with_state may use this mode.
struct MeetScan {
  bool late = false;
  bool meet = false;
  /// Meeting found in the one-walker phase: t_meet <= t0 there, which is
  /// always <= the Brent detection round — classification can skip the
  /// window arithmetic.
  bool early = false;
  std::uint64_t t_meet = 0;
};

template <bool kExistenceOnly = false>
inline MeetScan scan_meeting(const PairState& st, std::uint64_t da,
                             std::uint64_t db, std::uint64_t M) {
  MeetScan s;

  // While exactly one agent walks (the other still parked), a meeting
  // means the walker's orbit visits the parked agent's start: an O(1)
  // first-visit lookup, independent of the delays.
  const std::uint64_t d_early = std::min(da, db);
  const std::uint64_t d_late = std::max(da, db);
  if (d_late > d_early && d_early < M) {
    const std::uint32_t fv = da > db ? st.fv_b_at_a : st.fv_a_at_b;
    const std::uint64_t limit = std::min(d_late, M) - d_early;
    if (fv != CompiledConfigEngine::Orbit::kNever && fv <= limit) {
      s.meet = true;
      s.early = true;
      s.t_meet = d_early + fv;
    }
  }
  if (d_late >= M) {
    // The later agent never acts within the horizon: the legacy loop
    // never snapshots a joint configuration, so no certificate is
    // possible and the walker-onto-parked meeting above is the only
    // observable event. (Also keeps the joint arithmetic below
    // overflow-free: from here on da, db < M.)
    s.late = true;
    return s;
  }

  const std::uint64_t Tc = std::max(da + st.mu_a, db + st.mu_b);

  // Earliest meeting, if any, over the remaining transient (rounds where
  // both agents are still parked cannot meet — distinct starts; the
  // one-walker phase was answered above): the few pre-cycle rounds once
  // both walk are scanned with rolling (division-free) array indices.
  if (!s.meet && Tc > d_late + 1) {
    // Both active from round d_late + 1 <= M on; seed the rolling array
    // indices at round d_late (wrap_mod each, loop-free after).
    const std::uint64_t sa = d_late - da;  // steps taken by round d_late
    const std::uint64_t sb = d_late - db;
    std::uint64_t ia =
        sa < st.size_a ? sa : st.mu_a + wrap_mod(sa - st.mu_a, st.lam_a);
    std::uint64_t ib =
        sb < st.size_b ? sb : st.mu_b + wrap_mod(sb - st.mu_b, st.lam_b);
    for (std::uint64_t t = d_late + 1, hi = std::min(Tc - 1, M); t <= hi;
         ++t) {
      if (++ia == st.size_a) ia = st.mu_a;
      if (++ib == st.size_b) ib = st.mu_b;
      if (st.na[ia] == st.nb[ib]) {
        s.meet = true;
        s.t_meet = t;
        break;
      }
    }
  }
  if (!s.meet && Tc <= M) {
    // Both in-cycle: the joint node-pair sequence from round Tc is purely
    // periodic with period lam_joint, and a meeting within it must be
    // proven absent (certification) or located (first round). Three
    // strategies, cheapest first:
    //  1. Cycle-pair collision table: once both agents are in-cycle their
    //     position pair sweeps exactly one alignment class i - j mod
    //     gcd(lambda_a, lambda_b), so existence is one table lookup —
    //     the common case of an exhaustive battery, whatever cycles the
    //     two starts landed in.
    //  2. Commensurate cycles (lam_joint comparable to the cycles): scan
    //     one period directly with rolling indices.
    //  3. Near-coprime cycles (lam_joint blown up): decide existence by
    //     residue intersection — a meeting at round r >= Tc needs cycle
    //     indices i, j with equal nodes and
    //         r == da + A.mu + i (mod A.lambda)
    //           == db + B.mu + j (mod B.lambda),
    //     solvable iff both sides agree modulo gcd — sorted intersection
    //     in O((la + lb) log la).
    // Only if a meeting exists at all is the period scanned for its first
    // round (that scan is bounded by the meeting round itself, i.e. never
    // more work than the legacy stepper).
    bool scan_cycle;
    if (st.collisions != nullptr) {
      const std::uint64_t lhs = st.lhs0 + db;
      const std::uint64_t rhs = st.rhs0 + da;
      std::uint64_t c;
      if (lhs >= rhs) {
        c = wrap_mod(lhs - rhs, st.gcd_l);
      } else {
        const std::uint64_t x = wrap_mod(rhs - lhs, st.gcd_l);
        c = x == 0 ? 0 : st.gcd_l - x;
      }
      scan_cycle = st.collisions[c] != 0;
    } else if (st.lam_joint <= 4 * (st.lam_a + st.lam_b)) {
      scan_cycle = true;
    } else {
      const std::uint64_t g = st.gcd_l;
      std::vector<std::uint64_t> occ_a;
      occ_a.reserve(st.lam_a);
      for (std::uint64_t i = 0; i < st.lam_a; ++i) {
        const std::uint64_t w =
            static_cast<std::uint64_t>(st.na[st.mu_a + i]);
        occ_a.push_back((w << 32) | ((da + st.mu_a + i) % g));
      }
      std::sort(occ_a.begin(), occ_a.end());
      scan_cycle = false;
      for (std::uint64_t j = 0; j < st.lam_b && !scan_cycle; ++j) {
        const std::uint64_t w =
            static_cast<std::uint64_t>(st.nb[st.mu_b + j]);
        scan_cycle = std::binary_search(occ_a.begin(), occ_a.end(),
                                        (w << 32) | ((db + st.mu_b + j) % g));
      }
    }
    if constexpr (kExistenceOnly) {
      if (scan_cycle && st.collisions != nullptr &&
          Tc + st.lam_joint - 1 <= M) {
        // A meeting exists somewhere in [Tc, Tc + lam_joint - 1], all of
        // which is inside the horizon and before the detection round.
        s.meet = true;
        s.t_meet = Tc;  // lower bound on the true round; enough to classify
        return s;
      }
    }
    if (scan_cycle) {
      const tree::NodeId* cyc_a = st.na + st.mu_a;
      const tree::NodeId* cyc_b = st.nb + st.mu_b;
      std::uint64_t ia = wrap_mod(Tc - da - st.mu_a, st.lam_a);
      std::uint64_t ib = wrap_mod(Tc - db - st.mu_b, st.lam_b);
      for (std::uint64_t t = Tc, hi = std::min(Tc + st.lam_joint - 1, M);
           t <= hi; ++t) {
        if (cyc_a[ia] == cyc_b[ib]) {
          s.meet = true;
          s.t_meet = t;
          break;
        }
        if (++ia == st.lam_a) ia = 0;
        if (++ib == st.lam_b) ib = 0;
      }
    }
  }
  return s;
}

/// The round at which Brent's algorithm in the legacy stepper certifies:
/// it re-anchors at snapshot indices 2^k - 1 with window 2^k and
/// certifies from the first anchor in the cycle with a window spanning
/// one period, exactly lam_joint snapshots later. (Tail configurations
/// never recur — the joint orbit is rho-shaped — so no earlier anchor
/// can match.) Requires da, db < M.
inline std::uint64_t detect_round(const PairState& st, std::uint64_t da,
                                  std::uint64_t db) {
  const std::uint64_t t0 = std::max({da, db, std::uint64_t{1}});
  const std::uint64_t Tc = std::max(da + st.mu_a, db + st.mu_b);
  const std::uint64_t mu_joint = Tc > t0 ? Tc - t0 : 0;
  const std::uint64_t window =
      std::bit_ceil(std::max(st.lam_joint, mu_joint + 1));
  return t0 + (window - 1) + st.lam_joint;
}

/// Delay-dependent half of the full verdict for delays (da, db) under
/// horizon M — field-for-field what the legacy stepper reports: a meeting
/// is checked before the cycle certificate within each round, and nothing
/// past max_rounds is observed.
inline Verdict verify_with_state(const PairState& st, std::uint64_t da,
                                 std::uint64_t db, std::uint64_t M) {
  const MeetScan s = scan_meeting(st, da, db, M);
  Verdict r;
  r.engine = VerifyEngine::kCompiled;
  if (s.late) {
    if (s.meet) {  // t_meet <= M by the one-walker phase limit
      r.met = true;
      r.meeting_round = s.t_meet - 1;  // legacy reports round() - 1
      r.rounds_checked = s.t_meet;
    } else {
      r.rounds_checked = M;
    }
    return r;
  }
  const std::uint64_t t_detect = detect_round(st, da, db);
  if (s.meet && s.t_meet <= t_detect) {
    r.met = true;
    r.meeting_round = s.t_meet - 1;  // legacy reports round() - 1
    r.rounds_checked = s.t_meet;
  } else if (t_detect <= M) {
    r.certified_forever = true;
    r.cycle_length = st.lam_joint;
    r.rounds_checked = t_detect;
  } else {
    r.rounds_checked = M;
  }
  return r;
}

/// met/unmet classification alone — exactly verify_with_state().met, but
/// the (majority) unmet outcomes skip the Brent window arithmetic and the
/// verdict assembly. The defeat-counting loops live on this.
inline bool met_with_state(const PairState& st, std::uint64_t da,
                           std::uint64_t db, std::uint64_t M) {
  const MeetScan s = scan_meeting<true>(st, da, db, M);
  if (!s.meet) return false;
  // One-walker meetings (and the late case, whose only observable event
  // is one) have t_meet <= t0 <= the detection round by construction.
  if (s.early || s.late) return true;
  return s.t_meet <= detect_round(st, da, db);
}

/// Unmet count over a pair-major run of queries sharing one PairState.
/// Flattened so the classification inlines and the pair state stays hot
/// across the delay run — the innermost loop of defeat-density profiles.
__attribute__((flatten)) inline std::uint64_t count_unmet_run(
    const PairState& st, const PairQuery* qs, std::size_t len,
    std::uint64_t M) {
  std::uint64_t unmet = 0;
  for (std::size_t i = 0; i < len; ++i) {
    unmet += met_with_state(st, qs[i].delay_a, qs[i].delay_b, M) ? 0 : 1;
  }
  return unmet;
}

/// Core of verify_never_meet_compiled over pre-fetched orbits, for
/// one-off calls. `A`/`B` must be `engine_a.orbit(start_a)` /
/// `engine_b.orbit(start_b)` and `same_engine` must be
/// (&engine_a == &engine_b); the caller guarantees start_a != start_b,
/// both in range, and M > 0.
inline Verdict verify_pair_core(const CompiledConfigEngine& engine_a,
                                const CompiledConfigEngine::Orbit& A,
                                const CompiledConfigEngine::Orbit& B,
                                bool same_engine, tree::NodeId start_a,
                                tree::NodeId start_b, std::uint64_t da,
                                std::uint64_t db, std::uint64_t M) {
  return verify_with_state(
      make_pair_state(engine_a, A, B, same_engine, start_a, start_b), da,
      db, M);
}

}  // namespace rvt::sim::detail

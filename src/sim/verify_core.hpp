// The per-query verdict core of the compiled engine, inlinable into batch
// loops.
//
// The verdict reconstruction (see sim/compiled.hpp for the math) splits
// three ways, matching how the battery loops consume it:
//
//   make_pair_state()    pair-invariant work — orbit headers, the cycle
//                        relationship (gcd/lcm, the cycle-pair collision
//                        table) and the first-visit lookups. Battery
//                        grids are pair-major runs of delays, so this
//                        runs once per (start_a, start_b).
//   scan_meeting()       delay-dependent search for the earliest meeting
//                        (one-walker phase, transient scan, in-cycle
//                        collision decision + first-round scan).
//   verify_with_state()  the full five-field verdict (Brent detection
//                        round, certificate cycle length) — what
//                        verify()/verify_grid return.
//   met_with_state()     the met/unmet classification alone — what
//                        defeat counting needs; skips the Brent window
//                        arithmetic entirely on the (majority) unmet
//                        outcomes.
//
// Everything assumes validated inputs (distinct in-range starts,
// max_rounds > 0, orbits fetched from the right engines):
// sim::verify_never_meet_compiled wraps the checks for single calls,
// while the grid/enumeration paths validate a whole batch once.
//
// Micro-structure tuned for the exhaustive-battery workloads (millions of
// queries against tiny orbits): the Brent detection window is a bit_ceil
// instead of a shift loop, and every modulo whose numerator is almost
// always within a couple of periods goes through wrap_mod's subtract-first
// path — integer division only on the rare large-delay query.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/compiled.hpp"
#include "sim/verdict.hpp"

namespace rvt::sim::detail {

/// x mod m for x that is usually < 2m (orbit tails and battery delays are
/// small next to the cycle): two conditional subtracts cover the common
/// cases before paying for a division.
inline std::uint64_t wrap_mod(std::uint64_t x, std::uint64_t m) {
  if (x < m) return x;
  x -= m;
  if (x < m) return x;
  x -= m;
  if (x < m) return x;
  return x % m;
}

/// Pair-invariant half of the verdict: everything about (A, B) that does
/// not depend on the delays. Valid as long as the two orbits are (i.e.
/// until the owning engine rebinds).
struct PairState {
  const CompiledConfigEngine::Orbit* A = nullptr;
  const CompiledConfigEngine::Orbit* B = nullptr;
  tree::NodeId start_a = -1;
  tree::NodeId start_b = -1;
  std::uint64_t lam_a = 0, lam_b = 0;
  std::uint64_t gcd_l = 0, lam_joint = 0;
  /// Cached orbit headers: the delay loop reads these from the (hot)
  /// state instead of re-chasing the Orbit structs per query.
  std::uint64_t mu_a = 0, mu_b = 0;
  std::size_t size_a = 0, size_b = 0;
  const tree::NodeId* na = nullptr;  ///< A.node.data()
  const tree::NodeId* nb = nullptr;  ///< B.node.data()
  /// First-visit steps for the one-walker phase: B's orbit onto parked
  /// start_a (used when delay_a > delay_b) and vice versa.
  std::uint32_t fv_b_at_a = 0;
  std::uint32_t fv_a_at_b = 0;
  /// Cycle-pair collision table (gcd_l entries), or nullptr when
  /// unavailable (different engines, cycles past kCollisionLimit, build
  /// gave up) — the fallbacks scan or intersect residues instead.
  const std::uint8_t* collisions = nullptr;
  /// Alignment bases: the collision class for delays (da, db) is
  /// (lhs0 + db) - (rhs0 + da) mod gcd_l.
  std::uint64_t lhs0 = 0, rhs0 = 0;
};

inline PairState make_pair_state(const CompiledConfigEngine& engine_a,
                                 const CompiledConfigEngine::Orbit& A,
                                 const CompiledConfigEngine::Orbit& B,
                                 bool same_engine, tree::NodeId start_a,
                                 tree::NodeId start_b) {
  PairState st;
  st.A = &A;
  st.B = &B;
  st.start_a = start_a;
  st.start_b = start_b;
  st.lam_a = A.lambda;
  st.lam_b = B.lambda;
  // Orbits that merged share a cycle, so the equal-lambda case is the
  // common one — take it without any division.
  if (st.lam_a == st.lam_b) {
    st.gcd_l = st.lam_a;
    st.lam_joint = st.lam_a;
  } else {
    st.gcd_l = std::gcd(st.lam_a, st.lam_b);
    st.lam_joint = st.lam_a / st.gcd_l * st.lam_b;
  }
  st.mu_a = A.mu;
  st.mu_b = B.mu;
  st.size_a = A.node.size();
  st.size_b = B.node.size();
  st.na = A.node.data();
  st.nb = B.node.data();
  st.fv_b_at_a = B.first_visit[start_a];
  st.fv_a_at_b = A.first_visit[start_b];
  if (same_engine && st.lam_a <= CompiledConfigEngine::kCollisionLimit &&
      st.lam_b <= CompiledConfigEngine::kCollisionLimit) {
    const auto table =
        engine_a.cycle_pair_lookup(A.cycle_root, B.cycle_root);
    if (!table.empty()) {  // empty: build gave up, fall back to scanning
      st.collisions = table.data();
      st.lhs0 = A.cycle_phase + B.sn_mu;
      st.rhs0 = B.cycle_phase + A.sn_mu;
    }
  }
  return st;
}

/// Delay-dependent meeting search. Returns whether the later agent acts
/// within the horizon at all (`late` = it does not), whether a meeting
/// was found, and its round (<= M by construction).
///
/// With kExistenceOnly the in-cycle phase may report a meeting WITHOUT
/// locating its first round (t_meet is then a round <= the true one):
/// when the collision table says the joint cycle meets and the whole
/// first period fits the horizon (Tc + lam_joint - 1 <= M), the earliest
/// meeting provably lies within both the horizon and the Brent detection
/// round (which is always >= Tc + lam_joint), so met/unmet
/// classification needs no scan. Only met_with_state may use this mode.
struct MeetScan {
  bool late = false;
  bool meet = false;
  /// Meeting found in the one-walker phase: t_meet <= t0 there, which is
  /// always <= the Brent detection round — classification can skip the
  /// window arithmetic.
  bool early = false;
  std::uint64_t t_meet = 0;
};

template <bool kExistenceOnly = false>
inline MeetScan scan_meeting(const PairState& st, std::uint64_t da,
                             std::uint64_t db, std::uint64_t M) {
  MeetScan s;

  // While exactly one agent walks (the other still parked), a meeting
  // means the walker's orbit visits the parked agent's start: an O(1)
  // first-visit lookup, independent of the delays.
  const std::uint64_t d_early = std::min(da, db);
  const std::uint64_t d_late = std::max(da, db);
  if (d_late > d_early && d_early < M) {
    const std::uint32_t fv = da > db ? st.fv_b_at_a : st.fv_a_at_b;
    const std::uint64_t limit = std::min(d_late, M) - d_early;
    if (fv != CompiledConfigEngine::Orbit::kNever && fv <= limit) {
      s.meet = true;
      s.early = true;
      s.t_meet = d_early + fv;
    }
  }
  if (d_late >= M) {
    // The later agent never acts within the horizon: the legacy loop
    // never snapshots a joint configuration, so no certificate is
    // possible and the walker-onto-parked meeting above is the only
    // observable event. (Also keeps the joint arithmetic below
    // overflow-free: from here on da, db < M.)
    s.late = true;
    return s;
  }

  const std::uint64_t Tc = std::max(da + st.mu_a, db + st.mu_b);

  // Earliest meeting, if any, over the remaining transient (rounds where
  // both agents are still parked cannot meet — distinct starts; the
  // one-walker phase was answered above): the few pre-cycle rounds once
  // both walk are scanned with rolling (division-free) array indices.
  if (!s.meet && Tc > d_late + 1) {
    // Both active from round d_late + 1 <= M on; seed the rolling array
    // indices at round d_late (wrap_mod each, loop-free after).
    const std::uint64_t sa = d_late - da;  // steps taken by round d_late
    const std::uint64_t sb = d_late - db;
    std::uint64_t ia =
        sa < st.size_a ? sa : st.mu_a + wrap_mod(sa - st.mu_a, st.lam_a);
    std::uint64_t ib =
        sb < st.size_b ? sb : st.mu_b + wrap_mod(sb - st.mu_b, st.lam_b);
    for (std::uint64_t t = d_late + 1, hi = std::min(Tc - 1, M); t <= hi;
         ++t) {
      if (++ia == st.size_a) ia = st.mu_a;
      if (++ib == st.size_b) ib = st.mu_b;
      if (st.na[ia] == st.nb[ib]) {
        s.meet = true;
        s.t_meet = t;
        break;
      }
    }
  }
  if (!s.meet && Tc <= M) {
    // Both in-cycle: the joint node-pair sequence from round Tc is purely
    // periodic with period lam_joint, and a meeting within it must be
    // proven absent (certification) or located (first round). Three
    // strategies, cheapest first:
    //  1. Cycle-pair collision table: once both agents are in-cycle their
    //     position pair sweeps exactly one alignment class i - j mod
    //     gcd(lambda_a, lambda_b), so existence is one table lookup —
    //     the common case of an exhaustive battery, whatever cycles the
    //     two starts landed in.
    //  2. Commensurate cycles (lam_joint comparable to the cycles): scan
    //     one period directly with rolling indices.
    //  3. Near-coprime cycles (lam_joint blown up): decide existence by
    //     residue intersection — a meeting at round r >= Tc needs cycle
    //     indices i, j with equal nodes and
    //         r == da + A.mu + i (mod A.lambda)
    //           == db + B.mu + j (mod B.lambda),
    //     solvable iff both sides agree modulo gcd — sorted intersection
    //     in O((la + lb) log la).
    // Only if a meeting exists at all is the period scanned for its first
    // round (that scan is bounded by the meeting round itself, i.e. never
    // more work than the legacy stepper).
    bool scan_cycle;
    if (st.collisions != nullptr) {
      const std::uint64_t lhs = st.lhs0 + db;
      const std::uint64_t rhs = st.rhs0 + da;
      std::uint64_t c;
      if (lhs >= rhs) {
        c = wrap_mod(lhs - rhs, st.gcd_l);
      } else {
        const std::uint64_t x = wrap_mod(rhs - lhs, st.gcd_l);
        c = x == 0 ? 0 : st.gcd_l - x;
      }
      scan_cycle = st.collisions[c] != 0;
    } else if (st.lam_joint <= 4 * (st.lam_a + st.lam_b)) {
      scan_cycle = true;
    } else {
      const std::uint64_t g = st.gcd_l;
      std::vector<std::uint64_t> occ_a;
      occ_a.reserve(st.lam_a);
      for (std::uint64_t i = 0; i < st.lam_a; ++i) {
        const std::uint64_t w =
            static_cast<std::uint64_t>(st.na[st.mu_a + i]);
        occ_a.push_back((w << 32) | ((da + st.mu_a + i) % g));
      }
      std::sort(occ_a.begin(), occ_a.end());
      scan_cycle = false;
      for (std::uint64_t j = 0; j < st.lam_b && !scan_cycle; ++j) {
        const std::uint64_t w =
            static_cast<std::uint64_t>(st.nb[st.mu_b + j]);
        scan_cycle = std::binary_search(occ_a.begin(), occ_a.end(),
                                        (w << 32) | ((db + st.mu_b + j) % g));
      }
    }
    if constexpr (kExistenceOnly) {
      if (scan_cycle && st.collisions != nullptr &&
          Tc + st.lam_joint - 1 <= M) {
        // A meeting exists somewhere in [Tc, Tc + lam_joint - 1], all of
        // which is inside the horizon and before the detection round.
        s.meet = true;
        s.t_meet = Tc;  // lower bound on the true round; enough to classify
        return s;
      }
    }
    if (scan_cycle) {
      const tree::NodeId* cyc_a = st.na + st.mu_a;
      const tree::NodeId* cyc_b = st.nb + st.mu_b;
      std::uint64_t ia = wrap_mod(Tc - da - st.mu_a, st.lam_a);
      std::uint64_t ib = wrap_mod(Tc - db - st.mu_b, st.lam_b);
      for (std::uint64_t t = Tc, hi = std::min(Tc + st.lam_joint - 1, M);
           t <= hi; ++t) {
        if (cyc_a[ia] == cyc_b[ib]) {
          s.meet = true;
          s.t_meet = t;
          break;
        }
        if (++ia == st.lam_a) ia = 0;
        if (++ib == st.lam_b) ib = 0;
      }
    }
  }
  return s;
}

/// The round at which Brent's algorithm in the legacy stepper certifies:
/// it re-anchors at snapshot indices 2^k - 1 with window 2^k and
/// certifies from the first anchor in the cycle with a window spanning
/// one period, exactly lam_joint snapshots later. (Tail configurations
/// never recur — the joint orbit is rho-shaped — so no earlier anchor
/// can match.) Requires da, db < M.
inline std::uint64_t detect_round(const PairState& st, std::uint64_t da,
                                  std::uint64_t db) {
  const std::uint64_t t0 = std::max({da, db, std::uint64_t{1}});
  const std::uint64_t Tc = std::max(da + st.mu_a, db + st.mu_b);
  const std::uint64_t mu_joint = Tc > t0 ? Tc - t0 : 0;
  const std::uint64_t window =
      std::bit_ceil(std::max(st.lam_joint, mu_joint + 1));
  return t0 + (window - 1) + st.lam_joint;
}

/// Delay-dependent half of the full verdict for delays (da, db) under
/// horizon M — field-for-field what the legacy stepper reports: a meeting
/// is checked before the cycle certificate within each round, and nothing
/// past max_rounds is observed.
inline Verdict verify_with_state(const PairState& st, std::uint64_t da,
                                 std::uint64_t db, std::uint64_t M) {
  const MeetScan s = scan_meeting(st, da, db, M);
  Verdict r;
  r.engine = VerifyEngine::kCompiled;
  if (s.late) {
    if (s.meet) {  // t_meet <= M by the one-walker phase limit
      r.met = true;
      r.meeting_round = s.t_meet - 1;  // legacy reports round() - 1
      r.rounds_checked = s.t_meet;
    } else {
      r.rounds_checked = M;
    }
    return r;
  }
  const std::uint64_t t_detect = detect_round(st, da, db);
  if (s.meet && s.t_meet <= t_detect) {
    r.met = true;
    r.meeting_round = s.t_meet - 1;  // legacy reports round() - 1
    r.rounds_checked = s.t_meet;
  } else if (t_detect <= M) {
    r.certified_forever = true;
    r.cycle_length = st.lam_joint;
    r.rounds_checked = t_detect;
  } else {
    r.rounds_checked = M;
  }
  return r;
}

/// met/unmet classification alone — exactly verify_with_state().met, but
/// the (majority) unmet outcomes skip the Brent window arithmetic and the
/// verdict assembly. The defeat-counting loops live on this.
inline bool met_with_state(const PairState& st, std::uint64_t da,
                           std::uint64_t db, std::uint64_t M) {
  const MeetScan s = scan_meeting<true>(st, da, db, M);
  if (!s.meet) return false;
  // One-walker meetings (and the late case, whose only observable event
  // is one) have t_meet <= t0 <= the detection round by construction.
  if (s.early || s.late) return true;
  return s.t_meet <= detect_round(st, da, db);
}

/// Unmet count over a pair-major run of queries sharing one PairState.
/// `delays` is the flat k = 2 delay storage of the grid (delay_a, delay_b
/// per query, `len` queries). Flattened so the classification inlines and
/// the pair state stays hot across the delay run — the innermost loop of
/// defeat-density profiles.
__attribute__((flatten)) inline std::uint64_t count_unmet_run(
    const PairState& st, const std::uint64_t* delays, std::size_t len,
    std::uint64_t M) {
  std::uint64_t unmet = 0;
  for (std::size_t i = 0; i < len; ++i) {
    unmet += met_with_state(st, delays[2 * i], delays[2 * i + 1], M) ? 0 : 1;
  }
  return unmet;
}

/// Core of verify_never_meet_compiled over pre-fetched orbits, for
/// one-off calls. `A`/`B` must be `engine_a.orbit(start_a)` /
/// `engine_b.orbit(start_b)` and `same_engine` must be
/// (&engine_a == &engine_b); the caller guarantees start_a != start_b,
/// both in range, and M > 0.
inline Verdict verify_pair_core(const CompiledConfigEngine& engine_a,
                                const CompiledConfigEngine::Orbit& A,
                                const CompiledConfigEngine::Orbit& B,
                                bool same_engine, tree::NodeId start_a,
                                tree::NodeId start_b, std::uint64_t da,
                                std::uint64_t db, std::uint64_t M) {
  return verify_with_state(
      make_pair_state(engine_a, A, B, same_engine, start_a, start_b), da,
      db, M);
}

// ---- k-tuple gathering composition (paper §1.3) ---------------------------
//
// k identical agents evolve independently, so the joint configuration is
// the componentwise k-tuple of rho orbits: pre-period max_i(d_i + mu_i)
// and period lcm(lambda_1, ..., lambda_k) once every agent is in-cycle.
// The verdict splits exactly like the pair case:
//
//   make_tuple_state()  tuple-invariant work — per-agent orbit headers,
//                       the saturating lcm of the k cycle lengths, and one
//                       cycle-PAIR collision filter per unordered agent
//                       pair (the existing tables, indexed mod the
//                       pairwise gcds — nothing k-specific is built).
//   scan_gather()       delay-dependent search for the earliest round all
//                       k positions coincide: the all-parked window, the
//                       transient scan with k rolling indices, and the
//                       in-cycle phase gated by the pairwise filter — a
//                       gathering at t >= Tc co-locates EVERY pair, so one
//                       zero table entry refutes the whole period without
//                       scanning it (the common exit of exhaustive
//                       batteries); only tuples every pair of which can
//                       collide pay the lcm-bounded scan.
//   gather_with_state() the full GatherVerdict, field-for-field what
//                       sim::run_gathering reports (the k = 2
//                       instantiation agrees verdict-for-verdict with the
//                       pair core above — differential-tested).
//
// Inputs are validated by sim::verify_never_gather_compiled or the
// enumeration context: 2 <= k <= kMaxGatherAgents, in-range starts (equal
// starts ALLOWED — co-located identical agents with equal delays stay
// merged), M > 0, all orbits from ONE engine.

/// lcm(a, b) saturating at 2^63 (any value above every reachable horizon):
/// joint periods past the horizon are never scanned nor certified against,
/// so the exact value stops mattering once it cannot fit.
inline constexpr std::uint64_t kLcmSaturated = std::uint64_t{1} << 63;

inline std::uint64_t saturating_lcm(std::uint64_t a, std::uint64_t b) {
  if (a >= kLcmSaturated || b >= kLcmSaturated) return kLcmSaturated;
  const std::uint64_t q = a / std::gcd(a, b);
  if (q > kLcmSaturated / b) return kLcmSaturated;
  return q * b;
}

/// Tuple-invariant half of the gathering verdict: everything about the k
/// start nodes that does not depend on the delays. Valid as long as the
/// orbits are (until the owning engine rebinds).
struct TupleState {
  std::size_t k = 0;
  const CompiledConfigEngine::Orbit* orb[kMaxGatherAgents] = {};
  tree::NodeId start[kMaxGatherAgents] = {};
  /// Cached orbit headers, hot across a tuple-major run of delays.
  std::uint64_t mu[kMaxGatherAgents] = {};
  std::uint64_t lam[kMaxGatherAgents] = {};
  std::size_t size[kMaxGatherAgents] = {};
  const tree::NodeId* nodes[kMaxGatherAgents] = {};
  /// lcm of the k cycle lengths (the joint period once all are in-cycle),
  /// saturated at kLcmSaturated — certification requires the exact value.
  std::uint64_t lam_joint = 1;
  bool lam_joint_exact = true;
  /// One collision filter per unordered pair (i < j), in nested-loop
  /// order: the pair's cycle-PAIR table (nullptr when unavailable — no
  /// table means no prefilter, never a wrong answer), its gcd, and the
  /// alignment bases such that the class swept by delays (d_i, d_j) is
  /// (lhs0 + d_j) - (rhs0 + d_i) mod g — exactly PairState's convention.
  struct PairFilter {
    const std::uint8_t* table = nullptr;
    std::uint64_t g = 1;
    std::uint64_t lhs0 = 0, rhs0 = 0;
  };
  PairFilter pair[kMaxGatherAgents * (kMaxGatherAgents - 1) / 2] = {};
};

inline TupleState make_tuple_state(
    const CompiledConfigEngine& engine,
    const CompiledConfigEngine::Orbit* const* orbs,
    const tree::NodeId* starts, std::size_t k) {
  TupleState st;
  st.k = k;
  for (std::size_t i = 0; i < k; ++i) {
    const CompiledConfigEngine::Orbit& o = *orbs[i];
    st.orb[i] = &o;
    st.start[i] = starts[i];
    st.mu[i] = o.mu;
    st.lam[i] = o.lambda;
    st.size[i] = o.node.size();
    st.nodes[i] = o.node.data();
    st.lam_joint = saturating_lcm(st.lam_joint, o.lambda);
  }
  st.lam_joint_exact = st.lam_joint < kLcmSaturated;
  std::size_t p = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j, ++p) {
      TupleState::PairFilter& pf = st.pair[p];
      const CompiledConfigEngine::Orbit& A = *orbs[i];
      const CompiledConfigEngine::Orbit& B = *orbs[j];
      pf.g = A.lambda == B.lambda ? A.lambda : std::gcd(A.lambda, B.lambda);
      if (A.lambda <= CompiledConfigEngine::kCollisionLimit &&
          B.lambda <= CompiledConfigEngine::kCollisionLimit) {
        const auto table =
            engine.cycle_pair_lookup(A.cycle_root, B.cycle_root);
        if (!table.empty()) {
          pf.table = table.data();
          pf.lhs0 = A.cycle_phase + B.sn_mu;
          pf.rhs0 = B.cycle_phase + A.sn_mu;
        }
      }
    }
  }
  return st;
}

/// Delay-dependent gathering search. `certified` means no gathering can
/// ever occur (at ANY round, not just within the horizon): the transient
/// was fully scanned and the in-cycle phase either refuted by a pairwise
/// collision table or scanned over one full joint period inside M.
struct GatherScan {
  bool gathered = false;
  bool certified = false;
  std::uint64_t t_gather = 0;  ///< 1-based tick count, <= M when gathered
  tree::NodeId node = -1;
};

inline GatherScan scan_gather(const TupleState& st, const std::uint64_t* d,
                              std::uint64_t M) {
  GatherScan s;
  const std::size_t k = st.k;
  // Position of agent i after t ticks: node_i[min_cycle(t - d_i)] once
  // t > d_i, its start before. Tc is the first tick with every agent
  // in-cycle.
  std::uint64_t d_min = d[0];
  std::uint64_t Tc = 0;
  for (std::size_t i = 0; i < k; ++i) {
    d_min = std::min(d_min, d[i]);
    Tc = std::max(Tc, d[i] + st.mu[i]);
  }

  // All-parked window [1, d_min]: every position is still its start, so
  // the whole window collapses to one all-starts-equal check (identical
  // co-located agents gather before anyone moves).
  if (d_min >= 1) {
    bool all = true;
    for (std::size_t i = 1; i < k; ++i) all = all && st.start[i] == st.start[0];
    if (all) {  // M >= 1, so tick 1 is always inside the horizon
      s.gathered = true;
      s.t_gather = 1;
      s.node = st.start[0];
      return s;
    }
  }

  // Transient scan over [d_min + 1, min(Tc - 1, M)] with k rolling
  // indices: each index holds steps-taken (0 while parked), wrapping into
  // its cycle at the array end. Covers the one-walker phases and the
  // pre-cycle rounds in one loop.
  std::uint64_t idx[kMaxGatherAgents] = {};
  const std::uint64_t hi1 = std::min(Tc - 1, M);  // Tc >= 1 (mu >= 1)
  for (std::uint64_t t = d_min + 1; t <= hi1; ++t) {
    bool all = true;
    tree::NodeId at = -1;
    for (std::size_t i = 0; i < k; ++i) {
      if (t > d[i] && ++idx[i] == st.size[i]) idx[i] = st.mu[i];
      const tree::NodeId w = st.nodes[i][idx[i]];
      if (i == 0) {
        at = w;
      } else {
        all = all && w == at;
      }
    }
    if (all) {
      s.gathered = true;
      s.t_gather = t;
      s.node = at;
      return s;
    }
  }
  if (Tc > M) return s;  // horizon ends before the joint cycle starts

  // In-cycle phase: from tick Tc the joint tuple is periodic with period
  // lam_joint. A gathering at t >= Tc puts EVERY pair (i, j) on one node
  // at a round compatible with its alignment class (d_j - d_i shifted by
  // the cycle phases, mod gcd(lambda_i, lambda_j)) — so one zero table
  // entry certifies the whole period gathering-free without scanning it.
  std::size_t p = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j, ++p) {
      const TupleState::PairFilter& pf = st.pair[p];
      if (pf.table == nullptr) continue;  // no table: cannot prefilter
      const std::uint64_t lhs = pf.lhs0 + d[j];
      const std::uint64_t rhs = pf.rhs0 + d[i];
      std::uint64_t c;
      if (lhs >= rhs) {
        c = wrap_mod(lhs - rhs, pf.g);
      } else {
        const std::uint64_t x = wrap_mod(rhs - lhs, pf.g);
        c = x == 0 ? 0 : pf.g - x;
      }
      if (pf.table[c] == 0) {
        // Pair (i, j) never co-locates at any t >= Tc; the transient was
        // scanned above (Tc <= M), so no gathering ever happens — a
        // certificate independent of the joint period's size.
        s.certified = true;
        return s;
      }
    }
  }
  // Every pair can collide somewhere: scan the joint period (capped by
  // the horizon). Certification requires the full period inside M.
  const bool full_period =
      st.lam_joint_exact && st.lam_joint <= M - Tc + 1;
  const std::uint64_t hi2 = full_period ? Tc + st.lam_joint - 1 : M;
  for (std::size_t i = 0; i < k; ++i) {
    idx[i] = st.mu[i] + wrap_mod(Tc - d[i] - st.mu[i], st.lam[i]);
  }
  for (std::uint64_t t = Tc; t <= hi2; ++t) {
    bool all = true;
    const tree::NodeId at = st.nodes[0][idx[0]];
    for (std::size_t i = 1; i < k && all; ++i) {
      all = st.nodes[i][idx[i]] == at;
    }
    if (all) {
      s.gathered = true;
      s.t_gather = t;
      s.node = at;
      return s;
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (++idx[i] == st.size[i]) idx[i] = st.mu[i];
    }
  }
  s.certified = full_period;
  return s;
}

/// Delay-dependent half of the full gathering verdict under horizon M —
/// field-for-field what sim::run_gathering reports (gather_round is its
/// 0-based round, rounds_checked its rounds_executed), plus the
/// compiled-only never-gather certificate.
inline GatherVerdict gather_with_state(const TupleState& st,
                                       const std::uint64_t* d,
                                       std::uint64_t M) {
  const GatherScan s = scan_gather(st, d, M);
  GatherVerdict r;
  r.engine = VerifyEngine::kCompiled;
  if (s.gathered) {
    r.gathered = true;
    r.gather_round = s.t_gather - 1;  // reference reports the round index
    r.gather_node = s.node;
    r.rounds_checked = s.t_gather;
  } else {
    r.certified_forever = s.certified;
    // A pairwise-table certificate needs no period; report it only when
    // the joint period actually backed the scan (and is exact).
    if (s.certified && st.lam_joint_exact) r.cycle_length = st.lam_joint;
    r.rounds_checked = M;  // the reference executes every round
  }
  return r;
}

/// Ungathered count over a tuple-major run of queries sharing one
/// TupleState; `delays` strides st.k per query. The gathering analogue of
/// count_unmet_run.
__attribute__((flatten)) inline std::uint64_t count_ungathered_run(
    const TupleState& st, const std::uint64_t* delays, std::size_t len,
    std::uint64_t M) {
  std::uint64_t ungathered = 0;
  for (std::size_t i = 0; i < len; ++i) {
    ungathered += scan_gather(st, delays + i * st.k, M).gathered ? 0 : 1;
  }
  return ungathered;
}

}  // namespace rvt::sim::detail

// Explicit finite automata over edge-2-colored lines — the victim model of
// the paper's lower bounds (Theorems 3.1 and 4.2).
//
// On a line whose edges are properly 2-colored with the port numbers equal
// to the color at both extremities, an agent that leaves by port i enters
// the next node by port i; hence (paper §4.2) its incoming port carries no
// extra information and WLOG the transition function is
//     pi : S x {1, 2} -> S        (input: degree of the node entered)
// with output function lambda : S -> {-1, 0, 1, ...} (stay, or exit port
// taken mod degree). Both lower-bound adversaries operate on automata in
// exactly this normal form.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "util/rng.hpp"

namespace rvt::sim {

struct LineAutomaton {
  int initial = 0;
  /// delta[s][d-1] for degree d in {1, 2}.
  std::vector<std::array<int, 2>> delta;
  /// lambda[s]: kStay, or a port candidate reduced mod degree when acting.
  std::vector<int> lambda;

  int num_states() const { return static_cast<int>(delta.size()); }
  /// Throws std::invalid_argument on malformed tables.
  void validate() const;

  friend bool operator==(const LineAutomaton&, const LineAutomaton&) =
      default;

  /// Next state on entering a node of degree d (paper's pi). d in {1,2}.
  int next(int s, int d) const { return delta[s][d - 1]; }
  /// pi'(s) = pi(s, 2): the degree-2 restriction whose transition digraph
  /// drives Theorem 4.2.
  int next_internal(int s) const { return delta[s][1]; }
};

/// Adapter running a LineAutomaton under the generic Agent interface with
/// the paper-exact round semantics: the first action is lambda(initial)
/// with no transition; every later round first transitions on the entered
/// node's degree, then acts. Degrees > 2 are rejected (line automata).
class LineAutomatonAgent final : public Agent {
 public:
  explicit LineAutomatonAgent(LineAutomaton a, std::string name = "automaton");

  int step(const Observation& obs) override;
  std::uint64_t memory_bits() const override;
  std::string name() const override { return name_; }
  std::uint64_t state_signature() const override {
    return (static_cast<std::uint64_t>(state_) << 1) | (first_ ? 1 : 0);
  }

  int state() const { return state_; }

  /// The underlying transition tables (for the compiled engine fast path).
  const LineAutomaton& automaton() const { return a_; }
  /// True until the first step(): the compiled engine derives trajectories
  /// from the initial configuration, so only fresh agents qualify.
  bool fresh() const { return first_; }

 private:
  LineAutomaton a_;
  std::string name_;
  int state_ = 0;
  bool first_ = true;
};

/// The 4-state basic-walk automaton: crosses one edge per round and bounces
/// at the line's extremities, maintaining direction through the crossed
/// edge color. Correct when started at an internal node (a degree-only
/// automaton started at a leaf cannot learn its edge's color).
LineAutomaton basic_walker_automaton();

/// Ping-pong walker at speed 1/p: stays p-1 rounds, then crosses one edge,
/// bouncing at extremities. 4p states; its pi' digraph has a single circuit
/// of length 2p, so the Theorem 4.2 parameter gamma equals 2p. p >= 1.
LineAutomaton ping_pong_walker(int p);

/// Uniformly random automaton with `num_states` states and lambda values
/// in {-1, 0, 1}. Used to exercise the adversaries beyond hand-built
/// walkers.
LineAutomaton random_line_automaton(int num_states, util::Rng& rng);

/// Deterministic automaton over trees of maximum degree <= 3 — the victim
/// model of the Theorem 4.3 lower bound. Inputs are the paper's (i, d)
/// symbols: entry port i in {-1, 0, 1, 2} and degree d in {1, 2, 3}.
struct TreeAutomaton {
  int initial = 0;
  /// delta[s][i+1][d-1] for i in {-1,0,1,2}, d in {1,2,3}.
  std::vector<std::array<std::array<int, 3>, 4>> delta;
  /// lambda[s]: kStay or a port candidate (reduced mod degree on acting).
  std::vector<int> lambda;

  int num_states() const { return static_cast<int>(delta.size()); }
  void validate() const;
};

class TreeAutomatonAgent final : public Agent {
 public:
  explicit TreeAutomatonAgent(TreeAutomaton a, std::string name = "tree-fsm");

  int step(const Observation& obs) override;
  std::uint64_t memory_bits() const override;
  std::string name() const override { return name_; }
  std::uint64_t state_signature() const override {
    return (static_cast<std::uint64_t>(state_) << 1) | (first_ ? 1 : 0);
  }

  int state() const { return state_; }

 private:
  TreeAutomaton a_;
  std::string name_;
  int state_ = 0;
  bool first_ = true;
};

/// Uniformly random TreeAutomaton with lambda values in {-1, 0, 1, 2}.
TreeAutomaton random_tree_automaton(int num_states, util::Rng& rng);

/// Lifts a line automaton to the degree-3 input alphabet (transitions on
/// degree 3 behave like degree 2; entry ports are ignored like the
/// original). Lets the walkers above serve as Theorem 4.3 victims too.
TreeAutomaton lift_to_tree_automaton(const LineAutomaton& a);

/// Single-agent dynamics on the bi-infinite 2-colored line.
///
/// Nodes are the integers; the edge {z, z+1} has color (z + phase) mod 2 and
/// that color is the port number at both of its endpoints. The agent starts
/// at position 0.
class ZLineSim {
 public:
  ZLineSim(const LineAutomaton& a, int phase);

  struct Snapshot {
    std::uint64_t round;  ///< 1-based round that produced this snapshot
    std::int64_t pos;     ///< position after acting
    int state;            ///< state the action was taken in
    int action;           ///< lambda(state): kStay or exit color
  };

  /// Runs one round; returns the snapshot after it.
  Snapshot tick();

  std::int64_t pos() const { return pos_; }
  int state() const { return state_; }
  std::uint64_t round() const { return round_; }

  /// Color (== port at both ends) of the edge {z, z+1}.
  int edge_color(std::int64_t z) const {
    return static_cast<int>(((z + phase_) % 2 + 2) % 2);
  }

 private:
  const LineAutomaton& a_;
  int phase_;
  std::int64_t pos_ = 0;
  int state_;
  bool first_ = true;
  std::uint64_t round_ = 0;
};

}  // namespace rvt::sim

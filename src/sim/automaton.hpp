// Explicit finite automata — the victim models of the paper's lower bounds.
//
// One value-semantic model underlies all of them: a *tabular automaton*,
// whose transition table is indexed by (state, entry port, degree) over an
// arbitrary maximum degree D (paper §2.1 input alphabet). The historical
// table formats remain as thin builder views onto it:
//
//  * LineAutomaton (Theorems 3.1, 4.2). On a line whose edges are properly
//    2-colored with the port numbers equal to the color at both
//    extremities, an agent that leaves by port i enters the next node by
//    port i; hence (paper §4.2) its incoming port carries no extra
//    information and WLOG the transition function is
//        pi : S x {1, 2} -> S        (input: degree of the node entered)
//    with output function lambda : S -> {-1, 0, 1, ...}. Its tabular form
//    has D = 2 and is entry-port-oblivious by construction.
//  * TreeAutomaton (Theorem 4.3): the full (i, d) alphabet over trees of
//    maximum degree 3 — tabular form with D = 3.
//
// The compiled configuration engine (sim/compiled.hpp) consumes the
// tabular form directly; agents expose it through the Agent::tabular()
// capability so verification dispatches without dynamic_cast.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "util/rng.hpp"

namespace rvt::sim {

/// Deterministic automaton over port-labeled trees of maximum degree
/// `max_degree`, in the paper's normal form: in every round the agent
/// first transitions on the input symbol (entry port i, degree d) of the
/// node it occupies — except the very first round, which acts from
/// `initial` without a transition — and then acts with lambda(state):
/// kStay, or an exit-port candidate reduced mod d by the simulator.
///
/// The transition table is flattened (state-major, then entry port, then
/// degree) so engines can index it without pointer chasing:
///     delta[(s * (D + 1) + (i + 1)) * D + (d - 1)]
/// for i in {-1, 0, ..., D-1} and d in {1, ..., D}.
struct TabularAutomaton {
  int initial = 0;
  int max_degree = 0;  ///< D >= 1; inputs with d > D are out of model
  std::vector<int> delta;  ///< flattened; size num_states() * (D+1) * D
  std::vector<int> lambda;  ///< lambda[s]: kStay or port candidate >= 0

  int num_states() const { return static_cast<int>(lambda.size()); }

  /// Next state on entering through port `in_port` (-1 after a null move)
  /// a node of degree d (1 <= d <= max_degree).
  int next(int s, int in_port, int d) const {
    return delta[static_cast<std::size_t>(
        (s * (max_degree + 1) + (in_port + 1)) * max_degree + (d - 1))];
  }

  /// True iff delta ignores the entry port (all (i, d) rows of a state
  /// agree across i). Port-oblivious automata — every LineAutomaton, and
  /// every lift_to_tree_automaton victim — admit a smaller configuration
  /// projection in the compiled engine (the entry port is then a function
  /// of the predecessor configuration).
  bool port_oblivious() const;

  /// Throws std::invalid_argument on malformed tables.
  void validate() const;

  friend bool operator==(const TabularAutomaton&, const TabularAutomaton&) =
      default;
};

/// Behavior-preserving canonical form of a tabular automaton, the dedup
/// key the orbit cache hashes in front of content addressing. Enumerated
/// tables differ in ways no trajectory can observe: states unreachable
/// from `initial` (under any input sequence), the numbering of reachable
/// states, transition entries for impossible inputs (entry port >= the
/// degree entered), and action values that agree modulo every degree
/// <= max_degree. The canonical form quotients all four out — reachable
/// states only, renumbered in BFS discovery order from the initial state
/// (which becomes state 0), impossible-input entries zeroed, actions
/// reduced mod lcm(1..max_degree) — so two automata share a canonical
/// form only if they produce identical trajectories on every tree of
/// max degree <= max_degree, and equivalent enumerated bindings collapse
/// into one orbit-cache entry (sim/orbit_cache.hpp's
/// canonical_automaton_key). Idempotent: a canonical input is returned
/// unchanged.
TabularAutomaton canonical_reachable_form(const TabularAutomaton& a);

struct LineAutomaton {
  int initial = 0;
  /// delta[s][d-1] for degree d in {1, 2}.
  std::vector<std::array<int, 2>> delta;
  /// lambda[s]: kStay, or a port candidate reduced mod degree when acting.
  std::vector<int> lambda;

  int num_states() const { return static_cast<int>(delta.size()); }
  /// Throws std::invalid_argument on malformed tables.
  void validate() const;

  friend bool operator==(const LineAutomaton&, const LineAutomaton&) =
      default;

  /// Next state on entering a node of degree d (paper's pi). d in {1,2}.
  int next(int s, int d) const { return delta[s][d - 1]; }
  /// pi'(s) = pi(s, 2): the degree-2 restriction whose transition digraph
  /// drives Theorem 4.2.
  int next_internal(int s) const { return delta[s][1]; }

  /// The tabular form (D = 2, entry-port-oblivious). Validates.
  TabularAutomaton tabular() const;
};

/// Deterministic automaton over trees of maximum degree <= 3 — the victim
/// model of the Theorem 4.3 lower bound. Inputs are the paper's (i, d)
/// symbols: entry port i in {-1, 0, 1, 2} and degree d in {1, 2, 3}.
struct TreeAutomaton {
  int initial = 0;
  /// delta[s][i+1][d-1] for i in {-1,0,1,2}, d in {1,2,3}.
  std::vector<std::array<std::array<int, 3>, 4>> delta;
  /// lambda[s]: kStay or a port candidate (reduced mod degree on acting).
  std::vector<int> lambda;

  int num_states() const { return static_cast<int>(delta.size()); }
  void validate() const;

  friend bool operator==(const TreeAutomaton&, const TreeAutomaton&) =
      default;

  /// The tabular form (D = 3). Validates.
  TabularAutomaton tabular() const;
};

/// Adapter running any TabularAutomaton under the generic Agent interface
/// with the paper-exact round semantics: the first action is
/// lambda(initial) with no transition; every later round first transitions
/// on the entered node's (entry port, degree) input, then acts.
/// Observations outside the automaton's model (degree > max_degree) throw
/// std::logic_error. Exposes the table through Agent::tabular() so the
/// verification dispatcher can route fresh agents to the compiled engine.
class TabularAutomatonAgent : public Agent {
 public:
  explicit TabularAutomatonAgent(TabularAutomaton a,
                                 std::string name = "tabular");

  int step(const Observation& obs) override;
  std::uint64_t memory_bits() const override;
  std::string name() const override { return name_; }
  std::uint64_t state_signature() const override {
    return (static_cast<std::uint64_t>(state_) << 1) | (first_ ? 1 : 0);
  }
  const TabularAutomaton* tabular() const override { return &a_; }
  /// True until the first step(): the compiled engine derives trajectories
  /// from the initial configuration, so only fresh agents qualify.
  bool fresh() const override { return first_; }

  int state() const { return state_; }

 private:
  TabularAutomaton a_;
  std::string name_;
  int state_ = 0;
  bool first_ = true;
};

/// LineAutomaton under the Agent interface (thin constructor over
/// TabularAutomatonAgent; degrees > 2 are rejected — line automata).
class LineAutomatonAgent final : public TabularAutomatonAgent {
 public:
  explicit LineAutomatonAgent(LineAutomaton a, std::string name = "automaton");
};

/// TreeAutomaton under the Agent interface (degree <= 3).
class TreeAutomatonAgent final : public TabularAutomatonAgent {
 public:
  explicit TreeAutomatonAgent(TreeAutomaton a, std::string name = "tree-fsm");
};

/// The 4-state basic-walk automaton: crosses one edge per round and bounces
/// at the line's extremities, maintaining direction through the crossed
/// edge color. Correct when started at an internal node (a degree-only
/// automaton started at a leaf cannot learn its edge's color).
LineAutomaton basic_walker_automaton();

/// Ping-pong walker at speed 1/p: stays p-1 rounds, then crosses one edge,
/// bouncing at extremities. 4p states; its pi' digraph has a single circuit
/// of length 2p, so the Theorem 4.2 parameter gamma equals 2p. p >= 1.
LineAutomaton ping_pong_walker(int p);

/// Uniformly random automaton with `num_states` states and lambda values
/// in {-1, 0, 1}. Used to exercise the adversaries beyond hand-built
/// walkers.
LineAutomaton random_line_automaton(int num_states, util::Rng& rng);

/// Uniformly random TreeAutomaton with lambda values in {-1, 0, 1, 2}.
TreeAutomaton random_tree_automaton(int num_states, util::Rng& rng);

/// Lifts a line automaton to the degree-3 input alphabet (transitions on
/// degree 3 behave like degree 2; entry ports are ignored like the
/// original). Lets the walkers above serve as Theorem 4.3 victims too.
TreeAutomaton lift_to_tree_automaton(const LineAutomaton& a);

/// Single-agent dynamics on the bi-infinite 2-colored line.
///
/// Nodes are the integers; the edge {z, z+1} has color (z + phase) mod 2 and
/// that color is the port number at both of its endpoints. The agent starts
/// at position 0.
class ZLineSim {
 public:
  ZLineSim(const LineAutomaton& a, int phase);

  struct Snapshot {
    std::uint64_t round;  ///< 1-based round that produced this snapshot
    std::int64_t pos;     ///< position after acting
    int state;            ///< state the action was taken in
    int action;           ///< lambda(state): kStay or exit color
  };

  /// Runs one round; returns the snapshot after it.
  Snapshot tick();

  std::int64_t pos() const { return pos_; }
  int state() const { return state_; }
  std::uint64_t round() const { return round_; }

  /// Color (== port at both ends) of the edge {z, z+1}.
  int edge_color(std::int64_t z) const {
    return static_cast<int>(((z + phase_) % 2 + 2) % 2);
  }

 private:
  const LineAutomaton& a_;
  int phase_;
  std::int64_t pos_ = 0;
  int state_;
  bool first_ = true;
  std::uint64_t round_ = 0;
};

}  // namespace rvt::sim

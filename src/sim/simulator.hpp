// Synchronous two-agent simulator (paper §2.1).
//
// Two identical agents are dropped on distinct nodes of a port-labeled
// tree. An adversary chooses a start delay theta >= 0 for each agent (the
// paper's single theta is the difference; we allow per-agent offsets, which
// is equivalent). Rounds are synchronous: every round, each *started* agent
// observes (entry port, degree) and either stays or crosses an edge; both
// moves are applied simultaneously. Agents that cross the same edge in
// opposite directions swap positions and do NOT meet (they "cross inside
// the edge") — rendezvous requires being at the same node at the end of a
// round. A not-yet-started agent physically occupies its initial node, so
// the other agent walking onto it does complete rendezvous.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/agent.hpp"
#include "tree/tree.hpp"
#include "tree/walk.hpp"

namespace rvt::sim {

struct RunConfig {
  tree::NodeId start_a = -1;
  tree::NodeId start_b = -1;
  std::uint64_t delay_a = 0;  ///< rounds before agent A starts acting
  std::uint64_t delay_b = 0;
  std::uint64_t max_rounds = 0;  ///< hard stop (0 forbidden)
};

struct RunResult {
  bool met = false;
  std::uint64_t meeting_round = 0;  ///< round at whose end agents met
  tree::NodeId meeting_node = -1;
  std::uint64_t rounds_executed = 0;
  std::uint64_t moves_a = 0;  ///< edges actually crossed by A
  std::uint64_t moves_b = 0;
  std::uint64_t memory_bits_a = 0;  ///< as reported by the agents at the end
  std::uint64_t memory_bits_b = 0;
};

/// Incremental two-agent run; lower-bound verifiers drive it round by round
/// to inspect joint configurations.
class TwoAgentRun {
 public:
  /// Throws std::invalid_argument on bad config (equal starts,
  /// out-of-range nodes).
  TwoAgentRun(const tree::Tree& t, Agent& a, Agent& b, const RunConfig& cfg);

  /// Executes one round; returns true if the agents are co-located at its
  /// end (rendezvous).
  bool tick();

  std::uint64_t round() const { return round_; }  ///< rounds executed
  tree::WalkPos pos_a() const { return pos_a_; }
  tree::WalkPos pos_b() const { return pos_b_; }
  std::uint64_t moves_a() const { return moves_a_; }
  std::uint64_t moves_b() const { return moves_b_; }
  bool both_started() const {
    return round_ >= delay_a_ && round_ >= delay_b_;
  }

 private:
  void step_agent(Agent& ag, tree::WalkPos& pos, std::uint64_t delay,
                  std::uint64_t& moves);

  const tree::Tree& t_;
  Agent& a_;
  Agent& b_;
  tree::WalkPos pos_a_, pos_b_;
  std::uint64_t delay_a_, delay_b_;
  std::uint64_t moves_a_ = 0, moves_b_ = 0;
  std::uint64_t round_ = 0;
};

/// Per-round trace hook: (round, pos_a, pos_b). pos.in_port is the port the
/// agent entered by in that round (-1 if it stayed / hasn't started).
using TraceFn =
    std::function<void(std::uint64_t, tree::WalkPos, tree::WalkPos)>;

/// Runs until meeting or cfg.max_rounds (which must be > 0).
RunResult run_rendezvous(const tree::Tree& t, Agent& a, Agent& b,
                         const RunConfig& cfg, const TraceFn& trace = {});

/// Gathering: k >= 2 identical agents must all occupy one node in the same
/// round (the paper's "natural extension" of rendezvous, §1.3). Agents at
/// the same start are allowed — identical deterministic agents co-located
/// with equal delays stay merged forever.
struct GatherConfig {
  std::vector<tree::NodeId> starts;   ///< one per agent
  std::vector<std::uint64_t> delays;  ///< one per agent (empty = all zero)
  std::uint64_t max_rounds = 0;
};

struct GatherResult {
  bool gathered = false;
  std::uint64_t gather_round = 0;
  tree::NodeId gather_node = -1;
  std::uint64_t rounds_executed = 0;
  std::vector<std::uint64_t> memory_bits;  ///< per agent, at the end
};

GatherResult run_gathering(const tree::Tree& t,
                           const std::vector<Agent*>& agents,
                           const GatherConfig& cfg);

}  // namespace rvt::sim

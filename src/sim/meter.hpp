// Memory metering: measured, not declared.
//
// The paper's resource is the number of automaton states, i.e.
// Theta(log #states) bits. Our algorithmic agents are written as C++ state
// machines whose persistent data is a fixed control state plus a handful of
// bounded counters. The meter charges:
//
//   ceil(log2(#control states))  +  sum_over_counters ceil(log2(max+1))
//
// where `max` is the largest value the counter ever held. E2/E3 plot these
// totals against n and l; the Theorem 4.1 agent must come out as
// O(log l + log log n).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace rvt::sim {

/// Unsigned counter that records the maximum value it ever held.
class MeteredCounter {
 public:
  std::uint64_t get() const { return v_; }
  std::uint64_t max_seen() const { return max_; }
  unsigned bits() const { return util::bit_width_for(max_); }

  void set(std::uint64_t v) {
    v_ = v;
    if (v_ > max_) max_ = v_;
  }
  void add(std::uint64_t d) { set(v_ + d); }
  void increment() { add(1); }
  void decrement() { v_ = v_ == 0 ? 0 : v_ - 1; }
  void reset() { v_ = 0; }  // resetting does not erase the high-water mark

  MeteredCounter& operator=(std::uint64_t v) {
    set(v);
    return *this;
  }
  operator std::uint64_t() const { return v_; }

 private:
  std::uint64_t v_ = 0;
  std::uint64_t max_ = 0;
};

/// A registry of named counters plus a control-state-space size.
class MemoryMeter {
 public:
  /// Creates (or returns the existing) counter named `name`. References
  /// remain valid for the meter's lifetime.
  MeteredCounter& counter(const std::string& name);

  /// Declares the size of the agent's control state space (the fixed
  /// program states, independent of counters). Latched to the maximum of
  /// all declarations.
  void declare_control_states(std::uint64_t count);

  std::uint64_t total_bits() const;

  struct Entry {
    std::string name;
    std::uint64_t max_value;
    unsigned bits;
  };
  std::vector<Entry> breakdown() const;

 private:
  std::deque<std::pair<std::string, MeteredCounter>> counters_;
  std::uint64_t control_states_ = 1;
};

}  // namespace rvt::sim

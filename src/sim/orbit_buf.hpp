// Orbit payload storage that can live in a per-set arena.
//
// A published OrbitSet used to hold one heap allocation per orbit per
// field (node / in_port / first_visit vectors), so the cached steady
// state of an enumeration sweep chased pointers into allocations
// scattered across the heap — and serializing a set meant walking every
// one of them. OrbitBuf keeps the exact std::vector surface the
// extraction and verdict code uses (push_back / pop_back / clear /
// assign / operator[] / data / size), but distinguishes two backing
// modes:
//
//  * OWNING — a growable private buffer, used by the engine-local orbit
//    cache exactly like the vectors it replaces (capacity survives
//    clear(), so the zero-allocation rebind loop is unchanged);
//  * EXTERNAL — a non-owning window into a contiguous arena owned by the
//    containing OrbitSet (snapshot_orbits() and the deserializer build
//    these), so a whole set's payload is one allocation per field type
//    and serialization is a near-memcpy of the arenas.
//
// Externally-bound buffers are read-only by contract: they only ever
// hang off a `shared_ptr<const OrbitSet>`, so nothing calls the mutators
// — a mutating call on an external buffer detaches into a private copy
// first, keeping the type memory-safe even if that contract is broken.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>

namespace rvt::sim {

template <typename T>
class OrbitBuf {
  static_assert(std::is_trivially_copyable_v<T>,
                "OrbitBuf: payloads are raw-copied between buffers");

 public:
  OrbitBuf() = default;
  ~OrbitBuf() {
    if (owns_) delete[] data_;
  }
  OrbitBuf(const OrbitBuf& o) { copy_from(o.data_, o.size_); }
  OrbitBuf& operator=(const OrbitBuf& o) {
    if (this != &o) copy_from(o.data_, o.size_);
    return *this;
  }
  OrbitBuf(OrbitBuf&& o) noexcept
      : data_(o.data_), size_(o.size_), cap_(o.cap_), owns_(o.owns_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
    o.owns_ = false;
  }
  OrbitBuf& operator=(OrbitBuf&& o) noexcept {
    if (this != &o) {
      if (owns_) delete[] data_;
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      owns_ = o.owns_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.cap_ = 0;
      o.owns_ = false;
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  T* data() {
    detach();  // writable access: never hand out the shared arena
    return data_;
  }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& operator[](std::size_t i) {
    detach();
    return data_[i];
  }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  operator std::span<const T>() const { return {data_, size_}; }

  void push_back(T v) {
    if (size_ == cap_ || !owns_) grow(size_ + 1);
    data_[size_++] = v;
  }
  void pop_back() {
    detach();
    --size_;
  }
  /// Keeps an owning buffer's capacity (the engine's rebind loop relies
  /// on it); an external binding is simply dropped.
  void clear() {
    if (!owns_) {
      data_ = nullptr;
      cap_ = 0;
    }
    size_ = 0;
  }
  void assign(std::size_t n, T v) {
    if (n > cap_ || !owns_) grow_discard(n);
    std::fill(data_, data_ + n, v);
    size_ = n;
  }

  /// Binds this buffer as a read-only window into arena memory owned by
  /// the surrounding structure (which must outlive it). The const_cast is
  /// confined here: externally-bound buffers are only reachable through
  /// const objects, and every mutator detaches first.
  void bind_external(const T* p, std::size_t n) {
    if (owns_) delete[] data_;
    data_ = const_cast<T*>(p);
    size_ = n;
    cap_ = 0;
    owns_ = false;
  }
  bool external() const { return !owns_ && data_ != nullptr; }

  friend bool operator==(const OrbitBuf& a, const OrbitBuf& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data_, b.data_, a.size_ * sizeof(T)) == 0);
  }

 private:
  /// Re-allocates to hold at least `need`, preserving contents (the
  /// detach path for mutations on an external binding).
  void grow(std::size_t need) {
    const std::size_t cap = std::max<std::size_t>(
        {need, cap_ * 2, 8});
    T* fresh = new T[cap];
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    if (owns_) delete[] data_;
    data_ = fresh;
    cap_ = cap;
    owns_ = true;
  }
  /// Like grow() but contents need not survive (assign overwrites).
  void grow_discard(std::size_t need) {
    const std::size_t cap = std::max<std::size_t>({need, cap_, 8});
    if (owns_) delete[] data_;
    data_ = new T[cap];
    cap_ = cap;
    owns_ = true;
  }
  void detach() {
    if (!owns_ && data_ != nullptr) grow(size_);
  }
  void copy_from(const T* p, std::size_t n) {
    if (n > cap_ || !owns_) grow_discard(n);
    if (n > 0) std::memcpy(data_, p, n * sizeof(T));
    size_ = n;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  bool owns_ = false;
};

}  // namespace rvt::sim

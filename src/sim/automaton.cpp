#include "sim/automaton.hpp"

#include <cstring>
#include <numeric>
#include <stdexcept>

#include "util/math.hpp"

namespace rvt::sim {

bool TabularAutomaton::port_oblivious() const {
  // All D + 1 entry-port rows of a state agree iff the overlapping block
  // compare rows[0..D-1] == rows[1..D] holds (equality chains through the
  // overlap) — one memcmp per state instead of a scalar triple loop; this
  // runs on every engine rebind of an enumeration sweep.
  const int D = max_degree;
  const std::size_t row_block = static_cast<std::size_t>(D) * D;
  for (int s = 0; s < num_states(); ++s) {
    const int* base = delta.data() + static_cast<std::size_t>(s) * (D + 1) * D;
    if (std::memcmp(base, base + D, row_block * sizeof(int)) != 0) {
      return false;
    }
  }
  return true;
}

void TabularAutomaton::validate() const {
  const int n = num_states();
  if (n <= 0) throw std::invalid_argument("TabularAutomaton: no states");
  if (max_degree < 1 || max_degree > 255) {
    throw std::invalid_argument("TabularAutomaton: max_degree in [1, 255]");
  }
  if (initial < 0 || initial >= n) {
    throw std::invalid_argument("TabularAutomaton: bad initial state");
  }
  const std::size_t want = static_cast<std::size_t>(n) * (max_degree + 1) *
                           static_cast<std::size_t>(max_degree);
  if (delta.size() != want) {
    throw std::invalid_argument("TabularAutomaton: delta size mismatch");
  }
  for (const int target : delta) {
    if (target < 0 || target >= n) {
      throw std::invalid_argument("TabularAutomaton: bad transition target");
    }
  }
  for (const int act : lambda) {
    if (act < -1) throw std::invalid_argument("TabularAutomaton: lambda < -1");
  }
}

TabularAutomaton canonical_reachable_form(const TabularAutomaton& a) {
  const int D = a.max_degree;
  const int K = a.num_states();
  // BFS closure over every input a tree of max degree <= D can present:
  // entry port i in {-1 (start / after a stay), 0..d-1} at a node of
  // degree d in {1..D}. Discovery order is the canonical numbering.
  std::vector<int> order;
  std::vector<int> renum(static_cast<std::size_t>(K), -1);
  order.reserve(static_cast<std::size_t>(K));
  renum[static_cast<std::size_t>(a.initial)] = 0;
  order.push_back(a.initial);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int s = order[head];
    for (int d = 1; d <= D; ++d) {
      for (int i = -1; i < d; ++i) {
        const int t = a.next(s, i, d);
        if (renum[static_cast<std::size_t>(t)] < 0) {
          renum[static_cast<std::size_t>(t)] =
              static_cast<int>(order.size());
          order.push_back(t);
        }
      }
    }
  }
  // Two actions agree on every degree d <= D iff they agree mod
  // lcm(1..D) (the simulator reduces the action mod the degree acted
  // from); kStay is preserved as is.
  int act_mod = 1;
  for (int d = 2; d <= D; ++d) act_mod = std::lcm(act_mod, d);
  TabularAutomaton c;
  c.initial = 0;
  c.max_degree = D;
  const int K2 = static_cast<int>(order.size());
  c.delta.assign(
      static_cast<std::size_t>(K2) * (D + 1) * static_cast<std::size_t>(D),
      0);
  c.lambda.resize(static_cast<std::size_t>(K2));
  for (int s2 = 0; s2 < K2; ++s2) {
    const int s = order[static_cast<std::size_t>(s2)];
    const int act = a.lambda[static_cast<std::size_t>(s)];
    c.lambda[static_cast<std::size_t>(s2)] =
        act < 0 ? kStay : act % act_mod;
    for (int d = 1; d <= D; ++d) {
      for (int i = -1; i < d; ++i) {
        c.delta[(static_cast<std::size_t>(s2) * (D + 1) + (i + 1)) * D +
                (d - 1)] = renum[static_cast<std::size_t>(a.next(s, i, d))];
      }
      // Entries with i >= d stay 0: an entry port can never reach the
      // degree of the node entered, so no tree presents those inputs.
    }
  }
  return c;
}

void LineAutomaton::validate() const {
  const int n = num_states();
  if (n <= 0) throw std::invalid_argument("LineAutomaton: no states");
  if (initial < 0 || initial >= n) {
    throw std::invalid_argument("LineAutomaton: bad initial state");
  }
  if (static_cast<int>(lambda.size()) != n) {
    throw std::invalid_argument("LineAutomaton: lambda size mismatch");
  }
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < 2; ++d) {
      if (delta[s][d] < 0 || delta[s][d] >= n) {
        throw std::invalid_argument("LineAutomaton: bad transition target");
      }
    }
    if (lambda[s] < -1) {
      throw std::invalid_argument("LineAutomaton: lambda < -1");
    }
  }
}

TabularAutomaton LineAutomaton::tabular() const {
  validate();
  TabularAutomaton t;
  t.initial = initial;
  t.max_degree = 2;
  t.lambda = lambda;
  const int n = num_states();
  t.delta.resize(static_cast<std::size_t>(n) * 3 * 2);
  for (int s = 0; s < n; ++s) {
    for (int i = 0; i < 3; ++i) {  // entry port carries no information
      t.delta[(static_cast<std::size_t>(s) * 3 + i) * 2] = delta[s][0];
      t.delta[(static_cast<std::size_t>(s) * 3 + i) * 2 + 1] = delta[s][1];
    }
  }
  return t;
}

void TreeAutomaton::validate() const {
  const int n = num_states();
  if (n <= 0) throw std::invalid_argument("TreeAutomaton: no states");
  if (initial < 0 || initial >= n) {
    throw std::invalid_argument("TreeAutomaton: bad initial state");
  }
  if (static_cast<int>(lambda.size()) != n) {
    throw std::invalid_argument("TreeAutomaton: lambda size mismatch");
  }
  for (int s = 0; s < n; ++s) {
    for (int i = 0; i < 4; ++i) {
      for (int d = 0; d < 3; ++d) {
        if (delta[s][i][d] < 0 || delta[s][i][d] >= n) {
          throw std::invalid_argument("TreeAutomaton: bad transition");
        }
      }
    }
    if (lambda[s] < -1) throw std::invalid_argument("TreeAutomaton: lambda");
  }
}

TabularAutomaton TreeAutomaton::tabular() const {
  validate();
  TabularAutomaton t;
  t.initial = initial;
  t.max_degree = 3;
  t.lambda = lambda;
  const int n = num_states();
  t.delta.resize(static_cast<std::size_t>(n) * 4 * 3);
  for (int s = 0; s < n; ++s) {
    for (int i = 0; i < 4; ++i) {
      for (int d = 0; d < 3; ++d) {
        t.delta[(static_cast<std::size_t>(s) * 4 + i) * 3 + d] =
            delta[s][i][d];
      }
    }
  }
  return t;
}

TabularAutomatonAgent::TabularAutomatonAgent(TabularAutomaton a,
                                             std::string name)
    : a_(std::move(a)), name_(std::move(name)), state_(a_.initial) {
  a_.validate();
}

int TabularAutomatonAgent::step(const Observation& obs) {
  if (obs.degree < 1 || obs.degree > a_.max_degree || obs.in_port < -1 ||
      obs.in_port >= a_.max_degree) {
    throw std::logic_error("TabularAutomatonAgent: degree/port out of model");
  }
  if (first_) {
    first_ = false;  // first action: lambda(initial), no transition
  } else {
    state_ = a_.next(state_, obs.in_port, obs.degree);
  }
  return a_.lambda[state_];
}

std::uint64_t TabularAutomatonAgent::memory_bits() const {
  return util::ceil_log2(static_cast<std::uint64_t>(a_.num_states()));
}

LineAutomatonAgent::LineAutomatonAgent(LineAutomaton a, std::string name)
    : TabularAutomatonAgent(a.tabular(), std::move(name)) {}

TreeAutomatonAgent::TreeAutomatonAgent(TreeAutomaton a, std::string name)
    : TabularAutomatonAgent(a.tabular(), std::move(name)) {}

namespace {
// State ids for the walkers, built from (at_leaf, last_color, phase).
int walker_id(bool at_leaf, int color, int phase, int p) {
  return ((at_leaf ? 2 : 0) + color) * p + phase;
}
}  // namespace

LineAutomaton basic_walker_automaton() { return ping_pong_walker(1); }

LineAutomaton ping_pong_walker(int p) {
  if (p < 1) throw std::invalid_argument("ping_pong_walker: p >= 1");
  LineAutomaton a;
  const int n = 4 * p;
  a.delta.assign(n, {0, 0});
  a.lambda.assign(n, kStay);
  for (int color = 0; color < 2; ++color) {
    for (int j = 0; j < p; ++j) {
      const int w = walker_id(false, color, j, p);  // internal-node states
      const int l = walker_id(true, color, j, p);   // leaf states
      if (j < p - 1) {
        a.lambda[w] = kStay;
        a.lambda[l] = kStay;
        // Stayed put: degree re-read is the same node's degree.
        a.delta[w][1] = walker_id(false, color, j + 1, p);
        a.delta[w][0] = walker_id(true, color, j + 1, p);
        a.delta[l][0] = walker_id(true, color, j + 1, p);
        a.delta[l][1] = walker_id(false, color, j + 1, p);
      } else {
        // Move: from an internal node continue direction (exit the color we
        // did NOT arrive by); from a leaf re-cross the arrival edge (exit
        // port 0 == the only port; its color is the remembered one).
        a.lambda[w] = 1 - color;
        a.lambda[l] = 0;
        a.delta[w][1] = walker_id(false, 1 - color, 0, p);  // crossed 1-color
        a.delta[w][0] = walker_id(true, 1 - color, 0, p);
        a.delta[l][1] = walker_id(false, color, 0, p);  // crossed `color`
        a.delta[l][0] = walker_id(true, color, 0, p);
      }
    }
  }
  // Initial: pretend we last crossed color 1, phase 0, at an internal node,
  // so the first move exits port 0 (the paper's convention).
  a.initial = walker_id(false, 1, 0, p);
  a.validate();
  return a;
}

LineAutomaton random_line_automaton(int num_states, util::Rng& rng) {
  if (num_states < 1) {
    throw std::invalid_argument("random_line_automaton: >= 1 state");
  }
  LineAutomaton a;
  a.delta.assign(num_states, {0, 0});
  a.lambda.assign(num_states, kStay);
  for (int s = 0; s < num_states; ++s) {
    a.delta[s][0] = static_cast<int>(rng.uniform(0, num_states - 1));
    a.delta[s][1] = static_cast<int>(rng.uniform(0, num_states - 1));
    a.lambda[s] = static_cast<int>(rng.uniform(0, 2)) - 1;  // {-1, 0, 1}
  }
  a.initial = static_cast<int>(rng.uniform(0, num_states - 1));
  a.validate();
  return a;
}

TreeAutomaton random_tree_automaton(int num_states, util::Rng& rng) {
  if (num_states < 1) {
    throw std::invalid_argument("random_tree_automaton: >= 1 state");
  }
  TreeAutomaton a;
  a.delta.assign(num_states, {});
  a.lambda.assign(num_states, kStay);
  for (int s = 0; s < num_states; ++s) {
    for (int i = 0; i < 4; ++i) {
      for (int d = 0; d < 3; ++d) {
        a.delta[s][i][d] = static_cast<int>(rng.uniform(0, num_states - 1));
      }
    }
    a.lambda[s] = static_cast<int>(rng.uniform(0, 3)) - 1;  // {-1,0,1,2}
  }
  a.initial = static_cast<int>(rng.uniform(0, num_states - 1));
  a.validate();
  return a;
}

TreeAutomaton lift_to_tree_automaton(const LineAutomaton& a) {
  a.validate();
  TreeAutomaton t;
  t.initial = a.initial;
  const int n = a.num_states();
  t.delta.assign(n, {});
  t.lambda = a.lambda;
  for (int s = 0; s < n; ++s) {
    for (int i = 0; i < 4; ++i) {
      t.delta[s][i][0] = a.delta[s][0];
      t.delta[s][i][1] = a.delta[s][1];
      t.delta[s][i][2] = a.delta[s][1];  // treat degree 3 like degree 2
    }
  }
  t.validate();
  return t;
}

ZLineSim::ZLineSim(const LineAutomaton& a, int phase)
    : a_(a), phase_(phase), state_(a.initial) {
  a_.validate();
  if (phase != 0 && phase != 1) {
    throw std::invalid_argument("ZLineSim: phase in {0,1}");
  }
}

ZLineSim::Snapshot ZLineSim::tick() {
  ++round_;
  if (first_) {
    first_ = false;
  } else {
    state_ = a_.next_internal(state_);  // all nodes on Z have degree 2
  }
  const int act = a_.lambda[state_];
  if (act != kStay) {
    const int c = ((act % 2) + 2) % 2;  // lambda mod degree(=2)
    // Right edge {pos, pos+1} has color edge_color(pos); left edge
    // {pos-1, pos} has the other color.
    if (edge_color(pos_) == c) {
      ++pos_;
    } else {
      --pos_;
    }
  }
  return {round_, pos_, state_, act};
}

}  // namespace rvt::sim

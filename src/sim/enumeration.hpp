// Fused rebind + grid enumeration.
//
// The exhaustive batteries (E10-style: every K-state automaton against a
// fixed set of instances, E11-style: a victim per instance against its
// start-pair x delay grid) used to drive verify_grid() per automaton —
// paying, per (automaton, tree), a verdict-vector allocation, an index
// indirection, a re-validation of the same grid, and a second pass over
// the queries to warm orbits. EnumerationContext fuses the whole
// per-automaton pipeline into one object that lives for a worker's entire
// sweep:
//
//   bind(a)          swap the automaton in (engines rebind lazily,
//                    keeping every buffer),
//   verify(g)        answer grid g into a reused verdict buffer —
//                    orbits warmed by the batched stepper, queries
//                    answered by the inlined verdict core,
//   first_unmet(g)   the adaptive variant: scan grid g until the first
//                    defeat (verdict with met == false), early-exiting —
//                    the shape of a "smallest defeating instance" search.
//
// Grids are k-AGENT (EnumGrid::agents, flat query-major start/delay
// storage): the meet API above is the k = 2 specialization, and the
// gathering API — verify_gather / count_ungathered / first_ungathered —
// serves any arity through the k-tuple verdict core
// (sim/verify_core.hpp), over the very same engines, warmed orbits and
// cache protocol (orbits are per-agent; nothing below this layer knows k).
//
// Grids are validated once at construction; the steady state allocates
// nothing. When an OrbitCache is attached, each binding's orbits are
// acquired from / published to it, so a battery shared by several workers
// (or repeated passes of one worker) extracts each orbit once per machine
// — every verdict carries the cache_hit flag for telemetry.
//
// sweep_enumeration() fans an automaton range across workers, one context
// per worker (sweep_indexed), with deterministic result ordering and
// aggregated telemetry.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/compiled.hpp"
#include "sim/orbit_cache.hpp"
#include "sim/sweep.hpp"
#include "sim/verdict.hpp"

namespace rvt::sim {

/// One query of a k-agent enumeration grid, viewing the grid's flat
/// storage: the agents' start nodes and start delays. The pair query of
/// the PR 1-3 pipeline is exactly the k = 2 case.
struct GatherQuery {
  std::span<const tree::NodeId> starts;
  std::span<const std::uint64_t> delays;
  std::size_t agents() const { return starts.size(); }
};

/// One grid of an enumeration battery: a substrate tree plus the
/// (start-tuple x delay) queries to answer on it. All `agents` agents of
/// a query run the bound automaton (the enumeration model: k identical
/// anonymous agents); the grid's arity is fixed, and starts/delays are
/// stored flat, query-major, `agents` entries per query — the shape the
/// verdict loops stream. Pair grids (agents == 2) are the same type: push
/// PairQuery points and the meet API (verify/count_unmet/first_unmet)
/// consumes them, while the gathering API serves any arity, k = 2
/// included. The tree must outlive every context using the grid.
struct EnumGrid {
  const tree::Tree* tree = nullptr;
  std::size_t agents = 2;             ///< k, fixed per grid (>= 2)
  std::vector<tree::NodeId> starts;   ///< query-major, `agents` per query
  std::vector<std::uint64_t> delays;  ///< same shape as starts

  EnumGrid() = default;
  EnumGrid(const tree::Tree* t, std::size_t k) : tree(t), agents(k) {}
  /// Convenience for the historical pair-grid literals: a tree plus pair
  /// queries (agents == 2).
  EnumGrid(const tree::Tree* t, std::initializer_list<PairQuery> qs)
      : tree(t) {
    for (const PairQuery& q : qs) push(q);
  }

  std::size_t query_count() const {
    return agents == 0 ? 0 : starts.size() / agents;
  }
  GatherQuery query(std::size_t i) const {
    return {{starts.data() + i * agents, agents},
            {delays.data() + i * agents, agents}};
  }
  /// Appends one k-tuple query; `d` may be empty (all-zero delays) or one
  /// delay per agent. Arity mismatches throw here — two compensating
  /// mis-sized pushes would pass the context's aggregate-shape validation
  /// while silently misaligning delays across queries.
  void push(std::span<const tree::NodeId> s,
            std::span<const std::uint64_t> d) {
    if (s.size() != agents || (!d.empty() && d.size() != s.size())) {
      throw std::invalid_argument(
          "EnumGrid::push: query arity must match the grid's agents "
          "(delays empty or one per agent)");
    }
    starts.insert(starts.end(), s.begin(), s.end());
    if (d.empty()) {
      delays.insert(delays.end(), s.size(), 0);
    } else {
      delays.insert(delays.end(), d.begin(), d.end());
    }
  }
  /// The k = 2 specialization: appends a pair query.
  void push(const PairQuery& q) {
    starts.insert(starts.end(), {q.start_a, q.start_b});
    delays.insert(delays.end(), {q.delay_a, q.delay_b});
  }
};

/// Telemetry aggregated across the workers of one sweep_enumeration call
/// (or collected manually from a directly-driven context).
struct EnumTelemetry {
  std::uint64_t queries = 0;           ///< verdicts produced
  std::uint64_t bindings = 0;          ///< (automaton, grid) preparations
  std::uint64_t cache_hits = 0;        ///< bindings served by the cache
  std::uint64_t cache_misses = 0;      ///< bindings extracted locally
  std::uint64_t orbits_extracted = 0;  ///< orbit walks actually run
  /// Automata whose canonical reachable form differs from their raw
  /// table — i.e. bindings the canonical dedup key can merge with an
  /// equivalent automaton's cache entry. The K = 3 exhaustive battery
  /// measurably collapses (asserted in tests/test_enumeration.cpp).
  std::uint64_t canonical_collapses = 0;
  /// Durable-tier fault handling (filled by the shard runner from the
  /// cache's backing OrbitStore after a run; zero for in-process sweeps
  /// with no tier): transient IO failures retried, operations that
  /// exhausted the retry schedule, corrupt tier files quarantined, and
  /// whether the tier disabled itself (compute-through — the sweep's
  /// verdicts are unaffected, only extraction is repaid).
  std::uint64_t tier_retries = 0;
  std::uint64_t tier_exhausted = 0;
  std::uint64_t tier_quarantined = 0;
  std::uint64_t tier_degraded = 0;  ///< 0/1
  double hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// Per-worker state of a fused enumeration sweep. Not thread-safe; build
/// one per worker (sweep_enumeration does). Grids and the optional cache
/// must outlive the context.
class EnumerationContext {
 public:
  /// Validates every grid up front (non-null tree, >= 2 nodes, arity
  /// within [2, kMaxGatherAgents], starts/delays of matching k-fold
  /// shape, in-range starts, max_rounds > 0) and throws
  /// std::invalid_argument on the first violation — the query loops then
  /// run unchecked. Equal starts within a query are allowed (the
  /// gathering model permits co-located agents); the MEET API addition-
  /// ally requires agents == 2 and pairwise-distinct starts and throws
  /// std::invalid_argument from verify()/count_unmet()/first_unmet() on
  /// grids that violate it.
  EnumerationContext(std::span<const EnumGrid> grids,
                     std::uint64_t max_rounds, OrbitCache* cache = nullptr);

  /// Makes `a` the automaton under test. Engines rebind lazily on the
  /// next query call per grid, so early-exiting a binding costs nothing
  /// for the grids never touched. `a` must stay alive until the next
  /// bind().
  void bind(const TabularAutomaton& a);

  /// Meet verdicts of pair grid g under the bound automaton, in query
  /// order. The span aliases an internal buffer reused by the next
  /// verify() call on this context. Every verdict's cache_hit flag
  /// reports whether the binding's orbits came from the attached cache.
  std::span<const Verdict> verify(std::size_t g);

  /// Index of the first query of pair grid g whose verdict has
  /// met == false (the automaton is DEFEATED: non-meeting certified or
  /// horizon exhausted), or -1 if every query meets. Early-exits: queries
  /// past the first defeat are not answered — and without an attached
  /// cache the binding is prepared LAZILY (orbits extract as the scan
  /// touches them), so an adaptive sweep that defeats most automata on
  /// their first pairs never pays for the whole grid's warm-up.
  std::ptrdiff_t first_unmet(std::size_t g);

  /// Number of pair-grid-g queries with met == false, without
  /// materializing verdicts — the accumulation shape of defeat-density
  /// profiles, where the verdict buffer writes would be the largest
  /// remaining per-query cost. Equals counting met == false over
  /// verify(g).
  std::uint64_t count_unmet(std::size_t g);

  /// Gathering verdicts of grid g (any arity, k = 2 included) under the
  /// bound automaton, in query order — each field-for-field what
  /// sim::run_gathering would report for that query, answered by the
  /// k-tuple verdict core over the same warmed orbits the meet API uses.
  /// The span aliases an internal buffer reused by the next
  /// verify_gather() call; cache_hit telemetry as for verify().
  std::span<const GatherVerdict> verify_gather(std::size_t g);

  /// Index of the first query of grid g whose gathering verdict has
  /// gathered == false, or -1 if every query gathers. Early-exits and
  /// (without a cache) prepares lazily, like first_unmet.
  std::ptrdiff_t first_ungathered(std::size_t g);

  /// Number of grid-g queries with gathered == false, without
  /// materializing verdicts. Equals counting gathered == false over
  /// verify_gather(g).
  std::uint64_t count_ungathered(std::size_t g);

  std::size_t grid_count() const { return grids_.size(); }
  /// Telemetry accumulated by this context so far (orbits_extracted sums
  /// over the engines built so far).
  EnumTelemetry telemetry() const;

 private:
  struct Slot {
    std::optional<CompiledConfigEngine> engine;
    OrbitKey tree_key;
    std::vector<tree::NodeId> warm_starts;  ///< unique starts of the grid
    /// Orbit pointer per start node, refreshed by prepare(): the verdict
    /// loop then reads k pointers per query instead of going through the
    /// engine's epoch-checked orbit() lookup.
    std::vector<const CompiledConfigEngine::Orbit*> orbit_ptr;
    std::uint64_t bound_serial = 0;   ///< engine bound to this binding
    std::uint64_t warmed_serial = 0;  ///< orbits warmed + orbit_ptr valid
    bool cache_hit = false;
    /// Grid qualifies for the meet API: agents == 2 with pairwise
    /// distinct starts per query (precomputed by the constructor).
    bool meet_ok = false;
  };

  /// Throws unless grid g qualifies for the meet API (see meet_ok).
  void require_meet(std::size_t g) const;

  /// Ensures slot g's engine is bound to the current automaton with its
  /// orbits warmed (or adopted from the cache); returns the slot.
  Slot& prepare(std::size_t g);
  /// Binding only (no warm-up, no cache, orbit_ptr not refreshed) — the
  /// lazy path of first_unmet().
  Slot& prepare_scan(std::size_t g);
  /// Prefetch hint: while grid g's queries run, pull grid g + 1's
  /// published set (if any) toward the caches so the next prepare() does
  /// not stall on DRAM. Wrong guesses are harmless.
  void prefetch_next(std::size_t g);

  std::span<const EnumGrid> grids_;
  std::uint64_t max_rounds_;
  OrbitCache* cache_;
  const TabularAutomaton* automaton_ = nullptr;
  std::uint64_t serial_ = 0;
  OrbitKey automaton_key_;
  bool automaton_key_valid_ = false;
  std::vector<Slot> slots_;
  std::vector<Verdict> verdicts_;
  std::vector<GatherVerdict> gather_verdicts_;
  EnumTelemetry stats_;
};

/// Fans fn(ctx, index) for index in [0, count) across sweep workers, one
/// EnumerationContext per worker, with deterministic result ordering
/// (results[i] == fn(ctx, i) regardless of thread count — automata must
/// therefore be derivable from the index alone, the usual enumeration
/// shape). num_threads == 0 means one worker per hardware thread
/// (RVT_SWEEP_THREADS overrides). Telemetry from every worker context is
/// summed into *telemetry when given. The first exception thrown by fn is
/// rethrown after the workers join.
template <typename Fn>
auto sweep_enumeration(std::span<const EnumGrid> grids, std::uint64_t count,
                       std::uint64_t max_rounds, Fn fn,
                       unsigned num_threads = 0, OrbitCache* cache = nullptr,
                       EnumTelemetry* telemetry = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, EnumerationContext&,
                                        std::uint64_t>> {
  std::mutex stats_mu;
  auto results = sweep_indexed(
      count,
      [&] { return EnumerationContext(grids, max_rounds, cache); },
      [&](EnumerationContext& ctx, std::uint64_t i) { return fn(ctx, i); },
      [&](EnumerationContext& ctx) {
        if (telemetry == nullptr) return;
        const EnumTelemetry t = ctx.telemetry();
        const std::lock_guard<std::mutex> lk(stats_mu);
        telemetry->queries += t.queries;
        telemetry->bindings += t.bindings;
        telemetry->cache_hits += t.cache_hits;
        telemetry->cache_misses += t.cache_misses;
        telemetry->orbits_extracted += t.orbits_extracted;
        telemetry->canonical_collapses += t.canonical_collapses;
        telemetry->tier_retries += t.tier_retries;
        telemetry->tier_exhausted += t.tier_exhausted;
        telemetry->tier_quarantined += t.tier_quarantined;
        telemetry->tier_degraded |= t.tier_degraded;
      },
      num_threads);
  return results;
}

}  // namespace rvt::sim

// Fused rebind + grid enumeration.
//
// The exhaustive batteries (E10-style: every K-state automaton against a
// fixed set of instances, E11-style: a victim per instance against its
// start-pair x delay grid) used to drive verify_grid() per automaton —
// paying, per (automaton, tree), a verdict-vector allocation, an index
// indirection, a re-validation of the same grid, and a second pass over
// the queries to warm orbits. EnumerationContext fuses the whole
// per-automaton pipeline into one object that lives for a worker's entire
// sweep:
//
//   bind(a)          swap the automaton in (engines rebind lazily,
//                    keeping every buffer),
//   verify(g)        answer grid g into a reused verdict buffer —
//                    orbits warmed by the batched stepper, queries
//                    answered by the inlined verdict core,
//   first_unmet(g)   the adaptive variant: scan grid g until the first
//                    defeat (verdict with met == false), early-exiting —
//                    the shape of a "smallest defeating instance" search.
//
// Grids are validated once at construction; the steady state allocates
// nothing. When an OrbitCache is attached, each binding's orbits are
// acquired from / published to it, so a battery shared by several workers
// (or repeated passes of one worker) extracts each orbit once per machine
// — every verdict carries the cache_hit flag for telemetry.
//
// sweep_enumeration() fans an automaton range across workers, one context
// per worker (sweep_indexed), with deterministic result ordering and
// aggregated telemetry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sim/compiled.hpp"
#include "sim/orbit_cache.hpp"
#include "sim/sweep.hpp"
#include "sim/verdict.hpp"

namespace rvt::sim {

/// One grid of an enumeration battery: a substrate tree plus the
/// (start-pair x delay) queries to answer on it. Both agents run the
/// bound automaton (the enumeration model: two identical anonymous
/// agents). The tree must outlive every context using the grid.
struct EnumGrid {
  const tree::Tree* tree = nullptr;
  std::vector<PairQuery> queries;
};

/// Telemetry aggregated across the workers of one sweep_enumeration call
/// (or collected manually from a directly-driven context).
struct EnumTelemetry {
  std::uint64_t queries = 0;           ///< verdicts produced
  std::uint64_t bindings = 0;          ///< (automaton, grid) preparations
  std::uint64_t cache_hits = 0;        ///< bindings served by the cache
  std::uint64_t cache_misses = 0;      ///< bindings extracted locally
  std::uint64_t orbits_extracted = 0;  ///< orbit walks actually run
  double hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// Per-worker state of a fused enumeration sweep. Not thread-safe; build
/// one per worker (sweep_enumeration does). Grids and the optional cache
/// must outlive the context.
class EnumerationContext {
 public:
  /// Validates every grid up front (non-null tree, >= 2 nodes, distinct
  /// in-range starts, max_rounds > 0) and throws std::invalid_argument on
  /// the first violation — verify()/first_unmet() then run unchecked.
  EnumerationContext(std::span<const EnumGrid> grids,
                     std::uint64_t max_rounds, OrbitCache* cache = nullptr);

  /// Makes `a` the automaton under test. Engines rebind lazily on the
  /// next verify()/first_unmet() per grid, so early-exiting a binding
  /// costs nothing for the grids never touched. `a` must stay alive until
  /// the next bind().
  void bind(const TabularAutomaton& a);

  /// Verdicts of grid g under the bound automaton, in query order. The
  /// span aliases an internal buffer reused by the next verify() call on
  /// this context. Every verdict's cache_hit flag reports whether the
  /// binding's orbits came from the attached cache.
  std::span<const Verdict> verify(std::size_t g);

  /// Index of the first query of grid g whose verdict has met == false
  /// (the automaton is DEFEATED: non-meeting certified or horizon
  /// exhausted), or -1 if every query meets. Early-exits: queries past
  /// the first defeat are not answered — and without an attached cache
  /// the binding is prepared LAZILY (orbits extract as the scan touches
  /// them), so an adaptive sweep that defeats most automata on their
  /// first pairs never pays for the whole grid's warm-up.
  std::ptrdiff_t first_unmet(std::size_t g);

  /// Number of grid-g queries with met == false, without materializing
  /// verdicts — the accumulation shape of defeat-density profiles, where
  /// the verdict buffer writes would be the largest remaining per-query
  /// cost. Equals counting met == false over verify(g).
  std::uint64_t count_unmet(std::size_t g);

  std::size_t grid_count() const { return grids_.size(); }
  /// Telemetry accumulated by this context so far (orbits_extracted sums
  /// over the engines built so far).
  EnumTelemetry telemetry() const;

 private:
  struct Slot {
    std::optional<CompiledConfigEngine> engine;
    OrbitKey tree_key;
    std::vector<tree::NodeId> warm_starts;  ///< unique starts of the grid
    /// Orbit pointer per start node, refreshed by prepare(): the verdict
    /// loop then reads two pointers per query instead of going through
    /// the engine's epoch-checked orbit() lookup.
    std::vector<const CompiledConfigEngine::Orbit*> orbit_ptr;
    std::uint64_t bound_serial = 0;   ///< engine bound to this binding
    std::uint64_t warmed_serial = 0;  ///< orbits warmed + orbit_ptr valid
    bool cache_hit = false;
  };

  /// Ensures slot g's engine is bound to the current automaton with its
  /// orbits warmed (or adopted from the cache); returns the slot.
  Slot& prepare(std::size_t g);
  /// Binding only (no warm-up, no cache, orbit_ptr not refreshed) — the
  /// lazy path of first_unmet().
  Slot& prepare_scan(std::size_t g);
  /// Prefetch hint: while grid g's queries run, pull grid g + 1's
  /// published set (if any) toward the caches so the next prepare() does
  /// not stall on DRAM. Wrong guesses are harmless.
  void prefetch_next(std::size_t g);

  std::span<const EnumGrid> grids_;
  std::uint64_t max_rounds_;
  OrbitCache* cache_;
  const TabularAutomaton* automaton_ = nullptr;
  std::uint64_t serial_ = 0;
  OrbitKey automaton_key_;
  bool automaton_key_valid_ = false;
  std::vector<Slot> slots_;
  std::vector<Verdict> verdicts_;
  EnumTelemetry stats_;
};

/// Fans fn(ctx, index) for index in [0, count) across sweep workers, one
/// EnumerationContext per worker, with deterministic result ordering
/// (results[i] == fn(ctx, i) regardless of thread count — automata must
/// therefore be derivable from the index alone, the usual enumeration
/// shape). num_threads == 0 means one worker per hardware thread
/// (RVT_SWEEP_THREADS overrides). Telemetry from every worker context is
/// summed into *telemetry when given. The first exception thrown by fn is
/// rethrown after the workers join.
template <typename Fn>
auto sweep_enumeration(std::span<const EnumGrid> grids, std::uint64_t count,
                       std::uint64_t max_rounds, Fn fn,
                       unsigned num_threads = 0, OrbitCache* cache = nullptr,
                       EnumTelemetry* telemetry = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, EnumerationContext&,
                                        std::uint64_t>> {
  std::mutex stats_mu;
  auto results = sweep_indexed(
      count,
      [&] { return EnumerationContext(grids, max_rounds, cache); },
      [&](EnumerationContext& ctx, std::uint64_t i) { return fn(ctx, i); },
      [&](EnumerationContext& ctx) {
        if (telemetry == nullptr) return;
        const EnumTelemetry t = ctx.telemetry();
        const std::lock_guard<std::mutex> lk(stats_mu);
        telemetry->queries += t.queries;
        telemetry->bindings += t.bindings;
        telemetry->cache_hits += t.cache_hits;
        telemetry->cache_misses += t.cache_misses;
        telemetry->orbits_extracted += t.orbits_extracted;
      },
      num_threads);
  return results;
}

}  // namespace rvt::sim

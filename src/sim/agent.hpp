// The agent abstraction (paper §2.1).
//
// An agent is an abstract state machine: in every round it reads the input
// symbol (i, d) — the port i through which it entered the current node (-1
// if its previous move was null or it has not moved yet) and the degree d
// of that node — and answers with an action: stay put, or leave through a
// port. The paper's output function is lambda(s) taken mod d; we mirror
// that by reducing any non-negative answer mod d in the simulator, so an
// agent whose output range is too small for a high-degree node physically
// cannot reach some neighbors (exactly the effect the Omega(log n) example
// of Section 3 exploits).
//
// Agents never see node identities and cannot mark nodes; the simulator
// enforces that by construction (Observation carries only i and d).
#pragma once

#include <cstdint>
#include <string>

#include "tree/tree.hpp"

namespace rvt::sim {

struct TabularAutomaton;  // sim/automaton.hpp

struct Observation {
  tree::Port in_port = -1;  ///< entry port; -1 after a null move / at start
  int degree = 0;           ///< degree of the current node
};

/// Action constant: remain at the current node this round.
inline constexpr int kStay = -1;

class Agent {
 public:
  virtual ~Agent() = default;

  /// One synchronous round: observe, transition, act. Return kStay or a
  /// port candidate (reduced mod degree by the simulator).
  virtual int step(const Observation& obs) = 0;

  /// Bits of persistent memory the agent used so far. Metered agents
  /// report measured counter widths + control-state bits; table automata
  /// report ceil(log2(#states)).
  virtual std::uint64_t memory_bits() const = 0;

  virtual std::string name() const = 0;

  /// Complete internal state as a comparable token, when the agent's state
  /// space is small enough to enumerate (finite automata). Used by the
  /// lower-bound verifier to certify non-meeting *forever*: once the joint
  /// (state, position) configuration of both agents repeats, the run is
  /// periodic and meeting is impossible for all time. Returns
  /// kNoSignature when unsupported (algorithmic agents with counters).
  static constexpr std::uint64_t kNoSignature = ~0ull;
  virtual std::uint64_t state_signature() const { return kNoSignature; }

  /// Capability query: the tabular transition model driving this agent, or
  /// nullptr for algorithmic agents. A non-null table is a *capability*,
  /// not a license — engines that replay the dynamics from the initial
  /// configuration (sim/compiled.hpp) must additionally check fresh().
  /// This replaces dynamic_cast dispatch on concrete agent classes: any
  /// agent whose behavior is a finite (state, entry port, degree) table
  /// can opt into the compiled fast path by overriding this.
  virtual const TabularAutomaton* tabular() const { return nullptr; }

  /// True iff the agent has not consumed any step() yet, i.e. it still
  /// sits in its initial configuration. Compiled engines derive whole
  /// trajectories from that configuration, so only fresh agents qualify;
  /// the conservative default keeps algorithmic agents on the reference
  /// stepper.
  virtual bool fresh() const { return false; }
};

}  // namespace rvt::sim

// Compiled joint-configuration engine for tabular automata (perf core of
// the lower-bound certification pipeline).
//
// A TabularAutomaton on ANY port-labeled tree has a finite single-agent
// configuration space
//     (state, first-step flag, node, entry port)  —  at most K*2*n*(D+1)
// points, and its dynamics is a deterministic self-map F of that space. A
// single-agent trajectory is therefore a rho-shaped orbit (tail of length
// mu followed by a cycle of length lambda); the engine extracts it with a
// stamped walk over F and caches it per start node. F itself is compiled
// ahead of the walk: the tree's adjacency and the automaton's transition
// tables are flattened into contiguous successor arrays (per-(node, port)
// and per-(state, entry port, degree)), so one orbit step is a handful of
// indexed loads with no virtual dispatch, no Observation construction and
// no snapshot hashing. Entry-port-oblivious automata — every line
// automaton, every lifted victim — keep the smaller (state, node)
// projection the original line engine walked (the entry port is then a
// function of the predecessor configuration); port-sensitive automata walk
// the full space. (A dense per-configuration successor table was
// benchmarked here and rejected: it costs O(space) per automaton rebind
// while a whole battery of queries only ever touches the reachable orbits,
// which are far smaller.)
//
// Orbits can be extracted one start at a time (orbit()) or in batches
// (warm_orbits()): the batched stepper advances up to 8 independent walks
// through one interleaved loop over the flattened tables — AVX2 gathers
// when the build and CPU support them (sim/simd.hpp), a structurally
// identical scalar lane loop otherwise — so the memory-level parallelism
// a single serial load chain leaves on the table is filled by the other
// walks. Batches share the stamp table, so walks merge into each other
// mid-batch; the resolution pass reconstructs every lane's rho form
// exactly (including mutual-merge dependency cycles), and the resulting
// orbits are field-identical to one-at-a-time extraction.
//
// Joint two-agent verification needs no joint stepping at all: the two
// agents evolve independently, so the joint configuration sequence observed
// by the legacy verifier (lowerbound/verify.cpp) is the componentwise pair
// of two rho orbits. Its pre-period and minimal period are
//     mu_joint     = max of the per-agent tails (delay-adjusted)
//     lambda_joint = lcm(lambda_a, lambda_b)
// and a meeting exists iff one occurs in the transient, or two in-cycle
// positions collide on a round compatible modulo gcd(lambda_a, lambda_b).
// The verdict — including the exact round Brent's algorithm in the legacy
// stepper would have certified at, and the exact cycle length it would
// have reported — is reconstructed analytically, so the compiled engine is
// a drop-in replacement validated field-for-field by differential tests.
// Start delays only shift the alignment of the two orbits, so sweeping a
// whole (start-pair x delay) grid against one engine re-uses every orbit;
// verify_grid() answers such grids batched, optionally fanning the
// (read-only, post-warmup) queries across sweep_instances workers, and
// sim/enumeration.hpp fuses rebind + grid for exhaustive batteries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/orbit_buf.hpp"
#include "sim/simulator.hpp"
#include "sim/verdict.hpp"
#include "tree/tree.hpp"

namespace rvt::sim {

/// Compiled dynamics + per-start orbit cache for one (tree, automaton)
/// pair. Reuse the same engine across many start pairs and delays (e.g.
/// the E10/E11 batteries) — orbits are computed once per start node — and
/// rebind() it to sweep automata over a fixed tree without reallocating.
/// Lazy caches make the engine non-thread-safe in general: use one engine
/// per sweep worker, or pre-warm via verify_grid/warm_orbits and share
/// read-only. adopt_shared_orbits() lets workers serve orbits published by
/// another engine (sim/orbit_cache.hpp) instead of re-extracting them.
class CompiledConfigEngine {
 public:
  /// Throws std::invalid_argument if the automaton is malformed, the tree
  /// has fewer than 2 nodes, or the tree's max degree exceeds the
  /// automaton's (the table has no entries for such inputs). The tree
  /// reference must outlive the engine; the automaton is copied.
  CompiledConfigEngine(const tree::Tree& t, const TabularAutomaton& a);

  /// Swaps in a new automaton over the same tree, invalidating cached
  /// orbits (references returned by orbit() become stale, adopted shared
  /// sets are dropped) but keeping all buffer capacity — the
  /// zero-allocation path for exhaustive sweeps.
  void rebind(const TabularAutomaton& a);

  /// rho decomposition of the single-agent orbit from a start node:
  /// node[k] is the node occupied after k steps (node[0] == start), stored
  /// for the tail and one full cycle (mu + lambda entries). The tail is
  /// never empty (the initial "first step pending" configuration cannot
  /// recur), so mu >= 1.
  ///
  /// mu and lambda describe the FULL configuration (incl. entry port). For
  /// port-oblivious automata the walk itself runs over the autonomous
  /// (state, node) projection — the entry port is a function of the
  /// predecessor pair — so sn_mu (the projection's tail, mu or mu - 1) and
  /// the per-step entry ports are kept for orbit-merging bookkeeping; for
  /// port-sensitive automata the walked space IS the full configuration
  /// and sn_mu == mu.
  struct Orbit {
    std::uint64_t mu = 0;
    std::uint64_t lambda = 0;
    std::uint64_t sn_mu = 0;
    /// Cycle identity: start node of the orbit that first walked this
    /// cycle, and this orbit's entry phase in that orbit's cycle
    /// coordinates. Two orbits of one engine share a cycle iff their
    /// cycle_root matches; their relative phase then decides meeting
    /// existence via the per-cycle collision table. (Which start owns a
    /// shared cycle depends on extraction order — one-at-a-time and
    /// batched extraction may pick different roots — but root equality,
    /// phases and collision answers are consistent within an epoch.)
    std::uint32_t cycle_root = 0;
    std::uint64_t cycle_phase = 0;
    /// Payload buffers: engine-local orbits own growable storage exactly
    /// like the std::vectors they replaced; orbits of a published (or
    /// deserialized) OrbitSet are windows into the set's contiguous
    /// arenas (see OrbitSet), one allocation per field type per set.
    OrbitBuf<tree::NodeId> node;
    OrbitBuf<std::int16_t> in_port;  ///< entry port after k steps
    /// first_visit[w]: first step at which the orbit occupies node w
    /// (kNever if it never does). Answers "can the walker hit a parked
    /// agent?" in O(1), making delayed-start queries O(1) in the delay.
    OrbitBuf<std::uint32_t> first_visit;
    static constexpr std::uint32_t kNever = ~0u;

    tree::NodeId node_at(std::uint64_t k) const {
      return k < node.size()
                 ? node[k]
                 : node[mu + (k - mu) % lambda];
    }
    std::int16_t in_port_at(std::uint64_t k) const {
      return k < in_port.size()
                 ? in_port[k]
                 : in_port[mu + (k - mu) % lambda];
    }
  };

  /// Collision table of one (cycle, cycle) pair, cached per ordered
  /// (cycle_root_a, cycle_root_b): entry c is nonzero iff positions i of
  /// root_a's cycle and j of root_b's cycle with i - j == c (mod g),
  /// g = gcd(lambda_a, lambda_b), put both agents on one node — the O(1)
  /// answer to "can two agents locked into these cycles at a given
  /// alignment ever meet" (once both are in-cycle, their position pair
  /// sweeps exactly the alignment class i - j mod g). A root pair with
  /// root_a == root_b is the classic same-cycle case (g = lambda). An
  /// EMPTY table means the build gave up (degenerate occupancy); callers
  /// fall back to scanning one joint period.
  struct CyclePair {
    std::uint32_t root_a = 0;
    std::uint32_t root_b = 0;
    std::uint32_t epoch = 0;       ///< binding the table belongs to
    std::vector<std::uint8_t> table;  ///< g entries; empty = gave up
  };

  /// An immutable bundle of extracted orbits + collision tables for one
  /// (tree, automaton) binding — the unit the cross-worker orbit cache
  /// (sim/orbit_cache.hpp) shares. Produced by snapshot_orbits() on the
  /// engine that extracted them; consumed read-only via
  /// adopt_shared_orbits() by every other worker of the same binding.
  struct OrbitSet {
    std::vector<Orbit> orbits;            ///< indexed by start node
    std::vector<std::uint8_t> has_orbit;  ///< 1 iff orbits[start] populated
    /// Contiguous arenas backing every orbit's payload (the orbits'
    /// OrbitBufs are bound into these): the cached steady state streams
    /// one allocation per field type instead of chasing per-orbit heap
    /// blocks, and serialization copies each arena wholesale. Orbits are
    /// laid out in start-node order. Never resize these after binding —
    /// the orbit windows alias their storage.
    std::vector<tree::NodeId> node_arena;
    std::vector<std::int16_t> port_arena;
    std::vector<std::uint32_t> visit_arena;
    /// Published cycle-pair collision tables (epoch field unused). A pair
    /// present with an empty table means the build gave up — consumers
    /// fall back to scanning, never re-running the build.
    std::vector<CyclePair> collisions;
    /// Dense (root_a * n + root_b) -> collisions index (-1 = absent),
    /// present when the tree is small enough (kCollisionIndexMaxN);
    /// otherwise consumers scan `collisions` linearly.
    std::vector<std::int32_t> collision_index;
    std::size_t bytes = 0;  ///< approximate footprint, for cache budgeting
  };

  /// Orbit from `start`, built on first use and cached until rebind().
  /// Serves from an adopted shared set when one covers `start`.
  const Orbit& orbit(tree::NodeId start) const;

  /// True iff orbit(start) would be served without extraction (local
  /// cache or adopted shared set) — the cheap guard batch warm-up loops
  /// use to skip the batching machinery on fully warmed engines.
  bool orbit_cached(tree::NodeId start) const {
    const std::size_t slot = static_cast<std::size_t>(start);
    if (shared_ != nullptr && slot < shared_->has_orbit.size() &&
        shared_->has_orbit[slot]) {
      return true;
    }
    return orbit_epoch_[slot] == epoch_;
  }

  /// Extracts every not-yet-cached orbit among `starts` (duplicates fine)
  /// with the batched multi-walk stepper — up to 8 walks advance through
  /// one interleaved loop (AVX2 gathers when available, scalar lanes
  /// otherwise). Equivalent to calling orbit() per start, but fills the
  /// memory-level parallelism a single walk's serial load chain leaves
  /// unused. Starts already covered by an adopted shared set or the local
  /// cache are skipped.
  void warm_orbits(std::span<const tree::NodeId> starts) const;

  /// Serve orbit()/cycle_pair_collisions() hits from `set` (published by
  /// another engine of the same (tree, automaton) binding) instead of
  /// extracting locally; starts the set does not cover still extract
  /// locally. Dropped by the next rebind(). Passing nullptr detaches.
  void adopt_shared_orbits(std::shared_ptr<const OrbitSet> set);

  /// Rebind served ENTIRELY by a published set: invalidates the local
  /// orbit cache and adopts `set` WITHOUT recompiling the transition
  /// tables — the cross-worker cache-hit fast path (the per-rebind table
  /// compilation is pure waste when every queried orbit is already in
  /// the set). The engine's compiled tables then belong to a previous
  /// binding, so extraction is refused (std::logic_error) until the next
  /// full rebind(): callers must ensure the set covers every start (and
  /// cycle root) their queries touch — sim/enumeration.hpp checks
  /// coverage before taking this path. automaton() keeps reporting the
  /// last COMPILED automaton.
  void rebind_adopted(std::shared_ptr<const OrbitSet> set);
  /// True iff an adopted shared set is currently attached.
  bool serving_shared_orbits() const { return shared_ != nullptr; }

  /// Copies every locally extracted orbit and collision table of the
  /// current binding into a publishable OrbitSet (adopted shared data is
  /// not re-published). The engine keeps its buffers — snapshotting does
  /// not disturb the zero-allocation rebind loop.
  std::shared_ptr<const OrbitSet> snapshot_orbits() const;

  /// Number of orbits this engine extracted by walking (cache hits —
  /// local or shared — do not count). The cross-worker cache tests assert
  /// on this to prove no orbit is ever extracted twice per binding.
  std::uint64_t orbits_extracted() const { return extracted_count_; }

  const tree::Tree& tree() const { return *tree_; }
  const TabularAutomaton& automaton() const { return automaton_; }
  /// Size of the full configuration space (K * 2 * n * (D+1)); every orbit
  /// satisfies mu + lambda <= num_configs().
  std::uint64_t num_configs() const;
  /// Entries of the visit-stamp table this binding needs — K * 2 * n for a
  /// port-oblivious automaton, K * 2 * n * (D+1) otherwise. The
  /// verification dispatcher budgets on this before building an engine.
  static std::uint64_t stamp_entries(const tree::Tree& t,
                                     const TabularAutomaton& a);

 private:
  void bind_automaton(const TabularAutomaton& a);
  void extract_orbit(tree::NodeId start, Orbit& out) const;
  /// Batched multi-walk extraction of the given (deduplicated, uncached)
  /// starts; implemented in compiled_batch.cpp with scalar and AVX2 lane
  /// steppers behind sim/simd.hpp dispatch.
  void extract_orbits_batch(std::span<const tree::NodeId> starts) const;
  /// Splices `out` (whose own prefix of `hit_index` steps is already
  /// recorded) into completed orbit `host`, which it hit at host step
  /// `hit_j` with entry port `seam_port` — shared by the one-walk and
  /// batched extraction paths.
  void finalize_merged(Orbit& out, const Orbit& host, std::uint64_t hit_index,
                       std::uint32_t hit_j, std::int16_t seam_port) const;
  static void build_first_visit(Orbit& out, std::int32_t n);

  const tree::Tree* tree_;
  TabularAutomaton automaton_;
  std::int32_t n_ = 0;
  std::int32_t max_deg_ = 0;   ///< automaton_.max_degree
  std::int32_t port_slots_ = 1;  ///< stamped entry-port slots: 1 or D+1
  // Flattened successor tables: substrate per (node, port), transitions
  // per (state, entry port, degree).
  std::vector<std::uint8_t> deg_;     ///< deg_[v]
  std::vector<std::int32_t> deg32_;   ///< deg_[v] widened for SIMD gathers
  std::vector<std::uint32_t> nbrev_;  ///< (neighbor << 8 | rev_port) per port
  std::vector<std::int32_t> delta_;   ///< delta_[(s*(D+1) + i+1)*D + d-1]
  /// Resolved action per (state, degree): lambda[s] reduced mod d, or -1
  /// for kStay — removes the per-step modulo from both steppers and gives
  /// the SIMD path a division-free gather.
  std::vector<std::int32_t> actd_;
  // Orbit cache, epoch-invalidated by rebind() so slots and their node
  // vectors keep their capacity across automata.
  mutable std::vector<Orbit> orbits_;
  mutable std::vector<std::uint32_t> orbit_epoch_;
  mutable std::uint32_t epoch_ = 1;
  mutable std::uint64_t extracted_count_ = 0;
  /// False after rebind_adopted(): the compiled tables belong to an older
  /// binding, so extraction must be refused until a full rebind().
  bool tables_valid_ = true;
  /// Read-only orbit set published by another engine of this binding;
  /// consulted before the local cache, dropped on rebind().
  std::shared_ptr<const OrbitSet> shared_;
  // Visit stamps over the walked projection — (state-signature, node) when
  // the automaton is port-oblivious, (state-signature, node, entry port)
  // otherwise — shared by every orbit of the current epoch: a walk stops
  // the moment it touches any already-extracted orbit and inherits that
  // orbit's cycle instead of re-walking it, so each configuration is
  // visited at most once per automaton no matter how many starts are
  // queried.
  struct Stamp {
    std::uint32_t epoch = 0;
    std::uint32_t owner = 0;  ///< start node whose walk stamped this config
    std::uint32_t index = 0;  ///< step index within that walk
  };
  // Node-major layout ((node * port_slots + pslot) * 2K + sig): the node
  // moves by at most one edge per step while the state may jump, so
  // consecutive walk steps touch neighboring blocks — the walk stays
  // cache-resident.
  mutable std::vector<Stamp> stamps_;
  // Cycle-pair collision tables, built lazily per ordered
  // (cycle_root_a, cycle_root_b) and epoch-gated; slots plus their table
  // capacity are recycled across rebinds. On small trees
  // (n <= kCollisionIndexMaxN) the epoch-stamped dense index below makes
  // the lookup O(1) — the battery loops refresh a pair state millions of
  // times per sweep — while large trees fall back to a linear scan of
  // the handful of entries.
  mutable std::vector<CyclePair> collision_;
  mutable std::vector<std::uint32_t> cindex_epoch_;  ///< n*n, 0 = stale
  mutable std::vector<std::uint32_t> cindex_slot_;   ///< index into collision_
  mutable std::vector<std::vector<std::uint32_t>> node_positions_;  // scratch
  mutable std::vector<std::uint8_t> warm_seen_;  // warm_orbits dedupe scratch

 public:
  /// Collision table of the ordered cycle pair (root_a, root_b) — both
  /// Orbit::cycle_root values of this engine, extracted this epoch; see
  /// CyclePair for semantics. Lazily built; pairs with a cycle longer
  /// than kCollisionLimit return an empty span ("scan instead"), as do
  /// builds that gave up.
  std::span<const std::uint8_t> cycle_pair_collisions(
      std::uint32_t root_a, std::uint32_t root_b) const;

  /// Inline fast path of cycle_pair_collisions: answers dense-index hits
  /// (shared or local) without the out-of-line call — the per-pair lookup
  /// the battery loops make millions of times per sweep.
  std::span<const std::uint8_t> cycle_pair_lookup(std::uint32_t root_a,
                                                  std::uint32_t root_b) const {
    const std::size_t ckey = static_cast<std::size_t>(root_a) * n_ + root_b;
    if (shared_ != nullptr) {
      if (!shared_->collision_index.empty()) {
        const std::int32_t idx = shared_->collision_index[ckey];
        if (idx >= 0) return shared_->collisions[idx].table;
      }
    } else if (!cindex_epoch_.empty() && cindex_epoch_[ckey] == epoch_) {
      return collision_[cindex_slot_[ckey]].table;
    }
    return cycle_pair_collisions(root_a, root_b);
  }
  static constexpr std::uint64_t kCollisionLimit = 512;
  /// Largest node count for which the dense cycle-pair index (n*n
  /// entries) is kept; larger substrates use a linear table scan.
  static constexpr std::int32_t kCollisionIndexMaxN = 256;
  /// Lanes the batched stepper advances per batch.
  static constexpr std::size_t kBatchWalks = 8;
};

/// Line-automaton convenience over CompiledConfigEngine: constructs from
/// the historical LineAutomaton table format and insists the substrate is
/// a line (the degree cap falls out of the automaton's max_degree == 2).
class CompiledLineEngine : public CompiledConfigEngine {
 public:
  CompiledLineEngine(const tree::Tree& line, const LineAutomaton& a)
      : CompiledConfigEngine(line, a.tabular()) {}

  using CompiledConfigEngine::rebind;
  void rebind(const LineAutomaton& a) {
    CompiledConfigEngine::rebind(a.tabular());
  }
};

/// Table-driven equivalent of lowerbound::verify_never_meet for two
/// tabular automata on the SAME tree object (pass the same engine twice
/// for identical agents). Produces field-for-field the result the legacy
/// Brent-certificate stepper computes, in O(mu + lambda) table work per
/// agent instead of up to max_rounds interpreted rounds. Throws
/// std::invalid_argument on bad config (max_rounds == 0, equal or
/// out-of-range starts, engines over different trees).
Verdict verify_never_meet_compiled(const CompiledConfigEngine& engine_a,
                                   const CompiledConfigEngine& engine_b,
                                   const RunConfig& cfg);

/// Table-driven equivalent of sim::run_gathering for k identical agents
/// (the enumeration model: one automaton, one engine) on the engine's
/// tree. `starts` holds the k >= 2 start nodes (equal starts ALLOWED —
/// co-located identical agents with equal delays stay merged, exactly as
/// the interpreting reference behaves); `delays` is empty (all zero) or
/// one delay per agent. Produces field-for-field the GatherResult the
/// per-round reference computes — gathered / gather_round / gather_node,
/// and rounds_checked == its rounds_executed — in O(sum mu_i + lcm lambda_i)
/// table work instead of up to max_rounds interpreted rounds, plus the
/// never-gather certificate the reference cannot give (see GatherVerdict).
/// Orbits are warmed through the same batched stepper and (when the engine
/// adopted a published set) the same cross-worker cache as the pair
/// pipeline — orbits are per-agent, so nothing about extraction, cache
/// keys or the claim/publish protocol is gathering-specific. Throws
/// std::invalid_argument on bad config (k < 2, k > kMaxGatherAgents,
/// delay arity mismatch, out-of-range start, max_rounds == 0).
GatherVerdict verify_never_gather_compiled(
    const CompiledConfigEngine& engine, std::span<const tree::NodeId> starts,
    std::span<const std::uint64_t> delays, std::uint64_t max_rounds);

/// One point of a batched verdict grid: a start pair plus per-agent start
/// delays. max_rounds is shared by the whole grid (verify_grid argument).
struct PairQuery {
  tree::NodeId start_a = -1;
  tree::NodeId start_b = -1;
  std::uint64_t delay_a = 0;
  std::uint64_t delay_b = 0;
};

/// Batched verify_never_meet_compiled over a (start-pair x delay) grid:
/// answers[i] corresponds to queries[i]. All orbits (and the collision
/// tables the queries can touch) are warmed up serially first (via the
/// batched stepper), so with num_threads != 1 the per-query work is
/// read-only and fans across sweep_instances workers with deterministic
/// result ordering; num_threads == 0 uses one worker per hardware thread
/// (RVT_SWEEP_THREADS overrides). Every query must be valid (distinct
/// in-range starts) — the first failure is rethrown after the workers
/// join, like any sweep.
std::vector<Verdict> verify_grid(const CompiledConfigEngine& engine_a,
                                 const CompiledConfigEngine& engine_b,
                                 std::span<const PairQuery> queries,
                                 std::uint64_t max_rounds,
                                 unsigned num_threads = 1);

}  // namespace rvt::sim

// Compiled joint-configuration engine for line automata (perf core of the
// lower-bound certification pipeline).
//
// A LineAutomaton on a port-labeled line has a finite single-agent
// configuration space
//     (state, first-step flag, node, entry port)   —   at most K*2*n*3
// points, and its dynamics is a deterministic self-map F of that space. A
// single-agent trajectory is therefore a rho-shaped orbit (tail of length
// mu followed by a cycle of length lambda); the engine extracts it with
// Brent's cycle finding over F and caches it per start node. F itself is
// compiled ahead of the walk: the tree's adjacency and the automaton's
// transition tables are flattened into contiguous successor arrays
// (per-(node, port) and per-(state, degree)), so one orbit step is a
// handful of indexed loads with no virtual dispatch, no Observation
// construction and no snapshot hashing. (A dense per-configuration
// successor table was benchmarked here and rejected: it costs O(space)
// per automaton rebind while a whole battery of queries only ever touches
// the reachable orbits, which are far smaller.)
//
// Joint two-agent verification needs no joint stepping at all: the two
// agents evolve independently, so the joint configuration sequence observed
// by the legacy verifier (lowerbound/verify.cpp) is the componentwise pair
// of two rho orbits. Its pre-period and minimal period are
//     mu_joint     = max of the per-agent tails (delay-adjusted)
//     lambda_joint = lcm(lambda_a, lambda_b)
// and a meeting exists iff one occurs in the transient, or two in-cycle
// positions collide on a round compatible modulo gcd(lambda_a, lambda_b).
// The verdict — including the exact round Brent's algorithm in the legacy
// stepper would have certified at, and the exact cycle length it would
// have reported — is reconstructed analytically, so the compiled engine is
// a drop-in replacement validated field-for-field by differential tests.
// Start delays only shift the alignment of the two orbits, so sweeping a
// delay grid against one engine re-uses every orbit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/simulator.hpp"
#include "tree/tree.hpp"

namespace rvt::sim {

/// Verdict mirror of lowerbound::NeverMeetResult (kept here so sim/ does not
/// depend on lowerbound/); lowerbound/verify.cpp translates.
struct CompiledVerdict {
  bool met = false;
  std::uint64_t meeting_round = 0;
  bool certified_forever = false;
  std::uint64_t cycle_length = 0;
  std::uint64_t rounds_checked = 0;
};

/// Compiled dynamics + per-start orbit cache for one (line, automaton)
/// pair. Reuse the same engine across many start pairs and delays (e.g.
/// the E10 battery) — orbits are computed once per start node — and
/// rebind() it to sweep automata over a fixed line without reallocating.
/// Not thread-safe: use one engine per sweep worker.
class CompiledLineEngine {
 public:
  /// Throws std::invalid_argument if the tree is not a line with >= 2 nodes
  /// (max degree <= 2) or the automaton is malformed. The tree reference
  /// must outlive the engine; the automaton is copied.
  CompiledLineEngine(const tree::Tree& line, const LineAutomaton& a);

  /// Swaps in a new automaton over the same line, invalidating cached
  /// orbits (references returned by orbit() become stale) but keeping all
  /// buffer capacity — the zero-allocation path for exhaustive sweeps.
  void rebind(const LineAutomaton& a);

  /// rho decomposition of the single-agent orbit from a start node:
  /// node[k] is the node occupied after k steps (node[0] == start), stored
  /// for the tail and one full cycle (mu + lambda entries). The tail is
  /// never empty (the initial "first step pending" configuration cannot
  /// recur), so mu >= 1.
  ///
  /// mu and lambda describe the FULL configuration (incl. entry port); the
  /// walk itself runs over the autonomous (state, node) projection — the
  /// entry port is a function of the predecessor pair — so sn_mu (the
  /// projection's tail, mu or mu - 1) and the per-step entry ports are
  /// kept for orbit-merging bookkeeping.
  struct Orbit {
    std::uint64_t mu = 0;
    std::uint64_t lambda = 0;
    std::uint64_t sn_mu = 0;
    /// Cycle identity: start node of the orbit that first walked this
    /// cycle, and this orbit's entry phase in that orbit's cycle
    /// coordinates. Two orbits of one engine share a cycle iff their
    /// cycle_root matches; their relative phase then decides meeting
    /// existence via the per-cycle collision table.
    std::uint32_t cycle_root = 0;
    std::uint64_t cycle_phase = 0;
    std::vector<tree::NodeId> node;
    std::vector<std::int8_t> in_port;  ///< entry port after k steps
    /// first_visit[w]: first step at which the orbit occupies node w
    /// (kNever if it never does). Answers "can the walker hit a parked
    /// agent?" in O(1), making delayed-start queries O(1) in the delay.
    std::vector<std::uint32_t> first_visit;
    static constexpr std::uint32_t kNever = ~0u;

    tree::NodeId node_at(std::uint64_t k) const {
      return k < node.size()
                 ? node[k]
                 : node[mu + (k - mu) % lambda];
    }
    std::int8_t in_port_at(std::uint64_t k) const {
      return k < in_port.size()
                 ? in_port[k]
                 : in_port[mu + (k - mu) % lambda];
    }
  };

  /// Orbit from `start`, built on first use and cached until rebind().
  const Orbit& orbit(tree::NodeId start) const;

  const tree::Tree& tree() const { return *tree_; }
  const LineAutomaton& automaton() const { return automaton_; }
  /// Size of the configuration space (K * 2 * n * 3); every orbit satisfies
  /// mu + lambda <= num_configs().
  std::uint64_t num_configs() const;

 private:
  void bind_automaton(const LineAutomaton& a);
  void extract_orbit(tree::NodeId start, Orbit& out) const;

  const tree::Tree* tree_;
  LineAutomaton automaton_;
  std::int32_t n_ = 0;
  // Flattened successor tables: substrate per (node, port), transitions
  // per (state, degree).
  std::vector<std::uint8_t> deg_;     ///< deg_[v]
  std::vector<std::uint32_t> nbrev_;  ///< (neighbor << 2 | rev_port) per port
  std::vector<std::int32_t> delta_;   ///< delta_[2s + (deg-1)]
  // Orbit cache, epoch-invalidated by rebind() so slots and their node
  // vectors keep their capacity across automata.
  mutable std::vector<Orbit> orbits_;
  mutable std::vector<std::uint32_t> orbit_epoch_;
  mutable std::uint32_t epoch_ = 1;
  // Visit stamps over the (state-signature, node) projection, shared by
  // every orbit of the current epoch: a walk stops the moment it touches
  // any already-extracted orbit and inherits that orbit's cycle instead of
  // re-walking it, so each configuration is visited at most once per
  // automaton no matter how many starts are queried.
  struct Stamp {
    std::uint32_t epoch = 0;
    std::uint32_t owner = 0;  ///< start node whose walk stamped this pair
    std::uint32_t index = 0;  ///< step index within that walk
  };
  // Node-major layout (node * 2K + sig): on a line the node moves by at
  // most one per step while the state may jump, so consecutive walk steps
  // touch neighboring blocks — the walk stays cache-resident.
  mutable std::vector<Stamp> stamps_;
  // Per-cycle collision tables (indexed by cycle_root): entry Delta is
  // nonzero iff two positions of the cycle at gap Delta occupy the same
  // node — the O(1) answer to "can two agents locked into this cycle at
  // phase gap Delta ever meet". Built lazily, epoch-gated, only for
  // cycles up to kCollisionLimit.
  mutable std::vector<std::vector<std::uint8_t>> collision_;
  mutable std::vector<std::uint32_t> collision_epoch_;
  mutable std::vector<std::vector<std::uint32_t>> node_positions_;  // scratch

 public:
  /// Collision table of the cycle owned by `root` (an Orbit::cycle_root of
  /// this engine, extracted this epoch).
  const std::vector<std::uint8_t>& cycle_collisions(std::uint32_t root) const;
  static constexpr std::uint64_t kCollisionLimit = 512;
};

/// Table-driven equivalent of lowerbound::verify_never_meet for two line
/// automata on the SAME tree object (pass the same engine twice for
/// identical agents). Produces field-for-field the result the legacy
/// Brent-certificate stepper computes, in O(mu + lambda) table work per
/// agent instead of up to max_rounds interpreted rounds. Throws
/// std::invalid_argument on bad config (max_rounds == 0, equal or
/// out-of-range starts, engines over different trees).
CompiledVerdict verify_never_meet_compiled(const CompiledLineEngine& engine_a,
                                           const CompiledLineEngine& engine_b,
                                           const RunConfig& cfg);

}  // namespace rvt::sim

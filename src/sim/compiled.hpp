// Compiled joint-configuration engine for tabular automata (perf core of
// the lower-bound certification pipeline).
//
// A TabularAutomaton on ANY port-labeled tree has a finite single-agent
// configuration space
//     (state, first-step flag, node, entry port)  —  at most K*2*n*(D+1)
// points, and its dynamics is a deterministic self-map F of that space. A
// single-agent trajectory is therefore a rho-shaped orbit (tail of length
// mu followed by a cycle of length lambda); the engine extracts it with a
// stamped walk over F and caches it per start node. F itself is compiled
// ahead of the walk: the tree's adjacency and the automaton's transition
// tables are flattened into contiguous successor arrays (per-(node, port)
// and per-(state, entry port, degree)), so one orbit step is a handful of
// indexed loads with no virtual dispatch, no Observation construction and
// no snapshot hashing. Entry-port-oblivious automata — every line
// automaton, every lifted victim — keep the smaller (state, node)
// projection the original line engine walked (the entry port is then a
// function of the predecessor configuration); port-sensitive automata walk
// the full space. (A dense per-configuration successor table was
// benchmarked here and rejected: it costs O(space) per automaton rebind
// while a whole battery of queries only ever touches the reachable orbits,
// which are far smaller.)
//
// Joint two-agent verification needs no joint stepping at all: the two
// agents evolve independently, so the joint configuration sequence observed
// by the legacy verifier (lowerbound/verify.cpp) is the componentwise pair
// of two rho orbits. Its pre-period and minimal period are
//     mu_joint     = max of the per-agent tails (delay-adjusted)
//     lambda_joint = lcm(lambda_a, lambda_b)
// and a meeting exists iff one occurs in the transient, or two in-cycle
// positions collide on a round compatible modulo gcd(lambda_a, lambda_b).
// The verdict — including the exact round Brent's algorithm in the legacy
// stepper would have certified at, and the exact cycle length it would
// have reported — is reconstructed analytically, so the compiled engine is
// a drop-in replacement validated field-for-field by differential tests.
// Start delays only shift the alignment of the two orbits, so sweeping a
// whole (start-pair x delay) grid against one engine re-uses every orbit;
// verify_grid() answers such grids batched, optionally fanning the
// (read-only, post-warmup) queries across sweep_instances workers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/simulator.hpp"
#include "sim/verdict.hpp"
#include "tree/tree.hpp"

namespace rvt::sim {

/// Compiled dynamics + per-start orbit cache for one (tree, automaton)
/// pair. Reuse the same engine across many start pairs and delays (e.g.
/// the E10/E11 batteries) — orbits are computed once per start node — and
/// rebind() it to sweep automata over a fixed tree without reallocating.
/// Lazy caches make the engine non-thread-safe in general: use one engine
/// per sweep worker, or pre-warm via verify_grid and share read-only.
class CompiledConfigEngine {
 public:
  /// Throws std::invalid_argument if the automaton is malformed, the tree
  /// has fewer than 2 nodes, or the tree's max degree exceeds the
  /// automaton's (the table has no entries for such inputs). The tree
  /// reference must outlive the engine; the automaton is copied.
  CompiledConfigEngine(const tree::Tree& t, const TabularAutomaton& a);

  /// Swaps in a new automaton over the same tree, invalidating cached
  /// orbits (references returned by orbit() become stale) but keeping all
  /// buffer capacity — the zero-allocation path for exhaustive sweeps.
  void rebind(const TabularAutomaton& a);

  /// rho decomposition of the single-agent orbit from a start node:
  /// node[k] is the node occupied after k steps (node[0] == start), stored
  /// for the tail and one full cycle (mu + lambda entries). The tail is
  /// never empty (the initial "first step pending" configuration cannot
  /// recur), so mu >= 1.
  ///
  /// mu and lambda describe the FULL configuration (incl. entry port). For
  /// port-oblivious automata the walk itself runs over the autonomous
  /// (state, node) projection — the entry port is a function of the
  /// predecessor pair — so sn_mu (the projection's tail, mu or mu - 1) and
  /// the per-step entry ports are kept for orbit-merging bookkeeping; for
  /// port-sensitive automata the walked space IS the full configuration
  /// and sn_mu == mu.
  struct Orbit {
    std::uint64_t mu = 0;
    std::uint64_t lambda = 0;
    std::uint64_t sn_mu = 0;
    /// Cycle identity: start node of the orbit that first walked this
    /// cycle, and this orbit's entry phase in that orbit's cycle
    /// coordinates. Two orbits of one engine share a cycle iff their
    /// cycle_root matches; their relative phase then decides meeting
    /// existence via the per-cycle collision table.
    std::uint32_t cycle_root = 0;
    std::uint64_t cycle_phase = 0;
    std::vector<tree::NodeId> node;
    std::vector<std::int16_t> in_port;  ///< entry port after k steps
    /// first_visit[w]: first step at which the orbit occupies node w
    /// (kNever if it never does). Answers "can the walker hit a parked
    /// agent?" in O(1), making delayed-start queries O(1) in the delay.
    std::vector<std::uint32_t> first_visit;
    static constexpr std::uint32_t kNever = ~0u;

    tree::NodeId node_at(std::uint64_t k) const {
      return k < node.size()
                 ? node[k]
                 : node[mu + (k - mu) % lambda];
    }
    std::int16_t in_port_at(std::uint64_t k) const {
      return k < in_port.size()
                 ? in_port[k]
                 : in_port[mu + (k - mu) % lambda];
    }
  };

  /// Orbit from `start`, built on first use and cached until rebind().
  const Orbit& orbit(tree::NodeId start) const;

  const tree::Tree& tree() const { return *tree_; }
  const TabularAutomaton& automaton() const { return automaton_; }
  /// Size of the full configuration space (K * 2 * n * (D+1)); every orbit
  /// satisfies mu + lambda <= num_configs().
  std::uint64_t num_configs() const;
  /// Entries of the visit-stamp table this binding needs — K * 2 * n for a
  /// port-oblivious automaton, K * 2 * n * (D+1) otherwise. The
  /// verification dispatcher budgets on this before building an engine.
  static std::uint64_t stamp_entries(const tree::Tree& t,
                                     const TabularAutomaton& a);

 private:
  void bind_automaton(const TabularAutomaton& a);
  void extract_orbit(tree::NodeId start, Orbit& out) const;

  const tree::Tree* tree_;
  TabularAutomaton automaton_;
  std::int32_t n_ = 0;
  std::int32_t max_deg_ = 0;   ///< automaton_.max_degree
  std::int32_t port_slots_ = 1;  ///< stamped entry-port slots: 1 or D+1
  // Flattened successor tables: substrate per (node, port), transitions
  // per (state, entry port, degree).
  std::vector<std::uint8_t> deg_;     ///< deg_[v]
  std::vector<std::uint32_t> nbrev_;  ///< (neighbor << 8 | rev_port) per port
  std::vector<std::int32_t> delta_;   ///< delta_[(s*(D+1) + i+1)*D + d-1]
  // Orbit cache, epoch-invalidated by rebind() so slots and their node
  // vectors keep their capacity across automata.
  mutable std::vector<Orbit> orbits_;
  mutable std::vector<std::uint32_t> orbit_epoch_;
  mutable std::uint32_t epoch_ = 1;
  // Visit stamps over the walked projection — (state-signature, node) when
  // the automaton is port-oblivious, (state-signature, node, entry port)
  // otherwise — shared by every orbit of the current epoch: a walk stops
  // the moment it touches any already-extracted orbit and inherits that
  // orbit's cycle instead of re-walking it, so each configuration is
  // visited at most once per automaton no matter how many starts are
  // queried.
  struct Stamp {
    std::uint32_t epoch = 0;
    std::uint32_t owner = 0;  ///< start node whose walk stamped this config
    std::uint32_t index = 0;  ///< step index within that walk
  };
  // Node-major layout ((node * port_slots + pslot) * 2K + sig): the node
  // moves by at most one edge per step while the state may jump, so
  // consecutive walk steps touch neighboring blocks — the walk stays
  // cache-resident.
  mutable std::vector<Stamp> stamps_;
  // Per-cycle collision tables (indexed by cycle_root): entry Delta is
  // nonzero iff two positions of the cycle at gap Delta occupy the same
  // node — the O(1) answer to "can two agents locked into this cycle at
  // phase gap Delta ever meet". Built lazily, epoch-gated, only for
  // cycles up to kCollisionLimit.
  mutable std::vector<std::vector<std::uint8_t>> collision_;
  mutable std::vector<std::uint32_t> collision_epoch_;
  mutable std::vector<std::vector<std::uint32_t>> node_positions_;  // scratch

 public:
  /// Collision table of the cycle owned by `root` (an Orbit::cycle_root of
  /// this engine, extracted this epoch).
  const std::vector<std::uint8_t>& cycle_collisions(std::uint32_t root) const;
  static constexpr std::uint64_t kCollisionLimit = 512;
};

/// Line-automaton convenience over CompiledConfigEngine: constructs from
/// the historical LineAutomaton table format and insists the substrate is
/// a line (the degree cap falls out of the automaton's max_degree == 2).
class CompiledLineEngine : public CompiledConfigEngine {
 public:
  CompiledLineEngine(const tree::Tree& line, const LineAutomaton& a)
      : CompiledConfigEngine(line, a.tabular()) {}

  using CompiledConfigEngine::rebind;
  void rebind(const LineAutomaton& a) {
    CompiledConfigEngine::rebind(a.tabular());
  }
};

/// Table-driven equivalent of lowerbound::verify_never_meet for two
/// tabular automata on the SAME tree object (pass the same engine twice
/// for identical agents). Produces field-for-field the result the legacy
/// Brent-certificate stepper computes, in O(mu + lambda) table work per
/// agent instead of up to max_rounds interpreted rounds. Throws
/// std::invalid_argument on bad config (max_rounds == 0, equal or
/// out-of-range starts, engines over different trees).
Verdict verify_never_meet_compiled(const CompiledConfigEngine& engine_a,
                                   const CompiledConfigEngine& engine_b,
                                   const RunConfig& cfg);

/// One point of a batched verdict grid: a start pair plus per-agent start
/// delays. max_rounds is shared by the whole grid (verify_grid argument).
struct PairQuery {
  tree::NodeId start_a = -1;
  tree::NodeId start_b = -1;
  std::uint64_t delay_a = 0;
  std::uint64_t delay_b = 0;
};

/// Batched verify_never_meet_compiled over a (start-pair x delay) grid:
/// answers[i] corresponds to queries[i]. All orbits (and the collision
/// tables the queries can touch) are warmed up serially first, so with
/// num_threads != 1 the per-query work is read-only and fans across
/// sweep_instances workers with deterministic result ordering;
/// num_threads == 0 uses one worker per hardware thread (RVT_SWEEP_THREADS
/// overrides). Every query must be valid (distinct in-range starts) — the
/// first failure is rethrown after the workers join, like any sweep.
std::vector<Verdict> verify_grid(const CompiledConfigEngine& engine_a,
                                 const CompiledConfigEngine& engine_b,
                                 std::span<const PairQuery> queries,
                                 std::uint64_t max_rounds,
                                 unsigned num_threads = 1);

}  // namespace rvt::sim

#include "sim/compiled.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/sweep.hpp"

namespace rvt::sim {

CompiledConfigEngine::CompiledConfigEngine(const tree::Tree& t,
                                           const TabularAutomaton& a)
    : tree_(&t), n_(t.node_count()) {
  if (n_ < 2) {
    throw std::invalid_argument("CompiledConfigEngine: need >= 2 nodes");
  }
  a.validate();
  if (t.max_degree() > a.max_degree) {
    throw std::invalid_argument(
        "CompiledConfigEngine: tree degree exceeds the automaton's model");
  }
  if (n_ >= (1 << 24)) {  // nbrev_ packs the neighbor into 24 bits
    throw std::invalid_argument("CompiledConfigEngine: tree too large");
  }
  // Flatten the substrate: the orbit walk is the hot loop of every
  // certification, and the generic Tree accessors cost several
  // indirections per step. nbrev_ packs (neighbor << 8 | reverse_port)
  // into one load (ports fit 8 bits: max_degree <= 255 by validate()).
  max_deg_ = a.max_degree;
  deg_.resize(static_cast<std::size_t>(n_));
  nbrev_.resize(static_cast<std::size_t>(n_) * max_deg_);
  for (tree::NodeId v = 0; v < n_; ++v) {
    const int d = t.degree(v);
    deg_[v] = static_cast<std::uint8_t>(d);
    for (tree::Port p = 0; p < d; ++p) {
      nbrev_[static_cast<std::size_t>(v) * max_deg_ + p] =
          (static_cast<std::uint32_t>(t.neighbor(v, p)) << 8) |
          static_cast<std::uint32_t>(t.reverse_port(v, p));
    }
  }
  orbits_.resize(static_cast<std::size_t>(n_));
  orbit_epoch_.assign(static_cast<std::size_t>(n_), 0);
  collision_.resize(static_cast<std::size_t>(n_));
  collision_epoch_.assign(static_cast<std::size_t>(n_), 0);
  node_positions_.resize(static_cast<std::size_t>(n_));
  bind_automaton(a);
}

void CompiledConfigEngine::rebind(const TabularAutomaton& a) {
  ++epoch_;  // cached orbits belong to the previous automaton
  bind_automaton(a);
}

void CompiledConfigEngine::bind_automaton(const TabularAutomaton& a) {
  a.validate();
  if (a.max_degree != max_deg_) {
    throw std::invalid_argument(
        "CompiledConfigEngine: rebind must keep max_degree (the substrate "
        "tables are laid out per degree)");
  }
  if (a.num_states() >= (1 << 23)) {
    throw std::invalid_argument("CompiledConfigEngine: too many states");
  }
  automaton_ = a;
  delta_.assign(automaton_.delta.begin(), automaton_.delta.end());
  port_slots_ = automaton_.port_oblivious() ? 1 : max_deg_ + 1;
  const std::uint64_t walk_space = static_cast<std::uint64_t>(
                                       automaton_.num_states()) *
                                   2 * static_cast<std::uint64_t>(n_) *
                                   static_cast<std::uint64_t>(port_slots_);
  if (walk_space > (std::uint64_t{1} << 31)) {
    throw std::invalid_argument(
        "CompiledConfigEngine: state space too large");
  }
  if (walk_space > stamps_.size()) {
    stamps_.resize(walk_space);  // new slots start with epoch 0 (unstamped)
  }
}

std::uint64_t CompiledConfigEngine::num_configs() const {
  return static_cast<std::uint64_t>(automaton_.num_states()) * 2 *
         static_cast<std::uint64_t>(n_) *
         static_cast<std::uint64_t>(max_deg_ + 1);
}

std::uint64_t CompiledConfigEngine::stamp_entries(const tree::Tree& t,
                                                  const TabularAutomaton& a) {
  const std::uint64_t slots = a.port_oblivious() ? 1 : a.max_degree + 1;
  return static_cast<std::uint64_t>(a.num_states()) * 2 *
         static_cast<std::uint64_t>(t.node_count()) * slots;
}

// One stamped walk over the autonomous projection — (signature, node) for
// port-oblivious automata, the full (signature, node, entry port)
// configuration otherwise — recovers the full rho form in exactly
// mu + lambda + 1 steps: the walk stops at the first already-visited
// point. A point stamped by THIS walk closes the cycle (sn_mu = first
// visit, lambda = index gap); a point stamped by an EARLIER orbit of the
// same epoch means the trajectory merged into that orbit, whose cycle is
// inherited wholesale. Under the oblivious projection the entry port is
// determined by the predecessor pair, so full-configuration periodicity
// starts at sn_mu or one step later — decided by comparing the entry
// ports at the two ends of the seam. When the walked space is the full
// configuration the seam comparison is an equality by construction and
// mu == sn_mu.
void CompiledConfigEngine::extract_orbit(tree::NodeId start,
                                         Orbit& out) const {
  // Stepper over an unpacked (sig, node, in_port) configuration, reading
  // only the flattened tables.
  struct Conf {
    std::int32_t sig;
    tree::NodeId node;
    tree::Port in_port;
  };
  const std::uint8_t* deg = deg_.data();
  const std::uint32_t* nbrev = nbrev_.data();
  const std::int32_t* delta = delta_.data();
  const int* lam = automaton_.lambda.data();
  const std::int32_t D = max_deg_;
  const auto step = [deg, nbrev, delta, lam, D](const Conf& c) {
    const int d = deg[c.node];
    const std::int32_t s2 =
        (c.sig & 1)
            ? (c.sig >> 1)
            : delta[(static_cast<std::size_t>(c.sig >> 1) * (D + 1) +
                     (c.in_port + 1)) *
                        D +
                    (d - 1)];
    const int act = lam[s2];
    if (act == kStay) return Conf{s2 << 1, c.node, -1};
    const int outp = act < d ? act : act % d;
    const std::uint32_t packed =
        nbrev[static_cast<std::size_t>(c.node) * D + outp];
    return Conf{s2 << 1, static_cast<tree::NodeId>(packed >> 8),
                static_cast<tree::Port>(packed & 255)};
  };

  out.node.clear();
  out.in_port.clear();
  Conf cur{(automaton_.initial << 1) | 1, start, -1};
  const std::uint32_t self = static_cast<std::uint32_t>(start);
  const std::uint32_t sig_span =
      static_cast<std::uint32_t>(automaton_.num_states()) * 2;
  const std::int32_t pslots = port_slots_;
  std::uint64_t hit_index = 0;
  std::uint32_t hit_owner = 0, hit_j = 0;
  for (std::uint64_t i = 0;; ++i) {
    const std::int32_t pslot = pslots == 1 ? 0 : cur.in_port + 1;
    Stamp& stamp = stamps_[(static_cast<std::size_t>(cur.node) * pslots +
                            pslot) *
                               sig_span +
                           cur.sig];
    if (stamp.epoch == epoch_) {
      hit_index = i;
      hit_owner = stamp.owner;
      hit_j = stamp.index;
      break;
    }
    stamp = {epoch_, self, static_cast<std::uint32_t>(i)};
    out.node.push_back(cur.node);
    out.in_port.push_back(static_cast<std::int16_t>(cur.in_port));
    cur = step(cur);
  }

  if (hit_owner == self) {
    out.sn_mu = hit_j;
    out.lambda = hit_index - hit_j;
    out.cycle_root = self;
    out.cycle_phase = 0;
    if (static_cast<tree::Port>(out.in_port[out.sn_mu]) == cur.in_port) {
      out.mu = out.sn_mu;
    } else {
      out.mu = out.sn_mu + 1;
      out.node.push_back(cur.node);  // == node[sn_mu]: same projection pair
      out.in_port.push_back(static_cast<std::int16_t>(cur.in_port));
    }
  } else {
    // Merged into orbit `hit_owner` at its step hit_j after hit_index own
    // steps: inherit its cycle, then decide the seam exactly as above.
    const Orbit& host = orbits_[hit_owner];
    out.lambda = host.lambda;
    out.sn_mu = hit_index + (host.sn_mu > hit_j ? host.sn_mu - hit_j : 0);
    out.cycle_root = host.cycle_root;
    // This orbit enters the cycle at host step max(hit_j, host.sn_mu).
    out.cycle_phase =
        (host.cycle_phase + (std::max<std::uint64_t>(hit_j, host.sn_mu) -
                             host.sn_mu)) %
        host.lambda;
    const std::uint64_t need = out.sn_mu + out.lambda + 1;
    // At the merge step itself the walker keeps ITS OWN entry port (under
    // the oblivious projection the port is determined by the predecessor
    // pair, and the walker's predecessor differs from the host's; in the
    // full-configuration walk the ports coincide anyway); from the next
    // step on the host's records apply.
    std::uint64_t m = hit_j;  // rolling index into the host's arrays
    for (std::uint64_t i = hit_index; i < need; ++i) {
      out.node.push_back(host.node[m]);
      out.in_port.push_back(i == hit_index
                                ? static_cast<std::int16_t>(cur.in_port)
                                : host.in_port[m]);
      if (++m == host.node.size()) m = host.mu;
    }
    if (out.in_port[out.sn_mu] == out.in_port[out.sn_mu + out.lambda]) {
      out.mu = out.sn_mu;
      out.node.pop_back();
      out.in_port.pop_back();
    } else {
      out.mu = out.sn_mu + 1;
    }
  }

  // The tail plus one full cycle covers every node the orbit ever touches.
  out.first_visit.assign(static_cast<std::size_t>(n_), Orbit::kNever);
  for (std::uint32_t k = 0; k < out.node.size(); ++k) {
    std::uint32_t& fv = out.first_visit[out.node[k]];
    if (fv == Orbit::kNever) fv = k;
  }
}

const std::vector<std::uint8_t>& CompiledConfigEngine::cycle_collisions(
    std::uint32_t root) const {
  auto& table = collision_[root];
  if (collision_epoch_[root] == epoch_) return table;
  const Orbit& r = orbits_[root];
  const std::uint64_t lambda = r.lambda;
  const tree::NodeId* cyc = r.node.data() + r.sn_mu;
  // The pairwise-gap build is quadratic in per-node occupancy; degenerate
  // cycles (e.g. stay-heavy automata parked on one node) would cost more
  // than the scans the table saves, so give up beyond a linear budget and
  // leave the table empty — callers then fall back to scanning.
  std::uint64_t budget = 8 * lambda + 64;
  table.assign(lambda, 0);
  for (std::uint64_t i = 0; i < lambda; ++i) {
    node_positions_[cyc[i]].push_back(static_cast<std::uint32_t>(i));
  }
  bool aborted = false;
  for (std::uint64_t i = 0; i < lambda; ++i) {
    auto& positions = node_positions_[cyc[i]];
    if (positions.empty()) continue;  // already folded in
    const std::uint64_t cost = positions.size() * positions.size();
    if (!aborted && cost <= budget) {
      budget -= cost;
      for (const std::uint32_t p : positions) {
        for (const std::uint32_t q : positions) {
          table[q >= p ? q - p : q + lambda - p] = 1;
        }
      }
    } else {
      aborted = true;
    }
    positions.clear();
  }
  if (aborted) table.clear();
  collision_epoch_[root] = epoch_;
  return table;
}

const CompiledConfigEngine::Orbit& CompiledConfigEngine::orbit(
    tree::NodeId start) const {
  if (start < 0 || start >= n_) {
    throw std::invalid_argument("CompiledConfigEngine::orbit: bad start");
  }
  const std::size_t slot = static_cast<std::size_t>(start);
  if (orbit_epoch_[slot] != epoch_) {
    extract_orbit(start, orbits_[slot]);
    orbit_epoch_[slot] = epoch_;
  }
  return orbits_[slot];
}

Verdict verify_never_meet_compiled(const CompiledConfigEngine& engine_a,
                                   const CompiledConfigEngine& engine_b,
                                   const RunConfig& cfg) {
  if (&engine_a.tree() != &engine_b.tree()) {
    throw std::invalid_argument(
        "verify_never_meet_compiled: engines over different trees");
  }
  if (cfg.max_rounds == 0) {
    throw std::invalid_argument(
        "verify_never_meet_compiled: max_rounds must be > 0");
  }
  const tree::Tree& t = engine_a.tree();
  if (cfg.start_a < 0 || cfg.start_a >= t.node_count() || cfg.start_b < 0 ||
      cfg.start_b >= t.node_count()) {
    throw std::invalid_argument("verify_never_meet_compiled: start range");
  }
  if (cfg.start_a == cfg.start_b) {
    throw std::invalid_argument(
        "verify_never_meet_compiled: starts must differ");
  }

  const auto& A = engine_a.orbit(cfg.start_a);
  const auto& B = engine_b.orbit(cfg.start_b);
  const std::uint64_t da = cfg.delay_a, db = cfg.delay_b;
  const std::uint64_t M = cfg.max_rounds;

  Verdict r;
  r.engine = VerifyEngine::kCompiled;

  // While exactly one agent walks (the other still parked), a meeting
  // means the walker's orbit visits the parked agent's start: an O(1)
  // first-visit lookup, independent of the delays.
  bool meet_found = false;
  std::uint64_t t_meet = 0;
  const std::uint64_t d_early = std::min(da, db);
  const std::uint64_t d_late = std::max(da, db);
  if (d_late > d_early && d_early < M) {
    const CompiledConfigEngine::Orbit& walker = da > db ? B : A;
    const tree::NodeId parked = da > db ? cfg.start_a : cfg.start_b;
    const std::uint32_t fv = walker.first_visit[parked];
    const std::uint64_t limit = std::min(d_late, M) - d_early;
    if (fv != CompiledConfigEngine::Orbit::kNever && fv <= limit) {
      meet_found = true;
      t_meet = d_early + fv;
    }
  }
  if (d_late >= M) {
    // The later agent never acts within the horizon: the legacy loop never
    // snapshots a joint configuration, so no certificate is possible and
    // the walker-onto-parked meeting above is the only observable event.
    // (Also keeps the joint-parameter arithmetic below overflow-free: from
    // here on da, db < M.)
    if (meet_found) {  // t_meet <= M by the phase limit above
      r.met = true;
      r.meeting_round = t_meet - 1;  // legacy reports round() - 1
      r.rounds_checked = t_meet;
    } else {
      r.rounds_checked = M;
    }
    return r;
  }

  // Joint sequence parameters, seen through the legacy verifier's eyes: it
  // snapshots from round t0 on; the joint configuration is in its cycle
  // once both per-agent orbits are (from round Tc on), and its minimal
  // period is the lcm of the per-agent cycle lengths. Orbits that merged
  // share a cycle, so the equal-lambda case is the common one — take it
  // without any division.
  const std::uint64_t t0 = std::max({da, db, std::uint64_t{1}});
  const std::uint64_t Tc = std::max(da + A.mu, db + B.mu);
  std::uint64_t gcd_l, lam_joint;
  if (A.lambda == B.lambda) {
    gcd_l = A.lambda;
    lam_joint = A.lambda;
  } else {
    gcd_l = std::gcd(A.lambda, B.lambda);
    lam_joint = A.lambda / gcd_l * B.lambda;
  }
  const std::uint64_t mu_joint = Tc > t0 ? Tc - t0 : 0;

  // Brent's algorithm in the legacy stepper re-anchors at snapshot indices
  // 2^k - 1 with window 2^k; it certifies from the first anchor that lies
  // in the cycle with a window spanning one period, exactly lam_joint
  // snapshots later. (Tail configurations never recur — the joint orbit is
  // rho-shaped — so no earlier anchor can match.)
  std::uint64_t window = 1;
  while (window < lam_joint || window - 1 < mu_joint) window <<= 1;
  const std::uint64_t t_detect = t0 + (window - 1) + lam_joint;

  // Earliest meeting, if any, over the remaining transient (rounds where
  // both agents are still parked cannot meet — distinct starts; the
  // one-walker phase was answered above): the few pre-cycle rounds once
  // both walk are scanned with rolling (division-free) array indices.
  if (!meet_found) {
    // Both active from round d_late + 1 <= M on; seed the rolling array
    // indices at round d_late (one wrap division each, loop-free after).
    const std::uint64_t sa = d_late - da;  // steps taken by round d_late
    const std::uint64_t sb = d_late - db;
    std::uint64_t ia = sa < A.node.size() ? sa : A.mu + (sa - A.mu) % A.lambda;
    std::uint64_t ib = sb < B.node.size() ? sb : B.mu + (sb - B.mu) % B.lambda;
    for (std::uint64_t r = d_late + 1, hi = std::min(Tc - 1, M); r <= hi;
         ++r) {
      if (++ia == A.node.size()) ia = A.mu;
      if (++ib == B.node.size()) ib = B.mu;
      if (A.node[ia] == B.node[ib]) {
        meet_found = true;
        t_meet = r;
        break;
      }
    }
  }
  if (!meet_found && Tc <= M) {
    // Both in-cycle: the joint node-pair sequence from round Tc is purely
    // periodic with period lam_joint, and a meeting within it must be
    // proven absent (certification) or located (first round). Three
    // strategies, cheapest first:
    //  1. Same cycle of the same engine: the agents sit in one cycle at a
    //     constant phase gap, so the per-cycle collision table answers
    //     existence in O(1) — the common case of an exhaustive all-pairs
    //     battery, where it turns every certified pair into table lookups.
    //  2. Commensurate cycles (lam_joint comparable to the cycles): scan
    //     one period directly with rolling indices.
    //  3. Near-coprime cycles (lam_joint blown up): decide existence by
    //     residue intersection — a meeting at round r >= Tc needs cycle
    //     indices i, j with equal nodes and
    //         r == da + A.mu + i (mod A.lambda)
    //           == db + B.mu + j (mod B.lambda),
    //     solvable iff both sides agree modulo gcd — sorted intersection
    //     in O((la + lb) log la).
    // Only if a meeting exists at all is the period scanned for its first
    // round (that scan is bounded by the meeting round itself, i.e. never
    // more work than the legacy stepper).
    bool scan_cycle;
    const std::vector<std::uint8_t>* collisions = nullptr;
    if (&engine_a == &engine_b && A.cycle_root == B.cycle_root &&
        A.lambda <= CompiledConfigEngine::kCollisionLimit) {
      const auto& table = engine_a.cycle_collisions(A.cycle_root);
      if (!table.empty()) collisions = &table;  // empty: build gave up
    }
    if (collisions != nullptr) {
      const std::uint64_t lhs = B.cycle_phase + da + A.sn_mu;
      const std::uint64_t rhs = A.cycle_phase + db + B.sn_mu;
      const std::uint64_t delta =
          lhs >= rhs ? (lhs - rhs) % A.lambda
                     : (A.lambda - (rhs - lhs) % A.lambda) % A.lambda;
      scan_cycle = (*collisions)[delta] != 0;
    } else if (lam_joint <= 4 * (A.lambda + B.lambda)) {
      scan_cycle = true;
    } else {
      const std::uint64_t g = gcd_l;
      std::vector<std::uint64_t> occ_a;
      occ_a.reserve(A.lambda);
      for (std::uint64_t i = 0; i < A.lambda; ++i) {
        const std::uint64_t w = static_cast<std::uint64_t>(A.node[A.mu + i]);
        occ_a.push_back((w << 32) | ((da + A.mu + i) % g));
      }
      std::sort(occ_a.begin(), occ_a.end());
      scan_cycle = false;
      for (std::uint64_t j = 0; j < B.lambda && !scan_cycle; ++j) {
        const std::uint64_t w = static_cast<std::uint64_t>(B.node[B.mu + j]);
        scan_cycle = std::binary_search(occ_a.begin(), occ_a.end(),
                                        (w << 32) | ((db + B.mu + j) % g));
      }
    }
    if (scan_cycle) {
      const tree::NodeId* cyc_a = A.node.data() + A.mu;
      const tree::NodeId* cyc_b = B.node.data() + B.mu;
      std::uint64_t ia = (Tc - da - A.mu) % A.lambda;
      std::uint64_t ib = (Tc - db - B.mu) % B.lambda;
      for (std::uint64_t r = Tc, hi = std::min(Tc + lam_joint - 1, M);
           r <= hi; ++r) {
        if (cyc_a[ia] == cyc_b[ib]) {
          meet_found = true;
          t_meet = r;
          break;
        }
        if (++ia == A.lambda) ia = 0;
        if (++ib == B.lambda) ib = 0;
      }
    }
  }

  // Assemble the verdict exactly as the legacy loop would have: a meeting
  // is checked before the cycle certificate within each round, and nothing
  // past max_rounds is observed.
  if (meet_found && t_meet <= M && t_meet <= t_detect) {
    r.met = true;
    r.meeting_round = t_meet - 1;  // legacy reports round() - 1
    r.rounds_checked = t_meet;
  } else if (t_detect <= M) {
    r.certified_forever = true;
    r.cycle_length = lam_joint;
    r.rounds_checked = t_detect;
  } else {
    r.rounds_checked = M;
  }
  return r;
}

std::vector<Verdict> verify_grid(const CompiledConfigEngine& engine_a,
                                 const CompiledConfigEngine& engine_b,
                                 std::span<const PairQuery> queries,
                                 std::uint64_t max_rounds,
                                 unsigned num_threads) {
  if (&engine_a.tree() != &engine_b.tree()) {
    throw std::invalid_argument("verify_grid: engines over different trees");
  }
  if (max_rounds == 0) {
    throw std::invalid_argument("verify_grid: max_rounds must be > 0");
  }
  const tree::NodeId n = engine_a.tree().node_count();
  for (const PairQuery& q : queries) {
    if (q.start_a < 0 || q.start_a >= n || q.start_b < 0 || q.start_b >= n) {
      throw std::invalid_argument("verify_grid: start range");
    }
    if (q.start_a == q.start_b) {
      throw std::invalid_argument("verify_grid: starts must differ");
    }
  }
  // Warm every cache a query can touch — orbits for both endpoints and the
  // per-cycle collision tables of shared cycles — serially, so the queries
  // themselves are read-only and safe to fan across workers.
  const bool same_engine = &engine_a == &engine_b;
  for (const PairQuery& q : queries) {
    const auto& A = engine_a.orbit(q.start_a);
    const auto& B = engine_b.orbit(q.start_b);
    if (same_engine && A.cycle_root == B.cycle_root &&
        A.lambda <= CompiledConfigEngine::kCollisionLimit) {
      engine_a.cycle_collisions(A.cycle_root);
    }
  }
  std::vector<std::size_t> index(queries.size());
  std::iota(index.begin(), index.end(), std::size_t{0});
  return sweep_instances(
      index,
      [&](const std::size_t& i) {
        const PairQuery& q = queries[i];
        return verify_never_meet_compiled(
            engine_a, engine_b,
            RunConfig{q.start_a, q.start_b, q.delay_a, q.delay_b, max_rounds});
      },
      num_threads);
}

}  // namespace rvt::sim

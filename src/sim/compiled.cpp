#include "sim/compiled.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "sim/sweep.hpp"
#include "sim/verify_core.hpp"

namespace rvt::sim {

CompiledConfigEngine::CompiledConfigEngine(const tree::Tree& t,
                                           const TabularAutomaton& a)
    : tree_(&t), n_(t.node_count()) {
  if (n_ < 2) {
    throw std::invalid_argument("CompiledConfigEngine: need >= 2 nodes");
  }
  a.validate();
  if (t.max_degree() > a.max_degree) {
    throw std::invalid_argument(
        "CompiledConfigEngine: tree degree exceeds the automaton's model");
  }
  if (n_ >= (1 << 24)) {  // nbrev_ packs the neighbor into 24 bits
    throw std::invalid_argument("CompiledConfigEngine: tree too large");
  }
  // Flatten the substrate: the orbit walk is the hot loop of every
  // certification, and the generic Tree accessors cost several
  // indirections per step. nbrev_ packs (neighbor << 8 | reverse_port)
  // into one load (ports fit 8 bits: max_degree <= 255 by validate());
  // deg32_ mirrors deg_ widened to 32 bits for the SIMD gather path.
  max_deg_ = a.max_degree;
  deg_.resize(static_cast<std::size_t>(n_));
  deg32_.resize(static_cast<std::size_t>(n_));
  nbrev_.resize(static_cast<std::size_t>(n_) * max_deg_);
  for (tree::NodeId v = 0; v < n_; ++v) {
    const int d = t.degree(v);
    deg_[v] = static_cast<std::uint8_t>(d);
    deg32_[v] = d;
    for (tree::Port p = 0; p < d; ++p) {
      nbrev_[static_cast<std::size_t>(v) * max_deg_ + p] =
          (static_cast<std::uint32_t>(t.neighbor(v, p)) << 8) |
          static_cast<std::uint32_t>(t.reverse_port(v, p));
    }
  }
  orbits_.resize(static_cast<std::size_t>(n_));
  orbit_epoch_.assign(static_cast<std::size_t>(n_), 0);
  node_positions_.resize(static_cast<std::size_t>(n_));
  if (n_ <= kCollisionIndexMaxN) {
    const std::size_t nn = static_cast<std::size_t>(n_) * n_;
    cindex_epoch_.assign(nn, 0);
    cindex_slot_.resize(nn);
  }
  bind_automaton(a);
}

void CompiledConfigEngine::rebind(const TabularAutomaton& a) {
  ++epoch_;  // cached orbits belong to the previous automaton
  shared_.reset();
  bind_automaton(a);
  tables_valid_ = true;
}

void CompiledConfigEngine::rebind_adopted(
    std::shared_ptr<const OrbitSet> set) {
  ++epoch_;  // cached orbits belong to the previous automaton
  shared_ = std::move(set);
  tables_valid_ = false;
}

void CompiledConfigEngine::bind_automaton(const TabularAutomaton& a) {
  a.validate();
  if (a.max_degree != max_deg_) {
    throw std::invalid_argument(
        "CompiledConfigEngine: rebind must keep max_degree (the substrate "
        "tables are laid out per degree)");
  }
  if (a.num_states() >= (1 << 23)) {
    throw std::invalid_argument("CompiledConfigEngine: too many states");
  }
  automaton_ = a;
  delta_.assign(automaton_.delta.begin(), automaton_.delta.end());
  // Pre-reduce the action per (state, degree): lambda[s] mod d, or -1 for
  // kStay — the steppers then index actd_ instead of dividing per step.
  const int K = automaton_.num_states();
  actd_.resize(static_cast<std::size_t>(K) * max_deg_);
  for (int s = 0; s < K; ++s) {
    const int act = automaton_.lambda[s];
    for (int d = 1; d <= max_deg_; ++d) {
      actd_[static_cast<std::size_t>(s) * max_deg_ + (d - 1)] =
          act == kStay ? -1 : (act < d ? act : act % d);
    }
  }
  port_slots_ = automaton_.port_oblivious() ? 1 : max_deg_ + 1;
  const std::uint64_t walk_space = static_cast<std::uint64_t>(
                                       automaton_.num_states()) *
                                   2 * static_cast<std::uint64_t>(n_) *
                                   static_cast<std::uint64_t>(port_slots_);
  if (walk_space > (std::uint64_t{1} << 31)) {
    throw std::invalid_argument(
        "CompiledConfigEngine: state space too large");
  }
  if (walk_space > stamps_.size()) {
    stamps_.resize(walk_space);  // new slots start with epoch 0 (unstamped)
  }
}

std::uint64_t CompiledConfigEngine::num_configs() const {
  return static_cast<std::uint64_t>(automaton_.num_states()) * 2 *
         static_cast<std::uint64_t>(n_) *
         static_cast<std::uint64_t>(max_deg_ + 1);
}

std::uint64_t CompiledConfigEngine::stamp_entries(const tree::Tree& t,
                                                  const TabularAutomaton& a) {
  const std::uint64_t slots = a.port_oblivious() ? 1 : a.max_degree + 1;
  return static_cast<std::uint64_t>(a.num_states()) * 2 *
         static_cast<std::uint64_t>(t.node_count()) * slots;
}

void CompiledConfigEngine::build_first_visit(Orbit& out, std::int32_t n) {
  // The tail plus one full cycle covers every node the orbit ever touches.
  out.first_visit.assign(static_cast<std::size_t>(n), Orbit::kNever);
  for (std::uint32_t k = 0; k < out.node.size(); ++k) {
    std::uint32_t& fv = out.first_visit[out.node[k]];
    if (fv == Orbit::kNever) fv = k;
  }
}

// Splice `out` — whose own prefix (hit_index steps) is already recorded in
// out.node/out.in_port — into completed orbit `host`, hit at host step
// hit_j. At the merge step itself the walker keeps ITS OWN entry port
// (`seam_port`: under the oblivious projection the port is determined by
// the predecessor pair, and the walker's predecessor differs from the
// host's; in the full-configuration walk the ports coincide anyway); from
// the next step on the host's records apply. The final seam comparison
// decides whether full-configuration periodicity starts at sn_mu or one
// step later.
void CompiledConfigEngine::finalize_merged(Orbit& out, const Orbit& host,
                                           std::uint64_t hit_index,
                                           std::uint32_t hit_j,
                                           std::int16_t seam_port) const {
  out.lambda = host.lambda;
  out.sn_mu = hit_index + (host.sn_mu > hit_j ? host.sn_mu - hit_j : 0);
  out.cycle_root = host.cycle_root;
  // This orbit enters the cycle at host step max(hit_j, host.sn_mu).
  out.cycle_phase =
      (host.cycle_phase + (std::max<std::uint64_t>(hit_j, host.sn_mu) -
                           host.sn_mu)) %
      host.lambda;
  const std::uint64_t need = out.sn_mu + out.lambda + 1;
  std::uint64_t m = hit_j;  // rolling index into the host's arrays
  for (std::uint64_t i = hit_index; i < need; ++i) {
    out.node.push_back(host.node[m]);
    out.in_port.push_back(i == hit_index ? seam_port : host.in_port[m]);
    if (++m == host.node.size()) m = host.mu;
  }
  if (out.in_port[out.sn_mu] == out.in_port[out.sn_mu + out.lambda]) {
    out.mu = out.sn_mu;
    out.node.pop_back();
    out.in_port.pop_back();
  } else {
    out.mu = out.sn_mu + 1;
  }
  build_first_visit(out, n_);
}

// One stamped walk over the autonomous projection — (signature, node) for
// port-oblivious automata, the full (signature, node, entry port)
// configuration otherwise — recovers the full rho form in exactly
// mu + lambda + 1 steps: the walk stops at the first already-visited
// point. A point stamped by THIS walk closes the cycle (sn_mu = first
// visit, lambda = index gap); a point stamped by an EARLIER orbit of the
// same epoch means the trajectory merged into that orbit, whose cycle is
// inherited wholesale. Under the oblivious projection the entry port is
// determined by the predecessor pair, so full-configuration periodicity
// starts at sn_mu or one step later — decided by comparing the entry
// ports at the two ends of the seam. When the walked space is the full
// configuration the seam comparison is an equality by construction and
// mu == sn_mu.
void CompiledConfigEngine::extract_orbit(tree::NodeId start,
                                         Orbit& out) const {
  // Stepper over an unpacked (sig, node, in_port) configuration, reading
  // only the flattened tables.
  struct Conf {
    std::int32_t sig;
    tree::NodeId node;
    tree::Port in_port;
  };
  const std::uint8_t* deg = deg_.data();
  const std::uint32_t* nbrev = nbrev_.data();
  const std::int32_t* delta = delta_.data();
  const std::int32_t* actd = actd_.data();
  const std::int32_t D = max_deg_;
  const auto step = [deg, nbrev, delta, actd, D](const Conf& c) {
    const int d = deg[c.node];
    const std::int32_t s2 =
        (c.sig & 1)
            ? (c.sig >> 1)
            : delta[(static_cast<std::size_t>(c.sig >> 1) * (D + 1) +
                     (c.in_port + 1)) *
                        D +
                    (d - 1)];
    const int outp = actd[static_cast<std::size_t>(s2) * D + (d - 1)];
    if (outp < 0) return Conf{s2 << 1, c.node, -1};
    const std::uint32_t packed =
        nbrev[static_cast<std::size_t>(c.node) * D + outp];
    return Conf{s2 << 1, static_cast<tree::NodeId>(packed >> 8),
                static_cast<tree::Port>(packed & 255)};
  };

  if (!tables_valid_) {
    throw std::logic_error(
        "CompiledConfigEngine: extraction after rebind_adopted — the "
        "compiled tables belong to an older binding (full rebind needed)");
  }
  ++extracted_count_;
  out.node.clear();
  out.in_port.clear();
  Conf cur{(automaton_.initial << 1) | 1, start, -1};
  const std::uint32_t self = static_cast<std::uint32_t>(start);
  const std::uint32_t sig_span =
      static_cast<std::uint32_t>(automaton_.num_states()) * 2;
  const std::int32_t pslots = port_slots_;
  std::uint64_t hit_index = 0;
  std::uint32_t hit_owner = 0, hit_j = 0;
  for (std::uint64_t i = 0;; ++i) {
    const std::int32_t pslot = pslots == 1 ? 0 : cur.in_port + 1;
    Stamp& stamp = stamps_[(static_cast<std::size_t>(cur.node) * pslots +
                            pslot) *
                               sig_span +
                           cur.sig];
    if (stamp.epoch == epoch_) {
      hit_index = i;
      hit_owner = stamp.owner;
      hit_j = stamp.index;
      break;
    }
    stamp = {epoch_, self, static_cast<std::uint32_t>(i)};
    out.node.push_back(cur.node);
    out.in_port.push_back(static_cast<std::int16_t>(cur.in_port));
    cur = step(cur);
  }

  if (hit_owner == self) {
    out.sn_mu = hit_j;
    out.lambda = hit_index - hit_j;
    out.cycle_root = self;
    out.cycle_phase = 0;
    if (static_cast<tree::Port>(out.in_port[out.sn_mu]) == cur.in_port) {
      out.mu = out.sn_mu;
    } else {
      out.mu = out.sn_mu + 1;
      out.node.push_back(cur.node);  // == node[sn_mu]: same projection pair
      out.in_port.push_back(static_cast<std::int16_t>(cur.in_port));
    }
    build_first_visit(out, n_);
  } else {
    // Merged into orbit `hit_owner` at its step hit_j after hit_index own
    // steps: inherit its cycle and splice the tail.
    finalize_merged(out, orbits_[hit_owner], hit_index, hit_j,
                    static_cast<std::int16_t>(cur.in_port));
  }
}

std::span<const std::uint8_t> CompiledConfigEngine::cycle_pair_collisions(
    std::uint32_t root_a, std::uint32_t root_b) const {
  const std::size_t ckey =
      static_cast<std::size_t>(root_a) * n_ + root_b;
  if (shared_ != nullptr) {
    if (!shared_->collision_index.empty()) {
      const std::int32_t idx = shared_->collision_index[ckey];
      if (idx >= 0) return shared_->collisions[idx].table;
    } else {
      for (const CyclePair& p : shared_->collisions) {
        if (p.root_a == root_a && p.root_b == root_b) return p.table;
      }
    }
    // Not published for this pair: build locally below (the root orbits
    // may live in the shared set — orbit() serves them transparently).
  }
  const bool dense = !cindex_epoch_.empty();
  if (dense && cindex_epoch_[ckey] == epoch_) {
    return collision_[cindex_slot_[ckey]].table;
  }
  CyclePair* slot = nullptr;
  std::size_t slot_index = 0;
  if (dense) {
    // The dense index is authoritative: a miss means the pair is not
    // built this epoch — recycle any stale entry without scanning.
    for (std::size_t i = 0; i < collision_.size(); ++i) {
      if (collision_[i].epoch != epoch_) {
        slot = &collision_[i];
        slot_index = i;
        break;
      }
    }
  } else {
    for (std::size_t i = 0; i < collision_.size(); ++i) {
      CyclePair& p = collision_[i];
      if (p.epoch == epoch_) {
        if (p.root_a == root_a && p.root_b == root_b) return p.table;
      } else if (slot == nullptr) {
        slot = &p;  // recycle a stale slot (keeps its table capacity)
        slot_index = i;
      }
    }
  }
  if (slot == nullptr) {
    slot_index = collision_.size();
    slot = &collision_.emplace_back();
  }
  slot->root_a = root_a;
  slot->root_b = root_b;
  slot->epoch = epoch_;
  if (dense) {
    cindex_epoch_[ckey] = epoch_;
    cindex_slot_[ckey] = static_cast<std::uint32_t>(slot_index);
  }
  auto& table = slot->table;
  table.clear();
  const Orbit& ra = orbit(static_cast<tree::NodeId>(root_a));
  const Orbit& rb = orbit(static_cast<tree::NodeId>(root_b));
  const std::uint64_t la = ra.lambda, lb = rb.lambda;
  if (la > kCollisionLimit || lb > kCollisionLimit) {
    return table;  // empty: callers scan
  }
  const std::uint64_t g = la == lb ? la : std::gcd(la, lb);
  const tree::NodeId* cyc_a = ra.node.data() + ra.sn_mu;
  const tree::NodeId* cyc_b = rb.node.data() + rb.sn_mu;
  // Mark every alignment class (i - j mod g) that co-locates position i
  // of cycle a with position j of cycle b. The build is quadratic in
  // per-node occupancy; degenerate cycles (e.g. stay-heavy automata
  // parked on one node) would cost more than the scans the table saves,
  // so give up beyond a linear budget and leave the table empty —
  // callers then fall back to scanning.
  const std::uint64_t budget = 8 * (la + lb) + 64;
  table.assign(g, 0);
  for (std::uint64_t j = 0; j < lb; ++j) {
    node_positions_[cyc_b[j]].push_back(static_cast<std::uint32_t>(j % g));
  }
  bool aborted = false;
  std::uint64_t marks = 0;
  std::uint32_t im = 0;  // i mod g, maintained incrementally
  for (std::uint64_t i = 0; i < la; ++i) {
    const auto& positions = node_positions_[cyc_a[i]];
    marks += positions.size();
    if (marks > budget) {
      aborted = true;
      break;
    }
    for (const std::uint32_t jm : positions) {
      table[im >= jm ? im - jm : im + g - jm] = 1;
    }
    if (++im == g) im = 0;
  }
  for (std::uint64_t j = 0; j < lb; ++j) {
    node_positions_[cyc_b[j]].clear();
  }
  if (aborted) table.clear();
  return table;
}

const CompiledConfigEngine::Orbit& CompiledConfigEngine::orbit(
    tree::NodeId start) const {
  if (start < 0 || start >= n_) {
    throw std::invalid_argument("CompiledConfigEngine::orbit: bad start");
  }
  const std::size_t slot = static_cast<std::size_t>(start);
  if (shared_ != nullptr && slot < shared_->has_orbit.size() &&
      shared_->has_orbit[slot]) {
    return shared_->orbits[slot];
  }
  if (orbit_epoch_[slot] != epoch_) {
    extract_orbit(start, orbits_[slot]);
    orbit_epoch_[slot] = epoch_;
  }
  return orbits_[slot];
}

void CompiledConfigEngine::warm_orbits(
    std::span<const tree::NodeId> starts) const {
  // Deduplicate and drop already-served starts; batch the rest.
  tree::NodeId pending[kBatchWalks];
  std::size_t filled = 0;
  auto& seen = warm_seen_;
  seen.assign(static_cast<std::size_t>(n_), 0);
  for (const tree::NodeId start : starts) {
    if (start < 0 || start >= n_) {
      throw std::invalid_argument("CompiledConfigEngine::warm_orbits: range");
    }
    const std::size_t slot = static_cast<std::size_t>(start);
    if (seen[slot]) continue;
    seen[slot] = 1;
    if (shared_ != nullptr && slot < shared_->has_orbit.size() &&
        shared_->has_orbit[slot]) {
      continue;
    }
    if (orbit_epoch_[slot] == epoch_) continue;
    pending[filled++] = start;
    if (filled == kBatchWalks) {
      extract_orbits_batch({pending, filled});
      filled = 0;
    }
  }
  if (filled > 0) extract_orbits_batch({pending, filled});
}

void CompiledConfigEngine::adopt_shared_orbits(
    std::shared_ptr<const OrbitSet> set) {
  shared_ = std::move(set);
}

std::shared_ptr<const CompiledConfigEngine::OrbitSet>
CompiledConfigEngine::snapshot_orbits() const {
  auto set = std::make_shared<OrbitSet>();
  const std::size_t n = static_cast<std::size_t>(n_);
  set->orbits.resize(n);
  set->has_orbit.assign(n, 0);
  std::size_t bytes = sizeof(OrbitSet) + n * (sizeof(Orbit) + 1);
  // Pass 1: size the arenas, so each field type is ONE allocation for the
  // whole set (published sets are read in start-node order, and the
  // serializer copies each arena wholesale).
  std::size_t nodes = 0, ports = 0, visits = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (orbit_epoch_[s] == epoch_) {
      nodes += orbits_[s].node.size();
      ports += orbits_[s].in_port.size();
      visits += orbits_[s].first_visit.size();
    }
  }
  set->node_arena.resize(nodes);
  set->port_arena.resize(ports);
  set->visit_arena.resize(visits);
  // Pass 2: copy payloads into the arenas and bind the published orbits'
  // buffers as windows into them.
  std::size_t no = 0, po = 0, vo = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (orbit_epoch_[s] != epoch_) continue;
    const Orbit& src = orbits_[s];
    Orbit& dst = set->orbits[s];
    dst.mu = src.mu;
    dst.lambda = src.lambda;
    dst.sn_mu = src.sn_mu;
    dst.cycle_root = src.cycle_root;
    dst.cycle_phase = src.cycle_phase;
    std::memcpy(set->node_arena.data() + no, src.node.data(),
                src.node.size() * sizeof(tree::NodeId));
    dst.node.bind_external(set->node_arena.data() + no, src.node.size());
    no += src.node.size();
    std::memcpy(set->port_arena.data() + po, src.in_port.data(),
                src.in_port.size() * sizeof(std::int16_t));
    dst.in_port.bind_external(set->port_arena.data() + po,
                              src.in_port.size());
    po += src.in_port.size();
    std::memcpy(set->visit_arena.data() + vo, src.first_visit.data(),
                src.first_visit.size() * sizeof(std::uint32_t));
    dst.first_visit.bind_external(set->visit_arena.data() + vo,
                                  src.first_visit.size());
    vo += src.first_visit.size();
    set->has_orbit[s] = 1;
    bytes += src.node.size() * sizeof(tree::NodeId) +
             src.in_port.size() * sizeof(std::int16_t) +
             src.first_visit.size() * sizeof(std::uint32_t);
  }
  if (!cindex_epoch_.empty()) {
    set->collision_index.assign(static_cast<std::size_t>(n_) * n_, -1);
  }
  std::size_t live = 0;
  for (const CyclePair& p : collision_) {
    live += p.epoch == epoch_ ? 1 : 0;
  }
  set->collisions.reserve(live);
  for (const CyclePair& p : collision_) {
    if (p.epoch == epoch_) {
      if (!set->collision_index.empty()) {
        set->collision_index[static_cast<std::size_t>(p.root_a) * n_ +
                             p.root_b] =
            static_cast<std::int32_t>(set->collisions.size());
      }
      set->collisions.push_back(p);
      bytes += sizeof(CyclePair) + p.table.size();
    }
  }
  bytes += set->collision_index.size() * sizeof(std::int32_t);
  set->bytes = bytes;
  return set;
}

Verdict verify_never_meet_compiled(const CompiledConfigEngine& engine_a,
                                   const CompiledConfigEngine& engine_b,
                                   const RunConfig& cfg) {
  if (&engine_a.tree() != &engine_b.tree()) {
    throw std::invalid_argument(
        "verify_never_meet_compiled: engines over different trees");
  }
  if (cfg.max_rounds == 0) {
    throw std::invalid_argument(
        "verify_never_meet_compiled: max_rounds must be > 0");
  }
  const tree::Tree& t = engine_a.tree();
  if (cfg.start_a < 0 || cfg.start_a >= t.node_count() || cfg.start_b < 0 ||
      cfg.start_b >= t.node_count()) {
    throw std::invalid_argument("verify_never_meet_compiled: start range");
  }
  if (cfg.start_a == cfg.start_b) {
    throw std::invalid_argument(
        "verify_never_meet_compiled: starts must differ");
  }
  const bool same_engine = &engine_a == &engine_b;
  if (same_engine) {
    // Batch the two walks when both are missing; a warmed engine skips
    // the batching machinery entirely (orbit_cached is two compares).
    tree::NodeId both[2];
    std::size_t missing = 0;
    if (!engine_a.orbit_cached(cfg.start_a)) both[missing++] = cfg.start_a;
    if (!engine_a.orbit_cached(cfg.start_b)) both[missing++] = cfg.start_b;
    if (missing > 0) engine_a.warm_orbits({both, missing});
  }
  const auto& A = engine_a.orbit(cfg.start_a);
  const auto& B = engine_b.orbit(cfg.start_b);
  return detail::verify_pair_core(engine_a, A, B, same_engine, cfg.start_a,
                                  cfg.start_b, cfg.delay_a, cfg.delay_b,
                                  cfg.max_rounds);
}

GatherVerdict verify_never_gather_compiled(
    const CompiledConfigEngine& engine, std::span<const tree::NodeId> starts,
    std::span<const std::uint64_t> delays, std::uint64_t max_rounds) {
  const std::size_t k = starts.size();
  if (k < 2) {
    throw std::invalid_argument(
        "verify_never_gather_compiled: need >= 2 agents");
  }
  if (k > kMaxGatherAgents) {
    throw std::invalid_argument(
        "verify_never_gather_compiled: too many agents");
  }
  if (!delays.empty() && delays.size() != k) {
    throw std::invalid_argument(
        "verify_never_gather_compiled: delays size mismatch");
  }
  if (max_rounds == 0) {
    throw std::invalid_argument(
        "verify_never_gather_compiled: max_rounds must be > 0");
  }
  const tree::NodeId n = engine.tree().node_count();
  for (const tree::NodeId s : starts) {
    if (s < 0 || s >= n) {
      throw std::invalid_argument(
          "verify_never_gather_compiled: start out of range");
    }
  }
  // Batched warm-up through the same stepper the pair pipeline uses
  // (duplicates and already-served starts are skipped inside).
  engine.warm_orbits(starts);
  const CompiledConfigEngine::Orbit* orbs[kMaxGatherAgents];
  for (std::size_t i = 0; i < k; ++i) orbs[i] = &engine.orbit(starts[i]);
  const std::uint64_t zeros[kMaxGatherAgents] = {};
  return detail::gather_with_state(
      detail::make_tuple_state(engine, orbs, starts.data(), k),
      delays.empty() ? zeros : delays.data(), max_rounds);
}

std::vector<Verdict> verify_grid(const CompiledConfigEngine& engine_a,
                                 const CompiledConfigEngine& engine_b,
                                 std::span<const PairQuery> queries,
                                 std::uint64_t max_rounds,
                                 unsigned num_threads) {
  if (&engine_a.tree() != &engine_b.tree()) {
    throw std::invalid_argument("verify_grid: engines over different trees");
  }
  if (max_rounds == 0) {
    throw std::invalid_argument("verify_grid: max_rounds must be > 0");
  }
  const tree::NodeId n = engine_a.tree().node_count();
  for (const PairQuery& q : queries) {
    if (q.start_a < 0 || q.start_a >= n || q.start_b < 0 || q.start_b >= n) {
      throw std::invalid_argument("verify_grid: start range");
    }
    if (q.start_a == q.start_b) {
      throw std::invalid_argument("verify_grid: starts must differ");
    }
  }
  // Warm every cache a query can touch — orbits for both endpoints (via
  // the batched stepper) and the per-cycle collision tables of shared
  // cycles — serially, so the queries themselves are read-only and safe to
  // fan across workers.
  const bool same_engine = &engine_a == &engine_b;
  {
    // Feed uncached starts straight into batch-sized buffers — no starts
    // vector, no per-call allocation; a fully warmed engine degrades this
    // pass to two orbit_cached compares per query.
    tree::NodeId pa[CompiledConfigEngine::kBatchWalks];
    tree::NodeId pb[CompiledConfigEngine::kBatchWalks];
    std::size_t fa = 0, fb = 0;
    for (const PairQuery& q : queries) {
      if (!engine_a.orbit_cached(q.start_a)) {
        pa[fa++] = q.start_a;
        if (fa == CompiledConfigEngine::kBatchWalks) {
          engine_a.warm_orbits({pa, fa});
          fa = 0;
        }
      }
      auto& eb = same_engine ? engine_a : engine_b;
      auto& pend = same_engine ? pa : pb;
      auto& fill = same_engine ? fa : fb;
      if (!eb.orbit_cached(q.start_b)) {
        pend[fill++] = q.start_b;
        if (fill == CompiledConfigEngine::kBatchWalks) {
          eb.warm_orbits({pend, fill});
          fill = 0;
        }
      }
    }
    if (fa > 0) engine_a.warm_orbits({pa, fa});
    if (fb > 0) engine_b.warm_orbits({pb, fb});
  }
  if (same_engine) {
    for (const PairQuery& q : queries) {
      const auto& A = engine_a.orbit(q.start_a);
      const auto& B = engine_b.orbit(q.start_b);
      if (A.lambda <= CompiledConfigEngine::kCollisionLimit &&
          B.lambda <= CompiledConfigEngine::kCollisionLimit) {
        engine_a.cycle_pair_collisions(A.cycle_root, B.cycle_root);
      }
    }
  }
  if (num_threads == 1) {
    // Serial fast path: answer in place, no index indirection.
    std::vector<Verdict> out(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const PairQuery& q = queries[i];
      out[i] = detail::verify_pair_core(
          engine_a, engine_a.orbit(q.start_a), engine_b.orbit(q.start_b),
          same_engine, q.start_a, q.start_b, q.delay_a, q.delay_b,
          max_rounds);
    }
    return out;
  }
  std::vector<std::size_t> index(queries.size());
  std::iota(index.begin(), index.end(), std::size_t{0});
  return sweep_instances(
      index,
      [&](const std::size_t& i) {
        const PairQuery& q = queries[i];
        return detail::verify_pair_core(
            engine_a, engine_a.orbit(q.start_a), engine_b.orbit(q.start_b),
            same_engine, q.start_a, q.start_b, q.delay_a, q.delay_b,
            max_rounds);
      },
      num_threads);
}

}  // namespace rvt::sim

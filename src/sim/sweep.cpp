#include "sim/sweep.hpp"

#include <cerrno>
#include <cstdlib>

namespace rvt::sim {

unsigned resolve_sweep_threads(unsigned requested) {
  if (requested > 0) return requested;
  // RVT_SWEEP_THREADS must be a whole base-10 positive integer to take
  // effect; "0", trailing junk, negatives, overflow and empty strings are
  // rejected deterministically (fall through to hardware concurrency)
  // rather than silently parsed as a prefix. Values past kMaxSweepThreads
  // are clamped — a pool larger than that only adds scheduler churn.
  if (const char* env = std::getenv("RVT_SWEEP_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // strtol would skip leading whitespace and accept a sign; insist the
    // whole string is plain digits.
    const bool parsed = env[0] >= '0' && env[0] <= '9' && *end == '\0' &&
                        errno != ERANGE;
    if (parsed && v > 0) {
      return v <= static_cast<long>(kMaxSweepThreads)
                 ? static_cast<unsigned>(v)
                 : kMaxSweepThreads;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace rvt::sim

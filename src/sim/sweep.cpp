#include "sim/sweep.hpp"

#include <cstdlib>
#include <string>

namespace rvt::sim {

unsigned resolve_sweep_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RVT_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace rvt::sim

#include "sim/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rvt::sim {

namespace {

bool env_forces_scalar() {
  const char* env = std::getenv("RVT_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "OFF") == 0 || std::strcmp(env, "scalar") == 0;
}

bool detect_available() {
#if defined(RVT_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))
  if (env_forces_scalar()) return false;
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{detect_available()};
  return enabled;
}

}  // namespace

bool simd_available() {
  static const bool available = detect_available();
  return available;
}

bool simd_enabled() {
  return simd_available() && enabled_flag().load(std::memory_order_relaxed);
}

void set_simd_enabled(bool enabled) {
  enabled_flag().store(enabled && simd_available(),
                       std::memory_order_relaxed);
}

const char* simd_path_name() { return simd_enabled() ? "avx2" : "scalar"; }

}  // namespace rvt::sim

// The shared verification verdict (one type for every engine).
//
// Both the compiled configuration engine (sim/compiled.hpp) and the legacy
// per-round reference stepper (lowerbound/verify.cpp) answer the same
// question — does a specific agent pair on a specific instance ever meet,
// and if not, is non-meeting certified forever by a configuration cycle? —
// so they share one verdict struct. `engine` records which engine actually
// produced the verdict: the dispatcher in lowerbound::verify_never_meet
// picks an engine by capability and budget, and a silent fallback to the
// (orders of magnitude slower) reference stepper used to be invisible to
// callers; benches now assert on the field.
#pragma once

#include <cstdint>

namespace rvt::sim {

/// Which engine produced a Verdict.
enum class VerifyEngine : std::uint8_t {
  kNone = 0,   ///< default-constructed / not yet verified
  kCompiled,   ///< compiled configuration engine (sim/compiled.hpp)
  kReference,  ///< legacy per-round Brent stepper (lowerbound/verify.cpp)
};

inline const char* to_string(VerifyEngine e) {
  switch (e) {
    case VerifyEngine::kCompiled:
      return "compiled";
    case VerifyEngine::kReference:
      return "reference";
    default:
      return "none";
  }
}

struct Verdict {
  bool met = false;                 ///< construction FAILED if true
  std::uint64_t meeting_round = 0;  ///< valid when met
  bool certified_forever = false;   ///< configuration cycle found
  std::uint64_t cycle_length = 0;   ///< period of the certified cycle
  std::uint64_t rounds_checked = 0;
  VerifyEngine engine = VerifyEngine::kNone;
  /// True iff the orbits this verdict was answered from came out of the
  /// cross-worker orbit cache (sim/orbit_cache.hpp) instead of being
  /// extracted by the answering engine — throughput telemetry the benches
  /// aggregate into their JSON reports and assert on. Never affects the
  /// verdict fields above.
  bool cache_hit = false;
};

/// Historical name from when the compiled engine kept its own mirror of
/// lowerbound::NeverMeetResult; both are now the same type.
using CompiledVerdict = Verdict;

}  // namespace rvt::sim

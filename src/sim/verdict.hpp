// The shared verification verdict (one type for every engine).
//
// Both the compiled configuration engine (sim/compiled.hpp) and the legacy
// per-round reference stepper (lowerbound/verify.cpp) answer the same
// question — does a specific agent pair on a specific instance ever meet,
// and if not, is non-meeting certified forever by a configuration cycle? —
// so they share one verdict struct. `engine` records which engine actually
// produced the verdict: the dispatcher in lowerbound::verify_never_meet
// picks an engine by capability and budget, and a silent fallback to the
// (orders of magnitude slower) reference stepper used to be invisible to
// callers; benches now assert on the field.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rvt::sim {

/// Which engine produced a Verdict.
enum class VerifyEngine : std::uint8_t {
  kNone = 0,   ///< default-constructed / not yet verified
  kCompiled,   ///< compiled configuration engine (sim/compiled.hpp)
  kReference,  ///< legacy per-round Brent stepper (lowerbound/verify.cpp)
};

inline const char* to_string(VerifyEngine e) {
  switch (e) {
    case VerifyEngine::kCompiled:
      return "compiled";
    case VerifyEngine::kReference:
      return "reference";
    default:
      return "none";
  }
}

struct Verdict {
  bool met = false;                 ///< construction FAILED if true
  std::uint64_t meeting_round = 0;  ///< valid when met
  bool certified_forever = false;   ///< configuration cycle found
  std::uint64_t cycle_length = 0;   ///< period of the certified cycle
  std::uint64_t rounds_checked = 0;
  VerifyEngine engine = VerifyEngine::kNone;
  /// True iff the orbits this verdict was answered from came out of the
  /// cross-worker orbit cache (sim/orbit_cache.hpp) instead of being
  /// extracted by the answering engine — throughput telemetry the benches
  /// aggregate into their JSON reports and assert on. Never affects the
  /// verdict fields above.
  bool cache_hit = false;
};

/// Historical name from when the compiled engine kept its own mirror of
/// lowerbound::NeverMeetResult; both are now the same type.
using CompiledVerdict = Verdict;

/// Most agents a gathering query may carry (paper §1.3: k >= 2 agents must
/// co-locate). A compile-time cap keeps the k-tuple verdict core's state on
/// the stack — battery loops refresh it millions of times — and 8 is far
/// above the k = 3, 4 the gathering workloads exercise.
inline constexpr std::size_t kMaxGatherAgents = 8;

/// Verdict of a k-agent gathering query, mirroring sim::GatherResult (the
/// interpreting reference in sim/simulator.cpp) field for field where both
/// can speak: `gathered`/`gather_round`/`gather_node` match the reference
/// exactly, and `rounds_checked` equals the reference's rounds_executed
/// (the gathering round when gathered, the full horizon otherwise — the
/// reference has no early-out certificate). `certified_forever` is
/// compiled-only enrichment: the k-fold joint configuration is periodic
/// once every agent is in-cycle, so scanning one joint period (or proving
/// some pair can never co-locate in-cycle) certifies never-gathering
/// beyond any horizon, which the per-round reference cannot do.
struct GatherVerdict {
  bool gathered = false;             ///< construction FAILED if true
  std::uint64_t gather_round = 0;    ///< valid when gathered
  std::int32_t gather_node = -1;     ///< tree::NodeId; valid when gathered
  bool certified_forever = false;    ///< never-gather proven for all rounds
  std::uint64_t cycle_length = 0;    ///< joint period (lcm of the k cycle
                                     ///< lengths) when certified; 0 when
                                     ///< the lcm overflowed (a pairwise
                                     ///< table certificate needs no period)
  std::uint64_t rounds_checked = 0;  ///< == reference rounds_executed
  VerifyEngine engine = VerifyEngine::kNone;
  /// Same telemetry as Verdict::cache_hit: orbits served by the
  /// cross-worker cache rather than extracted by the answering engine.
  bool cache_hit = false;
};

}  // namespace rvt::sim

#include "sim/meter.hpp"

#include <algorithm>

namespace rvt::sim {

MeteredCounter& MemoryMeter::counter(const std::string& name) {
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(name, MeteredCounter{});
  return counters_.back().second;
}

void MemoryMeter::declare_control_states(std::uint64_t count) {
  control_states_ = std::max(control_states_, count);
}

std::uint64_t MemoryMeter::total_bits() const {
  std::uint64_t bits = util::ceil_log2(std::max<std::uint64_t>(
      control_states_, 1));
  for (const auto& [n, c] : counters_) bits += c.bits();
  return bits;
}

std::vector<MemoryMeter::Entry> MemoryMeter::breakdown() const {
  std::vector<Entry> out;
  out.push_back({"<control>", control_states_,
                 util::ceil_log2(std::max<std::uint64_t>(control_states_, 1))});
  for (const auto& [n, c] : counters_) {
    out.push_back({n, c.max_seen(), c.bits()});
  }
  return out;
}

}  // namespace rvt::sim

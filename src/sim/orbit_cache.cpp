#include "sim/orbit_cache.hpp"

#include <algorithm>
#include <bit>

namespace rvt::sim {

namespace {

/// Two independent FNV-1a streams (different offset bases and an extra
/// avalanche) fed the same serialized words.
struct Fnv2 {
  std::uint64_t hi = 0xcbf29ce484222325ull;
  std::uint64_t lo = 0x9e3779b97f4a7c15ull;
  void feed(std::uint64_t word) {
    hi = (hi ^ word) * 0x100000001b3ull;
    lo = (lo ^ (word * 0xff51afd7ed558ccdull)) * 0xc4ceb9fe1a85ec53ull;
    lo ^= lo >> 33;
  }
  OrbitKey key() const { return {hi, lo}; }
};

}  // namespace

OrbitKey tree_orbit_key(const tree::Tree& t) {
  Fnv2 h;
  const tree::NodeId n = t.node_count();
  h.feed(static_cast<std::uint64_t>(n));
  for (tree::NodeId v = 0; v < n; ++v) {
    const int d = t.degree(v);
    h.feed(static_cast<std::uint64_t>(d));
    for (tree::Port p = 0; p < d; ++p) {
      h.feed((static_cast<std::uint64_t>(t.neighbor(v, p)) << 16) |
             static_cast<std::uint64_t>(t.reverse_port(v, p)));
    }
  }
  return h.key();
}

OrbitKey automaton_orbit_key(const TabularAutomaton& a) {
  Fnv2 h;
  h.feed(static_cast<std::uint64_t>(a.initial));
  h.feed(static_cast<std::uint64_t>(a.max_degree));
  h.feed(static_cast<std::uint64_t>(a.delta.size()));
  for (const int x : a.delta) {
    h.feed(static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
  }
  for (const int x : a.lambda) {
    h.feed(static_cast<std::uint64_t>(static_cast<std::int64_t>(x)) ^
           0xa5a5a5a5a5a5a5a5ull);
  }
  return h.key();
}

OrbitKey canonical_automaton_key(const TabularAutomaton& a) {
  return automaton_orbit_key(canonical_reachable_form(a));
}

OrbitKey combine_orbit_keys(const OrbitKey& tree, const OrbitKey& automaton) {
  Fnv2 h;
  h.feed(tree.hi);
  h.feed(tree.lo);
  h.feed(automaton.hi);
  h.feed(automaton.lo);
  return h.key();
}

OrbitCache::OrbitCache(unsigned shard_count, std::size_t capacity,
                       std::size_t max_bytes)
    : shards_(std::bit_ceil(std::max<std::size_t>(shard_count, 1))),
      shard_mask_(shards_.size() - 1),
      max_bytes_(max_bytes) {
  const std::size_t per_shard = std::bit_ceil(
      std::max<std::size_t>(capacity / shards_.size(), 8));
  for (Shard& sh : shards_) {
    sh.slots = std::vector<Slot>(per_shard);
  }
}

OrbitCache::~OrbitCache() {
  for (Shard& sh : shards_) {
    for (Slot& slot : sh.slots) {
      delete slot.node.load(std::memory_order_relaxed);
    }
  }
}

OrbitCache::Shard& OrbitCache::shard_for(const OrbitKey& key) {
  return shards_[static_cast<std::size_t>(key.lo >> 53) & shard_mask_];
}

const OrbitCache::Shard& OrbitCache::shard_for(const OrbitKey& key) const {
  return shards_[static_cast<std::size_t>(key.lo >> 53) & shard_mask_];
}

const OrbitCache::OrbitSet* OrbitCache::peek(const OrbitKey& key) const {
  const Node* n =
      find(shard_for(key), key, epoch_.load(std::memory_order_acquire));
  return n != nullptr ? n->set.get() : nullptr;
}

std::size_t OrbitCache::probe_start(const Shard& sh, const OrbitKey& key) {
  return static_cast<std::size_t>(key.hi) & (sh.slots.size() - 1);
}

const OrbitCache::Node* OrbitCache::find(const Shard& sh,
                                         const OrbitKey& key,
                                         std::uint64_t epoch) {
  const std::size_t mask = sh.slots.size() - 1;
  for (std::size_t i = probe_start(sh, key);;
       i = (i + 1) & mask) {
    const Slot& slot = sh.slots[i];
    const Node* n = slot.node.load(std::memory_order_acquire);
    if (n == nullptr) return nullptr;  // key absent: slots fill front-first
    if (slot.hi == key.hi && slot.lo == key.lo && n->epoch == epoch) {
      return n;
    }
  }
}

std::shared_ptr<const OrbitCache::OrbitSet> OrbitCache::acquire(
    const OrbitKey& key) {
  Shard& sh = shard_for(key);
  const std::uint64_t ep = epoch_.load(std::memory_order_acquire);
  // Hit fast path: slots go empty -> published exactly once per epoch and
  // entries are immutable, so a lock-free linear probe suffices.
  if (const Node* n = find(sh, key, ep); n != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return n->set;
  }
  std::unique_lock<std::mutex> lk(sh.mu);
  for (;;) {
    // Re-check under the lock: a publisher may have finished while we
    // queued on the mutex (or while we waited on the condvar).
    if (const Node* n = find(sh, key, ep); n != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return n->set;
    }
    const auto claim =
        std::find(sh.claimed.begin(), sh.claimed.end(), key);
    if (claim == sh.claimed.end()) {
      sh.claimed.push_back(key);
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (backing_ != nullptr) {
        // Consult the durable tier WITH the claim held (and the shard
        // unlocked — the load is IO): workers racing for this key block
        // on the condvar exactly as for a local extraction, so one
        // process-wide load serves them all.
        lk.unlock();
        std::shared_ptr<const OrbitSet> set = backing_->load(key);
        if (set != nullptr) {
          tier_hits_.fetch_add(1, std::memory_order_relaxed);
          // Install for the waiters (publish_local releases the claim;
          // a budget reject only means the table stays cold) and serve
          // the caller directly from the loaded set either way.
          publish_local(key, set);
          return set;
        }
        return nullptr;  // tier miss: caller extracts and publishes
      }
      return nullptr;  // caller is now the publisher
    }
    waits_.fetch_add(1, std::memory_order_relaxed);
    sh.cv.wait(lk);
  }
}

void OrbitCache::publish(const OrbitKey& key,
                         std::shared_ptr<const OrbitSet> set) {
  // Forward to the durable tier BEFORE the local install wakes waiters:
  // the store is IO and nothing blocks on it, while waiters woken first
  // would race ahead of the bytes other processes need.
  if (backing_ != nullptr && set != nullptr) {
    backing_->store(key, set);
    tier_stores_.fetch_add(1, std::memory_order_relaxed);
  }
  publish_local(key, std::move(set));
}

void OrbitCache::publish_local(const OrbitKey& key,
                               std::shared_ptr<const OrbitSet> set) {
  Shard& sh = shard_for(key);
  {
    const std::lock_guard<std::mutex> lk(sh.mu);
    const auto claim =
        std::find(sh.claimed.begin(), sh.claimed.end(), key);
    if (claim != sh.claimed.end()) sh.claimed.erase(claim);
    const std::size_t sz = set != nullptr ? set->bytes : 0;
    // Keep the probe table under 7/8 load so lookups stay short.
    const bool fits =
        set != nullptr &&
        bytes_.load(std::memory_order_relaxed) + sz <= max_bytes_ &&
        sh.filled + 1 <= sh.slots.size() - sh.slots.size() / 8;
    if (fits) {
      const std::size_t mask = sh.slots.size() - 1;
      std::size_t i = probe_start(sh, key);
      while (sh.slots[i].node.load(std::memory_order_relaxed) != nullptr) {
        i = (i + 1) & mask;
      }
      Node* node = new Node{key, epoch_.load(std::memory_order_relaxed),
                            std::move(set)};
      sh.slots[i].hi = key.hi;
      sh.slots[i].lo = key.lo;
      sh.slots[i].node.store(node, std::memory_order_release);
      ++sh.filled;
      bytes_.fetch_add(sz, std::memory_order_relaxed);
      publishes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  sh.cv.notify_all();
}

void OrbitCache::abandon(const OrbitKey& key) {
  Shard& sh = shard_for(key);
  {
    const std::lock_guard<std::mutex> lk(sh.mu);
    const auto claim =
        std::find(sh.claimed.begin(), sh.claimed.end(), key);
    if (claim != sh.claimed.end()) sh.claimed.erase(claim);
  }
  sh.cv.notify_all();
}

void OrbitCache::advance_epoch() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (Shard& sh : shards_) {
    const std::lock_guard<std::mutex> lk(sh.mu);
    for (Slot& slot : sh.slots) {
      delete slot.node.exchange(nullptr, std::memory_order_acq_rel);
      slot.hi = 0;
      slot.lo = 0;
    }
    sh.filled = 0;
  }
  bytes_.store(0, std::memory_order_relaxed);
}

OrbitCache::Stats OrbitCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          waits_.load(std::memory_order_relaxed),
          publishes_.load(std::memory_order_relaxed),
          rejects_.load(std::memory_order_relaxed),
          tier_hits_.load(std::memory_order_relaxed),
          tier_stores_.load(std::memory_order_relaxed)};
}

}  // namespace rvt::sim

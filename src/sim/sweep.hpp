// Parallel sweep harness for experiment grids.
//
// The lower-bound benches fan large (instance x start-pair x delay) grids
// over independent verification calls; sweep_instances runs such a grid
// across a pool of worker threads with work stealing and DETERMINISTIC
// result ordering: results[i] is always fn(instances[i]), regardless of
// thread count, so a sweep is reproducible and directly comparable between
// serial and parallel runs. Exceptions thrown by fn are captured and the
// first one is rethrown after all workers join.
//
// fn must be safe to call concurrently from multiple threads (no shared
// mutable state — in particular, pre-draw any randomness into the instance
// list instead of sharing an Rng across workers).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rvt::sim {

/// Hard cap on the pool size an RVT_SWEEP_THREADS override can request;
/// larger values are clamped.
inline constexpr unsigned kMaxSweepThreads = 1024;

/// Worker count actually used for `requested` threads: 0 means "one per
/// hardware thread" (overridable via the RVT_SWEEP_THREADS environment
/// variable, useful to pin CI runs); the result is always >= 1 and at most
/// kMaxSweepThreads when taken from the environment. Malformed or
/// non-positive RVT_SWEEP_THREADS values (garbage, trailing junk, "0",
/// negatives, overflow) are rejected deterministically and fall back to
/// hardware concurrency.
unsigned resolve_sweep_threads(unsigned requested);

/// Indexed sweep with per-worker context: each worker constructs ONE
/// context via make_ctx() and reuses it across every index it claims —
/// the harness shape for fused enumeration loops, where the context holds
/// rebindable engines and verdict buffers whose allocations must amortize
/// across the whole sweep rather than recur per instance. Result ordering
/// is deterministic (results[i] == fn(ctx, i)); after a worker's loop
/// drains, finish(ctx) runs once on its context (telemetry collection —
/// it may run concurrently across workers, so aggregate atomically).
/// Exceptions from fn are captured and the first is rethrown after join.
template <typename MakeCtx, typename Fn, typename Finish>
auto sweep_indexed(std::uint64_t count, MakeCtx make_ctx, Fn fn,
                   Finish finish, unsigned num_threads = 0)
    -> std::vector<std::invoke_result_t<
        Fn&, std::invoke_result_t<MakeCtx&>&, std::uint64_t>> {
  using Ctx = std::invoke_result_t<MakeCtx&>;
  using Result = std::invoke_result_t<Fn&, Ctx&, std::uint64_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "sweep_indexed: result type must be default-constructible");
  static_assert(!std::is_same_v<Result, bool>,
                "sweep_indexed: bool results race in std::vector<bool> "
                "(elements share words); return char or int instead");
  std::vector<Result> results(count);
  if (count == 0) return results;

  std::size_t workers = resolve_sweep_threads(num_threads);
  workers = std::min<std::size_t>(workers, count);
  if (workers <= 1) {
    Ctx ctx = make_ctx();
    for (std::uint64_t i = 0; i < count; ++i) {
      results[i] = fn(ctx, i);
    }
    finish(ctx);
    return results;
  }

  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&] {
    // The whole body is guarded: an exception escaping a std::thread
    // (from make_ctx or finish just as much as from fn) would terminate
    // the process instead of being rethrown after the join.
    try {
      Ctx ctx = make_ctx();
      while (!failed.load(std::memory_order_relaxed)) {
        const std::uint64_t i =
            next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        results[i] = fn(ctx, i);
      }
      finish(ctx);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

template <typename Instance, typename Fn>
auto sweep_instances(const std::vector<Instance>& instances, Fn fn,
                     unsigned num_threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, const Instance&>> {
  using Result = std::invoke_result_t<Fn&, const Instance&>;
  static_assert(std::is_default_constructible_v<Result>,
                "sweep_instances: result type must be default-constructible");
  static_assert(!std::is_same_v<Result, bool>,
                "sweep_instances: bool results race in std::vector<bool> "
                "(elements share words); return char or int instead");
  std::vector<Result> results(instances.size());
  if (instances.empty()) return results;

  std::size_t workers = resolve_sweep_threads(num_threads);
  workers = std::min<std::size_t>(workers, instances.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      results[i] = fn(instances[i]);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= instances.size()) return;
      try {
        results[i] = fn(instances[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace rvt::sim

#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rvt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table needs a header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) {
  std::ostringstream os;
  os << std::setprecision(4) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(w[c])) << r[c];
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(w[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace rvt::util

// Deterministic, seedable fault injection.
//
// A FAILPOINT is a named site in the code where a fault can be provoked
// on demand: an IO path that can be made to fail, a loop that can be
// made to crash the process at a chosen iteration. Sites are compiled in
// permanently and cost one relaxed atomic load + branch when no
// configuration is armed — the fault battery needs the sites in the
// production binary (a debug-only build would test a different program),
// and the E10 numbers must not move for it.
//
// Configuration comes from the RVT_FAILPOINTS environment variable (or a
// CLI flag / direct configure() call in tests):
//
//     RVT_FAILPOINTS="site=action@trigger[;site=action@trigger...]"
//
//     action  := err            report a failure to the calling code
//              | crash          _exit(kFailpointCrashExitCode) at the site
//     trigger := always                   fire on every hit
//              | hit:<n>                  fire on the n-th hit (1-based)
//              | hit:<n>:<count>          fire on hits n .. n+count-1
//              | hit:<n>:*                fire on every hit from n on
//              | prob:<p>:<seed>          fire each hit with probability p,
//                                         decided by a deterministic hash
//                                         of (seed, hit index)
//
// Every trigger is DETERMINISTIC: the same configuration against the
// same execution fires at the same hits, so a chaos scenario is a
// reproducible workload (the bench-report `faults` block records the
// scenario seed). Hit counters are per-site and process-wide.
//
// What a fired action MEANS is the site's contract: an `err` at
// "fs_store.load" is a transient IO failure (retried), at
// "fs_store.load.decode" a corrupt file (quarantined), at
// "journal.append" an append failure (SerializeError). A `crash` is
// always an immediate _exit — except sites that deliberately tear state
// first (journal.append writes a partial record before dying, the torn
// tail the recovery scan must drop).
//
// Registered sites:
//   fs_store.load          FsOrbitStore::load       err = read failure
//   fs_store.load.decode   FsOrbitStore::load       err = decode failure
//   fs_store.store         FsOrbitStore::store      err = publish failure
//   journal.append         JournalWriter::record    crash tears a record
//   journal.seal           JournalWriter::finish    crash loses the seal
//   wire.unframe           unframe_payload          err = frame decode
//   run_shard.index        run_shard main loop      crash-at-index hook
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rvt::util {

enum class FaultAction : std::uint8_t { kNone = 0, kError = 1, kCrash = 2 };

/// Exit code of a crash action — distinguishable from a real SIGKILL or
/// an ordinary failure in orchestrator diagnostics.
inline constexpr int kFailpointCrashExitCode = 41;

class FailPointRegistry {
 public:
  static FailPointRegistry& instance();

  /// Replaces the whole configuration (see the syntax above). An empty
  /// string disarms every site. Throws std::invalid_argument on a
  /// malformed config, leaving the previous configuration in place.
  /// Not safe concurrently with evaluate() — configure before the
  /// workers start, like every other harness knob.
  void configure(const std::string& config);

  /// configure(getenv("RVT_FAILPOINTS")) if the variable is set; no-op
  /// otherwise. Drivers that support fault injection (rvt_cli, the
  /// chaos bench) call this at startup — library code never does, so a
  /// stray environment cannot perturb a production embedding.
  void configure_from_env();

  /// Disarms and forgets every site and counter.
  void reset();

  /// The slow half of failpoint(): counts the hit and decides whether
  /// the site fires this time. Thread-safe.
  FaultAction evaluate(std::string_view site);

  struct SiteStats {
    std::string site;
    std::uint64_t hits = 0;   ///< evaluations since configure
    std::uint64_t fired = 0;  ///< hits on which the site fired
  };
  /// Per-site counters of the current configuration, site-name order.
  std::vector<SiteStats> stats() const;
  /// Total faults injected across all sites since configure.
  std::uint64_t total_fired() const;

 private:
  FailPointRegistry() = default;
};

namespace detail {
/// The armed flag lives outside the registry so the fast path below
/// never touches a mutex or the registry's storage.
inline std::atomic<bool> g_failpoints_armed{false};
}  // namespace detail

/// THE site check. Zero-cost when nothing is configured: one relaxed
/// atomic load and a predictable branch.
inline FaultAction failpoint(std::string_view site) {
  if (!detail::g_failpoints_armed.load(std::memory_order_relaxed)) {
    return FaultAction::kNone;
  }
  return FailPointRegistry::instance().evaluate(site);
}

/// The crash action: flushes stdio and _exit(kFailpointCrashExitCode).
/// Sites that tear state first (partial journal record) do their damage
/// and then call this.
[[noreturn]] void failpoint_crash(std::string_view site);

/// Convenience for pure error sites: true if the caller should fail this
/// operation. A crash action never returns.
bool failpoint_error(std::string_view site);

}  // namespace rvt::util

// Prime number utilities used by the `prime` rendezvous protocol (Lemma 4.1).
//
// The protocol sweeps the sequence of primes 2, 3, 5, ... and performs
// whole-path traversals at speed 1/p for each prime p. The paper notes that
// "the next prime p can be found using O(log p) bits, e.g., by exhaustive
// search"; we mirror that with trial division (no table lookup is required by
// the agents), and additionally provide a sieve for tests and experiment
// harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace rvt::util {

/// True iff `x` is prime. Trial division; intended for the small primes the
/// agents enumerate (p = O(log n) by Lemma 4.1), and fine up to ~2^32 in
/// tests.
bool is_prime(std::uint64_t x);

/// Smallest prime strictly greater than `x`. This is the agent-side
/// "exhaustive search" step from the proof of Lemma 4.1.
std::uint64_t next_prime(std::uint64_t x);

/// The `i`-th prime, 1-indexed (nth_prime(1) == 2). Used by prime(i), the
/// bounded variant of the protocol that stops after the i-th prime.
std::uint64_t nth_prime(std::size_t i);

/// All primes <= n, via Eratosthenes. Harness/test helper, not agent code.
std::vector<std::uint64_t> primes_up_to(std::uint64_t n);

/// pi(x): number of primes <= x. Test helper for the Prime Number Theorem
/// bound used in the proof of Lemma 4.1.
std::size_t prime_count_up_to(std::uint64_t x);

}  // namespace rvt::util

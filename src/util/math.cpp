#include "util/math.hpp"

namespace rvt::util {

std::uint64_t saturating_lcm(std::uint64_t a, std::uint64_t b,
                             std::uint64_t cap) {
  if (a == 0 || b == 0) return 0;
  const std::uint64_t g = std::gcd(a, b);
  const std::uint64_t a_red = a / g;
  if (a_red != 0 && b > cap / a_red) return cap;
  const std::uint64_t l = a_red * b;
  return l > cap ? cap : l;
}

}  // namespace rvt::util

// Bounded exponential backoff for transient failures.
//
// The distributed tier treats IO failures in two classes: TRANSIENT
// (a read or atomic-rename that may succeed if repeated — NFS hiccup,
// ENOSPC racing a cleaner, an injected fault) and PERSISTENT (still
// failing after the bounded schedule). retry_bool() drives the schedule;
// what persistence MEANS is the caller's policy — FsOrbitStore counts
// exhausted operations and degrades itself to compute-through once they
// look systemic, because a cache tier must never make the sweep worse
// than having no tier at all.
//
// The schedule is deterministic: attempt k (1-based) sleeps
// base_delay * 2^(k-1), capped at max_delay, before retrying — no
// jitter, so a seeded fault scenario replays the same schedule and the
// unit tests can assert the exact delays. Sleeping is injectable for
// tests (and for the zero-delay policies the in-process drills use).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace rvt::util {

struct RetryPolicy {
  unsigned max_attempts = 3;  ///< total tries, >= 1
  std::chrono::microseconds base_delay{500};
  std::chrono::microseconds max_delay{50000};
  /// Called with the backoff delay before each re-attempt; defaults to
  /// std::this_thread::sleep_for. Tests substitute a recorder; callers
  /// that must not block substitute a no-op.
  std::function<void(std::chrono::microseconds)> sleep;

  /// The deterministic schedule: delay slept before re-attempt k
  /// (k >= 2; the first attempt never waits).
  std::chrono::microseconds delay_before(unsigned attempt) const;
};

/// A zero-delay policy — same attempt count, no sleeping. The chaos
/// drills use this so seeded fault storms don't serialize on backoff.
RetryPolicy no_delay_policy(unsigned max_attempts);

struct RetryStats {
  std::uint64_t retries = 0;    ///< re-attempts made (attempt 1 is free)
  std::uint64_t exhausted = 0;  ///< operations that failed every attempt
};

/// Runs op() up to policy.max_attempts times, sleeping the backoff
/// schedule between attempts, until it returns true. Returns whether it
/// ever succeeded. Each re-attempt bumps stats->retries; a final failure
/// bumps stats->exhausted (stats may be null).
bool retry_bool(const RetryPolicy& policy, RetryStats* stats,
                const std::function<bool()>& op);

}  // namespace rvt::util

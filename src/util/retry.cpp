#include "util/retry.hpp"

#include <thread>

namespace rvt::util {

std::chrono::microseconds RetryPolicy::delay_before(unsigned attempt) const {
  if (attempt <= 1 || base_delay.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  // base * 2^(attempt-2), saturating into the cap (shift-safe: past 63
  // doublings everything is capped anyway).
  const unsigned doublings = attempt - 2;
  if (doublings >= 63) return max_delay;
  const std::uint64_t factor = std::uint64_t{1} << doublings;
  const std::uint64_t base = static_cast<std::uint64_t>(base_delay.count());
  const std::uint64_t cap = static_cast<std::uint64_t>(max_delay.count());
  if (base != 0 && factor > cap / base) return max_delay;
  return std::min(std::chrono::microseconds{base * factor}, max_delay);
}

RetryPolicy no_delay_policy(unsigned max_attempts) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.base_delay = std::chrono::microseconds{0};
  p.max_delay = std::chrono::microseconds{0};
  p.sleep = [](std::chrono::microseconds) {};
  return p;
}

bool retry_bool(const RetryPolicy& policy, RetryStats* stats,
                const std::function<bool()>& op) {
  const unsigned attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      const std::chrono::microseconds d = policy.delay_before(attempt);
      if (d.count() > 0 || policy.sleep) {
        if (policy.sleep) {
          policy.sleep(d);
        } else {
          std::this_thread::sleep_for(d);
        }
      }
      if (stats != nullptr) ++stats->retries;
    }
    if (op()) return true;
  }
  if (stats != nullptr) ++stats->exhausted;
  return false;
}

}  // namespace rvt::util

// Small integer helpers shared across the library.
#pragma once

#include <cstdint>
#include <numeric>

namespace rvt::util {

/// Number of bits needed to store values in [0, x], i.e. ceil(log2(x+1)).
/// bit_width_for(0) == 0 (a counter that only ever held 0 stores nothing).
/// This is the unit of the memory meter: an agent counter whose maximum
/// observed value is x is charged bit_width_for(x) bits.
constexpr unsigned bit_width_for(std::uint64_t x) {
  unsigned b = 0;
  while (x > 0) {
    ++b;
    x >>= 1;
  }
  return b;
}

/// floor(log2(x)) for x >= 1.
constexpr unsigned floor_log2(std::uint64_t x) {
  unsigned b = 0;
  while (x > 1) {
    ++b;
    x >>= 1;
  }
  return b;
}

/// ceil(log2(x)) for x >= 1 (ceil_log2(1) == 0).
constexpr unsigned ceil_log2(std::uint64_t x) {
  unsigned f = floor_log2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

/// lcm that saturates at `cap` instead of overflowing. The Thm 4.2 adversary
/// computes gamma = lcm of circuit lengths; for pathological automata this
/// can blow up, so the construction refuses (returns cap) rather than UB.
std::uint64_t saturating_lcm(std::uint64_t a, std::uint64_t b,
                             std::uint64_t cap);

}  // namespace rvt::util

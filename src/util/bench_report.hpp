// Machine-readable bench reports (BENCH_<ID>.json) with a validated
// schema.
//
// Every experiment harness dumps one JSON report so perf can be tracked
// PR over PR. Historically each bench appended ad-hoc keys, so the
// reports drifted apart and a malformed row (wrong arity, duplicate key)
// vanished silently into the artifact. This module makes the report a
// library type with WRITE-TIME VALIDATION — a malformed report throws,
// which fails the bench — and factors the shared engine-comparison
// schema so E1/E10/E11 emit the same keys:
//
//   schema_version                                 report format version
//                                                  (emitted always; see
//                                                  kBenchReportSchemaVersion)
//   workload, agents                               measured predicate + k
//                                                  (required, see below)
//   shards                                         optional: shard count of
//                                                  a distributed run (>= 1)
//   compiled_seconds, reference_seconds, speedup   the shoot-out
//   compiled_repeats, reference_repeats            min-of-N settings
//   engine                                         engine asserted on
//   threads                                        sweep worker count
//   simd                                           batched-stepper path
//   orbit_cache_hits / _misses / _hit_rate         cache telemetry
//
// Lives in util (not bench/) so the validation rules are unit-testable
// like any library code.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace rvt::util {

/// Version of the report schema this library writes, emitted as every
/// report's "schema_version" field. History: 1 = the PR 3/4 schema
/// (workload/agents required, engine-comparison keys); 2 = adds the
/// always-on schema_version field itself and the optional validated
/// "shards" field of distributed runs; 3 = adds the optional validated
/// "faults" block of chaos runs (scenario seed + injected/retried/
/// degraded/requeued/quarantined counters); 4 = adds the optional
/// validated "service" block of network-dispatched runs (runner count,
/// lease churn, journal bytes streamed, time-to-first-sealed-shard);
/// 5 = adds the optional validated "recovery" block of crash-recovery
/// runs (coordinator resumes, ledger records replayed, re-granted
/// leases, fenced stale tokens, worker reconnects);
/// 6 = adds the optional validated "observability" block (time to first
/// survivor, inter-result delay quantiles, trace bytes flushed, events
/// dropped by the trace rings).
/// Reports WITHOUT a given field remain valid documents of the version
/// that lacked it — consumers treat missing optional fields as "not a
/// run of that kind", so no committed BENCH_E*.json artifact needs
/// regeneration.
inline constexpr std::uint64_t kBenchReportSchemaVersion = 6;

/// The optional "faults" block of a chaos run (bench E14): which seeded
/// fault scenario was injected and what the recovery machinery did
/// about it. A fault-free report simply omits the block.
struct FaultSummary {
  std::string scenario;           ///< chaos scenario name ("none", ...)
  std::uint64_t seed = 0;         ///< scenario seed (reproducibility)
  std::uint64_t injected = 0;     ///< faults fired (failpoint registry)
  std::uint64_t retried = 0;      ///< transient IO re-attempts
  std::uint64_t degraded = 0;     ///< stores that entered compute-through
  std::uint64_t requeued = 0;     ///< shard attempts retried
  std::uint64_t quarantined = 0;  ///< shards given up on
};

/// The optional "service" block of a network-dispatched run (bench E15):
/// what the coordinator's lease machinery did across the fleet. A
/// non-service run simply omits the block.
struct ServiceSummary {
  std::uint64_t runners = 0;  ///< worker sessions the coordinator saw
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t requeues = 0;     ///< shard ranges sent back to pending
  std::uint64_t quarantined = 0;  ///< shards given up on
  std::uint64_t journal_bytes_streamed = 0;
  double time_to_first_sealed_shard_seconds = 0;
};

/// The optional "recovery" block of a crash-recovery run (bench E16):
/// what `serve --resume` reconstructed and what the fleet did to heal
/// around the coordinator restarts. A run without restarts simply omits
/// the block.
struct RecoverySummary {
  std::uint64_t resumes = 0;  ///< coordinator --resume restarts observed
  std::uint64_t ledger_records_replayed = 0;
  std::uint64_t ledger_torn_bytes_truncated = 0;
  std::uint64_t leases_regranted = 0;     ///< pre-crash leases re-granted
  std::uint64_t stale_tokens_fenced = 0;  ///< pre-crash tokens refused
  std::uint64_t worker_reconnects = 0;    ///< sessions re-established
};

/// The optional "observability" block: enumeration-complexity metrics
/// (the paper's result-delay lens) plus trace-recorder accounting. A
/// run that recorded no results simply omits the block.
struct ObservabilitySummary {
  /// Milliseconds to the first survivor (value == 0 result); -1 when
  /// the workload produced none — for the zero-defeat batteries every
  /// instance is defeated, and that absence is the measured fact.
  double time_to_first_survivor_ms = -1;
  double inter_result_delay_p50_ms = 0;  ///< bucket-resolution quantile
  double inter_result_delay_p99_ms = 0;
  std::uint64_t results = 0;    ///< enumeration results observed
  std::uint64_t survivors = 0;  ///< results with value == 0
  std::uint64_t trace_bytes = 0;     ///< bytes flushed to the trace file
  std::uint64_t dropped_events = 0;  ///< ring overwrites before flush
};

class BenchReport {
 public:
  /// `seed` is recorded as the report's "seed" field.
  BenchReport(std::string id, std::uint64_t seed);

  /// REQUIRED schema fields: the certified predicate the report measures
  /// ("rendezvous", "gathering", ...) and the number of agents per query
  /// (k; for a report spanning several arities, the largest one — rows
  /// carry the per-battery k). Emitted as the "workload" and "agents"
  /// keys; validate() rejects a report that never declared them, so every
  /// BENCH_E*.json artifact records what workload its numbers price.
  void workload(const std::string& name, std::uint64_t agents);

  /// OPTIONAL schema field: how many shards a distributed run was
  /// partitioned into (>= 1; validate() rejects a declared 0 — an
  /// undeclared report simply omits the key, so every pre-distribution
  /// BENCH_E*.json stays valid).
  void shards(std::uint64_t count);

  /// OPTIONAL schema field: the "faults" block of a chaos run.
  /// validate() rejects an empty scenario name — an undeclared report
  /// omits the block entirely.
  void faults(const FaultSummary& f);

  /// OPTIONAL schema field: the "service" block of a network-dispatched
  /// run. validate() rejects a declared block with zero runners (a
  /// service run that saw no workers measured nothing) — an undeclared
  /// report omits the block entirely.
  void service(const ServiceSummary& s);

  /// OPTIONAL schema field: the "recovery" block of a crash-recovery
  /// run. validate() rejects a declared block with zero resumes (a
  /// recovery run that never resumed a coordinator measured nothing) —
  /// an undeclared report omits the block entirely.
  void recovery(const RecoverySummary& r);

  /// OPTIONAL schema field: the "observability" block. validate()
  /// rejects a declared block with zero results (an enumeration that
  /// observed nothing measured nothing) or non-finite delay fields —
  /// an undeclared report omits the block entirely.
  void observability(const ObservabilitySummary& o);

  /// Scalar metric. Keys must be unique across metric() and note().
  void metric(const std::string& key, double value);
  /// String annotation. Keys must be unique across metric() and note().
  void note(const std::string& key, const std::string& value);
  /// Attaches the printed table; rows are validated against its header.
  void table(const util::Table& t) { table_ = &t; }

  /// Writes BENCH_<ID>.json in the working directory; returns the path.
  /// Validates first and throws std::runtime_error on a malformed report
  /// — empty id, empty or duplicate key, non-finite metric, or a table
  /// row whose arity differs from the header — and if the file cannot be
  /// written: a missing or malformed perf artifact must fail the bench,
  /// not vanish silently.
  std::string write() const;

  /// The validation half of write(), exposed for tests and for benches
  /// that want to fail fast before the timed phases.
  void validate() const;

 private:
  std::string id_;
  std::uint64_t seed_;
  std::string workload_;       ///< empty until workload() declares it
  std::uint64_t agents_ = 0;   ///< 0 until workload() declares it
  bool has_shards_ = false;    ///< shards() declared
  std::uint64_t shards_ = 0;
  bool has_faults_ = false;    ///< faults() declared
  FaultSummary faults_;
  bool has_service_ = false;   ///< service() declared
  ServiceSummary service_;
  bool has_recovery_ = false;  ///< recovery() declared
  RecoverySummary recovery_;
  bool has_observability_ = false;  ///< observability() declared
  ObservabilitySummary observability_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<std::pair<std::string, double>> numbers_;
  const util::Table* table_ = nullptr;
};

/// The shared engine-shoot-out schema. Benches fill one of these and call
/// add_engine_comparison() so every report lands the same keys.
struct EngineComparison {
  double compiled_seconds = 0;
  double reference_seconds = 0;
  int compiled_repeats = 1;   ///< min-of-N repeats of the compiled side
  int reference_repeats = 1;  ///< min-of-N repeats of the reference side
  std::string engine;         ///< engine the bench asserted on
  unsigned threads = 1;       ///< sweep worker count of the timed phase
  std::string simd;           ///< sim::simd_path_name() at run time
  std::uint64_t orbit_cache_hits = 0;
  std::uint64_t orbit_cache_misses = 0;
};

/// Emits the standardized keys (speedup and hit rate are derived here so
/// every bench computes them identically).
void add_engine_comparison(BenchReport& report, const EngineComparison& c);

}  // namespace rvt::util

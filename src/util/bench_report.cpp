#include "util/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

namespace rvt::util {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_string_array(std::ostream& os,
                        const std::vector<std::string>& cells) {
  os << "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << (i ? ", " : "") << quote(cells[i]);
  }
  os << "]";
}

}  // namespace

BenchReport::BenchReport(std::string id, std::uint64_t seed)
    : id_(std::move(id)), seed_(seed) {}

void BenchReport::workload(const std::string& name, std::uint64_t agents) {
  workload_ = name;
  agents_ = agents;
}

void BenchReport::shards(std::uint64_t count) {
  has_shards_ = true;
  shards_ = count;
}

void BenchReport::faults(const FaultSummary& f) {
  has_faults_ = true;
  faults_ = f;
}

void BenchReport::service(const ServiceSummary& s) {
  has_service_ = true;
  service_ = s;
}

void BenchReport::recovery(const RecoverySummary& r) {
  has_recovery_ = true;
  recovery_ = r;
}

void BenchReport::observability(const ObservabilitySummary& o) {
  has_observability_ = true;
  observability_ = o;
}

void BenchReport::metric(const std::string& key, double value) {
  numbers_.emplace_back(key, value);
}

void BenchReport::note(const std::string& key, const std::string& value) {
  strings_.emplace_back(key, value);
}

void BenchReport::validate() const {
  if (id_.empty()) {
    throw std::runtime_error("BenchReport: empty id");
  }
  if (workload_.empty() || agents_ == 0) {
    throw std::runtime_error(
        "BenchReport " + id_ +
        ": workload() must declare the measured predicate and its agent "
        "count (the shared schema's \"workload\"/\"agents\" fields)");
  }
  if (has_shards_ && shards_ == 0) {
    throw std::runtime_error(
        "BenchReport " + id_ +
        ": shards() must declare a positive shard count (omit the call "
        "for non-distributed runs)");
  }
  if (has_faults_ && faults_.scenario.empty()) {
    throw std::runtime_error(
        "BenchReport " + id_ +
        ": faults() must name its chaos scenario (omit the call for "
        "fault-free runs)");
  }
  if (has_service_ && service_.runners == 0) {
    throw std::runtime_error(
        "BenchReport " + id_ +
        ": service() must report at least one runner (omit the call for "
        "non-service runs)");
  }
  if (has_service_ &&
      !std::isfinite(service_.time_to_first_sealed_shard_seconds)) {
    throw std::runtime_error(
        "BenchReport " + id_ +
        ": service() time_to_first_sealed_shard_seconds is not finite");
  }
  if (has_recovery_ && recovery_.resumes == 0) {
    throw std::runtime_error(
        "BenchReport " + id_ +
        ": recovery() must report at least one coordinator resume (omit "
        "the call for runs without restarts)");
  }
  if (has_observability_) {
    if (observability_.results == 0) {
      throw std::runtime_error(
          "BenchReport " + id_ +
          ": observability() must report at least one enumeration result "
          "(omit the call for runs that observed nothing)");
    }
    if (!std::isfinite(observability_.time_to_first_survivor_ms) ||
        !std::isfinite(observability_.inter_result_delay_p50_ms) ||
        !std::isfinite(observability_.inter_result_delay_p99_ms)) {
      throw std::runtime_error(
          "BenchReport " + id_ +
          ": observability() delay fields must be finite");
    }
  }
  std::unordered_set<std::string> keys{
      "id",      "seed",     "columns",       "rows",
      "workload", "agents",  "shards",        "faults",
      "service", "recovery", "observability", "schema_version"};
  const auto claim = [&](const std::string& key) {
    if (key.empty()) {
      throw std::runtime_error("BenchReport " + id_ + ": empty key");
    }
    if (!keys.insert(key).second) {
      throw std::runtime_error("BenchReport " + id_ + ": duplicate key '" +
                               key + "'");
    }
  };
  for (const auto& [k, v] : strings_) claim(k);
  for (const auto& [k, v] : numbers_) {
    claim(k);
    if (!std::isfinite(v)) {
      throw std::runtime_error("BenchReport " + id_ + ": metric '" + k +
                               "' is not finite");
    }
  }
  if (table_ != nullptr) {
    const std::size_t width = table_->header().size();
    for (std::size_t i = 0; i < table_->row_data().size(); ++i) {
      if (table_->row_data()[i].size() != width) {
        throw std::runtime_error(
            "BenchReport " + id_ + ": row " + std::to_string(i) + " has " +
            std::to_string(table_->row_data()[i].size()) + " cells, header " +
            std::to_string(width));
      }
    }
  }
}

std::string BenchReport::write() const {
  validate();
  const std::string path = "BENCH_" + id_ + ".json";
  std::ofstream os(path);
  os << "{\n  \"id\": " << quote(id_) << ",\n  \"seed\": " << seed_;
  os << ",\n  \"schema_version\": " << kBenchReportSchemaVersion;
  os << ",\n  \"workload\": " << quote(workload_)
     << ",\n  \"agents\": " << agents_;
  if (has_shards_) os << ",\n  \"shards\": " << shards_;
  if (has_faults_) {
    os << ",\n  \"faults\": {\n    \"scenario\": " << quote(faults_.scenario)
       << ",\n    \"seed\": " << faults_.seed
       << ",\n    \"injected\": " << faults_.injected
       << ",\n    \"retried\": " << faults_.retried
       << ",\n    \"degraded\": " << faults_.degraded
       << ",\n    \"requeued\": " << faults_.requeued
       << ",\n    \"quarantined\": " << faults_.quarantined << "\n  }";
  }
  if (has_service_) {
    os << ",\n  \"service\": {\n    \"runners\": " << service_.runners
       << ",\n    \"leases_granted\": " << service_.leases_granted
       << ",\n    \"leases_expired\": " << service_.leases_expired
       << ",\n    \"requeues\": " << service_.requeues
       << ",\n    \"quarantined\": " << service_.quarantined
       << ",\n    \"journal_bytes_streamed\": "
       << service_.journal_bytes_streamed
       << ",\n    \"time_to_first_sealed_shard_seconds\": "
       << format_number(service_.time_to_first_sealed_shard_seconds)
       << "\n  }";
  }
  if (has_recovery_) {
    os << ",\n  \"recovery\": {\n    \"resumes\": " << recovery_.resumes
       << ",\n    \"ledger_records_replayed\": "
       << recovery_.ledger_records_replayed
       << ",\n    \"ledger_torn_bytes_truncated\": "
       << recovery_.ledger_torn_bytes_truncated
       << ",\n    \"leases_regranted\": " << recovery_.leases_regranted
       << ",\n    \"stale_tokens_fenced\": " << recovery_.stale_tokens_fenced
       << ",\n    \"worker_reconnects\": " << recovery_.worker_reconnects
       << "\n  }";
  }
  if (has_observability_) {
    os << ",\n  \"observability\": {\n    \"time_to_first_survivor_ms\": "
       << format_number(observability_.time_to_first_survivor_ms)
       << ",\n    \"inter_result_delay_p50_ms\": "
       << format_number(observability_.inter_result_delay_p50_ms)
       << ",\n    \"inter_result_delay_p99_ms\": "
       << format_number(observability_.inter_result_delay_p99_ms)
       << ",\n    \"results\": " << observability_.results
       << ",\n    \"survivors\": " << observability_.survivors
       << ",\n    \"trace_bytes\": " << observability_.trace_bytes
       << ",\n    \"dropped_events\": " << observability_.dropped_events
       << "\n  }";
  }
  for (const auto& [k, v] : strings_) {
    os << ",\n  " << quote(k) << ": " << quote(v);
  }
  for (const auto& [k, v] : numbers_) {
    os << ",\n  " << quote(k) << ": " << format_number(v);
  }
  if (table_ != nullptr) {
    os << ",\n  \"columns\": ";
    write_string_array(os, table_->header());
    os << ",\n  \"rows\": [";
    const auto& rows = table_->row_data();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      os << (i ? ",\n    " : "\n    ");
      write_string_array(os, rows[i]);
    }
    os << "\n  ]";
  }
  os << "\n}\n";
  os.flush();
  if (!os.good()) {
    throw std::runtime_error("BenchReport: cannot write " + path);
  }
  return path;
}

void add_engine_comparison(BenchReport& report, const EngineComparison& c) {
  report.metric("compiled_seconds", c.compiled_seconds);
  report.metric("reference_seconds", c.reference_seconds);
  report.metric("speedup", c.compiled_seconds > 0
                               ? c.reference_seconds / c.compiled_seconds
                               : 0.0);
  report.metric("compiled_repeats", c.compiled_repeats);
  report.metric("reference_repeats", c.reference_repeats);
  report.note("engine", c.engine);
  report.metric("threads", c.threads);
  report.note("simd", c.simd);
  report.metric("orbit_cache_hits", static_cast<double>(c.orbit_cache_hits));
  report.metric("orbit_cache_misses",
                static_cast<double>(c.orbit_cache_misses));
  const std::uint64_t total = c.orbit_cache_hits + c.orbit_cache_misses;
  report.metric("orbit_cache_hit_rate",
                total == 0 ? 0.0
                           : static_cast<double>(c.orbit_cache_hits) /
                                 static_cast<double>(total));
}

}  // namespace rvt::util

#include "util/primes.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rvt::util {

bool is_prime(std::uint64_t x) {
  if (x < 2) return false;
  if (x < 4) return true;
  if (x % 2 == 0) return false;
  for (std::uint64_t d = 3; d * d <= x; d += 2) {
    if (x % d == 0) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t x) {
  std::uint64_t c = x + 1;
  while (!is_prime(c)) ++c;
  return c;
}

std::uint64_t nth_prime(std::size_t i) {
  if (i == 0) throw std::invalid_argument("nth_prime is 1-indexed");
  if (i < 64) {
    std::uint64_t p = 2;
    for (std::size_t k = 1; k < i; ++k) p = next_prime(p);
    return p;
  }
  // Sieve with the standard p_i upper bound i(ln i + ln ln i) for i >= 6.
  const double di = static_cast<double>(i);
  const double bound = di * (std::log(di) + std::log(std::log(di))) + 16.0;
  std::vector<std::uint64_t> ps =
      primes_up_to(static_cast<std::uint64_t>(bound));
  while (ps.size() < i) {  // defensive: extend by search if estimate short
    ps.push_back(next_prime(ps.back()));
  }
  return ps[i - 1];
}

std::vector<std::uint64_t> primes_up_to(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  if (n < 2) return out;
  std::vector<bool> composite(static_cast<std::size_t>(n) + 1, false);
  for (std::uint64_t p = 2; p <= n; ++p) {
    if (composite[static_cast<std::size_t>(p)]) continue;
    out.push_back(p);
    for (std::uint64_t q = p * p; q <= n; q += p) {
      composite[static_cast<std::size_t>(q)] = true;
    }
  }
  return out;
}

std::size_t prime_count_up_to(std::uint64_t x) {
  return primes_up_to(x).size();
}

}  // namespace rvt::util

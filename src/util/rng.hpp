// Deterministic random number generation.
//
// Every randomized test, example, and bench in the repo routes randomness
// through Rng so that a printed seed fully reproduces a run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace rvt::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  bool coin() { return uniform(0, 1) == 1; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace rvt::util

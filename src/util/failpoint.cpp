#include "util/failpoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace rvt::util {

namespace {

/// splitmix64 — the per-hit coin of prob triggers. Keyed on (seed, hit)
/// only, so a scenario seed replays bit-identically.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Trigger {
  enum Kind { kAlways, kHit, kProb } kind = kAlways;
  std::uint64_t first = 1;  ///< kHit: first firing hit (1-based)
  std::uint64_t count = 1;  ///< kHit: consecutive firing hits
  bool forever = false;     ///< kHit: fire on every hit >= first
  double p = 0.0;           ///< kProb
  std::uint64_t seed = 0;   ///< kProb

  bool fires(std::uint64_t hit) const {
    switch (kind) {
      case kAlways:
        return true;
      case kHit:
        return hit >= first && (forever || hit - first < count);
      case kProb:
        return static_cast<double>(splitmix64(seed ^ (hit * 0x2545f4914f6cdd1dull))) <
               p * 18446744073709551616.0;  // 2^64
    }
    return false;
  }
};

struct Site {
  FaultAction action = FaultAction::kNone;
  Trigger trigger;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

/// Strict u64 parse of a whole token.
std::uint64_t parse_u64(const std::string& tok, const std::string& what) {
  std::size_t end = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(tok, &end, 10);
  } catch (const std::exception&) {
    end = 0;
  }
  if (end == 0 || end != tok.size()) {
    throw std::invalid_argument("failpoint: bad " + what + " '" + tok + "'");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

Trigger parse_trigger(const std::string& text) {
  Trigger t;
  if (text == "always") {
    t.kind = Trigger::kAlways;
    return t;
  }
  if (text.rfind("hit:", 0) == 0) {
    const std::vector<std::string> parts = split(text.substr(4), ':');
    if (parts.empty() || parts.size() > 2) {
      throw std::invalid_argument("failpoint: bad hit trigger '" + text + "'");
    }
    t.kind = Trigger::kHit;
    t.first = parse_u64(parts[0], "hit index");
    if (t.first == 0) {
      throw std::invalid_argument("failpoint: hit index is 1-based");
    }
    if (parts.size() == 2) {
      if (parts[1] == "*") {
        t.forever = true;
      } else {
        t.count = parse_u64(parts[1], "hit count");
        if (t.count == 0) {
          throw std::invalid_argument("failpoint: hit count must be >= 1");
        }
      }
    }
    return t;
  }
  if (text.rfind("prob:", 0) == 0) {
    const std::vector<std::string> parts = split(text.substr(5), ':');
    if (parts.size() != 2) {
      throw std::invalid_argument("failpoint: prob trigger needs p and seed");
    }
    t.kind = Trigger::kProb;
    std::size_t end = 0;
    try {
      t.p = std::stod(parts[0], &end);
    } catch (const std::exception&) {
      end = 0;
    }
    if (end != parts[0].size() || !(t.p > 0.0) || t.p > 1.0) {
      throw std::invalid_argument("failpoint: prob p must be in (0, 1]");
    }
    t.seed = parse_u64(parts[1], "prob seed");
    return t;
  }
  throw std::invalid_argument("failpoint: unknown trigger '" + text + "'");
}

std::map<std::string, Site> parse_config(const std::string& config) {
  std::map<std::string, Site> sites;
  for (const std::string& clause : split(config, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint: clause '" + clause +
                                  "' is not site=action@trigger");
    }
    const std::string site = clause.substr(0, eq);
    const std::string spec = clause.substr(eq + 1);
    const std::size_t at = spec.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("failpoint: spec '" + spec +
                                  "' is not action@trigger");
    }
    const std::string action = spec.substr(0, at);
    Site s;
    if (action == "err") {
      s.action = FaultAction::kError;
    } else if (action == "crash") {
      s.action = FaultAction::kCrash;
    } else {
      throw std::invalid_argument("failpoint: unknown action '" + action +
                                  "' (err | crash)");
    }
    s.trigger = parse_trigger(spec.substr(at + 1));
    if (!sites.emplace(site, s).second) {
      throw std::invalid_argument("failpoint: duplicate site '" + site + "'");
    }
  }
  return sites;
}

struct State {
  std::mutex mu;
  std::map<std::string, Site> sites;
};

State& state() {
  static State s;
  return s;
}

}  // namespace

FailPointRegistry& FailPointRegistry::instance() {
  static FailPointRegistry r;
  return r;
}

void FailPointRegistry::configure(const std::string& config) {
  std::map<std::string, Site> parsed = parse_config(config);  // may throw
  State& st = state();
  const std::lock_guard<std::mutex> lk(st.mu);
  st.sites = std::move(parsed);
  detail::g_failpoints_armed.store(!st.sites.empty(),
                                   std::memory_order_relaxed);
}

void FailPointRegistry::configure_from_env() {
  const char* env = std::getenv("RVT_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    configure(env);
  }
}

void FailPointRegistry::reset() {
  State& st = state();
  const std::lock_guard<std::mutex> lk(st.mu);
  st.sites.clear();
  detail::g_failpoints_armed.store(false, std::memory_order_relaxed);
}

FaultAction FailPointRegistry::evaluate(std::string_view site) {
  State& st = state();
  const std::lock_guard<std::mutex> lk(st.mu);
  const auto it = st.sites.find(std::string(site));
  if (it == st.sites.end()) return FaultAction::kNone;
  Site& s = it->second;
  ++s.hits;
  if (!s.trigger.fires(s.hits)) return FaultAction::kNone;
  ++s.fired;
  return s.action;
}

std::vector<FailPointRegistry::SiteStats> FailPointRegistry::stats() const {
  State& st = state();
  const std::lock_guard<std::mutex> lk(st.mu);
  std::vector<SiteStats> out;
  out.reserve(st.sites.size());
  for (const auto& [name, site] : st.sites) {
    out.push_back({name, site.hits, site.fired});
  }
  return out;
}

std::uint64_t FailPointRegistry::total_fired() const {
  State& st = state();
  const std::lock_guard<std::mutex> lk(st.mu);
  std::uint64_t total = 0;
  for (const auto& [name, site] : st.sites) total += site.fired;
  return total;
}

void failpoint_crash(std::string_view site) {
  std::fprintf(stderr, "failpoint: crash at %.*s\n",
               static_cast<int>(site.size()), site.data());
  std::fflush(nullptr);
  ::_exit(kFailpointCrashExitCode);
}

bool failpoint_error(std::string_view site) {
  const FaultAction a = failpoint(site);
  if (a == FaultAction::kCrash) failpoint_crash(site);
  return a == FaultAction::kError;
}

}  // namespace rvt::util

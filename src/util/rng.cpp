#include "util/rng.hpp"

// Rng is header-only today; this TU anchors the library target and keeps a
// home for future out-of-line distributions.

// Plain-text table printer for the experiment harnesses.
//
// Each bench binary prints the rows/series of the experiment it reproduces
// (EXPERIMENTS.md maps them to the paper's claims). Tables are aligned,
// machine-grepable (single header line, pipe-separated), and need no deps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rvt::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: renders each value with operator<< via to_cell().
  template <typename... Ts>
  void row(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Raw cells, for machine-readable exports (bench JSON reports).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  static std::string to_cell(double v);
  template <typename T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rvt::util

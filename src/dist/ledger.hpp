// The coordinator's write-ahead run ledger.
//
// Shard journals make the DATA of a campaign durable (which indices are
// committed, with what values). The ledger makes the CONTROL STATE
// durable: every lease grant, attempt failure, seal, quarantine and
// running-merge checkpoint is appended here — and fsynced — BEFORE the
// reply that announces it leaves the coordinator. A coordinator killed
// at any instant can therefore be restarted with `serve --resume` and
// reconstruct exactly which shards were out on lease, how many attempts
// each has burned, and what token generation is stale, without guessing
// from journal bytes alone.
//
// The file reuses the journal record discipline (dist/journal): a
// 64-byte self-checksummed preamble binding the ledger to the plan
// (fingerprint + shard count), then fixed-size 32-byte records, each
// carrying its own checksum. Recovery is the same single forward scan —
// the valid prefix ends at the first torn or corrupt record, and a
// resume truncates the torn tail before appending (a SIGKILL between
// fwrite and fsync loses at most the record being appended, which by
// the write-ahead rule was never acknowledged to anyone).
//
// Authority is split, never merged by guesswork:
//  * journals are authoritative for committed DATA — the ledger's
//    kCheckpoint records are cross-checks, not the source of truth;
//  * the ledger is authoritative for CONTROL — a kSeal here without a
//    sealed journal on disk, or a checkpoint ahead of what the journals
//    hold, means the data half lost fsynced history and the resume
//    REFUSES rather than silently recomputing (see
//    Coordinator's resume path and DESIGN.md "Campaign durability").
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/shard_plan.hpp"

namespace rvt::dist {

/// Binds a ledger to its campaign; serialized into the preamble.
struct LedgerHeader {
  ShardId fingerprint;            ///< plan fingerprint (workload + schema)
  std::uint64_t shard_count = 0;  ///< shards in the plan
};

/// One durable control-state transition. The two operands are
/// event-specific (see LedgerEvent).
enum class LedgerEvent : std::uint32_t {
  kEpoch = 1,       ///< coordinator start: a = epoch, b = first fresh token
  kGrant = 2,       ///< lease granted:     a = shard index, b = token
  kFail = 3,        ///< attempt failed:    a = shard index, b = attempts used
  kSeal = 4,        ///< shard sealed:      a = shard index, b = sealed sum
  kQuarantine = 5,  ///< shard given up on: a = shard index, b = attempts used
  kCheckpoint = 6,  ///< merge progress:    a = committed indices, b = defeats
};

struct LedgerRecord {
  LedgerEvent event = LedgerEvent::kEpoch;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Result of scanning a ledger file.
struct LedgerState {
  LedgerHeader header;
  std::vector<LedgerRecord> records;  ///< the valid prefix, in order
  std::uint64_t valid_bytes = 0;      ///< prefix a resume may append after
  std::uint64_t file_bytes = 0;       ///< actual size (torn tail included)
};

/// Canonical ledger filename under the journal directory.
std::string ledger_path(const std::string& dir);

/// Scans `path`. Returns nullopt if the file does not exist; throws
/// SerializeError if the preamble is missing/corrupt (the ledger is
/// unusable). Record-level damage is NOT an error: the scan stops at
/// the first bad record and reports the valid prefix — the torn-tail
/// contract of shard journals, unchanged.
std::optional<LedgerState> read_ledger(const std::string& path);

/// Appender. Unlike journals the ledger has no per-record ordering
/// constraint — it is a log of events in the order they were decided —
/// but every append is fsynced before returning: append() returning IS
/// the durability point the write-ahead rule relies on.
class LedgerWriter {
 public:
  /// Creates/overwrites `path` with a fresh preamble.
  static LedgerWriter create(const std::string& path,
                             const LedgerHeader& header);
  /// Opens `path` for appending after state.valid_bytes, truncating the
  /// torn tail first. Throws SerializeError on a header mismatch (a
  /// ledger from a different campaign must never be extended).
  static LedgerWriter resume(const std::string& path,
                             const LedgerHeader& header,
                             const LedgerState& state);

  LedgerWriter(LedgerWriter&&) = default;
  LedgerWriter& operator=(LedgerWriter&&) = default;

  /// Appends one record, fsynced. Throws SerializeError on IO failure.
  /// Failpoint site "ledger.append": crash tears a partial record (the
  /// tail a resume must truncate), err throws.
  void append(const LedgerRecord& rec);

 private:
  LedgerWriter() = default;

  std::string path_;
  struct FileCloser {
    void operator()(std::FILE* f) const;
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
};

}  // namespace rvt::dist

// Binary serialization for the distributed-enumeration subsystem.
//
// Every artifact that crosses a process (or machine) boundary — published
// OrbitSets on the shared-filesystem cache tier, shard plans, shard
// journals — is written in one framed wire format:
//
//     [ WireHeader | payload bytes ]
//
// with a 32-byte header carrying magic, format version, payload kind,
// payload length and a 64-bit FNV-1a checksum of the payload. Readers
// refuse wrong magic/kind, a version they do not speak, a length that
// disagrees with the file, and a checksum mismatch — a torn or corrupted
// artifact must surface as a SerializeError (or a cache-tier miss), never
// as silently wrong verdict data. Integers are fixed-width little-endian;
// the codec asserts a little-endian host (every deployment target is).
//
// OrbitSet payloads round-trip EXACTLY: the deserialized set binds its
// orbits into contiguous arenas (sim/orbit_buf.hpp) just like
// snapshot_orbits() builds them, so adopting a deserialized set via
// rebind_adopted() is indistinguishable from adopting a locally published
// one — which is what makes a directory of these files a cross-machine
// orbit-cache tier (FsOrbitStore): files are named by the 32-hex-digit
// content key and published via write-temp + atomic rename, the same
// claim/publish discipline the in-memory cache uses, extended to the
// filesystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/compiled.hpp"
#include "sim/orbit_cache.hpp"
#include "util/retry.hpp"

namespace rvt::dist {

/// Format version of every framed artifact. Bump on ANY layout change:
/// readers refuse other versions outright (cross-version artifacts are
/// regenerated, never migrated — they are caches and checkpoints, not
/// data of record).
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint32_t kWireMagic = 0x52565457;  // "RVTW"

enum class WireKind : std::uint16_t {
  kOrbitSet = 1,
  kShardPlan = 2,
  kJournal = 3,
  kQuarantine = 4,  ///< quarantine manifest (dist/merge.hpp)
  // Service-tier messages (svc/protocol.hpp), one frame per message on a
  // coordinator <-> runner TCP session. Requests and their replies share
  // a kind; kError may answer any request.
  kHello = 5,         ///< version negotiation + plan binding
  kLeaseRequest = 6,  ///< runner asks for a shard range
  kLeaseGrant = 7,    ///< lease / wait / drained reply
  kHeartbeat = 8,     ///< liveness probe + lease validity check
  kJournalChunk = 9,  ///< streamed journal records (growth = heartbeat)
  kSeal = 10,         ///< runner declares its leased shard complete
  kError = 11,        ///< refusal with a machine-readable code
  kOrbitGet = 12,     ///< remote orbit store: load by content key
  kOrbitPut = 13,     ///< remote orbit store: best-effort publish
  kLedger = 14,       ///< coordinator write-ahead run ledger (dist/ledger.hpp)
  kTraceChunk = 15,   ///< flushed span/event trace batch (obs/trace.hpp)
};

struct SerializeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Cross-version refusal, distinct from corruption: the magic matched
/// and the header is intact, but it claims a format version this build
/// does not speak. A network handshake needs the distinction — an
/// incompatible peer is reported and upgraded, damaged bytes are
/// quarantined and retried. Subclasses SerializeError so every existing
/// refuse-and-miss path handles it unchanged.
struct WireVersionError : SerializeError {
  using SerializeError::SerializeError;
};

/// FNV-1a over a byte range — the payload checksum of the wire header
/// and the per-record checksum of shard journals.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// Append-only little-endian byte sink.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void raw(const void* p, std::size_t n);
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s);
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a byte range; any read past the end (or a
/// malformed length prefix) throws SerializeError.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : b_(bytes) {}
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  void raw(void* p, std::size_t n);
  std::string str();
  std::size_t remaining() const { return b_.size() - pos_; }
  void expect_end() const;

 private:
  std::span<const std::uint8_t> b_;
  std::size_t pos_ = 0;
};

/// Wraps `payload` in the versioned, checksummed frame.
std::vector<std::uint8_t> frame_payload(WireKind kind,
                                        std::span<const std::uint8_t> payload);

/// Size of the frame header that precedes every payload.
inline constexpr std::size_t kWireFrameBytes = 32;

/// Hard ceiling on any framed payload this build will read — file or
/// socket. Checked BEFORE a reader trusts the length field for anything
/// (allocation, stream reads): a forged or foreign length must refuse
/// cheaply, never drive a multi-gigabyte allocation ahead of the
/// checksum that would have caught it.
inline constexpr std::uint64_t kMaxWirePayloadBytes = std::uint64_t{1}
                                                      << 30;

/// The header's validated claims about the payload that follows it.
struct FrameInfo {
  WireKind kind;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
};

/// Validates the first kWireFrameBytes of a framed artifact or stream:
/// magic, version, reserved bytes, and the kMaxWirePayloadBytes guard —
/// everything checkable before a reader commits to the payload. Throws
/// WireVersionError for a foreign version, SerializeError otherwise.
/// Kind and checksum are the CALLER's checks (only it knows what kind it
/// expects, and the checksum needs the payload bytes).
FrameInfo validate_frame_header(std::span<const std::uint8_t> header);

/// Validates the frame (magic, version, kind, length, checksum) and
/// returns the payload view into `file`. Throws WireVersionError for a
/// foreign format version, SerializeError for everything else.
std::span<const std::uint8_t> unframe_payload(
    WireKind kind, std::span<const std::uint8_t> file);

// ---- OrbitSet codec -------------------------------------------------------

/// Payload (NOT framed) for one published OrbitSet; exact round-trip.
std::vector<std::uint8_t> serialize_orbit_set(
    const sim::CompiledConfigEngine::OrbitSet& set);

/// Inverse of serialize_orbit_set over a frame-validated payload; the
/// returned set's orbits are bound into freshly built contiguous arenas.
/// Throws SerializeError on any structural violation (lengths that do
/// not add up, truncation, index out of range).
std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>
deserialize_orbit_set(std::span<const std::uint8_t> payload);

// ---- file helpers ---------------------------------------------------------

/// Writes bytes to `path` via a unique temp file in the same directory +
/// atomic rename — readers see the old file or the complete new one,
/// never a prefix. Returns false on any IO failure (nothing is left at
/// `path` that wasn't there).
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Whole file, or nullopt if it cannot be read.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

// ---- the filesystem cache tier --------------------------------------------

/// 32-hex-digit rendering of a 128-bit (hi, lo) pair — the one
/// formatter behind cache filenames, shard ids and log lines.
std::string hex128(std::uint64_t hi, std::uint64_t lo);

/// 32-hex-digit filename stem of a content key (hi then lo).
std::string orbit_key_hex(const sim::OrbitKey& key);

/// sim::OrbitStore over a directory (created on construction): one
/// framed OrbitSet file per content key, published atomically. A missing,
/// torn or corrupt file is a miss — load() never throws; store() is
/// best-effort and swallows IO errors (the in-memory tier stays
/// authoritative). Point several processes' caches at one directory (a
/// shared filesystem) and the claim/publish protocol extends across
/// machines: the first process to extract a binding publishes the file,
/// every other process adopts it.
///
/// Fault handling (the self-healing contract, exercised by bench E14):
///  * TRANSIENT failures — an existing file that cannot be read, an
///    atomic publish that fails — retry on the deterministic backoff
///    schedule of the RetryPolicy (util/retry.hpp);
///  * CORRUPT files — bytes read fine but the frame or codec refuses —
///    are renamed aside (".quarantined-<n>" suffix) instead of being
///    re-read and re-failed on every subsequent miss, and counted;
///  * PERSISTENT failure — kDegradeAfter consecutive operations
///    exhausting their retries — DEGRADES the store to compute-through:
///    every later load is a miss and every store a no-op, so the sweep
///    stays correct (each process re-extracts privately) and stops
///    paying for a dead tier. Degradation is sticky for the store's
///    lifetime; any success before the threshold resets the streak.
/// Counters are surfaced through stats()/fault_stats() into the shard
/// runner's telemetry.
class FsOrbitStore final : public sim::OrbitStore {
 public:
  explicit FsOrbitStore(std::string dir, util::RetryPolicy retry = {});

  std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet> load(
      const sim::OrbitKey& key) override;
  void store(const sim::OrbitKey& key,
             const std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>&
                 set) override;
  sim::OrbitTierFaultStats fault_stats() const override;

  /// Consecutive exhausted operations after which the store degrades.
  static constexpr std::uint64_t kDegradeAfter = 4;

  struct Stats {
    std::uint64_t loads = 0;            ///< load() calls that went to disk
    std::uint64_t read_failures = 0;    ///< existing file unreadable (pre-retry)
    std::uint64_t decode_failures = 0;  ///< frame/codec refused the bytes
    std::uint64_t quarantined = 0;      ///< corrupt files renamed aside
    std::uint64_t stores = 0;           ///< store() calls that attempted IO
    std::uint64_t store_failures = 0;   ///< publishes that exhausted retries
    std::uint64_t retries = 0;          ///< re-attempts across load + store
    std::uint64_t exhausted = 0;        ///< operations that failed every attempt
    bool degraded = false;              ///< compute-through mode entered
  };
  Stats stats() const;

  std::string path_for(const sim::OrbitKey& key) const;
  const std::string& dir() const { return dir_; }

 private:
  /// An operation exhausted its retries / succeeded: advance or reset
  /// the consecutive-failure streak that trips degradation.
  void note_exhausted();
  void note_ok();
  /// Renames a corrupt file aside; best-effort (a concurrent quarantine
  /// of the same file wins the rename race, losers count nothing).
  void quarantine(const std::string& path);

  std::string dir_;
  util::RetryPolicy retry_;
  std::atomic<std::uint64_t> loads_{0}, read_failures_{0},
      decode_failures_{0}, quarantined_{0}, stores_{0}, store_failures_{0},
      retries_{0}, exhausted_{0};
  std::atomic<std::uint64_t> failure_streak_{0};
  std::atomic<bool> degraded_{false};
};

}  // namespace rvt::dist

// Binary serialization for the distributed-enumeration subsystem.
//
// Every artifact that crosses a process (or machine) boundary — published
// OrbitSets on the shared-filesystem cache tier, shard plans, shard
// journals — is written in one framed wire format:
//
//     [ WireHeader | payload bytes ]
//
// with a 32-byte header carrying magic, format version, payload kind,
// payload length and a 64-bit FNV-1a checksum of the payload. Readers
// refuse wrong magic/kind, a version they do not speak, a length that
// disagrees with the file, and a checksum mismatch — a torn or corrupted
// artifact must surface as a SerializeError (or a cache-tier miss), never
// as silently wrong verdict data. Integers are fixed-width little-endian;
// the codec asserts a little-endian host (every deployment target is).
//
// OrbitSet payloads round-trip EXACTLY: the deserialized set binds its
// orbits into contiguous arenas (sim/orbit_buf.hpp) just like
// snapshot_orbits() builds them, so adopting a deserialized set via
// rebind_adopted() is indistinguishable from adopting a locally published
// one — which is what makes a directory of these files a cross-machine
// orbit-cache tier (FsOrbitStore): files are named by the 32-hex-digit
// content key and published via write-temp + atomic rename, the same
// claim/publish discipline the in-memory cache uses, extended to the
// filesystem.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/compiled.hpp"
#include "sim/orbit_cache.hpp"

namespace rvt::dist {

/// Format version of every framed artifact. Bump on ANY layout change:
/// readers refuse other versions outright (cross-version artifacts are
/// regenerated, never migrated — they are caches and checkpoints, not
/// data of record).
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint32_t kWireMagic = 0x52565457;  // "RVTW"

enum class WireKind : std::uint16_t {
  kOrbitSet = 1,
  kShardPlan = 2,
  kJournal = 3,
};

struct SerializeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// FNV-1a over a byte range — the payload checksum of the wire header
/// and the per-record checksum of shard journals.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// Append-only little-endian byte sink.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void raw(const void* p, std::size_t n);
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s);
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a byte range; any read past the end (or a
/// malformed length prefix) throws SerializeError.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : b_(bytes) {}
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  void raw(void* p, std::size_t n);
  std::string str();
  std::size_t remaining() const { return b_.size() - pos_; }
  void expect_end() const;

 private:
  std::span<const std::uint8_t> b_;
  std::size_t pos_ = 0;
};

/// Wraps `payload` in the versioned, checksummed frame.
std::vector<std::uint8_t> frame_payload(WireKind kind,
                                        std::span<const std::uint8_t> payload);

/// Validates the frame (magic, version, kind, length, checksum) and
/// returns the payload view into `file`. Throws SerializeError.
std::span<const std::uint8_t> unframe_payload(
    WireKind kind, std::span<const std::uint8_t> file);

// ---- OrbitSet codec -------------------------------------------------------

/// Payload (NOT framed) for one published OrbitSet; exact round-trip.
std::vector<std::uint8_t> serialize_orbit_set(
    const sim::CompiledConfigEngine::OrbitSet& set);

/// Inverse of serialize_orbit_set over a frame-validated payload; the
/// returned set's orbits are bound into freshly built contiguous arenas.
/// Throws SerializeError on any structural violation (lengths that do
/// not add up, truncation, index out of range).
std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>
deserialize_orbit_set(std::span<const std::uint8_t> payload);

// ---- file helpers ---------------------------------------------------------

/// Writes bytes to `path` via a unique temp file in the same directory +
/// atomic rename — readers see the old file or the complete new one,
/// never a prefix. Returns false on any IO failure (nothing is left at
/// `path` that wasn't there).
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Whole file, or nullopt if it cannot be read.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

// ---- the filesystem cache tier --------------------------------------------

/// 32-hex-digit rendering of a 128-bit (hi, lo) pair — the one
/// formatter behind cache filenames, shard ids and log lines.
std::string hex128(std::uint64_t hi, std::uint64_t lo);

/// 32-hex-digit filename stem of a content key (hi then lo).
std::string orbit_key_hex(const sim::OrbitKey& key);

/// sim::OrbitStore over a directory (created on construction): one
/// framed OrbitSet file per content key, published atomically. A missing,
/// torn or corrupt file is a miss — load() never throws; store() is
/// best-effort and swallows IO errors (the in-memory tier stays
/// authoritative). Point several processes' caches at one directory (a
/// shared filesystem) and the claim/publish protocol extends across
/// machines: the first process to extract a binding publishes the file,
/// every other process adopts it.
class FsOrbitStore final : public sim::OrbitStore {
 public:
  explicit FsOrbitStore(std::string dir);

  std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet> load(
      const sim::OrbitKey& key) override;
  void store(const sim::OrbitKey& key,
             const std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>&
                 set) override;

  std::string path_for(const sim::OrbitKey& key) const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace rvt::dist

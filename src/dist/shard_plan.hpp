// Deterministic, content-addressed partition of an enumeration index
// space.
//
// A shard plan splits a workload's [0, count) index range into
// contiguous shard specs. Everything is content-addressed:
//
//  * the plan FINGERPRINT hashes the workload's full content — spec
//    string, horizon, every grid's tree structure, arity, start/delay
//    tables — plus the wire schema version, so a runner handed a plan
//    built from a different battery (or by an incompatible build)
//    refuses to run instead of merging garbage;
//  * each SHARD ID hashes (fingerprint, begin, end), so journal files
//    are self-identifying: the same workload partitioned the same way
//    yields the same ids on every machine, and a journal can never be
//    merged under a plan it does not belong to.
//
// Plans serialize through the framed wire format (dist/serialize.hpp)
// and are immutable once written — `shard run` and `shard merge` both
// re-derive the workload from the plan's spec string and verify the
// fingerprint before touching any index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/serialize.hpp"
#include "dist/workload.hpp"

namespace rvt::dist {

/// 128-bit content hash (two independent FNV-1a streams, like
/// sim::OrbitKey — collisions are astronomically unlikely at any
/// realistic plan count).
struct ShardId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const ShardId&, const ShardId&) = default;
};

/// Hex form (32 digits) — journal filenames and log lines.
std::string shard_id_hex(const ShardId& id);

/// One shard: the contiguous index range [begin, end) plus its
/// content-addressed id.
struct ShardSpec {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  ShardId id;
};

struct ShardPlan {
  std::string workload_spec;  ///< EnumWorkload::parse input
  std::uint64_t count = 0;    ///< total enumeration indices
  std::uint64_t max_rounds = 0;
  ShardId fingerprint;        ///< workload content + wire schema version
  std::vector<ShardSpec> shards;  ///< contiguous partition of [0, count)
};

/// Content fingerprint of a workload under the CURRENT wire schema.
ShardId workload_fingerprint(const EnumWorkload& w);

/// Partitions the workload into `shard_count` near-even contiguous
/// shards (>= 1; capped at count). Throws std::invalid_argument on an
/// empty workload or shard_count == 0.
ShardPlan make_shard_plan(const EnumWorkload& w, unsigned shard_count);

/// Payload codec (framing is the caller's job via frame_payload /
/// unframe_payload with WireKind::kShardPlan). deserialize_plan
/// re-validates structure: spec parses, shards partition [0, count)
/// contiguously, every shard id re-derives — a tampered plan throws
/// SerializeError.
std::vector<std::uint8_t> serialize_plan(const ShardPlan& plan);
ShardPlan deserialize_plan(std::span<const std::uint8_t> payload);

/// Framed-file convenience. write_plan throws SerializeError on IO
/// failure; load_plan throws SerializeError on any validation failure.
void write_plan(const std::string& path, const ShardPlan& plan);
ShardPlan load_plan(const std::string& path);

}  // namespace rvt::dist

#include "dist/orchestrator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <stdexcept>
#include <thread>

namespace rvt::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Sealed-and-correctly-bound is the ONE success criterion — a child's
/// exit status is only diagnostics (a runner can seal and then die, and
/// a stale child can exit 0 without having sealed this plan's shard).
bool shard_sealed(const std::string& journal_dir, const ShardPlan& plan,
                  const ShardSpec& spec) {
  try {
    const std::optional<JournalState> st =
        read_journal(journal_path(journal_dir, spec));
    return st.has_value() && st->complete &&
           st->header.shard_id == spec.id &&
           st->header.fingerprint == plan.fingerprint &&
           st->header.begin == spec.begin && st->header.end == spec.end;
  } catch (const SerializeError&) {
    return false;
  }
}

std::uint64_t journal_size(const std::string& journal_dir,
                           const ShardSpec& spec) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(journal_path(journal_dir, spec), ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

struct Running {
  pid_t pid = -1;
  std::size_t shard = 0;
  unsigned attempt = 0;
  std::uint64_t last_size = 0;
  Clock::time_point last_progress;
  bool lease_expired = false;
};

}  // namespace

std::string ShardAttempt::summary() const {
  std::string s = "attempt " + std::to_string(attempt) + ": ";
  if (pid < 0) return s + "launch failed";
  s += "pid " + std::to_string(pid);
  if (lease_expired) {
    s += " lease expired (killed)";
  } else if (term_signal != 0) {
    s += " signaled " + std::to_string(term_signal);
  } else {
    s += " exited " + std::to_string(exit_code);
  }
  return s;
}

std::string ShardOutcome::diagnostics() const {
  std::string s;
  for (const ShardAttempt& a : failures) {
    if (!s.empty()) s += "; ";
    s += a.summary();
  }
  return s;
}

OrchestratorReport orchestrate(const ShardPlan& plan,
                               const OrchestratorConfig& cfg,
                               const ShardLauncher& launch) {
  if (cfg.journal_dir.empty() || cfg.max_concurrent == 0 ||
      cfg.max_attempts == 0) {
    throw std::invalid_argument(
        "orchestrate: journal_dir, max_concurrent and max_attempts are "
        "required");
  }
  std::error_code ec;
  std::filesystem::create_directories(cfg.journal_dir, ec);
  if (ec) {
    throw SerializeError("orchestrate: cannot create journal dir " +
                         cfg.journal_dir + ": " + ec.message());
  }

  OrchestratorReport report;
  report.shards.resize(plan.shards.size());
  std::deque<std::size_t> pending;
  std::vector<unsigned> attempts(plan.shards.size(), 0);
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    report.shards[i].shard_index = i;
    if (shard_sealed(cfg.journal_dir, plan, plan.shards[i])) {
      report.shards[i].completed = true;
      report.shards[i].already_complete = true;
    } else {
      pending.push_back(i);
    }
  }

  const std::vector<std::pair<std::string, std::string>> no_env;
  std::vector<Running> running;

  const auto record_failure = [&](const Running& r, int status) {
    ShardAttempt a;
    a.attempt = r.attempt;
    a.pid = r.pid;
    a.lease_expired = r.lease_expired;
    if (r.pid >= 0) {
      if (WIFEXITED(status)) {
        a.exit_code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        a.term_signal = WTERMSIG(status);
      }
    }
    report.shards[r.shard].failures.push_back(std::move(a));
    if (attempts[r.shard] < cfg.max_attempts) {
      ++report.requeues;
      pending.push_back(r.shard);
    } else {
      ++report.quarantined;
    }
  };

  while (!pending.empty() || !running.empty()) {
    // Launch up to the concurrency cap.
    while (running.size() < cfg.max_concurrent && !pending.empty()) {
      const std::size_t shard = pending.front();
      pending.pop_front();
      const unsigned attempt = ++attempts[shard];
      const auto& env = (attempt == 1 || cfg.env_every_attempt)
                            ? cfg.first_attempt_env
                            : no_env;
      Running r;
      r.shard = shard;
      r.attempt = attempt;
      r.pid = launch(shard, attempt, env);
      if (r.pid < 0) {
        record_failure(r, 0);
        continue;
      }
      ++report.launches;
      r.last_size = journal_size(cfg.journal_dir, plan.shards[shard]);
      r.last_progress = Clock::now();
      running.push_back(r);
    }

    bool reaped = false;
    for (std::size_t i = 0; i < running.size();) {
      Running& r = running[i];
      int status = 0;
      const pid_t got = ::waitpid(r.pid, &status, WNOHANG);
      if (got == r.pid || (got < 0 && errno == ECHILD)) {
        reaped = true;
        if (shard_sealed(cfg.journal_dir, plan, plan.shards[r.shard])) {
          report.shards[r.shard].completed = true;
        } else {
          record_failure(r, status);
        }
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      // Heartbeat: durable progress IS liveness. A child whose journal
      // stops growing for a whole lease is presumed hung and killed;
      // the reap above then requeues the shard.
      const std::uint64_t size = journal_size(cfg.journal_dir, plan.shards[r.shard]);
      const auto now = Clock::now();
      if (size > r.last_size) {
        r.last_size = size;
        r.last_progress = now;
      } else if (!r.lease_expired && now - r.last_progress > cfg.lease_timeout) {
        r.lease_expired = true;
        ++report.lease_expiries;
        ::kill(r.pid, SIGKILL);
      }
      ++i;
    }
    if (!reaped && !running.empty()) {
      std::this_thread::sleep_for(cfg.poll_interval);
    }
  }
  return report;
}

QuarantineManifest quarantine_manifest(const ShardPlan& plan,
                                       const OrchestratorReport& report) {
  QuarantineManifest m;
  m.fingerprint = plan.fingerprint;
  for (const ShardOutcome& o : report.shards) {
    if (o.completed) continue;
    const ShardSpec& spec = plan.shards[o.shard_index];
    QuarantineEntry e;
    e.begin = spec.begin;
    e.end = spec.end;
    e.shard_id = spec.id;
    e.diagnostics = o.diagnostics();
    m.entries.push_back(std::move(e));
  }
  return m;
}

ShardLauncher cli_shard_launcher(std::string cli, std::string plan_path,
                                 std::string journal_dir,
                                 std::string cache_dir) {
  return [cli = std::move(cli), plan_path = std::move(plan_path),
          journal_dir = std::move(journal_dir),
          cache_dir = std::move(cache_dir)](
             std::size_t shard_index, unsigned attempt,
             const std::vector<std::pair<std::string, std::string>>&
                 extra_env) -> pid_t {
    std::error_code ec;
    std::filesystem::create_directories(journal_dir, ec);
    const std::string log_path = journal_dir + "/shard-" +
                                 std::to_string(shard_index) + ".attempt-" +
                                 std::to_string(attempt) + ".log";
    const pid_t pid = ::fork();
    if (pid != 0) return pid;  // parent (or fork failure: -1)

    // Child: log, environment, exec. Only async-signal-unsafe work we
    // can afford here is setenv/exec — the parent is single-threaded
    // apart from the sweep workers, which never hold locks across this.
    const int fd = ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      if (fd > 2) ::close(fd);
    }
    for (const auto& [k, v] : extra_env) {
      ::setenv(k.c_str(), v.c_str(), 1);
    }
    const std::string shard_str = std::to_string(shard_index);
    std::vector<const char*> argv = {cli.c_str(),         "shard",
                                     "run",               plan_path.c_str(),
                                     shard_str.c_str(),   "--journal-dir",
                                     journal_dir.c_str()};
    if (!cache_dir.empty()) {
      argv.push_back("--cache-dir");
      argv.push_back(cache_dir.c_str());
    }
    argv.push_back(nullptr);
    ::execv(cli.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);
  };
}

std::vector<std::string> chaos_scenarios() {
  return {"none", "child-kill", "torn-journal", "corrupt-tier",
          "publish-error"};
}

std::string chaos_failpoint_config(const std::string& scenario,
                                   std::uint64_t seed,
                                   std::uint64_t shard_width) {
  const std::uint64_t width = shard_width == 0 ? 1 : shard_width;
  // hit triggers are 1-based; seed % width picks the crash depth.
  const std::string depth = std::to_string(1 + seed % width);
  if (scenario == "none") return "";
  if (scenario == "child-kill") {
    return "run_shard.index=crash@hit:" + depth;
  }
  if (scenario == "torn-journal") {
    return "journal.append=crash@hit:" + depth;
  }
  if (scenario == "corrupt-tier") {
    return "fs_store.load.decode=err@prob:0.5:" + std::to_string(seed);
  }
  if (scenario == "publish-error") {
    return "fs_store.store=err@always";
  }
  throw std::invalid_argument("unknown chaos scenario '" + scenario +
                              "' (none | child-kill | torn-journal | "
                              "corrupt-tier | publish-error)");
}

}  // namespace rvt::dist

#include "dist/ledger.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "dist/serialize.hpp"
#include "util/failpoint.hpp"

namespace rvt::dist {

namespace {

constexpr std::uint32_t kLedgerRecordMagic = 0x4C545652;  // "RVTL"

/// 64-byte preamble; raw-copied (padding-free, little-endian host
/// asserted in serialize.cpp).
struct Preamble {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t kind = static_cast<std::uint16_t>(WireKind::kLedger);
  std::uint64_t fp_hi = 0, fp_lo = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t reserved0 = 0, reserved1 = 0, reserved2 = 0;
  std::uint64_t checksum = 0;  ///< fnv1a64 over the preceding 56 bytes
};
static_assert(sizeof(Preamble) == 64);

/// 32-byte record; checksum covers the preceding 24 bytes.
struct Record {
  std::uint32_t magic = kLedgerRecordMagic;
  std::uint32_t event = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(Record) == 32);

std::uint64_t preamble_checksum(const Preamble& p) {
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(&p),
                  sizeof(Preamble) - sizeof(std::uint64_t)});
}

std::uint64_t record_checksum(const Record& r) {
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(&r),
                  sizeof(Record) - sizeof(std::uint64_t)});
}

Preamble make_preamble(const LedgerHeader& h) {
  Preamble p;
  p.fp_hi = h.fingerprint.hi;
  p.fp_lo = h.fingerprint.lo;
  p.shard_count = h.shard_count;
  p.checksum = preamble_checksum(p);
  return p;
}

bool known_event(std::uint32_t e) {
  return e >= static_cast<std::uint32_t>(LedgerEvent::kEpoch) &&
         e <= static_cast<std::uint32_t>(LedgerEvent::kCheckpoint);
}

}  // namespace

void LedgerWriter::FileCloser::operator()(std::FILE* f) const {
  if (f != nullptr) std::fclose(f);
}

std::string ledger_path(const std::string& dir) { return dir + "/run.ledger"; }

std::optional<LedgerState> read_ledger(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) return std::nullopt;
  if (bytes->size() < sizeof(Preamble)) {
    throw SerializeError("ledger: file shorter than preamble");
  }
  Preamble p;
  std::memcpy(&p, bytes->data(), sizeof(p));
  if (p.magic != kWireMagic ||
      p.kind != static_cast<std::uint16_t>(WireKind::kLedger)) {
    throw SerializeError("ledger: bad preamble magic/kind");
  }
  if (p.version != kWireVersion) {
    throw SerializeError("ledger: format version " +
                         std::to_string(p.version) + " (this build speaks " +
                         std::to_string(kWireVersion) + ")");
  }
  if (p.checksum != preamble_checksum(p)) {
    throw SerializeError("ledger: corrupt preamble");
  }
  LedgerState st;
  st.header.fingerprint = {p.fp_hi, p.fp_lo};
  st.header.shard_count = p.shard_count;
  st.valid_bytes = sizeof(Preamble);
  st.file_bytes = bytes->size();
  // Forward scan: the valid prefix ends at the first torn or corrupt
  // record — exactly the journal scan, minus the ordering constraint
  // (a ledger is an event log, not an index stream).
  std::size_t pos = sizeof(Preamble);
  while (bytes->size() - pos >= sizeof(Record)) {
    Record r;
    std::memcpy(&r, bytes->data() + pos, sizeof(r));
    if (r.magic != kLedgerRecordMagic || r.checksum != record_checksum(r) ||
        !known_event(r.event)) {
      break;
    }
    st.records.push_back(
        {static_cast<LedgerEvent>(r.event), r.a, r.b});
    pos += sizeof(Record);
    st.valid_bytes = pos;
  }
  return st;
}

LedgerWriter LedgerWriter::create(const std::string& path,
                                  const LedgerHeader& header) {
  LedgerWriter w;
  w.path_ = path;
  w.file_.reset(std::fopen(path.c_str(), "wb"));
  if (w.file_ == nullptr) {
    throw SerializeError("ledger: cannot create " + path);
  }
  const Preamble p = make_preamble(header);
  if (std::fwrite(&p, sizeof(p), 1, w.file_.get()) != 1 ||
      std::fflush(w.file_.get()) != 0 ||
      ::fsync(fileno(w.file_.get())) != 0) {
    throw SerializeError("ledger: cannot write preamble to " + path);
  }
  return w;
}

LedgerWriter LedgerWriter::resume(const std::string& path,
                                  const LedgerHeader& header,
                                  const LedgerState& state) {
  if (!(state.header.fingerprint == header.fingerprint) ||
      state.header.shard_count != header.shard_count) {
    throw SerializeError("ledger: resume header mismatch");
  }
  // Drop the torn tail so the file never holds bytes the scan rejected.
  std::error_code ec;
  std::filesystem::resize_file(path, state.valid_bytes, ec);
  if (ec) {
    throw SerializeError("ledger: cannot truncate " + path);
  }
  LedgerWriter w;
  w.path_ = path;
  w.file_.reset(std::fopen(path.c_str(), "ab"));
  if (w.file_ == nullptr) {
    throw SerializeError("ledger: cannot reopen " + path);
  }
  return w;
}

void LedgerWriter::append(const LedgerRecord& rec) {
  Record r;
  r.event = static_cast<std::uint32_t>(rec.event);
  r.a = rec.a;
  r.b = rec.b;
  r.checksum = record_checksum(r);
  switch (util::failpoint("ledger.append")) {
    case util::FaultAction::kCrash:
      // Die with a PARTIAL record on disk — what a power loss between
      // fwrite and fsync can leave. The write-ahead rule holds because
      // the event this record announced was never acknowledged.
      std::fwrite(&r, 1, 13, file_.get());
      std::fflush(file_.get());
      util::failpoint_crash("ledger.append");
    case util::FaultAction::kError:
      throw SerializeError("ledger: injected append fault " + path_);
    case util::FaultAction::kNone:
      break;
  }
  // fsync, not just fflush: a journal record that dies in page cache
  // costs recomputing one index, a ledger record that dies there could
  // un-grant a lease some worker already holds.
  if (std::fwrite(&r, sizeof(r), 1, file_.get()) != 1 ||
      std::fflush(file_.get()) != 0 ||
      ::fsync(fileno(file_.get())) != 0) {
    throw SerializeError("ledger: cannot append to " + path_);
  }
}

}  // namespace rvt::dist

#include "dist/merge.hpp"

#include <algorithm>

namespace rvt::dist {

void write_quarantine_manifest(const std::string& path,
                               const QuarantineManifest& m) {
  WireWriter w;
  w.u64(m.fingerprint.hi);
  w.u64(m.fingerprint.lo);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const QuarantineEntry& e : m.entries) {
    w.u64(e.begin);
    w.u64(e.end);
    w.u64(e.shard_id.hi);
    w.u64(e.shard_id.lo);
    w.str(e.diagnostics);
  }
  const auto framed = frame_payload(WireKind::kQuarantine, w.bytes());
  if (!write_file_atomic(path, framed)) {
    throw SerializeError("quarantine: cannot write " + path);
  }
}

QuarantineManifest load_quarantine_manifest(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) {
    throw SerializeError("quarantine: cannot read " + path);
  }
  WireReader r(unframe_payload(WireKind::kQuarantine, *bytes));
  QuarantineManifest m;
  m.fingerprint.hi = r.u64();
  m.fingerprint.lo = r.u64();
  const std::uint32_t count = r.u32();
  m.entries.reserve(count);
  std::uint64_t prev_end = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    QuarantineEntry e;
    e.begin = r.u64();
    e.end = r.u64();
    e.shard_id.hi = r.u64();
    e.shard_id.lo = r.u64();
    e.diagnostics = r.str();
    if (e.begin >= e.end || (i > 0 && e.begin < prev_end)) {
      throw SerializeError(
          "quarantine: entries must be ascending non-overlapping ranges");
    }
    prev_end = e.end;
    m.entries.push_back(std::move(e));
  }
  r.expect_end();
  return m;
}

MergeResult merge_journals(const ShardPlan& plan,
                           const std::string& journal_dir,
                           const QuarantineManifest* quarantine) {
  if (quarantine != nullptr) {
    if (!(quarantine->fingerprint == plan.fingerprint)) {
      throw SerializeError(
          "merge: quarantine manifest belongs to a different plan "
          "(fingerprint mismatch)");
    }
    for (const QuarantineEntry& e : quarantine->entries) {
      const bool known = std::any_of(
          plan.shards.begin(), plan.shards.end(), [&](const ShardSpec& s) {
            return s.id == e.shard_id && s.begin == e.begin && s.end == e.end;
          });
      if (!known) {
        throw SerializeError("merge: quarantine entry [" +
                             std::to_string(e.begin) + ", " +
                             std::to_string(e.end) +
                             ") names no shard of this plan");
      }
    }
  }
  const auto quarantined = [&](const ShardSpec& spec) {
    if (quarantine == nullptr) return false;
    return std::any_of(quarantine->entries.begin(), quarantine->entries.end(),
                       [&](const QuarantineEntry& e) {
                         return e.shard_id == spec.id;
                       });
  };

  MergeResult out;
  out.indices = plan.count;
  for (const ShardSpec& spec : plan.shards) {
    const std::string path = journal_path(journal_dir, spec);
    std::optional<JournalState> state;
    try {
      state = read_journal(path);
    } catch (const SerializeError&) {
      // An unusable preamble is terminal for a healthy shard; for a
      // quarantined one it is just another face of "missing".
      if (!quarantined(spec)) throw;
      state.reset();
    }
    const bool sealed = state.has_value() && state->complete &&
                        state->header.shard_id == spec.id &&
                        state->header.fingerprint == plan.fingerprint &&
                        state->header.begin == spec.begin &&
                        state->header.end == spec.end;
    if (!sealed && quarantined(spec)) {
      out.missing.emplace_back(spec.begin, spec.end);
      continue;
    }
    if (!state.has_value()) {
      throw SerializeError("merge: missing journal " + path);
    }
    if (!(state->header.shard_id == spec.id) ||
        !(state->header.fingerprint == plan.fingerprint) ||
        state->header.begin != spec.begin ||
        state->header.end != spec.end) {
      throw SerializeError("merge: journal " + path +
                           " is bound to a different shard or plan");
    }
    if (!state->complete) {
      throw SerializeError(
          "merge: journal " + path +
          " is not sealed (shard incomplete — rerun `shard run`)");
    }
    ShardSummary s;
    s.spec = spec;
    s.sum = state->sum;
    s.indices = spec.end - spec.begin;
    s.path = path;
    out.total += s.sum;
    out.covered += s.indices;
    out.shards.push_back(std::move(s));
  }
  return out;
}

}  // namespace rvt::dist

#include "dist/merge.hpp"

namespace rvt::dist {

MergeResult merge_journals(const ShardPlan& plan,
                           const std::string& journal_dir) {
  MergeResult out;
  out.indices = plan.count;
  for (const ShardSpec& spec : plan.shards) {
    const std::string path = journal_path(journal_dir, spec);
    const std::optional<JournalState> state = read_journal(path);
    if (!state.has_value()) {
      throw SerializeError("merge: missing journal " + path);
    }
    if (!(state->header.shard_id == spec.id) ||
        !(state->header.fingerprint == plan.fingerprint) ||
        state->header.begin != spec.begin ||
        state->header.end != spec.end) {
      throw SerializeError("merge: journal " + path +
                           " is bound to a different shard or plan");
    }
    if (!state->complete) {
      throw SerializeError(
          "merge: journal " + path +
          " is not sealed (shard incomplete — rerun `shard run`)");
    }
    ShardSummary s;
    s.spec = spec;
    s.sum = state->sum;
    s.indices = spec.end - spec.begin;
    s.path = path;
    out.total += s.sum;
    out.shards.push_back(std::move(s));
  }
  return out;
}

}  // namespace rvt::dist

// Self-healing supervision of shard-runner processes.
//
// orchestrate() drives every shard of a plan to a sealed journal by
// launching child runner processes (via a caller-supplied ShardLauncher
// — the CLI forks `rvt_cli shard run`, tests fork in-process lambdas)
// and supervising them with a LEASE: a running child holds its shard's
// lease for as long as its journal keeps growing (the journal file size
// is the heartbeat — every committed index appends 32 bytes, so a live
// runner is indistinguishable from its own durable progress). A child
// that exits without sealing, or whose lease expires (no journal growth
// for lease_timeout), loses the shard: the child is reaped (SIGKILLed
// first on expiry) and the shard REQUEUES for another attempt. Requeue
// is safe because shard runs are index-deterministic and resumable —
// the next attempt recomputes only past the journal's valid prefix, so
// a shard can die any number of times and the sealed aggregate is still
// bit-identical (bench E14 asserts this under seeded fault scenarios).
//
// Attempts are bounded: a shard that fails max_attempts times is
// QUARANTINED with per-attempt diagnostics instead of looping forever.
// quarantine_manifest() turns the report into the framed artifact
// merge_journals() accepts, so partial coverage surfaces as explicit
// missing index ranges — never as a wrong total.
//
// Fault injection composes through the environment: extra_env entries
// (e.g. RVT_FAILPOINTS) are passed to attempt 1 only by default — an
// injected crash happens once and the clean retry converges — or to
// every attempt (env_every_attempt) to force the quarantine path.
//
// The loop is single-threaded (poll + waitpid(WNOHANG)); concurrency
// lives entirely in the children.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dist/merge.hpp"
#include "dist/shard_plan.hpp"

namespace rvt::dist {

/// Starts one attempt of one shard as a child process and returns its
/// pid (or -1 when the child cannot even be forked — counted as a
/// failed attempt). `extra_env` must be set in the CHILD only.
using ShardLauncher = std::function<pid_t(
    std::size_t shard_index, unsigned attempt,
    const std::vector<std::pair<std::string, std::string>>& extra_env)>;

struct OrchestratorConfig {
  std::string journal_dir;
  unsigned max_concurrent = 2;  ///< children running at once
  unsigned max_attempts = 3;    ///< attempts before quarantine
  /// Lease: a child whose journal has not grown for this long is
  /// presumed dead/hung, SIGKILLed, and its shard requeued.
  std::chrono::milliseconds lease_timeout{10000};
  std::chrono::milliseconds poll_interval{20};
  /// Environment injected into children (e.g. {"RVT_FAILPOINTS", ...}).
  /// By default only attempt 1 sees it — the injected fault fires once
  /// and recovery runs clean; env_every_attempt forces it on every
  /// attempt (the quarantine drill).
  std::vector<std::pair<std::string, std::string>> first_attempt_env;
  bool env_every_attempt = false;
};

/// One failed attempt's post-mortem.
struct ShardAttempt {
  unsigned attempt = 0;
  pid_t pid = -1;
  int exit_code = -1;       ///< child's exit status, -1 if signaled
  int term_signal = 0;      ///< terminating signal, 0 if exited
  bool lease_expired = false;
  std::string summary() const;
};

struct ShardOutcome {
  std::size_t shard_index = 0;
  bool completed = false;         ///< journal sealed
  bool already_complete = false;  ///< sealed before any launch
  std::vector<ShardAttempt> failures;  ///< attempts that did NOT seal
  /// Human-readable per-attempt history — the quarantine diagnostics.
  std::string diagnostics() const;
};

struct OrchestratorReport {
  std::vector<ShardOutcome> shards;  ///< one per plan shard, in order
  std::uint64_t launches = 0;        ///< children forked
  std::uint64_t requeues = 0;        ///< failed attempts retried
  std::uint64_t lease_expiries = 0;  ///< children killed for stalling
  std::uint64_t quarantined = 0;     ///< shards given up on
  bool all_complete() const { return quarantined == 0; }
};

/// Runs every shard of `plan` to a sealed journal (or quarantine).
/// Sealed journals found up front are honored without a launch. Throws
/// std::invalid_argument on a config without journal_dir or with zero
/// max_concurrent/max_attempts.
OrchestratorReport orchestrate(const ShardPlan& plan,
                               const OrchestratorConfig& cfg,
                               const ShardLauncher& launch);

/// The framed-manifest form of a report's quarantined shards (empty
/// entries when all_complete()).
QuarantineManifest quarantine_manifest(const ShardPlan& plan,
                                       const OrchestratorReport& report);

/// fork/exec launcher for the real CLI: `cli shard run <plan_path> <i>
/// --journal-dir <journal_dir> [--cache-dir <cache_dir>]`, stdout+stderr
/// redirected to <journal_dir>/shard-<i>.attempt-<k>.log, extra_env
/// exported. The child _exit(127)s if exec fails.
ShardLauncher cli_shard_launcher(std::string cli, std::string plan_path,
                                 std::string journal_dir,
                                 std::string cache_dir = {});

// ---- chaos scenarios (bench E14 + `shard chaos`) --------------------------

/// The seeded fault classes the chaos battery drills. Each maps to an
/// RVT_FAILPOINTS config via chaos_failpoint_config():
///  * "none"          — control run, no faults armed;
///  * "child-kill"    — a runner dies mid-shard (run_shard.index crash);
///  * "torn-journal"  — a runner dies mid-append, leaving a torn record
///                      tail (journal.append crash);
///  * "corrupt-tier"  — cache-tier files fail to decode with
///                      probability 1/2 (fs_store.load.decode err);
///  * "publish-error" — every tier publish fails (fs_store.store err).
std::vector<std::string> chaos_scenarios();

/// The RVT_FAILPOINTS config string for `scenario`. `seed` makes the
/// probabilistic scenarios deterministic and offsets the crash index of
/// the kill scenarios (crash at hit seed % shard_width, so different
/// seeds die at different depths). Throws std::invalid_argument on an
/// unknown scenario. "none" returns "".
std::string chaos_failpoint_config(const std::string& scenario,
                                   std::uint64_t seed,
                                   std::uint64_t shard_width);

}  // namespace rvt::dist

// Merging shard journals into one battery report.
//
// merge_journals() reads every shard's sealed journal under one
// directory, re-validates the binding end to end — journal preamble
// matches the plan's shard id / fingerprint / index range, the shard set
// partitions [0, count) (the plan codec enforces it), every journal is
// sealed with a self-consistent aggregate — and sums the per-index
// verdict summaries. Because sweep results are index-deterministic, the
// merged totals are BIT-IDENTICAL to a single-process run of the same
// workload, however the index space was partitioned and however many
// processes (or machines) ran the shards; bench E13 asserts exactly
// that against the committed single-process E10 count.
//
// Partial coverage is an EXPLICIT state, never a silent one. When the
// orchestrator (dist/orchestrator.hpp) gives up on a shard it writes the
// shard into a QUARANTINE MANIFEST — a framed artifact binding the
// plan's fingerprint to the quarantined index ranges plus per-attempt
// diagnostics. merge_journals() accepts the manifest and then tolerates
// exactly those shards being absent or unsealed: their ranges land in
// MergeResult::missing and the total covers MergeResult::covered indices
// only. A sealed journal still wins over its quarantine entry (the shard
// may have been completed out-of-band), and a shard that is neither
// sealed nor quarantined still throws — the manifest narrows the failure
// mode, it never widens what a merge will silently accept.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dist/journal.hpp"

namespace rvt::dist {

struct ShardSummary {
  ShardSpec spec;
  std::uint64_t sum = 0;      ///< shard aggregate (defeats)
  std::uint64_t indices = 0;  ///< committed indices (== end - begin)
  std::string path;           ///< journal file merged from
};

/// One shard the orchestrator gave up on: its index range plus the
/// human-readable diagnostics of every failed attempt.
struct QuarantineEntry {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  ShardId shard_id;
  std::string diagnostics;  ///< per-attempt exit/expiry summary
};

/// The framed (WireKind::kQuarantine) record of every shard a run could
/// not complete, bound to the plan it belongs to by fingerprint.
struct QuarantineManifest {
  ShardId fingerprint;  ///< must equal the plan's fingerprint
  std::vector<QuarantineEntry> entries;
};

/// Framed-file codec. write throws SerializeError on IO failure; load
/// throws SerializeError on any frame or structural violation
/// (overlapping/unsorted ranges, begin >= end).
void write_quarantine_manifest(const std::string& path,
                               const QuarantineManifest& m);
QuarantineManifest load_quarantine_manifest(const std::string& path);

struct MergeResult {
  std::uint64_t total = 0;    ///< summed verdict summaries (defeats)
  std::uint64_t indices = 0;  ///< == plan.count
  std::uint64_t covered = 0;  ///< indices the total actually sums
  /// Quarantined [begin, end) ranges NOT in the total, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> missing;
  std::vector<ShardSummary> shards;
  bool complete() const { return covered == indices; }
};

/// Merges every shard of `plan` from journals under `journal_dir`.
/// Throws SerializeError when any journal is missing, unsealed, corrupt,
/// or bound to a different shard/fingerprint — a merge must never
/// silently total a partial or foreign battery. With `quarantine`
/// non-null (fingerprint must match the plan, entries must name plan
/// shards), the named shards MAY instead be absent/unsealed and are
/// reported in MergeResult::missing.
MergeResult merge_journals(const ShardPlan& plan,
                           const std::string& journal_dir,
                           const QuarantineManifest* quarantine = nullptr);

}  // namespace rvt::dist

// Merging shard journals into one battery report.
//
// merge_journals() reads every shard's sealed journal under one
// directory, re-validates the binding end to end — journal preamble
// matches the plan's shard id / fingerprint / index range, the shard set
// partitions [0, count) (the plan codec enforces it), every journal is
// sealed with a self-consistent aggregate — and sums the per-index
// verdict summaries. Because sweep results are index-deterministic, the
// merged totals are BIT-IDENTICAL to a single-process run of the same
// workload, however the index space was partitioned and however many
// processes (or machines) ran the shards; bench E13 asserts exactly
// that against the committed single-process E10 count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/journal.hpp"

namespace rvt::dist {

struct ShardSummary {
  ShardSpec spec;
  std::uint64_t sum = 0;      ///< shard aggregate (defeats)
  std::uint64_t indices = 0;  ///< committed indices (== end - begin)
  std::string path;           ///< journal file merged from
};

struct MergeResult {
  std::uint64_t total = 0;    ///< summed verdict summaries (defeats)
  std::uint64_t indices = 0;  ///< == plan.count
  std::vector<ShardSummary> shards;
};

/// Merges every shard of `plan` from journals under `journal_dir`.
/// Throws SerializeError when any journal is missing, unsealed, corrupt,
/// or bound to a different shard/fingerprint — a merge must never
/// silently total a partial or foreign battery.
MergeResult merge_journals(const ShardPlan& plan,
                           const std::string& journal_dir);

}  // namespace rvt::dist

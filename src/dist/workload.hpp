// The enumeration workloads the distributed subsystem shards.
//
// A shard runner in another process must reproduce EXACTLY the battery a
// single-process bench enumerates — same trees, same query order, same
// automaton enumeration — or the merged counts drift. This module is
// therefore the single source of truth for the E10 exhaustive-line
// battery: bench/bench_e10_exhaustive_small.cpp, the E13 distributed
// bench and the `rvt_cli shard` subcommands all build the workload from
// here, and the shard plan fingerprints its content
// (dist/shard_plan.hpp) so a runner fed a plan from a different battery
// (or a different code schema) refuses to run.
//
// The distributable unit is EnumWorkload: an index-deterministic map
// from enumeration index to a uint64 verdict summary (total defeats of
// that automaton over the whole battery) — exactly the
// incremental-delay shape a shard journal streams.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/enumeration.hpp"
#include "tree/tree.hpp"

namespace rvt::dist {

/// One battery tree plus every feasible (non-perfectly-symmetrizable)
/// start pair, in battery order.
struct BatteryTree {
  tree::Tree t = tree::Tree::single_node();
  std::vector<std::pair<tree::NodeId, tree::NodeId>> pairs;
};

/// The E10 battery: lines n = 3..max_n, three labelings each (plus the
/// Thm 3.1 mirror coloring on even n), every pair that is not perfectly
/// symmetrizable. Ordered by n, so the first defeated grid IS the
/// defeat frontier.
std::vector<BatteryTree> make_line_battery(int max_n);

std::size_t battery_instances(const std::vector<BatteryTree>& battery);

/// The idx-th K-state line automaton under the enumeration order
/// delta-combo-major, then lambda-combo, then initial state.
sim::LineAutomaton line_automaton_at(int K, std::uint64_t idx);

/// Number of K-state line automata under that order.
std::uint64_t line_automaton_count(int K);

/// Battery trees as fused-enumeration grids; with_delays crosses every
/// pair with the profile delay grid (the Thm 3.1 adversary's weapon is
/// exactly the start delay).
std::vector<sim::EnumGrid> make_battery_grids(
    const std::vector<BatteryTree>& battery, bool with_delays);

/// The E10 defeat-density profile sample: every K <= 2 automaton, every
/// 64th at K = 3.
std::vector<std::pair<int, std::uint64_t>> make_profile_sample();

inline constexpr std::uint64_t kE10Horizon = 300000;
inline constexpr std::uint64_t kE10ProfileDelays[] = {0, 1, 7, 31};

/// An index-deterministic enumeration workload: `count()` indices, each
/// mapping to one automaton run against every grid, summarized as its
/// total defeat count. Owns its battery trees (grids point into them),
/// so it is neither copyable nor movable — build via parse().
class EnumWorkload {
 public:
  /// Spec format: "e10:<max_n>" — the E10 defeat-density profile over
  /// lines n = 3..max_n at the E10 horizon ("e10" alone means max_n 14,
  /// the committed BENCH_E10.json battery whose profile counts 5426593
  /// defeats). Throws std::invalid_argument on junk.
  static std::unique_ptr<EnumWorkload> parse(const std::string& spec);

  EnumWorkload(const EnumWorkload&) = delete;
  EnumWorkload& operator=(const EnumWorkload&) = delete;

  /// Canonical spec string (fingerprinted into shard plans).
  const std::string& spec() const { return spec_; }
  std::uint64_t count() const { return sample_.size(); }
  std::uint64_t max_rounds() const { return kE10Horizon; }
  std::span<const sim::EnumGrid> grids() const { return grids_; }

  sim::TabularAutomaton automaton_at(std::uint64_t index) const;

  /// The index's verdict summary: total defeats (met == false verdicts)
  /// of automaton `index` over every grid — the value a shard journal
  /// records. ctx must have been built over grids().
  std::uint64_t defeats(sim::EnumerationContext& ctx,
                        std::uint64_t index) const;

 private:
  EnumWorkload() = default;

  std::string spec_;
  std::vector<BatteryTree> battery_;
  std::vector<sim::EnumGrid> grids_;
  std::vector<std::pair<int, std::uint64_t>> sample_;
};

}  // namespace rvt::dist

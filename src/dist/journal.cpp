#include "dist/journal.hpp"

#include <cstring>
#include <filesystem>

#include "util/failpoint.hpp"

namespace rvt::dist {

namespace {

constexpr std::uint32_t kRecordMagic = 0x52565452;  // "RVTR"
constexpr std::uint32_t kTypeResult = 1;
constexpr std::uint32_t kTypeDone = 2;

/// 64-byte preamble; raw-copied (padding-free, little-endian host
/// asserted in serialize.cpp).
struct Preamble {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t kind = static_cast<std::uint16_t>(WireKind::kJournal);
  std::uint64_t shard_hi = 0, shard_lo = 0;
  std::uint64_t fp_hi = 0, fp_lo = 0;
  std::uint64_t begin = 0, end = 0;
  std::uint64_t checksum = 0;  ///< fnv1a64 over the preceding 56 bytes
};
static_assert(sizeof(Preamble) == 64);

/// 32-byte record; checksum covers the preceding 24 bytes.
struct Record {
  std::uint32_t magic = kRecordMagic;
  std::uint32_t type = 0;
  std::uint64_t index = 0;
  std::uint64_t value = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(Record) == 32);

std::uint64_t preamble_checksum(const Preamble& p) {
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(&p),
                  sizeof(Preamble) - sizeof(std::uint64_t)});
}

std::uint64_t record_checksum(const Record& r) {
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(&r),
                  sizeof(Record) - sizeof(std::uint64_t)});
}

Preamble make_preamble(const JournalHeader& h) {
  Preamble p;
  p.shard_hi = h.shard_id.hi;
  p.shard_lo = h.shard_id.lo;
  p.fp_hi = h.fingerprint.hi;
  p.fp_lo = h.fingerprint.lo;
  p.begin = h.begin;
  p.end = h.end;
  p.checksum = preamble_checksum(p);
  return p;
}

}  // namespace

void JournalWriter::FileCloser::operator()(std::FILE* f) const {
  if (f != nullptr) std::fclose(f);
}

std::string journal_path(const std::string& dir, const ShardSpec& spec) {
  return dir + "/shard-" + shard_id_hex(spec.id) + ".journal";
}

std::optional<JournalState> read_journal(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) return std::nullopt;
  if (bytes->size() < sizeof(Preamble)) {
    throw SerializeError("journal: file shorter than preamble");
  }
  Preamble p;
  std::memcpy(&p, bytes->data(), sizeof(p));
  if (p.magic != kWireMagic ||
      p.kind != static_cast<std::uint16_t>(WireKind::kJournal)) {
    throw SerializeError("journal: bad preamble magic/kind");
  }
  if (p.version != kWireVersion) {
    throw SerializeError("journal: format version " +
                         std::to_string(p.version) + " (this build speaks " +
                         std::to_string(kWireVersion) + ")");
  }
  if (p.checksum != preamble_checksum(p) || p.end < p.begin) {
    throw SerializeError("journal: corrupt preamble");
  }
  JournalState st;
  st.header.shard_id = {p.shard_hi, p.shard_lo};
  st.header.fingerprint = {p.fp_hi, p.fp_lo};
  st.header.begin = p.begin;
  st.header.end = p.end;
  st.next_index = p.begin;
  st.valid_bytes = sizeof(Preamble);
  // Forward scan: the valid prefix ends at the first torn, corrupt,
  // out-of-order or post-DONE record.
  std::size_t pos = sizeof(Preamble);
  while (bytes->size() - pos >= sizeof(Record)) {
    Record r;
    std::memcpy(&r, bytes->data() + pos, sizeof(r));
    if (r.magic != kRecordMagic || r.checksum != record_checksum(r)) break;
    if (r.type == kTypeResult) {
      if (r.index != st.next_index || r.index >= p.end) break;
      st.sum += r.value;
      ++st.next_index;
    } else if (r.type == kTypeDone) {
      // The seal must agree with the records it seals — a DONE whose
      // aggregate disagrees is treated as damage, not as truth.
      if (r.index != p.end || st.next_index != p.end || r.value != st.sum) {
        break;
      }
      st.complete = true;
      st.valid_bytes = pos + sizeof(Record);
      break;
    } else {
      break;
    }
    pos += sizeof(Record);
    st.valid_bytes = pos;
  }
  return st;
}

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalHeader& header) {
  JournalWriter w;
  w.path_ = path;
  w.header_ = header;
  w.next_ = header.begin;
  w.file_.reset(std::fopen(path.c_str(), "wb"));
  if (w.file_ == nullptr) {
    throw SerializeError("journal: cannot create " + path);
  }
  const Preamble p = make_preamble(header);
  if (std::fwrite(&p, sizeof(p), 1, w.file_.get()) != 1 ||
      std::fflush(w.file_.get()) != 0) {
    throw SerializeError("journal: cannot write preamble to " + path);
  }
  return w;
}

JournalWriter JournalWriter::resume(const std::string& path,
                                    const JournalHeader& header,
                                    const JournalState& state) {
  if (state.complete) {
    throw SerializeError("journal: resume on a sealed journal");
  }
  if (!(state.header.shard_id == header.shard_id) ||
      !(state.header.fingerprint == header.fingerprint) ||
      state.header.begin != header.begin ||
      state.header.end != header.end) {
    throw SerializeError("journal: resume header mismatch");
  }
  // Drop the torn tail so the file never holds bytes the scan rejected,
  // then append after the valid prefix.
  std::error_code ec;
  std::filesystem::resize_file(path, state.valid_bytes, ec);
  if (ec) {
    throw SerializeError("journal: cannot truncate " + path);
  }
  JournalWriter w;
  w.path_ = path;
  w.header_ = header;
  w.next_ = state.next_index;
  w.sum_ = state.sum;
  w.file_.reset(std::fopen(path.c_str(), "ab"));
  if (w.file_ == nullptr) {
    throw SerializeError("journal: cannot reopen " + path);
  }
  return w;
}

void JournalWriter::record(std::uint64_t index, std::uint64_t value) {
  if (finished_) {
    throw SerializeError("journal: record after finish");
  }
  if (index != next_ || index >= header_.end) {
    throw SerializeError("journal: out-of-order record");
  }
  Record r;
  r.type = kTypeResult;
  r.index = index;
  r.value = value;
  r.checksum = record_checksum(r);
  switch (util::failpoint("journal.append")) {
    case util::FaultAction::kCrash:
      // The torn-tail fault: die with a PARTIAL record on disk — exactly
      // what a SIGKILL between fwrite and fflush can leave. The recovery
      // scan must drop it and a resume recompute only this index on.
      std::fwrite(&r, 1, 13, file_.get());
      std::fflush(file_.get());
      util::failpoint_crash("journal.append");
    case util::FaultAction::kError:
      throw SerializeError("journal: injected append fault " + path_);
    case util::FaultAction::kNone:
      break;
  }
  if (std::fwrite(&r, sizeof(r), 1, file_.get()) != 1 ||
      std::fflush(file_.get()) != 0) {
    throw SerializeError("journal: cannot append to " + path_);
  }
  sum_ += value;
  ++next_;
}

void JournalWriter::finish(std::uint64_t total) {
  if (finished_) {
    throw SerializeError("journal: finish twice");
  }
  if (next_ != header_.end) {
    throw SerializeError("journal: finish before every index committed");
  }
  if (total != sum_) {
    throw SerializeError("journal: aggregate disagrees with records");
  }
  Record r;
  r.type = kTypeDone;
  r.index = header_.end;
  r.value = total;
  r.checksum = record_checksum(r);
  switch (util::failpoint("journal.seal")) {
    case util::FaultAction::kCrash:
      // Die with every record committed but no seal: a resume recomputes
      // NOTHING (next_index == end) and only re-seals.
      util::failpoint_crash("journal.seal");
    case util::FaultAction::kError:
      throw SerializeError("journal: injected seal fault " + path_);
    case util::FaultAction::kNone:
      break;
  }
  if (std::fwrite(&r, sizeof(r), 1, file_.get()) != 1 ||
      std::fflush(file_.get()) != 0) {
    throw SerializeError("journal: cannot seal " + path_);
  }
  finished_ = true;
}

}  // namespace rvt::dist

#include "dist/workload.hpp"

#include <stdexcept>

#include "tree/builders.hpp"
#include "tree/canonical.hpp"

namespace rvt::dist {

std::vector<BatteryTree> make_line_battery(int max_n) {
  std::vector<BatteryTree> out;
  for (int n = 3; n <= max_n; ++n) {
    std::vector<tree::Tree> labelings;
    labelings.push_back(tree::line(n));
    labelings.push_back(tree::line_edge_colored(n, 0));
    labelings.push_back(tree::line_edge_colored(n, 1));
    if (n % 2 == 0) {  // odd edge count: the Thm 3.1 mirror coloring
      labelings.push_back(tree::line_symmetric_colored(n - 1));
    }
    for (auto& t : labelings) {
      BatteryTree bt;
      bt.t = std::move(t);
      for (tree::NodeId u = 0; u < n; ++u) {
        for (tree::NodeId v = u + 1; v < n; ++v) {
          if (tree::perfectly_symmetrizable(bt.t, u, v)) continue;
          bt.pairs.emplace_back(u, v);
        }
      }
      if (!bt.pairs.empty()) out.push_back(std::move(bt));
    }
  }
  return out;
}

std::size_t battery_instances(const std::vector<BatteryTree>& battery) {
  std::size_t n = 0;
  for (const auto& bt : battery) n += bt.pairs.size();
  return n;
}

sim::LineAutomaton line_automaton_at(int K, std::uint64_t idx) {
  sim::LineAutomaton a;
  a.initial = static_cast<int>(idx % K);
  idx /= K;
  std::uint64_t lc = 1;
  for (int i = 0; i < K; ++i) lc *= 3;
  std::uint64_t l = idx % lc;
  std::uint64_t d = idx / lc;
  a.delta.assign(K, {0, 0});
  a.lambda.assign(K, sim::kStay);
  for (int s = 0; s < K; ++s) {
    for (int deg = 0; deg < 2; ++deg) {
      a.delta[s][deg] = static_cast<int>(d % K);
      d /= K;
    }
  }
  for (int s = 0; s < K; ++s) {
    a.lambda[s] = static_cast<int>(l % 3) - 1;
    l /= 3;
  }
  return a;
}

std::uint64_t line_automaton_count(int K) {
  std::uint64_t c = static_cast<std::uint64_t>(K);  // initial states
  for (int i = 0; i < 2 * K; ++i) c *= K;           // delta combos
  for (int i = 0; i < K; ++i) c *= 3;               // lambda combos
  return c;
}

std::vector<sim::EnumGrid> make_battery_grids(
    const std::vector<BatteryTree>& battery, bool with_delays) {
  std::vector<sim::EnumGrid> grids;
  grids.reserve(battery.size());
  for (const auto& bt : battery) {
    sim::EnumGrid grid;
    grid.tree = &bt.t;
    for (const auto& [u, v] : bt.pairs) {
      if (with_delays) {
        for (const std::uint64_t d : kE10ProfileDelays) {
          grid.push({u, v, d, 0});
        }
      } else {
        grid.push({u, v, 0, 0});
      }
    }
    grids.push_back(std::move(grid));
  }
  return grids;
}

std::vector<std::pair<int, std::uint64_t>> make_profile_sample() {
  std::vector<std::pair<int, std::uint64_t>> sample;
  for (int K = 1; K <= 3; ++K) {
    const std::uint64_t stride = K < 3 ? 1 : 64;
    for (std::uint64_t idx = 0; idx < line_automaton_count(K);
         idx += stride) {
      sample.emplace_back(K, idx);
    }
  }
  return sample;
}

std::unique_ptr<EnumWorkload> EnumWorkload::parse(const std::string& spec) {
  int max_n = 14;  // the committed BENCH_E10.json battery
  if (spec != "e10") {
    if (spec.rfind("e10:", 0) != 0) {
      throw std::invalid_argument("EnumWorkload: unknown spec '" + spec +
                                  "' (want e10[:<max_n>])");
    }
    std::size_t used = 0;
    try {
      max_n = std::stoi(spec.substr(4), &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("EnumWorkload: bad max_n in '" + spec +
                                  "'");
    }
    if (used != spec.size() - 4 || max_n < 3 || max_n > 64) {
      throw std::invalid_argument(
          "EnumWorkload: max_n must be an integer in [3, 64]");
    }
  }
  std::unique_ptr<EnumWorkload> w(new EnumWorkload());
  w->spec_ = "e10:" + std::to_string(max_n);
  w->battery_ = make_line_battery(max_n);
  // Grids point into battery_, which never changes again — the workload
  // is pinned (no copy/move) precisely so these stay valid.
  w->grids_ = make_battery_grids(w->battery_, /*with_delays=*/true);
  w->sample_ = make_profile_sample();
  return w;
}

sim::TabularAutomaton EnumWorkload::automaton_at(std::uint64_t index) const {
  const auto& [K, idx] = sample_.at(index);
  return line_automaton_at(K, idx).tabular();
}

std::uint64_t EnumWorkload::defeats(sim::EnumerationContext& ctx,
                                    std::uint64_t index) const {
  const sim::TabularAutomaton a = automaton_at(index);
  ctx.bind(a);
  std::uint64_t defeats = 0;
  for (std::size_t g = 0; g < ctx.grid_count(); ++g) {
    defeats += ctx.count_unmet(g);
  }
  return defeats;
}

}  // namespace rvt::dist

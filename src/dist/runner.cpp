#include "dist/runner.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace rvt::dist {

namespace {

/// The satellite `--progress-interval-ms` line: one structured stderr
/// line an operator (or a log scraper) can follow mid-shard.
void emit_progress(std::size_t shard_index, std::uint64_t committed,
                   const obs::EnumDelayStats& d) {
  std::fprintf(stderr,
               "progress shard=%zu committed=%llu survivors=%llu "
               "inter_result_delay_p50_ms=%.3f inter_result_delay_p99_ms="
               "%.3f\n",
               shard_index, static_cast<unsigned long long>(committed),
               static_cast<unsigned long long>(d.survivors),
               d.delay_quantile_ms(0.50), d.delay_quantile_ms(0.99));
}

}  // namespace

ShardRunStats run_shard(const EnumWorkload& w, const ShardPlan& plan,
                        std::size_t shard_index,
                        const std::string& journal_dir,
                        sim::OrbitCache* cache,
                        const ShardRunOptions& options) {
  if (shard_index >= plan.shards.size()) {
    throw std::invalid_argument("run_shard: shard index out of range");
  }
  if (!(plan.fingerprint == workload_fingerprint(w))) {
    throw std::invalid_argument(
        "run_shard: plan fingerprint does not match the workload (different "
        "battery, spec, or code schema version)");
  }
  const ShardSpec& spec = plan.shards[shard_index];
  std::error_code ec;
  std::filesystem::create_directories(journal_dir, ec);
  if (ec) {
    throw SerializeError("run_shard: cannot create journal dir " +
                         journal_dir + ": " + ec.message());
  }
  const std::string path = journal_path(journal_dir, spec);
  JournalHeader header;
  header.shard_id = spec.id;
  header.fingerprint = plan.fingerprint;
  header.begin = spec.begin;
  header.end = spec.end;

  ShardRunStats stats;
  std::optional<JournalState> state;
  try {
    state = read_journal(path);
  } catch (const SerializeError&) {
    state.reset();  // unusable preamble: recreate from scratch
  }
  if (state.has_value() &&
      (!(state->header.shard_id == header.shard_id) ||
       !(state->header.fingerprint == header.fingerprint) ||
       state->header.begin != header.begin ||
       state->header.end != header.end)) {
    // A journal for a DIFFERENT shard under this shard's filename: the
    // content addressing makes that a deliberate overwrite or a foreign
    // artifact — start over rather than splice foreign records.
    state.reset();
  }
  if (state.has_value() && state->complete) {
    stats.already_complete = true;
    stats.committed_before = spec.end - spec.begin;
    stats.sum = state->sum;
    return stats;
  }

  JournalWriter writer =
      state.has_value() ? JournalWriter::resume(path, header, *state)
                        : JournalWriter::create(path, header);
  stats.committed_before = writer.next_index() - spec.begin;

  sim::EnumerationContext ctx(w.grids(), w.max_rounds(), cache);
  RVT_OBS_SPAN("dist.run_shard", shard_index,
               spec.end - writer.next_index());
  obs::EnumDelayTracker delay;
  const std::uint64_t progress_interval_ns =
      options.progress_interval_ms * 1'000'000;
  std::uint64_t next_progress_ns =
      progress_interval_ns == 0 ? UINT64_MAX
                                : delay.start_ns() + progress_interval_ns;
  for (std::uint64_t i = writer.next_index(); i < spec.end; ++i) {
    // Chaos hook: die (or fail) at a chosen index with every earlier
    // index durably committed — the canonical mid-shard crash the
    // orchestrator's requeue path recovers from.
    switch (util::failpoint("run_shard.index")) {
      case util::FaultAction::kCrash:
        util::failpoint_crash("run_shard.index");
      case util::FaultAction::kError:
        throw SerializeError("run_shard: injected fault at index " +
                             std::to_string(i));
      case util::FaultAction::kNone:
        break;
    }
    const std::uint64_t v = w.defeats(ctx, i);
    writer.record(i, v);
    delay.note_result(v);
    ++stats.computed;
    if (progress_interval_ns != 0 && obs::now_ns() >= next_progress_ns) {
      emit_progress(shard_index, (i + 1) - spec.begin, delay.stats());
      next_progress_ns = obs::now_ns() + progress_interval_ns;
    }
  }
  writer.finish(writer.sum());
  stats.sum = writer.sum();
  stats.telemetry = ctx.telemetry();
  stats.delay = delay.finish();
  if (cache != nullptr && cache->backing() != nullptr) {
    const sim::OrbitTierFaultStats fs = cache->backing()->fault_stats();
    stats.telemetry.tier_retries = fs.retries;
    stats.telemetry.tier_exhausted = fs.exhausted;
    stats.telemetry.tier_quarantined = fs.quarantined;
    stats.telemetry.tier_degraded = fs.degraded ? 1 : 0;
  }
  return stats;
}

}  // namespace rvt::dist

#include "dist/serialize.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "util/failpoint.hpp"

static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

namespace rvt::dist {

namespace {

/// 32-byte frame header. Raw-copied — keep trivially copyable and
/// padding-free.
struct WireHeader {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t kind = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  std::uint64_t reserved = 0;
};
static_assert(sizeof(WireHeader) == 32);

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h = (h ^ b) * 0x100000001b3ull;
  }
  return h;
}

void WireWriter::u16(std::uint16_t v) { raw(&v, sizeof(v)); }
void WireWriter::u32(std::uint32_t v) { raw(&v, sizeof(v)); }
void WireWriter::u64(std::uint64_t v) { raw(&v, sizeof(v)); }

void WireWriter::raw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  bytes_.insert(bytes_.end(), b, b + n);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

std::uint8_t WireReader::u8() {
  std::uint8_t v;
  raw(&v, sizeof(v));
  return v;
}
std::uint16_t WireReader::u16() {
  std::uint16_t v;
  raw(&v, sizeof(v));
  return v;
}
std::uint32_t WireReader::u32() {
  std::uint32_t v;
  raw(&v, sizeof(v));
  return v;
}
std::uint64_t WireReader::u64() {
  std::uint64_t v;
  raw(&v, sizeof(v));
  return v;
}

void WireReader::raw(void* p, std::size_t n) {
  if (n > b_.size() - pos_) {
    throw SerializeError("wire: read past end of payload");
  }
  std::memcpy(p, b_.data() + pos_, n);
  pos_ += n;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (n > b_.size() - pos_) {
    throw SerializeError("wire: string length past end of payload");
  }
  std::string s(reinterpret_cast<const char*>(b_.data() + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::expect_end() const {
  if (pos_ != b_.size()) {
    throw SerializeError("wire: trailing bytes after payload");
  }
}

std::vector<std::uint8_t> frame_payload(
    WireKind kind, std::span<const std::uint8_t> payload) {
  WireHeader h;
  h.magic = kWireMagic;
  h.version = kWireVersion;
  h.kind = static_cast<std::uint16_t>(kind);
  h.payload_bytes = payload.size();
  h.payload_checksum = fnv1a64(payload);
  std::vector<std::uint8_t> out(sizeof(WireHeader) + payload.size());
  std::memcpy(out.data(), &h, sizeof(h));
  if (!payload.empty()) {
    // Empty payloads are legal frames (several service-tier messages are
    // header-only) and an empty span's data() may be null.
    std::memcpy(out.data() + sizeof(h), payload.data(), payload.size());
  }
  return out;
}

FrameInfo validate_frame_header(std::span<const std::uint8_t> header) {
  static_assert(sizeof(WireHeader) == kWireFrameBytes);
  if (header.size() < sizeof(WireHeader)) {
    throw SerializeError("wire: file shorter than header");
  }
  WireHeader h;
  std::memcpy(&h, header.data(), sizeof(h));
  if (h.magic != kWireMagic) {
    throw SerializeError("wire: bad magic");
  }
  if (h.version != kWireVersion) {
    throw WireVersionError("wire: format version " +
                           std::to_string(h.version) +
                           " (this build speaks " +
                           std::to_string(kWireVersion) + ")");
  }
  if (h.reserved != 0) {
    throw SerializeError("wire: reserved header bytes set");
  }
  if (h.payload_bytes > kMaxWirePayloadBytes) {
    throw SerializeError("wire: payload length " +
                         std::to_string(h.payload_bytes) +
                         " exceeds the " +
                         std::to_string(kMaxWirePayloadBytes) +
                         "-byte limit");
  }
  return {static_cast<WireKind>(h.kind), h.payload_bytes,
          h.payload_checksum};
}

std::span<const std::uint8_t> unframe_payload(
    WireKind kind, std::span<const std::uint8_t> file) {
  if (util::failpoint_error("wire.unframe")) {
    throw SerializeError("wire: injected frame-decode fault (wire.unframe)");
  }
  const FrameInfo info = validate_frame_header(file);
  if (info.kind != kind) {
    throw SerializeError("wire: wrong payload kind");
  }
  if (info.payload_bytes != file.size() - kWireFrameBytes) {
    throw SerializeError("wire: payload length mismatch (truncated file?)");
  }
  const std::span<const std::uint8_t> payload =
      file.subspan(kWireFrameBytes);
  if (fnv1a64(payload) != info.payload_checksum) {
    throw SerializeError("wire: payload checksum mismatch");
  }
  return payload;
}

// ---- OrbitSet codec -------------------------------------------------------

std::vector<std::uint8_t> serialize_orbit_set(
    const sim::CompiledConfigEngine::OrbitSet& set) {
  using Orbit = sim::CompiledConfigEngine::Orbit;
  WireWriter w;
  const std::size_t n = set.orbits.size();
  w.u32(static_cast<std::uint32_t>(n));
  w.raw(set.has_orbit.data(), set.has_orbit.size());
  // Per-orbit headers, then the three payload streams back to back.
  // Snapshot and deserialized sets keep each stream in ONE arena, so the
  // stream writes below are (per present orbit) straight memcpys of
  // adjacent windows — near-memcpy serialization is the arena's point.
  std::uint64_t nodes = 0, ports = 0, visits = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!set.has_orbit[s]) continue;
    const Orbit& o = set.orbits[s];
    w.u64(o.mu);
    w.u64(o.lambda);
    w.u64(o.sn_mu);
    w.u32(o.cycle_root);
    w.u64(o.cycle_phase);
    w.u32(static_cast<std::uint32_t>(o.node.size()));
    w.u32(static_cast<std::uint32_t>(o.in_port.size()));
    w.u32(static_cast<std::uint32_t>(o.first_visit.size()));
    nodes += o.node.size();
    ports += o.in_port.size();
    visits += o.first_visit.size();
  }
  w.u64(nodes);
  w.u64(ports);
  w.u64(visits);
  for (std::size_t s = 0; s < n; ++s) {
    if (set.has_orbit[s]) {
      w.raw(set.orbits[s].node.data(),
            set.orbits[s].node.size() * sizeof(tree::NodeId));
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (set.has_orbit[s]) {
      w.raw(set.orbits[s].in_port.data(),
            set.orbits[s].in_port.size() * sizeof(std::int16_t));
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (set.has_orbit[s]) {
      w.raw(set.orbits[s].first_visit.data(),
            set.orbits[s].first_visit.size() * sizeof(std::uint32_t));
    }
  }
  w.u32(static_cast<std::uint32_t>(set.collisions.size()));
  for (const auto& p : set.collisions) {
    w.u32(p.root_a);
    w.u32(p.root_b);
    w.u32(static_cast<std::uint32_t>(p.table.size()));
    w.raw(p.table.data(), p.table.size());
  }
  w.u8(set.collision_index.empty() ? 0 : 1);
  if (!set.collision_index.empty()) {
    w.u64(set.collision_index.size());
    w.raw(set.collision_index.data(),
          set.collision_index.size() * sizeof(std::int32_t));
  }
  return w.take();
}

std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>
deserialize_orbit_set(std::span<const std::uint8_t> payload) {
  using Orbit = sim::CompiledConfigEngine::Orbit;
  using OrbitSet = sim::CompiledConfigEngine::OrbitSet;
  WireReader r(payload);
  auto set = std::make_shared<OrbitSet>();
  const std::uint32_t n = r.u32();
  // Bound every size field against the bytes actually present BEFORE
  // allocating from it: a forged count must throw SerializeError here,
  // not length_error/bad_alloc out of a resize (FsOrbitStore::load turns
  // SerializeError into a cache miss; anything else would escape with
  // the cache claim held).
  if (n > r.remaining()) {
    throw SerializeError("orbit set: orbit count exceeds payload");
  }
  set->orbits.resize(n);
  set->has_orbit.resize(n);
  r.raw(set->has_orbit.data(), n);
  for (const std::uint8_t h : set->has_orbit) {
    if (h > 1) throw SerializeError("orbit set: has_orbit flag not 0/1");
  }
  struct Sizes {
    std::uint32_t node, port, visit;
  };
  std::vector<Sizes> sizes(n, {0, 0, 0});
  std::uint64_t nodes = 0, ports = 0, visits = 0;
  std::size_t bytes = sizeof(OrbitSet) + n * (sizeof(Orbit) + 1);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!set->has_orbit[s]) continue;
    Orbit& o = set->orbits[s];
    o.mu = r.u64();
    o.lambda = r.u64();
    o.sn_mu = r.u64();
    o.cycle_root = r.u32();
    o.cycle_phase = r.u64();
    sizes[s] = {r.u32(), r.u32(), r.u32()};
    // The rho shape every producer writes: node/in_port hold the tail
    // plus one cycle (mu + lambda entries, mu >= 1 — the initial
    // configuration cannot recur); a violated invariant means a corrupt
    // or forged payload, which must not reach the verdict loops. The
    // mu check is phrased subtraction-side so a forged mu near 2^64
    // cannot wrap `mu + lambda` back into range.
    if (o.lambda == 0 || o.mu == 0 || sizes[s].node < o.lambda ||
        o.mu != sizes[s].node - o.lambda ||
        sizes[s].port != sizes[s].node || sizes[s].visit != n ||
        o.sn_mu > o.mu || o.cycle_root >= n || o.cycle_phase >= o.lambda) {
      throw SerializeError("orbit set: inconsistent orbit header");
    }
    nodes += sizes[s].node;
    ports += sizes[s].port;
    visits += sizes[s].visit;
  }
  if (nodes != r.u64() || ports != r.u64() || visits != r.u64()) {
    throw SerializeError("orbit set: arena totals disagree with headers");
  }
  if (nodes * sizeof(tree::NodeId) > r.remaining() ||
      ports * sizeof(std::int16_t) > r.remaining() ||
      visits * sizeof(std::uint32_t) > r.remaining()) {
    throw SerializeError("orbit set: arena sizes exceed payload");
  }
  set->node_arena.resize(nodes);
  set->port_arena.resize(ports);
  set->visit_arena.resize(visits);
  r.raw(set->node_arena.data(), nodes * sizeof(tree::NodeId));
  r.raw(set->port_arena.data(), ports * sizeof(std::int16_t));
  r.raw(set->visit_arena.data(), visits * sizeof(std::uint32_t));
  std::size_t no = 0, po = 0, vo = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!set->has_orbit[s]) continue;
    Orbit& o = set->orbits[s];
    o.node.bind_external(set->node_arena.data() + no, sizes[s].node);
    no += sizes[s].node;
    o.in_port.bind_external(set->port_arena.data() + po, sizes[s].port);
    po += sizes[s].port;
    o.first_visit.bind_external(set->visit_arena.data() + vo,
                                sizes[s].visit);
    vo += sizes[s].visit;
    for (const tree::NodeId v : o.node) {
      if (v < 0 || static_cast<std::uint32_t>(v) >= n) {
        throw SerializeError("orbit set: node id out of range");
      }
    }
    bytes += sizes[s].node * sizeof(tree::NodeId) +
             sizes[s].port * sizeof(std::int16_t) +
             sizes[s].visit * sizeof(std::uint32_t);
  }
  const std::uint32_t pairs = r.u32();
  if (static_cast<std::uint64_t>(pairs) * 12 > r.remaining()) {
    throw SerializeError("orbit set: collision count exceeds payload");
  }
  set->collisions.resize(pairs);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    auto& p = set->collisions[i];
    p.root_a = r.u32();
    p.root_b = r.u32();
    if (p.root_a >= n || p.root_b >= n) {
      throw SerializeError("orbit set: collision root out of range");
    }
    const std::uint32_t len = r.u32();
    p.table.resize(len);
    r.raw(p.table.data(), len);
    bytes += sizeof(sim::CompiledConfigEngine::CyclePair) + len;
  }
  if (r.u8() != 0) {
    const std::uint64_t entries = r.u64();
    if (entries != static_cast<std::uint64_t>(n) * n ||
        entries * sizeof(std::int32_t) > r.remaining()) {
      throw SerializeError("orbit set: collision index size mismatch");
    }
    set->collision_index.resize(entries);
    r.raw(set->collision_index.data(), entries * sizeof(std::int32_t));
    for (const std::int32_t idx : set->collision_index) {
      if (idx < -1 || idx >= static_cast<std::int32_t>(pairs)) {
        throw SerializeError("orbit set: collision index out of range");
      }
    }
    bytes += entries * sizeof(std::int32_t);
  }
  r.expect_end();
  set->bytes = bytes;
  return set;
}

// ---- file helpers ---------------------------------------------------------

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Unique temp name in the TARGET directory (rename is only atomic
  // within one filesystem); pid + address salt keeps concurrent writers
  // of one key from clobbering each other's temp file.
  char salt[48];
  std::snprintf(salt, sizeof(salt), ".tmp.%d.%p", static_cast<int>(getpid()),
                static_cast<const void*>(bytes.data()));
  const std::string tmp = path + salt;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  is.seekg(0, std::ios::end);
  const std::streamoff len = is.tellg();
  if (len < 0) return std::nullopt;
  is.seekg(0, std::ios::beg);
  bytes.resize(static_cast<std::size_t>(len));
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!is.good() && !is.eof()) return std::nullopt;
  if (is.gcount() != static_cast<std::streamsize>(bytes.size())) {
    return std::nullopt;
  }
  return bytes;
}

// ---- the filesystem cache tier --------------------------------------------

std::string hex128(std::uint64_t hi, std::uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::string orbit_key_hex(const sim::OrbitKey& key) {
  return hex128(key.hi, key.lo);
}

FsOrbitStore::FsOrbitStore(std::string dir, util::RetryPolicy retry)
    : dir_(std::move(dir)), retry_(std::move(retry)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
}

std::string FsOrbitStore::path_for(const sim::OrbitKey& key) const {
  return dir_ + "/" + orbit_key_hex(key) + ".orbs";
}

void FsOrbitStore::note_exhausted() {
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t streak =
      failure_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= kDegradeAfter) {
    degraded_.store(true, std::memory_order_relaxed);
  }
}

void FsOrbitStore::note_ok() {
  failure_streak_.store(0, std::memory_order_relaxed);
}

void FsOrbitStore::quarantine(const std::string& path) {
  // A unique suffix per quarantine keeps successive corruptions of a
  // re-published key from clobbering each other's evidence; rename stays
  // within the directory so it is atomic, and a losing racer's failure
  // is fine — the file is gone either way.
  const std::uint64_t n =
      quarantined_.fetch_add(1, std::memory_order_relaxed);
  const std::string aside = path + ".quarantined-" + std::to_string(n);
  std::error_code ec;
  std::filesystem::rename(path, aside, ec);
  if (ec) {
    quarantined_.fetch_sub(1, std::memory_order_relaxed);
    std::filesystem::remove(path, ec);  // last resort: stop the re-fail loop
  }
}

std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet> FsOrbitStore::load(
    const sim::OrbitKey& key) {
  if (degraded_.load(std::memory_order_relaxed)) return nullptr;
  const std::string path = path_for(key);
  loads_.fetch_add(1, std::memory_order_relaxed);
  // Transient-failure half: distinguish ABSENT (a genuine miss — no
  // retry, the common case) from an EXISTING file that cannot be read
  // (retried on the backoff schedule).
  std::optional<std::vector<std::uint8_t>> bytes;
  util::RetryStats rs;
  const bool ok = util::retry_bool(retry_, &rs, [&] {
    if (util::failpoint_error("fs_store.load")) return false;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      bytes.reset();
      return true;  // miss, not a failure
    }
    bytes = read_file(path);
    return bytes.has_value();
  });
  retries_.fetch_add(rs.retries, std::memory_order_relaxed);
  if (!ok) {
    read_failures_.fetch_add(1, std::memory_order_relaxed);
    note_exhausted();
    return nullptr;
  }
  // A genuine miss is NEUTRAL for the degradation streak: exists()
  // succeeding proves nothing about read/write health, and the common
  // load-miss / store-fail alternation of a write-dead tier must not
  // keep resetting the streak below the threshold.
  if (!bytes.has_value()) return nullptr;
  note_ok();
  try {
    if (util::failpoint_error("fs_store.load.decode")) {
      throw SerializeError("injected decode fault (fs_store.load.decode)");
    }
    return deserialize_orbit_set(
        unframe_payload(WireKind::kOrbitSet, *bytes));
  } catch (const std::exception&) {
    // Torn/corrupt/foreign-version file == tier miss. The codec throws
    // SerializeError for everything it detects, but the contract — a
    // broken tier entry must never escape into the sweep with the cache
    // claim held — is worth the belt-and-suspenders catch (bad_alloc
    // from a forged size the checks missed, filesystem surprises).
    // Decoding is deterministic, so the file can never serve this key:
    // quarantine it instead of re-reading and re-failing on every miss.
    decode_failures_.fetch_add(1, std::memory_order_relaxed);
    quarantine(path);
    return nullptr;
  }
}

void FsOrbitStore::store(
    const sim::OrbitKey& key,
    const std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>& set) {
  if (set == nullptr || degraded_.load(std::memory_order_relaxed)) return;
  const std::vector<std::uint8_t> framed =
      frame_payload(WireKind::kOrbitSet, serialize_orbit_set(*set));
  const std::string path = path_for(key);
  stores_.fetch_add(1, std::memory_order_relaxed);
  util::RetryStats rs;
  const bool ok = util::retry_bool(retry_, &rs, [&] {
    if (util::failpoint_error("fs_store.store")) return false;
    return write_file_atomic(path, framed);
  });
  retries_.fetch_add(rs.retries, std::memory_order_relaxed);
  if (!ok) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    note_exhausted();
    return;  // best effort: the in-memory tier stays authoritative
  }
  note_ok();
}

FsOrbitStore::Stats FsOrbitStore::stats() const {
  Stats s;
  s.loads = loads_.load(std::memory_order_relaxed);
  s.read_failures = read_failures_.load(std::memory_order_relaxed);
  s.decode_failures = decode_failures_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.store_failures = store_failures_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  return s;
}

sim::OrbitTierFaultStats FsOrbitStore::fault_stats() const {
  const Stats s = stats();
  return {s.retries, s.exhausted, s.quarantined, s.degraded};
}

}  // namespace rvt::dist

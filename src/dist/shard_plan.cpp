#include "dist/shard_plan.hpp"

#include <stdexcept>

namespace rvt::dist {

namespace {

/// Two independent FNV-1a streams fed the same words — the same
/// construction as the orbit cache's content keys.
struct Hash2 {
  std::uint64_t hi = 0xcbf29ce484222325ull;
  std::uint64_t lo = 0x9e3779b97f4a7c15ull;
  void feed(std::uint64_t word) {
    hi = (hi ^ word) * 0x100000001b3ull;
    lo = (lo ^ (word * 0xff51afd7ed558ccdull)) * 0xc4ceb9fe1a85ec53ull;
    lo ^= lo >> 33;
  }
  void feed_str(const std::string& s) {
    feed(s.size());
    for (const char c : s) feed(static_cast<std::uint8_t>(c));
  }
  ShardId id() const { return {hi, lo}; }
};

ShardId derive_shard_id(const ShardId& fingerprint, std::uint64_t begin,
                        std::uint64_t end) {
  Hash2 h;
  h.feed(fingerprint.hi);
  h.feed(fingerprint.lo);
  h.feed(begin);
  h.feed(end);
  return h.id();
}

}  // namespace

std::string shard_id_hex(const ShardId& id) { return hex128(id.hi, id.lo); }

ShardId workload_fingerprint(const EnumWorkload& w) {
  Hash2 h;
  h.feed(kWireVersion);  // the code schema: bump invalidates every plan
  h.feed_str(w.spec());
  h.feed(w.count());
  h.feed(w.max_rounds());
  for (const sim::EnumGrid& g : w.grids()) {
    const sim::OrbitKey tk = sim::tree_orbit_key(*g.tree);
    h.feed(tk.hi);
    h.feed(tk.lo);
    h.feed(g.agents);
    h.feed(g.starts.size());
    for (const tree::NodeId s : g.starts) {
      h.feed(static_cast<std::uint64_t>(s));
    }
    for (const std::uint64_t d : g.delays) h.feed(d);
  }
  return h.id();
}

ShardPlan make_shard_plan(const EnumWorkload& w, unsigned shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("make_shard_plan: shard_count must be >= 1");
  }
  const std::uint64_t count = w.count();
  if (count == 0) {
    throw std::invalid_argument("make_shard_plan: empty workload");
  }
  ShardPlan plan;
  plan.workload_spec = w.spec();
  plan.count = count;
  plan.max_rounds = w.max_rounds();
  plan.fingerprint = workload_fingerprint(w);
  const std::uint64_t shards =
      std::min<std::uint64_t>(shard_count, count);
  for (std::uint64_t i = 0; i < shards; ++i) {
    ShardSpec spec;
    spec.begin = count * i / shards;
    spec.end = count * (i + 1) / shards;
    spec.id = derive_shard_id(plan.fingerprint, spec.begin, spec.end);
    plan.shards.push_back(spec);
  }
  return plan;
}

std::vector<std::uint8_t> serialize_plan(const ShardPlan& plan) {
  WireWriter w;
  w.str(plan.workload_spec);
  w.u64(plan.count);
  w.u64(plan.max_rounds);
  w.u64(plan.fingerprint.hi);
  w.u64(plan.fingerprint.lo);
  w.u32(static_cast<std::uint32_t>(plan.shards.size()));
  for (const ShardSpec& s : plan.shards) {
    w.u64(s.begin);
    w.u64(s.end);
    w.u64(s.id.hi);
    w.u64(s.id.lo);
  }
  return w.take();
}

ShardPlan deserialize_plan(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ShardPlan plan;
  plan.workload_spec = r.str();
  plan.count = r.u64();
  plan.max_rounds = r.u64();
  plan.fingerprint.hi = r.u64();
  plan.fingerprint.lo = r.u64();
  const std::uint32_t shards = r.u32();
  plan.shards.resize(shards);
  for (ShardSpec& s : plan.shards) {
    s.begin = r.u64();
    s.end = r.u64();
    s.id.hi = r.u64();
    s.id.lo = r.u64();
  }
  r.expect_end();
  // Structural validation: shards must partition [0, count) contiguously
  // and every id must re-derive from (fingerprint, range) — a plan that
  // fails either was tampered with or written by a foreign build.
  if (plan.shards.empty() || plan.count == 0) {
    throw SerializeError("shard plan: empty");
  }
  std::uint64_t expect = 0;
  for (const ShardSpec& s : plan.shards) {
    if (s.begin != expect || s.end <= s.begin || s.end > plan.count) {
      throw SerializeError("shard plan: shards do not partition [0, count)");
    }
    if (!(s.id == derive_shard_id(plan.fingerprint, s.begin, s.end))) {
      throw SerializeError("shard plan: shard id does not re-derive");
    }
    expect = s.end;
  }
  if (expect != plan.count) {
    throw SerializeError("shard plan: shards do not cover count");
  }
  return plan;
}

void write_plan(const std::string& path, const ShardPlan& plan) {
  const std::vector<std::uint8_t> framed =
      frame_payload(WireKind::kShardPlan, serialize_plan(plan));
  if (!write_file_atomic(path, framed)) {
    throw SerializeError("shard plan: cannot write " + path);
  }
}

ShardPlan load_plan(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) {
    throw SerializeError("shard plan: cannot read " + path);
  }
  return deserialize_plan(unframe_payload(WireKind::kShardPlan, *bytes));
}

}  // namespace rvt::dist

// One shard's worth of enumeration, journaled and resumable.
//
// run_shard() drives the workload's indices [begin, end) through a fused
// EnumerationContext (optionally over an OrbitCache whose backing tier
// is a shared filesystem — the cross-process claim/publish protocol) and
// appends one verdict-summary record per index to the shard's journal:
//
//  * fresh shard  -> journal created, every index computed;
//  * killed shard -> the journal's valid prefix is kept, the torn tail
//    truncated, and ONLY the uncommitted indices recompute (resumability
//    is exact because sweep results are index-deterministic);
//  * sealed shard -> detected double completion: nothing recomputes,
//    nothing is appended, the caller sees already_complete.
#pragma once

#include <cstdint>
#include <string>

#include "dist/journal.hpp"
#include "dist/workload.hpp"
#include "obs/enum_stats.hpp"
#include "sim/orbit_cache.hpp"

namespace rvt::dist {

struct ShardRunStats {
  std::uint64_t committed_before = 0;  ///< indices resumed past
  std::uint64_t computed = 0;          ///< indices computed this run
  bool already_complete = false;       ///< double completion detected
  std::uint64_t sum = 0;               ///< shard aggregate after the run
  sim::EnumTelemetry telemetry;        ///< this run's pipeline telemetry
  obs::EnumDelayStats delay;           ///< enumeration-complexity stats
};

struct ShardRunOptions {
  /// When > 0, emit a one-line structured progress report to stderr
  /// every this-many milliseconds of shard compute:
  ///   progress shard=<i> committed=<n> survivors=<n>
  ///            inter_result_delay_p50_ms=<x> inter_result_delay_p99_ms=<y>
  /// Off (0) by default — progress is an operator aid, not telemetry.
  std::uint64_t progress_interval_ms = 0;
};

/// Runs shard `shard_index` of `plan` for workload `w`, journaling under
/// `journal_dir` (created if missing). `cache` may be null (no orbit
/// sharing); attach an FsOrbitStore-backed cache to share extractions
/// across the machine boundary. Throws std::invalid_argument if the
/// plan does not match the workload (fingerprint or shard index), and
/// SerializeError on unusable journal IO.
ShardRunStats run_shard(const EnumWorkload& w, const ShardPlan& plan,
                        std::size_t shard_index,
                        const std::string& journal_dir,
                        sim::OrbitCache* cache = nullptr,
                        const ShardRunOptions& options = {});

}  // namespace rvt::dist

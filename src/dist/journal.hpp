// Crash-safe append-only shard journals.
//
// A shard runner streams one fixed-size record per completed enumeration
// index — the incremental-delay discipline: bounded state per emitted
// verdict summary, nothing buffered that a crash could lose beyond the
// record being appended. The file layout is
//
//     [ preamble | record | record | ... | DONE record ]
//
// where the preamble binds the journal to its shard (shard id, plan
// fingerprint, index range) and every 32-byte record carries its own
// checksum. Recovery is a single forward scan: the VALID PREFIX ends at
// the first truncated, checksum-broken or out-of-order record — a
// process killed mid-append loses at most the torn tail, and a rerun
// resumes at the first uncommitted index without recomputing anything
// before it (JournalWriter::resume truncates the torn tail first, so
// the file never contains bytes the scan rejected). The DONE record
// seals the shard with its aggregate; a sealed journal makes a second
// `shard run` a detected no-op (double-completion), and only sealed
// journals merge.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "dist/shard_plan.hpp"

namespace rvt::dist {

/// What binds a journal to its shard; serialized into the preamble.
struct JournalHeader {
  ShardId shard_id;
  ShardId fingerprint;      ///< plan fingerprint (workload + schema)
  std::uint64_t begin = 0;  ///< index range of the shard
  std::uint64_t end = 0;
};

/// Result of scanning a journal file.
struct JournalState {
  JournalHeader header;
  std::uint64_t next_index = 0;  ///< first index NOT committed
  std::uint64_t sum = 0;         ///< sum of committed values
  bool complete = false;         ///< DONE record present and consistent
  std::uint64_t valid_bytes = 0; ///< prefix a resume may append after
};

/// Canonical journal filename for a shard (under `dir`).
std::string journal_path(const std::string& dir, const ShardSpec& spec);

/// Scans `path`. Returns nullopt if the file does not exist; throws
/// SerializeError if the preamble is missing/corrupt (the journal is
/// unusable — recreate it). Record-level damage is NOT an error: the
/// scan stops at the first bad record and reports the valid prefix.
std::optional<JournalState> read_journal(const std::string& path);

/// Appender. Records must be fed in index order (begin, begin+1, ...);
/// the writer enforces it — the journal's recovery scan depends on
/// contiguity. Flushes every record to the stream (the crash-safety
/// unit is the 32-byte record; a torn tail is dropped by the scan).
class JournalWriter {
 public:
  /// Creates/overwrites `path` with a fresh preamble.
  static JournalWriter create(const std::string& path,
                              const JournalHeader& header);
  /// Opens `path` for appending after state.valid_bytes, truncating the
  /// torn tail first. Throws SerializeError if the journal is already
  /// complete (double completion is the CALLER's branch to handle —
  /// see run_shard) or the state does not match `header`.
  static JournalWriter resume(const std::string& path,
                              const JournalHeader& header,
                              const JournalState& state);

  JournalWriter(JournalWriter&&) = default;
  JournalWriter& operator=(JournalWriter&&) = default;

  /// Appends the record for `index` (must be the next uncommitted one).
  void record(std::uint64_t index, std::uint64_t value);
  /// Seals the journal: every index of [begin, end) must be committed,
  /// and `total` must equal the running sum (defensive: the aggregate a
  /// merge trusts is cross-checked at the source).
  void finish(std::uint64_t total);

  std::uint64_t next_index() const { return next_; }
  std::uint64_t sum() const { return sum_; }

 private:
  JournalWriter() = default;

  std::string path_;
  JournalHeader header_;
  std::uint64_t next_ = 0;
  std::uint64_t sum_ = 0;
  bool finished_ = false;
  // FILE* under unique_ptr so the type stays movable.
  struct FileCloser {
    void operator()(std::FILE* f) const;
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
};

}  // namespace rvt::dist

// Observability root: the compile-time gate, the runtime gate, and the
// monotonic clock every obs component timestamps against.
//
// The subsystem follows the failpoint discipline (util/failpoint.hpp):
// instrumentation sites are compiled in permanently under the default
// build and cost ONE relaxed atomic load + predictable branch while
// observation is idle — cheap enough to leave in the enumeration hot
// path, as the E10 on/off overhead probe asserts (<= 1.05x). For builds
// that want the sites gone entirely, `-DRVT_OBS=OFF` (CMake) defines
// RVT_OBS_ENABLED=0 and the RVT_OBS_SPAN macro compiles to nothing; the
// offline halves (histogram snapshots, trace-file decoding, exporters,
// validators) stay compiled so tools and reports work in every build.
//
// Clock domains: every timestamp here is std::chrono::steady_clock
// rendered as nanoseconds (now_ns()). Steady time is process-local —
// two processes' raw timestamps are NOT comparable — so cross-process
// stitching happens by trace/campaign ID (obs/trace.hpp), never by
// clock arithmetic. Durations and inter-result delays are differences
// of one process's steady clock and therefore immune to wall-clock
// steps. See DESIGN.md "Observability".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

// Compile-time gate. The build defines RVT_OBS_ENABLED=0 under
// -DRVT_OBS=OFF; default (and any non-CMake inclusion) is on.
#ifndef RVT_OBS_ENABLED
#define RVT_OBS_ENABLED 1
#endif

namespace rvt::obs {

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// The runtime gate every hot instrumentation site checks first: one
/// relaxed load. Off by default — a process observes nothing until a
/// driver opts in (set_enabled(), or trace::configure_from_env() seeing
/// RVT_TRACE_FILE). Library code never flips this; drivers do.
inline bool enabled() {
#if RVT_OBS_ENABLED
  return detail::enabled_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds since an arbitrary process-local epoch
/// (steady_clock). Comparable within one process only.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rvt::obs

#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "dist/serialize.hpp"

namespace rvt::obs {

namespace {

struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::atomic<std::uint64_t> head{0};  ///< total events ever pushed
  std::uint64_t flushed = 0;           ///< consumed by flush(); its lock
  std::uint16_t tid = 0;

  ThreadBuffer() : ring(kRingCapacity) {}

  void push(const TraceEvent& ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    ring[h % kRingCapacity] = ev;
    head.store(h + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::mutex mu;  ///< guards threads/names/path and serializes flush()
  std::vector<std::shared_ptr<ThreadBuffer>> threads;
  std::vector<std::string> names;
  std::map<std::string, std::uint32_t> name_ids;
  std::string path;
  std::atomic<std::uint64_t> campaign{0};
  std::atomic<std::uint64_t> dropped{0};
};

TraceState& state() {
  static TraceState s;
  return s;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    b->tid = static_cast<std::uint16_t>(s.threads.size());
    s.threads.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

std::uint32_t intern(const std::string& name) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.name_ids.find(name);
  if (it != s.name_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(s.names.size());
  s.names.push_back(name);
  s.name_ids.emplace(name, id);
  return id;
}

void record_span(std::uint32_t name_id, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint64_t a, std::uint64_t b) {
  if (!enabled()) return;
  ThreadBuffer& buf = thread_buffer();
  TraceEvent ev;
  ev.ts_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.a = a;
  ev.b = b;
  ev.name_id = name_id;
  ev.tid = buf.tid;
  ev.kind = EventKind::kSpan;
  buf.push(ev);
}

void record_instant(std::uint32_t name_id, std::uint64_t a, std::uint64_t b) {
  if (!enabled()) return;
  ThreadBuffer& buf = thread_buffer();
  TraceEvent ev;
  ev.ts_ns = now_ns();
  ev.a = a;
  ev.b = b;
  ev.name_id = name_id;
  ev.tid = buf.tid;
  ev.kind = EventKind::kInstant;
  buf.push(ev);
}

void set_campaign_id(std::uint64_t id) {
  state().campaign.store(id, std::memory_order_relaxed);
}

std::uint64_t campaign_id() {
  return state().campaign.load(std::memory_order_relaxed);
}

void set_trace_path(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = path;
}

std::string trace_path() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

void configure_from_env() {
  const char* path = std::getenv("RVT_TRACE_FILE");
  if (path == nullptr || path[0] == '\0') return;
  set_trace_path(path);
  set_enabled(true);
}

std::uint64_t dropped_events() {
  return state().dropped.load(std::memory_order_relaxed);
}

std::uint64_t flush() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.path.empty()) return 0;

  std::vector<TraceEvent> events;
  for (const auto& buf : s.threads) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    std::uint64_t start = head > kRingCapacity ? head - kRingCapacity : 0;
    if (start < buf->flushed) start = buf->flushed;
    if (start > buf->flushed) {
      s.dropped.fetch_add(start - buf->flushed, std::memory_order_relaxed);
    }
    for (std::uint64_t i = start; i < head; ++i) {
      events.push_back(buf->ring[i % kRingCapacity]);
    }
    buf->flushed = head;
  }
  if (events.empty()) return 0;

  dist::WireWriter w;
  w.u64(s.campaign.load(std::memory_order_relaxed));
  w.u64(s.dropped.load(std::memory_order_relaxed));
  w.u32(static_cast<std::uint32_t>(s.names.size()));
  for (const std::string& name : s.names) w.str(name);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const TraceEvent& ev : events) {
    w.u64(ev.ts_ns);
    w.u64(ev.dur_ns);
    w.u64(ev.a);
    w.u64(ev.b);
    w.u32(ev.name_id);
    w.u16(ev.tid);
    w.u8(static_cast<std::uint8_t>(ev.kind));
  }
  const std::vector<std::uint8_t> frame =
      dist::frame_payload(dist::WireKind::kTraceChunk, w.bytes());

  std::ofstream os(s.path, std::ios::binary | std::ios::app);
  os.write(reinterpret_cast<const char*>(frame.data()),
           static_cast<std::streamsize>(frame.size()));
  os.flush();
  if (!os.good()) return 0;  // best-effort: a failed flush loses the batch
  return frame.size();
}

namespace {

TraceChunk decode_chunk(std::span<const std::uint8_t> payload) {
  dist::WireReader r(payload);
  TraceChunk c;
  c.campaign_id = r.u64();
  c.dropped = r.u64();
  const std::uint32_t names = r.u32();
  c.names.reserve(names);
  for (std::uint32_t i = 0; i < names; ++i) c.names.push_back(r.str());
  const std::uint32_t count = r.u32();
  c.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceEvent ev;
    ev.ts_ns = r.u64();
    ev.dur_ns = r.u64();
    ev.a = r.u64();
    ev.b = r.u64();
    ev.name_id = r.u32();
    ev.tid = r.u16();
    ev.kind = static_cast<EventKind>(r.u8());
    c.events.push_back(ev);
  }
  r.expect_end();
  return c;
}

}  // namespace

TraceFile read_trace_file(const std::string& path) {
  TraceFile out;
  const auto bytes = dist::read_file(path);
  if (!bytes.has_value()) return out;
  const std::span<const std::uint8_t> file(*bytes);
  std::size_t offset = 0;
  while (offset < file.size()) {
    // Anything that fails to decode from here on is the torn tail a
    // crashed appender left behind: truncate, exactly like a journal.
    const std::size_t left = file.size() - offset;
    if (left < dist::kWireFrameBytes) break;
    dist::FrameInfo info;
    try {
      info = dist::validate_frame_header(
          file.subspan(offset, dist::kWireFrameBytes));
    } catch (const dist::SerializeError&) {
      break;
    }
    if (info.kind != dist::WireKind::kTraceChunk) break;
    if (left - dist::kWireFrameBytes < info.payload_bytes) break;
    const auto payload =
        file.subspan(offset + dist::kWireFrameBytes,
                     static_cast<std::size_t>(info.payload_bytes));
    if (dist::fnv1a64(payload) != info.payload_checksum) break;
    try {
      out.chunks.push_back(decode_chunk(payload));
    } catch (const dist::SerializeError&) {
      break;
    }
    offset += dist::kWireFrameBytes +
              static_cast<std::size_t>(info.payload_bytes);
  }
  out.truncated_bytes = file.size() - offset;
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

std::string export_chrome_trace(const TraceFile& trace) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceChunk& chunk : trace.chunks) {
    for (const TraceEvent& ev : chunk.events) {
      const std::string name = ev.name_id < chunk.names.size()
                                   ? chunk.names[ev.name_id]
                                   : "name#" + std::to_string(ev.name_id);
      os << (first ? "\n" : ",\n");
      first = false;
      os << "  {\"name\": \"" << json_escape(name)
         << "\", \"cat\": \"rvt\", \"ph\": \""
         << (ev.kind == EventKind::kSpan ? "X" : "i") << "\", \"ts\": "
         << format_us(ev.ts_ns);
      if (ev.kind == EventKind::kSpan) {
        os << ", \"dur\": " << format_us(ev.dur_ns);
      } else {
        os << ", \"s\": \"t\"";
      }
      os << ", \"pid\": " << chunk.campaign_id << ", \"tid\": " << ev.tid
         << ", \"args\": {\"a\": " << ev.a << ", \"b\": " << ev.b << "}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool validate_chrome_trace(const std::string& json, std::string* err) {
  const auto fail = [&](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  const std::size_t key = json.find("\"traceEvents\"");
  if (key == std::string::npos) return fail("no traceEvents key");
  std::size_t pos = json.find('[', key);
  if (pos == std::string::npos) return fail("traceEvents is not an array");
  ++pos;
  std::size_t events = 0;
  while (true) {
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == '\n' || json[pos] == '\r' ||
            json[pos] == '\t' || json[pos] == ',')) {
      ++pos;
    }
    if (pos >= json.size()) return fail("unterminated traceEvents array");
    if (json[pos] == ']') break;
    if (json[pos] != '{') return fail("traceEvents element is not an object");
    // Scan the balanced object, skipping strings (with escapes).
    const std::size_t obj_start = pos;
    int depth = 0;
    bool in_string = false;
    for (; pos < json.size(); ++pos) {
      const char c = json[pos];
      if (in_string) {
        if (c == '\\') {
          ++pos;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++pos;
          break;
        }
      }
    }
    if (depth != 0) return fail("unbalanced event object");
    const std::string obj = json.substr(obj_start, pos - obj_start);
    for (const char* required : {"\"name\"", "\"ph\"", "\"ts\"", "\"pid\""}) {
      if (obj.find(required) == std::string::npos) {
        return fail("event " + std::to_string(events) + " missing " +
                    required);
      }
    }
    ++events;
  }
  if (events == 0) return fail("traceEvents array is empty");
  if (err != nullptr) err->clear();
  return true;
}

}  // namespace rvt::obs

// Lock-free metrics: counters, gauges and log-bucketed latency
// histograms behind a process-wide named registry, rendered to
// Prometheus text exposition format.
//
// The histogram layout is FIXED at 64 power-of-two buckets so that
// histograms recorded on different shards (different processes,
// different machines) merge bit-deterministically on the coordinator:
// bucket i of the merge is the integer sum of every input's bucket i,
// independent of merge order or grouping (integer addition is
// associative and commutative — the determinism argument in DESIGN.md
// "Observability"). Bucket 0 holds exact zeros; bucket i >= 1 holds
// values in [2^(i-1), 2^i - 1]; bucket 63 additionally absorbs
// everything above 2^62 - 1. A recorded value is therefore located by
// its bit width — one `std::bit_width` and one increment, no float
// math, no configuration to disagree about across versions.
//
// Two histogram types split the hot path from the bookkeeping path:
//  * Histogram — per-bucket relaxed atomics, safe to record into from
//    any thread with no lock (the registry hot path);
//  * HistogramSnapshot — plain integers with record/merge/quantile,
//    for single-threaded stats structs (ShardRunStats, WorkerReport)
//    and for coordinator state already serialized under its mutex.
// Histogram::snapshot() bridges the two.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace rvt::obs {

inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index of a recorded value: 0 for 0, else bit_width clamped to
/// the last bucket. bucket_upper_bound(i) is the largest value bucket i
/// can hold (UINT64_MAX for the absorbing last bucket).
inline std::size_t histogram_bucket(std::uint64_t v) {
  if (v == 0) return 0;
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

inline std::uint64_t histogram_bucket_upper_bound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << bucket) - 1;
}

/// Plain-integer histogram: the mergeable, serializable form. Not
/// thread-safe — use from one thread or under the owner's lock.
struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< saturating sum of recorded values

  void record(std::uint64_t v) {
    buckets[histogram_bucket(v)] += 1;
    count += 1;
    const std::uint64_t s = sum + v;
    sum = s < sum ? UINT64_MAX : s;  // saturate, never wrap
  }

  /// Bucket-wise integer add — associative and commutative, so any
  /// merge tree over the same shard set yields identical bytes.
  void merge(const HistogramSnapshot& other) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
    count += other.count;
    const std::uint64_t s = sum + other.sum;
    sum = s < sum ? UINT64_MAX : s;
  }

  /// Upper bound of the first bucket whose cumulative count reaches
  /// q * count (q in [0, 1]); 0 for an empty histogram. Quantiles are
  /// bucket-resolution (a factor-of-2 band), which is what a
  /// log-bucketed latency histogram can honestly claim.
  std::uint64_t quantile(double q) const;
};

/// Lock-free histogram for concurrent recording. Merging and quantiles
/// go through snapshot().
class Histogram {
 public:
  void record(std::uint64_t v) {
    buckets_[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Process-wide named metrics. Lookup takes a short mutex (hot sites
/// amortize it behind a static local reference); recording into the
/// returned metric is lock-free. Returned references are stable for the
/// process lifetime. Names must match the Prometheus metric-name
/// grammar [a-zA-Z_:][a-zA-Z0-9_:]* — registration asserts it so an
/// invalid name fails at the site, not in the scrape.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Prometheus text exposition (version 0.0.4): "# TYPE" headers,
  /// counters/gauges as single samples, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`. Sorted by
  /// metric name so the output is deterministic.
  std::string prometheus() const;

  /// Drops every registered metric — tests only (the registry is a
  /// process singleton and tests must not see each other's metrics).
  void reset_for_test();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// True iff `name` matches the Prometheus metric-name grammar.
bool valid_metric_name(const std::string& name);

/// Renders one snapshot as a Prometheus histogram family ("# TYPE",
/// cumulative `_bucket{le="..."}` up to the last occupied bucket, then
/// +Inf, `_sum`, `_count`) — shared by Registry::prometheus() and the
/// coordinator's /metrics rendering of report-side snapshots.
std::string prometheus_histogram(const std::string& name,
                                 const HistogramSnapshot& s);

/// Structural validator for Prometheus text exposition format — the
/// checker CI points at the live /metrics endpoint. Accepts comment
/// lines (# HELP / # TYPE), blank lines, and sample lines
/// `name[{labels}] value`; rejects anything else with a line-numbered
/// reason in *err. An empty body is invalid (a scrape that returned
/// nothing measured nothing).
bool validate_prometheus(const std::string& text, std::string* err);

}  // namespace rvt::obs

#include "obs/metrics.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace rvt::obs {

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th sample, 1-based; ceil without float edge cases.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank < count &&
      static_cast<double>(rank) < q * static_cast<double>(count)) {
    ++rank;
  }
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return histogram_bucket_upper_bound(i);
  }
  return histogram_bucket_upper_bound(kHistogramBuckets - 1);
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // deque: stable addresses across growth (the registry hands out
  // references that must outlive later registrations).
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_by_name;
  std::map<std::string, Gauge*> gauge_by_name;
  std::map<std::string, Histogram*> histogram_by_name;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl i;
  return i;
}

namespace {
void require_valid_name(const std::string& name) {
  if (!valid_metric_name(name)) {
    throw std::runtime_error("obs::Registry: invalid metric name '" + name +
                             "'");
  }
}
}  // namespace

Counter& Registry::counter(const std::string& name) {
  require_valid_name(name);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counter_by_name.find(name);
  if (it != im.counter_by_name.end()) return *it->second;
  im.counters.emplace_back();
  im.counter_by_name.emplace(name, &im.counters.back());
  return im.counters.back();
}

Gauge& Registry::gauge(const std::string& name) {
  require_valid_name(name);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauge_by_name.find(name);
  if (it != im.gauge_by_name.end()) return *it->second;
  im.gauges.emplace_back();
  im.gauge_by_name.emplace(name, &im.gauges.back());
  return im.gauges.back();
}

Histogram& Registry::histogram(const std::string& name) {
  require_valid_name(name);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histogram_by_name.find(name);
  if (it != im.histogram_by_name.end()) return *it->second;
  im.histograms.emplace_back();
  im.histogram_by_name.emplace(name, &im.histograms.back());
  return im.histograms.back();
}

void Registry::reset_for_test() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.counter_by_name.clear();
  im.gauge_by_name.clear();
  im.histogram_by_name.clear();
  im.counters.clear();
  im.gauges.clear();
  im.histograms.clear();
}

std::string Registry::prometheus() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream os;
  for (const auto& [name, c] : im.counter_by_name) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : im.gauge_by_name) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : im.histogram_by_name) {
    os << prometheus_histogram(name, h->snapshot());
  }
  return os.str();
}

std::string prometheus_histogram(const std::string& name,
                                 const HistogramSnapshot& s) {
  std::ostringstream os;
  os << "# TYPE " << name << " histogram\n";
  // Emit finite buckets only up to the last occupied one — the +Inf
  // bucket below carries the total, and 64 mostly-zero series per
  // histogram would drown the scrape.
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (s.buckets[i] != 0) last = i;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0;
       s.count != 0 && i <= last && i < kHistogramBuckets - 1; ++i) {
    cumulative += s.buckets[i];
    os << name << "_bucket{le=\"" << histogram_bucket_upper_bound(i) << "\"} "
       << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
  os << name << "_sum " << s.sum << "\n";
  os << name << "_count " << s.count << "\n";
  return os.str();
}

bool validate_prometheus(const std::string& text, std::string* err) {
  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (err != nullptr) {
      *err = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  std::size_t line_no = 0;
  std::size_t samples = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comment lines must be "# HELP ..." or "# TYPE ...".
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return fail(line_no, "comment is neither # HELP nor # TYPE");
      }
      continue;
    }
    // Sample: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string name = line.substr(0, name_end);
    if (!valid_metric_name(name)) {
      return fail(line_no, "invalid metric name '" + name + "'");
    }
    std::size_t pos = name_end;
    if (pos < line.size() && line[pos] == '{') {
      const std::size_t close = line.find('}', pos);
      if (close == std::string::npos) {
        return fail(line_no, "unterminated label set");
      }
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail(line_no, "missing value separator");
    }
    const std::string value = line.substr(pos + 1);
    if (value.empty()) return fail(line_no, "missing sample value");
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return fail(line_no, "unparseable sample value '" + value + "'");
      }
    }
    ++samples;
  }
  if (samples == 0) return fail(line_no, "no samples in exposition");
  if (err != nullptr) err->clear();
  return true;
}

}  // namespace rvt::obs

// Span/event trace recorder: per-thread ring buffers over the
// monotonic clock, flushed to a framed binary trace file and exported
// to Chrome-trace ("Perfetto") JSON by `rvt_cli trace export --chrome`.
//
// Recording discipline (the hot-path contract):
//  * a site names itself ONCE via a static-local intern() — the mutex
//    behind the string table is paid at first execution only;
//  * RVT_OBS_SPAN(site) costs one relaxed atomic load when observation
//    is idle (obs::enabled() false) and two clock reads plus one ring
//    slot when active; under -DRVT_OBS=OFF it compiles to nothing;
//  * each thread records into its own fixed ring (kRingCapacity
//    events). On overflow the OLDEST events are overwritten and a
//    dropped-events counter advances — the hot path never blocks and
//    never allocates after thread registration.
//
// Flushing happens at QUIESCENT points (end of a worker's run, end of
// a shard, CLI exit), never concurrently with hot recording: flush()
// walks every registered thread ring under the registration mutex and
// appends one kTraceChunk frame (32-byte checksummed wire header,
// dist/serialize.hpp) to the configured file. Each chunk is
// self-contained — it carries the full interned-name table — so a
// reader needs no cross-chunk state and a torn tail (a crash mid-
// append) truncates to the last whole chunk exactly like a torn shard
// journal.
//
// Cross-process stitching: raw steady-clock timestamps are process-
// local, so chunks carry the CAMPAIGN ID the coordinator mints and
// propagates through lease grants (svc/protocol.hpp, protocol v3).
// The Chrome exporter maps campaign id -> pid and thread id -> tid,
// so every worker's spans land under the campaign's process row in
// the trace viewer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace rvt::obs {

/// Per-thread ring capacity in events. At 39 wire bytes per event a
/// full ring flushes to ~640 KiB — bounded, and far more history than
/// a shard run needs between quiescent flushes.
inline constexpr std::size_t kRingCapacity = 1 << 14;

enum class EventKind : std::uint8_t {
  kSpan = 0,     ///< duration event: [ts_ns, ts_ns + dur_ns)
  kInstant = 1,  ///< point event: ts_ns (dur_ns = 0)
};

/// One recorded event; POD, fixed layout (serialized field-by-field,
/// never memcpy'd, so padding never reaches the wire).
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< steady-clock start, process-local
  std::uint64_t dur_ns = 0;  ///< 0 for instants
  std::uint64_t a = 0;       ///< site-defined argument (shard index, ...)
  std::uint64_t b = 0;       ///< site-defined argument
  std::uint32_t name_id = 0;
  std::uint16_t tid = 0;  ///< recorder-assigned small thread id
  EventKind kind = EventKind::kSpan;
};

/// Interns a site name, returning its stable id. Call once per site
/// through a static local:
///   static const std::uint32_t id = obs::intern("worker.lease");
std::uint32_t intern(const std::string& name);

/// Records a completed span / an instant event into the calling
/// thread's ring. No-ops (after the enabled() load) while idle.
void record_span(std::uint32_t name_id, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint64_t a = 0,
                 std::uint64_t b = 0);
void record_instant(std::uint32_t name_id, std::uint64_t a = 0,
                    std::uint64_t b = 0);

/// RAII span: stamps the clock on construction iff enabled, records on
/// destruction. Prefer the RVT_OBS_SPAN macro at call sites.
class Span {
 public:
  explicit Span(std::uint32_t name_id, std::uint64_t a = 0,
                std::uint64_t b = 0)
      : name_id_(name_id), a_(a), b_(b), start_(enabled() ? now_ns() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (start_ != 0) record_span(name_id_, start_, now_ns(), a_, b_);
  }

 private:
  std::uint32_t name_id_;
  std::uint64_t a_, b_;
  std::uint64_t start_;
};

// Scoped span macro: compiled out entirely under -DRVT_OBS=OFF, one
// relaxed load while idle otherwise. `site` must be a string literal.
#if RVT_OBS_ENABLED
#define RVT_OBS_CONCAT_(a, b) a##b
#define RVT_OBS_CONCAT(a, b) RVT_OBS_CONCAT_(a, b)
#define RVT_OBS_SPAN(site, ...)                                     \
  static const std::uint32_t RVT_OBS_CONCAT(rvt_obs_site_,          \
                                            __LINE__) =             \
      ::rvt::obs::intern(site);                                     \
  ::rvt::obs::Span RVT_OBS_CONCAT(rvt_obs_span_, __LINE__)(         \
      RVT_OBS_CONCAT(rvt_obs_site_, __LINE__), ##__VA_ARGS__)
#else
#define RVT_OBS_SPAN(site, ...) ((void)0)
#endif

/// The campaign/trace id recorded into every flushed chunk. Workers
/// adopt the id carried by their lease grant; the coordinator and
/// single-process drivers mint it (svc/coordinator.hpp derives it from
/// the plan fingerprint so resumed campaigns keep stitching).
void set_campaign_id(std::uint64_t id);
std::uint64_t campaign_id();

/// Binds the trace output file. Empty path disables flushing (events
/// still ring-buffer while enabled, then age out).
void set_trace_path(const std::string& path);
std::string trace_path();

/// Driver-only env hook, mirroring FailPointRegistry::configure_from_env:
/// RVT_TRACE_FILE=<path> binds the output file AND flips the runtime
/// gate on. Library code never calls this.
void configure_from_env();

/// Appends one kTraceChunk frame with every event recorded since the
/// last flush (all threads) to the configured file. Returns bytes
/// appended (0 when no path is bound or nothing was recorded). Call at
/// quiescent points only — concurrent hot-path recording during a
/// flush can lose (never corrupt) events.
std::uint64_t flush();

/// Total events overwritten in rings before they could be flushed.
std::uint64_t dropped_events();

// ---- offline half: trace-file decoding + export (always compiled) --------

/// One decoded kTraceChunk.
struct TraceChunk {
  std::uint64_t campaign_id = 0;
  std::uint64_t dropped = 0;  ///< dropped-events counter at flush time
  std::vector<std::string> names;
  std::vector<TraceEvent> events;
};

struct TraceFile {
  std::vector<TraceChunk> chunks;
  std::uint64_t truncated_bytes = 0;  ///< torn tail discarded, if any
};

/// Reads a trace file, truncating at the first undecodable frame —
/// incomplete header, short payload, checksum refusal — exactly like
/// the journal reader treats a torn tail. Every whole chunk before the
/// tear survives; a missing file reads as an empty trace (traces are
/// diagnostics, never data of record).
TraceFile read_trace_file(const std::string& path);

/// Renders chunks to Chrome-trace JSON (the `{"traceEvents": [...]}`
/// object form): spans as ph="X" with microsecond ts/dur, instants as
/// ph="i", pid = campaign id, tid = recorder thread id.
std::string export_chrome_trace(const TraceFile& trace);

/// Structural checker for the exporter's output, used by CI on the
/// artifact exported from a live run: traceEvents array present, at
/// least one event, every event object carries name/ph/ts/pid.
bool validate_chrome_trace(const std::string& json, std::string* err);

}  // namespace rvt::obs

// Enumeration-complexity statistics: the per-shard / per-campaign
// observables the ROADMAP's K = 4 frontier campaign needs priced —
// time-to-first-survivor, the inter-result delay distribution, and
// survivor throughput — in the vocabulary of the enumeration-complexity
// literature (delay between consecutive emitted results, preprocessing
// time before the first one).
//
// A "result" is one enumerated index whose verdict summary was
// committed; a "survivor" is a result whose value is 0 (an automaton
// the battery failed to defeat — the objects a frontier campaign
// exists to find). Times are steady-clock nanoseconds relative to the
// measuring process's run start, so merged campaign numbers are
// conservative per-shard observations, never cross-clock arithmetic.
//
// EnumDelayStats merges exactly like its histogram: integer bucket/
// counter adds (associative, commutative), min over first-observation
// offsets, max over elapsed — any merge tree over the same shard set
// produces identical bytes (DESIGN.md "Observability").
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace rvt::obs {

struct EnumDelayStats {
  /// Nanoseconds from run start to the first committed result /
  /// survivor; -1 while none has been observed (a zero-defeat battery
  /// legitimately never sees a survivor).
  std::int64_t time_to_first_result_ns = -1;
  std::int64_t time_to_first_survivor_ns = -1;
  std::uint64_t results = 0;
  std::uint64_t survivors = 0;
  std::uint64_t elapsed_ns = 0;  ///< run duration of the measuring process
  HistogramSnapshot inter_result_delay_ns;

  void merge(const EnumDelayStats& other) {
    const auto min_observed = [](std::int64_t a, std::int64_t b) {
      if (a < 0) return b;
      if (b < 0) return a;
      return a < b ? a : b;
    };
    time_to_first_result_ns =
        min_observed(time_to_first_result_ns, other.time_to_first_result_ns);
    time_to_first_survivor_ns = min_observed(time_to_first_survivor_ns,
                                             other.time_to_first_survivor_ns);
    results += other.results;
    survivors += other.survivors;
    if (other.elapsed_ns > elapsed_ns) elapsed_ns = other.elapsed_ns;
    inter_result_delay_ns.merge(other.inter_result_delay_ns);
  }

  double survivors_per_second() const {
    if (elapsed_ns == 0) return 0.0;
    return static_cast<double>(survivors) /
           (static_cast<double>(elapsed_ns) / 1e9);
  }

  /// Inter-result delay quantile in milliseconds (bucket resolution).
  double delay_quantile_ms(double q) const {
    return static_cast<double>(inter_result_delay_ns.quantile(q)) / 1e6;
  }
};

/// Accumulates EnumDelayStats over one run: call note_result() per
/// committed index, finish() once at the end. Single-threaded (each
/// shard runner / worker lease loop owns one).
class EnumDelayTracker {
 public:
  EnumDelayTracker() : start_ns_(now_ns()), last_result_ns_(start_ns_) {}

  void note_result(std::uint64_t value) {
    const std::uint64_t t = now_ns();
    if (stats_.time_to_first_result_ns < 0) {
      stats_.time_to_first_result_ns =
          static_cast<std::int64_t>(t - start_ns_);
    }
    stats_.inter_result_delay_ns.record(t - last_result_ns_);
    last_result_ns_ = t;
    stats_.results += 1;
    if (value == 0) {
      stats_.survivors += 1;
      if (stats_.time_to_first_survivor_ns < 0) {
        stats_.time_to_first_survivor_ns =
            static_cast<std::int64_t>(t - start_ns_);
      }
    }
  }

  /// Stamps elapsed time and returns the finished stats (idempotent —
  /// later calls re-stamp elapsed).
  const EnumDelayStats& finish() {
    stats_.elapsed_ns = now_ns() - start_ns_;
    return stats_;
  }

  const EnumDelayStats& stats() const { return stats_; }
  std::uint64_t start_ns() const { return start_ns_; }

 private:
  std::uint64_t start_ns_;
  std::uint64_t last_result_ns_;
  EnumDelayStats stats_;
};

}  // namespace rvt::obs

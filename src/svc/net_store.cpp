#include "svc/net_store.hpp"

#include "dist/serialize.hpp"
#include "net/frame.hpp"
#include "svc/protocol.hpp"

namespace rvt::svc {

namespace {

/// Round trip one request on an established stream; throws NetError /
/// SerializeError on any failure. A kError reply is a refusal the
/// caller treats as a miss (thrown as NetError so the retry-once path
/// reconnects — a refusal after handshake means a confused session).
net::Frame round_trip(net::TcpStream& s, dist::WireKind kind,
                      const std::vector<std::uint8_t>& payload) {
  net::send_frame(s, kind, payload);
  net::Frame f;
  const net::RecvStatus st = net::recv_frame(s, f, /*idle_ok=*/false);
  if (st != net::RecvStatus::kFrame) {
    throw net::NetError("net-store: coordinator closed the session");
  }
  if (f.kind == dist::WireKind::kError) {
    throw net::NetError("net-store: coordinator refused: " +
                        decode_error_reply(f.payload).message);
  }
  if (f.kind != kind) {
    throw dist::SerializeError("net-store: reply kind mismatch");
  }
  return f;
}

}  // namespace

NetOrbitStore::NetOrbitStore(std::string host, std::uint16_t port,
                             std::string name)
    : host_(std::move(host)), port_(port), name_(std::move(name)) {}

NetOrbitStore::~NetOrbitStore() = default;

void NetOrbitStore::ensure_connected_locked() {
  if (stream_) return;
  auto s = net::tcp_connect(host_, port_);
  s->set_read_timeout_ms(1000);
  HelloRequest hello;
  hello.role = "store";
  hello.name = name_;
  const net::Frame ack =
      round_trip(*s, dist::WireKind::kHello, encode(hello));
  const HelloReply reply = decode_hello_reply(ack.payload);
  if (reply.protocol != kServiceProtocolVersion) {
    throw net::NetError("net-store: protocol version mismatch");
  }
  stream_ = std::move(s);
}

void NetOrbitStore::note_exhausted_locked() {
  ++exhausted_;
  if (++failure_streak_ >= kDegradeAfter) degraded_ = true;
}

bool NetOrbitStore::probe_due_locked() {
  return ++degraded_skips_ % kProbeEvery == 0;
}

void NetOrbitStore::note_probe_success_locked() {
  // Any transport-healthy round trip proves the coordinator is back —
  // found or not; the degradation was about TRANSPORT, so its recovery
  // is too.
  degraded_ = false;
  failure_streak_ = 0;
  degraded_skips_ = 0;
  ++undegrades_;
}

std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>
NetOrbitStore::load(const sim::OrbitKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool probing = degraded_;
  if (probing && !probe_due_locked()) return nullptr;
  ++loads_;
  OrbitGetReply reply;
  bool ok = false;
  // A probe gets ONE attempt — a degraded tier must not pay the
  // retry-once tax per probe on a coordinator that is still down.
  const int attempts = probing ? 1 : 2;
  for (int attempt = 0; attempt < attempts && !ok; ++attempt) {
    try {
      ensure_connected_locked();
      const net::Frame f = round_trip(*stream_, dist::WireKind::kOrbitGet,
                                      encode(OrbitGet{key}));
      reply = decode_orbit_get_reply(f.payload);
      ok = true;
    } catch (const std::exception&) {
      stream_.reset();
      if (attempt == 0 && !probing) {
        ++reconnects_;
      } else if (probing) {
        return nullptr;  // still down; streak untouched, stay degraded
      } else {
        note_exhausted_locked();
        return nullptr;
      }
    }
  }
  if (probing) note_probe_success_locked();
  // Like FsOrbitStore, an absent key is NEUTRAL for the degradation
  // streak; only a transport-healthy round trip that DELIVERED a set
  // proves the tier useful enough to reset it.
  if (!reply.found) return nullptr;
  failure_streak_ = 0;
  try {
    const auto set = dist::deserialize_orbit_set(reply.payload);
    ++hits_;
    return set;
  } catch (const std::exception&) {
    // Corrupt payload == tier miss, never an escape into the sweep.
    ++decode_failures_;
    return nullptr;
  }
}

void NetOrbitStore::store(
    const sim::OrbitKey& key,
    const std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>& set) {
  if (set == nullptr) return;
  std::lock_guard<std::mutex> lk(mu_);
  const bool probing = degraded_;
  if (probing && !probe_due_locked()) return;
  ++stores_;
  OrbitPut put;
  put.key = key;
  put.payload = dist::serialize_orbit_set(*set);
  const int attempts = probing ? 1 : 2;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    try {
      ensure_connected_locked();
      round_trip(*stream_, dist::WireKind::kOrbitPut, encode(put));
      if (probing) note_probe_success_locked();
      failure_streak_ = 0;
      return;
    } catch (const std::exception&) {
      stream_.reset();
      if (attempt == 0 && !probing) ++reconnects_;
    }
  }
  if (probing) return;  // still down; streak untouched, stay degraded
  note_exhausted_locked();  // best effort: the in-memory tier is enough
}

NetOrbitStore::Stats NetOrbitStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {loads_,      hits_,           stores_,     reconnects_,
          exhausted_,  decode_failures_, undegrades_, degraded_};
}

sim::OrbitTierFaultStats NetOrbitStore::fault_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {reconnects_, exhausted_, 0, degraded_};
}

}  // namespace rvt::svc

#include "svc/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "dist/workload.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/enum_stats.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "svc/net_store.hpp"
#include "svc/protocol.hpp"
#include "util/failpoint.hpp"

namespace rvt::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// A refusal no amount of reconnecting can fix: protocol version or
/// plan fingerprint mismatch, unknown role. Subclasses NetError so the
/// caller's contract is unchanged; the reconnect loop rethrows it
/// instead of burning the backoff budget on a coordinator that will
/// keep saying no.
struct FatalWorkerError : net::NetError {
  using net::NetError::NetError;
};

/// Sends a request and reads its reply (`expect` — every reply echoes
/// its request's kind except kLeaseRequest, answered with kLeaseGrant).
/// A kError reply throws NetError with the coordinator's message; any
/// other unexpected kind is a protocol violation.
net::Frame round_trip(net::TcpStream& s, dist::WireKind kind,
                      const std::vector<std::uint8_t>& payload,
                      dist::WireKind expect) {
  net::send_frame(s, kind, payload);
  net::Frame f;
  const net::RecvStatus st = net::recv_frame(s, f, /*idle_ok=*/false);
  if (st != net::RecvStatus::kFrame) {
    throw net::NetError("worker: coordinator closed the session");
  }
  if (f.kind == dist::WireKind::kError) {
    const ErrorReply err = decode_error_reply(f.payload);
    throw net::NetError("worker: coordinator refused (code " +
                        std::to_string(static_cast<unsigned>(err.code)) +
                        "): " + err.message);
  }
  if (f.kind != expect) {
    throw dist::SerializeError("worker: reply kind mismatch");
  }
  return f;
}

net::Frame round_trip(net::TcpStream& s, dist::WireKind kind,
                      const std::vector<std::uint8_t>& payload) {
  return round_trip(s, kind, payload, kind);
}

/// One connect + hello attempt. Returns the handshaked stream, or null
/// on a TRANSIENT failure (unreachable, dropped, garbled) the backoff
/// schedule should absorb. Throws FatalWorkerError on a refusal that
/// retrying cannot change.
std::unique_ptr<net::TcpStream> try_connect(const std::string& host,
                                            std::uint16_t port,
                                            const WorkerOptions& opt,
                                            const dist::ShardId& bound_fp,
                                            std::uint64_t reconnects,
                                            HelloReply* ack_out) {
  try {
    auto s = net::tcp_connect(host, port);
    s->set_read_timeout_ms(static_cast<unsigned>(opt.io_timeout_ms));
    HelloRequest hello;
    hello.role = "worker";
    hello.name = opt.name;
    hello.fingerprint = bound_fp;
    hello.reconnects = reconnects;
    net::send_frame(*s, dist::WireKind::kHello, encode(hello));
    net::Frame f;
    const net::RecvStatus st = net::recv_frame(*s, f, /*idle_ok=*/false);
    if (st != net::RecvStatus::kFrame) {
      throw net::NetError("worker: coordinator closed during handshake");
    }
    if (f.kind == dist::WireKind::kError) {
      const ErrorReply err = decode_error_reply(f.payload);
      throw FatalWorkerError(
          "worker: coordinator refused the hello (code " +
          std::to_string(static_cast<unsigned>(err.code)) + "): " +
          err.message);
    }
    if (f.kind != dist::WireKind::kHello) {
      throw dist::SerializeError("worker: handshake reply kind mismatch");
    }
    const HelloReply ack = decode_hello_reply(f.payload);
    if (ack.protocol != kServiceProtocolVersion) {
      throw FatalWorkerError("worker: coordinator speaks service protocol " +
                             std::to_string(ack.protocol) + ", this build " +
                             std::to_string(kServiceProtocolVersion));
    }
    if ((bound_fp.hi != 0 || bound_fp.lo != 0) &&
        !(ack.fingerprint == bound_fp)) {
      throw FatalWorkerError(
          "worker: reconnected to a coordinator serving a different plan");
    }
    *ack_out = ack;
    return s;
  } catch (const FatalWorkerError&) {
    throw;
  } catch (const net::NetError&) {
    return nullptr;
  } catch (const dist::SerializeError&) {
    return nullptr;  // a garbled handshake is transient, like a drop
  }
}

/// One structured progress line to stderr — same shape as run_shard's
/// local-runner line so fleet logs grep uniformly, plus the worker name.
void emit_progress(const std::string& name, std::uint64_t shard,
                   std::uint64_t computed, const obs::EnumDelayStats& d) {
  std::fprintf(stderr,
               "progress worker=%s shard=%llu computed=%llu survivors=%llu "
               "inter_result_delay_p50_ms=%.3f inter_result_delay_p99_ms=%.3f\n",
               name.c_str(), static_cast<unsigned long long>(shard),
               static_cast<unsigned long long>(computed),
               static_cast<unsigned long long>(d.survivors),
               d.delay_quantile_ms(0.50), d.delay_quantile_ms(0.99));
}

}  // namespace

WorkerReport run_worker(const std::string& host, std::uint16_t port,
                        const WorkerOptions& opt) {
  WorkerReport rep;
  dist::ShardId bound_fp{};  // zero until the first hello binds the plan
  std::unique_ptr<net::TcpStream> stream;
  HelloReply ack;

  // Every connect — the first included — rides the same bounded
  // backoff: a worker started before its coordinator simply waits for
  // it, identically to a worker whose coordinator is restarting.
  const auto connect = [&]() {
    util::RetryStats stats;
    std::unique_ptr<net::TcpStream> s;
    const bool ok = util::retry_bool(opt.reconnect, &stats, [&] {
      s = try_connect(host, port, opt, bound_fp, rep.reconnects, &ack);
      return s != nullptr;
    });
    rep.connect_retries += stats.retries;
    if (!ok) {
      throw net::NetError("worker: coordinator unreachable at " + host + ":" +
                          std::to_string(port) + " after " +
                          std::to_string(opt.reconnect.max_attempts) +
                          " attempts");
    }
    stream = std::move(s);
  };
  connect();

  // Re-derive the workload from the spec and refuse a fingerprint
  // mismatch — the same content-addressing refusal as run_shard: a
  // coordinator built from a different battery or schema must not get
  // records computed under this build's semantics.
  const auto w = dist::EnumWorkload::parse(ack.workload_spec);
  if (!(dist::workload_fingerprint(*w) == ack.fingerprint)) {
    throw net::NetError(
        "worker: plan fingerprint does not match this build's workload '" +
        ack.workload_spec + "' (different battery or schema version)");
  }
  bound_fp = ack.fingerprint;

  sim::OrbitCache cache;
  std::unique_ptr<dist::FsOrbitStore> fs_tier;
  std::unique_ptr<NetOrbitStore> net_tier;
  if (!opt.cache_dir.empty()) {
    fs_tier = std::make_unique<dist::FsOrbitStore>(opt.cache_dir);
    cache.set_backing(fs_tier.get());
  } else if (opt.remote_store) {
    net_tier =
        std::make_unique<NetOrbitStore>(host, port, opt.name + "-store");
    cache.set_backing(net_tier.get());
  }
  sim::EnumerationContext ctx(w->grids(), w->max_rounds(), &cache);

  // The lease a drop must not forget: grant + compute position + the
  // records not yet acknowledged by the coordinator.
  struct ActiveLease {
    LeaseGrant g;
    std::uint64_t next = 0;     ///< next index to compute
    std::uint64_t running = 0;  ///< running sum incl. buffered records
    std::vector<JournalRecord> buffer;
    Clock::time_point last_flush{};
  };
  std::optional<ActiveLease> lease;

  // One tracker for the whole run: every computed index is enumeration
  // work, whether or not its lease survived. Progress throttling rides
  // the same monotonic clock the tracker uses.
  obs::EnumDelayTracker delay;
  const std::uint64_t progress_interval_ns = opt.progress_interval_ms * 1000000;
  std::uint64_t next_progress_ns =
      progress_interval_ns == 0 ? 0 : obs::now_ns() + progress_interval_ns;

  const auto flush = [&](ActiveLease& al) -> bool {
    RVT_OBS_SPAN("svc.worker.flush", al.g.shard_index, al.buffer.size());
    JournalChunk chunk;
    chunk.shard_index = al.g.shard_index;
    chunk.token = al.g.token;
    chunk.records = al.buffer;
    const net::Frame cf =
        round_trip(*stream, dist::WireKind::kJournalChunk, encode(chunk));
    ++rep.chunks;
    const ChunkReply cr = decode_chunk_reply(cf.payload);
    if (!cr.accepted) return false;
    al.buffer.clear();
    al.last_flush = Clock::now();
    return true;
  };

  for (bool drained = false; !drained;) {
    try {
      if (!stream) {
        ++rep.reconnects;
        connect();
        if (lease) {
          // Probe the lease with an EMPTY chunk before resuming: an
          // accepted probe reports the coordinator's durable next_index
          // (a flush whose reply was lost may already be committed —
          // resending those records would read as out-of-order and cost
          // the attempt); a refused probe is the token fence — the
          // lease did not survive the restart, the committed prefix
          // did, and a fresh grant will resume from it.
          const net::Frame cf = round_trip(
              *stream, dist::WireKind::kJournalChunk,
              encode(JournalChunk{lease->g.shard_index, lease->g.token, {}}));
          ++rep.chunks;
          const ChunkReply cr = decode_chunk_reply(cf.payload);
          if (cr.accepted) {
            std::erase_if(lease->buffer, [&](const JournalRecord& r) {
              return r.index < cr.next_index;
            });
          } else {
            ++rep.revoked;
            ++rep.fenced;
            lease.reset();
          }
        }
      }
      if (!lease) {
        const net::Frame gf =
            round_trip(*stream, dist::WireKind::kLeaseRequest,
                       encode_lease_request(), dist::WireKind::kLeaseGrant);
        const LeaseGrant g = decode_lease_grant(gf.payload);
        if (g.status == LeaseStatus::kDrained) {
          drained = true;
        } else if (g.status == LeaseStatus::kWait) {
          // Stay observable while idle: heartbeat (token 0 = pure
          // liveness) through the backoff the coordinator asked for.
          const auto until =
              Clock::now() + std::chrono::milliseconds(g.retry_ms);
          do {
            round_trip(*stream, dist::WireKind::kHeartbeat,
                       encode(Heartbeat{0, 0}));
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min<std::uint64_t>(g.retry_ms, 50)));
          } while (Clock::now() < until);
        } else {
          ++rep.leases;
          // Adopt the coordinator-minted campaign id so every span this
          // worker flushes stitches to the coordinator's trace. A v2
          // grant carries no id (0) — leave whatever was configured.
          if (g.campaign_id != 0) obs::set_campaign_id(g.campaign_id);
          lease.emplace();
          lease->g = g;
          lease->next = g.next_index;
          lease->running = g.resume_sum;
          lease->last_flush = Clock::now();
        }
        continue;
      }
      bool lost = false;
      RVT_OBS_SPAN("svc.worker.compute", lease->g.shard_index,
                   lease->g.end - lease->next);
      while (lease->next < lease->g.end && !lost) {
        // Chaos hook: the network-runner twin of run_shard.index — die
        // (or error out of the session) at a chosen index with every
        // flushed chunk durably committed coordinator-side.
        switch (util::failpoint("worker.index")) {
          case util::FaultAction::kCrash:
            util::failpoint_crash("worker.index");
          case util::FaultAction::kError:
            throw dist::SerializeError("worker: injected fault at index " +
                                       std::to_string(lease->next));
          case util::FaultAction::kNone:
            break;
        }
        if (opt.throttle_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opt.throttle_ms));
        }
        const std::uint64_t i = lease->next++;
        const std::uint64_t v = w->defeats(ctx, i);
        lease->running += v;
        ++rep.indices;
        rep.defeats += v;
        delay.note_result(v);
        if (progress_interval_ns != 0 && obs::now_ns() >= next_progress_ns) {
          emit_progress(opt.name, lease->g.shard_index, rep.indices,
                        delay.stats());
          next_progress_ns = obs::now_ns() + progress_interval_ns;
        }
        lease->buffer.push_back({i, v});
        const bool interval_up =
            Clock::now() - lease->last_flush >=
            std::chrono::milliseconds(opt.flush_interval_ms);
        if ((lease->buffer.size() >= opt.chunk_records || interval_up) &&
            !flush(*lease)) {
          lost = true;
        }
      }
      if (!lost && !lease->buffer.empty() && !flush(*lease)) lost = true;
      if (lost) {
        ++rep.revoked;
        lease.reset();  // fresh lease request; the prefix stays committed
        continue;
      }
      const net::Frame sf = round_trip(
          *stream, dist::WireKind::kSeal,
          encode(Seal{lease->g.shard_index, lease->g.token, lease->running}));
      if (decode_seal_reply(sf.payload).accepted) {
        ++rep.sealed;
      } else {
        ++rep.revoked;
      }
      lease.reset();
    } catch (const FatalWorkerError&) {
      throw;
    } catch (const net::NetError&) {
      // Transport death mid-session: drop the stream and re-enter the
      // loop through the reconnect path. If the stream is already gone,
      // connect() itself exhausted its budget — give up for real.
      if (!stream) throw;
      stream.reset();
    }
  }

  rep.delay = delay.finish();
  rep.telemetry = ctx.telemetry();
  if (cache.backing() != nullptr) {
    const sim::OrbitTierFaultStats fs = cache.backing()->fault_stats();
    rep.telemetry.tier_retries = fs.retries;
    rep.telemetry.tier_exhausted = fs.exhausted;
    rep.telemetry.tier_quarantined = fs.quarantined;
    rep.telemetry.tier_degraded = fs.degraded ? 1 : 0;
  }
  return rep;
}

}  // namespace rvt::svc

#include "svc/worker.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "dist/workload.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "svc/net_store.hpp"
#include "svc/protocol.hpp"
#include "util/failpoint.hpp"

namespace rvt::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Sends a request and reads its reply (`expect` — every reply echoes
/// its request's kind except kLeaseRequest, answered with kLeaseGrant).
/// A kError reply throws NetError with the coordinator's message; any
/// other unexpected kind is a protocol violation.
net::Frame round_trip(net::TcpStream& s, dist::WireKind kind,
                      const std::vector<std::uint8_t>& payload,
                      dist::WireKind expect) {
  net::send_frame(s, kind, payload);
  net::Frame f;
  const net::RecvStatus st = net::recv_frame(s, f, /*idle_ok=*/false);
  if (st != net::RecvStatus::kFrame) {
    throw net::NetError("worker: coordinator closed the session");
  }
  if (f.kind == dist::WireKind::kError) {
    const ErrorReply err = decode_error_reply(f.payload);
    throw net::NetError("worker: coordinator refused (code " +
                        std::to_string(static_cast<unsigned>(err.code)) +
                        "): " + err.message);
  }
  if (f.kind != expect) {
    throw dist::SerializeError("worker: reply kind mismatch");
  }
  return f;
}

net::Frame round_trip(net::TcpStream& s, dist::WireKind kind,
                      const std::vector<std::uint8_t>& payload) {
  return round_trip(s, kind, payload, kind);
}

}  // namespace

WorkerReport run_worker(const std::string& host, std::uint16_t port,
                        const WorkerOptions& opt) {
  const std::unique_ptr<net::TcpStream> stream = net::tcp_connect(host, port);
  stream->set_read_timeout_ms(static_cast<unsigned>(opt.io_timeout_ms));

  HelloRequest hello;
  hello.role = "worker";
  hello.name = opt.name;
  const net::Frame ack_frame =
      round_trip(*stream, dist::WireKind::kHello, encode(hello));
  const HelloReply ack = decode_hello_reply(ack_frame.payload);
  if (ack.protocol != kServiceProtocolVersion) {
    throw net::NetError("worker: coordinator speaks service protocol " +
                        std::to_string(ack.protocol) + ", this build " +
                        std::to_string(kServiceProtocolVersion));
  }

  // Re-derive the workload from the spec and refuse a fingerprint
  // mismatch — the same content-addressing refusal as run_shard: a
  // coordinator built from a different battery or schema must not get
  // records computed under this build's semantics.
  const auto w = dist::EnumWorkload::parse(ack.workload_spec);
  if (!(dist::workload_fingerprint(*w) == ack.fingerprint)) {
    throw net::NetError(
        "worker: plan fingerprint does not match this build's workload '" +
        ack.workload_spec + "' (different battery or schema version)");
  }

  sim::OrbitCache cache;
  std::unique_ptr<dist::FsOrbitStore> fs_tier;
  std::unique_ptr<NetOrbitStore> net_tier;
  if (!opt.cache_dir.empty()) {
    fs_tier = std::make_unique<dist::FsOrbitStore>(opt.cache_dir);
    cache.set_backing(fs_tier.get());
  } else if (opt.remote_store) {
    net_tier =
        std::make_unique<NetOrbitStore>(host, port, opt.name + "-store");
    cache.set_backing(net_tier.get());
  }
  sim::EnumerationContext ctx(w->grids(), w->max_rounds(), &cache);

  WorkerReport rep;
  std::vector<JournalRecord> buffer;
  for (bool drained = false; !drained;) {
    const net::Frame gf =
        round_trip(*stream, dist::WireKind::kLeaseRequest,
                   encode_lease_request(), dist::WireKind::kLeaseGrant);
    const LeaseGrant g = decode_lease_grant(gf.payload);
    switch (g.status) {
      case LeaseStatus::kDrained:
        drained = true;
        break;
      case LeaseStatus::kWait: {
        // Stay observable while idle: heartbeat (token 0 = pure
        // liveness) through the backoff the coordinator asked for.
        const auto until =
            Clock::now() + std::chrono::milliseconds(g.retry_ms);
        do {
          round_trip(*stream, dist::WireKind::kHeartbeat,
                     encode(Heartbeat{0, 0}));
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<std::uint64_t>(g.retry_ms, 50)));
        } while (Clock::now() < until);
        break;
      }
      case LeaseStatus::kGranted: {
        ++rep.leases;
        buffer.clear();
        std::uint64_t running = g.resume_sum;
        Clock::time_point last_flush = Clock::now();
        bool lost = false;
        const auto flush = [&]() -> bool {
          JournalChunk chunk;
          chunk.shard_index = g.shard_index;
          chunk.token = g.token;
          chunk.records = buffer;
          const net::Frame cf = round_trip(
              *stream, dist::WireKind::kJournalChunk, encode(chunk));
          ++rep.chunks;
          const ChunkReply cr = decode_chunk_reply(cf.payload);
          if (!cr.accepted) return false;
          buffer.clear();
          last_flush = Clock::now();
          return true;
        };
        for (std::uint64_t i = g.next_index; i < g.end && !lost; ++i) {
          // Chaos hook: the network-runner twin of run_shard.index — die
          // (or error out of the session) at a chosen index with every
          // flushed chunk durably committed coordinator-side.
          switch (util::failpoint("worker.index")) {
            case util::FaultAction::kCrash:
              util::failpoint_crash("worker.index");
            case util::FaultAction::kError:
              throw dist::SerializeError(
                  "worker: injected fault at index " + std::to_string(i));
            case util::FaultAction::kNone:
              break;
          }
          if (opt.throttle_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opt.throttle_ms));
          }
          const std::uint64_t v = w->defeats(ctx, i);
          running += v;
          ++rep.indices;
          rep.defeats += v;
          buffer.push_back({i, v});
          const bool interval_up =
              Clock::now() - last_flush >=
              std::chrono::milliseconds(opt.flush_interval_ms);
          if ((buffer.size() >= opt.chunk_records || interval_up) &&
              !flush()) {
            lost = true;
          }
        }
        if (!lost && !buffer.empty() && !flush()) lost = true;
        if (lost) {
          ++rep.revoked;
          break;  // fresh lease request; the prefix stays committed
        }
        const net::Frame sf =
            round_trip(*stream, dist::WireKind::kSeal,
                       encode(Seal{g.shard_index, g.token, running}));
        if (decode_seal_reply(sf.payload).accepted) {
          ++rep.sealed;
        } else {
          ++rep.revoked;
        }
        break;
      }
    }
  }

  rep.telemetry = ctx.telemetry();
  if (cache.backing() != nullptr) {
    const sim::OrbitTierFaultStats fs = cache.backing()->fault_stats();
    rep.telemetry.tier_retries = fs.retries;
    rep.telemetry.tier_exhausted = fs.exhausted;
    rep.telemetry.tier_quarantined = fs.quarantined;
    rep.telemetry.tier_degraded = fs.degraded ? 1 : 0;
  }
  return rep;
}

}  // namespace rvt::svc

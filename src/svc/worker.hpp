// The runner daemon: connects to a coordinator, leases shard ranges,
// computes them index by index and streams committed records back.
//
// The loop is dist/runner.cpp's run_shard turned inside out: the same
// fingerprint refusal, the same index-deterministic defeats() calls,
// the same bounded-state-per-record discipline — but the journal lives
// with the COORDINATOR, so the worker buffers at most one chunk of
// records and every flush is both the commit and the heartbeat. A
// refused chunk or seal (accepted=false) means the lease was revoked
// (the worker stalled past the lease timeout and the shard was
// re-granted); the worker abandons the shard and asks for a fresh
// lease — the coordinator's committed prefix is not lost.
//
// run_worker drains the coordinator: it returns when a lease request
// answers kDrained (every shard sealed or quarantined). It is the one
// entry point behind `rvt_cli worker`, the loopback tests and bench
// E15.
#pragma once

#include <cstdint>
#include <string>

#include "sim/enumeration.hpp"

namespace rvt::svc {

struct WorkerOptions {
  std::string name = "worker";
  /// Local filesystem orbit-cache tier; empty + remote_store=true uses
  /// the coordinator's remote store (NetOrbitStore), empty + false runs
  /// with the in-memory cache only.
  std::string cache_dir;
  bool remote_store = true;
  /// Records per journal chunk; a flush also happens after
  /// flush_interval_ms regardless of fill, so slow indices still
  /// heartbeat.
  std::size_t chunk_records = 64;
  std::uint64_t flush_interval_ms = 250;
  /// Artificial per-index delay — makes "SIGKILL it mid-run" scenarios
  /// (CI, bench E15 chaos) deterministic instead of racy.
  std::uint64_t throttle_ms = 0;
  /// Stream read timeout; with the framing stall limit this bounds how
  /// long a vanished coordinator can hold the worker (~50x this).
  std::uint64_t io_timeout_ms = 250;
};

struct WorkerReport {
  std::uint64_t leases = 0;   ///< granted leases worked on
  std::uint64_t sealed = 0;   ///< shards this worker sealed
  std::uint64_t revoked = 0;  ///< leases lost to revocation
  std::uint64_t indices = 0;  ///< indices computed (incl. revoked work)
  std::uint64_t defeats = 0;  ///< values summed over computed indices
  std::uint64_t chunks = 0;   ///< journal chunks streamed
  sim::EnumTelemetry telemetry;
};

/// Runs the daemon loop against host:port until the coordinator drains.
/// Throws net::NetError (unreachable/stalled/incompatible coordinator)
/// or dist::SerializeError (protocol violation); a fingerprint mismatch
/// throws net::NetError — this build cannot compute that plan.
/// Failpoint site "worker.index" (error/crash) fires per computed index
/// for chaos drills.
WorkerReport run_worker(const std::string& host, std::uint16_t port,
                        const WorkerOptions& opt = {});

}  // namespace rvt::svc

// The runner daemon: connects to a coordinator, leases shard ranges,
// computes them index by index and streams committed records back.
//
// The loop is dist/runner.cpp's run_shard turned inside out: the same
// fingerprint refusal, the same index-deterministic defeats() calls,
// the same bounded-state-per-record discipline — but the journal lives
// with the COORDINATOR, so the worker buffers at most one chunk of
// records and every flush is both the commit and the heartbeat. A
// refused chunk or seal (accepted=false) means the lease was revoked
// (the worker stalled past the lease timeout and the shard was
// re-granted); the worker abandons the shard and asks for a fresh
// lease — the coordinator's committed prefix is not lost.
//
// The TRANSPORT is expendable: every connect — the first one included —
// rides one bounded-exponential-backoff loop (util/retry), so a worker
// started before its coordinator, or running through a coordinator
// restart or a transient partition, keeps retrying instead of dying.
// After a reconnect the worker re-hellos carrying the workload
// fingerprint it is bound to (a coordinator serving a different
// campaign refuses) and, if it held a lease, probes it with an empty
// chunk: an accepted probe resumes the lease mid-shard (dropping any
// buffered records the coordinator already committed), a refused probe
// is a token fence — the lease died with the old coordinator
// incarnation, the committed prefix survives, and the worker asks for
// a fresh grant.
//
// run_worker drains the coordinator: it returns when a lease request
// answers kDrained (every shard sealed or quarantined). It is the one
// entry point behind `rvt_cli worker`, the loopback tests and benches
// E15/E16.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/enum_stats.hpp"
#include "sim/enumeration.hpp"
#include "util/retry.hpp"

namespace rvt::svc {

struct WorkerOptions {
  std::string name = "worker";
  /// Local filesystem orbit-cache tier; empty + remote_store=true uses
  /// the coordinator's remote store (NetOrbitStore), empty + false runs
  /// with the in-memory cache only.
  std::string cache_dir;
  bool remote_store = true;
  /// Records per journal chunk; a flush also happens after
  /// flush_interval_ms regardless of fill, so slow indices still
  /// heartbeat.
  std::size_t chunk_records = 64;
  std::uint64_t flush_interval_ms = 250;
  /// Artificial per-index delay — makes "SIGKILL it mid-run" scenarios
  /// (CI, benches E15/E16) deterministic instead of racy.
  std::uint64_t throttle_ms = 0;
  /// Stream read timeout; with the framing stall limit this bounds how
  /// long a vanished coordinator can hold the worker (~50x this).
  std::uint64_t io_timeout_ms = 250;
  /// Backoff schedule every connect rides — initial connect and mid-run
  /// reconnect alike. The default (12 attempts, 250ms doubling into a
  /// 2s cap) gives a coordinator restart a ~17s window to come back.
  /// The sleep hook is injectable for tests.
  util::RetryPolicy reconnect{12, std::chrono::microseconds{250000},
                              std::chrono::microseconds{2000000}, {}};
  /// When non-zero, a one-line structured progress report goes to
  /// stderr at most once per interval:
  ///   progress worker=<name> shard=<i> computed=<n> survivors=<s>
  ///       inter_result_delay_p50_ms=<q> inter_result_delay_p99_ms=<q>
  /// Off by default — progress is an operator aid, not output.
  std::uint64_t progress_interval_ms = 0;
};

struct WorkerReport {
  std::uint64_t leases = 0;   ///< granted leases worked on
  std::uint64_t sealed = 0;   ///< shards this worker sealed
  std::uint64_t revoked = 0;  ///< leases lost to revocation
  std::uint64_t indices = 0;  ///< indices computed (incl. revoked work)
  std::uint64_t defeats = 0;  ///< values summed over computed indices
  std::uint64_t chunks = 0;   ///< journal chunks streamed
  std::uint64_t reconnects = 0;        ///< sessions re-established
  std::uint64_t connect_retries = 0;   ///< backoff re-attempts, all connects
  std::uint64_t fenced = 0;            ///< leases lost to a token fence
  sim::EnumTelemetry telemetry;
  /// Enumeration-delay stats over every index this worker computed
  /// (revoked work included — it was still enumeration). Unlike the
  /// coordinator's chunk-gap approximation, these inter-result delays
  /// are exact per-index measurements.
  obs::EnumDelayStats delay;
};

/// Runs the daemon loop against host:port until the coordinator drains.
/// Throws net::NetError (coordinator unreachable past the reconnect
/// budget, or an incompatible/foreign coordinator — protocol or
/// fingerprint mismatch is never retried) or dist::SerializeError
/// (protocol violation). Failpoint site "worker.index" (error/crash)
/// fires per computed index for chaos drills.
WorkerReport run_worker(const std::string& host, std::uint16_t port,
                        const WorkerOptions& opt = {});

}  // namespace rvt::svc

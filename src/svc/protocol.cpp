#include "svc/protocol.hpp"

namespace rvt::svc {

namespace {

using dist::SerializeError;
using dist::WireReader;
using dist::WireWriter;

std::uint8_t read_bool(WireReader& r, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > 1) {
    throw SerializeError(std::string("svc: ") + what + " flag not 0/1");
  }
  return v;
}

}  // namespace

// ---- handshake ------------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloRequest& m) {
  WireWriter w;
  w.u32(m.protocol);
  w.str(m.role);
  w.str(m.name);
  w.u64(m.fingerprint.hi);
  w.u64(m.fingerprint.lo);
  w.u64(m.reconnects);
  return w.take();
}

HelloRequest decode_hello_request(std::span<const std::uint8_t> p) {
  WireReader r(p);
  HelloRequest m;
  m.protocol = r.u32();
  m.role = r.str();
  m.name = r.str();
  // The v2 tail. A v1 hello legitimately ends here — it must still
  // decode so the handshake can answer kVersion (a protocol number the
  // coordinator refuses), not kBadRequest (corruption).
  if (r.remaining() == 0) return m;
  m.fingerprint.hi = r.u64();
  m.fingerprint.lo = r.u64();
  m.reconnects = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const HelloReply& m) {
  WireWriter w;
  w.u32(m.protocol);
  w.u64(m.fingerprint.hi);
  w.u64(m.fingerprint.lo);
  w.str(m.workload_spec);
  w.u64(m.index_count);
  w.u64(m.max_rounds);
  w.u64(m.shard_count);
  return w.take();
}

HelloReply decode_hello_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  HelloReply m;
  m.protocol = r.u32();
  m.fingerprint.hi = r.u64();
  m.fingerprint.lo = r.u64();
  m.workload_spec = r.str();
  m.index_count = r.u64();
  m.max_rounds = r.u64();
  m.shard_count = r.u64();
  r.expect_end();
  return m;
}

// ---- leases ---------------------------------------------------------------

std::vector<std::uint8_t> encode_lease_request() { return {}; }

std::vector<std::uint8_t> encode(const LeaseGrant& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u64(m.shard_index);
  w.u64(m.shard_id.hi);
  w.u64(m.shard_id.lo);
  w.u64(m.begin);
  w.u64(m.end);
  w.u64(m.next_index);
  w.u64(m.resume_sum);
  w.u64(m.token);
  w.u64(m.retry_ms);
  w.u64(m.campaign_id);
  return w.take();
}

LeaseGrant decode_lease_grant(std::span<const std::uint8_t> p) {
  WireReader r(p);
  LeaseGrant m;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(LeaseStatus::kDrained)) {
    throw SerializeError("svc: unknown lease status");
  }
  m.status = static_cast<LeaseStatus>(status);
  m.shard_index = r.u64();
  m.shard_id.hi = r.u64();
  m.shard_id.lo = r.u64();
  m.begin = r.u64();
  m.end = r.u64();
  m.next_index = r.u64();
  m.resume_sum = r.u64();
  m.token = r.u64();
  m.retry_ms = r.u64();
  // The v3 tail: the campaign/trace id. A v2 grant ends here and still
  // decodes (campaign_id stays 0 — spans just don't stitch).
  if (r.remaining() != 0) {
    m.campaign_id = r.u64();
    r.expect_end();
  }
  if (m.status == LeaseStatus::kGranted &&
      (m.begin > m.end || m.next_index < m.begin || m.next_index > m.end)) {
    throw SerializeError("svc: lease grant range inconsistent");
  }
  return m;
}

std::vector<std::uint8_t> encode(const Heartbeat& m) {
  WireWriter w;
  w.u64(m.shard_index);
  w.u64(m.token);
  return w.take();
}

Heartbeat decode_heartbeat(std::span<const std::uint8_t> p) {
  WireReader r(p);
  Heartbeat m;
  m.shard_index = r.u64();
  m.token = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const HeartbeatReply& m) {
  WireWriter w;
  w.u8(m.lease_valid ? 1 : 0);
  return w.take();
}

HeartbeatReply decode_heartbeat_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  HeartbeatReply m;
  m.lease_valid = read_bool(r, "heartbeat lease_valid") != 0;
  r.expect_end();
  return m;
}

// ---- journal streaming ----------------------------------------------------

std::vector<std::uint8_t> encode(const JournalChunk& m) {
  WireWriter w;
  w.u64(m.shard_index);
  w.u64(m.token);
  w.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const JournalRecord& rec : m.records) {
    w.u64(rec.index);
    w.u64(rec.value);
  }
  return w.take();
}

JournalChunk decode_journal_chunk(std::span<const std::uint8_t> p) {
  WireReader r(p);
  JournalChunk m;
  m.shard_index = r.u64();
  m.token = r.u64();
  const std::uint32_t n = r.u32();
  // Bound against bytes present before allocating (16 bytes/record).
  if (static_cast<std::uint64_t>(n) * 16 > r.remaining()) {
    throw SerializeError("svc: chunk record count exceeds payload");
  }
  m.records.resize(n);
  for (JournalRecord& rec : m.records) {
    rec.index = r.u64();
    rec.value = r.u64();
  }
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const ChunkReply& m) {
  WireWriter w;
  w.u8(m.accepted ? 1 : 0);
  w.u64(m.next_index);
  return w.take();
}

ChunkReply decode_chunk_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  ChunkReply m;
  m.accepted = read_bool(r, "chunk accepted") != 0;
  m.next_index = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const Seal& m) {
  WireWriter w;
  w.u64(m.shard_index);
  w.u64(m.token);
  w.u64(m.total);
  return w.take();
}

Seal decode_seal(std::span<const std::uint8_t> p) {
  WireReader r(p);
  Seal m;
  m.shard_index = r.u64();
  m.token = r.u64();
  m.total = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const SealReply& m) {
  WireWriter w;
  w.u8(m.accepted ? 1 : 0);
  return w.take();
}

SealReply decode_seal_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  SealReply m;
  m.accepted = read_bool(r, "seal accepted") != 0;
  r.expect_end();
  return m;
}

// ---- errors ---------------------------------------------------------------

std::vector<std::uint8_t> encode(const ErrorReply& m) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(m.code));
  w.str(m.message);
  return w.take();
}

ErrorReply decode_error_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  ErrorReply m;
  const std::uint32_t code = r.u32();
  if (code < 1 || code > static_cast<std::uint32_t>(ErrorCode::kBadRequest)) {
    throw SerializeError("svc: unknown error code");
  }
  m.code = static_cast<ErrorCode>(code);
  m.message = r.str();
  r.expect_end();
  return m;
}

// ---- remote orbit store ---------------------------------------------------

std::vector<std::uint8_t> encode(const OrbitGet& m) {
  WireWriter w;
  w.u64(m.key.hi);
  w.u64(m.key.lo);
  return w.take();
}

OrbitGet decode_orbit_get(std::span<const std::uint8_t> p) {
  WireReader r(p);
  OrbitGet m;
  m.key.hi = r.u64();
  m.key.lo = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const OrbitGetReply& m) {
  WireWriter w;
  w.u8(m.found ? 1 : 0);
  w.u64(m.payload.size());
  w.raw(m.payload.data(), m.payload.size());
  return w.take();
}

OrbitGetReply decode_orbit_get_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  OrbitGetReply m;
  m.found = read_bool(r, "orbit-get found") != 0;
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    throw SerializeError("svc: orbit payload length exceeds message");
  }
  m.payload.resize(n);
  r.raw(m.payload.data(), n);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const OrbitPut& m) {
  WireWriter w;
  w.u64(m.key.hi);
  w.u64(m.key.lo);
  w.u64(m.payload.size());
  w.raw(m.payload.data(), m.payload.size());
  return w.take();
}

OrbitPut decode_orbit_put(std::span<const std::uint8_t> p) {
  WireReader r(p);
  OrbitPut m;
  m.key.hi = r.u64();
  m.key.lo = r.u64();
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    throw SerializeError("svc: orbit payload length exceeds message");
  }
  m.payload.resize(n);
  r.raw(m.payload.data(), n);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const OrbitPutReply& m) {
  WireWriter w;
  w.u8(m.accepted ? 1 : 0);
  return w.take();
}

OrbitPutReply decode_orbit_put_reply(std::span<const std::uint8_t> p) {
  WireReader r(p);
  OrbitPutReply m;
  m.accepted = read_bool(r, "orbit-put accepted") != 0;
  r.expect_end();
  return m;
}

}  // namespace rvt::svc

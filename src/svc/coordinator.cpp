#include "svc/coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "svc/protocol.hpp"

namespace rvt::svc {

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

double seconds_since(std::chrono::steady_clock::time_point t,
                     std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - t).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string service_json(const ServiceReport& r,
                         const std::string& workload_spec) {
  std::string j = "{\n";
  const auto u64 = [&](const char* key, std::uint64_t v, bool comma = true) {
    j += std::string("  \"") + key + "\": " + std::to_string(v) +
         (comma ? ",\n" : "\n");
  };
  const auto dbl = [&](const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    j += std::string("  \"") + key + "\": " + buf + ",\n";
  };
  j += "  \"kind\": \"service_metrics\",\n";
  j += "  \"workload\": \"" + json_escape(workload_spec) + "\",\n";
  u64("shards_total", r.shards_total);
  u64("shards_completed", r.shards_completed);
  u64("shards_leased", r.shards_leased);
  u64("shards_pending", r.shards_pending);
  u64("shards_requeued", r.shards_requeued);
  u64("shards_quarantined", r.shards_quarantined);
  u64("leases_granted", r.leases_granted);
  u64("lease_expiries", r.lease_expiries);
  u64("runners_seen", r.runners_seen);
  u64("total_indices", r.total_indices);
  u64("committed_indices", r.committed_indices);
  u64("committed_defeats", r.committed_defeats);
  u64("journal_bytes_streamed", r.journal_bytes_streamed);
  u64("cache_tier_gets", r.tier_gets);
  u64("cache_tier_hits", r.tier_hits);
  u64("cache_tier_stores", r.tier_stores);
  u64("cache_tier_retries", r.tier_faults.retries);
  u64("cache_tier_exhausted", r.tier_faults.exhausted);
  u64("cache_tier_quarantined", r.tier_faults.quarantined);
  u64("cache_tier_degraded", r.tier_faults.degraded ? 1 : 0);
  dbl("uptime_seconds", r.uptime_seconds);
  dbl("shards_per_second", r.shards_per_second);
  dbl("time_to_first_record_seconds", r.time_to_first_record_seconds);
  dbl("time_to_first_sealed_shard_seconds",
      r.time_to_first_sealed_shard_seconds);
  j += "  \"runners\": [";
  for (std::size_t i = 0; i < r.runners.size(); ++i) {
    const RunnerHealth& h = r.runners[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", h.last_heartbeat_age_seconds);
    j += std::string(i == 0 ? "\n" : ",\n") + "    {\"name\": \"" +
         json_escape(h.name) + "\", \"role\": \"" + json_escape(h.role) +
         "\", \"connected\": " + (h.connected ? "true" : "false") +
         ", \"last_heartbeat_age_seconds\": " + buf +
         ", \"shards_sealed\": " + std::to_string(h.shards_sealed) +
         ", \"records_streamed\": " + std::to_string(h.records_streamed) +
         "}";
  }
  j += r.runners.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

Coordinator::Coordinator(dist::ShardPlan plan, CoordinatorConfig cfg)
    : plan_(std::move(plan)), cfg_(std::move(cfg)) {
  std::error_code ec;
  std::filesystem::create_directories(cfg_.journal_dir, ec);
  if (ec) {
    throw dist::SerializeError("coordinator: cannot create journal dir " +
                               cfg_.journal_dir);
  }
  if (!cfg_.cache_dir.empty()) {
    fs_store_ = std::make_unique<dist::FsOrbitStore>(cfg_.cache_dir);
  }
  shards_.resize(plan_.shards.size());
  // Adopt whatever journals already exist: sealed shards need no lease,
  // partial ones count their committed prefix and resume from it.
  for (std::size_t i = 0; i < plan_.shards.size(); ++i) {
    const dist::ShardSpec& spec = plan_.shards[i];
    std::optional<dist::JournalState> js;
    try {
      js = dist::read_journal(dist::journal_path(cfg_.journal_dir, spec));
    } catch (const dist::SerializeError&) {
      js.reset();  // unusable preamble — recreated on first grant
    }
    const bool bound = js && js->header.shard_id == spec.id &&
                       js->header.fingerprint == plan_.fingerprint &&
                       js->header.begin == spec.begin &&
                       js->header.end == spec.end;
    if (bound && js->complete) {
      shards_[i].phase = ShardPhase::kSealed;
      shards_[i].sealed_sum = js->sum;
      ++sealed_total_;
      committed_indices_ += spec.end - spec.begin;
      committed_defeats_ += js->sum;
    } else {
      if (bound) {
        committed_indices_ += js->next_index - spec.begin;
        committed_defeats_ += js->sum;
      }
      pending_.push_back(i);
    }
  }
  start_ = std::chrono::steady_clock::now();
  listener_ = std::make_unique<net::TcpListener>(cfg_.port);
  metrics_listener_ = std::make_unique<net::TcpListener>(cfg_.metrics_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  metrics_thread_ = std::thread([this] { metrics_loop(); });
  reaper_thread_ = std::thread([this] { reaper_loop(); });
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::stop() {
  const bool was_stopped = stop_.exchange(true);
  if (!was_stopped) {
    listener_->close();
    metrics_listener_->close();
    cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Joined after the accept loop so no new session can appear.
    std::vector<std::thread> sessions;
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      sessions.swap(sessions_);
    }
    for (std::thread& t : sessions) {
      if (t.joinable()) t.join();
    }
  }
  if (metrics_thread_.joinable()) metrics_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
}

bool Coordinator::done_locked() const {
  for (const ShardState& s : shards_) {
    if (s.phase != ShardPhase::kSealed && s.phase != ShardPhase::kQuarantined) {
      return false;
    }
  }
  return true;
}

bool Coordinator::wait_complete(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto pred = [this] { return done_locked() || stop_.load(); };
  if (timeout == std::chrono::milliseconds::max()) {
    cv_.wait(lk, pred);
  } else {
    cv_.wait_for(lk, timeout, pred);
  }
  return done_locked();
}

void Coordinator::fail_attempt_locked(std::size_t shard,
                                      const std::string& reason) {
  ShardState& s = shards_[shard];
  s.diagnostics.push_back(
      "attempt " + std::to_string(s.attempts) + " (" +
      (s.holder.empty() ? std::string("?") : s.holder) + "): " + reason);
  s.token = 0;  // fence: the stale holder's chunks/seals now refuse
  s.holder.clear();
  s.session = 0;
  if (s.attempts >= cfg_.max_attempts) {
    s.phase = ShardPhase::kQuarantined;
    s.writer.reset();
    cv_.notify_all();
  } else {
    s.phase = ShardPhase::kPending;
    pending_.push_back(shard);
    ++requeues_;
  }
}

void Coordinator::release_if_held_locked(std::uint64_t session_id,
                                         std::size_t shard,
                                         const std::string& reason) {
  if (shard == kNoShard || shard >= shards_.size()) return;
  ShardState& s = shards_[shard];
  if (s.phase == ShardPhase::kLeased && s.session == session_id) {
    fail_attempt_locked(shard, reason);
  }
}

std::vector<std::uint8_t> Coordinator::grant_lease_locked(
    std::uint64_t session_id, const std::string& name, std::size_t* leased) {
  *leased = kNoShard;
  LeaseGrant g;
  if (done_locked()) {
    g.status = LeaseStatus::kDrained;
    return encode(g);
  }
  if (pending_.empty()) {
    g.status = LeaseStatus::kWait;
    g.retry_ms = std::max<std::uint64_t>(
        50, static_cast<std::uint64_t>(cfg_.poll_interval.count()) * 10);
    return encode(g);
  }
  const std::size_t i = pending_.front();
  pending_.pop_front();
  ShardState& s = shards_[i];
  const dist::ShardSpec& spec = plan_.shards[i];
  if (!s.writer) {
    const std::string path = dist::journal_path(cfg_.journal_dir, spec);
    const dist::JournalHeader hdr{spec.id, plan_.fingerprint, spec.begin,
                                  spec.end};
    std::optional<dist::JournalState> js;
    try {
      js = dist::read_journal(path);
    } catch (const dist::SerializeError&) {
      js.reset();
    }
    const bool bound = js && !js->complete &&
                       js->header.shard_id == hdr.shard_id &&
                       js->header.fingerprint == hdr.fingerprint &&
                       js->header.begin == hdr.begin &&
                       js->header.end == hdr.end;
    try {
      s.writer = bound ? dist::JournalWriter::resume(path, hdr, *js)
                       : dist::JournalWriter::create(path, hdr);
    } catch (const dist::SerializeError&) {
      // Unusable journal dir: the session loop answers kError, but the
      // shard must not silently fall out of the rotation.
      pending_.push_back(i);
      throw;
    }
  }
  ++s.attempts;
  s.phase = ShardPhase::kLeased;
  s.token = next_token_++;
  s.holder = name;
  s.session = session_id;
  s.last_progress = std::chrono::steady_clock::now();
  ++leases_granted_;
  g.status = LeaseStatus::kGranted;
  g.shard_index = i;
  g.shard_id = spec.id;
  g.begin = spec.begin;
  g.end = spec.end;
  g.next_index = s.writer->next_index();
  g.resume_sum = s.writer->sum();
  g.token = s.token;
  *leased = i;
  return encode(g);
}

void Coordinator::accept_loop() {
  std::uint64_t next_session = 0;
  while (!stop_.load()) {
    std::unique_ptr<net::TcpStream> s;
    try {
      s = listener_->accept();
    } catch (const net::NetError&) {
      break;
    }
    if (!s) break;
    const std::uint64_t sid = next_session++;
    {
      std::lock_guard<std::mutex> lk(mu_);
      runners_.push_back({"session-" + std::to_string(sid), "?",
                          std::chrono::steady_clock::now(), 0, 0, true});
    }
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.emplace_back(
        [this, sid, stream = std::move(s)]() mutable {
          handle_session(std::move(stream), sid);
        });
  }
}

void Coordinator::handle_session(std::unique_ptr<net::TcpStream> stream,
                                 std::uint64_t session_id) {
  stream->set_read_timeout_ms(
      static_cast<unsigned>(cfg_.session_read_timeout.count()));
  std::size_t my_shard = kNoShard;
  std::string name;
  const auto send = [&](dist::WireKind kind,
                        const std::vector<std::uint8_t>& payload) {
    net::send_frame(*stream, kind, payload);
  };
  const auto send_error = [&](ErrorCode code, const std::string& msg) {
    try {
      send(dist::WireKind::kError, encode(ErrorReply{code, msg}));
    } catch (const net::NetError&) {
    }
  };
  try {
    // ---- handshake ----
    net::Frame f;
    for (;;) {
      const net::RecvStatus st = net::recv_frame(*stream, f, true);
      if (st == net::RecvStatus::kIdle) {
        if (stop_.load()) return;
        continue;
      }
      if (st == net::RecvStatus::kEof) return;
      break;
    }
    if (f.kind != dist::WireKind::kHello) {
      send_error(ErrorCode::kBadRequest, "expected hello");
      return;
    }
    const HelloRequest hello = decode_hello_request(f.payload);
    name = hello.name.empty() ? "session-" + std::to_string(session_id)
                              : hello.name;
    {
      std::lock_guard<std::mutex> lk(mu_);
      runners_[session_id].name = name;
      runners_[session_id].role = hello.role;
      runners_[session_id].last_seen = std::chrono::steady_clock::now();
    }
    if (hello.protocol != kServiceProtocolVersion) {
      send_error(ErrorCode::kVersion,
                 "service protocol " + std::to_string(hello.protocol) +
                     " (this coordinator speaks " +
                     std::to_string(kServiceProtocolVersion) + ")");
      return;
    }
    if (hello.role != "worker" && hello.role != "store") {
      send_error(ErrorCode::kRefused, "unknown role '" + hello.role + "'");
      return;
    }
    HelloReply ack;
    ack.fingerprint = plan_.fingerprint;
    ack.workload_spec = plan_.workload_spec;
    ack.index_count = plan_.count;
    ack.max_rounds = plan_.max_rounds;
    ack.shard_count = plan_.shards.size();
    send(dist::WireKind::kHello, encode(ack));

    // ---- message loop ----
    for (;;) {
      const net::RecvStatus st = net::recv_frame(*stream, f, true);
      if (st == net::RecvStatus::kIdle) {
        if (stop_.load()) break;
        continue;
      }
      if (st == net::RecvStatus::kEof) break;
      dist::WireKind reply_kind = f.kind;
      std::vector<std::uint8_t> reply;
      switch (f.kind) {
        case dist::WireKind::kLeaseRequest: {
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          std::size_t leased = kNoShard;
          try {
            reply = grant_lease_locked(session_id, name, &leased);
          } catch (const dist::SerializeError& e) {
            reply_kind = dist::WireKind::kError;
            reply = encode(ErrorReply{ErrorCode::kRefused,
                                      std::string("journal: ") + e.what()});
          }
          if (leased != kNoShard) my_shard = leased;
          reply_kind = reply_kind == dist::WireKind::kError
                           ? reply_kind
                           : dist::WireKind::kLeaseGrant;
          break;
        }
        case dist::WireKind::kJournalChunk: {
          const JournalChunk chunk = decode_journal_chunk(f.payload);
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          ChunkReply cr;
          if (chunk.shard_index < shards_.size() && chunk.token != 0 &&
              shards_[chunk.shard_index].token == chunk.token &&
              shards_[chunk.shard_index].phase == ShardPhase::kLeased) {
            ShardState& s = shards_[chunk.shard_index];
            try {
              for (const JournalRecord& rec : chunk.records) {
                s.writer->record(rec.index, rec.value);
                ++committed_indices_;
                committed_defeats_ += rec.value;
              }
              s.last_progress = std::chrono::steady_clock::now();
              journal_bytes_streamed_ += f.payload.size();
              runners_[session_id].records_streamed += chunk.records.size();
              if (!first_record_at_ && !chunk.records.empty()) {
                first_record_at_ = s.last_progress;
              }
              cr.accepted = true;
              cr.next_index = s.writer->next_index();
            } catch (const dist::SerializeError& e) {
              // Out-of-order or unappendable records: this attempt is
              // bad; the committed prefix stays, the shard requeues.
              fail_attempt_locked(chunk.shard_index,
                                  std::string("bad chunk: ") + e.what());
              cv_.notify_all();
              cr.accepted = false;
            }
          } else {
            cr.accepted = false;  // stale token: lease was revoked
          }
          reply = encode(cr);
          break;
        }
        case dist::WireKind::kSeal: {
          const Seal seal = decode_seal(f.payload);
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          SealReply sr;
          if (seal.shard_index < shards_.size() && seal.token != 0 &&
              shards_[seal.shard_index].token == seal.token &&
              shards_[seal.shard_index].phase == ShardPhase::kLeased) {
            ShardState& s = shards_[seal.shard_index];
            if (seal.total != s.writer->sum()) {
              fail_attempt_locked(
                  seal.shard_index,
                  "seal total " + std::to_string(seal.total) +
                      " != journaled sum " + std::to_string(s.writer->sum()));
            } else {
              try {
                s.writer->finish(seal.total);
                s.writer.reset();
                s.phase = ShardPhase::kSealed;
                s.sealed_sum = seal.total;
                s.token = 0;
                s.holder.clear();
                s.session = 0;
                ++sealed_total_;
                ++sealed_this_run_;
                ++runners_[session_id].shards_sealed;
                if (!first_seal_at_) {
                  first_seal_at_ = std::chrono::steady_clock::now();
                }
                sr.accepted = true;
                my_shard = kNoShard;
              } catch (const dist::SerializeError& e) {
                fail_attempt_locked(seal.shard_index,
                                    std::string("seal refused: ") + e.what());
              }
            }
            cv_.notify_all();
          }
          reply = encode(sr);
          break;
        }
        case dist::WireKind::kHeartbeat: {
          const Heartbeat hb = decode_heartbeat(f.payload);
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          HeartbeatReply hr;
          // NOTE: a heartbeat proves the runner is alive, not that it is
          // making progress — it never renews the lease. Journal growth
          // (chunks) is the only renewal, same as the fork/exec
          // orchestrator's journal-size poll.
          hr.lease_valid =
              hb.token == 0 ||
              (hb.shard_index < shards_.size() &&
               shards_[hb.shard_index].token == hb.token &&
               shards_[hb.shard_index].phase == ShardPhase::kLeased);
          reply = encode(hr);
          break;
        }
        case dist::WireKind::kOrbitGet: {
          const OrbitGet get = decode_orbit_get(f.payload);
          OrbitGetReply gr;
          // fs_store_ is internally synchronized — no mu_ during IO.
          if (fs_store_) {
            const auto set = fs_store_->load(get.key);
            if (set) {
              gr.found = true;
              gr.payload = dist::serialize_orbit_set(*set);
            }
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            runners_[session_id].last_seen = std::chrono::steady_clock::now();
            ++tier_gets_;
            if (gr.found) ++tier_hits_;
          }
          reply = encode(gr);
          break;
        }
        case dist::WireKind::kOrbitPut: {
          const OrbitPut put = decode_orbit_put(f.payload);
          OrbitPutReply pr;
          pr.accepted = true;  // best-effort, like FsOrbitStore::store
          if (fs_store_) {
            try {
              // Deserialize first: a malformed payload must never be
              // published into the content-addressed tier.
              fs_store_->store(put.key, dist::deserialize_orbit_set(
                                            put.payload));
            } catch (const dist::SerializeError&) {
              pr.accepted = false;
            }
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            runners_[session_id].last_seen = std::chrono::steady_clock::now();
            if (pr.accepted && fs_store_) ++tier_stores_;
          }
          reply = encode(pr);
          break;
        }
        default:
          reply_kind = dist::WireKind::kError;
          reply = encode(
              ErrorReply{ErrorCode::kBadRequest, "unexpected message kind"});
      }
      send(reply_kind, reply);
    }
  } catch (const dist::WireVersionError& e) {
    send_error(ErrorCode::kVersion, e.what());
  } catch (const dist::SerializeError& e) {
    send_error(ErrorCode::kBadRequest, e.what());
  } catch (const net::NetError&) {
    // broken or stalled transport — treated like a disconnect
  }
  std::lock_guard<std::mutex> lk(mu_);
  runners_[session_id].connected = false;
  release_if_held_locked(session_id, my_shard, "runner disconnected unsealed");
  cv_.notify_all();
}

void Coordinator::reaper_loop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(cfg_.poll_interval);
    std::lock_guard<std::mutex> lk(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ShardState& s = shards_[i];
      if (s.phase == ShardPhase::kLeased &&
          now - s.last_progress > cfg_.lease_timeout) {
        ++lease_expiries_;
        fail_attempt_locked(
            i, "lease expired (no journal growth for " +
                   std::to_string(cfg_.lease_timeout.count()) + "ms)");
      }
    }
    if (done_locked()) cv_.notify_all();
  }
}

void Coordinator::metrics_loop() {
  while (!stop_.load()) {
    std::unique_ptr<net::TcpStream> s;
    try {
      s = metrics_listener_->accept();
    } catch (const net::NetError&) {
      break;
    }
    if (!s) break;
    try {
      s->set_read_timeout_ms(1000);
      std::string req;
      char buf[1024];
      while (req.find("\r\n\r\n") == std::string::npos && req.size() < 65536) {
        std::size_t n = 0;
        try {
          n = s->read_some(buf, sizeof(buf));
        } catch (const net::NetTimeout&) {
          break;
        }
        if (n == 0) break;
        req.append(buf, n);
      }
      std::string resp;
      if (req.compare(0, 4, "GET ") == 0) {
        const std::string body = metrics_json();
        resp = "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
               "Content-Length: " +
               std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
      } else {
        resp = "HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n";
      }
      s->write_all(resp.data(), resp.size());
    } catch (const net::NetError&) {
      // one scraper's broken connection must not stop the endpoint
    }
  }
}

ServiceReport Coordinator::report_locked() const {
  ServiceReport r;
  const auto now = std::chrono::steady_clock::now();
  r.shards_total = shards_.size();
  for (const ShardState& s : shards_) {
    switch (s.phase) {
      case ShardPhase::kSealed:
        ++r.shards_completed;
        break;
      case ShardPhase::kLeased:
        ++r.shards_leased;
        break;
      case ShardPhase::kPending:
        ++r.shards_pending;
        break;
      case ShardPhase::kQuarantined:
        ++r.shards_quarantined;
        break;
    }
  }
  r.shards_requeued = requeues_;
  r.leases_granted = leases_granted_;
  r.lease_expiries = lease_expiries_;
  r.total_indices = plan_.count;
  r.committed_indices = committed_indices_;
  r.committed_defeats = committed_defeats_;
  r.journal_bytes_streamed = journal_bytes_streamed_;
  r.tier_gets = tier_gets_;
  r.tier_hits = tier_hits_;
  r.tier_stores = tier_stores_;
  if (fs_store_) r.tier_faults = fs_store_->fault_stats();
  r.uptime_seconds = seconds_since(start_, now);
  r.shards_per_second = r.uptime_seconds > 0
                            ? static_cast<double>(sealed_this_run_) /
                                  r.uptime_seconds
                            : 0;
  if (first_record_at_) {
    r.time_to_first_record_seconds = seconds_since(start_, *first_record_at_);
  }
  if (first_seal_at_) {
    r.time_to_first_sealed_shard_seconds =
        seconds_since(start_, *first_seal_at_);
  }
  for (const RunnerInfo& ri : runners_) {
    if (ri.role == "worker") ++r.runners_seen;
    RunnerHealth h;
    h.name = ri.name;
    h.role = ri.role;
    h.last_heartbeat_age_seconds = seconds_since(ri.last_seen, now);
    h.shards_sealed = ri.shards_sealed;
    h.records_streamed = ri.records_streamed;
    h.connected = ri.connected;
    r.runners.push_back(std::move(h));
  }
  return r;
}

ServiceReport Coordinator::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return report_locked();
}

std::string Coordinator::metrics_json() const {
  return service_json(report(), plan_.workload_spec);
}

dist::QuarantineManifest Coordinator::quarantine_manifest() const {
  std::lock_guard<std::mutex> lk(mu_);
  dist::QuarantineManifest m;
  m.fingerprint = plan_.fingerprint;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& s = shards_[i];
    if (s.phase != ShardPhase::kQuarantined) continue;
    dist::QuarantineEntry e;
    e.begin = plan_.shards[i].begin;
    e.end = plan_.shards[i].end;
    e.shard_id = plan_.shards[i].id;
    std::string diag;
    for (const std::string& d : s.diagnostics) {
      if (!diag.empty()) diag += "; ";
      diag += d;
    }
    e.diagnostics = diag;
    m.entries.push_back(std::move(e));
  }
  return m;
}

}  // namespace rvt::svc

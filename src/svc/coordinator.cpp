#include "svc/coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/protocol.hpp"

namespace rvt::svc {

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

double seconds_since(std::chrono::steady_clock::time_point t,
                     std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - t).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string service_json(const ServiceReport& r,
                         const std::string& workload_spec) {
  std::string j = "{\n";
  const auto u64 = [&](const char* key, std::uint64_t v, bool comma = true) {
    j += std::string("  \"") + key + "\": " + std::to_string(v) +
         (comma ? ",\n" : "\n");
  };
  const auto dbl = [&](const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    j += std::string("  \"") + key + "\": " + buf + ",\n";
  };
  j += "  \"kind\": \"service_metrics\",\n";
  j += "  \"workload\": \"" + json_escape(workload_spec) + "\",\n";
  u64("shards_total", r.shards_total);
  u64("shards_completed", r.shards_completed);
  u64("shards_leased", r.shards_leased);
  u64("shards_pending", r.shards_pending);
  u64("shards_requeued", r.shards_requeued);
  u64("shards_quarantined", r.shards_quarantined);
  u64("leases_granted", r.leases_granted);
  u64("lease_expiries", r.lease_expiries);
  u64("runners_seen", r.runners_seen);
  u64("total_indices", r.total_indices);
  u64("committed_indices", r.committed_indices);
  u64("committed_defeats", r.committed_defeats);
  u64("journal_bytes_streamed", r.journal_bytes_streamed);
  u64("cache_tier_gets", r.tier_gets);
  u64("cache_tier_hits", r.tier_hits);
  u64("cache_tier_stores", r.tier_stores);
  u64("cache_tier_retries", r.tier_faults.retries);
  u64("cache_tier_exhausted", r.tier_faults.exhausted);
  u64("cache_tier_quarantined", r.tier_faults.quarantined);
  u64("cache_tier_degraded", r.tier_faults.degraded ? 1 : 0);
  u64("recovery_resumed", r.resumed);
  u64("recovery_ledger_epoch", r.ledger_epoch);
  u64("recovery_ledger_records_replayed", r.ledger_records_replayed);
  u64("recovery_ledger_records_appended", r.ledger_records_appended);
  u64("recovery_ledger_torn_bytes_truncated", r.ledger_torn_bytes_truncated);
  u64("recovery_leases_regranted", r.leases_regranted);
  u64("recovery_stale_tokens_fenced", r.stale_tokens_fenced);
  u64("recovery_worker_reconnects", r.worker_reconnects);
  dbl("uptime_seconds", r.uptime_seconds);
  dbl("shards_per_second", r.shards_per_second);
  dbl("time_to_first_record_seconds", r.time_to_first_record_seconds);
  dbl("time_to_first_sealed_shard_seconds",
      r.time_to_first_sealed_shard_seconds);
  u64("uptime_ms", r.uptime_ms);
  u64("campaign_id", r.campaign_id);
  u64("survivors", r.delay.survivors);
  dbl("survivors_per_second", r.delay.survivors_per_second());
  dbl("time_to_first_survivor_ms",
      r.delay.time_to_first_survivor_ns < 0
          ? -1.0
          : static_cast<double>(r.delay.time_to_first_survivor_ns) / 1e6);
  dbl("inter_result_delay_p50_ms", r.delay.delay_quantile_ms(0.50));
  dbl("inter_result_delay_p99_ms", r.delay.delay_quantile_ms(0.99));
  j += "  \"last_journal_growth_ms\": [";
  for (std::size_t i = 0; i < r.last_journal_growth_ms.size(); ++i) {
    j += std::string(i == 0 ? "" : ", ") +
         std::to_string(r.last_journal_growth_ms[i]);
  }
  j += "],\n";
  j += "  \"runners\": [";
  for (std::size_t i = 0; i < r.runners.size(); ++i) {
    const RunnerHealth& h = r.runners[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", h.last_heartbeat_age_seconds);
    j += std::string(i == 0 ? "\n" : ",\n") + "    {\"name\": \"" +
         json_escape(h.name) + "\", \"role\": \"" + json_escape(h.role) +
         "\", \"connected\": " + (h.connected ? "true" : "false") +
         ", \"last_heartbeat_age_seconds\": " + buf +
         ", \"shards_sealed\": " + std::to_string(h.shards_sealed) +
         ", \"records_streamed\": " + std::to_string(h.records_streamed) +
         "}";
  }
  j += r.runners.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

std::string service_prometheus(const ServiceReport& r) {
  std::string t;
  const auto counter = [&](const char* name, std::uint64_t v) {
    t += std::string("# TYPE ") + name + " counter\n";
    t += std::string(name) + " " + std::to_string(v) + "\n";
  };
  const auto gauge = [&](const char* name, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    t += std::string("# TYPE ") + name + " gauge\n";
    t += std::string(name) + " " + buf + "\n";
  };
  gauge("rvt_uptime_ms", static_cast<double>(r.uptime_ms));
  counter("rvt_campaign_id", r.campaign_id);
  gauge("rvt_shards_total", static_cast<double>(r.shards_total));
  gauge("rvt_shards_completed", static_cast<double>(r.shards_completed));
  gauge("rvt_shards_leased", static_cast<double>(r.shards_leased));
  gauge("rvt_shards_pending", static_cast<double>(r.shards_pending));
  counter("rvt_shards_requeued", r.shards_requeued);
  counter("rvt_shards_quarantined", r.shards_quarantined);
  counter("rvt_leases_granted", r.leases_granted);
  counter("rvt_lease_expiries", r.lease_expiries);
  counter("rvt_runners_seen", r.runners_seen);
  counter("rvt_committed_indices", r.committed_indices);
  counter("rvt_committed_defeats", r.committed_defeats);
  counter("rvt_journal_bytes_streamed", r.journal_bytes_streamed);
  counter("rvt_recovery_resumes", r.resumed);
  counter("rvt_recovery_ledger_records_replayed", r.ledger_records_replayed);
  counter("rvt_recovery_leases_regranted", r.leases_regranted);
  counter("rvt_recovery_stale_tokens_fenced", r.stale_tokens_fenced);
  counter("rvt_recovery_worker_reconnects", r.worker_reconnects);
  counter("rvt_survivors", r.delay.survivors);
  gauge("rvt_survivors_per_second", r.delay.survivors_per_second());
  gauge("rvt_time_to_first_survivor_ms",
        r.delay.time_to_first_survivor_ns < 0
            ? -1.0
            : static_cast<double>(r.delay.time_to_first_survivor_ns) / 1e6);
  t += obs::prometheus_histogram("rvt_inter_result_delay_ns",
                                 r.delay.inter_result_delay_ns);
  t += "# TYPE rvt_shard_last_journal_growth_ms gauge\n";
  for (std::size_t i = 0; i < r.last_journal_growth_ms.size(); ++i) {
    t += "rvt_shard_last_journal_growth_ms{shard=\"" + std::to_string(i) +
         "\"} " + std::to_string(r.last_journal_growth_ms[i]) + "\n";
  }
  return t;
}

Coordinator::Coordinator(dist::ShardPlan plan, CoordinatorConfig cfg)
    : plan_(std::move(plan)), cfg_(std::move(cfg)) {
  std::error_code ec;
  std::filesystem::create_directories(cfg_.journal_dir, ec);
  if (ec) {
    throw dist::SerializeError("coordinator: cannot create journal dir " +
                               cfg_.journal_dir);
  }
  if (!cfg_.cache_dir.empty()) {
    fs_store_ = std::make_unique<dist::FsOrbitStore>(cfg_.cache_dir);
  }
  shards_.resize(plan_.shards.size());
  // Scan every journal once: the DATA authority both the plain adoption
  // path and the ledger replay cross-check read from.
  std::vector<std::optional<dist::JournalState>> journals(plan_.shards.size());
  for (std::size_t i = 0; i < plan_.shards.size(); ++i) {
    const dist::ShardSpec& spec = plan_.shards[i];
    std::optional<dist::JournalState> js;
    try {
      js = dist::read_journal(dist::journal_path(cfg_.journal_dir, spec));
    } catch (const dist::SerializeError&) {
      js.reset();  // unusable preamble — recreated on first grant
    }
    const bool bound = js && js->header.shard_id == spec.id &&
                       js->header.fingerprint == plan_.fingerprint &&
                       js->header.begin == spec.begin &&
                       js->header.end == spec.end;
    if (bound) journals[i] = std::move(js);
  }
  // The CONTROL authority: with --resume the run ledger is required and
  // replayed; a fresh campaign truncates whatever ledger a previous
  // campaign in this directory left behind.
  const std::string lpath = dist::ledger_path(cfg_.journal_dir);
  const dist::LedgerHeader lhdr{plan_.fingerprint, plan_.shards.size()};
  std::optional<dist::LedgerState> ls;
  if (cfg_.resume) {
    ls = dist::read_ledger(lpath);  // corrupt preamble throws — a refusal
    if (!ls) {
      throw dist::SerializeError(
          "coordinator: --resume needs a run ledger (none at " + lpath + ")");
    }
    if (!(ls->header.fingerprint == plan_.fingerprint) ||
        ls->header.shard_count != plan_.shards.size()) {
      throw dist::SerializeError(
          "coordinator: run ledger belongs to a different campaign "
          "(fingerprint/shard-count mismatch)");
    }
    ledger_torn_bytes_ = ls->file_bytes - ls->valid_bytes;
  }
  // Adopt journal data: sealed shards need no lease, partial ones count
  // their committed prefix and resume from it.
  for (std::size_t i = 0; i < plan_.shards.size(); ++i) {
    const dist::ShardSpec& spec = plan_.shards[i];
    const auto& js = journals[i];
    if (js && js->complete) {
      shards_[i].phase = ShardPhase::kSealed;
      shards_[i].sealed_sum = js->sum;
      ++sealed_total_;
      committed_indices_ += spec.end - spec.begin;
      committed_defeats_ += js->sum;
    } else if (js) {
      committed_indices_ += js->next_index - spec.begin;
      committed_defeats_ += js->sum;
    }
  }
  if (cfg_.resume) {
    replay_ledger(*ls, journals);
    resumed_ = true;
    ledger_ = dist::LedgerWriter::resume(lpath, lhdr, *ls);
  } else {
    ledger_ = dist::LedgerWriter::create(lpath, lhdr);
  }
  // Every start opens a new token epoch, durably: tokens granted by ANY
  // earlier incarnation are below next_token_ and resumed shards carry
  // token 0, so a pre-crash leaseholder's chunks and seals fence.
  ledger_->append({dist::LedgerEvent::kEpoch, ledger_epoch_, next_token_});
  ++ledger_records_appended_;
  // Work queue last, in plan order, from the reconstructed phases.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].phase == ShardPhase::kPending) pending_.push_back(i);
  }
  // Campaign/trace id: a deterministic mix of the plan fingerprint, so
  // a resumed coordinator mints the SAME id and spans recorded before
  // and after a crash stitch under one timeline. Never 0 (0 means "no
  // campaign" on the wire).
  campaign_id_ =
      plan_.fingerprint.hi ^ (plan_.fingerprint.lo * 0x9e3779b97f4a7c15ULL);
  if (campaign_id_ == 0) campaign_id_ = 1;
  obs::set_campaign_id(campaign_id_);
  start_ = std::chrono::steady_clock::now();
  listener_ = std::make_unique<net::TcpListener>(cfg_.port);
  metrics_listener_ = std::make_unique<net::TcpListener>(cfg_.metrics_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  metrics_thread_ = std::thread([this] { metrics_loop(); });
  reaper_thread_ = std::thread([this] { reaper_loop(); });
}

void Coordinator::replay_ledger(
    const dist::LedgerState& ls,
    const std::vector<std::optional<dist::JournalState>>& journals) {
  struct Replayed {
    bool open = false;         ///< granted and neither failed nor closed
    unsigned attempts = 0;
    bool quarantined = false;
    bool sealed = false;
    std::uint64_t sealed_sum = 0;
  };
  std::vector<Replayed> rs(shards_.size());
  std::uint64_t max_epoch = 0;
  std::uint64_t max_token = 0;
  std::uint64_t epoch_token_floor = 1;
  std::uint64_t ck_indices = 0, ck_defeats = 0;
  bool has_checkpoint = false;
  for (const dist::LedgerRecord& rec : ls.records) {
    ++ledger_records_replayed_;
    const std::size_t i = static_cast<std::size_t>(rec.a);
    const bool shard_event = rec.event == dist::LedgerEvent::kGrant ||
                             rec.event == dist::LedgerEvent::kFail ||
                             rec.event == dist::LedgerEvent::kSeal ||
                             rec.event == dist::LedgerEvent::kQuarantine;
    if (shard_event && i >= shards_.size()) {
      throw dist::SerializeError(
          "coordinator: ledger names shard " + std::to_string(rec.a) +
          " of a " + std::to_string(shards_.size()) + "-shard plan");
    }
    switch (rec.event) {
      case dist::LedgerEvent::kEpoch:
        max_epoch = std::max(max_epoch, rec.a);
        epoch_token_floor = std::max(epoch_token_floor, rec.b);
        break;
      case dist::LedgerEvent::kGrant:
        rs[i].open = true;
        ++rs[i].attempts;
        max_token = std::max(max_token, rec.b);
        break;
      case dist::LedgerEvent::kFail:
        rs[i].open = false;
        rs[i].attempts = std::max(rs[i].attempts,
                                  static_cast<unsigned>(rec.b));
        break;
      case dist::LedgerEvent::kSeal:
        rs[i].open = false;
        rs[i].sealed = true;
        rs[i].sealed_sum = rec.b;
        break;
      case dist::LedgerEvent::kQuarantine:
        rs[i].open = false;
        rs[i].quarantined = true;
        rs[i].attempts = std::max(rs[i].attempts,
                                  static_cast<unsigned>(rec.b));
        break;
      case dist::LedgerEvent::kCheckpoint:
        ck_indices = rec.a;
        ck_defeats = rec.b;
        has_checkpoint = true;
        break;
    }
  }
  ledger_epoch_ = max_epoch + 1;
  next_token_ = std::max(max_token + 1, epoch_token_floor);
  // Cross-check control against data, refusing disagreement instead of
  // guessing. The one tolerated asymmetry: a journal sealed without a
  // ledger kSeal is the crash window between the journal's DONE record
  // and the ledger append — the journal is the data authority, adopt it.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardState& s = shards_[i];
    const auto& js = journals[i];
    if (rs[i].sealed) {
      if (!js || !js->complete) {
        throw dist::SerializeError(
            "coordinator: ledger records a seal for shard " +
            std::to_string(i) + " but its journal is not sealed on disk");
      }
      if (js->sum != rs[i].sealed_sum) {
        throw dist::SerializeError(
            "coordinator: shard " + std::to_string(i) + " sealed sum " +
            std::to_string(js->sum) + " on disk, " +
            std::to_string(rs[i].sealed_sum) + " in the ledger");
      }
    }
    s.attempts = rs[i].attempts;
    if (s.phase == ShardPhase::kSealed) continue;
    if (rs[i].quarantined) {
      s.phase = ShardPhase::kQuarantined;
      s.diagnostics.push_back("quarantined before restart (run ledger, " +
                              std::to_string(s.attempts) + " attempts)");
    } else if (rs[i].open) {
      // Out on lease when the previous incarnation died: pending again,
      // the re-grant resumes from the journal's committed prefix.
      s.interrupted = true;
    }
  }
  // The running-merge checkpoint can never be ahead of what the
  // journals actually hold — if it is, the data half lost fsynced
  // history (journals are fflushed, not fsynced: a host reboot can do
  // this) and resuming would silently recompute under a lie.
  if (has_checkpoint &&
      (committed_indices_ < ck_indices ||
       (committed_indices_ == ck_indices && committed_defeats_ != ck_defeats))) {
    throw dist::SerializeError(
        "coordinator: run ledger checkpoint (" + std::to_string(ck_indices) +
        " indices, " + std::to_string(ck_defeats) +
        " defeats) is ahead of the journals (" +
        std::to_string(committed_indices_) + ", " +
        std::to_string(committed_defeats_) +
        ") — journal history was lost; refusing to resume");
  }
}

void Coordinator::ledger_append_nothrow_locked(const dist::LedgerRecord& rec) {
  if (!ledger_) return;
  try {
    ledger_->append(rec);
    ++ledger_records_appended_;
  } catch (const dist::SerializeError&) {
    // The durable fact lives in a journal (seal) or is safe to lose
    // (requeue: replay re-grants an open lease as pending anyway).
  }
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::stop() {
  const bool was_stopped = stop_.exchange(true);
  if (!was_stopped) {
    listener_->close();
    metrics_listener_->close();
    cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Joined after the accept loop so no new session can appear.
    std::vector<std::thread> sessions;
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      sessions.swap(sessions_);
    }
    for (std::thread& t : sessions) {
      if (t.joinable()) t.join();
    }
  }
  if (metrics_thread_.joinable()) metrics_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
}

bool Coordinator::done_locked() const {
  for (const ShardState& s : shards_) {
    if (s.phase != ShardPhase::kSealed && s.phase != ShardPhase::kQuarantined) {
      return false;
    }
  }
  return true;
}

bool Coordinator::wait_complete(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto pred = [this] { return done_locked() || stop_.load(); };
  if (timeout == std::chrono::milliseconds::max()) {
    cv_.wait(lk, pred);
  } else {
    cv_.wait_for(lk, timeout, pred);
  }
  return done_locked();
}

void Coordinator::fail_attempt_locked(std::size_t shard,
                                      const std::string& reason) {
  ShardState& s = shards_[shard];
  s.diagnostics.push_back(
      "attempt " + std::to_string(s.attempts) + " (" +
      (s.holder.empty() ? std::string("?") : s.holder) + "): " + reason);
  s.token = 0;  // fence: the stale holder's chunks/seals now refuse
  s.holder.clear();
  s.session = 0;
  if (s.attempts >= cfg_.max_attempts) {
    s.phase = ShardPhase::kQuarantined;
    s.writer.reset();
    ledger_append_nothrow_locked(
        {dist::LedgerEvent::kQuarantine, shard, s.attempts});
    cv_.notify_all();
  } else {
    s.phase = ShardPhase::kPending;
    pending_.push_back(shard);
    ++requeues_;
    ledger_append_nothrow_locked({dist::LedgerEvent::kFail, shard, s.attempts});
  }
}

void Coordinator::release_if_held_locked(std::uint64_t session_id,
                                         std::size_t shard,
                                         const std::string& reason) {
  if (shard == kNoShard || shard >= shards_.size()) return;
  ShardState& s = shards_[shard];
  if (s.phase == ShardPhase::kLeased && s.session == session_id) {
    fail_attempt_locked(shard, reason);
  }
}

std::vector<std::uint8_t> Coordinator::grant_lease_locked(
    std::uint64_t session_id, const std::string& name, std::size_t* leased) {
  *leased = kNoShard;
  LeaseGrant g;
  if (done_locked()) {
    g.status = LeaseStatus::kDrained;
    return encode(g);
  }
  if (pending_.empty()) {
    g.status = LeaseStatus::kWait;
    g.retry_ms = std::max<std::uint64_t>(
        50, static_cast<std::uint64_t>(cfg_.poll_interval.count()) * 10);
    return encode(g);
  }
  const std::size_t i = pending_.front();
  pending_.pop_front();
  ShardState& s = shards_[i];
  const dist::ShardSpec& spec = plan_.shards[i];
  if (!s.writer) {
    const std::string path = dist::journal_path(cfg_.journal_dir, spec);
    const dist::JournalHeader hdr{spec.id, plan_.fingerprint, spec.begin,
                                  spec.end};
    std::optional<dist::JournalState> js;
    try {
      js = dist::read_journal(path);
    } catch (const dist::SerializeError&) {
      js.reset();
    }
    const bool bound = js && !js->complete &&
                       js->header.shard_id == hdr.shard_id &&
                       js->header.fingerprint == hdr.fingerprint &&
                       js->header.begin == hdr.begin &&
                       js->header.end == hdr.end;
    try {
      s.writer = bound ? dist::JournalWriter::resume(path, hdr, *js)
                       : dist::JournalWriter::create(path, hdr);
    } catch (const dist::SerializeError&) {
      // Unusable journal dir: the session loop answers kError, but the
      // shard must not silently fall out of the rotation.
      pending_.push_back(i);
      throw;
    }
  }
  // Write-ahead: the grant (and its fencing token) must be durable
  // BEFORE the reply leaves — a coordinator killed right after sending
  // the grant must replay it, or a resumed incarnation could mint the
  // same token for someone else.
  if (ledger_) {
    try {
      ledger_->append({dist::LedgerEvent::kGrant, i, next_token_});
      ++ledger_records_appended_;
    } catch (const dist::SerializeError&) {
      pending_.push_back(i);
      throw;
    }
  }
  ++s.attempts;
  s.phase = ShardPhase::kLeased;
  s.token = next_token_++;
  s.holder = name;
  s.session = session_id;
  s.last_progress = std::chrono::steady_clock::now();
  ++leases_granted_;
  if (s.interrupted) {
    s.interrupted = false;
    ++leases_regranted_;
  }
  g.status = LeaseStatus::kGranted;
  g.shard_index = i;
  g.shard_id = spec.id;
  g.begin = spec.begin;
  g.end = spec.end;
  g.next_index = s.writer->next_index();
  g.resume_sum = s.writer->sum();
  g.token = s.token;
  g.campaign_id = campaign_id_;
  *leased = i;
  return encode(g);
}

void Coordinator::accept_loop() {
  std::uint64_t next_session = 0;
  while (!stop_.load()) {
    std::unique_ptr<net::TcpStream> s;
    try {
      s = listener_->accept();
    } catch (const net::NetError&) {
      break;
    }
    if (!s) break;
    const std::uint64_t sid = next_session++;
    {
      std::lock_guard<std::mutex> lk(mu_);
      runners_.push_back({"session-" + std::to_string(sid), "?",
                          std::chrono::steady_clock::now(), 0, 0, true});
    }
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.emplace_back(
        [this, sid, stream = std::move(s)]() mutable {
          handle_session(std::move(stream), sid);
        });
  }
}

void Coordinator::handle_session(std::unique_ptr<net::TcpStream> stream,
                                 std::uint64_t session_id) {
  stream->set_read_timeout_ms(
      static_cast<unsigned>(cfg_.session_read_timeout.count()));
  std::size_t my_shard = kNoShard;
  std::string name;
  const auto send = [&](dist::WireKind kind,
                        const std::vector<std::uint8_t>& payload) {
    net::send_frame(*stream, kind, payload);
  };
  const auto send_error = [&](ErrorCode code, const std::string& msg) {
    try {
      send(dist::WireKind::kError, encode(ErrorReply{code, msg}));
    } catch (const net::NetError&) {
    }
  };
  try {
    // ---- handshake ----
    net::Frame f;
    for (;;) {
      const net::RecvStatus st = net::recv_frame(*stream, f, true);
      if (st == net::RecvStatus::kIdle) {
        if (stop_.load()) return;
        continue;
      }
      if (st == net::RecvStatus::kEof) return;
      break;
    }
    if (f.kind != dist::WireKind::kHello) {
      send_error(ErrorCode::kBadRequest, "expected hello");
      return;
    }
    const HelloRequest hello = decode_hello_request(f.payload);
    name = hello.name.empty() ? "session-" + std::to_string(session_id)
                              : hello.name;
    {
      std::lock_guard<std::mutex> lk(mu_);
      runners_[session_id].name = name;
      runners_[session_id].role = hello.role;
      runners_[session_id].reconnects = hello.reconnects;
      runners_[session_id].last_seen = std::chrono::steady_clock::now();
    }
    if (hello.protocol != kServiceProtocolVersion) {
      send_error(ErrorCode::kVersion,
                 "service protocol " + std::to_string(hello.protocol) +
                     " (this coordinator speaks " +
                     std::to_string(kServiceProtocolVersion) + ")");
      return;
    }
    if (hello.role != "worker" && hello.role != "store") {
      send_error(ErrorCode::kRefused, "unknown role '" + hello.role + "'");
      return;
    }
    // A nonzero hello fingerprint is a RE-hello: the runner is already
    // bound to a plan and must not reconnect into a different campaign
    // (a restarted coordinator serving another plan on the same port).
    if ((hello.fingerprint.hi != 0 || hello.fingerprint.lo != 0) &&
        !(hello.fingerprint == plan_.fingerprint)) {
      send_error(ErrorCode::kRefused,
                 "reconnected into a different campaign (plan fingerprint "
                 "mismatch)");
      return;
    }
    HelloReply ack;
    ack.fingerprint = plan_.fingerprint;
    ack.workload_spec = plan_.workload_spec;
    ack.index_count = plan_.count;
    ack.max_rounds = plan_.max_rounds;
    ack.shard_count = plan_.shards.size();
    send(dist::WireKind::kHello, encode(ack));

    // ---- message loop ----
    for (;;) {
      const net::RecvStatus st = net::recv_frame(*stream, f, true);
      if (st == net::RecvStatus::kIdle) {
        if (stop_.load()) break;
        continue;
      }
      if (st == net::RecvStatus::kEof) break;
      // A stopping coordinator stops SERVING, not just accepting: the
      // frame goes unanswered, exactly as a crash would leave it — so
      // runners experience the restart instead of quietly draining the
      // campaign through a dying process.
      if (stop_.load()) break;
      dist::WireKind reply_kind = f.kind;
      std::vector<std::uint8_t> reply;
      switch (f.kind) {
        case dist::WireKind::kLeaseRequest: {
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          std::size_t leased = kNoShard;
          try {
            reply = grant_lease_locked(session_id, name, &leased);
          } catch (const dist::SerializeError& e) {
            reply_kind = dist::WireKind::kError;
            reply = encode(ErrorReply{ErrorCode::kRefused,
                                      std::string("journal: ") + e.what()});
          }
          if (leased != kNoShard) my_shard = leased;
          reply_kind = reply_kind == dist::WireKind::kError
                           ? reply_kind
                           : dist::WireKind::kLeaseGrant;
          break;
        }
        case dist::WireKind::kJournalChunk: {
          const JournalChunk chunk = decode_journal_chunk(f.payload);
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          ChunkReply cr;
          if (chunk.shard_index < shards_.size() && chunk.token != 0 &&
              shards_[chunk.shard_index].token == chunk.token &&
              shards_[chunk.shard_index].phase == ShardPhase::kLeased) {
            ShardState& s = shards_[chunk.shard_index];
            // A valid token identifies the lease, not the TCP session:
            // a worker that reconnected mid-lease (coordinator restart
            // healed, partition cleared) adopts the lease into its new
            // session, so the OLD session's teardown no longer requeues
            // the shard out from under it.
            s.session = session_id;
            s.holder = name;
            my_shard = chunk.shard_index;
            try {
              std::uint64_t chunk_survivors = 0;
              for (const JournalRecord& rec : chunk.records) {
                s.writer->record(rec.index, rec.value);
                ++committed_indices_;
                committed_defeats_ += rec.value;
                if (rec.value == 0) ++chunk_survivors;
              }
              s.last_progress = std::chrono::steady_clock::now();
              journal_bytes_streamed_ += f.payload.size();
              runners_[session_id].records_streamed += chunk.records.size();
              if (!first_record_at_ && !chunk.records.empty()) {
                first_record_at_ = s.last_progress;
              }
              // Enumeration-delay observation: the chunk gap, spread
              // evenly over the chunk's records (the coordinator sees
              // batches, not individual results — see ServiceReport).
              if (!chunk.records.empty()) {
                const std::uint64_t now_off = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        s.last_progress - start_)
                        .count());
                const std::uint64_t per =
                    (now_off - s.last_chunk_off_ns) / chunk.records.size();
                for (std::size_t n = 0; n < chunk.records.size(); ++n) {
                  s.delay.inter_result_delay_ns.record(per);
                }
                s.delay.results += chunk.records.size();
                if (s.delay.time_to_first_result_ns < 0) {
                  s.delay.time_to_first_result_ns =
                      static_cast<std::int64_t>(now_off);
                }
                s.delay.survivors += chunk_survivors;
                if (chunk_survivors > 0 &&
                    s.delay.time_to_first_survivor_ns < 0) {
                  s.delay.time_to_first_survivor_ns =
                      static_cast<std::int64_t>(now_off);
                }
                s.last_chunk_off_ns = now_off;
              }
              cr.accepted = true;
              cr.next_index = s.writer->next_index();
            } catch (const dist::SerializeError& e) {
              // Out-of-order or unappendable records: this attempt is
              // bad; the committed prefix stays, the shard requeues.
              fail_attempt_locked(chunk.shard_index,
                                  std::string("bad chunk: ") + e.what());
              cv_.notify_all();
              cr.accepted = false;
            }
          } else {
            cr.accepted = false;  // stale token: lease was revoked
            if (chunk.token != 0) ++stale_tokens_fenced_;
          }
          reply = encode(cr);
          break;
        }
        case dist::WireKind::kSeal: {
          const Seal seal = decode_seal(f.payload);
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          SealReply sr;
          if (seal.shard_index < shards_.size() && seal.token != 0 &&
              shards_[seal.shard_index].token == seal.token &&
              shards_[seal.shard_index].phase == ShardPhase::kLeased) {
            ShardState& s = shards_[seal.shard_index];
            if (seal.total != s.writer->sum()) {
              fail_attempt_locked(
                  seal.shard_index,
                  "seal total " + std::to_string(seal.total) +
                      " != journaled sum " + std::to_string(s.writer->sum()));
            } else {
              try {
                s.writer->finish(seal.total);
                s.writer.reset();
                s.phase = ShardPhase::kSealed;
                s.sealed_sum = seal.total;
                s.token = 0;
                s.holder.clear();
                s.session = 0;
                ++sealed_total_;
                ++sealed_this_run_;
                ++runners_[session_id].shards_sealed;
                if (!first_seal_at_) {
                  first_seal_at_ = std::chrono::steady_clock::now();
                }
                // Journal DONE record first (data), then the durable
                // control-state commit + merge checkpoint, then the
                // reply. A crash in between leaves a sealed journal
                // without a ledger seal — the one tolerated asymmetry
                // the resume path adopts from the journal.
                ledger_append_nothrow_locked(
                    {dist::LedgerEvent::kSeal, seal.shard_index, seal.total});
                ledger_append_nothrow_locked({dist::LedgerEvent::kCheckpoint,
                                              committed_indices_,
                                              committed_defeats_});
                sr.accepted = true;
                my_shard = kNoShard;
              } catch (const dist::SerializeError& e) {
                fail_attempt_locked(seal.shard_index,
                                    std::string("seal refused: ") + e.what());
              }
            }
            cv_.notify_all();
          } else if (seal.token != 0) {
            ++stale_tokens_fenced_;
          }
          reply = encode(sr);
          break;
        }
        case dist::WireKind::kHeartbeat: {
          const Heartbeat hb = decode_heartbeat(f.payload);
          std::lock_guard<std::mutex> lk(mu_);
          runners_[session_id].last_seen = std::chrono::steady_clock::now();
          HeartbeatReply hr;
          // NOTE: a heartbeat proves the runner is alive, not that it is
          // making progress — it never renews the lease. Journal growth
          // (chunks) is the only renewal, same as the fork/exec
          // orchestrator's journal-size poll.
          hr.lease_valid =
              hb.token == 0 ||
              (hb.shard_index < shards_.size() &&
               shards_[hb.shard_index].token == hb.token &&
               shards_[hb.shard_index].phase == ShardPhase::kLeased);
          reply = encode(hr);
          break;
        }
        case dist::WireKind::kOrbitGet: {
          const OrbitGet get = decode_orbit_get(f.payload);
          OrbitGetReply gr;
          // fs_store_ is internally synchronized — no mu_ during IO.
          if (fs_store_) {
            const auto set = fs_store_->load(get.key);
            if (set) {
              gr.found = true;
              gr.payload = dist::serialize_orbit_set(*set);
            }
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            runners_[session_id].last_seen = std::chrono::steady_clock::now();
            ++tier_gets_;
            if (gr.found) ++tier_hits_;
          }
          reply = encode(gr);
          break;
        }
        case dist::WireKind::kOrbitPut: {
          const OrbitPut put = decode_orbit_put(f.payload);
          OrbitPutReply pr;
          pr.accepted = true;  // best-effort, like FsOrbitStore::store
          if (fs_store_) {
            try {
              // Deserialize first: a malformed payload must never be
              // published into the content-addressed tier.
              fs_store_->store(put.key, dist::deserialize_orbit_set(
                                            put.payload));
            } catch (const dist::SerializeError&) {
              pr.accepted = false;
            }
          }
          {
            std::lock_guard<std::mutex> lk(mu_);
            runners_[session_id].last_seen = std::chrono::steady_clock::now();
            if (pr.accepted && fs_store_) ++tier_stores_;
          }
          reply = encode(pr);
          break;
        }
        default:
          reply_kind = dist::WireKind::kError;
          reply = encode(
              ErrorReply{ErrorCode::kBadRequest, "unexpected message kind"});
      }
      send(reply_kind, reply);
    }
  } catch (const dist::WireVersionError& e) {
    send_error(ErrorCode::kVersion, e.what());
  } catch (const dist::SerializeError& e) {
    send_error(ErrorCode::kBadRequest, e.what());
  } catch (const net::NetError&) {
    // broken or stalled transport — treated like a disconnect
  }
  std::lock_guard<std::mutex> lk(mu_);
  runners_[session_id].connected = false;
  // A session ending because the COORDINATOR is stopping is not a
  // runner failure: the lease stays open, so the run ledger records it
  // the way a crash would and a --resume re-grants it as interrupted
  // (requeueing into a dying process would burn an attempt for nothing).
  if (!stop_.load()) {
    release_if_held_locked(session_id, my_shard,
                           "runner disconnected unsealed");
  }
  cv_.notify_all();
}

void Coordinator::reaper_loop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(cfg_.poll_interval);
    std::lock_guard<std::mutex> lk(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ShardState& s = shards_[i];
      if (s.phase == ShardPhase::kLeased &&
          now - s.last_progress > cfg_.lease_timeout) {
        ++lease_expiries_;
        fail_attempt_locked(
            i, "lease expired (no journal growth for " +
                   std::to_string(cfg_.lease_timeout.count()) + "ms)");
      }
    }
    if (done_locked()) cv_.notify_all();
  }
}

void Coordinator::metrics_loop() {
  while (!stop_.load()) {
    std::unique_ptr<net::TcpStream> s;
    try {
      s = metrics_listener_->accept();
    } catch (const net::NetError&) {
      break;
    }
    if (!s) break;
    try {
      s->set_read_timeout_ms(1000);
      std::string req;
      char buf[1024];
      while (req.find("\r\n\r\n") == std::string::npos && req.size() < 65536) {
        std::size_t n = 0;
        try {
          n = s->read_some(buf, sizeof(buf));
        } catch (const net::NetTimeout&) {
          break;
        }
        if (n == 0) break;
        req.append(buf, n);
      }
      std::string resp;
      if (req.compare(0, 4, "GET ") == 0) {
        // "GET <path> HTTP/1.x": /metrics serves Prometheus text
        // exposition, every other path the JSON snapshot (the original
        // single-document behavior, kept for existing scrapers).
        const std::size_t path_end = req.find(' ', 4);
        const std::string path =
            path_end == std::string::npos ? "/" : req.substr(4, path_end - 4);
        std::string body, content_type;
        if (path == "/metrics") {
          body = metrics_prometheus();
          content_type = "text/plain; version=0.0.4";
        } else {
          body = metrics_json();
          content_type = "application/json";
        }
        resp = "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
               "\r\nContent-Length: " + std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
      } else {
        resp = "HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n";
      }
      s->write_all(resp.data(), resp.size());
    } catch (const net::NetError&) {
      // one scraper's broken connection must not stop the endpoint
    }
  }
}

ServiceReport Coordinator::report_locked() const {
  ServiceReport r;
  const auto now = std::chrono::steady_clock::now();
  r.shards_total = shards_.size();
  for (const ShardState& s : shards_) {
    switch (s.phase) {
      case ShardPhase::kSealed:
        ++r.shards_completed;
        break;
      case ShardPhase::kLeased:
        ++r.shards_leased;
        break;
      case ShardPhase::kPending:
        ++r.shards_pending;
        break;
      case ShardPhase::kQuarantined:
        ++r.shards_quarantined;
        break;
    }
  }
  r.shards_requeued = requeues_;
  r.leases_granted = leases_granted_;
  r.lease_expiries = lease_expiries_;
  r.total_indices = plan_.count;
  r.committed_indices = committed_indices_;
  r.committed_defeats = committed_defeats_;
  r.journal_bytes_streamed = journal_bytes_streamed_;
  r.tier_gets = tier_gets_;
  r.tier_hits = tier_hits_;
  r.tier_stores = tier_stores_;
  if (fs_store_) r.tier_faults = fs_store_->fault_stats();
  r.uptime_seconds = seconds_since(start_, now);
  r.shards_per_second = r.uptime_seconds > 0
                            ? static_cast<double>(sealed_this_run_) /
                                  r.uptime_seconds
                            : 0;
  if (first_record_at_) {
    r.time_to_first_record_seconds = seconds_since(start_, *first_record_at_);
  }
  if (first_seal_at_) {
    r.time_to_first_sealed_shard_seconds =
        seconds_since(start_, *first_seal_at_);
  }
  r.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
          .count());
  r.campaign_id = campaign_id_;
  r.last_journal_growth_ms.reserve(shards_.size());
  for (const ShardState& s : shards_) {
    r.last_journal_growth_ms.push_back(
        s.phase == ShardPhase::kLeased
            ? std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - s.last_progress)
                  .count()
            : -1);
    r.delay.merge(s.delay);
  }
  // Merge stamps elapsed as the max of the inputs' (all zero — shard
  // stats are live accumulators); the campaign's clock is the
  // coordinator's own uptime.
  r.delay.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
          .count());
  r.resumed = resumed_ ? 1 : 0;
  r.ledger_epoch = ledger_epoch_;
  r.ledger_records_replayed = ledger_records_replayed_;
  r.ledger_records_appended = ledger_records_appended_;
  r.ledger_torn_bytes_truncated = ledger_torn_bytes_;
  r.leases_regranted = leases_regranted_;
  r.stale_tokens_fenced = stale_tokens_fenced_;
  // Fleet reconnects: each worker self-reports a monotonically growing
  // count per hello; a worker reconnecting opens a NEW session, so take
  // the per-name maximum and sum across names.
  std::unordered_map<std::string, std::uint64_t> reconnects_by_name;
  for (const RunnerInfo& ri : runners_) {
    if (ri.role != "worker") continue;
    auto [it, inserted] =
        reconnects_by_name.try_emplace(ri.name, ri.reconnects);
    if (!inserted) it->second = std::max(it->second, ri.reconnects);
  }
  for (const auto& [_, n] : reconnects_by_name) r.worker_reconnects += n;
  for (const RunnerInfo& ri : runners_) {
    if (ri.role == "worker") ++r.runners_seen;
    RunnerHealth h;
    h.name = ri.name;
    h.role = ri.role;
    h.last_heartbeat_age_seconds = seconds_since(ri.last_seen, now);
    h.shards_sealed = ri.shards_sealed;
    h.records_streamed = ri.records_streamed;
    h.connected = ri.connected;
    r.runners.push_back(std::move(h));
  }
  return r;
}

ServiceReport Coordinator::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return report_locked();
}

std::string Coordinator::metrics_json() const {
  return service_json(report(), plan_.workload_spec);
}

std::string Coordinator::metrics_prometheus() const {
  // The process's own registry rides along: empty unless this process
  // enabled obs (then the enumeration bind histograms appear here too).
  return service_prometheus(report()) + obs::Registry::instance().prometheus();
}

std::vector<Coordinator::ShardSnapshot> Coordinator::shard_snapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ShardSnapshot> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& s = shards_[i];
    const dist::ShardSpec& spec = plan_.shards[i];
    ShardSnapshot snap;
    snap.phase = s.phase;
    snap.attempts = s.attempts;
    snap.token = s.token;
    snap.interrupted = s.interrupted;
    if (s.writer) {
      snap.next_index = s.writer->next_index();
      snap.sum = s.writer->sum();
    } else if (s.phase == ShardPhase::kSealed) {
      snap.next_index = spec.end;
      snap.sum = s.sealed_sum;
    } else {
      // No live writer: the committed prefix is whatever the journal
      // holds (a resumed-but-not-yet-regranted shard, or none at all).
      snap.next_index = spec.begin;
      try {
        const auto js =
            dist::read_journal(dist::journal_path(cfg_.journal_dir, spec));
        if (js && js->header.shard_id == spec.id &&
            js->header.fingerprint == plan_.fingerprint) {
          snap.next_index = js->next_index;
          snap.sum = js->sum;
        }
      } catch (const dist::SerializeError&) {
      }
    }
    out.push_back(snap);
  }
  return out;
}

dist::QuarantineManifest Coordinator::quarantine_manifest() const {
  std::lock_guard<std::mutex> lk(mu_);
  dist::QuarantineManifest m;
  m.fingerprint = plan_.fingerprint;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& s = shards_[i];
    if (s.phase != ShardPhase::kQuarantined) continue;
    dist::QuarantineEntry e;
    e.begin = plan_.shards[i].begin;
    e.end = plan_.shards[i].end;
    e.shard_id = plan_.shards[i].id;
    std::string diag;
    for (const std::string& d : s.diagnostics) {
      if (!diag.empty()) diag += "; ";
      diag += d;
    }
    e.diagnostics = diag;
    m.entries.push_back(std::move(e));
  }
  return m;
}

}  // namespace rvt::svc

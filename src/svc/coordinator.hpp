// The shard-dispatch coordinator: leases a shard plan's index ranges to
// remote runner daemons over TCP and owns every journal.
//
// Lease semantics are PR 6's fork/exec orchestrator carried onto the
// network, with one inversion that makes incremental merge fall out for
// free: runners STREAM their committed records back (kJournalChunk) and
// the coordinator appends them to the shard's journal locally. Journal
// growth is therefore still the one heartbeat that counts — a runner
// that chats but commits nothing is indistinguishable from a dead one
// and its lease expires — and the durable resume point always lives
// with the coordinator: a requeued shard is re-granted from the
// committed prefix (LeaseGrant::next_index), never from scratch.
//
// Failure handling mirrors the orchestrator exactly:
//  * lease expiry (no journal growth for lease_timeout) or an unsealed
//    disconnect requeues the range, attempts capped at max_attempts;
//  * exhausted attempts quarantine the shard with per-attempt
//    diagnostics — partial coverage stays an explicit state
//    (quarantine_manifest() slots into merge_journals unchanged);
//  * stale leaseholders (expired, then superseded) are fenced by a
//    per-grant token: their chunks/seals get accepted=false and they
//    abandon the shard. Their records are NOT lost wholesale — the
//    prefix the coordinator already journaled stays committed.
//
// The coordinator also serves the remote orbit-store half (kOrbitGet /
// kOrbitPut) against an optional local FsOrbitStore, so the cache
// tier's retry/quarantine/degrade policy composes unchanged — a runner
// publishing through NetOrbitStore lands in the same content-addressed
// directory a shared-filesystem fleet would use.
//
// A separate metrics listener answers plain HTTP/1.0 GETs with a
// bench-report-style JSON document (service_json): live progress for a
// fleet run — shards completed/leased/requeued/quarantined, shards/s,
// per-runner health with last-heartbeat age, cache tier counters,
// time-to-first-sealed-shard. The telemetry export is deliberately a
// separate listener from the dispatch protocol (the bnet/telemetry
// plugin split): scraping metrics can never head-of-line-block a lease.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/journal.hpp"
#include "dist/ledger.hpp"
#include "dist/merge.hpp"
#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/enum_stats.hpp"
#include "sim/orbit_cache.hpp"

namespace rvt::svc {

struct CoordinatorConfig {
  std::string journal_dir;  ///< required; created on construction
  /// Orbit cache directory backing kOrbitGet/kOrbitPut; empty disables
  /// the remote store (gets miss, puts are dropped).
  std::string cache_dir;
  std::uint16_t port = 0;          ///< dispatch listener; 0 = ephemeral
  std::uint16_t metrics_port = 0;  ///< metrics listener; 0 = ephemeral
  unsigned max_attempts = 3;
  /// Lease expires after this long without journal growth.
  std::chrono::milliseconds lease_timeout{10000};
  /// Reaper wake-up cadence (also the kWait retry hint's unit).
  std::chrono::milliseconds poll_interval{20};
  /// Session read timeout: the granularity at which session threads
  /// notice stop() and stalled peers.
  std::chrono::milliseconds session_read_timeout{200};
  /// false: a fresh campaign — the run ledger is (re)created. true:
  /// `serve --resume` — the existing ledger is REQUIRED, replayed
  /// against the on-disk journals, and the coordinator restarts from
  /// the reconstructed lease/attempt/merge state (construction throws
  /// SerializeError if the ledger is missing, foreign, or disagrees
  /// with the journals).
  bool resume = false;
};

/// Health of one connected (or recently connected) runner session.
struct RunnerHealth {
  std::string name;
  std::string role;
  double last_heartbeat_age_seconds = 0;  ///< since last frame received
  std::uint64_t shards_sealed = 0;
  std::uint64_t records_streamed = 0;
  bool connected = false;
};

/// Snapshot of the coordinator's counters; also the source of the
/// metrics document and the bench-report service block.
struct ServiceReport {
  std::uint64_t shards_total = 0;
  std::uint64_t shards_completed = 0;  ///< sealed (incl. pre-existing)
  std::uint64_t shards_leased = 0;     ///< currently out on lease
  std::uint64_t shards_pending = 0;
  std::uint64_t shards_requeued = 0;
  std::uint64_t shards_quarantined = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t runners_seen = 0;  ///< worker-role sessions ever accepted
  // Incremental merge: validated progress so far. committed_* cover the
  // durably journaled prefix of every shard, sealed or not — a partial
  // fleet run already reports real counts.
  std::uint64_t total_indices = 0;
  std::uint64_t committed_indices = 0;
  std::uint64_t committed_defeats = 0;
  std::uint64_t journal_bytes_streamed = 0;  ///< chunk payload bytes
  // Remote orbit store served by this coordinator.
  std::uint64_t tier_gets = 0;
  std::uint64_t tier_hits = 0;
  std::uint64_t tier_stores = 0;
  sim::OrbitTierFaultStats tier_faults;
  double uptime_seconds = 0;
  double shards_per_second = 0;  ///< sealed THIS run / uptime
  /// Negative until the first record / first seal of this run.
  double time_to_first_record_seconds = -1;
  double time_to_first_sealed_shard_seconds = -1;
  // Recovery counters (the "recovery_*" metrics keys): what a resumed
  // coordinator reconstructed and what the fleet did to heal around the
  // restart. All zero on a fresh, uninterrupted campaign.
  std::uint64_t resumed = 0;  ///< 1 if this coordinator was --resume'd
  std::uint64_t ledger_epoch = 0;
  std::uint64_t ledger_records_replayed = 0;
  std::uint64_t ledger_records_appended = 0;
  std::uint64_t ledger_torn_bytes_truncated = 0;
  std::uint64_t leases_regranted = 0;      ///< re-grants of pre-crash leases
  std::uint64_t stale_tokens_fenced = 0;   ///< pre-crash/expired tokens refused
  std::uint64_t worker_reconnects = 0;     ///< per-name max, summed
  // Observability (PR 9): the campaign identity and the enumeration-
  // delay stats the coordinator observes from the record stream.
  std::uint64_t uptime_ms = 0;    ///< uptime_seconds, integer ms
  std::uint64_t campaign_id = 0;  ///< minted from the plan fingerprint
  /// Enumeration-delay observations merged across every shard: results/
  /// survivors are exact (the coordinator sees every committed value);
  /// inter-result delays are chunk-arrival gaps spread evenly over each
  /// chunk's records (batching quantizes worker-side delays — see
  /// DESIGN.md "Observability").
  obs::EnumDelayStats delay;
  /// Per-shard ms since the shard's journal last grew under its current
  /// lease; -1 for shards not out on lease. Plan order. A stalled lease
  /// shows a growing age here well before its expiry fires.
  std::vector<std::int64_t> last_journal_growth_ms;
  std::vector<RunnerHealth> runners;

  bool all_complete() const {
    return shards_quarantined == 0 && shards_completed == shards_total;
  }
};

/// Renders the report as the metrics endpoint's JSON document.
std::string service_json(const ServiceReport& r,
                         const std::string& workload_spec);

/// Renders the report in Prometheus text exposition format — the
/// `/metrics` path of the metrics listener. Counter names are stable
/// scrape API (CI asserts rvt_recovery_resumes and rvt_leases_granted
/// parse).
std::string service_prometheus(const ServiceReport& r);

class Coordinator {
 public:
  enum class ShardPhase : std::uint8_t {
    kPending,
    kLeased,
    kSealed,
    kQuarantined,
  };

  /// One shard's control state, exposed for the replay-vs-live
  /// equivalence tests: a resumed coordinator must reconstruct these
  /// field-for-field (a pre-crash lease maps to kPending with token 0
  /// and interrupted=true — the lease itself died with the process;
  /// everything else is exact).
  struct ShardSnapshot {
    ShardPhase phase = ShardPhase::kPending;
    unsigned attempts = 0;
    std::uint64_t token = 0;
    std::uint64_t next_index = 0;  ///< first uncommitted index
    std::uint64_t sum = 0;         ///< committed defeats so far
    bool interrupted = false;      ///< was out on lease when a crash hit
  };

  /// Binds both listeners and starts serving immediately. Existing
  /// journals under journal_dir are adopted: sealed shards need no
  /// lease, partial ones resume from their committed prefix. With
  /// cfg.resume, the run ledger is replayed first (see CoordinatorConfig).
  /// Throws net::NetError (bind failure) or dist::SerializeError
  /// (unusable journal dir, missing/foreign ledger, ledger/journal
  /// disagreement).
  Coordinator(dist::ShardPlan plan, CoordinatorConfig cfg);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::uint16_t port() const { return listener_->port(); }
  std::uint16_t metrics_port() const { return metrics_listener_->port(); }
  const dist::ShardPlan& plan() const { return plan_; }

  /// Blocks until every shard is sealed or quarantined (true), or the
  /// timeout elapses (false). stop() also wakes it (returns current
  /// completion state).
  bool wait_complete(
      std::chrono::milliseconds timeout = std::chrono::milliseconds::max());

  ServiceReport report() const;
  std::string metrics_json() const;
  /// The /metrics Prometheus exposition: the report's counters plus the
  /// process's own obs registry (enumeration histograms, if any).
  std::string metrics_prometheus() const;

  /// Campaign/trace id propagated in every lease grant. Minted
  /// deterministically from the plan fingerprint, so a resumed
  /// coordinator keeps the id and pre/post-restart spans stitch.
  std::uint64_t campaign_id() const { return campaign_id_; }

  /// Per-shard control state, plan order (see ShardSnapshot).
  std::vector<ShardSnapshot> shard_snapshots() const;

  /// Quarantine manifest for the shards given up on (empty entries when
  /// none) — feed to merge_journals for an explicit partial merge.
  dist::QuarantineManifest quarantine_manifest() const;

  /// Shuts both listeners down and joins every thread. Idempotent;
  /// called by the destructor.
  void stop();

 private:
  struct ShardState {
    ShardPhase phase = ShardPhase::kPending;
    unsigned attempts = 0;
    std::uint64_t token = 0;  ///< current lease's fence; 0 = none
    std::string holder;       ///< runner name of the current lease
    std::uint64_t session = 0;  ///< session id of the current lease
    std::chrono::steady_clock::time_point last_progress{};
    std::optional<dist::JournalWriter> writer;
    std::uint64_t sealed_sum = 0;
    bool interrupted = false;  ///< leased when the previous run crashed
    std::vector<std::string> diagnostics;  ///< one line per failed attempt
    /// Enumeration-delay observations for this shard (see
    /// ServiceReport::delay for the measurement semantics).
    obs::EnumDelayStats delay;
    /// Steady-clock offset (ns since start_) of the last accepted
    /// chunk; 0 = none yet. Basis of the chunk-gap delay spread.
    std::uint64_t last_chunk_off_ns = 0;
  };

  struct RunnerInfo {
    std::string name;
    std::string role;
    std::chrono::steady_clock::time_point last_seen{};
    std::uint64_t shards_sealed = 0;
    std::uint64_t records_streamed = 0;
    std::uint64_t reconnects = 0;  ///< self-reported in the hello
    bool connected = true;
  };

  void accept_loop();
  void metrics_loop();
  void reaper_loop();
  void handle_session(std::unique_ptr<net::TcpStream> stream,
                      std::uint64_t session_id);
  // All lock-held helpers assume mu_ is held.
  std::vector<std::uint8_t> grant_lease_locked(std::uint64_t session_id,
                                               const std::string& name,
                                               std::size_t* leased);
  void fail_attempt_locked(std::size_t shard, const std::string& reason);
  void release_if_held_locked(std::uint64_t session_id, std::size_t shard,
                              const std::string& reason);
  bool done_locked() const;
  ServiceReport report_locked() const;
  /// Replays the ledger into shards_/counters against the scanned
  /// journal states; throws SerializeError on any ledger/journal
  /// disagreement. Called under no lock (ctor only).
  void replay_ledger(
      const dist::LedgerState& ls,
      const std::vector<std::optional<dist::JournalState>>& journals);
  /// Best-effort ledger append for paths where the durable fact already
  /// lives in a journal (seal) or where failing the append must not
  /// wedge the shard (requeue/quarantine). Grants use a throwing append
  /// instead — a grant that cannot be made durable must not be sent.
  void ledger_append_nothrow_locked(const dist::LedgerRecord& rec);

  dist::ShardPlan plan_;
  CoordinatorConfig cfg_;
  std::unique_ptr<net::TcpListener> listener_;
  std::unique_ptr<net::TcpListener> metrics_listener_;
  std::unique_ptr<dist::FsOrbitStore> fs_store_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ShardState> shards_;
  std::deque<std::size_t> pending_;
  std::vector<RunnerInfo> runners_;  // indexed by session id
  std::optional<dist::LedgerWriter> ledger_;
  std::uint64_t next_token_ = 1;
  std::uint64_t leases_granted_ = 0;
  std::uint64_t lease_expiries_ = 0;
  bool resumed_ = false;
  std::uint64_t ledger_epoch_ = 1;
  std::uint64_t ledger_records_replayed_ = 0;
  std::uint64_t ledger_records_appended_ = 0;
  std::uint64_t ledger_torn_bytes_ = 0;
  std::uint64_t leases_regranted_ = 0;
  std::uint64_t stale_tokens_fenced_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t committed_indices_ = 0;
  std::uint64_t committed_defeats_ = 0;
  std::uint64_t journal_bytes_streamed_ = 0;
  std::uint64_t sealed_total_ = 0;      ///< incl. adopted pre-sealed
  std::uint64_t sealed_this_run_ = 0;
  std::uint64_t tier_gets_ = 0, tier_hits_ = 0, tier_stores_ = 0;
  std::uint64_t campaign_id_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::optional<std::chrono::steady_clock::time_point> first_record_at_;
  std::optional<std::chrono::steady_clock::time_point> first_seal_at_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread metrics_thread_;
  std::thread reaper_thread_;
  std::vector<std::thread> sessions_;
  std::mutex sessions_mu_;  ///< guards sessions_ (joined in stop())
};

}  // namespace rvt::svc

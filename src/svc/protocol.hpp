// Message codecs for the shard-dispatch service protocol.
//
// One frame (net/frame.hpp) per message; a request and its reply share
// a WireKind, and kError may answer any request. The session state
// machine (DESIGN.md "Service tier"):
//
//   connect -> kHello (negotiate) -> { kLeaseRequest -> kLeaseGrant
//                                    | kJournalChunk -> ChunkReply
//                                    | kSeal         -> SealReply
//                                    | kHeartbeat    -> HeartbeatReply
//                                    | kOrbitGet/Put -> replies }*
//
// Every message is encoded with the bounds-checked WireWriter/WireReader
// (dist/serialize.hpp); decoders consume the exact payload (expect_end)
// and throw SerializeError on anything malformed, so a hostile or
// corrupt peer can only ever produce a refused frame, never a
// half-parsed message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "sim/orbit_cache.hpp"

namespace rvt::svc {

/// Version of the MESSAGE SCHEMA on top of the wire format. The frame
/// version (dist::kWireVersion) rejects foreign byte layouts before a
/// payload is even parsed; this one lets two builds that share the
/// frame format still refuse each other's message vocabulary — the
/// hello handshake reports it as ErrorCode::kVersion, distinct from
/// corruption. History: 1 = the PR 7 vocabulary; 2 = the hello request
/// carries the workload fingerprint the session is (re)binding to plus
/// the worker's reconnect count, so a coordinator can refuse a worker
/// that reconnected into a different campaign and account fleet-wide
/// reconnects; 3 = lease grants carry the coordinator-minted campaign/
/// trace id as an OPTIONAL TAIL (decoders still accept the v2 payload
/// — the id defaults to 0 — so a mixed-version rollout degrades to
/// unstitched traces, never to a refused lease).
inline constexpr std::uint32_t kServiceProtocolVersion = 3;

enum class ErrorCode : std::uint32_t {
  kVersion = 1,     ///< protocol version mismatch in the hello
  kRefused = 2,     ///< handshake refused (bad role, no capacity)
  kBadRequest = 3,  ///< malformed or out-of-order message
};

// ---- handshake ------------------------------------------------------------

struct HelloRequest {
  std::uint32_t protocol = kServiceProtocolVersion;
  std::string role;  ///< "worker" (lease + stream) or "store" (orbit IO)
  std::string name;  ///< runner's self-chosen display name
  /// Zero on the first hello (the worker learns the plan from the
  /// reply); on a RE-hello after a reconnect, the fingerprint the
  /// session was bound to — a coordinator serving a different plan
  /// refuses (kRefused) instead of accepting foreign records.
  dist::ShardId fingerprint;
  /// How many times this worker has reconnected so far; the coordinator
  /// folds the per-name maximum into its recovery metrics.
  std::uint64_t reconnects = 0;
};

/// The coordinator's half of the handshake binds the session to ONE
/// plan: the worker re-derives the workload from spec and refuses a
/// fingerprint mismatch, exactly like the fork/exec runner refuses a
/// foreign plan (dist/runner.cpp).
struct HelloReply {
  std::uint32_t protocol = kServiceProtocolVersion;
  dist::ShardId fingerprint;
  std::string workload_spec;
  std::uint64_t index_count = 0;
  std::uint64_t max_rounds = 0;
  std::uint64_t shard_count = 0;
};

// ---- leases ---------------------------------------------------------------

enum class LeaseStatus : std::uint8_t {
  kGranted = 0,
  kWait = 1,     ///< nothing pending NOW; retry after retry_ms
  kDrained = 2,  ///< every shard sealed or quarantined — disconnect
};

struct LeaseGrant {
  LeaseStatus status = LeaseStatus::kWait;
  std::uint64_t shard_index = 0;  ///< position in the plan's shard list
  dist::ShardId shard_id;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// Resume point: the coordinator owns the journal, so a re-leased
  /// shard continues from the durably committed prefix, not index 0.
  std::uint64_t next_index = 0;
  std::uint64_t resume_sum = 0;
  std::uint64_t token = 0;     ///< must accompany every chunk/seal
  std::uint64_t retry_ms = 0;  ///< kWait: backoff before re-requesting
  /// Campaign/trace id the coordinator minted for this plan (protocol
  /// v3 optional tail; 0 from a v2 peer). Workers adopt it as their
  /// obs::trace campaign id so their spans stitch under the
  /// coordinator's timeline in an exported trace.
  std::uint64_t campaign_id = 0;
};

struct Heartbeat {
  std::uint64_t shard_index = 0;
  std::uint64_t token = 0;  ///< 0 = pure liveness, no lease to check
};

struct HeartbeatReply {
  bool lease_valid = false;  ///< token still holds the lease (true if 0)
};

// ---- journal streaming ----------------------------------------------------

struct JournalRecord {
  std::uint64_t index = 0;
  std::uint64_t value = 0;
};

/// A batch of contiguous committed records. Chunk arrival IS the lease
/// heartbeat — journal growth, the same liveness signal the fork/exec
/// orchestrator polls for, just pushed over the session.
struct JournalChunk {
  std::uint64_t shard_index = 0;
  std::uint64_t token = 0;
  std::vector<JournalRecord> records;
};

struct ChunkReply {
  /// false = the lease was revoked (expired and re-granted elsewhere);
  /// the runner abandons the shard and requests a fresh lease.
  bool accepted = false;
  std::uint64_t next_index = 0;  ///< coordinator's durable resume point
};

struct Seal {
  std::uint64_t shard_index = 0;
  std::uint64_t token = 0;
  std::uint64_t total = 0;  ///< runner's running sum, cross-checked
};

struct SealReply {
  bool accepted = false;
};

// ---- errors ---------------------------------------------------------------

struct ErrorReply {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

// ---- remote orbit store ---------------------------------------------------

struct OrbitGet {
  sim::OrbitKey key;
};

struct OrbitGetReply {
  bool found = false;
  /// Serialized OrbitSet payload (serialize_orbit_set, NOT framed — the
  /// message frame already carries the checksum).
  std::vector<std::uint8_t> payload;
};

struct OrbitPut {
  sim::OrbitKey key;
  std::vector<std::uint8_t> payload;
};

struct OrbitPutReply {
  bool accepted = false;
};

// ---- codecs ---------------------------------------------------------------
// encode_* produce the frame PAYLOAD for the message's WireKind;
// decode_* parse one and throw dist::SerializeError on any violation.

std::vector<std::uint8_t> encode(const HelloRequest& m);
std::vector<std::uint8_t> encode(const HelloReply& m);
std::vector<std::uint8_t> encode_lease_request();
std::vector<std::uint8_t> encode(const LeaseGrant& m);
std::vector<std::uint8_t> encode(const Heartbeat& m);
std::vector<std::uint8_t> encode(const HeartbeatReply& m);
std::vector<std::uint8_t> encode(const JournalChunk& m);
std::vector<std::uint8_t> encode(const ChunkReply& m);
std::vector<std::uint8_t> encode(const Seal& m);
std::vector<std::uint8_t> encode(const SealReply& m);
std::vector<std::uint8_t> encode(const ErrorReply& m);
std::vector<std::uint8_t> encode(const OrbitGet& m);
std::vector<std::uint8_t> encode(const OrbitGetReply& m);
std::vector<std::uint8_t> encode(const OrbitPut& m);
std::vector<std::uint8_t> encode(const OrbitPutReply& m);

HelloRequest decode_hello_request(std::span<const std::uint8_t> p);
HelloReply decode_hello_reply(std::span<const std::uint8_t> p);
LeaseGrant decode_lease_grant(std::span<const std::uint8_t> p);
Heartbeat decode_heartbeat(std::span<const std::uint8_t> p);
HeartbeatReply decode_heartbeat_reply(std::span<const std::uint8_t> p);
JournalChunk decode_journal_chunk(std::span<const std::uint8_t> p);
ChunkReply decode_chunk_reply(std::span<const std::uint8_t> p);
Seal decode_seal(std::span<const std::uint8_t> p);
SealReply decode_seal_reply(std::span<const std::uint8_t> p);
ErrorReply decode_error_reply(std::span<const std::uint8_t> p);
OrbitGet decode_orbit_get(std::span<const std::uint8_t> p);
OrbitGetReply decode_orbit_get_reply(std::span<const std::uint8_t> p);
OrbitPut decode_orbit_put(std::span<const std::uint8_t> p);
OrbitPutReply decode_orbit_put_reply(std::span<const std::uint8_t> p);

}  // namespace rvt::svc

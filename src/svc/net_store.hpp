// sim::OrbitStore over the coordinator's remote orbit-store protocol.
//
// A runner daemon plugs this behind its OrbitCache exactly where a
// shared-filesystem fleet plugs FsOrbitStore: the first runner to
// extract a binding publishes it (kOrbitPut), every other runner adopts
// it (kOrbitGet). The coordinator persists through its own FsOrbitStore,
// so the tier's retry / quarantine / degrade policy composes unchanged —
// this class only adds the transport and mirrors the degradation
// contract for the NETWORK half:
//  * a failed request is retried once on a fresh connection (transient
//    blips — coordinator restart, dropped TCP — heal);
//  * both attempts failing counts toward a consecutive-failure streak;
//    kDegradeAfter such operations degrade the store to compute-through,
//    so a dead coordinator stops costing a connect timeout per miss
//    (the sweep stays correct, runners re-extract);
//  * degradation is NOT forever: every kProbeEvery-th skipped operation
//    runs one single-attempt probe, so a coordinator that came back
//    (restart, partition healed) regains its orbit-cache tier — a
//    failed probe costs one connect timeout per kProbeEvery misses and
//    leaves the store degraded;
//  * a payload the codec refuses is a miss, never an escape — same as a
//    corrupt cache file.
// load()/store() never throw; all failure is a miss or a no-op.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/socket.hpp"
#include "sim/orbit_cache.hpp"

namespace rvt::svc {

class NetOrbitStore final : public sim::OrbitStore {
 public:
  NetOrbitStore(std::string host, std::uint16_t port,
                std::string name = "net-store");
  ~NetOrbitStore() override;

  std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet> load(
      const sim::OrbitKey& key) override;
  void store(const sim::OrbitKey& key,
             const std::shared_ptr<const sim::CompiledConfigEngine::OrbitSet>&
                 set) override;
  sim::OrbitTierFaultStats fault_stats() const override;

  /// Consecutive exhausted operations after which the store degrades
  /// (mirrors FsOrbitStore::kDegradeAfter).
  static constexpr std::uint64_t kDegradeAfter = 4;
  /// While degraded, every this-many-th skipped operation probes the
  /// coordinator once; a healthy round trip un-degrades the store.
  static constexpr std::uint64_t kProbeEvery = 32;

  struct Stats {
    std::uint64_t loads = 0;
    std::uint64_t hits = 0;
    std::uint64_t stores = 0;
    std::uint64_t reconnects = 0;       ///< retried ops (fresh connection)
    std::uint64_t exhausted = 0;        ///< ops that failed both attempts
    std::uint64_t decode_failures = 0;  ///< payloads the codec refused
    std::uint64_t undegrades = 0;       ///< probes that revived the tier
    bool degraded = false;
  };
  Stats stats() const;

 private:
  /// Connects + handshakes if needed. Throws net::NetError /
  /// dist::SerializeError; the caller drops the stream on failure.
  void ensure_connected_locked();
  void note_exhausted_locked();
  /// While degraded: true on the operations that should probe (every
  /// kProbeEvery-th), false on the ones that skip.
  bool probe_due_locked();
  void note_probe_success_locked();

  std::string host_;
  std::uint16_t port_;
  std::string name_;
  mutable std::mutex mu_;
  std::unique_ptr<net::TcpStream> stream_;
  std::uint64_t loads_ = 0, hits_ = 0, stores_ = 0, reconnects_ = 0,
                exhausted_ = 0, decode_failures_ = 0, failure_streak_ = 0,
                degraded_skips_ = 0, undegrades_ = 0;
  bool degraded_ = false;
};

}  // namespace rvt::svc

#include "tree/tree.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace rvt::tree {

Tree::Tree(NodeId n, const std::vector<PortedEdge>& edges) {
  if (n <= 0) throw std::invalid_argument("Tree: need n >= 1");
  if (static_cast<NodeId>(edges.size()) != n - 1) {
    throw std::invalid_argument("Tree: a tree on n nodes has n-1 edges");
  }
  adj_.assign(n, {});
  rev_.assign(n, {});

  // First pass: degrees, so we can size the port tables.
  std::vector<int> deg(n, 0);
  for (const auto& e : edges) {
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n || e.u == e.v) {
      throw std::invalid_argument("Tree: bad edge endpoints");
    }
    ++deg[e.u];
    ++deg[e.v];
  }
  for (NodeId v = 0; v < n; ++v) {
    adj_[v].assign(deg[v], -1);
    rev_[v].assign(deg[v], -1);
  }
  for (const auto& e : edges) {
    if (e.port_u < 0 || e.port_u >= deg[e.u] || e.port_v < 0 ||
        e.port_v >= deg[e.v]) {
      throw std::invalid_argument("Tree: port out of range [0, deg)");
    }
    if (adj_[e.u][e.port_u] != -1 || adj_[e.v][e.port_v] != -1) {
      throw std::invalid_argument("Tree: duplicate port at a node");
    }
    adj_[e.u][e.port_u] = e.v;
    rev_[e.u][e.port_u] = e.port_v;
    adj_[e.v][e.port_v] = e.u;
    rev_[e.v][e.port_v] = e.port_u;
  }

  // Connectivity (n-1 edges + connected => tree).
  std::vector<char> seen(n, 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId w : adj_[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        ++reached;
        q.push(w);
      }
    }
  }
  if (reached != n) throw std::invalid_argument("Tree: not connected");

  finalize();
}

Tree Tree::single_node() {
  Tree t;
  t.adj_.assign(1, {});
  t.rev_.assign(1, {});
  t.finalize();
  return t;
}

void Tree::finalize() {
  leaf_count_ = 0;
  max_degree_ = 0;
  for (const auto& a : adj_) {
    const int d = static_cast<int>(a.size());
    if (d == 1) ++leaf_count_;
    max_degree_ = std::max(max_degree_, d);
  }
}

Port Tree::port_towards(NodeId u, NodeId v) const {
  for (Port p = 0; p < degree(u); ++p) {
    if (adj_[u][p] == v) return p;
  }
  return -1;
}

std::vector<NodeId> Tree::leaves() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (is_leaf(v)) out.push_back(v);
  }
  return out;
}

std::vector<PortedEdge> Tree::edges() const {
  std::vector<PortedEdge> out;
  out.reserve(static_cast<std::size_t>(std::max<NodeId>(edge_count(), 0)));
  for (NodeId v = 0; v < node_count(); ++v) {
    for (Port p = 0; p < degree(v); ++p) {
      const NodeId w = adj_[v][p];
      if (v < w) out.push_back({v, w, p, rev_[v][p]});
    }
  }
  return out;
}

Tree Tree::with_ports_permuted(
    const std::vector<std::vector<Port>>& perm) const {
  const NodeId n = node_count();
  if (static_cast<NodeId>(perm.size()) != n) {
    throw std::invalid_argument("with_ports_permuted: wrong outer size");
  }
  for (NodeId v = 0; v < n; ++v) {
    const int d = degree(v);
    if (static_cast<int>(perm[v].size()) != d) {
      throw std::invalid_argument("with_ports_permuted: wrong perm size");
    }
    std::vector<char> hit(d, 0);
    for (Port p : perm[v]) {
      if (p < 0 || p >= d || hit[p]) {
        throw std::invalid_argument("with_ports_permuted: not a permutation");
      }
      hit[p] = 1;
    }
  }
  std::vector<PortedEdge> es = edges();
  for (auto& e : es) {
    e.port_u = perm[e.u][e.port_u];
    e.port_v = perm[e.v][e.port_v];
  }
  return Tree(n, es);
}

std::string Tree::to_string() const {
  std::ostringstream os;
  os << "Tree(n=" << node_count() << ", leaves=" << leaf_count() << ")\n";
  for (NodeId v = 0; v < node_count(); ++v) {
    os << "  " << v << ":";
    for (Port p = 0; p < degree(v); ++p) {
      os << " [" << p << "->" << adj_[v][p] << "@" << rev_[v][p] << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rvt::tree

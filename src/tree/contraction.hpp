// Tree contraction T' (paper §4.1).
//
// T' is obtained from T by replacing every maximal path of degree-2 nodes
// joining two nodes of degree != 2 by a single edge; the ports of that edge
// are the ports of the path's first and last T-edges at those endpoints.
// Since the degree of a surviving node is unchanged, T' inherits a valid
// port labeling, and a basic walk in T restricted to its visits of
// degree-!=-2 nodes is exactly a basic walk in T'. If T has l leaves, T'
// has at most 2l-1 nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace rvt::tree {

struct Contraction {
  Tree tprime = Tree::single_node();  ///< the contracted tree
  std::vector<NodeId> to_t;         ///< T' node id -> T node id
  std::vector<NodeId> t_to_tprime;  ///< T node id -> T' node id, or -1

  /// For each directed T' edge (u', port p), the full T path it contracts:
  /// path[u'][p].front() == to_t[u'], .back() == the T node of the other
  /// endpoint, interior nodes all of degree 2 in T.
  std::vector<std::vector<std::vector<NodeId>>> path;

  /// Length (edges in T) of the path behind directed T' edge (u', p).
  std::uint64_t path_len(NodeId uprime, Port p) const {
    return path[uprime][p].size() - 1;
  }

  NodeId nu() const { return tprime.node_count(); }  ///< the paper's "nu"
};

/// Computes T' in O(n). Requires T to have at least one node of degree
/// != 2 (true for every tree: leaves). A 1- or 2-node tree contracts to
/// itself.
Contraction contract(const Tree& t);

}  // namespace rvt::tree

#include "tree/builders.hpp"

#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <utility>

namespace rvt::tree {

NodeId TreeBuilder::add_node() {
  degree_.push_back(0);
  return node_count_++;
}

int TreeBuilder::degree(NodeId v) const {
  if (v < 0 || v >= node_count_) throw std::out_of_range("TreeBuilder node");
  return static_cast<std::size_t>(v) < degree_.size() ? degree_[v] : 0;
}

std::pair<Port, Port> TreeBuilder::add_edge(NodeId u, NodeId v) {
  if (u < 0 || u >= node_count_ || v < 0 || v >= node_count_) {
    throw std::out_of_range("TreeBuilder::add_edge: unknown node");
  }
  while (static_cast<NodeId>(degree_.size()) < node_count_) {
    degree_.push_back(0);
  }
  const Port pu = degree_[u]++;
  const Port pv = degree_[v]++;
  edges_.push_back({u, v, pu, pv});
  return {pu, pv};
}

NodeId TreeBuilder::add_child(NodeId parent) {
  const NodeId c = add_node();
  add_edge(parent, c);
  return c;
}

Tree TreeBuilder::build() const {
  if (node_count_ == 1) return Tree::single_node();
  return Tree(node_count_, edges_);
}

Tree line(NodeId n) {
  if (n < 1) throw std::invalid_argument("line: n >= 1");
  if (n == 1) return Tree::single_node();
  std::vector<PortedEdge> es;
  es.reserve(n - 1);
  for (NodeId i = 0; i + 1 < n; ++i) {
    const Port pu = 0;                                // toward higher id
    const Port pv = (i + 1 == n - 1) ? 0 : 1;         // toward lower id
    es.push_back({i, i + 1, pu, pv});
  }
  return Tree(n, es);
}

Tree line_edge_colored(NodeId n, int first_color) {
  if (n < 2) throw std::invalid_argument("line_edge_colored: n >= 2");
  if (first_color != 0 && first_color != 1) {
    throw std::invalid_argument("line_edge_colored: color in {0,1}");
  }
  std::vector<PortedEdge> es;
  es.reserve(n - 1);
  for (NodeId j = 0; j + 1 < n; ++j) {
    const Port c = static_cast<Port>((j + first_color) % 2);
    const Port pu = (j == 0) ? 0 : c;          // left endpoint (node j)
    const Port pv = (j + 1 == n - 1) ? 0 : c;  // right endpoint (node j+1)
    es.push_back({j, j + 1, pu, pv});
  }
  return Tree(n, es);
}

Tree line_symmetric_colored(NodeId num_edges) {
  if (num_edges < 1 || num_edges % 2 == 0) {
    throw std::invalid_argument("line_symmetric_colored: odd num_edges >= 1");
  }
  const NodeId m = (num_edges - 1) / 2;  // central edge index
  // color(j) = |j - m| % 2 == (j + m) % 2, so reuse line_edge_colored.
  return line_edge_colored(num_edges + 1, static_cast<int>(m % 2));
}

Tree star(NodeId k) {
  if (k < 1) throw std::invalid_argument("star: k >= 1 leaves");
  TreeBuilder b;
  const NodeId c = b.add_node();
  for (NodeId i = 0; i < k; ++i) b.add_child(c);
  return b.build();
}

Tree spider(int legs, int leg_len) {
  if (legs < 1 || leg_len < 1) {
    throw std::invalid_argument("spider: legs >= 1, leg_len >= 1");
  }
  TreeBuilder b;
  const NodeId c = b.add_node();
  for (int i = 0; i < legs; ++i) {
    NodeId cur = c;
    for (int k = 0; k < leg_len; ++k) cur = b.add_child(cur);
  }
  return b.build();
}

Tree caterpillar(NodeId spine, const std::vector<int>& attach_leaf) {
  if (spine < 1 || static_cast<NodeId>(attach_leaf.size()) != spine) {
    throw std::invalid_argument("caterpillar: attach_leaf.size() == spine");
  }
  TreeBuilder b;
  NodeId prev = b.add_node();
  std::vector<NodeId> spine_ids{prev};
  for (NodeId i = 1; i < spine; ++i) {
    prev = b.add_child(prev);
    spine_ids.push_back(prev);
  }
  for (NodeId i = 0; i < spine; ++i) {
    for (int k = 0; k < attach_leaf[i]; ++k) b.add_child(spine_ids[i]);
  }
  return b.build();
}

Tree complete_binary(int h) {
  if (h < 0) throw std::invalid_argument("complete_binary: h >= 0");
  TreeBuilder b;
  const NodeId root = b.add_node();
  std::function<void(NodeId, int)> grow = [&](NodeId v, int depth) {
    if (depth == h) return;
    const NodeId l = b.add_child(v);
    const NodeId r = b.add_child(v);
    grow(l, depth + 1);
    grow(r, depth + 1);
  };
  grow(root, 0);
  return b.build();
}

Tree complete_kary(int k, int h) {
  if (k < 2 || h < 0) {
    throw std::invalid_argument("complete_kary: k >= 2, h >= 0");
  }
  TreeBuilder b;
  const NodeId root = b.add_node();
  std::function<void(NodeId, int)> grow = [&](NodeId v, int depth) {
    if (depth == h) return;
    for (int c = 0; c < k; ++c) grow(b.add_child(v), depth + 1);
  };
  grow(root, 0);
  return b.build();
}

Tree broom(int handle, int bristles) {
  if (handle < 1 || bristles < 2) {
    throw std::invalid_argument("broom: handle >= 1, bristles >= 2");
  }
  TreeBuilder b;
  NodeId cur = b.add_node();
  for (int i = 0; i < handle; ++i) cur = b.add_child(cur);
  for (int i = 0; i < bristles; ++i) b.add_child(cur);
  return b.build();
}

Tree double_broom(int handle, int left, int right) {
  if (handle < 2 || left < 2 || right < 2) {
    throw std::invalid_argument(
        "double_broom: handle >= 2, bristles >= 2 each");
  }
  TreeBuilder b;
  const NodeId lc = b.add_node();
  NodeId cur = lc;
  for (int i = 0; i < handle; ++i) cur = b.add_child(cur);
  const NodeId rc = cur;
  for (int i = 0; i < left; ++i) b.add_child(lc);
  for (int i = 0; i < right; ++i) b.add_child(rc);
  return b.build();
}

namespace {
NodeId add_binomial(TreeBuilder& b, int k) {
  const NodeId root = b.add_node();
  // B_k's root has children that are roots of B_{k-1}, ..., B_0.
  for (int j = k - 1; j >= 0; --j) {
    const NodeId sub = add_binomial(b, j);
    b.add_edge(root, sub);
  }
  return root;
}
}  // namespace

Tree binomial(int k) {
  if (k < 0) throw std::invalid_argument("binomial: k >= 0");
  TreeBuilder b;
  add_binomial(b, k);
  return b.build();
}

Tree random_attachment(NodeId n, util::Rng& rng) {
  if (n < 1) throw std::invalid_argument("random_attachment: n >= 1");
  TreeBuilder b;
  b.add_node();
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.uniform(0, i - 1));
    b.add_child(parent);
  }
  return b.build();
}

Tree random_with_leaves(NodeId n, NodeId target_leaves, util::Rng& rng) {
  if (target_leaves < 2) {
    throw std::invalid_argument("random_with_leaves: need >= 2 leaves");
  }
  const NodeId skeleton_nodes = 2 * target_leaves - 1;
  if (n < skeleton_nodes) {
    throw std::invalid_argument("random_with_leaves: n >= 2*leaves - 1");
  }
  // Random full binary skeleton with exactly target_leaves leaves, by
  // coalescing random pairs of roots under fresh parents.
  NodeId next_id = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;  // topology only
  std::vector<NodeId> roots;
  for (NodeId i = 0; i < target_leaves; ++i) roots.push_back(next_id++);
  while (roots.size() > 1) {
    const std::size_t a = rng.index(roots.size());
    const NodeId ra = roots[a];
    roots[a] = roots.back();
    roots.pop_back();
    const std::size_t c = rng.index(roots.size());
    const NodeId rc = roots[c];
    roots[c] = roots.back();
    roots.pop_back();
    const NodeId parent = next_id++;
    edges.emplace_back(parent, ra);
    edges.emplace_back(parent, rc);
    roots.push_back(parent);
  }
  // Subdivide random edges until n nodes. Subdivision never changes the
  // leaf set (new nodes have degree 2).
  while (next_id < n) {
    const std::size_t e = rng.index(edges.size());
    const auto [u, v] = edges[e];
    const NodeId w = next_id++;
    edges[e] = {u, w};
    edges.emplace_back(w, v);
  }
  TreeBuilder b;
  for (NodeId i = 0; i < next_id; ++i) b.add_node();
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Tree subdivide_edge(const Tree& t, NodeId u, NodeId v, int extra) {
  if (extra < 0) throw std::invalid_argument("subdivide_edge: extra >= 0");
  const Port pu = t.port_towards(u, v);
  if (pu < 0) throw std::invalid_argument("subdivide_edge: no such edge");
  if (extra == 0) return t;
  const Port pv = t.port_towards(v, u);
  std::vector<PortedEdge> es;
  for (const auto& e : t.edges()) {
    const bool is_target = (e.u == u && e.v == v) || (e.u == v && e.v == u);
    if (!is_target) es.push_back(e);
  }
  const NodeId n = t.node_count();
  // Chain u - w_0 - ... - w_{extra-1} - v. Interior ports: 1 toward u's
  // side, 0 toward v's side (any fixed choice is fine: basic walks pass
  // through degree-2 nodes independently of their labeling).
  NodeId prev = u;
  Port prev_port = pu;
  for (int k = 0; k < extra; ++k) {
    const NodeId w = n + k;
    es.push_back({prev, w, prev_port, 1});
    prev = w;
    prev_port = 0;
  }
  es.push_back({prev, v, prev_port, pv});
  return Tree(n + extra, es);
}

Tree side_tree(int i, std::uint64_t mask) {
  if (i < 2 || i > 60) throw std::invalid_argument("side_tree: 2 <= i <= 60");
  if (mask >> (i - 1)) {
    throw std::invalid_argument("side_tree: mask must have < i-1 bits");
  }
  TreeBuilder b;
  std::vector<NodeId> x;
  x.push_back(b.add_node());  // x_0, the root
  for (int j = 1; j <= i; ++j) x.push_back(b.add_child(x.back()));
  for (int j = 1; j <= i - 1; ++j) {
    if ((mask >> (j - 1)) & 1) {
      const NodeId y = b.add_child(x[j]);
      b.add_child(y);  // degree-2 node y with a leaf below
    } else {
      b.add_child(x[j]);  // single leaf
    }
  }
  return b.build();
}

TwoSided two_sided_tree(const Tree& left, const Tree& right, int m) {
  if (m < 2 || m % 2 != 0) {
    throw std::invalid_argument("two_sided_tree: m even, >= 2");
  }
  const NodeId nl = left.node_count();
  const NodeId nr = right.node_count();
  std::vector<PortedEdge> es = left.edges();
  for (const auto& e : right.edges()) {
    es.push_back({e.u + nl, e.v + nl, e.port_u, e.port_v});
  }
  const NodeId lr = 0;        // left root
  const NodeId rr = nl;       // right root
  const NodeId first_path = nl + nr;
  // Path edges e_0..e_m, m+1 of them; central edge index m/2. Path node
  // p_k (1-indexed in the math) has id first_path + k - 1.
  auto path_node = [&](int k) { return first_path + k - 1; };
  auto color = [&](int j) {
    return static_cast<Port>(std::abs(j - m / 2) % 2);
  };
  // e_0: left_root -- p_1.
  es.push_back({lr, path_node(1), static_cast<Port>(left.degree(lr)),
                color(0)});
  for (int j = 1; j < m; ++j) {
    es.push_back({path_node(j), path_node(j + 1), color(j), color(j)});
  }
  // e_m: p_m -- right_root.
  es.push_back({path_node(m), rr, color(m),
                static_cast<Port>(right.degree(0))});
  Tree t(nl + nr + m, es);
  return {std::move(t), lr, rr, path_node(1), path_node(m)};
}

Tree randomize_ports(const Tree& t, util::Rng& rng) {
  std::vector<std::vector<Port>> perm(t.node_count());
  for (NodeId v = 0; v < t.node_count(); ++v) {
    perm[v].resize(t.degree(v));
    for (Port p = 0; p < t.degree(v); ++p) perm[v][p] = p;
    rng.shuffle(perm[v]);
  }
  return t.with_ports_permuted(perm);
}

}  // namespace rvt::tree

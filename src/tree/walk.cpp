#include "tree/walk.hpp"

#include <stdexcept>

namespace rvt::tree {

Port bw_exit_port(const Tree& t, const WalkPos& pos) {
  const int d = t.degree(pos.node);
  if (pos.in_port < 0) return 0;
  return static_cast<Port>((pos.in_port + 1) % d);
}

Port cbw_exit_port(const Tree& t, const WalkPos& pos, bool first) {
  const int d = t.degree(pos.node);
  if (pos.in_port < 0) return 0;
  if (first) return pos.in_port;
  return static_cast<Port>(((pos.in_port - 1) % d + d) % d);
}

WalkPos bw_step(const Tree& t, const WalkPos& pos) {
  const Port out = bw_exit_port(t, pos);
  const NodeId next = t.neighbor(pos.node, out);
  return {next, t.reverse_port(pos.node, out)};
}

WalkPos cbw_step(const Tree& t, const WalkPos& pos, bool first) {
  const Port out = cbw_exit_port(t, pos, first);
  const NodeId next = t.neighbor(pos.node, out);
  return {next, t.reverse_port(pos.node, out)};
}

std::vector<WalkPos> basic_walk(const Tree& t, NodeId start,
                                std::uint64_t steps) {
  std::vector<WalkPos> out;
  out.reserve(steps + 1);
  WalkPos pos{start, -1};
  out.push_back(pos);
  for (std::uint64_t k = 0; k < steps; ++k) {
    pos = bw_step(t, pos);
    out.push_back(pos);
  }
  return out;
}

WalkResult basic_walk_until(
    const Tree& t, NodeId start,
    const std::function<bool(const WalkPos&, std::uint64_t)>& stop,
    std::uint64_t max_steps) {
  WalkPos pos{start, -1};
  for (std::uint64_t k = 1; k <= max_steps; ++k) {
    pos = bw_step(t, pos);
    if (stop(pos, k)) return {pos, k, true};
  }
  return {pos, max_steps, false};
}

std::uint64_t bw_steps_to(const Tree& t, NodeId start, NodeId target) {
  if (start == target) return 0;
  const std::uint64_t bound =
      2 * static_cast<std::uint64_t>(t.node_count() - 1);
  const WalkResult r = basic_walk_until(
      t, start,
      [target](const WalkPos& p, std::uint64_t) { return p.node == target; },
      bound);
  if (!r.stopped) {
    throw std::logic_error("bw_steps_to: target not reached in 2(n-1) steps");
  }
  return r.steps;
}

}  // namespace rvt::tree

// Canonical forms, automorphisms and the symmetry predicates that decide
// rendezvous feasibility (paper Definitions 1.1/1.2 and Fact 1.1).
//
// Three notions, from strongest to weakest constraint on the adversary:
//
//  * symmetric_positions(T, u, v): there is an automorphism of T that
//    preserves the *given* port labeling and maps u to v. Rendezvous with
//    simultaneous start under this labeling is infeasible iff positions are
//    symmetric w.r.t. it (cf. [14]).
//  * tree_symmetric(T): some nontrivial automorphism preserves the given
//    labeling (paper §2.2: impossible when T has a central node).
//  * perfectly_symmetrizable(T, u, v): some *choice* of labeling admits a
//    label-preserving automorphism carrying u to v (Definition 1.2). This
//    is the paper's feasibility criterion (Fact 1.1): agents solve
//    rendezvous (for every labeling) iff their initial positions are NOT
//    perfectly symmetrizable.
//
// Structure exploited throughout: a nontrivial port-preserving automorphism
// can fix no node (ports at a fixed node are distinct, so all its edges
// would be fixed, forcing identity by induction), hence it swaps the
// endpoints of the central edge; in particular it is unique if it exists.
// Likewise, u != v are perfectly symmetrizable iff T has a central edge,
// u and v lie in different halves, and some (port-oblivious) isomorphism
// between the halves maps u to v — which a marked AHU canonical code
// detects.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "tree/tree.hpp"

namespace rvt::tree {

/// Shared canonical-id space. Ids are only comparable when produced by the
/// same Canonizer instance.
class Canonizer {
 public:
  /// Port-oblivious (topological) canonical id of the subtree rooted at
  /// `root` hanging away from `parent` (-1: whole tree). Equal ids within
  /// one Canonizer <=> an isomorphism exists mapping root->root and, when
  /// marked >= 0, the marked node of one tree to the marked node of the
  /// other. At most one marked node per call.
  int topo_id(const Tree& t, NodeId root, NodeId parent, NodeId marked = -1);

  /// Port-respecting canonical id of the subtree rooted at `root`, where
  /// `parent_port` is the port at root of the edge toward its parent (-1
  /// for a global root). Equal ids <=> the (unique) port-preserving
  /// isomorphism exists (and maps marked to marked when marked >= 0).
  int port_id(const Tree& t, NodeId root, Port parent_port,
              NodeId marked = -1);

 private:
  int intern(std::vector<std::int64_t> key);
  std::map<std::vector<std::int64_t>, int> table_;
  int next_ = 0;
};

/// The central edge {x, y} with its two ports and the bipartition of nodes
/// into the half containing x and the half containing y. Empty when the
/// tree has a central node instead.
struct CentralSplit {
  NodeId x = -1, y = -1;
  Port port_x = -1, port_y = -1;  ///< port of the central edge at x / at y
  std::vector<char> in_x_half;    ///< node id -> 1 iff in x's half
};
std::optional<CentralSplit> central_split(const Tree& t);

/// The unique nontrivial port-preserving automorphism of T, if one exists
/// (as node mapping f with f[v] = image of v). nullopt otherwise.
std::optional<std::vector<NodeId>> port_symmetry_map(const Tree& t);

/// True iff T with its labeling admits a nontrivial port-preserving
/// automorphism (paper §2.2 "symmetric tree").
bool tree_symmetric(const Tree& t);

/// True iff some automorphism preserving the given labeling maps u to v.
/// u == v returns true (identity).
bool symmetric_positions(const Tree& t, NodeId u, NodeId v);

/// Definition 1.2. Requires u != v (throws std::invalid_argument
/// otherwise: co-located agents have trivially met).
bool perfectly_symmetrizable(const Tree& t, NodeId u, NodeId v);

/// All automorphisms (port-oblivious) of T as node maps, by brute force.
/// Guarded to n <= 10; used by tests to cross-check the predicates above.
std::vector<std::vector<NodeId>> enumerate_automorphisms(const Tree& t);

}  // namespace rvt::tree

#include "tree/center.hpp"

#include <queue>
#include <stdexcept>
#include <vector>

namespace rvt::tree {

Center find_center(const Tree& t) {
  const NodeId n = t.node_count();
  Center c;
  if (n == 1) {
    c.node = 0;
    return c;
  }
  if (n == 2) {
    c.edge = {NodeId{0}, NodeId{1}};
    return c;
  }
  std::vector<int> deg(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = t.degree(v);
    if (deg[v] == 1) frontier.push_back(v);
  }
  NodeId remaining = n;
  std::vector<NodeId> last = frontier;
  while (remaining > 2) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      --remaining;
      for (Port p = 0; p < t.degree(v); ++p) {
        const NodeId w = t.neighbor(v, p);
        if (--deg[w] == 1) next.push_back(w);
      }
    }
    // deg[] going to 1 marks the next peel layer; nodes already peeled can
    // reach deg 0 and are skipped naturally (never pushed).
    frontier = std::move(next);
    last = frontier;
  }
  if (remaining == 1) {
    c.node = last.at(0);
  } else {
    NodeId a = last.at(0), b = last.at(1);
    if (a > b) std::swap(a, b);
    if (t.port_towards(a, b) < 0) {
      throw std::logic_error("find_center: final pair not adjacent");
    }
    c.edge = {a, b};
  }
  return c;
}

namespace {
std::vector<int> bfs_dist(const Tree& t, NodeId src) {
  std::vector<int> dist(t.node_count(), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (Port p = 0; p < t.degree(v); ++p) {
      const NodeId w = t.neighbor(v, p);
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}
}  // namespace

int eccentricity(const Tree& t, NodeId v) {
  const auto d = bfs_dist(t, v);
  int e = 0;
  for (int x : d) e = std::max(e, x);
  return e;
}

int distance(const Tree& t, NodeId u, NodeId v) { return bfs_dist(t, u)[v]; }

}  // namespace rvt::tree

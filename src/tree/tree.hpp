// Anonymous port-labeled trees — the substrate every agent walks on.
//
// Model (paper §2.1): nodes are anonymous (agents cannot read node ids; ids
// exist only so the simulator can address nodes), but the edges incident to
// a degree-d node carry distinct local port numbers {0, ..., d-1}. An edge
// {u, v} therefore has two independent port numbers, one at u and one at v;
// there is no global sense of direction. The port labeling is chosen by an
// adversary, so the library treats "tree topology" and "port labeling" as a
// single concrete object and provides relabeling utilities to let
// experiments sweep labelings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rvt::tree {

using NodeId = std::int32_t;
using Port = std::int32_t;

/// One endpoint of an edge as an agent experiences it: "at node `node`,
/// port `port` leads somewhere".
struct Endpoint {
  NodeId node = -1;
  Port port = -1;
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// An undirected edge with both of its port numbers.
struct PortedEdge {
  NodeId u = -1;
  NodeId v = -1;
  Port port_u = -1;  ///< port number of the edge at u
  Port port_v = -1;  ///< port number of the edge at v
  friend bool operator==(const PortedEdge&, const PortedEdge&) = default;
};

/// Immutable port-labeled tree on nodes {0, ..., n-1}.
///
/// Invariants (checked at construction):
///  * exactly n-1 edges, connected (hence acyclic);
///  * at every node the ports of incident edges are exactly {0..deg-1}.
class Tree {
 public:
  /// Builds a tree from an explicit ported edge list. Throws
  /// std::invalid_argument if the invariants fail.
  Tree(NodeId n, const std::vector<PortedEdge>& edges);

  /// Single-node tree (rendezvous is trivial there, but builders and
  /// recursions need the base case).
  static Tree single_node();

  NodeId node_count() const { return static_cast<NodeId>(adj_.size()); }
  NodeId edge_count() const { return node_count() - 1; }

  int degree(NodeId v) const { return static_cast<int>(adj_[v].size()); }

  /// Neighbor reached from v through local port p.
  NodeId neighbor(NodeId v, Port p) const { return adj_[v][p]; }

  /// The port number of the edge {v, neighbor(v,p)} at the *other* end.
  /// I.e. entering neighbor(v, p) from v, the agent reads this in-port.
  Port reverse_port(NodeId v, Port p) const { return rev_[v][p]; }

  /// Port at u of the edge {u, v}; -1 if u and v are not adjacent.
  Port port_towards(NodeId u, NodeId v) const;

  bool is_leaf(NodeId v) const { return degree(v) == 1; }

  NodeId leaf_count() const { return leaf_count_; }
  int max_degree() const { return max_degree_; }

  std::vector<NodeId> leaves() const;

  /// All edges, each once, as stored (u < v not guaranteed; u is the
  /// endpoint from which the edge was first seen).
  std::vector<PortedEdge> edges() const;

  /// A copy of this tree with every node's ports re-permuted by `perm`,
  /// where perm[v] is a permutation of {0..deg(v)-1} and the edge that used
  /// port p at v uses port perm[v][p] in the new tree. Topology (and node
  /// ids) unchanged. Throws if any perm[v] is not a permutation.
  Tree with_ports_permuted(const std::vector<std::vector<Port>>& perm) const;

  /// Human-readable dump for diagnostics and golden tests.
  std::string to_string() const;

 private:
  Tree() = default;
  void finalize();

  // adj_[v][p] = neighbor of v via port p; rev_[v][p] = port at that
  // neighbor of the same edge.
  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::vector<Port>> rev_;
  NodeId leaf_count_ = 0;
  int max_degree_ = 0;
};

}  // namespace rvt::tree

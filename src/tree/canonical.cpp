#include "tree/canonical.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "tree/center.hpp"

namespace rvt::tree {

namespace {
constexpr std::int64_t kTagTopo = 0;
constexpr std::int64_t kTagPort = 1;
}  // namespace

int Canonizer::intern(std::vector<std::int64_t> key) {
  auto [it, inserted] = table_.try_emplace(std::move(key), next_);
  if (inserted) ++next_;
  return it->second;
}

int Canonizer::topo_id(const Tree& t, NodeId root, NodeId parent,
                       NodeId marked) {
  // Iterative post-order; recursion would overflow on long paths.
  struct Frame {
    NodeId node;
    NodeId parent;
    std::size_t next_port = 0;
    std::vector<int> child_ids;
  };
  std::vector<Frame> stack;
  stack.push_back({root, parent, 0, {}});
  int result = -1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const int d = t.degree(f.node);
    bool descended = false;
    while (f.next_port < static_cast<std::size_t>(d)) {
      const Port p = static_cast<Port>(f.next_port++);
      const NodeId c = t.neighbor(f.node, p);
      if (c == f.parent) continue;
      stack.push_back({c, f.node, 0, {}});
      descended = true;
      break;
    }
    if (descended) continue;
    std::sort(f.child_ids.begin(), f.child_ids.end());
    std::vector<std::int64_t> key;
    key.reserve(f.child_ids.size() + 2);
    key.push_back(kTagTopo);
    key.push_back(f.node == marked ? 1 : 0);
    for (int id : f.child_ids) key.push_back(id);
    const int id = intern(std::move(key));
    stack.pop_back();
    if (stack.empty()) {
      result = id;
    } else {
      stack.back().child_ids.push_back(id);
    }
  }
  return result;
}

int Canonizer::port_id(const Tree& t, NodeId root, Port parent_port,
                       NodeId marked) {
  struct Frame {
    NodeId node;
    Port parent_port;
    std::size_t next_port = 0;
    std::vector<std::int64_t> parts;  // p, reverse_port, child_id triples
  };
  std::vector<Frame> stack;
  stack.push_back({root, parent_port, 0, {}});
  int result = -1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const int d = t.degree(f.node);
    bool descended = false;
    while (f.next_port < static_cast<std::size_t>(d)) {
      const Port p = static_cast<Port>(f.next_port++);
      if (p == f.parent_port) continue;
      f.parts.push_back(p);
      f.parts.push_back(t.reverse_port(f.node, p));
      stack.push_back({t.neighbor(f.node, p), t.reverse_port(f.node, p), 0,
                       {}});
      descended = true;
      break;
    }
    if (descended) continue;
    std::vector<std::int64_t> key;
    key.reserve(f.parts.size() + 4);
    key.push_back(kTagPort);
    key.push_back(f.node == marked ? 1 : 0);
    key.push_back(d);
    key.push_back(f.parent_port);
    for (std::int64_t x : f.parts) key.push_back(x);
    const int id = intern(std::move(key));
    stack.pop_back();
    if (stack.empty()) {
      result = id;
    } else {
      stack.back().parts.push_back(id);
    }
  }
  return result;
}

std::optional<CentralSplit> central_split(const Tree& t) {
  const Center c = find_center(t);
  if (!c.has_edge()) return std::nullopt;
  CentralSplit s;
  s.x = c.edge->first;
  s.y = c.edge->second;
  s.port_x = t.port_towards(s.x, s.y);
  s.port_y = t.port_towards(s.y, s.x);
  s.in_x_half.assign(t.node_count(), 0);
  std::queue<NodeId> q;
  q.push(s.x);
  s.in_x_half[s.x] = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (Port p = 0; p < t.degree(v); ++p) {
      const NodeId w = t.neighbor(v, p);
      if (w == s.y && v == s.x) continue;  // don't cross the central edge
      if (!s.in_x_half[w]) {
        s.in_x_half[w] = 1;
        q.push(w);
      }
    }
  }
  return s;
}

std::optional<std::vector<NodeId>> port_symmetry_map(const Tree& t) {
  const auto cs = central_split(t);
  if (!cs) return std::nullopt;  // central node => cannot be symmetric
  if (cs->port_x != cs->port_y) return std::nullopt;
  Canonizer cz;
  const int idx = cz.port_id(t, cs->x, cs->port_x);
  const int idy = cz.port_id(t, cs->y, cs->port_y);
  if (idx != idy) return std::nullopt;

  // The port-preserving isomorphism between the halves is unique: pair
  // children port by port.
  std::vector<NodeId> f(t.node_count(), -1);
  struct Pair {
    NodeId a, b;
    Port pa, pb;  // parent ports at a and b
  };
  std::vector<Pair> stack{{cs->x, cs->y, cs->port_x, cs->port_y}};
  f[cs->x] = cs->y;
  f[cs->y] = cs->x;
  while (!stack.empty()) {
    const Pair pr = stack.back();
    stack.pop_back();
    if (t.degree(pr.a) != t.degree(pr.b)) return std::nullopt;
    for (Port p = 0; p < t.degree(pr.a); ++p) {
      if (p == pr.pa) continue;
      if (p == pr.pb) return std::nullopt;  // parent ports must coincide
      const NodeId a2 = t.neighbor(pr.a, p);
      const NodeId b2 = t.neighbor(pr.b, p);
      const Port ra = t.reverse_port(pr.a, p);
      const Port rb = t.reverse_port(pr.b, p);
      if (ra != rb) return std::nullopt;
      f[a2] = b2;
      f[b2] = a2;
      stack.push_back({a2, b2, ra, rb});
    }
  }
  return f;
}

bool tree_symmetric(const Tree& t) { return port_symmetry_map(t).has_value(); }

bool symmetric_positions(const Tree& t, NodeId u, NodeId v) {
  if (u == v) return true;
  const auto f = port_symmetry_map(t);
  return f && (*f)[u] == v;
}

bool perfectly_symmetrizable(const Tree& t, NodeId u, NodeId v) {
  if (u == v) {
    throw std::invalid_argument(
        "perfectly_symmetrizable: initial positions must differ");
  }
  const auto cs = central_split(t);
  if (!cs) return false;  // central node: every automorphism would fix it
  if (cs->in_x_half[u] == cs->in_x_half[v]) return false;
  NodeId a = u, b = v;
  if (!cs->in_x_half[a]) std::swap(a, b);  // a in x's half, b in y's
  Canonizer cz;
  const int ida = cz.topo_id(t, cs->x, cs->y, a);
  const int idb = cz.topo_id(t, cs->y, cs->x, b);
  return ida == idb;
}

namespace {
void extend_automorphism(const Tree& t, const std::vector<NodeId>& order,
                         std::size_t k, std::vector<NodeId>& f,
                         std::vector<char>& used,
                         const std::vector<NodeId>& bfs_parent,
                         std::vector<std::vector<NodeId>>& out) {
  if (k == order.size()) {
    out.push_back(f);
    return;
  }
  const NodeId a = order[k];
  const NodeId pa = bfs_parent[a];
  for (NodeId img = 0; img < t.node_count(); ++img) {
    if (used[img] || t.degree(img) != t.degree(a)) continue;
    if (pa >= 0 && t.port_towards(f[pa], img) < 0) continue;  // adjacency
    f[a] = img;
    used[img] = 1;
    extend_automorphism(t, order, k + 1, f, used, bfs_parent, out);
    used[img] = 0;
    f[a] = -1;
  }
}
}  // namespace

std::vector<std::vector<NodeId>> enumerate_automorphisms(const Tree& t) {
  const NodeId n = t.node_count();
  if (n > 10) {
    throw std::invalid_argument("enumerate_automorphisms: n <= 10 only");
  }
  std::vector<NodeId> order, bfs_parent(n, -1);
  std::vector<char> seen(n, 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    order.push_back(v);
    for (Port p = 0; p < t.degree(v); ++p) {
      const NodeId w = t.neighbor(v, p);
      if (!seen[w]) {
        seen[w] = 1;
        bfs_parent[w] = v;
        q.push(w);
      }
    }
  }
  std::vector<NodeId> f(n, -1);
  std::vector<char> used(n, 0);
  std::vector<std::vector<NodeId>> out;
  extend_automorphism(t, order, 0, f, used, bfs_parent, out);
  return out;
}

}  // namespace rvt::tree

#include "tree/io.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace rvt::tree {

std::string to_text(const Tree& t) {
  std::ostringstream os;
  os << t.node_count() << "\n";
  for (const auto& e : t.edges()) {
    os << e.u << " " << e.v << " " << e.port_u << " " << e.port_v << "\n";
  }
  return os.str();
}

Tree from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  NodeId n = -1;
  std::vector<PortedEdge> edges;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    if (n < 0) {
      if (!(ls >> n) || n <= 0) {
        throw std::invalid_argument("from_text: bad node count");
      }
      continue;
    }
    PortedEdge e;
    if (!(ls >> e.u >> e.v >> e.port_u >> e.port_v)) {
      throw std::invalid_argument("from_text: bad edge line: " + line);
    }
    edges.push_back(e);
  }
  if (n < 0) throw std::invalid_argument("from_text: empty input");
  if (n == 1 && edges.empty()) return Tree::single_node();
  return Tree(n, edges);
}

std::string to_dot(const Tree& t,
                   const std::map<NodeId, std::string>& highlight) {
  std::ostringstream os;
  os << "graph tree {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < t.node_count(); ++v) {
    os << "  " << v;
    const auto it = highlight.find(v);
    if (it != highlight.end()) {
      os << " [style=filled, fillcolor=\"" << it->second << "\"]";
    }
    os << ";\n";
  }
  for (const auto& e : t.edges()) {
    os << "  " << e.u << " -- " << e.v << " [label=\"" << e.port_u << "|"
       << e.port_v << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rvt::tree

// Serialization of port-labeled trees.
//
// Text format (one tree per string):
//   n
//   u v port_u port_v        (n-1 lines, any order)
// Whitespace-separated; lines beginning with '#' are comments. The format
// round-trips exactly (ports included), so fixtures, failing instances
// from fuzz sweeps, and experiment inputs can be checked in as text.
//
// A Graphviz exporter is included for eyeballing instances: edges are
// annotated "pu|pv" with the port at each endpoint, and selected nodes can
// be highlighted (agent starts, meeting nodes, ...).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tree/tree.hpp"

namespace rvt::tree {

/// Serializes `t` in the text format above.
std::string to_text(const Tree& t);

/// Parses the text format; throws std::invalid_argument on malformed
/// input (including port-labeling violations, via Tree's constructor).
Tree from_text(const std::string& text);

/// Graphviz DOT export. `highlight` maps node id -> fill color (e.g.
/// {{u, "lightblue"}, {v, "salmon"}}).
std::string to_dot(const Tree& t,
                   const std::map<NodeId, std::string>& highlight = {});

}  // namespace rvt::tree

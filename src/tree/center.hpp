// Central node / central edge of a tree (paper §2.2).
//
// T0 = T, and T_{i+1} is T_i with all leaves removed; the process stops at
// the first T_j with at most two nodes. If one node remains it is the
// *central node*; if two remain, the edge joining them is the *central
// edge*. Every tree has exactly one of the two, and every automorphism of
// the tree fixes the central node or maps the central edge to itself — the
// pivot of all symmetry reasoning in the paper.
#pragma once

#include <optional>
#include <utility>

#include "tree/tree.hpp"

namespace rvt::tree {

struct Center {
  /// Engaged iff the tree has a central node.
  std::optional<NodeId> node;
  /// Engaged iff the tree has a central edge; endpoints in node-id order.
  std::optional<std::pair<NodeId, NodeId>> edge;

  bool has_node() const { return node.has_value(); }
  bool has_edge() const { return edge.has_value(); }
};

/// Computes the center by iterated leaf removal in O(n).
Center find_center(const Tree& t);

/// Eccentricity of v: max distance from v to any node. O(n) BFS; used by
/// tests to cross-check find_center (the center minimizes eccentricity).
int eccentricity(const Tree& t, NodeId v);

/// Distance in edges between u and v. O(n) BFS.
int distance(const Tree& t, NodeId u, NodeId v);

}  // namespace rvt::tree

#include "tree/contraction.hpp"

#include <stdexcept>

namespace rvt::tree {

Contraction contract(const Tree& t) {
  const NodeId n = t.node_count();
  Contraction c;
  c.t_to_tprime.assign(n, -1);
  for (NodeId v = 0; v < n; ++v) {
    if (t.degree(v) != 2) {
      c.t_to_tprime[v] = static_cast<NodeId>(c.to_t.size());
      c.to_t.push_back(v);
    }
  }
  const NodeId np = static_cast<NodeId>(c.to_t.size());
  if (np == 0) throw std::logic_error("contract: tree with all degrees 2?");

  if (np == 1) {
    // Single surviving node: T is a single node (a tree cannot consist of
    // one degree-!=-2 node plus degree-2 nodes only).
    c.tprime = Tree::single_node();
    c.path.assign(1, {});
    return c;
  }

  c.path.assign(np, {});
  std::vector<PortedEdge> edges;
  for (NodeId up = 0; up < np; ++up) {
    const NodeId u = c.to_t[up];
    const int d = t.degree(u);
    c.path[up].assign(d, {});
    for (Port p = 0; p < d; ++p) {
      std::vector<NodeId> pathNodes{u};
      NodeId prev = u;
      NodeId cur = t.neighbor(u, p);
      Port in = t.reverse_port(u, p);
      while (t.degree(cur) == 2) {
        pathNodes.push_back(cur);
        const Port out = static_cast<Port>((in + 1) % 2);
        const NodeId nxt = t.neighbor(cur, out);
        in = t.reverse_port(cur, out);
        prev = cur;
        cur = nxt;
      }
      (void)prev;
      pathNodes.push_back(cur);
      c.path[up][p] = std::move(pathNodes);
      const NodeId wp = c.t_to_tprime[cur];
      // Record each contracted edge once (from the endpoint with the
      // smaller T' id; ties impossible since the endpoints differ in a
      // tree path).
      if (up < wp) {
        edges.push_back({up, wp, p, in});
      } else if (up == wp) {
        throw std::logic_error("contract: path loops back (cycle in tree?)");
      }
    }
  }
  c.tprime = Tree(np, edges);
  return c;
}

}  // namespace rvt::tree

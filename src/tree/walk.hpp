// Basic walks and counter basic walks (paper §2.2 and §4.1).
//
// The basic walk ("bw") is the memoryless traversal at the heart of both the
// exploration subroutine and the Stage-2 rendezvous machinery: leave the
// start by port 0 and, perpetually, when entering a degree-d node by port i,
// leave by port (i+1) mod d. In a tree this is an Euler tour: after exactly
// 2(n-1) steps it is back at the start, having crossed every edge once in
// each direction.
//
// The counter basic walk ("cbw") undoes a basic walk: leave by the port just
// used to enter, then when entering by port i leave by port (i-1) mod d.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tree/tree.hpp"

namespace rvt::tree {

/// Walker position: the node the agent is at plus the port through which it
/// entered (-1 at the start of a walk, before any move).
struct WalkPos {
  NodeId node = -1;
  Port in_port = -1;
  friend bool operator==(const WalkPos&, const WalkPos&) = default;
};

/// One basic-walk step from `pos`. If pos.in_port == -1 the walker leaves by
/// port 0 (the paper's "leave node v by port 0").
WalkPos bw_step(const Tree& t, const WalkPos& pos);

/// One counter-basic-walk step from `pos`.
///
/// Paper semantics: the *first* step of a cbw leaves by the port used to
/// enter the current node ("leave by the port used to enter the current
/// node at the previous step"); every subsequent step, having entered a
/// degree-d node by port i, leaves by port (i-1) mod d. Pass `first = true`
/// for the initial step of a cbw sequence. A cbw of length k started right
/// after a bw of length k retraces it exactly, ending at the bw's start.
/// If pos.in_port == -1 (never moved) the walker leaves by port 0.
WalkPos cbw_step(const Tree& t, const WalkPos& pos, bool first);

/// The port a basic walk leaves through from `pos` (without moving).
Port bw_exit_port(const Tree& t, const WalkPos& pos);
Port cbw_exit_port(const Tree& t, const WalkPos& pos, bool first);

/// Full basic walk of `steps` steps from `start`; result[0] is the start
/// position, result[k] the position after k steps (result.size() ==
/// steps+1).
std::vector<WalkPos> basic_walk(const Tree& t, NodeId start,
                                std::uint64_t steps);

/// Runs a basic walk from `start` until `stop(pos, step_index)` returns true
/// (checked after each step, not at the start) or `max_steps` steps elapse.
/// Returns the final position and the number of steps taken.
struct WalkResult {
  WalkPos pos;
  std::uint64_t steps = 0;
  bool stopped = false;  ///< true if `stop` fired, false if max_steps hit
};
WalkResult basic_walk_until(
    const Tree& t, NodeId start,
    const std::function<bool(const WalkPos&, std::uint64_t)>& stop,
    std::uint64_t max_steps);

/// Number of steps of the basic walk from `start` until first arrival at
/// `target` (paper: "the minimum number of steps of a basic walk from its
/// initial position to ..."). Returns steps in [1, 2(n-1)]; 0 if
/// start == target. Throws if never reached within 2(n-1) steps (cannot
/// happen on a valid tree).
std::uint64_t bw_steps_to(const Tree& t, NodeId start, NodeId target);

}  // namespace rvt::tree

// Tree families used across the paper's arguments and our experiments.
//
// Every builder returns a concrete port-labeled Tree. Default port
// assignments follow construction order (deterministic); experiments that
// need adversarial or random labelings post-process with randomize_ports()
// or Tree::with_ports_permuted().
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace rvt::tree {

/// Incremental tree construction helper. Ports are assigned in edge
/// insertion order at each endpoint (first edge touching a node gets its
/// port 0, and so on), which always yields a valid labeling.
class TreeBuilder {
 public:
  /// Creates the builder with `n` initial nodes (may be 0).
  explicit TreeBuilder(NodeId n = 0) : node_count_(n) {}

  NodeId add_node();
  /// Connects existing nodes u, v with the next free port at each end.
  /// Returns the edge's ports (port_u, port_v).
  std::pair<Port, Port> add_edge(NodeId u, NodeId v);
  /// Adds a fresh node connected to `parent`; returns its id.
  NodeId add_child(NodeId parent);

  NodeId node_count() const { return node_count_; }
  int degree(NodeId v) const;

  Tree build() const;

 private:
  NodeId node_count_ = 0;
  std::vector<PortedEdge> edges_;
  std::vector<int> degree_;
};

/// Path on n nodes (ids 0..n-1 along the path). Default ports: at every
/// node, the edge toward the higher id gets the lower port. So internal
/// node i has port 0 -> i+1 and port 1 -> i-1; both leaves use port 0.
Tree line(NodeId n);

/// Path on n nodes whose edges carry a proper 2-coloring realized in the
/// ports: both endpoints of edge j = {j, j+1} read the same port number
/// color(j) in {0,1} (degree-1 endpoints are forced to port 0 by the
/// model). color(j) = (j + first_color) mod 2.
/// This is the "ports leading to any edge at both its extremities get the
/// same number 0 or 1" labeling from Theorems 3.1 and 4.2.
Tree line_edge_colored(NodeId n, int first_color);

/// Edge-2-colored path with an odd number of edges, colored symmetrically
/// around its central edge, which gets color (= port) 0 on both sides —
/// the exact Figure-1 labeling of Theorem 3.1. `num_edges` must be odd.
Tree line_symmetric_colored(NodeId num_edges);

/// Star: center node 0 with k leaves.
Tree star(NodeId k);

/// Spider: center node 0 with `legs` paths of `leg_len` edges each.
/// legs >= 3 keeps the center the unique max-degree node; leg_len >= 1.
Tree spider(int legs, int leg_len);

/// Caterpillar: a spine path of `spine` nodes; attach_leaf[i] extra leaves
/// hang off spine node i (attach_leaf.size() == spine).
Tree caterpillar(NodeId spine, const std::vector<int>& attach_leaf);

/// Perfect binary tree of height h (root degree 2, internal degree 3,
/// 2^h leaves, 2^{h+1}-1 nodes).
Tree complete_binary(int h);

/// Perfect k-ary tree of height h: k^h leaves, (k^{h+1}-1)/(k-1) nodes.
/// k >= 2, h >= 0.
Tree complete_kary(int k, int h);

/// Broom: a handle path of `handle` edges ending in a star of `bristles`
/// leaves. Node 0 is the free end of the handle. handle >= 1,
/// bristles >= 2.
Tree broom(int handle, int bristles);

/// Double broom: two stars of `left` and `right` bristles joined by a
/// path of `handle` edges (handle >= 2). With left == right this is the
/// canonical symmetric-contraction instance besides the line; with
/// left != right the central edge is asymmetric.
Tree double_broom(int handle, int left, int right);

/// Binomial tree B_k (2^k nodes): B_0 is a single node; B_k joins the
/// roots of two copies of B_{k-1}. The paper cites it as the canonical
/// symmetric-contraction example where agents can end up at two distinct
/// "farthest extremities".
Tree binomial(int k);

/// Uniform random attachment tree: node i (i >= 1) connects to a uniformly
/// random earlier node. Deterministic given rng state.
Tree random_attachment(NodeId n, util::Rng& rng);

/// Random tree with exactly `target_leaves` leaves and exactly n nodes,
/// built by generating a random branching skeleton with target_leaves
/// leaves and then subdividing random edges until n nodes. Requires
/// 2 <= target_leaves and n large enough (throws otherwise).
Tree random_with_leaves(NodeId n, NodeId target_leaves, util::Rng& rng);

/// Subdivides edge {u, v} (must exist) `extra` times: replaces it by a path
/// with `extra` new degree-2 nodes. New nodes get ids n, n+1, ... The new
/// degree-2 nodes inherit ports so the walk order is preserved (port toward
/// u keeps u's original port number parity-free: the first path edge keeps
/// the original port at u, the last keeps the original port at v; each new
/// node uses port 0 toward v-side if its two ports would be free — builder
/// order: toward u = in insertion order).
Tree subdivide_edge(const Tree& t, NodeId u, NodeId v, int extra);

/// Theorem 4.3 side tree: an (i+1)-node path x_0 (root) .. x_i; to every
/// internal node x_j (1 <= j <= i-1) attach either a single leaf (mask bit
/// j-1 == 0) or a degree-2 node with a leaf below it (bit == 1). Node 0 is
/// the root. There are 2^{i-1} non-isomorphic side trees.
Tree side_tree(int i, std::uint64_t mask);

/// Theorem 4.3 two-sided tree: roots of `left` and `right` joined by a path
/// of length m+1 (m added degree-2 nodes, m even >= 0), with the symmetric
/// path labeling: both ports of the central edge are 0 and the ports at
/// both ends of every other path edge carry the same number (proper
/// 2-coloring growing outward from the central edge). Side-tree labelings
/// are preserved; left keeps node ids, right is shifted.
/// Returns the tree plus the ids of the two nodes adjacent to the roots on
/// the joining path (the paper's initial agent positions u and v).
struct TwoSided {
  Tree tree;
  NodeId left_root;
  NodeId right_root;
  NodeId u;  ///< path node adjacent to left_root
  NodeId v;  ///< path node adjacent to right_root
};
TwoSided two_sided_tree(const Tree& left, const Tree& right, int m);

/// Random re-assignment of every node's ports (uniform permutation at each
/// node). Topology unchanged.
Tree randomize_ports(const Tree& t, util::Rng& rng);

}  // namespace rvt::tree

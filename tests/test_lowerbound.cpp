#include <gtest/gtest.h>

#include "lowerbound/arbdelay_line.hpp"
#include "lowerbound/line_drift.hpp"
#include "lowerbound/sidetrees.hpp"
#include "lowerbound/simstart_line.hpp"
#include "lowerbound/transition_digraph.hpp"
#include "lowerbound/verify.hpp"
#include "sim/automaton.hpp"
#include "tree/builders.hpp"
#include "tree/canonical.hpp"
#include "util/rng.hpp"

namespace rvt::lowerbound {
namespace {

TEST(TransitionDigraph, PingPongWalkerHasSingleCircuit) {
  for (int p : {1, 2, 3, 5}) {
    const auto a = sim::ping_pong_walker(p);
    const auto d = analyze_pi_prime(a);
    ASSERT_EQ(d.circuits.size(), 1u) << p;
    EXPECT_EQ(d.circuits[0].size(), static_cast<std::size_t>(2 * p)) << p;
    EXPECT_EQ(d.gamma(1 << 20), static_cast<std::uint64_t>(2 * p));
  }
}

TEST(TransitionDigraph, EveryStateReachesItsCircuit) {
  util::Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const auto a = sim::random_line_automaton(1 + static_cast<int>(rng.index(20)), rng);
    const auto d = analyze_pi_prime(a);
    EXPECT_FALSE(d.circuits.empty());
    for (int s = 0; s < a.num_states(); ++s) {
      const int tl = d.tail_length(s);
      int cur = s;
      for (int k = 0; k < tl; ++k) cur = d.pi_prime[cur];
      EXPECT_GE(d.circuit_of[cur], 0);
    }
  }
}

TEST(LineDrift, WalkerIsUnbounded) {
  for (int p : {1, 2, 4}) {
    for (int phase : {0, 1}) {
      const auto d = analyze_drift(sim::ping_pong_walker(p), phase);
      EXPECT_TRUE(d.unbounded) << "p=" << p << " phase=" << phase;
      EXPECT_NE(d.drift_sign, 0);
    }
  }
}

TEST(LineDrift, SitterIsBounded) {
  sim::LineAutomaton a;
  a.delta.assign(1, {0, 0});
  a.lambda.assign(1, sim::kStay);
  const auto d = analyze_drift(a, 0);
  EXPECT_FALSE(d.unbounded);
  EXPECT_EQ(d.max_abs_pos, 0);
}

TEST(LineDrift, TwoCycleOscillatorIsBounded) {
  // Moves right then left forever (on the colored line: exits the color it
  // arrived by, bouncing on one edge).
  sim::LineAutomaton a;
  a.delta.assign(2, {1, 1});
  a.delta[1] = {0, 0};
  a.lambda = {0, 0};
  const auto d = analyze_drift(a, 0);
  EXPECT_FALSE(d.unbounded);
  EXPECT_LE(d.max_abs_pos, 2);
}

TEST(VerifyNeverMeet, CertifiesSittersApart) {
  const tree::Tree t = tree::line_edge_colored(6, 0);
  sim::LineAutomaton stay;
  stay.delta.assign(1, {0, 0});
  stay.lambda.assign(1, sim::kStay);
  sim::LineAutomatonAgent a(stay), b(stay);
  const auto r = verify_never_meet(t, a, b, {0, 3, 0, 0, 1000});
  EXPECT_FALSE(r.met);
  EXPECT_TRUE(r.certified_forever);
  EXPECT_EQ(r.cycle_length, 1u);
}

TEST(VerifyNeverMeet, DetectsMeetings) {
  const tree::Tree t = tree::line_edge_colored(8, 0);
  sim::LineAutomatonAgent a(sim::basic_walker_automaton());
  sim::LineAutomaton stay;
  stay.delta.assign(1, {0, 0});
  stay.lambda.assign(1, sim::kStay);
  sim::LineAutomatonAgent b(stay);
  const auto r = verify_never_meet(t, a, b, {3, 6, 0, 0, 1000});
  EXPECT_TRUE(r.met);
}

TEST(ArbDelay, DefeatsPingPongWalkers) {
  for (int p : {1, 2, 3}) {
    const auto inst =
        build_arbdelay_instance(sim::ping_pong_walker(p), 3000000);
    ASSERT_TRUE(inst.construction_ok) << "p=" << p;
    EXPECT_FALSE(inst.bounded_case) << "p=" << p;
    EXPECT_FALSE(inst.verdict.met);
    EXPECT_TRUE(inst.verdict.certified_forever);
    // The defeated line has O(K) nodes.
    EXPECT_GT(inst.line.node_count(), 8);
  }
}

TEST(RunSingle, MatchesZLineSimOnMatchingLine) {
  // The finite-line single-agent runner and the infinite-line simulator
  // agree while the agent stays away from the finite line's endpoints.
  util::Rng rng(22);
  for (int rep = 0; rep < 10; ++rep) {
    const auto a = sim::random_line_automaton(
        2 + static_cast<int>(rng.index(6)), rng);
    // Long enough finite line; start at its middle with phase-0 coloring.
    const tree::NodeId n = 401;
    const tree::NodeId start = 200;
    const int fc = start % 2 == 0 ? 0 : 1;  // color(start edge) == 0
    const tree::Tree line = tree::line_edge_colored(n, fc);
    sim::LineAutomatonAgent agent(a);
    const auto events = run_single(line, agent, start, 150);

    sim::ZLineSim zsim(a, 0);
    std::vector<std::pair<std::uint64_t, std::int64_t>> zevents;
    std::int64_t prev = 0;
    for (int r = 0; r < 150; ++r) {
      const auto s = zsim.tick();
      if (s.action != sim::kStay) zevents.emplace_back(s.round, prev);
      prev = s.pos;
    }
    ASSERT_EQ(events.size(), zevents.size());
    for (std::size_t k = 0; k < events.size(); ++k) {
      EXPECT_EQ(events[k].round, zevents[k].first);
      EXPECT_EQ(events[k].node - start, zevents[k].second);
    }
  }
}

TEST(ArbDelay, InstancesAreFeasibleButUnsolved) {
  // The whole point of the lower bound: the constructed positions are NOT
  // perfectly symmetrizable (rendezvous was required), yet the automaton
  // never meets.
  for (int p : {1, 2, 3}) {
    const auto inst =
        build_arbdelay_instance(sim::ping_pong_walker(p), 3000000);
    ASSERT_TRUE(inst.construction_ok) << p;
    EXPECT_FALSE(
        tree::perfectly_symmetrizable(inst.line, inst.u, inst.v))
        << p;
  }
}

TEST(SimStart, InstancesAreFeasibleButUnsolved) {
  for (int p : {1, 2, 3}) {
    const auto inst =
        build_simstart_instance(sim::ping_pong_walker(p), 1 << 20, 8000000);
    ASSERT_TRUE(inst.construction_ok) << p;
    EXPECT_FALSE(
        tree::perfectly_symmetrizable(inst.line, inst.u, inst.v))
        << p;
  }
}

TEST(ArbDelay, DefeatsRandomAutomata) {
  util::Rng rng(12345);
  int ok = 0, total = 0;
  for (int rep = 0; rep < 12; ++rep) {
    const auto a =
        sim::random_line_automaton(2 + static_cast<int>(rng.index(6)), rng);
    const auto inst = build_arbdelay_instance(a, 2000000);
    ++total;
    if (inst.construction_ok) ++ok;
    EXPECT_FALSE(inst.verdict.met) << "rep=" << rep;
  }
  // The construction should succeed on the vast majority of automata.
  EXPECT_GE(ok * 4, total * 3) << ok << "/" << total;
}

TEST(ArbDelay, BoundedAutomatonGetsDisjointRanges) {
  sim::LineAutomaton stay;
  stay.delta.assign(1, {0, 0});
  stay.lambda.assign(1, sim::kStay);
  const auto inst = build_arbdelay_instance(stay, 10000);
  ASSERT_TRUE(inst.construction_ok);
  EXPECT_TRUE(inst.bounded_case);
  EXPECT_TRUE(inst.verdict.certified_forever);
}

TEST(SimStart, DefeatsPingPongWalkers) {
  for (int p : {1, 2, 3}) {
    const auto inst = build_simstart_instance(sim::ping_pong_walker(p),
                                              1 << 20, 8000000);
    ASSERT_TRUE(inst.construction_ok) << "p=" << p;
    EXPECT_EQ(inst.gamma, static_cast<std::uint64_t>(2 * p));
    EXPECT_GT(inst.x_prime, inst.x);
    EXPECT_FALSE(inst.verdict.met);
    EXPECT_TRUE(inst.verdict.certified_forever);
  }
}

TEST(SimStart, DefeatsRandomAutomata) {
  util::Rng rng(777);
  int ok = 0, total = 0;
  for (int rep = 0; rep < 12; ++rep) {
    const auto a =
        sim::random_line_automaton(2 + static_cast<int>(rng.index(5)), rng);
    const auto inst = build_simstart_instance(a, 1 << 16, 4000000);
    if (inst.gamma_overflow) continue;
    ++total;
    if (inst.construction_ok) ++ok;
    EXPECT_FALSE(inst.verdict.met) << "rep=" << rep;
  }
  EXPECT_GE(ok * 4, total * 3) << ok << "/" << total;
}

TEST(SideTrees, BehaviorFunctionIsDeterministic) {
  util::Rng rng(3);
  const auto a = sim::random_tree_automaton(4, rng);
  const tree::Tree s = tree::side_tree(4, 0b010);
  const auto t1 = behavior_function(a, s);
  const auto t2 = behavior_function(a, s);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1.size(), 4u);
}

TEST(SideTrees, CollisionDefeatsSmallAutomata) {
  // A tiny automaton cannot distinguish 2^{i-1} side trees: collision and
  // never-meet instance guaranteed quickly.
  const auto walker = sim::lift_to_tree_automaton(sim::basic_walker_automaton());
  const auto inst = build_sidetree_instance(walker, 6, 2, 4000000);
  ASSERT_TRUE(inst.found);
  EXPECT_NE(inst.mask1, inst.mask2);
  EXPECT_TRUE(inst.symmetric_companion_is_symmetric);
  EXPECT_TRUE(inst.instance_not_symmetrizable);
  EXPECT_FALSE(inst.verdict.met);
  EXPECT_TRUE(inst.verdict.certified_forever);
  EXPECT_TRUE(inst.construction_ok);
}

TEST(SideTrees, RandomAutomataCollide) {
  util::Rng rng(99);
  int ok = 0, total = 0;
  for (int rep = 0; rep < 8; ++rep) {
    const auto a = sim::random_tree_automaton(
        2 + static_cast<int>(rng.index(3)), rng);
    const auto inst = build_sidetree_instance(a, 7, 2, 4000000);
    if (!inst.found) continue;
    ++total;
    if (inst.construction_ok) ++ok;
    EXPECT_FALSE(inst.verdict.met) << rep;
  }
  EXPECT_GE(total, 4);
  EXPECT_GE(ok * 4, total * 3) << ok << "/" << total;
}

TEST(SideTrees, InstanceHasMaxDegreeThreeAndRightLeafCount) {
  const auto walker = sim::lift_to_tree_automaton(sim::basic_walker_automaton());
  const auto inst = build_sidetree_instance(walker, 6, 4, 4000000);
  ASSERT_TRUE(inst.found);
  EXPECT_LE(inst.instance.max_degree(), 3);
  EXPECT_EQ(inst.instance.leaf_count(), 2 * 6);
}

}  // namespace
}  // namespace rvt::lowerbound

#include <gtest/gtest.h>

#include <functional>

#include "tree/builders.hpp"
#include "tree/canonical.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace rvt::tree {
namespace {

/// True iff automorphism f preserves the port labeling of t.
bool preserves_ports(const Tree& t, const std::vector<NodeId>& f) {
  for (NodeId v = 0; v < t.node_count(); ++v) {
    if (t.degree(f[v]) != t.degree(v)) return false;
    for (Port p = 0; p < t.degree(v); ++p) {
      if (t.neighbor(f[v], p) != f[t.neighbor(v, p)]) return false;
    }
  }
  return true;
}

bool is_identity(const std::vector<NodeId>& f) {
  for (NodeId v = 0; v < static_cast<NodeId>(f.size()); ++v) {
    if (f[v] != v) return false;
  }
  return true;
}

/// Enumerates every port labeling of t's topology (all per-node port
/// permutations) and applies `fn`; aborts early if fn returns false.
void for_all_labelings(const Tree& t, const std::function<bool(const Tree&)>& fn) {
  std::vector<std::vector<Port>> perm(t.node_count());
  for (NodeId v = 0; v < t.node_count(); ++v) {
    perm[v].resize(t.degree(v));
    for (Port p = 0; p < t.degree(v); ++p) perm[v][p] = p;
  }
  std::function<bool(NodeId)> rec = [&](NodeId v) -> bool {
    if (v == t.node_count()) return fn(t.with_ports_permuted(perm));
    std::sort(perm[v].begin(), perm[v].end());
    do {
      if (!rec(v + 1)) return false;
    } while (std::next_permutation(perm[v].begin(), perm[v].end()));
    return true;
  };
  rec(0);
}

/// Definition 1.2 by brute force: some labeling admits a port-preserving
/// automorphism carrying u to v.
bool brute_perfectly_symmetrizable(const Tree& t, NodeId u, NodeId v) {
  const auto autos = enumerate_automorphisms(t);
  bool found = false;
  for_all_labelings(t, [&](const Tree& labeled) {
    for (const auto& f : autos) {
      if (f[u] == v && preserves_ports(labeled, f)) {
        found = true;
        return false;  // stop
      }
    }
    return true;
  });
  return found;
}

TEST(Automorphisms, LineHasExactlyTwo) {
  for (NodeId n : {2, 3, 4, 5, 6}) {
    const auto autos = enumerate_automorphisms(line(n));
    EXPECT_EQ(autos.size(), 2u) << n;  // identity + mirror
  }
}

TEST(Automorphisms, StarHasFactorialMany) {
  EXPECT_EQ(enumerate_automorphisms(star(3)).size(), 6u);
  EXPECT_EQ(enumerate_automorphisms(star(4)).size(), 24u);
}

TEST(Canonizer, TopoIdInvariantUnderPortRelabeling) {
  util::Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = random_attachment(static_cast<NodeId>(3 + rng.index(8)),
                                     rng);
    const Tree u = randomize_ports(t, rng);
    Canonizer cz;
    EXPECT_EQ(cz.topo_id(t, 0, -1), cz.topo_id(u, 0, -1));
  }
}

TEST(Canonizer, TopoIdDistinguishesMarks) {
  const Tree t = line(5);
  Canonizer cz;
  // Marking different mirror-equivalent nodes gives equal ids; marking
  // non-equivalent ones differs.
  EXPECT_EQ(cz.topo_id(t, 2, -1, 0), cz.topo_id(t, 2, -1, 4));
  EXPECT_NE(cz.topo_id(t, 2, -1, 0), cz.topo_id(t, 2, -1, 1));
  EXPECT_NE(cz.topo_id(t, 2, -1, 0), cz.topo_id(t, 2, -1, -1));
}

TEST(Canonizer, PortIdSensitiveToPorts) {
  // Two stars with different port assignments at the center looked at from
  // a leaf: the port codes differ when the labeling differs structurally.
  const Tree s = star(3);
  util::Rng rng(5);
  Canonizer cz;
  const int base = cz.port_id(s, 0, -1);
  EXPECT_EQ(base, cz.port_id(s, 0, -1));  // deterministic
  // Every leaf subtree looks identical.
  EXPECT_EQ(cz.port_id(s, 1, s.port_towards(1, 0)),
            cz.port_id(s, 2, s.port_towards(2, 0)));
}

TEST(CentralSplit, LineHalves) {
  const auto cs = central_split(line(6));
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(cs->x, 2);
  EXPECT_EQ(cs->y, 3);
  for (NodeId v = 0; v <= 2; ++v) EXPECT_TRUE(cs->in_x_half[v]);
  for (NodeId v = 3; v <= 5; ++v) EXPECT_FALSE(cs->in_x_half[v]);
  EXPECT_FALSE(central_split(line(5)).has_value());
}

TEST(Symmetry, SymmetricColoredLineIsSymmetric) {
  // Odd edge count + mirror coloring => the mirror preserves ports.
  EXPECT_TRUE(tree_symmetric(line_symmetric_colored(5)));
  EXPECT_TRUE(tree_symmetric(line_symmetric_colored(9)));
  // The default line labeling is NOT mirror symmetric for n = 4 (ports at
  // the central edge differ: 0 at node 1, 1 at node 2).
  EXPECT_FALSE(tree_symmetric(line(4)));
  // Trees with a central node are never symmetric.
  EXPECT_FALSE(tree_symmetric(line(5)));
  EXPECT_FALSE(tree_symmetric(star(4)));
  EXPECT_FALSE(tree_symmetric(complete_binary(2)));
}

TEST(Symmetry, PortSymmetryMapMatchesBruteForce) {
  util::Rng rng(17);
  std::vector<Tree> cases;
  cases.push_back(line_symmetric_colored(5));
  cases.push_back(line(6));
  cases.push_back(line(7));
  cases.push_back(star(3));
  cases.push_back(complete_binary(2));
  {
    const Tree s1 = side_tree(3, 1);
    cases.push_back(two_sided_tree(s1, s1, 2).tree);
    const Tree s2 = side_tree(3, 2);
    cases.push_back(two_sided_tree(s1, s2, 2).tree);
  }
  for (const auto& t : cases) {
    if (t.node_count() > 10) continue;
    const auto f = port_symmetry_map(t);
    const auto autos = enumerate_automorphisms(t);
    bool brute = false;
    std::vector<NodeId> brute_map;
    for (const auto& g : autos) {
      if (!is_identity(g) && preserves_ports(t, g)) {
        brute = true;
        brute_map = g;
        break;
      }
    }
    EXPECT_EQ(f.has_value(), brute) << t.to_string();
    if (f && brute) {
      EXPECT_EQ(*f, brute_map);
    }
  }
}

TEST(Symmetry, SymmetricPositionsOnColoredLine) {
  const Tree t = line_symmetric_colored(5);  // nodes 0..5
  EXPECT_TRUE(symmetric_positions(t, 0, 5));
  EXPECT_TRUE(symmetric_positions(t, 1, 4));
  EXPECT_TRUE(symmetric_positions(t, 2, 3));
  EXPECT_FALSE(symmetric_positions(t, 0, 4));
  EXPECT_FALSE(symmetric_positions(t, 1, 3));
  EXPECT_TRUE(symmetric_positions(t, 2, 2));  // identity
}

TEST(Symmetrizable, MatchesBruteForceOnSmallTrees) {
  util::Rng rng(29);
  std::vector<Tree> cases;
  for (NodeId n = 2; n <= 7; ++n) cases.push_back(line(n));
  cases.push_back(star(3));
  cases.push_back(spider(3, 1));
  cases.push_back(complete_binary(2));
  for (int rep = 0; rep < 6; ++rep) {
    cases.push_back(random_attachment(static_cast<NodeId>(4 + rep), rng));
  }
  for (const auto& t : cases) {
    if (t.node_count() > 8) continue;
    for (NodeId u = 0; u < t.node_count(); ++u) {
      for (NodeId v = 0; v < t.node_count(); ++v) {
        if (u == v) continue;
        EXPECT_EQ(perfectly_symmetrizable(t, u, v),
                  brute_perfectly_symmetrizable(t, u, v))
            << t.to_string() << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Symmetrizable, KnownCases) {
  // Even line: exactly the mirrored pairs.
  const Tree l6 = line(6);
  EXPECT_TRUE(perfectly_symmetrizable(l6, 0, 5));
  EXPECT_TRUE(perfectly_symmetrizable(l6, 1, 4));
  EXPECT_TRUE(perfectly_symmetrizable(l6, 2, 3));
  EXPECT_FALSE(perfectly_symmetrizable(l6, 0, 4));
  EXPECT_FALSE(perfectly_symmetrizable(l6, 1, 3));

  // Odd line: central node => no symmetrizable pair (paper §1).
  const Tree l7 = line(7);
  for (NodeId u = 0; u < 7; ++u) {
    for (NodeId v = u + 1; v < 7; ++v) {
      EXPECT_FALSE(perfectly_symmetrizable(l7, u, v));
    }
  }

  // Complete binary tree: central node => none, even topologically
  // symmetric leaves (paper §1).
  const Tree cb = complete_binary(2);
  EXPECT_FALSE(perfectly_symmetrizable(cb, 3, 4));  // sibling leaves

  // Identity positions are rejected.
  EXPECT_THROW(perfectly_symmetrizable(l6, 2, 2), std::invalid_argument);
}

TEST(Symmetrizable, TwoSidedTrees) {
  const Tree s1 = side_tree(4, 0b011);
  const Tree s2 = side_tree(4, 0b110);
  const auto sym = two_sided_tree(s1, s1, 2);
  EXPECT_TRUE(perfectly_symmetrizable(sym.tree, sym.u, sym.v));
  // The built labeling is itself symmetric for the T1+T1 instance.
  EXPECT_TRUE(symmetric_positions(sym.tree, sym.u, sym.v));

  const auto asym = two_sided_tree(s1, s2, 2);
  EXPECT_FALSE(perfectly_symmetrizable(asym.tree, asym.u, asym.v));
  EXPECT_FALSE(symmetric_positions(asym.tree, asym.u, asym.v));
}

TEST(Symmetrizable, RequiresOppositeHalves) {
  const Tree l8 = line(8);
  // Nodes in the same half are never symmetrizable.
  EXPECT_FALSE(perfectly_symmetrizable(l8, 0, 3));
  EXPECT_FALSE(perfectly_symmetrizable(l8, 1, 2));
}

TEST(Automorphisms, GuardsLargeTrees) {
  EXPECT_THROW(enumerate_automorphisms(line(11)), std::invalid_argument);
}

}  // namespace
}  // namespace rvt::tree

#include <gtest/gtest.h>

#include "core/prime_protocol.hpp"
#include "sim/simulator.hpp"
#include "tree/builders.hpp"
#include "tree/canonical.hpp"
#include "util/math.hpp"

namespace rvt::core {
namespace {

using tree::NodeId;
using tree::Tree;

std::uint64_t horizon_for(NodeId m) {
  // Lemma 4.1: meeting at or before the prime p_j with prod p_i <= m^2;
  // generous envelope: sum of 2*2(m-1)*p over primes p <= 4 log^2 m, plus
  // the initial run.
  return 400000ull + 4000ull * static_cast<std::uint64_t>(m) *
                         util::bit_width_for(m) * util::bit_width_for(m);
}

/// Runs the prime protocol on an m-node path with the given labeling and
/// 1-indexed positions a < b. Returns the run result.
sim::RunResult run_prime(const Tree& line, NodeId a, NodeId b,
                         std::uint64_t delay_b = 0) {
  PrimeAgent agent_a, agent_b;
  return sim::run_rendezvous(
      line, agent_a, agent_b,
      {a, b, 0, delay_b, horizon_for(line.node_count())});
}

TEST(Prime, MeetsOnAllFeasiblePairsSmallOddLines) {
  for (NodeId m : {3, 5, 7, 9}) {
    const Tree t = tree::line(m);
    for (NodeId a = 0; a < m; ++a) {
      for (NodeId b = a + 1; b < m; ++b) {
        const auto r = run_prime(t, a, b);
        EXPECT_TRUE(r.met) << "m=" << m << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Prime, MeetsOnFeasiblePairsEvenLines) {
  // Even m: mirrored pairs are the potentially-infeasible ones; assert
  // meeting for all non-mirrored pairs (feasible regardless of labeling).
  for (NodeId m : {4, 6, 8, 10}) {
    const Tree t = tree::line(m);
    for (NodeId a = 0; a < m; ++a) {
      for (NodeId b = a + 1; b < m; ++b) {
        if (a + b == m - 1) continue;  // mirrored pair
        const auto r = run_prime(t, a, b);
        EXPECT_TRUE(r.met) << "m=" << m << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Prime, NeverMeetsOnSymmetricInstance) {
  // Mirror-symmetric coloring + mirrored positions: the two agents stay
  // mirror images forever, and the mirror fixes no node.
  const Tree t = tree::line_symmetric_colored(9);  // 10 nodes
  ASSERT_TRUE(tree::symmetric_positions(t, 2, 7));
  PrimeAgent a, b;
  const auto r = sim::run_rendezvous(t, a, b, {2, 7, 0, 0, 200000});
  EXPECT_FALSE(r.met);
}

TEST(Prime, MeetsOnMirroredPairsWithAsymmetricLabeling) {
  // The same mirrored positions become feasible when the labeling is not
  // symmetric — and our port-driven agents break the tie via port 0.
  const Tree t = tree::line(8);
  ASSERT_FALSE(tree::symmetric_positions(t, 2, 5));
  const auto r = run_prime(t, 2, 5);
  EXPECT_TRUE(r.met);
}

TEST(Prime, DelayedStartStillMeets) {
  // The prime protocol itself tolerates moderate delays when positions
  // stay asymmetric on the path (this is how Stage 2.2 uses it).
  const Tree t = tree::line(9);
  for (std::uint64_t delay : {1u, 3u, 10u, 37u}) {
    const auto r = run_prime(t, 1, 6, delay);
    EXPECT_TRUE(r.met) << "delay=" << delay;
  }
}

TEST(Prime, MemoryIsLogLogOfPathLength) {
  for (NodeId m : {16, 64, 256, 1024, 4096}) {
    const Tree t = tree::line(m);
    PrimeAgent a, b;
    const auto r = sim::run_rendezvous(t, a, b, {0, m / 2, 0, 0,
                                                 horizon_for(m)});
    ASSERT_TRUE(r.met) << m;
    const unsigned loglog = util::bit_width_for(util::bit_width_for(
        static_cast<std::uint64_t>(m)));
    EXPECT_LE(r.memory_bits_a, 6 * loglog + 10) << "m=" << m;
  }
}

TEST(Prime, CurrentPrimeGrowsSlowly) {
  const Tree t = tree::line(512);
  PrimeAgent a, b;
  const auto r = sim::run_rendezvous(t, a, b, {3, 400, 0, 0,
                                               horizon_for(512)});
  ASSERT_TRUE(r.met);
  // Lemma 4.1: p_j = O(log m); generous concrete envelope.
  EXPECT_LE(a.current_prime(), 64u);
  EXPECT_LE(b.current_prime(), 64u);
}

TEST(Prime, TwoNodePathIsInfeasible) {
  // The 2-node path with ports 0/0 is perfectly symmetric: identical
  // agents swap across the single edge forever (m even, a-1 == m-b).
  const Tree t = tree::line(2);
  ASSERT_TRUE(tree::symmetric_positions(t, 0, 1));
  PrimeAgent a, b;
  const auto r = sim::run_rendezvous(t, a, b, {0, 1, 0, 0, 100000});
  EXPECT_FALSE(r.met);
}

TEST(Prime, RejectsNonPathNodes) {
  const Tree t = tree::star(3);
  PrimeAgent a, b;
  EXPECT_THROW(sim::run_rendezvous(t, a, b, {0, 1, 0, 0, 100}),
               std::logic_error);
}

/// Parameterized sweep on larger random positions.
class PrimeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrimeSweep, RandomPositionsOnLargerLines) {
  const int seed = GetParam();
  const NodeId m = static_cast<NodeId>(50 + 37 * seed);
  const Tree t = tree::line(m);
  const NodeId a = static_cast<NodeId>((7 * seed) % (m / 3));
  const NodeId b = static_cast<NodeId>(m / 2 + (11 * seed) % (m / 3));
  if (a + b == m - 1) return;  // skip potentially-symmetric pair
  const auto r = run_prime(t, a, b);
  EXPECT_TRUE(r.met) << "m=" << m << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimeSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace rvt::core

#include <gtest/gtest.h>

#include <memory>

#include "core/rendezvous_agent.hpp"
#include "sim/automaton.hpp"
#include "sim/simulator.hpp"
#include "tree/builders.hpp"
#include "util/rng.hpp"

namespace rvt::core {
namespace {

using tree::NodeId;
using tree::Tree;

/// Builds k RendezvousAgents for the given starts.
std::vector<std::unique_ptr<RendezvousAgent>> make_agents(
    const Tree& t, const std::vector<NodeId>& starts) {
  std::vector<std::unique_ptr<RendezvousAgent>> agents;
  for (NodeId s : starts) {
    agents.push_back(std::make_unique<RendezvousAgent>(t, s));
  }
  return agents;
}

std::vector<sim::Agent*> raw(
    const std::vector<std::unique_ptr<RendezvousAgent>>& v) {
  std::vector<sim::Agent*> out;
  for (const auto& a : v) out.push_back(a.get());
  return out;
}

TEST(Gathering, CentralNodeInstancesGatherAnyCount) {
  // On a tree whose contraction has a central node, every agent parks
  // there — gathering for free, for any number of agents.
  const Tree t = tree::spider(5, 3);
  for (std::size_t k : {2u, 3u, 5u}) {
    std::vector<NodeId> starts;
    for (std::size_t i = 0; i < k; ++i) {
      starts.push_back(static_cast<NodeId>(1 + 3 * i));
    }
    auto agents = make_agents(t, starts);
    const auto r =
        sim::run_gathering(t, raw(agents), {starts, {}, 100000});
    EXPECT_TRUE(r.gathered) << "k=" << k;
    EXPECT_EQ(r.gather_node, 0);  // the spider's center
  }
}

TEST(Gathering, CentralNodeInstancesGatherUnderDelays) {
  const Tree t = tree::star(6);
  const std::vector<NodeId> starts{1, 3, 5};
  auto agents = make_agents(t, starts);
  const auto r = sim::run_gathering(
      t, raw(agents), {starts, {0, 40, 333}, 100000});
  EXPECT_TRUE(r.gathered);
  EXPECT_EQ(r.gather_node, 0);
}

TEST(Gathering, AsymmetricCentralEdgeGathers) {
  const Tree t = tree::double_broom(4, 2, 3);  // asymmetric halves
  const std::vector<NodeId> starts{0, 2, 7};
  auto agents = make_agents(t, starts);
  const auto r = sim::run_gathering(t, raw(agents), {starts, {}, 100000});
  EXPECT_TRUE(r.gathered);
}

TEST(Gathering, CoLocatedAgentsStayMerged) {
  // Identical deterministic agents starting together with equal delays
  // behave as one.
  const Tree t = tree::star(4);
  const std::vector<NodeId> starts{2, 2, 3};
  auto agents = make_agents(t, starts);
  const auto r = sim::run_gathering(t, raw(agents), {starts, {}, 10000});
  EXPECT_TRUE(r.gathered);
}

TEST(Gathering, TwoAgentsMatchesRendezvous) {
  // run_gathering with k = 2 agrees with run_rendezvous.
  const Tree t = tree::line(9);
  const std::vector<NodeId> starts{2, 6};
  auto agents = make_agents(t, starts);
  const auto g = sim::run_gathering(t, raw(agents), {starts, {}, 5000000});
  RendezvousAgent a(t, 2), b(t, 6);
  const auto r = sim::run_rendezvous(t, a, b, {2, 6, 0, 0, 5000000});
  ASSERT_TRUE(g.gathered);
  ASSERT_TRUE(r.met);
  EXPECT_EQ(g.gather_round, r.meeting_round);
  EXPECT_EQ(g.gather_node, r.meeting_node);
}

TEST(Gathering, StrictSubsetMeetingIsNotGathered) {
  // Regression: gathering requires ALL k agents on one node. A strict
  // subset co-located somewhere — here agents 0 and 1, merged at node 1
  // every single round — must never be reported as a gathering while
  // agent 2 sits elsewhere.
  const Tree t = tree::line(6);
  sim::LineAutomaton stay;
  stay.initial = 0;
  stay.delta.assign(1, {0, 0});
  stay.lambda.assign(1, sim::kStay);
  sim::LineAutomatonAgent a(stay), b(stay), c(stay);
  const std::vector<sim::Agent*> agents{&a, &b, &c};
  const auto r =
      sim::run_gathering(t, agents, {{1, 1, 4}, {}, 500});
  EXPECT_FALSE(r.gathered);
  EXPECT_EQ(r.rounds_executed, 500u);

  // The same subset meeting with the non-member in the LEADING slot of
  // the position array: a detection that anchored on any single agent's
  // node (instead of requiring all k to coincide) would get one of these
  // two orderings wrong.
  sim::LineAutomatonAgent a2(stay), b2(stay), c2(stay);
  const std::vector<sim::Agent*> reordered{&a2, &b2, &c2};
  const auto r2 =
      sim::run_gathering(t, reordered, {{4, 1, 1}, {}, 500});
  EXPECT_FALSE(r2.gathered);
  EXPECT_EQ(r2.rounds_executed, 500u);
}

TEST(Gathering, ValidatesConfig) {
  const Tree t = tree::line(4);
  RendezvousAgent a(t, 0), b(t, 1);
  std::vector<sim::Agent*> agents{&a, &b};
  EXPECT_THROW(sim::run_gathering(t, {&a}, {{0}, {}, 10}),
               std::invalid_argument);
  EXPECT_THROW(sim::run_gathering(t, agents, {{0}, {}, 10}),
               std::invalid_argument);
  EXPECT_THROW(sim::run_gathering(t, agents, {{0, 1}, {0}, 10}),
               std::invalid_argument);
  EXPECT_THROW(sim::run_gathering(t, agents, {{0, 1}, {}, 0}),
               std::invalid_argument);
  EXPECT_THROW(sim::run_gathering(t, agents, {{0, 9}, {}, 10}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rvt::core

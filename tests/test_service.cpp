// The shard-dispatch service tier, end to end over loopback TCP: a real
// coordinator, real worker daemons on threads, and manual protocol
// clients playing the adversarial parts (foreign versions, stale
// tokens, silent leaseholders).
//
// The ground truth everywhere is the same as dist/'s: the merged defeat
// count of a fleet run — however the leases bounced — must be
// bit-identical to a single-process sweep of the workload.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "dist/merge.hpp"
#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "dist/workload.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sim/automaton.hpp"
#include "sim/compiled.hpp"
#include "tree/builders.hpp"
#include "util/rng.hpp"
#include "svc/coordinator.hpp"
#include "svc/net_store.hpp"
#include "svc/protocol.hpp"
#include "svc/worker.hpp"
#include "util/failpoint.hpp"

namespace rvt {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "svc-test-" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()) +
           "-" + std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    util::FailPointRegistry::instance().reset();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& leaf) const { return dir_ + "/" + leaf; }
  std::string dir_;
};

/// Single-process ground truth for a workload (fresh context, no tier).
std::uint64_t single_process_total(const std::string& spec) {
  const auto w = dist::EnumWorkload::parse(spec);
  sim::EnumerationContext ctx(w->grids(), w->max_rounds(), nullptr);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < w->count(); ++i) {
    total += w->defeats(ctx, i);
  }
  return total;
}

/// A manual protocol client: hello as `role` and return the session.
std::unique_ptr<net::TcpStream> dial(const svc::Coordinator& coord,
                                     const std::string& role,
                                     const std::string& name) {
  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.role = role;
  hello.name = name;
  net::send_frame(*s, dist::WireKind::kHello, svc::encode(hello));
  net::Frame f;
  EXPECT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kHello);
  return s;
}

svc::LeaseGrant request_lease(net::TcpStream& s) {
  net::send_frame(s, dist::WireKind::kLeaseRequest,
                  svc::encode_lease_request());
  net::Frame f;
  EXPECT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kLeaseGrant);
  return svc::decode_lease_grant(f.payload);
}

// ---- the happy fleet ------------------------------------------------------

TEST_F(ServiceTest, LoopbackFleetMatchesSingleProcessBitForBit) {
  const std::string spec = "e10:6";
  const std::uint64_t expected = single_process_total(spec);
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 5);

  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.cache_dir = path("cache");
  svc::Coordinator coord(plan, cfg);

  // Two daemons, both publishing orbits through the coordinator's
  // remote store (no local cache dir) — the NetOrbitStore path.
  svc::WorkerReport r1, r2;
  std::thread t1([&] {
    svc::WorkerOptions o;
    o.name = "w1";
    r1 = svc::run_worker("127.0.0.1", coord.port(), o);
  });
  std::thread t2([&] {
    svc::WorkerOptions o;
    o.name = "w2";
    r2 = svc::run_worker("127.0.0.1", coord.port(), o);
  });
  t1.join();
  t2.join();
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));

  const svc::ServiceReport rep = coord.report();
  EXPECT_EQ(rep.shards_total, 5u);
  EXPECT_EQ(rep.shards_completed, 5u);
  EXPECT_EQ(rep.shards_quarantined, 0u);
  EXPECT_EQ(rep.runners_seen, 2u);
  EXPECT_GE(rep.leases_granted, 5u);
  // Incremental merge counters cover the whole index space once done.
  EXPECT_EQ(rep.committed_indices, plan.count);
  EXPECT_EQ(rep.committed_defeats, expected);
  EXPECT_GT(rep.journal_bytes_streamed, 0u);
  EXPECT_GE(rep.time_to_first_sealed_shard_seconds, 0.0);
  EXPECT_EQ(r1.sealed + r2.sealed, 5u);
  EXPECT_EQ(r1.revoked + r2.revoked, 0u);

  // The metrics endpoint serves the same numbers over plain HTTP.
  const std::string body = net::http_get("127.0.0.1", coord.metrics_port(), "/");
  EXPECT_NE(body.find("\"kind\": \"service_metrics\""), std::string::npos);
  EXPECT_NE(body.find("\"committed_defeats\": " + std::to_string(expected)),
            std::string::npos);
  EXPECT_NE(body.find("\"shards_completed\": 5"), std::string::npos);
  EXPECT_NE(body.find("\"workload\": \"" + spec + "\""), std::string::npos);

  // And the journals the coordinator wrote merge to the ground truth.
  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, expected);
  coord.stop();

  // A fresh coordinator over the same journal dir adopts every sealed
  // shard: complete with no worker ever connecting.
  svc::Coordinator again(plan, cfg);
  EXPECT_TRUE(again.wait_complete(std::chrono::milliseconds(1000)));
  const svc::ServiceReport rep2 = again.report();
  EXPECT_EQ(rep2.shards_completed, 5u);
  EXPECT_EQ(rep2.committed_defeats, expected);
  EXPECT_EQ(rep2.leases_granted, 0u);

  // Drained coordinator tells a late worker there is nothing to do.
  svc::WorkerOptions late;
  late.name = "late";
  late.remote_store = false;
  const svc::WorkerReport lr =
      svc::run_worker("127.0.0.1", again.port(), late);
  EXPECT_EQ(lr.leases, 0u);
  EXPECT_EQ(lr.indices, 0u);
}

// ---- failure recovery -----------------------------------------------------

TEST_F(ServiceTest, WorkerFaultRequeuesAndACleanWorkerFinishes) {
  const std::string spec = "e10:6";
  const std::uint64_t expected = single_process_total(spec);
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 3);

  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(plan, cfg);

  // First worker dies mid-lease with an injected error after 20 indices
  // — an unsealed disconnect; its committed chunks must survive.
  util::FailPointRegistry::instance().configure("worker.index=err@hit:20");
  svc::WorkerOptions faulty;
  faulty.name = "faulty";
  faulty.remote_store = false;
  faulty.chunk_records = 8;  // several committed chunks before the fault
  EXPECT_THROW(svc::run_worker("127.0.0.1", coord.port(), faulty),
               dist::SerializeError);
  util::FailPointRegistry::instance().reset();

  {
    const svc::ServiceReport mid = coord.report();
    EXPECT_GE(mid.shards_requeued, 1u);
    EXPECT_GT(mid.committed_indices, 0u);  // the prefix survived
    EXPECT_LT(mid.committed_indices, plan.count);
  }

  svc::WorkerOptions clean;
  clean.name = "clean";
  clean.remote_store = false;
  const svc::WorkerReport rep =
      svc::run_worker("127.0.0.1", coord.port(), clean);
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));
  EXPECT_EQ(rep.sealed, 3u);
  // The clean worker resumed past the faulty one's committed prefix.
  EXPECT_LT(rep.indices, plan.count);

  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, expected);
}

TEST_F(ServiceTest, ExpiredLeaseholderIsFencedAndTheShardRecovers) {
  const std::string spec = "e10:6";
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 1);

  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.lease_timeout = std::chrono::milliseconds(200);
  cfg.poll_interval = std::chrono::milliseconds(10);
  svc::Coordinator coord(plan, cfg);

  // A leaseholder that takes the shard and then commits NOTHING.
  // Heartbeats alone must not keep the lease alive — journal growth is
  // the only renewal.
  auto silent = dial(coord, "worker", "silent");
  const svc::LeaseGrant g = request_lease(*silent);
  ASSERT_EQ(g.status, svc::LeaseStatus::kGranted);
  ASSERT_NE(g.token, 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool expired = false;
  while (!expired && std::chrono::steady_clock::now() < deadline) {
    net::send_frame(*silent, dist::WireKind::kHeartbeat,
                    svc::encode(svc::Heartbeat{g.shard_index, g.token}));
    net::Frame f;
    ASSERT_EQ(net::recv_frame(*silent, f), net::RecvStatus::kFrame);
    expired = !svc::decode_heartbeat_reply(f.payload).lease_valid;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(expired) << "chatty but workless lease never expired";

  // The stale token is fenced on every mutation path.
  svc::JournalChunk chunk;
  chunk.shard_index = g.shard_index;
  chunk.token = g.token;
  chunk.records.push_back({g.begin, 0});
  net::send_frame(*silent, dist::WireKind::kJournalChunk,
                  svc::encode(chunk));
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*silent, f), net::RecvStatus::kFrame);
  EXPECT_FALSE(svc::decode_chunk_reply(f.payload).accepted);
  net::send_frame(*silent, dist::WireKind::kSeal,
                  svc::encode(svc::Seal{g.shard_index, g.token, 0}));
  ASSERT_EQ(net::recv_frame(*silent, f), net::RecvStatus::kFrame);
  EXPECT_FALSE(svc::decode_seal_reply(f.payload).accepted);
  silent.reset();

  const svc::ServiceReport rep = coord.report();
  EXPECT_GE(rep.lease_expiries, 1u);
  EXPECT_GE(rep.shards_requeued, 1u);

  // The shard is re-grantable and the run still completes exactly.
  svc::WorkerOptions clean;
  clean.name = "clean";
  clean.remote_store = false;
  svc::run_worker("127.0.0.1", coord.port(), clean);
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));
  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, single_process_total(spec));
}

// ---- handshake refusals ---------------------------------------------------

TEST_F(ServiceTest, ForeignServiceProtocolIsRefusedWithAVersionCode) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.protocol = svc::kServiceProtocolVersion + 7;
  hello.role = "worker";
  hello.name = "future";
  net::send_frame(*s, dist::WireKind::kHello, svc::encode(hello));
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  ASSERT_EQ(f.kind, dist::WireKind::kError);
  EXPECT_EQ(svc::decode_error_reply(f.payload).code,
            svc::ErrorCode::kVersion);
}

TEST_F(ServiceTest, ForeignWireVersionIsAnsweredAsAVersionErrorNotCorruption) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.role = "worker";
  auto framed = dist::frame_payload(dist::WireKind::kHello,
                                    svc::encode(hello));
  framed[4] ^= 0xff;  // the header's version field, bytes [4, 6)
  s->write_all(framed.data(), framed.size());
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  ASSERT_EQ(f.kind, dist::WireKind::kError);
  EXPECT_EQ(svc::decode_error_reply(f.payload).code,
            svc::ErrorCode::kVersion);
}

TEST_F(ServiceTest, UnknownRoleIsRefused) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.role = "gossip";
  net::send_frame(*s, dist::WireKind::kHello, svc::encode(hello));
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  ASSERT_EQ(f.kind, dist::WireKind::kError);
  EXPECT_EQ(svc::decode_error_reply(f.payload).code,
            svc::ErrorCode::kRefused);
}

// ---- the remote orbit store -----------------------------------------------

TEST_F(ServiceTest, NetOrbitStoreRoundTripsThroughTheCoordinator) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.cache_dir = path("cache");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  // A real published orbit set with its content key, same idiom as the
  // FsOrbitStore tests.
  const tree::Tree t = tree::line(6);
  util::Rng rng(0x5eedu);
  const sim::TabularAutomaton a =
      sim::random_line_automaton(3, rng).tabular();
  const sim::CompiledConfigEngine engine(t, a);
  std::vector<tree::NodeId> starts;
  for (tree::NodeId n = 0; n < t.node_count(); ++n) starts.push_back(n);
  engine.warm_orbits(starts);
  const auto set = engine.snapshot_orbits();
  const sim::OrbitKey key = sim::combine_orbit_keys(
      sim::tree_orbit_key(t), sim::canonical_automaton_key(a));

  svc::NetOrbitStore store("127.0.0.1", coord.port(), "t-store");
  // Absent key: a miss, and NEUTRAL for the degradation streak.
  for (std::uint64_t i = 0; i < svc::NetOrbitStore::kDegradeAfter + 2; ++i) {
    EXPECT_EQ(store.load(sim::OrbitKey{i + 100, i + 100}), nullptr);
  }
  EXPECT_FALSE(store.stats().degraded);

  store.store(key, set);
  const auto back = store.load(key);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(dist::serialize_orbit_set(*back), dist::serialize_orbit_set(*set));
  // The set really went through the coordinator's FsOrbitStore.
  const svc::ServiceReport rep = coord.report();
  EXPECT_GE(rep.tier_stores, 1u);
  EXPECT_GE(rep.tier_hits, 1u);

  const svc::NetOrbitStore::Stats st = store.stats();
  EXPECT_GE(st.hits, 1u);
  EXPECT_GE(st.stores, 1u);
  EXPECT_EQ(st.exhausted, 0u);
}

// ---- campaign durability --------------------------------------------------

svc::ChunkReply send_chunk(net::TcpStream& s, std::uint64_t shard,
                           std::uint64_t token,
                           std::vector<svc::JournalRecord> records) {
  svc::JournalChunk chunk;
  chunk.shard_index = shard;
  chunk.token = token;
  chunk.records = std::move(records);
  net::send_frame(s, dist::WireKind::kJournalChunk, svc::encode(chunk));
  net::Frame f;
  EXPECT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  return svc::decode_chunk_reply(f.payload);
}

svc::SealReply send_seal(net::TcpStream& s, std::uint64_t shard,
                         std::uint64_t token, std::uint64_t total) {
  net::send_frame(s, dist::WireKind::kSeal,
                  svc::encode(svc::Seal{shard, token, total}));
  net::Frame f;
  EXPECT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  return svc::decode_seal_reply(f.payload);
}

/// Requests leases until one is granted (or the queue drains), riding
/// out kWait while a disconnected holder's requeue lands.
svc::LeaseGrant lease_until_granted(net::TcpStream& s) {
  for (int i = 0; i < 500; ++i) {
    const svc::LeaseGrant g = request_lease(s);
    if (g.status != svc::LeaseStatus::kWait) return g;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "lease never granted";
  return {};
}

TEST_F(ServiceTest, ResumeReplaysExactStateFieldForField) {
  // Scripted grant / fail / re-grant / quarantine / seal / open-lease
  // sequence against coordinator #1, then `--resume` as coordinator #2:
  // every shard's control state must be reconstructed field-for-field,
  // with the one documented mapping — a pre-crash lease becomes
  // kPending, token 0, interrupted=true.
  const auto w = dist::EnumWorkload::parse("e10:6");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 3);
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.max_attempts = 2;
  std::vector<svc::Coordinator::ShardSnapshot> live;
  std::uint64_t committed_live = 0, defeats_live = 0;
  std::uint64_t open_token = 0;
  {
    svc::Coordinator coord(plan, cfg);

    // Shard 0: granted once, fully streamed (synthetic values — this is
    // a control-state test, not a merge test) and sealed.
    auto a = dial(coord, "worker", "a");
    const svc::LeaseGrant ga = request_lease(*a);
    ASSERT_EQ(ga.status, svc::LeaseStatus::kGranted);
    ASSERT_EQ(ga.shard_index, 0u);
    std::vector<svc::JournalRecord> recs;
    std::uint64_t sum0 = 0;
    for (std::uint64_t i = ga.begin; i < ga.end; ++i) {
      recs.push_back({i, i + 1});
      sum0 += i + 1;
    }
    EXPECT_TRUE(send_chunk(*a, 0, ga.token, recs).accepted);
    EXPECT_TRUE(send_seal(*a, 0, ga.token, sum0).accepted);

    // Shard 1: granted, two records streamed, then left OPEN — the
    // lease that is out when the crash hits.
    auto b = dial(coord, "worker", "b");
    const svc::LeaseGrant gb = request_lease(*b);
    ASSERT_EQ(gb.status, svc::LeaseStatus::kGranted);
    ASSERT_EQ(gb.shard_index, 1u);
    open_token = gb.token;
    EXPECT_TRUE(
        send_chunk(*b, 1, gb.token, {{gb.begin, 5}, {gb.begin + 1, 7}})
            .accepted);

    // Shard 2: granted and dropped unsealed, twice — the second failure
    // exhausts max_attempts and quarantines it.
    for (int attempt = 0; attempt < 2; ++attempt) {
      auto c = dial(coord, "worker", "c");
      const svc::LeaseGrant gc = lease_until_granted(*c);
      ASSERT_EQ(gc.status, svc::LeaseStatus::kGranted);
      ASSERT_EQ(gc.shard_index, 2u);
      c.reset();  // unsealed disconnect -> fail_attempt
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (std::chrono::steady_clock::now() < deadline) {
        const svc::ServiceReport r = coord.report();
        if (attempt == 0 ? r.shards_requeued >= 1 : r.shards_quarantined >= 1)
          break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    const svc::ServiceReport r1 = coord.report();
    ASSERT_EQ(r1.shards_quarantined, 1u);
    live = coord.shard_snapshots();
    committed_live = r1.committed_indices;
    defeats_live = r1.committed_defeats;
    coord.stop();
  }  // coordinator #1 gone; ledger + journals are what a SIGKILL leaves

  svc::CoordinatorConfig rcfg = cfg;
  rcfg.resume = true;
  svc::Coordinator resumed(plan, rcfg);
  const auto snaps = resumed.shard_snapshots();
  ASSERT_EQ(snaps.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto& l = live[i];
    const auto& r = snaps[i];
    const bool was_leased = l.phase == svc::Coordinator::ShardPhase::kLeased;
    EXPECT_EQ(r.phase, was_leased ? svc::Coordinator::ShardPhase::kPending
                                  : l.phase)
        << i;
    EXPECT_EQ(r.attempts, l.attempts) << i;
    EXPECT_EQ(r.token, was_leased ? 0u : l.token) << i;
    EXPECT_EQ(r.next_index, l.next_index) << i;
    EXPECT_EQ(r.sum, l.sum) << i;
    EXPECT_EQ(r.interrupted, was_leased) << i;
  }
  const svc::ServiceReport r2 = resumed.report();
  EXPECT_EQ(r2.resumed, 1u);
  EXPECT_EQ(r2.ledger_epoch, 2u);
  EXPECT_GE(r2.ledger_records_replayed, 7u);  // epoch + 4 grants + fail + ...
  EXPECT_EQ(r2.committed_indices, committed_live);
  EXPECT_EQ(r2.committed_defeats, defeats_live);

  // The pre-crash leaseholder's token is fenced by the new epoch.
  auto stale = dial(resumed, "worker", "b");
  EXPECT_FALSE(
      send_chunk(*stale, 1, open_token, {{live[1].next_index, 1}}).accepted);
  EXPECT_GE(resumed.report().stale_tokens_fenced, 1u);

  // The interrupted shard re-grants from the durable committed prefix.
  const svc::LeaseGrant again = lease_until_granted(*stale);
  ASSERT_EQ(again.status, svc::LeaseStatus::kGranted);
  EXPECT_EQ(again.shard_index, 1u);
  EXPECT_EQ(again.next_index, live[1].next_index);
  EXPECT_EQ(again.resume_sum, live[1].sum);
  EXPECT_NE(again.token, open_token);
  EXPECT_GE(resumed.report().leases_regranted, 1u);
}

TEST_F(ServiceTest, ResumeWithoutALedgerIsRefused) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.resume = true;
  EXPECT_THROW(svc::Coordinator coord(plan, cfg), dist::SerializeError);
}

TEST_F(ServiceTest, LedgerJournalDisagreementIsARefusalNotAGuess) {
  // A campaign completes; then the sealed journal loses its seal record
  // (fsynced ledger history the fflushed journal half lost — a host
  // reboot can do this). --resume must refuse, not recompute under a lie.
  const auto w = dist::EnumWorkload::parse("e10:6");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  {
    svc::Coordinator coord(plan, cfg);
    svc::WorkerOptions o;
    o.name = "w";
    o.remote_store = false;
    svc::run_worker("127.0.0.1", coord.port(), o);
    ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));
  }
  const std::string j0 =
      dist::journal_path(cfg.journal_dir, plan.shards[0]);
  const std::uint64_t sealed_size = std::filesystem::file_size(j0);
  std::filesystem::resize_file(j0, sealed_size - 32);  // drop the seal
  svc::CoordinatorConfig rcfg = cfg;
  rcfg.resume = true;
  EXPECT_THROW(svc::Coordinator coord(plan, rcfg), dist::SerializeError);
}

TEST_F(ServiceTest, WorkerStartedBeforeItsCoordinatorConnectsViaBackoff) {
  // The initial connect rides the same backoff loop as a mid-run
  // reconnect: a worker launched first simply waits for the coordinator.
  const std::string spec = "e10:6";
  std::uint16_t port = 0;
  {
    net::TcpListener l(0);
    port = l.port();
    l.close();
  }
  svc::WorkerReport rep;
  std::thread t([&] {
    svc::WorkerOptions o;
    o.name = "early";
    o.remote_store = false;
    o.reconnect.max_attempts = 100;
    o.reconnect.base_delay = std::chrono::milliseconds(10);
    o.reconnect.max_delay = std::chrono::milliseconds(100);
    rep = svc::run_worker("127.0.0.1", port, o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.port = port;
  svc::Coordinator coord(plan, cfg);
  t.join();
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));
  EXPECT_GE(rep.connect_retries, 1u);
  EXPECT_EQ(rep.sealed, 2u);
  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, single_process_total(spec));
}

TEST_F(ServiceTest, WorkerRidesOutACoordinatorRestartAndTheRunCompletes) {
  // Coordinator #1 dies mid-campaign; #2 resumes on the same port from
  // the ledger. The worker reconnects through its backoff loop, its
  // pre-crash lease token fences, and the merged total is still exact.
  const std::string spec = "e10:4";
  const std::uint64_t expected = single_process_total(spec);
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  std::uint16_t port = 0;
  {
    net::TcpListener l(0);
    port = l.port();
    l.close();
  }
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.port = port;

  auto coord = std::make_unique<svc::Coordinator>(plan, cfg);
  svc::WorkerReport rep;
  std::thread t([&] {
    svc::WorkerOptions o;
    o.name = "steady";
    o.remote_store = false;
    o.throttle_ms = 1;  // widen the mid-lease window the restart hits
    o.chunk_records = 16;
    o.reconnect.max_attempts = 200;
    o.reconnect.base_delay = std::chrono::milliseconds(10);
    o.reconnect.max_delay = std::chrono::milliseconds(100);
    rep = svc::run_worker("127.0.0.1", port, o);
  });

  // Wait for durably committed progress, then "crash" #1 (its ledger
  // and journals on disk are exactly a SIGKILL's).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (coord->report().committed_indices == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(coord->report().committed_indices, 0u);
  coord.reset();

  svc::CoordinatorConfig rcfg = cfg;
  rcfg.resume = true;
  svc::Coordinator second(plan, rcfg);
  t.join();
  ASSERT_TRUE(second.wait_complete(std::chrono::milliseconds(10000)));

  EXPECT_GE(rep.reconnects, 1u);
  EXPECT_GE(rep.fenced, 1u);
  const svc::ServiceReport r = second.report();
  EXPECT_EQ(r.resumed, 1u);
  EXPECT_GE(r.stale_tokens_fenced, 1u);
  EXPECT_GE(r.leases_regranted, 1u);
  EXPECT_GE(r.worker_reconnects, 1u);

  // The metrics endpoint carries the recovery counters.
  const std::string body =
      net::http_get("127.0.0.1", second.metrics_port(), "/");
  EXPECT_NE(body.find("\"recovery_resumed\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"recovery_ledger_epoch\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"recovery_worker_reconnects\""), std::string::npos);

  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, expected);
}

TEST_F(ServiceTest, NetOrbitStoreDegradesToComputeThroughWhenUnreachable) {
  // Bind-then-close: the port exists but refuses — every op fails fast.
  std::uint16_t dead_port = 0;
  {
    net::TcpListener l(0);
    dead_port = l.port();
    l.close();
  }
  svc::NetOrbitStore store("127.0.0.1", dead_port, "t-store");
  for (std::uint64_t i = 0; i < svc::NetOrbitStore::kDegradeAfter; ++i) {
    EXPECT_EQ(store.load(sim::OrbitKey{i, i}), nullptr);
  }
  const svc::NetOrbitStore::Stats st = store.stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_EQ(st.exhausted, svc::NetOrbitStore::kDegradeAfter);
  // Degradation is sticky compute-through: loads answer instantly.
  EXPECT_EQ(store.load(sim::OrbitKey{1, 2}), nullptr);
  const sim::OrbitTierFaultStats fs = store.fault_stats();
  EXPECT_TRUE(fs.degraded);
}

}  // namespace
}  // namespace rvt

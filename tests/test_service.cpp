// The shard-dispatch service tier, end to end over loopback TCP: a real
// coordinator, real worker daemons on threads, and manual protocol
// clients playing the adversarial parts (foreign versions, stale
// tokens, silent leaseholders).
//
// The ground truth everywhere is the same as dist/'s: the merged defeat
// count of a fleet run — however the leases bounced — must be
// bit-identical to a single-process sweep of the workload.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "dist/merge.hpp"
#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "dist/workload.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sim/automaton.hpp"
#include "sim/compiled.hpp"
#include "tree/builders.hpp"
#include "util/rng.hpp"
#include "svc/coordinator.hpp"
#include "svc/net_store.hpp"
#include "svc/protocol.hpp"
#include "svc/worker.hpp"
#include "util/failpoint.hpp"

namespace rvt {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "svc-test-" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()) +
           "-" + std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    util::FailPointRegistry::instance().reset();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& leaf) const { return dir_ + "/" + leaf; }
  std::string dir_;
};

/// Single-process ground truth for a workload (fresh context, no tier).
std::uint64_t single_process_total(const std::string& spec) {
  const auto w = dist::EnumWorkload::parse(spec);
  sim::EnumerationContext ctx(w->grids(), w->max_rounds(), nullptr);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < w->count(); ++i) {
    total += w->defeats(ctx, i);
  }
  return total;
}

/// A manual protocol client: hello as `role` and return the session.
std::unique_ptr<net::TcpStream> dial(const svc::Coordinator& coord,
                                     const std::string& role,
                                     const std::string& name) {
  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.role = role;
  hello.name = name;
  net::send_frame(*s, dist::WireKind::kHello, svc::encode(hello));
  net::Frame f;
  EXPECT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kHello);
  return s;
}

svc::LeaseGrant request_lease(net::TcpStream& s) {
  net::send_frame(s, dist::WireKind::kLeaseRequest,
                  svc::encode_lease_request());
  net::Frame f;
  EXPECT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kLeaseGrant);
  return svc::decode_lease_grant(f.payload);
}

// ---- the happy fleet ------------------------------------------------------

TEST_F(ServiceTest, LoopbackFleetMatchesSingleProcessBitForBit) {
  const std::string spec = "e10:6";
  const std::uint64_t expected = single_process_total(spec);
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 5);

  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.cache_dir = path("cache");
  svc::Coordinator coord(plan, cfg);

  // Two daemons, both publishing orbits through the coordinator's
  // remote store (no local cache dir) — the NetOrbitStore path.
  svc::WorkerReport r1, r2;
  std::thread t1([&] {
    svc::WorkerOptions o;
    o.name = "w1";
    r1 = svc::run_worker("127.0.0.1", coord.port(), o);
  });
  std::thread t2([&] {
    svc::WorkerOptions o;
    o.name = "w2";
    r2 = svc::run_worker("127.0.0.1", coord.port(), o);
  });
  t1.join();
  t2.join();
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));

  const svc::ServiceReport rep = coord.report();
  EXPECT_EQ(rep.shards_total, 5u);
  EXPECT_EQ(rep.shards_completed, 5u);
  EXPECT_EQ(rep.shards_quarantined, 0u);
  EXPECT_EQ(rep.runners_seen, 2u);
  EXPECT_GE(rep.leases_granted, 5u);
  // Incremental merge counters cover the whole index space once done.
  EXPECT_EQ(rep.committed_indices, plan.count);
  EXPECT_EQ(rep.committed_defeats, expected);
  EXPECT_GT(rep.journal_bytes_streamed, 0u);
  EXPECT_GE(rep.time_to_first_sealed_shard_seconds, 0.0);
  EXPECT_EQ(r1.sealed + r2.sealed, 5u);
  EXPECT_EQ(r1.revoked + r2.revoked, 0u);

  // The metrics endpoint serves the same numbers over plain HTTP.
  const std::string body = net::http_get("127.0.0.1", coord.metrics_port(), "/");
  EXPECT_NE(body.find("\"kind\": \"service_metrics\""), std::string::npos);
  EXPECT_NE(body.find("\"committed_defeats\": " + std::to_string(expected)),
            std::string::npos);
  EXPECT_NE(body.find("\"shards_completed\": 5"), std::string::npos);
  EXPECT_NE(body.find("\"workload\": \"" + spec + "\""), std::string::npos);

  // And the journals the coordinator wrote merge to the ground truth.
  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, expected);
  coord.stop();

  // A fresh coordinator over the same journal dir adopts every sealed
  // shard: complete with no worker ever connecting.
  svc::Coordinator again(plan, cfg);
  EXPECT_TRUE(again.wait_complete(std::chrono::milliseconds(1000)));
  const svc::ServiceReport rep2 = again.report();
  EXPECT_EQ(rep2.shards_completed, 5u);
  EXPECT_EQ(rep2.committed_defeats, expected);
  EXPECT_EQ(rep2.leases_granted, 0u);

  // Drained coordinator tells a late worker there is nothing to do.
  svc::WorkerOptions late;
  late.name = "late";
  late.remote_store = false;
  const svc::WorkerReport lr =
      svc::run_worker("127.0.0.1", again.port(), late);
  EXPECT_EQ(lr.leases, 0u);
  EXPECT_EQ(lr.indices, 0u);
}

// ---- failure recovery -----------------------------------------------------

TEST_F(ServiceTest, WorkerFaultRequeuesAndACleanWorkerFinishes) {
  const std::string spec = "e10:6";
  const std::uint64_t expected = single_process_total(spec);
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 3);

  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(plan, cfg);

  // First worker dies mid-lease with an injected error after 20 indices
  // — an unsealed disconnect; its committed chunks must survive.
  util::FailPointRegistry::instance().configure("worker.index=err@hit:20");
  svc::WorkerOptions faulty;
  faulty.name = "faulty";
  faulty.remote_store = false;
  faulty.chunk_records = 8;  // several committed chunks before the fault
  EXPECT_THROW(svc::run_worker("127.0.0.1", coord.port(), faulty),
               dist::SerializeError);
  util::FailPointRegistry::instance().reset();

  {
    const svc::ServiceReport mid = coord.report();
    EXPECT_GE(mid.shards_requeued, 1u);
    EXPECT_GT(mid.committed_indices, 0u);  // the prefix survived
    EXPECT_LT(mid.committed_indices, plan.count);
  }

  svc::WorkerOptions clean;
  clean.name = "clean";
  clean.remote_store = false;
  const svc::WorkerReport rep =
      svc::run_worker("127.0.0.1", coord.port(), clean);
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));
  EXPECT_EQ(rep.sealed, 3u);
  // The clean worker resumed past the faulty one's committed prefix.
  EXPECT_LT(rep.indices, plan.count);

  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, expected);
}

TEST_F(ServiceTest, ExpiredLeaseholderIsFencedAndTheShardRecovers) {
  const std::string spec = "e10:6";
  const auto w = dist::EnumWorkload::parse(spec);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 1);

  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.lease_timeout = std::chrono::milliseconds(200);
  cfg.poll_interval = std::chrono::milliseconds(10);
  svc::Coordinator coord(plan, cfg);

  // A leaseholder that takes the shard and then commits NOTHING.
  // Heartbeats alone must not keep the lease alive — journal growth is
  // the only renewal.
  auto silent = dial(coord, "worker", "silent");
  const svc::LeaseGrant g = request_lease(*silent);
  ASSERT_EQ(g.status, svc::LeaseStatus::kGranted);
  ASSERT_NE(g.token, 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool expired = false;
  while (!expired && std::chrono::steady_clock::now() < deadline) {
    net::send_frame(*silent, dist::WireKind::kHeartbeat,
                    svc::encode(svc::Heartbeat{g.shard_index, g.token}));
    net::Frame f;
    ASSERT_EQ(net::recv_frame(*silent, f), net::RecvStatus::kFrame);
    expired = !svc::decode_heartbeat_reply(f.payload).lease_valid;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(expired) << "chatty but workless lease never expired";

  // The stale token is fenced on every mutation path.
  svc::JournalChunk chunk;
  chunk.shard_index = g.shard_index;
  chunk.token = g.token;
  chunk.records.push_back({g.begin, 0});
  net::send_frame(*silent, dist::WireKind::kJournalChunk,
                  svc::encode(chunk));
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*silent, f), net::RecvStatus::kFrame);
  EXPECT_FALSE(svc::decode_chunk_reply(f.payload).accepted);
  net::send_frame(*silent, dist::WireKind::kSeal,
                  svc::encode(svc::Seal{g.shard_index, g.token, 0}));
  ASSERT_EQ(net::recv_frame(*silent, f), net::RecvStatus::kFrame);
  EXPECT_FALSE(svc::decode_seal_reply(f.payload).accepted);
  silent.reset();

  const svc::ServiceReport rep = coord.report();
  EXPECT_GE(rep.lease_expiries, 1u);
  EXPECT_GE(rep.shards_requeued, 1u);

  // The shard is re-grantable and the run still completes exactly.
  svc::WorkerOptions clean;
  clean.name = "clean";
  clean.remote_store = false;
  svc::run_worker("127.0.0.1", coord.port(), clean);
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));
  const dist::MergeResult merged =
      dist::merge_journals(plan, cfg.journal_dir);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.total, single_process_total(spec));
}

// ---- handshake refusals ---------------------------------------------------

TEST_F(ServiceTest, ForeignServiceProtocolIsRefusedWithAVersionCode) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.protocol = svc::kServiceProtocolVersion + 7;
  hello.role = "worker";
  hello.name = "future";
  net::send_frame(*s, dist::WireKind::kHello, svc::encode(hello));
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  ASSERT_EQ(f.kind, dist::WireKind::kError);
  EXPECT_EQ(svc::decode_error_reply(f.payload).code,
            svc::ErrorCode::kVersion);
}

TEST_F(ServiceTest, ForeignWireVersionIsAnsweredAsAVersionErrorNotCorruption) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.role = "worker";
  auto framed = dist::frame_payload(dist::WireKind::kHello,
                                    svc::encode(hello));
  framed[4] ^= 0xff;  // the header's version field, bytes [4, 6)
  s->write_all(framed.data(), framed.size());
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  ASSERT_EQ(f.kind, dist::WireKind::kError);
  EXPECT_EQ(svc::decode_error_reply(f.payload).code,
            svc::ErrorCode::kVersion);
}

TEST_F(ServiceTest, UnknownRoleIsRefused) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  auto s = net::tcp_connect("127.0.0.1", coord.port());
  s->set_read_timeout_ms(2000);
  svc::HelloRequest hello;
  hello.role = "gossip";
  net::send_frame(*s, dist::WireKind::kHello, svc::encode(hello));
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*s, f), net::RecvStatus::kFrame);
  ASSERT_EQ(f.kind, dist::WireKind::kError);
  EXPECT_EQ(svc::decode_error_reply(f.payload).code,
            svc::ErrorCode::kRefused);
}

// ---- the remote orbit store -----------------------------------------------

TEST_F(ServiceTest, NetOrbitStoreRoundTripsThroughTheCoordinator) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = path("journals");
  cfg.cache_dir = path("cache");
  svc::Coordinator coord(dist::make_shard_plan(*w, 2), cfg);

  // A real published orbit set with its content key, same idiom as the
  // FsOrbitStore tests.
  const tree::Tree t = tree::line(6);
  util::Rng rng(0x5eedu);
  const sim::TabularAutomaton a =
      sim::random_line_automaton(3, rng).tabular();
  const sim::CompiledConfigEngine engine(t, a);
  std::vector<tree::NodeId> starts;
  for (tree::NodeId n = 0; n < t.node_count(); ++n) starts.push_back(n);
  engine.warm_orbits(starts);
  const auto set = engine.snapshot_orbits();
  const sim::OrbitKey key = sim::combine_orbit_keys(
      sim::tree_orbit_key(t), sim::canonical_automaton_key(a));

  svc::NetOrbitStore store("127.0.0.1", coord.port(), "t-store");
  // Absent key: a miss, and NEUTRAL for the degradation streak.
  for (std::uint64_t i = 0; i < svc::NetOrbitStore::kDegradeAfter + 2; ++i) {
    EXPECT_EQ(store.load(sim::OrbitKey{i + 100, i + 100}), nullptr);
  }
  EXPECT_FALSE(store.stats().degraded);

  store.store(key, set);
  const auto back = store.load(key);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(dist::serialize_orbit_set(*back), dist::serialize_orbit_set(*set));
  // The set really went through the coordinator's FsOrbitStore.
  const svc::ServiceReport rep = coord.report();
  EXPECT_GE(rep.tier_stores, 1u);
  EXPECT_GE(rep.tier_hits, 1u);

  const svc::NetOrbitStore::Stats st = store.stats();
  EXPECT_GE(st.hits, 1u);
  EXPECT_GE(st.stores, 1u);
  EXPECT_EQ(st.exhausted, 0u);
}

TEST_F(ServiceTest, NetOrbitStoreDegradesToComputeThroughWhenUnreachable) {
  // Bind-then-close: the port exists but refuses — every op fails fast.
  std::uint16_t dead_port = 0;
  {
    net::TcpListener l(0);
    dead_port = l.port();
    l.close();
  }
  svc::NetOrbitStore store("127.0.0.1", dead_port, "t-store");
  for (std::uint64_t i = 0; i < svc::NetOrbitStore::kDegradeAfter; ++i) {
    EXPECT_EQ(store.load(sim::OrbitKey{i, i}), nullptr);
  }
  const svc::NetOrbitStore::Stats st = store.stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_EQ(st.exhausted, svc::NetOrbitStore::kDegradeAfter);
  // Degradation is sticky compute-through: loads answer instantly.
  EXPECT_EQ(store.load(sim::OrbitKey{1, 2}), nullptr);
  const sim::OrbitTierFaultStats fs = store.fault_stats();
  EXPECT_TRUE(fs.degraded);
}

}  // namespace
}  // namespace rvt

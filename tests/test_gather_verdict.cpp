// The k-tuple gathering verdict core (sim/verify_core.hpp +
// sim::verify_never_gather_compiled + the enumeration gathering API):
//
//  * differential against the interpreting sim::run_gathering reference,
//    field for field, across random automata, substrates, arities and
//    delay schedules (equal starts included);
//  * the k = 2 instantiation against the pair verdict core — gathering
//    two agents IS rendezvous, so the generalized core must agree
//    verdict-for-verdict with the pre-existing pair tables;
//  * a property test of the k-fold composed collision predicate against
//    brute-force stepping over the full lcm window, with both coprime and
//    shared-gcd cycle-length tuples exercised;
//  * the fused enumeration entries (verify_gather / count_ungathered /
//    first_ungathered) against the one-off call, plus cache_hit telemetry
//    through the cross-worker orbit cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/compiled.hpp"
#include "sim/enumeration.hpp"
#include "sim/orbit_cache.hpp"
#include "sim/simulator.hpp"
#include "sim/verify_core.hpp"
#include "tree/builders.hpp"
#include "util/rng.hpp"

namespace rvt::sim {
namespace {

tree::Tree random_line(int n, util::Rng& rng) {
  switch (rng.index(n % 2 == 0 ? 4 : 3)) {
    case 0:
      return tree::line(n);
    case 1:
      return tree::line_edge_colored(n, 0);
    case 2:
      return tree::line_edge_colored(n, 1);
    default:
      return tree::line_symmetric_colored(n - 1);  // odd edge count
  }
}

/// Random start tuple: mostly distinct draws, with a deliberate chance of
/// duplicated starts (the gathering model allows co-located agents).
std::vector<tree::NodeId> random_starts(const tree::Tree& t, std::size_t k,
                                        util::Rng& rng) {
  std::vector<tree::NodeId> starts;
  for (std::size_t i = 0; i < k; ++i) {
    if (i > 0 && rng.index(6) == 0) {
      starts.push_back(starts[rng.index(i)]);  // duplicate an earlier one
    } else {
      starts.push_back(
          static_cast<tree::NodeId>(rng.index(t.node_count())));
    }
  }
  return starts;
}

std::vector<std::uint64_t> random_delays(std::size_t k, util::Rng& rng) {
  std::vector<std::uint64_t> delays;
  if (rng.index(4) == 0) return delays;  // empty = all zero
  for (std::size_t i = 0; i < k; ++i) {
    delays.push_back(rng.index(2) ? rng.index(5) : rng.index(40));
  }
  return delays;
}

/// Reference run: k fresh interpreting agents through run_gathering.
GatherResult reference_gather(const tree::Tree& t, const TabularAutomaton& a,
                              const std::vector<tree::NodeId>& starts,
                              const std::vector<std::uint64_t>& delays,
                              std::uint64_t max_rounds) {
  std::vector<std::unique_ptr<TabularAutomatonAgent>> agents;
  std::vector<Agent*> raw;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    agents.push_back(std::make_unique<TabularAutomatonAgent>(a));
    raw.push_back(agents.back().get());
  }
  return run_gathering(t, raw, {starts, delays, max_rounds});
}

void expect_matches_reference(const GatherVerdict& c, const GatherResult& r,
                              const std::string& what) {
  ASSERT_EQ(c.gathered, r.gathered) << what;
  if (r.gathered) {
    ASSERT_EQ(c.gather_round, r.gather_round) << what;
    ASSERT_EQ(c.gather_node, r.gather_node) << what;
  }
  ASSERT_EQ(c.rounds_checked, r.rounds_executed) << what;
  ASSERT_EQ(c.engine, VerifyEngine::kCompiled) << what;
}

TEST(GatherCompiled, MatchesRunGatheringFieldForFieldOnLines) {
  util::Rng rng(0x6a7e1ull);
  for (int rep = 0; rep < 120; ++rep) {
    const int n = 4 + static_cast<int>(rng.index(7));
    const tree::Tree t = random_line(n, rng);
    const TabularAutomaton a =
        random_line_automaton(1 + static_cast<int>(rng.index(4)), rng)
            .tabular();
    const CompiledConfigEngine engine(t, a);
    const std::size_t k = 2 + rng.index(3);
    const auto starts = random_starts(t, k, rng);
    const auto delays = random_delays(k, rng);
    const std::uint64_t horizon = 1 + rng.index(3000);
    const auto compiled =
        verify_never_gather_compiled(engine, starts, delays, horizon);
    const auto reference = reference_gather(t, a, starts, delays, horizon);
    expect_matches_reference(
        compiled, reference,
        "rep " + std::to_string(rep) + " k " + std::to_string(k) +
            " horizon " + std::to_string(horizon));
    // The compiled-only certificate must never contradict the reference:
    // certified_forever implies the horizon found nothing.
    if (compiled.certified_forever) {
      ASSERT_FALSE(reference.gathered) << rep;
    }
  }
}

TEST(GatherCompiled, MatchesRunGatheringOnDegree3Trees) {
  util::Rng rng(0x6a7e2ull);
  for (int rep = 0; rep < 40; ++rep) {
    const int i = 3 + static_cast<int>(rng.index(3));
    const std::uint64_t mask = rng.uniform(0, (1ull << (i - 1)) - 1);
    tree::Tree t = tree::side_tree(i, mask);
    if (rng.coin()) t = tree::randomize_ports(t, rng);
    const TabularAutomaton a =
        rng.coin()
            ? random_tree_automaton(2 + static_cast<int>(rng.index(3)), rng)
                  .tabular()
            : lift_to_tree_automaton(
                  random_line_automaton(
                      1 + static_cast<int>(rng.index(3)), rng))
                  .tabular();
    const CompiledConfigEngine engine(t, a);
    const std::size_t k = 3 + rng.index(2);
    const auto starts = random_starts(t, k, rng);
    const auto delays = random_delays(k, rng);
    const std::uint64_t horizon = 1 + rng.index(4000);
    const auto compiled =
        verify_never_gather_compiled(engine, starts, delays, horizon);
    const auto reference = reference_gather(t, a, starts, delays, horizon);
    expect_matches_reference(compiled, reference,
                             "rep " + std::to_string(rep));
  }
}

TEST(GatherCompiled, PairCaseAgreesWithTheMeetVerdictCore) {
  // Gathering k = 2 agents IS rendezvous: the generalized k-tuple core
  // must agree with the pair tables on every met/unmet classification and
  // on the meeting round — the "k = 2 instantiation kept bit-identical"
  // contract of the refactor.
  util::Rng rng(0x2a6e7ull);
  std::uint64_t met_seen = 0, certified_seen = 0;
  for (int rep = 0; rep < 150; ++rep) {
    const int n = 4 + static_cast<int>(rng.index(8));
    const tree::Tree t = random_line(n, rng);
    const TabularAutomaton a =
        random_line_automaton(1 + static_cast<int>(rng.index(5)), rng)
            .tabular();
    const CompiledConfigEngine engine(t, a);
    const tree::NodeId u = static_cast<tree::NodeId>(rng.index(n));
    tree::NodeId v = static_cast<tree::NodeId>(rng.index(n));
    if (u == v) v = (v + 1) % n;  // the meet API needs distinct starts
    const std::uint64_t da = rng.index(30), db = rng.index(30);
    const std::uint64_t horizon = 1 + rng.index(200000);
    const Verdict meet = verify_never_meet_compiled(
        engine, engine, {u, v, da, db, horizon});
    const tree::NodeId starts[2] = {u, v};
    const std::uint64_t delays[2] = {da, db};
    const GatherVerdict gather =
        verify_never_gather_compiled(engine, starts, delays, horizon);
    ASSERT_EQ(gather.gathered, meet.met) << rep;
    if (meet.met) {
      ASSERT_EQ(gather.gather_round, meet.meeting_round) << rep;
      ++met_seen;
    }
    // The pair core certifies at Brent's detection round, which is always
    // PAST one full joint period from Tc — so whenever the meet side
    // certifies, the gathering side must too, with the same joint period.
    if (meet.certified_forever) {
      ASSERT_TRUE(gather.certified_forever) << rep;
      ASSERT_EQ(gather.cycle_length, meet.cycle_length) << rep;
      ++certified_seen;
    }
  }
  // The draw must actually exercise both outcomes.
  EXPECT_GT(met_seen, 10u);
  EXPECT_GT(certified_seen, 10u);
}

TEST(GatherCore, KFoldCompositionMatchesBruteForceOverTheLcmWindow) {
  // Property test of the composed collision predicate: for random small
  // cycle-length tuples, the verdict (existence, first round, node) must
  // equal brute-force stepping of the k positions over the FULL joint
  // window [1, Tc + lcm - 1] — with the horizon chosen past the window,
  // so certification is also decidable and must be exact.
  util::Rng rng(0x9c0febull);
  std::uint64_t coprime_pairs = 0, shared_gcd_pairs = 0, certified = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 4 + static_cast<int>(rng.index(8));
    const tree::Tree t = random_line(n, rng);
    const TabularAutomaton a =
        random_line_automaton(1 + static_cast<int>(rng.index(5)), rng)
            .tabular();
    const CompiledConfigEngine engine(t, a);
    const std::size_t k = 2 + rng.index(3);
    const auto starts = random_starts(t, k, rng);
    const auto delays = random_delays(k, rng);

    // Orbit headers for the window arithmetic (and the gcd census).
    std::uint64_t Tc = 0, L = 1;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& o = engine.orbit(starts[i]);
      const std::uint64_t d = delays.empty() ? 0 : delays[i];
      Tc = std::max(Tc, d + o.mu);
      L = std::lcm(L, o.lambda);
    }
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        const std::uint64_t g = std::gcd(engine.orbit(starts[i]).lambda,
                                         engine.orbit(starts[j]).lambda);
        if (g == 1) {
          ++coprime_pairs;
        } else {
          ++shared_gcd_pairs;
        }
      }
    }
    if (L > 200000) continue;  // keep the brute-force window affordable
    const std::uint64_t horizon = Tc + L + 16;

    // Brute force: position of agent i after t ticks is node_at(t - d_i)
    // once it started, its start before.
    bool bf_gathered = false;
    std::uint64_t bf_t = 0;
    tree::NodeId bf_node = -1;
    for (std::uint64_t t = 1; t <= horizon && !bf_gathered; ++t) {
      bool all = true;
      tree::NodeId at = -1;
      for (std::size_t i = 0; i < k && all; ++i) {
        const std::uint64_t d = delays.empty() ? 0 : delays[i];
        const tree::NodeId w =
            engine.orbit(starts[i]).node_at(t > d ? t - d : 0);
        if (i == 0) {
          at = w;
        } else {
          all = w == at;
        }
      }
      if (all) {
        bf_gathered = true;
        bf_t = t;
        bf_node = at;
      }
    }

    const auto compiled =
        verify_never_gather_compiled(engine, starts, delays, horizon);
    ASSERT_EQ(compiled.gathered, bf_gathered) << rep;
    if (bf_gathered) {
      ASSERT_EQ(compiled.gather_round, bf_t - 1) << rep;
      ASSERT_EQ(compiled.gather_node, bf_node) << rep;
    } else {
      // The horizon covers the transient plus one full joint period: no
      // gathering in it means no gathering ever, and the core must know.
      ASSERT_TRUE(compiled.certified_forever) << rep;
      ASSERT_EQ(compiled.cycle_length, L) << rep;
      ++certified;
    }
  }
  // The tuple draw must cover both cycle relationships the composition
  // cares about, and actually certify a healthy share.
  EXPECT_GT(coprime_pairs, 20u);
  EXPECT_GT(shared_gcd_pairs, 20u);
  EXPECT_GT(certified, 20u);
}

TEST(GatherCompiled, ValidatesConfig) {
  util::Rng rng(7);
  const tree::Tree t = tree::line(6);
  const CompiledLineEngine engine(t, random_line_automaton(3, rng));
  const std::vector<std::uint64_t> none;
  {
    const std::vector<tree::NodeId> one{0};
    EXPECT_THROW(verify_never_gather_compiled(engine, one, none, 10),
                 std::invalid_argument);
  }
  {
    std::vector<tree::NodeId> many(kMaxGatherAgents + 1, 0);
    EXPECT_THROW(verify_never_gather_compiled(engine, many, none, 10),
                 std::invalid_argument);
  }
  {
    const std::vector<tree::NodeId> starts{0, 2, 4};
    const std::vector<std::uint64_t> short_delays{1, 2};
    EXPECT_THROW(
        verify_never_gather_compiled(engine, starts, short_delays, 10),
        std::invalid_argument);
    EXPECT_THROW(verify_never_gather_compiled(engine, starts, none, 0),
                 std::invalid_argument);
  }
  {
    const std::vector<tree::NodeId> oor{0, 9};
    EXPECT_THROW(verify_never_gather_compiled(engine, oor, none, 10),
                 std::invalid_argument);
  }
  {
    // Equal starts are LEGAL for gathering: co-located identical agents
    // with equal delays gather before anyone can diverge.
    const std::vector<tree::NodeId> same{3, 3, 3};
    const auto v = verify_never_gather_compiled(engine, same, none, 10);
    EXPECT_TRUE(v.gathered);
    EXPECT_EQ(v.gather_round, 0u);
    EXPECT_EQ(v.gather_node, 3);
  }
}

TEST(GatherEnum, ContextMatchesOneOffCallsAndCounts) {
  util::Rng rng(0xe9a1ull);
  std::vector<tree::Tree> trees;
  trees.push_back(tree::line_edge_colored(7, 0));
  trees.push_back(tree::line(6));
  constexpr std::size_t kAgents = 3;
  std::vector<EnumGrid> grids;
  for (const auto& t : trees) {
    EnumGrid grid(&t, kAgents);
    for (int q = 0; q < 40; ++q) {
      const auto starts = random_starts(t, kAgents, rng);
      std::vector<std::uint64_t> delays = random_delays(kAgents, rng);
      grid.push(starts, delays);
    }
    grids.push_back(std::move(grid));
  }
  constexpr std::uint64_t kHorizon = 100000;
  EnumerationContext ctx(grids, kHorizon);
  for (int rep = 0; rep < 8; ++rep) {
    const TabularAutomaton a =
        random_line_automaton(1 + static_cast<int>(rng.index(4)), rng)
            .tabular();
    ctx.bind(a);
    for (std::size_t g = 0; g < grids.size(); ++g) {
      const auto fused = ctx.verify_gather(g);
      ASSERT_EQ(fused.size(), grids[g].query_count());
      const CompiledConfigEngine engine(*grids[g].tree, a);
      std::uint64_t ungathered = 0;
      std::ptrdiff_t first = -1;
      for (std::size_t q = 0; q < fused.size(); ++q) {
        const auto gq = grids[g].query(q);
        const auto one = verify_never_gather_compiled(
            engine, gq.starts, gq.delays, kHorizon);
        ASSERT_EQ(fused[q].gathered, one.gathered) << rep << " " << q;
        ASSERT_EQ(fused[q].gather_round, one.gather_round) << rep << " " << q;
        ASSERT_EQ(fused[q].gather_node, one.gather_node) << rep << " " << q;
        ASSERT_EQ(fused[q].certified_forever, one.certified_forever)
            << rep << " " << q;
        ASSERT_EQ(fused[q].cycle_length, one.cycle_length) << rep << " " << q;
        ASSERT_EQ(fused[q].rounds_checked, one.rounds_checked)
            << rep << " " << q;
        EXPECT_FALSE(fused[q].cache_hit);  // no cache attached
        if (!fused[q].gathered) {
          ++ungathered;
          if (first < 0) first = static_cast<std::ptrdiff_t>(q);
        }
      }
      ASSERT_EQ(ctx.count_ungathered(g), ungathered) << rep << " " << g;
      ASSERT_EQ(ctx.first_ungathered(g), first) << rep << " " << g;
      // A k != 2 grid must be refused by the meet API.
      EXPECT_THROW(ctx.verify(g), std::invalid_argument);
    }
  }
  EXPECT_GT(ctx.telemetry().queries, 0u);
}

TEST(GatherEnum, CacheHitTelemetryStillFires) {
  // Orbits are per-agent, so the gathering pipeline shares the orbit
  // cache unchanged: a second context over the same binding must serve
  // every query from the published set and flag it on the verdicts.
  util::Rng rng(0xcac4eull);
  std::vector<tree::Tree> trees;
  trees.push_back(tree::line_edge_colored(8, 1));
  std::vector<EnumGrid> grids;
  EnumGrid grid(&trees[0], std::size_t{3});
  for (int q = 0; q < 25; ++q) {
    grid.push(random_starts(trees[0], 3, rng), random_delays(3, rng));
  }
  grids.push_back(std::move(grid));
  const TabularAutomaton a = random_line_automaton(3, rng).tabular();

  OrbitCache cache;
  EnumerationContext publisher(grids, 50000, &cache);
  publisher.bind(a);
  for (const auto& v : publisher.verify_gather(0)) {
    EXPECT_FALSE(v.cache_hit);  // first visit extracts and publishes
  }
  EnumerationContext consumer(grids, 50000, &cache);
  consumer.bind(a);
  std::vector<GatherVerdict> served;
  for (const auto& v : consumer.verify_gather(0)) {
    EXPECT_TRUE(v.cache_hit);  // served from the published set
    served.push_back(v);
  }
  EXPECT_EQ(consumer.telemetry().orbits_extracted, 0u);
  EXPECT_EQ(cache.stats().publishes, 1u);
  EXPECT_GT(consumer.telemetry().hit_rate(), 0.5);

  // Verdicts agree regardless of who served them.
  publisher.bind(a);
  const auto again = publisher.verify_gather(0);
  for (std::size_t i = 0; i < served.size(); ++i) {
    ASSERT_EQ(served[i].gathered, again[i].gathered) << i;
    ASSERT_EQ(served[i].gather_round, again[i].gather_round) << i;
    ASSERT_EQ(served[i].rounds_checked, again[i].rounds_checked) << i;
  }
}

TEST(GatherEnum, SweepIsDeterministicAcrossThreadCounts) {
  std::vector<tree::Tree> trees;
  trees.push_back(tree::line_edge_colored(7, 0));
  std::vector<EnumGrid> grids;
  {
    util::Rng rng(0x5eedull);
    EnumGrid grid(&trees[0], std::size_t{4});
    for (int q = 0; q < 30; ++q) {
      grid.push(random_starts(trees[0], 4, rng), random_delays(4, rng));
    }
    grids.push_back(std::move(grid));
  }
  const auto fn = [](EnumerationContext& ctx, std::uint64_t i) {
    util::Rng rng(2000 + i);  // per-index randomness: index-derivable
    const TabularAutomaton a =
        random_line_automaton(1 + static_cast<int>(rng.index(4)), rng)
            .tabular();
    ctx.bind(a);
    std::uint64_t ungathered = 0;
    for (std::size_t g = 0; g < ctx.grid_count(); ++g) {
      ungathered += ctx.count_ungathered(g);
    }
    return ungathered;
  };
  const auto serial = sweep_enumeration(grids, 30, 60000, fn, 1);
  for (const unsigned threads : {2u, 5u}) {
    OrbitCache cache;
    const auto parallel =
        sweep_enumeration(grids, 30, 60000, fn, threads, &cache);
    ASSERT_EQ(parallel, serial) << threads << " threads";
  }
}

}  // namespace
}  // namespace rvt::sim

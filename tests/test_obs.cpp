// The observability layer: histogram bucket math and deterministic
// merging, the metrics registry and its Prometheus rendering, the
// trace recorder's binary round-trip (torn tail included), the Chrome
// exporter, the enumeration-delay tracker, and the protocol-v3
// campaign-id tail — ending with a loopback fleet whose worker spans
// must stitch to the coordinator's campaign id.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "dist/workload.hpp"
#include "net/socket.hpp"
#include "obs/enum_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "svc/coordinator.hpp"
#include "svc/protocol.hpp"
#include "svc/worker.hpp"
#include "util/rng.hpp"

namespace rvt {
namespace {

// ---- histogram bucket layout ----------------------------------------------

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo) {
  using obs::histogram_bucket;
  using obs::histogram_bucket_upper_bound;
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  // Bucket i covers [2^(i-1), 2^i - 1]: both edges land in the same
  // bucket for every i.
  for (std::size_t i = 1; i < 63; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    const std::uint64_t hi = (std::uint64_t{1} << i) - 1;
    EXPECT_EQ(histogram_bucket(lo), i) << "low edge of bucket " << i;
    EXPECT_EQ(histogram_bucket(hi), i) << "high edge of bucket " << i;
    EXPECT_EQ(histogram_bucket_upper_bound(i), hi);
  }
  // The last bucket absorbs everything above 2^62 - 1.
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(histogram_bucket(UINT64_MAX), 63u);
  EXPECT_EQ(histogram_bucket_upper_bound(0), 0u);
  EXPECT_EQ(histogram_bucket_upper_bound(63), UINT64_MAX);
}

TEST(ObsHistogram, QuantilesAreBucketUpperBounds) {
  obs::HistogramSnapshot s;
  EXPECT_EQ(s.quantile(0.5), 0u);  // empty histogram
  s.record(5);                     // bucket 3, upper bound 7
  EXPECT_EQ(s.quantile(0.0), 7u);
  EXPECT_EQ(s.quantile(1.0), 7u);
  // 90 small values and 10 large ones: p50 lands in the small band,
  // p99 in the large one.
  obs::HistogramSnapshot t;
  for (int i = 0; i < 90; ++i) t.record(3);     // bucket 2, ub 3
  for (int i = 0; i < 10; ++i) t.record(1000);  // bucket 10, ub 1023
  EXPECT_EQ(t.quantile(0.50), 3u);
  EXPECT_EQ(t.quantile(0.99), 1023u);
  EXPECT_EQ(t.count, 100u);
  EXPECT_EQ(t.sum, 90u * 3 + 10u * 1000);
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  util::Rng rng(0x5eed2010ull);
  obs::HistogramSnapshot parts[3];
  for (auto& p : parts) {
    for (int i = 0; i < 200; ++i) {
      p.record(rng.uniform(0, UINT64_MAX) >> rng.uniform(0, 63));
    }
  }
  const auto merged = [](const obs::HistogramSnapshot& x,
                         const obs::HistogramSnapshot& y) {
    obs::HistogramSnapshot m = x;
    m.merge(y);
    return m;
  };
  const obs::HistogramSnapshot left =
      merged(merged(parts[0], parts[1]), parts[2]);
  const obs::HistogramSnapshot right =
      merged(parts[0], merged(parts[1], parts[2]));
  const obs::HistogramSnapshot shuffled =
      merged(merged(parts[2], parts[0]), parts[1]);
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    EXPECT_EQ(left.buckets[i], right.buckets[i]);
    EXPECT_EQ(left.buckets[i], shuffled.buckets[i]);
  }
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum, shuffled.sum);
  EXPECT_EQ(left.count, 600u);
}

TEST(ObsHistogram, SumSaturatesInsteadOfWrapping) {
  obs::HistogramSnapshot s;
  s.record(UINT64_MAX);
  s.record(UINT64_MAX);
  EXPECT_EQ(s.sum, UINT64_MAX);
  obs::HistogramSnapshot t;
  t.record(1);
  t.merge(s);
  EXPECT_EQ(t.sum, UINT64_MAX);
}

// ---- registry + Prometheus ------------------------------------------------

TEST(ObsRegistry, MetricsRenderToValidPrometheus) {
  auto& reg = obs::Registry::instance();
  reg.reset_for_test();
  reg.counter("rvt_test_events_total").add(3);
  reg.gauge("rvt_test_depth").set(-7);
  auto& h = reg.histogram("rvt_test_latency_ns");
  h.record(0);
  h.record(100);
  h.record(5000);
  const std::string text = reg.prometheus();
  std::string err;
  EXPECT_TRUE(obs::validate_prometheus(text, &err)) << err;
  EXPECT_NE(text.find("rvt_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("rvt_test_depth -7"), std::string::npos);
  EXPECT_NE(text.find("rvt_test_latency_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("rvt_test_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  // Same name, same metric: the second lookup returns the first object.
  reg.counter("rvt_test_events_total").add(1);
  EXPECT_EQ(reg.counter("rvt_test_events_total").value(), 4u);
  reg.reset_for_test();
}

TEST(ObsRegistry, RejectsInvalidMetricNames) {
  auto& reg = obs::Registry::instance();
  EXPECT_THROW(reg.counter("1leading_digit"), std::runtime_error);
  EXPECT_THROW(reg.gauge("has space"), std::runtime_error);
  EXPECT_THROW(reg.histogram(""), std::runtime_error);
  EXPECT_THROW(reg.counter("dash-ed"), std::runtime_error);
}

TEST(ObsPrometheus, ValidatorAcceptsExpositionAndRejectsJunk) {
  std::string err;
  EXPECT_TRUE(obs::validate_prometheus(
      "# HELP x helps\n# TYPE x counter\nx 1\ny{le=\"+Inf\"} 2.5\nz +Inf\n",
      &err))
      << err;
  EXPECT_FALSE(obs::validate_prometheus("", &err));  // nothing measured
  EXPECT_FALSE(obs::validate_prometheus("# a stray comment\nx 1\n", &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
  EXPECT_FALSE(obs::validate_prometheus("x\n", &err));  // no value
  EXPECT_FALSE(obs::validate_prometheus("x one\n", &err));
  EXPECT_FALSE(obs::validate_prometheus("9bad 1\n", &err));
  EXPECT_FALSE(obs::validate_prometheus("x{le=\"1\" 2\n", &err));
}

TEST(ObsPrometheus, HistogramRenderingIsCumulative) {
  obs::HistogramSnapshot s;
  s.record(1);  // bucket 1
  s.record(3);  // bucket 2
  s.record(3);
  const std::string text = obs::prometheus_histogram("rvt_h", s);
  std::string err;
  EXPECT_TRUE(obs::validate_prometheus(text, &err)) << err;
  EXPECT_NE(text.find("rvt_h_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("rvt_h_bucket{le=\"3\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rvt_h_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rvt_h_sum 7"), std::string::npos);
  EXPECT_NE(text.find("rvt_h_count 3"), std::string::npos);
}

// ---- trace recorder -------------------------------------------------------

/// Restores the recorder's global state (path, gate, campaign) so tests
/// never leak tracing into each other.
struct TraceGuard {
  ~TraceGuard() {
    obs::set_enabled(false);
    obs::set_trace_path("");
    obs::set_campaign_id(0);
  }
};

std::string tmp_trace(const char* leaf) {
  return "obs-test-" + std::to_string(static_cast<unsigned>(::getpid())) +
         "-" + leaf;
}

TEST(ObsTrace, RoundTripsThroughTheBinaryFile) {
  TraceGuard guard;
#if !RVT_OBS_ENABLED
  GTEST_SKIP() << "RVT_OBS=OFF: span recording is compiled out";
#endif
  const std::string path = tmp_trace("roundtrip.bin");
  std::filesystem::remove(path);
  obs::set_trace_path(path);
  obs::set_campaign_id(42);
  obs::set_enabled(true);
  {
    RVT_OBS_SPAN("test.span", 7, 9);
  }
  obs::record_instant(obs::intern("test.instant"), 1, 2);
  obs::set_enabled(false);
  EXPECT_GT(obs::flush(), 0u);

  const obs::TraceFile trace = obs::read_trace_file(path);
  EXPECT_EQ(trace.truncated_bytes, 0u);
  ASSERT_FALSE(trace.chunks.empty());
  bool saw_span = false, saw_instant = false;
  for (const auto& c : trace.chunks) {
    EXPECT_EQ(c.campaign_id, 42u);
    for (const auto& e : c.events) {
      ASSERT_LT(e.name_id, c.names.size());
      if (c.names[e.name_id] == "test.span") {
        saw_span = true;
        EXPECT_EQ(e.kind, obs::EventKind::kSpan);
        EXPECT_EQ(e.a, 7u);
        EXPECT_EQ(e.b, 9u);
        EXPECT_GT(e.ts_ns, 0u);
      }
      if (c.names[e.name_id] == "test.instant") {
        saw_instant = true;
        EXPECT_EQ(e.kind, obs::EventKind::kInstant);
        EXPECT_EQ(e.dur_ns, 0u);
      }
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  std::filesystem::remove(path);
}

TEST(ObsTrace, TornTailTruncatesToLastWholeChunk) {
  TraceGuard guard;
#if !RVT_OBS_ENABLED
  GTEST_SKIP() << "RVT_OBS=OFF: span recording is compiled out";
#endif
  const std::string path = tmp_trace("torn.bin");
  std::filesystem::remove(path);
  obs::set_trace_path(path);
  obs::set_campaign_id(7);
  obs::set_enabled(true);
  { RVT_OBS_SPAN("torn.site"); }
  obs::set_enabled(false);
  ASSERT_GT(obs::flush(), 0u);
  const auto whole = obs::read_trace_file(path);
  ASSERT_FALSE(whole.chunks.empty());

  // Garbage appended after the last whole frame: every chunk survives,
  // the garbage is counted as truncated.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("torntorn", 8);
  }
  const auto appended = obs::read_trace_file(path);
  EXPECT_EQ(appended.chunks.size(), whole.chunks.size());
  EXPECT_EQ(appended.truncated_bytes, 8u);

  // A frame cut mid-payload (crash mid-append): reads as a torn tail,
  // never as corruption.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 13);
  const auto torn = obs::read_trace_file(path);
  EXPECT_GT(torn.truncated_bytes, 0u);
  for (const auto& c : torn.chunks) EXPECT_EQ(c.campaign_id, 7u);
  std::filesystem::remove(path);
}

TEST(ObsTrace, MissingFileReadsAsEmptyTrace) {
  const obs::TraceFile trace = obs::read_trace_file("no-such-trace.bin");
  EXPECT_TRUE(trace.chunks.empty());
  EXPECT_EQ(trace.truncated_bytes, 0u);
}

TEST(ObsTrace, ChromeExportValidatesAndCarriesCampaignPid) {
  TraceGuard guard;
#if !RVT_OBS_ENABLED
  GTEST_SKIP() << "RVT_OBS=OFF: span recording is compiled out";
#endif
  const std::string path = tmp_trace("chrome.bin");
  std::filesystem::remove(path);
  obs::set_trace_path(path);
  obs::set_campaign_id(99);
  obs::set_enabled(true);
  { RVT_OBS_SPAN("chrome.work", 5); }
  obs::set_enabled(false);
  ASSERT_GT(obs::flush(), 0u);

  const std::string json =
      obs::export_chrome_trace(obs::read_trace_file(path));
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
  EXPECT_NE(json.find("\"chrome.work\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsTrace, ChromeValidatorRejectsStructuralJunk) {
  std::string err;
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &err));
  EXPECT_FALSE(obs::validate_chrome_trace("{\"traceEvents\": []}", &err));
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\": [{\"name\": \"x\", \"ts\": 1, \"pid\": 1}]}",
      &err));  // no ph
}

/// CI hook: when RVT_CHROME_TRACE_JSON names an artifact exported from
/// a live run (`rvt_cli trace export --chrome`), it must validate.
TEST(ObsTrace, ExportedArtifactValidates) {
  const char* artifact = std::getenv("RVT_CHROME_TRACE_JSON");
  if (artifact == nullptr) {
    GTEST_SKIP() << "RVT_CHROME_TRACE_JSON not set";
  }
  std::ifstream in(artifact, std::ios::binary);
  ASSERT_TRUE(in.good()) << "cannot open " << artifact;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(ss.str(), &err))
      << artifact << ": " << err;
}

// ---- enumeration-delay stats ----------------------------------------------

TEST(ObsEnumDelay, TracksFirstsResultsAndSurvivors) {
  obs::EnumDelayTracker tracker;
  tracker.note_result(3);
  tracker.note_result(0);  // the survivor
  tracker.note_result(1);
  const obs::EnumDelayStats s = tracker.finish();
  EXPECT_EQ(s.results, 3u);
  EXPECT_EQ(s.survivors, 1u);
  EXPECT_GE(s.time_to_first_result_ns, 0);
  EXPECT_GE(s.time_to_first_survivor_ns, s.time_to_first_result_ns);
  EXPECT_GE(s.elapsed_ns, static_cast<std::uint64_t>(s.time_to_first_result_ns));
  EXPECT_EQ(s.inter_result_delay_ns.count, 3u);
  EXPECT_GE(s.delay_quantile_ms(0.99), s.delay_quantile_ms(0.50));
}

TEST(ObsEnumDelay, MergeTakesMinOverObservedFirsts) {
  obs::EnumDelayStats a, b;
  a.results = 10;
  a.survivors = 0;
  a.time_to_first_result_ns = 3;
  a.time_to_first_survivor_ns = -1;  // never saw one
  a.elapsed_ns = 100;
  b.results = 5;
  b.survivors = 2;
  b.time_to_first_result_ns = 5;
  b.time_to_first_survivor_ns = 50;
  b.elapsed_ns = 80;
  obs::EnumDelayStats m = a;
  m.merge(b);
  EXPECT_EQ(m.results, 15u);
  EXPECT_EQ(m.survivors, 2u);
  EXPECT_EQ(m.time_to_first_result_ns, 3);
  EXPECT_EQ(m.time_to_first_survivor_ns, 50);  // -1 loses to any observation
  EXPECT_EQ(m.elapsed_ns, 100u);
  // Merging the other way lands the same firsts.
  obs::EnumDelayStats r = b;
  r.merge(a);
  EXPECT_EQ(r.time_to_first_result_ns, 3);
  EXPECT_EQ(r.time_to_first_survivor_ns, 50);
}

// ---- protocol v3 campaign tail --------------------------------------------

TEST(ObsProtocol, LeaseGrantCampaignIdRoundTripsAndV2StillDecodes) {
  svc::LeaseGrant g;
  g.status = svc::LeaseStatus::kGranted;
  g.shard_index = 2;
  g.begin = 10;
  g.end = 20;
  g.next_index = 10;
  g.token = 5;
  g.campaign_id = 0xabcdef12345678ull;
  const std::vector<std::uint8_t> v3 = svc::encode(g);
  EXPECT_EQ(svc::decode_lease_grant(v3).campaign_id, g.campaign_id);

  // A v2 grant is the same payload without the 8-byte tail — it must
  // still decode, with the id defaulting to 0 (unstitched, not refused).
  std::vector<std::uint8_t> v2 = v3;
  v2.resize(v2.size() - 8);
  const svc::LeaseGrant old = svc::decode_lease_grant(v2);
  EXPECT_EQ(old.campaign_id, 0u);
  EXPECT_EQ(old.token, 5u);
  EXPECT_EQ(old.end, 20u);
}

// ---- the stitched fleet ---------------------------------------------------

TEST(ObsFleet, WorkerSpansCarryTheCoordinatorCampaignId) {
  TraceGuard guard;
#if !RVT_OBS_ENABLED
  GTEST_SKIP() << "RVT_OBS=OFF: span recording is compiled out";
#endif
  // Fixed name (no pid): a rerun sweeps up whatever an aborted
  // previous run left behind.
  const std::string dir = "obs-fleet-scratch";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string trace_path = dir + "/trace.bin";
  obs::set_trace_path(trace_path);
  obs::set_enabled(true);

  const auto w = dist::EnumWorkload::parse("e10:6");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 3);
  svc::CoordinatorConfig cfg;
  cfg.journal_dir = dir + "/journals";
  svc::Coordinator coord(plan, cfg);
  ASSERT_NE(coord.campaign_id(), 0u);

  svc::WorkerReport rep;
  std::thread t([&] {
    svc::WorkerOptions o;
    o.name = "obs-w";
    rep = svc::run_worker("127.0.0.1", coord.port(), o);
  });
  t.join();
  ASSERT_TRUE(coord.wait_complete(std::chrono::milliseconds(10000)));

  // The worker measured exact per-index delays over the whole campaign.
  EXPECT_EQ(rep.delay.results, plan.count);
  EXPECT_EQ(rep.delay.inter_result_delay_ns.count, plan.count);

  // The coordinator's merged report: uptime, per-shard journal growth,
  // chunk-gap delay stats covering every committed record.
  const svc::ServiceReport sr = coord.report();
  EXPECT_EQ(sr.campaign_id, coord.campaign_id());
  EXPECT_EQ(sr.delay.results, plan.count);
  EXPECT_EQ(sr.last_journal_growth_ms.size(), plan.shards.size());
  const std::string prom =
      net::http_get("127.0.0.1", coord.metrics_port(), "/metrics");
  std::string err;
  EXPECT_TRUE(obs::validate_prometheus(prom, &err)) << err;
  EXPECT_NE(prom.find("rvt_leases_granted "), std::string::npos);
  EXPECT_NE(prom.find("rvt_recovery_resumes "), std::string::npos);
  coord.stop();

  obs::set_enabled(false);
  ASSERT_GT(obs::flush(), 0u);
  const obs::TraceFile trace = obs::read_trace_file(trace_path);
  bool stitched = false;
  for (const auto& c : trace.chunks) {
    if (c.campaign_id != coord.campaign_id()) continue;
    for (const auto& e : c.events) {
      if (c.names[e.name_id] == "svc.worker.compute") stitched = true;
    }
  }
  EXPECT_TRUE(stitched)
      << "no worker span carried the coordinator's campaign id";
  const std::string json = obs::export_chrome_trace(trace);
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rvt

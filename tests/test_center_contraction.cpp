#include <gtest/gtest.h>

#include <set>

#include "tree/builders.hpp"
#include "tree/center.hpp"
#include "tree/contraction.hpp"
#include "tree/walk.hpp"
#include "util/rng.hpp"

namespace rvt::tree {
namespace {

TEST(Center, LineParity) {
  // Odd node count => central node; even => central edge.
  for (NodeId n = 2; n <= 12; ++n) {
    const Center c = find_center(line(n));
    if (n % 2 == 1) {
      ASSERT_TRUE(c.has_node()) << n;
      EXPECT_EQ(*c.node, (n - 1) / 2);
    } else {
      ASSERT_TRUE(c.has_edge()) << n;
      EXPECT_EQ(c.edge->first, n / 2 - 1);
      EXPECT_EQ(c.edge->second, n / 2);
    }
  }
}

TEST(Center, StarAndBinary) {
  const Center s = find_center(star(7));
  ASSERT_TRUE(s.has_node());
  EXPECT_EQ(*s.node, 0);

  const Center b = find_center(complete_binary(3));
  ASSERT_TRUE(b.has_node());
  EXPECT_EQ(*b.node, 0);  // the root

  // A 2-node tree has a central edge.
  const Center two = find_center(line(2));
  ASSERT_TRUE(two.has_edge());
}

TEST(Center, MinimizesEccentricityOnRandomTrees) {
  util::Rng rng(123);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = random_attachment(static_cast<NodeId>(2 + rng.index(60)),
                                     rng);
    const Center c = find_center(t);
    int best = t.node_count();
    for (NodeId v = 0; v < t.node_count(); ++v) {
      best = std::min(best, eccentricity(t, v));
    }
    if (c.has_node()) {
      EXPECT_EQ(eccentricity(t, *c.node), best);
      // The central node is the unique minimizer or one of at most one.
      int count = 0;
      for (NodeId v = 0; v < t.node_count(); ++v) {
        if (eccentricity(t, v) == best) ++count;
      }
      EXPECT_EQ(count, 1);
    } else {
      EXPECT_EQ(eccentricity(t, c.edge->first), best);
      EXPECT_EQ(eccentricity(t, c.edge->second), best);
    }
  }
}

TEST(Center, DistanceIsAMetric) {
  util::Rng rng(9);
  const Tree t = random_attachment(30, rng);
  for (int rep = 0; rep < 50; ++rep) {
    const NodeId a = static_cast<NodeId>(rng.index(30));
    const NodeId b = static_cast<NodeId>(rng.index(30));
    const NodeId c = static_cast<NodeId>(rng.index(30));
    EXPECT_EQ(distance(t, a, b), distance(t, b, a));
    EXPECT_LE(distance(t, a, c), distance(t, a, b) + distance(t, b, c));
    EXPECT_EQ(distance(t, a, a), 0);
  }
}

TEST(Contraction, LineContractsToSingleEdge) {
  const Contraction c = contract(line(10));
  EXPECT_EQ(c.nu(), 2);
  EXPECT_EQ(c.tprime.edge_count(), 1);
  EXPECT_EQ(c.to_t[0], 0);
  EXPECT_EQ(c.to_t[1], 9);
  EXPECT_EQ(c.path_len(0, 0), 9u);  // the whole line behind one T' edge
  EXPECT_EQ(c.path[0][0].front(), 0);
  EXPECT_EQ(c.path[0][0].back(), 9);
}

TEST(Contraction, NoDegreeTwoNodesSurvive) {
  util::Rng rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = randomize_ports(
        random_with_leaves(static_cast<NodeId>(11 + rng.index(60)),
                           static_cast<NodeId>(2 + rng.index(4)), rng),
        rng);
    const Contraction c = contract(t);
    for (NodeId v = 0; v < c.tprime.node_count(); ++v) {
      EXPECT_NE(c.tprime.degree(v), 2);
      EXPECT_EQ(c.tprime.degree(v), t.degree(c.to_t[v]));
    }
    // nu <= 2*leaves - 1 (paper).
    EXPECT_LE(c.nu(), 2 * t.leaf_count() - 1);
    // Leaves are preserved.
    EXPECT_EQ(c.tprime.leaf_count(), t.leaf_count());
  }
}

TEST(Contraction, StarIsItsOwnContraction) {
  const Contraction c = contract(star(5));
  EXPECT_EQ(c.nu(), 6);
  EXPECT_EQ(c.tprime.edge_count(), 5);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(c.to_t[v], v);
}

TEST(Contraction, PathEndpointsAndInteriorDegrees) {
  util::Rng rng(31);
  const Tree base = spider(3, 1);
  Tree t = subdivide_edge(base, 0, 1, 4);
  t = subdivide_edge(t, 0, 2, 2);
  const Contraction c = contract(t);
  EXPECT_EQ(c.nu(), 4);  // center + 3 leaves
  for (NodeId up = 0; up < c.nu(); ++up) {
    for (Port p = 0; p < c.tprime.degree(up); ++p) {
      const auto& path = c.path[up][p];
      EXPECT_EQ(path.front(), c.to_t[up]);
      EXPECT_NE(t.degree(path.back()), 2);
      for (std::size_t k = 1; k + 1 < path.size(); ++k) {
        EXPECT_EQ(t.degree(path[k]), 2);
      }
      // Ports of T' edges match the T ports of the first path edge.
      EXPECT_EQ(t.neighbor(c.to_t[up], p), path.size() > 1 ? path[1]
                                                           : path.back());
    }
  }
}

TEST(Contraction, BasicWalkCommutesWithContraction) {
  // The sequence of degree-!=2 nodes visited by a basic walk in T equals
  // the basic walk in T' (mapped through to_t).
  util::Rng rng(55);
  for (int rep = 0; rep < 10; ++rep) {
    Tree t = randomize_ports(
        random_with_leaves(static_cast<NodeId>(15 + rng.index(40)),
                           static_cast<NodeId>(3 + rng.index(3)), rng),
        rng);
    const Contraction c = contract(t);
    if (c.nu() < 2) continue;
    const NodeId start_tp = 0;
    const NodeId start_t = c.to_t[start_tp];

    // Walk in T, recording arrivals at degree-!=2 nodes.
    std::vector<NodeId> seq_t;
    WalkPos pos{start_t, -1};
    const std::uint64_t tour = 2 * (t.node_count() - 1);
    for (std::uint64_t k = 0; k < tour; ++k) {
      pos = bw_step(t, pos);
      if (t.degree(pos.node) != 2) seq_t.push_back(pos.node);
    }
    // Walk in T'.
    std::vector<NodeId> seq_tp;
    WalkPos posp{start_tp, -1};
    for (NodeId k = 0; k < 2 * (c.nu() - 1); ++k) {
      posp = bw_step(c.tprime, posp);
      seq_tp.push_back(c.to_t[posp.node]);
    }
    ASSERT_EQ(seq_t.size(), seq_tp.size());
    EXPECT_EQ(seq_t, seq_tp);
  }
}

TEST(Contraction, TwoNodeTree) {
  const Contraction c = contract(line(2));
  EXPECT_EQ(c.nu(), 2);
  EXPECT_EQ(c.path_len(0, 0), 1u);
}

}  // namespace
}  // namespace rvt::tree

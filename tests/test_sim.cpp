#include <gtest/gtest.h>

#include "sim/automaton.hpp"
#include "sim/meter.hpp"
#include "sim/simulator.hpp"
#include "tree/builders.hpp"
#include "util/rng.hpp"

namespace rvt::sim {
namespace {

using tree::line;
using tree::line_edge_colored;

/// Test agent: walks straight using the blind rule (enter i, exit 1-i),
/// bouncing at leaves.
class Sweeper final : public Agent {
 public:
  int step(const Observation& obs) override {
    if (obs.in_port < 0) return 0;
    if (obs.degree == 1) return 0;
    return 1 - obs.in_port;
  }
  std::uint64_t memory_bits() const override { return 1; }
  std::string name() const override { return "sweeper"; }
  std::uint64_t state_signature() const override { return 0; }
};

/// Test agent: never moves.
class Sitter final : public Agent {
 public:
  int step(const Observation&) override { return kStay; }
  std::uint64_t memory_bits() const override { return 0; }
  std::string name() const override { return "sitter"; }
  std::uint64_t state_signature() const override { return 0; }
};

TEST(Simulator, SweeperMeetsSitter) {
  const tree::Tree t = line(10);
  Sweeper a;
  Sitter b;
  const RunResult r = run_rendezvous(t, a, b, {0, 7, 0, 0, 100});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.meeting_node, 7);
  EXPECT_EQ(r.meeting_round, 6u);  // 7 edges... reached on round index 6
  EXPECT_EQ(r.moves_a, 7u);
  EXPECT_EQ(r.moves_b, 0u);
}

TEST(Simulator, OppositeSweepersCrossWithoutMeetingOnEvenGap) {
  // Two sweepers starting at the two ends of a line with an even node
  // count walk toward each other (port 0 points inward at both leaves) and
  // swap positions mid-edge: distance parity stays odd, no meeting.
  const tree::Tree t = line(6);
  Sweeper a, b;
  const RunResult r = run_rendezvous(t, a, b, {0, 5, 0, 0, 50});
  EXPECT_FALSE(r.met);
}

TEST(Simulator, OppositeSweepersMeetOnOddLine) {
  const tree::Tree t = line(7);
  Sweeper a, b;
  const RunResult r = run_rendezvous(t, a, b, {0, 6, 0, 0, 50});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.meeting_node, 3);
}

TEST(Simulator, DelayShiftsTrajectory) {
  const tree::Tree t = line(9);
  Sweeper a, b;
  // With delay, the delayed agent is caught while still dormant.
  const RunResult r = run_rendezvous(t, a, b, {0, 4, 0, 100, 200});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.meeting_node, 4);
  EXPECT_EQ(r.meeting_round, 3u);
}

TEST(Simulator, ValidatesConfig) {
  const tree::Tree t = line(4);
  Sweeper a, b;
  EXPECT_THROW(run_rendezvous(t, a, b, {0, 0, 0, 0, 10}),
               std::invalid_argument);
  EXPECT_THROW(run_rendezvous(t, a, b, {0, 9, 0, 0, 10}),
               std::invalid_argument);
  EXPECT_THROW(run_rendezvous(t, a, b, {0, 1, 0, 0, 0}),
               std::invalid_argument);
}

TEST(Simulator, TraceSeesEveryRound) {
  const tree::Tree t = line(5);
  Sweeper a;
  Sitter b;
  std::uint64_t calls = 0;
  run_rendezvous(t, a, b, {0, 4, 0, 0, 10},
                 [&](std::uint64_t round, tree::WalkPos pa, tree::WalkPos) {
                   EXPECT_EQ(round, calls);
                   ++calls;
                   EXPECT_GE(pa.node, 0);
                 });
  EXPECT_EQ(calls, 4u);  // met at round 3 (node 4 ... 4 rounds traced)
}

TEST(Simulator, ActionReducedModDegree) {
  // An agent answering 5 on a degree-2 node exits port 5 mod 2 = 1.
  class Mod final : public Agent {
   public:
    int step(const Observation&) override { return 5; }
    std::uint64_t memory_bits() const override { return 0; }
    std::string name() const override { return "mod"; }
  } a;
  Sitter b;
  const tree::Tree t = line(4);
  // From node 1, port 5 % 2 = 1 leads toward node 0.
  const RunResult r = run_rendezvous(t, a, b, {1, 3, 0, 0, 3});
  EXPECT_FALSE(r.met);
  EXPECT_EQ(r.moves_a, 3u);
}

TEST(Meter, CountersTrackMaxima) {
  MemoryMeter m;
  auto& c = m.counter("x");
  EXPECT_EQ(m.total_bits(), 0u);
  c = 5;
  c = 2;
  EXPECT_EQ(c.get(), 2u);
  EXPECT_EQ(c.max_seen(), 5u);
  EXPECT_EQ(c.bits(), 3u);
  c.reset();
  EXPECT_EQ(c.max_seen(), 5u);  // high-water mark survives reset
  m.declare_control_states(12);
  EXPECT_EQ(m.total_bits(), 3u + 4u);
  EXPECT_EQ(&m.counter("x"), &c);  // same counter by name
  auto breakdown = m.breakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].name, "<control>");
}

TEST(Meter, DecrementSaturatesAtZero) {
  MemoryMeter m;
  auto& c = m.counter("c");
  c.decrement();
  EXPECT_EQ(c.get(), 0u);
  c.increment();
  c.decrement();
  EXPECT_EQ(c.get(), 0u);
  EXPECT_EQ(c.max_seen(), 1u);
}

TEST(LineAutomaton, ValidationCatchesErrors) {
  LineAutomaton a;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a.delta.assign(2, {0, 0});
  a.lambda.assign(2, 0);
  a.initial = 5;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a.initial = 0;
  a.delta[1] = {0, 7};
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a.delta[1] = {0, 1};
  EXPECT_NO_THROW(a.validate());
}

TEST(LineAutomaton, BasicWalkerSweepsTheLine) {
  // The 4-state walker crosses the whole line and bounces forever.
  const tree::Tree t = line_edge_colored(8, 0);
  LineAutomatonAgent a(basic_walker_automaton());
  Sitter b;
  const RunResult r = run_rendezvous(t, a, b, {3, 7, 0, 0, 100});
  EXPECT_TRUE(r.met);  // reaches node 7 eventually
}

TEST(LineAutomaton, PingPongWalkerSpeed) {
  // Speed 1/p: exactly one move every p rounds once rolling.
  for (int p : {1, 2, 3, 5}) {
    const tree::Tree t = line_edge_colored(40, 0);
    LineAutomatonAgent a(ping_pong_walker(p));
    Sitter b;
    const RunResult r = run_rendezvous(t, a, b, {10, 39, 0, 0, 2000});
    ASSERT_TRUE(r.met) << p;
    // 29 edges from node 10 to 39; each move takes p rounds (p-1 idles).
    EXPECT_EQ(r.meeting_round + 1, static_cast<std::uint64_t>(29) * p)
        << "p=" << p;
  }
}

TEST(LineAutomaton, MemoryBitsIsLogStates) {
  LineAutomatonAgent a(ping_pong_walker(4));  // 16 states
  EXPECT_EQ(a.memory_bits(), 4u);
}

TEST(ZLineSim, BasicWalkerDriftsMonotonically) {
  const auto a = basic_walker_automaton();
  ZLineSim sim(a, 0);
  for (int i = 1; i <= 20; ++i) {
    const auto s = sim.tick();
    EXPECT_EQ(s.pos, i);  // first exit port 0 == right edge color 0, phase 0
  }
}

TEST(ZLineSim, PhaseFlipsInitialDirection) {
  const auto a = basic_walker_automaton();
  ZLineSim sim(a, 1);
  const auto s = sim.tick();
  EXPECT_EQ(s.pos, -1);  // port 0 edge is now on the left
}

TEST(ZLineSim, StaysDoNotMove) {
  const auto a = ping_pong_walker(3);
  ZLineSim sim(a, 0);
  EXPECT_EQ(sim.tick().pos, 0);
  EXPECT_EQ(sim.tick().pos, 0);
  EXPECT_EQ(sim.tick().pos, 1);  // moves on the 3rd round
}

TEST(TreeAutomaton, LiftBehavesLikeLineAutomatonOnLines) {
  util::Rng rng(71);
  const auto la = random_line_automaton(6, rng);
  const tree::Tree t = line_edge_colored(20, 0);
  LineAutomatonAgent a1(la);
  TreeAutomatonAgent a2(lift_to_tree_automaton(la));
  tree::WalkPos p1{5, -1}, p2{5, -1};
  for (int round = 0; round < 200; ++round) {
    const Observation o1{p1.in_port, t.degree(p1.node)};
    const Observation o2{p2.in_port, t.degree(p2.node)};
    const int act1 = a1.step(o1);
    const int act2 = a2.step(o2);
    ASSERT_EQ(act1, act2) << "round " << round;
    auto advance = [&t](tree::WalkPos& p, int act) {
      if (act == kStay) {
        p.in_port = -1;
        return;
      }
      const tree::Port out =
          static_cast<tree::Port>(act % t.degree(p.node));
      const tree::NodeId nx = t.neighbor(p.node, out);
      p = {nx, t.reverse_port(p.node, out)};
    };
    advance(p1, act1);
    advance(p2, act2);
    ASSERT_EQ(p1.node, p2.node);
  }
}

TEST(TreeAutomaton, RandomAutomatonValidates) {
  util::Rng rng(3);
  for (int s : {1, 2, 5, 9}) {
    EXPECT_NO_THROW(random_tree_automaton(s, rng).validate());
    EXPECT_NO_THROW(random_line_automaton(s, rng).validate());
  }
}

}  // namespace
}  // namespace rvt::sim

#include <gtest/gtest.h>

#include "tree/builders.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace rvt::tree {
namespace {

TEST(Tree, SingleNode) {
  const Tree t = Tree::single_node();
  EXPECT_EQ(t.node_count(), 1);
  EXPECT_EQ(t.edge_count(), 0);
  EXPECT_EQ(t.degree(0), 0);
}

TEST(Tree, RejectsBadInput) {
  // Wrong edge count.
  EXPECT_THROW(Tree(3, {{0, 1, 0, 0}}), std::invalid_argument);
  // Self loop.
  EXPECT_THROW(Tree(2, {{0, 0, 0, 0}}), std::invalid_argument);
  // Port out of range.
  EXPECT_THROW(Tree(2, {{0, 1, 1, 0}}), std::invalid_argument);
  // Disconnected (two components), even with consistent ports.
  EXPECT_THROW(Tree(4, {{0, 1, 0, 0}, {2, 3, 0, 0}, {0, 1, 1, 1}}),
               std::invalid_argument);
  // Duplicate port at a node.
  EXPECT_THROW(Tree(3, {{0, 1, 0, 0}, {0, 2, 0, 0}}), std::invalid_argument);
}

TEST(Tree, ReversePortsConsistent) {
  util::Rng rng(11);
  const Tree t = randomize_ports(random_attachment(50, rng), rng);
  for (NodeId v = 0; v < t.node_count(); ++v) {
    for (Port p = 0; p < t.degree(v); ++p) {
      const NodeId w = t.neighbor(v, p);
      const Port q = t.reverse_port(v, p);
      EXPECT_EQ(t.neighbor(w, q), v);
      EXPECT_EQ(t.reverse_port(w, q), p);
      EXPECT_EQ(t.port_towards(v, w), p);
    }
  }
}

TEST(Tree, EdgesRoundTrip) {
  util::Rng rng(5);
  const Tree t = random_attachment(40, rng);
  const Tree u(t.node_count(), t.edges());
  EXPECT_EQ(t.to_string(), u.to_string());
}

TEST(Tree, WithPortsPermutedValidates) {
  const Tree t = star(3);
  std::vector<std::vector<Port>> bad(t.node_count());
  for (NodeId v = 0; v < t.node_count(); ++v) {
    bad[v].assign(t.degree(v), 0);  // not a permutation for the center
  }
  EXPECT_THROW(t.with_ports_permuted(bad), std::invalid_argument);
}

TEST(Builders, LineShape) {
  const Tree t = line(5);
  EXPECT_EQ(t.node_count(), 5);
  EXPECT_EQ(t.leaf_count(), 2);
  EXPECT_EQ(t.max_degree(), 2);
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.neighbor(0, 0), 1);
  EXPECT_EQ(t.neighbor(2, 0), 3);  // port 0 toward higher id
  EXPECT_EQ(t.neighbor(2, 1), 1);
}

TEST(Builders, LineEdgeColoredHasMatchingPorts) {
  for (int fc : {0, 1}) {
    const Tree t = line_edge_colored(9, fc);
    for (NodeId j = 0; j + 1 < t.node_count(); ++j) {
      const Port pu = t.port_towards(j, j + 1);
      const Port pv = t.port_towards(j + 1, j);
      const Port color = static_cast<Port>((j + fc) % 2);
      if (t.degree(j) == 2) {
        EXPECT_EQ(pu, color);
      }
      if (t.degree(j + 1) == 2) {
        EXPECT_EQ(pv, color);
      }
    }
  }
}

TEST(Builders, LineSymmetricColoredCenterPortsZero) {
  for (NodeId e : {3, 5, 9, 33}) {
    const Tree t = line_symmetric_colored(e);
    EXPECT_EQ(t.node_count(), e + 1);
    const NodeId m = (e - 1) / 2;
    EXPECT_EQ(t.port_towards(m, m + 1), 0);
    EXPECT_EQ(t.port_towards(m + 1, m), 0);
    // Mirror symmetry of the labeling: port at k toward k+1 equals port at
    // e-k toward e-k-1.
    for (NodeId k = 0; k < e; ++k) {
      EXPECT_EQ(t.port_towards(k, k + 1), t.port_towards(e - k, e - k - 1));
    }
  }
  EXPECT_THROW(line_symmetric_colored(4), std::invalid_argument);
}

TEST(Builders, StarAndSpider) {
  const Tree s = star(6);
  EXPECT_EQ(s.node_count(), 7);
  EXPECT_EQ(s.leaf_count(), 6);
  EXPECT_EQ(s.max_degree(), 6);

  const Tree sp = spider(4, 3);
  EXPECT_EQ(sp.node_count(), 1 + 4 * 3);
  EXPECT_EQ(sp.leaf_count(), 4);
  EXPECT_EQ(sp.degree(0), 4);
}

TEST(Builders, Caterpillar) {
  const Tree t = caterpillar(4, {1, 0, 2, 1});
  EXPECT_EQ(t.node_count(), 8);
  // Both spine ends carry an attachment, so they have degree 2 and are
  // internal; the leaves are exactly the 4 attached nodes.
  EXPECT_EQ(t.leaf_count(), 4);

  // A bare-ended caterpillar keeps its spine ends as leaves.
  const Tree bare = caterpillar(3, {0, 2, 0});
  EXPECT_EQ(bare.leaf_count(), 4);  // 2 spine ends + 2 attached
}

TEST(Builders, CompleteBinary) {
  const Tree t = complete_binary(3);
  EXPECT_EQ(t.node_count(), 15);
  EXPECT_EQ(t.leaf_count(), 8);
  EXPECT_EQ(t.degree(0), 2);
  EXPECT_EQ(t.max_degree(), 3);
}

TEST(Builders, Binomial) {
  for (int k : {0, 1, 2, 3, 4, 5}) {
    const Tree t = binomial(k);
    EXPECT_EQ(t.node_count(), 1 << k) << "k=" << k;
    EXPECT_EQ(t.degree(0), k) << "root of B_k has degree k";
  }
}

TEST(Builders, CompleteKary) {
  const Tree t = complete_kary(3, 2);
  EXPECT_EQ(t.node_count(), 1 + 3 + 9);
  EXPECT_EQ(t.leaf_count(), 9);
  EXPECT_EQ(t.degree(0), 3);
  EXPECT_EQ(t.max_degree(), 4);
  EXPECT_EQ(complete_kary(2, 3).node_count(), complete_binary(3).node_count());
  EXPECT_THROW(complete_kary(1, 2), std::invalid_argument);
}

TEST(Builders, Broom) {
  const Tree t = broom(3, 4);
  EXPECT_EQ(t.node_count(), 4 + 4);
  EXPECT_EQ(t.leaf_count(), 5);  // 4 bristles + the handle's free end
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_THROW(broom(0, 4), std::invalid_argument);
  EXPECT_THROW(broom(3, 1), std::invalid_argument);
}

TEST(Builders, DoubleBroom) {
  const Tree t = double_broom(4, 3, 5);
  EXPECT_EQ(t.node_count(), 5 + 3 + 5);
  EXPECT_EQ(t.leaf_count(), 8);
  EXPECT_EQ(t.degree(0), 4);   // left center: 3 bristles + handle
  EXPECT_EQ(t.degree(4), 6);   // right center: 5 bristles + handle
  EXPECT_THROW(double_broom(1, 2, 2), std::invalid_argument);
}

TEST(Builders, RandomAttachmentIsTree) {
  util::Rng rng(17);
  for (int n : {1, 2, 10, 100}) {
    const Tree t = random_attachment(n, rng);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.edge_count(), n - 1);
  }
}

TEST(Builders, RandomWithLeavesHitsTargets) {
  util::Rng rng(23);
  for (NodeId leaves : {2, 3, 5, 8, 16}) {
    for (NodeId n : {2 * leaves - 1, 2 * leaves + 10, 4 * leaves + 7}) {
      const Tree t = random_with_leaves(n, leaves, rng);
      EXPECT_EQ(t.node_count(), n);
      EXPECT_EQ(t.leaf_count(), leaves)
          << "n=" << n << " leaves=" << leaves;
    }
  }
  EXPECT_THROW(random_with_leaves(2, 3, rng), std::invalid_argument);
  EXPECT_THROW(random_with_leaves(100, 1, rng), std::invalid_argument);
}

TEST(Builders, SubdivideEdgePreservesLeaves) {
  util::Rng rng(31);
  const Tree t = star(4);
  const Tree u = subdivide_edge(t, 0, 1, 3);
  EXPECT_EQ(u.node_count(), t.node_count() + 3);
  EXPECT_EQ(u.leaf_count(), t.leaf_count());
  EXPECT_EQ(u.degree(0), 4);
  // New chain nodes have degree 2.
  for (NodeId w = t.node_count(); w < u.node_count(); ++w) {
    EXPECT_EQ(u.degree(w), 2);
  }
  EXPECT_THROW(subdivide_edge(t, 1, 2, 1), std::invalid_argument);
}

TEST(Builders, SideTreeShapes) {
  // i=3: masks 0..3; path x0..x3; internal nodes x1, x2.
  const Tree t0 = side_tree(3, 0b00);  // two plain leaves
  EXPECT_EQ(t0.node_count(), 4 + 2);
  EXPECT_EQ(t0.degree(0), 1);  // root endpoint
  const Tree t3 = side_tree(3, 0b11);  // two degree-2+leaf attachments
  EXPECT_EQ(t3.node_count(), 4 + 4);
  EXPECT_EQ(t3.max_degree(), 3);
  // Standalone leaf count: i-1 attachments + far path end + the root
  // (which has degree 1 until it is joined) = i + 1.
  EXPECT_EQ(t0.leaf_count(), 4);
  EXPECT_THROW(side_tree(1, 0), std::invalid_argument);
  EXPECT_THROW(side_tree(3, 0b100), std::invalid_argument);
}

TEST(Builders, TwoSidedTreeStructure) {
  const Tree s1 = side_tree(4, 0b101);
  const Tree s2 = side_tree(4, 0b010);
  const TwoSided ts = two_sided_tree(s1, s2, 4);
  EXPECT_EQ(ts.tree.node_count(), s1.node_count() + s2.node_count() + 4);
  EXPECT_EQ(ts.tree.max_degree(), 3);
  // l = 2i leaves: each side contributes i (root joins the path and stops
  // being a leaf).
  EXPECT_EQ(ts.tree.leaf_count(), 8);
  // u and v are degree-2 path nodes adjacent to the roots.
  EXPECT_EQ(ts.tree.degree(ts.u), 2);
  EXPECT_EQ(ts.tree.degree(ts.v), 2);
  EXPECT_NE(ts.tree.port_towards(ts.u, ts.left_root), -1);
  EXPECT_NE(ts.tree.port_towards(ts.v, ts.right_root), -1);
  // Central edge of the joining path carries port 0 on both sides.
  EXPECT_THROW(two_sided_tree(s1, s2, 3), std::invalid_argument);
  EXPECT_THROW(two_sided_tree(s1, s2, 0), std::invalid_argument);
}

TEST(Builders, RandomizePortsKeepsTopology) {
  util::Rng rng(41);
  const Tree t = complete_binary(3);
  const Tree u = randomize_ports(t, rng);
  EXPECT_EQ(u.node_count(), t.node_count());
  EXPECT_EQ(u.leaf_count(), t.leaf_count());
  for (NodeId v = 0; v < t.node_count(); ++v) {
    EXPECT_EQ(u.degree(v), t.degree(v));
    // Same neighbor multiset.
    std::vector<NodeId> a, b;
    for (Port p = 0; p < t.degree(v); ++p) {
      a.push_back(t.neighbor(v, p));
      b.push_back(u.neighbor(v, p));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace rvt::tree

#include <gtest/gtest.h>

#include "core/explo.hpp"
#include "core/rendezvous_agent.hpp"
#include "sim/simulator.hpp"
#include "tree/builders.hpp"
#include "tree/canonical.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace rvt::core {
namespace {

using tree::NodeId;
using tree::Tree;

std::uint64_t horizon_for(const Tree& t) {
  const std::uint64_t n = static_cast<std::uint64_t>(t.node_count());
  const std::uint64_t l = static_cast<std::uint64_t>(t.leaf_count());
  // Stage 2's dominant cost is prime(i) on P (|P| ~ 40 n l) over the inner
  // loop (2 nu - 1 executions) for i up to O(log(n l)). Generous envelope
  // for the small instances used in tests.
  return 2000000ull + 3000ull * n * l * l;
}

sim::RunResult run_thm41(const Tree& t, NodeId u, NodeId v,
                         std::uint64_t horizon = 0) {
  RendezvousAgent a(t, u), b(t, v);
  return sim::run_rendezvous(
      t, a, b, {u, v, 0, 0, horizon ? horizon : horizon_for(t)});
}

TEST(Rendezvous, StarAllPairs) {
  const Tree t = tree::star(5);
  for (NodeId u = 0; u < t.node_count(); ++u) {
    for (NodeId v = u + 1; v < t.node_count(); ++v) {
      const auto r = run_thm41(t, u, v);
      EXPECT_TRUE(r.met) << "u=" << u << " v=" << v;
    }
  }
}

TEST(Rendezvous, CompleteBinaryAllPairs) {
  // Central node instance: everyone meets at the root.
  const Tree t = tree::complete_binary(3);
  for (NodeId u = 0; u < t.node_count(); ++u) {
    for (NodeId v = u + 1; v < t.node_count(); ++v) {
      const auto r = run_thm41(t, u, v);
      EXPECT_TRUE(r.met) << "u=" << u << " v=" << v;
    }
  }
}

TEST(Rendezvous, OddLinesAllPairs) {
  for (NodeId n : {3, 5, 7, 9, 11}) {
    const Tree t = tree::line(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        const auto r = run_thm41(t, u, v);
        EXPECT_TRUE(r.met) << "n=" << n << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Rendezvous, EvenLinesNonSymmetrizablePairs) {
  for (NodeId n : {4, 6, 8, 10}) {
    const Tree t = tree::line(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (u + v == n - 1) continue;  // perfectly symmetrizable pair
        const auto r = run_thm41(t, u, v);
        EXPECT_TRUE(r.met) << "n=" << n << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Rendezvous, MirroredPairsOnAsymmetricallyLabeledEvenLine) {
  // Perfectly symmetrizable positions CAN still meet under a labeling
  // without the bad symmetry; our definition only requires success on
  // non-symmetrizable pairs, but the algorithm happens to break ties via
  // ports here. No assertion on success — only that the sim terminates
  // within the horizon one way or the other, and that the symmetric
  // labeling instance never meets.
  const Tree sym = tree::line_symmetric_colored(5);  // 6 nodes
  RendezvousAgent a(sym, 1), b(sym, 4);
  const auto r = sim::run_rendezvous(sym, a, b, {1, 4, 0, 0, 500000});
  EXPECT_FALSE(r.met);  // symmetric labeling, mirrored pair: impossible
}

TEST(Rendezvous, SpidersWithSubdividedLegs) {
  util::Rng rng(7);
  Tree t = tree::spider(3, 2);
  t = tree::subdivide_edge(t, 0, 1, 3);
  t = tree::subdivide_edge(t, 2, t.neighbor(2, 0) == 0 ? t.neighbor(2, 1)
                                                       : t.neighbor(2, 0),
                           2);
  for (int rep = 0; rep < 12; ++rep) {
    const NodeId u = static_cast<NodeId>(rng.index(t.node_count()));
    const NodeId v = static_cast<NodeId>(rng.index(t.node_count()));
    if (u == v) continue;
    const auto r = run_thm41(t, u, v);
    EXPECT_TRUE(r.met) << "u=" << u << " v=" << v;
  }
}

TEST(Rendezvous, RandomTreesRandomLabelings) {
  util::Rng rng(2024);
  int tested = 0;
  for (int rep = 0; rep < 40 && tested < 25; ++rep) {
    const NodeId n = static_cast<NodeId>(8 + rng.index(28));
    const NodeId leaves = static_cast<NodeId>(
        2 + rng.index(std::min<NodeId>(5, (n - 1) / 2)));
    const Tree t = tree::randomize_ports(
        tree::random_with_leaves(n, leaves, rng), rng);
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (u == v || tree::perfectly_symmetrizable(t, u, v)) continue;
    ++tested;
    const auto r = run_thm41(t, u, v);
    EXPECT_TRUE(r.met) << "n=" << n << " l=" << leaves << " u=" << u
                       << " v=" << v << " seed-rep=" << rep;
  }
  EXPECT_GE(tested, 15);
}

TEST(Rendezvous, SymmetricContractionTwoSidedTrees) {
  // The hard case: symmetric contraction, non-symmetrizable positions off
  // the mirror axis.
  const Tree s = tree::side_tree(3, 0b01);
  const auto ts = tree::two_sided_tree(s, s, 2);
  const Tree& t = ts.tree;
  util::Rng rng(5);
  int tested = 0;
  for (NodeId u = 0; u < t.node_count(); ++u) {
    for (NodeId v = u + 1; v < t.node_count(); ++v) {
      if (tree::perfectly_symmetrizable(t, u, v)) continue;
      if (rng.uniform(0, 3) != 0) continue;  // sample for speed
      ++tested;
      const auto r = run_thm41(t, u, v);
      EXPECT_TRUE(r.met) << "u=" << u << " v=" << v;
    }
  }
  EXPECT_GE(tested, 10);
}

TEST(Rendezvous, BinomialTreePairs) {
  const Tree t = tree::binomial(4);  // 16 nodes, symmetric-ish structure
  util::Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    const NodeId u = static_cast<NodeId>(rng.index(t.node_count()));
    const NodeId v = static_cast<NodeId>(rng.index(t.node_count()));
    if (u == v || tree::perfectly_symmetrizable(t, u, v)) continue;
    const auto r = run_thm41(t, u, v);
    EXPECT_TRUE(r.met) << "u=" << u << " v=" << v;
  }
}

TEST(Rendezvous, MemoryWithinTheoremBound) {
  // Measured bits must scale as O(log l + log log n): check a concrete
  // generous envelope across sizes.
  util::Rng rng(31);
  for (NodeId n : {16, 64, 256, 1024}) {
    const Tree t = tree::line(n);
    RendezvousAgent a(t, static_cast<NodeId>(1));
    RendezvousAgent b(t, static_cast<NodeId>(n / 2 + 1));
    const auto r = sim::run_rendezvous(
        t, a, b, {1, static_cast<NodeId>(n / 2 + 1), 0, 0,
                  400000ull * static_cast<std::uint64_t>(n)});
    if (tree::perfectly_symmetrizable(t, 1, static_cast<NodeId>(n / 2 + 1))) {
      continue;
    }
    ASSERT_TRUE(r.met) << n;
    const unsigned logl = util::bit_width_for(
        static_cast<std::uint64_t>(t.leaf_count()));
    const unsigned loglogn =
        util::bit_width_for(util::bit_width_for(static_cast<std::uint64_t>(n)));
    EXPECT_LE(r.memory_bits_a, 12 * logl + 10 * loglogn + 40) << "n=" << n;
  }
}

TEST(Rendezvous, ParkKindsUnderArbitraryDelay) {
  // Central-node and asymmetric-central-edge instances are delay-proof:
  // both agents park at the same node.
  const Tree t = tree::star(4);
  for (std::uint64_t delay : {0u, 5u, 100u, 1237u}) {
    RendezvousAgent a(t, 1), b(t, 3);
    const auto r = sim::run_rendezvous(t, a, b, {1, 3, delay, 0, 5000});
    EXPECT_TRUE(r.met) << delay;
  }
}

TEST(Rendezvous, AblationDesyncLoopsAreLoadBearing) {
  // Look for instances with a mirror-symmetric labeling and a NON-mirrored
  // start pair whose Explo timing profiles coincide (t == t'): with the
  // bw(j)/cbw(j) inner loops disabled the agents reach their opposite
  // anchors simultaneously and dance in mirrored lockstep forever; the
  // full algorithm desynchronizes them at some inner iteration and meets.
  //
  // On mirror-symmetric instances equal timing forces the mirrored
  // (infeasible) pair — the basic walk is backward-deterministic and a
  // leaf has a single in-edge. The coincidences live on instances that are
  // only CONTRACTION-symmetric: two different side trees (Theorem 4.3
  // style), where the degree-2 structure differs but T' cannot see it.
  int contrasts = 0;
  for (auto [m1, m2] : {std::pair{0ull, 1ull}, {2ull, 3ull}, {1ull, 2ull}}) {
    const Tree s1 = tree::side_tree(3, m1);
    const Tree s2 = tree::side_tree(3, m2);
    const auto ts = tree::two_sided_tree(s1, s2, 2);
    const Tree& t = ts.tree;
    for (NodeId u = 0; u < t.node_count() && contrasts == 0; ++u) {
      for (NodeId v = 0; v < t.node_count(); ++v) {
        if (u == v) continue;
        if (tree::perfectly_symmetrizable(t, u, v)) continue;
        const ExploInfo iu = explo(t, u), iv = explo(t, v);
        if (iu.kind != TreeKind::kCentralEdgeSymmetric) break;
        if (iu.v_hat == iv.v_hat) continue;  // want opposite anchors
        const std::uint64_t tu = iu.steps_to_vhat + iu.tsteps_to_target;
        const std::uint64_t tv = iv.steps_to_vhat + iv.tsteps_to_target;
        if (tu != tv) continue;
        RendezvousOptions off;
        off.desync_inner_loops = false;
        RendezvousAgent a(t, u, off), b(t, v, off);
        const auto ablated =
            sim::run_rendezvous(t, a, b, {u, v, 0, 0, 3000000});
        if (ablated.met) continue;  // accidental collision en route
        const auto full = run_thm41(t, u, v);
        EXPECT_TRUE(full.met)
            << "full algorithm must meet where ablation fails (u=" << u
            << " v=" << v << ")";
        ++contrasts;
        break;
      }
    }
    if (contrasts > 0) break;
  }
  EXPECT_GE(contrasts, 1)
      << "no instance separating full vs ablated agents was found";
}

TEST(Rendezvous, SymmetricPositionsNeverMeet) {
  // The flip side of Fact 1.1: when the initial positions are symmetric
  // with respect to the GIVEN labeling, no deterministic identical-agent
  // algorithm can meet — including ours. Empirically verify on symmetric
  // instances: agents stay mirror images for the whole horizon.
  std::vector<std::tuple<Tree, NodeId, NodeId>> cases;
  {
    const Tree t = tree::line_symmetric_colored(7);  // 8 nodes
    cases.emplace_back(t, 0, 7);
    cases.emplace_back(t, 2, 5);
    cases.emplace_back(t, 3, 4);
  }
  {
    const Tree s = tree::side_tree(4, 0b010);
    const auto ts = tree::two_sided_tree(s, s, 2);
    cases.emplace_back(ts.tree, ts.u, ts.v);
  }
  for (const auto& [t, u, v] : cases) {
    ASSERT_TRUE(tree::symmetric_positions(t, u, v));
    RendezvousAgent a(t, u), b(t, v);
    const auto r = sim::run_rendezvous(t, a, b, {u, v, 0, 0, 3000000});
    EXPECT_FALSE(r.met) << "u=" << u << " v=" << v;
  }
}

TEST(Rendezvous, DoubleBroomsBothKinds) {
  // Equal brooms: symmetric contraction (hard path); unequal: asymmetric
  // central edge (park).
  {
    const Tree t = tree::double_broom(6, 3, 3);
    util::Rng rng(8);
    for (int rep = 0; rep < 8; ++rep) {
      const NodeId u = static_cast<NodeId>(rng.index(t.node_count()));
      const NodeId v = static_cast<NodeId>(rng.index(t.node_count()));
      if (u == v || tree::perfectly_symmetrizable(t, u, v)) continue;
      const auto r = run_thm41(t, u, v);
      EXPECT_TRUE(r.met) << "equal broom u=" << u << " v=" << v;
    }
  }
  {
    const Tree t = tree::double_broom(6, 2, 4);
    for (NodeId u = 0; u < t.node_count(); ++u) {
      for (NodeId v = u + 1; v < t.node_count(); ++v) {
        const auto r = run_thm41(t, u, v);
        EXPECT_TRUE(r.met) << "unequal broom u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Rendezvous, Claim42ResynchronizationPinsTheDelay) {
  // Claim 4.2 + Fact 2.1: after Stage 1 and Synchro, the difference
  // between the agents' arrival times at their anchors equals
  // |(L + L^) - (L' + L^')| — with or without timed Explo insertions.
  util::Rng rng(404);
  int checked = 0;
  for (int rep = 0; rep < 30 && checked < 10; ++rep) {
    const Tree half = tree::random_with_leaves(
        static_cast<NodeId>(8 + rng.index(16)), 3, rng);
    const auto ts = tree::two_sided_tree(half, half, 2);
    const Tree& t = ts.tree;
    const NodeId u = static_cast<NodeId>(rng.index(t.node_count()));
    const NodeId v = static_cast<NodeId>(rng.index(t.node_count()));
    if (u == v || tree::perfectly_symmetrizable(t, u, v)) continue;
    const ExploInfo iu = explo(t, u);
    if (iu.kind != TreeKind::kCentralEdgeSymmetric) continue;
    const ExploInfo iv = explo(t, v);
    const std::uint64_t tu = iu.steps_to_vhat + iu.tsteps_to_target;
    const std::uint64_t tv = iv.steps_to_vhat + iv.tsteps_to_target;
    const std::uint64_t expected = tu > tv ? tu - tv : tv - tu;
    for (bool timed : {false, true}) {
      RendezvousOptions opt;
      opt.timed_explo = timed;
      RendezvousAgent a(t, u, opt), b(t, v, opt);
      // Run until both entered the outer loop (or met / gave up).
      sim::TwoAgentRun run(t, a, b, {u, v, 0, 0, 0});
      for (std::uint64_t r = 0; r < 3000000; ++r) {
        if (run.tick()) break;
        if (a.outer_entry_step() && b.outer_entry_step()) break;
      }
      if (!a.outer_entry_step() || !b.outer_entry_step()) continue;
      const std::uint64_t sa = a.outer_entry_step();
      const std::uint64_t sb = b.outer_entry_step();
      EXPECT_EQ(sa > sb ? sa - sb : sb - sa, expected)
          << "timed=" << timed << " u=" << u << " v=" << v;
      ++checked;
    }
  }
  EXPECT_GE(checked, 6);
}

TEST(Rendezvous, TimedExploStillMeetsEverywhere) {
  util::Rng rng(515);
  RendezvousOptions opt;
  opt.timed_explo = true;
  // Across the three Stage-2 kinds.
  std::vector<Tree> trees;
  trees.push_back(tree::star(4));                       // central node
  trees.push_back(
      tree::two_sided_tree(tree::star(2), tree::star(3), 2).tree);  // asym
  trees.push_back(tree::line(9));                       // symmetric
  {
    const Tree s = tree::side_tree(3, 0b01);
    trees.push_back(tree::two_sided_tree(s, s, 2).tree);  // symmetric, rich
  }
  for (const auto& t : trees) {
    int tested = 0;
    for (int rep = 0; rep < 20 && tested < 6; ++rep) {
      const NodeId u = static_cast<NodeId>(rng.index(t.node_count()));
      const NodeId v = static_cast<NodeId>(rng.index(t.node_count()));
      if (u == v || tree::perfectly_symmetrizable(t, u, v)) continue;
      ++tested;
      RendezvousAgent a(t, u, opt), b(t, v, opt);
      const auto r =
          sim::run_rendezvous(t, a, b, {u, v, 0, 0, horizon_for(t) * 4});
      EXPECT_TRUE(r.met) << "n=" << t.node_count() << " u=" << u
                         << " v=" << v;
    }
    EXPECT_GE(tested, 3);
  }
}

TEST(Rendezvous, AgentReportsPhases) {
  const Tree t = tree::line(6);
  RendezvousAgent a(t, 2);
  EXPECT_EQ(a.phase_name(), "start");
  EXPECT_EQ(a.info().ell, 2);
}

}  // namespace
}  // namespace rvt::core

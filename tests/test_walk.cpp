#include <gtest/gtest.h>

#include <map>

#include "tree/builders.hpp"
#include "tree/walk.hpp"
#include "util/rng.hpp"

namespace rvt::tree {
namespace {

/// Parameterized over (builder id, seed): basic-walk invariants must hold
/// on every tree family.
class WalkProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Tree make_tree() {
    const auto [family, seed] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
    switch (family) {
      case 0: return line(2 + seed % 17);
      case 1: return star(1 + seed % 9);
      case 2: return spider(3 + seed % 4, 1 + seed % 5);
      case 3: return complete_binary(1 + seed % 4);
      case 4: return binomial(1 + seed % 5);
      case 5: return randomize_ports(random_attachment(2 + seed * 3, rng), rng);
      case 6: return complete_kary(2 + seed % 3, 1 + seed % 3);
      case 7: return broom(1 + seed, 2 + seed % 4);
      case 8: return double_broom(2 + seed, 2 + seed % 3, 2 + (seed / 2) % 3);
      default:
        return randomize_ports(
            random_with_leaves(10 + seed * 2, 2 + seed % 5, rng), rng);
    }
  }
};

TEST_P(WalkProperty, BasicWalkClosesAfterEulerTour) {
  const Tree t = make_tree();
  const auto n = t.node_count();
  if (n < 2) return;
  for (NodeId start = 0; start < n; ++start) {
    const auto walk = basic_walk(t, start, 2 * (n - 1));
    EXPECT_EQ(walk.back().node, start);
  }
}

TEST_P(WalkProperty, BasicWalkCrossesEveryEdgeTwice) {
  const Tree t = make_tree();
  const auto n = t.node_count();
  if (n < 2) return;
  std::map<std::pair<NodeId, NodeId>, int> crossings;  // directed
  WalkPos pos{0, -1};
  for (NodeId k = 0; k < 2 * (n - 1); ++k) {
    const WalkPos next = bw_step(t, pos);
    ++crossings[{pos.node, next.node}];
    pos = next;
  }
  EXPECT_EQ(crossings.size(), static_cast<std::size_t>(2 * (n - 1)));
  for (const auto& [dir, count] : crossings) EXPECT_EQ(count, 1);
}

TEST_P(WalkProperty, CbwRetracesBw) {
  const Tree t = make_tree();
  const auto n = t.node_count();
  if (n < 2) return;
  util::Rng rng(99);
  for (int rep = 0; rep < 5; ++rep) {
    const NodeId start = static_cast<NodeId>(rng.index(n));
    const std::uint64_t len = 1 + rng.uniform(0, 3 * (n - 1));
    // Forward.
    std::vector<WalkPos> fwd{{start, -1}};
    for (std::uint64_t k = 0; k < len; ++k) {
      fwd.push_back(bw_step(t, fwd.back()));
    }
    // Backward: first cbw step re-crosses the last edge, then (i-1) mod d.
    WalkPos pos = fwd.back();
    for (std::uint64_t k = 0; k < len; ++k) {
      pos = cbw_step(t, pos, k == 0);
      EXPECT_EQ(pos.node, fwd[len - 1 - k].node)
          << "len=" << len << " k=" << k;
    }
    EXPECT_EQ(pos.node, start);
  }
}

TEST_P(WalkProperty, BwStepsToFindsEveryTarget) {
  const Tree t = make_tree();
  const auto n = t.node_count();
  if (n < 2) return;
  for (NodeId target = 0; target < n; ++target) {
    const auto steps = bw_steps_to(t, 0, target);
    EXPECT_LE(steps, static_cast<std::uint64_t>(2 * (n - 1)));
    const auto walk = basic_walk(t, 0, steps);
    EXPECT_EQ(walk.back().node, target);
    // Minimality: no earlier arrival.
    for (std::size_t k = 0; k + 1 < walk.size(); ++k) {
      if (target != 0) {
        EXPECT_NE(walk[k].node, target);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, WalkProperty,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(1, 6)));

TEST(Walk, BwExitPortCycles) {
  const Tree t = star(3);
  // Entering the center via port 1 leaves via port 2, via port 2 -> 0.
  EXPECT_EQ(bw_exit_port(t, {0, 1}), 2);
  EXPECT_EQ(bw_exit_port(t, {0, 2}), 0);
  EXPECT_EQ(bw_exit_port(t, {0, -1}), 0);  // start: port 0
}

TEST(Walk, CbwExitPorts) {
  const Tree t = star(3);
  EXPECT_EQ(cbw_exit_port(t, {0, 1}, /*first=*/true), 1);
  EXPECT_EQ(cbw_exit_port(t, {0, 1}, /*first=*/false), 0);
  EXPECT_EQ(cbw_exit_port(t, {0, 0}, /*first=*/false), 2);  // wraps
}

TEST(Walk, BasicWalkUntilStopsAndReportsSteps) {
  const Tree t = line(10);
  const auto r = basic_walk_until(
      t, 3, [](const WalkPos& p, std::uint64_t) { return p.node == 9; }, 100);
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.pos.node, 9);
  EXPECT_EQ(r.steps, 6u);  // port-0 direction goes toward higher ids

  const auto never = basic_walk_until(
      t, 3, [](const WalkPos&, std::uint64_t) { return false; }, 25);
  EXPECT_FALSE(never.stopped);
  EXPECT_EQ(never.steps, 25u);
}

TEST(Walk, BwThroughDegree2NodesMatchesContractionOrder) {
  // On a line, the basic walk from an internal node first sweeps toward
  // the port-0 side, bounces, and covers the rest.
  const Tree t = line(6);
  const auto walk = basic_walk(t, 2, 10);
  EXPECT_EQ(walk[1].node, 3);  // port 0 points toward higher ids
  EXPECT_EQ(walk[3].node, 5);
  EXPECT_EQ(walk[4].node, 4);  // bounced at the leaf
}

}  // namespace
}  // namespace rvt::tree

// Serialization robustness: exact round-trips, hostile bytes, versioning.
//
// The wire codec ferries orbit sets (and plans/journals) between
// processes and machines; a silent mis-decode would poison verdicts far
// from the corruption site. These tests pin down:
//  * round-trip EXACTNESS over real published OrbitSets (random
//    automata x random trees, port-sensitive and oblivious, fuzzed) —
//    field-for-field orbit equality plus collision tables, and verdict
//    equality when an engine adopts the deserialized set;
//  * rejection of truncation at EVERY prefix length, of any single
//    corrupted byte (checksum), and of a bumped format version;
//  * the atomic-rename filesystem tier: load-after-store equality,
//    misses on absent/corrupt files (never exceptions), and the
//    OrbitCache backing hook serving a second cache from the first's
//    published files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "dist/serialize.hpp"
#include "sim/automaton.hpp"
#include "sim/compiled.hpp"
#include "sim/orbit_cache.hpp"
#include "tree/builders.hpp"
#include "util/failpoint.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace rvt {
namespace {

using sim::CompiledConfigEngine;
using sim::TabularAutomaton;

tree::Tree random_tree(util::Rng& rng) {
  const int n = 3 + static_cast<int>(rng.index(10));
  switch (rng.index(4)) {
    case 0:
      return tree::line(n);
    case 1:
      return tree::spider(3, 1 + static_cast<int>(rng.index(3)));
    case 2:
      return tree::broom(2 + static_cast<int>(rng.index(3)), 2);
    default:
      return tree::line_edge_colored(n, 0);
  }
}

TabularAutomaton random_automaton(util::Rng& rng) {
  const int k = 1 + static_cast<int>(rng.index(5));
  if (rng.index(2) == 0) {
    return sim::random_tree_automaton(k, rng).tabular();
  }
  return sim::lift_to_tree_automaton(sim::random_line_automaton(k, rng))
      .tabular();
}

/// A fully warmed published set of a random binding (every start node,
/// plus the collision tables a battery would touch).
std::shared_ptr<const CompiledConfigEngine::OrbitSet> random_published_set(
    const tree::Tree& t, const TabularAutomaton& a) {
  const CompiledConfigEngine engine(t, a);
  std::vector<tree::NodeId> starts;
  for (tree::NodeId s = 0; s < t.node_count(); ++s) starts.push_back(s);
  engine.warm_orbits(starts);
  for (const tree::NodeId u : starts) {
    for (const tree::NodeId v : starts) {
      const auto& A = engine.orbit(u);
      const auto& B = engine.orbit(v);
      if (A.lambda <= CompiledConfigEngine::kCollisionLimit &&
          B.lambda <= CompiledConfigEngine::kCollisionLimit) {
        engine.cycle_pair_collisions(A.cycle_root, B.cycle_root);
      }
    }
  }
  return engine.snapshot_orbits();
}

void expect_sets_equal(const CompiledConfigEngine::OrbitSet& got,
                       const CompiledConfigEngine::OrbitSet& want) {
  ASSERT_EQ(got.orbits.size(), want.orbits.size());
  ASSERT_EQ(got.has_orbit, want.has_orbit);
  for (std::size_t s = 0; s < want.orbits.size(); ++s) {
    if (!want.has_orbit[s]) continue;
    const auto& g = got.orbits[s];
    const auto& w = want.orbits[s];
    EXPECT_EQ(g.mu, w.mu) << s;
    EXPECT_EQ(g.lambda, w.lambda) << s;
    EXPECT_EQ(g.sn_mu, w.sn_mu) << s;
    EXPECT_EQ(g.cycle_root, w.cycle_root) << s;
    EXPECT_EQ(g.cycle_phase, w.cycle_phase) << s;
    EXPECT_EQ(g.node, w.node) << s;
    EXPECT_EQ(g.in_port, w.in_port) << s;
    EXPECT_EQ(g.first_visit, w.first_visit) << s;
  }
  ASSERT_EQ(got.collisions.size(), want.collisions.size());
  for (std::size_t i = 0; i < want.collisions.size(); ++i) {
    EXPECT_EQ(got.collisions[i].root_a, want.collisions[i].root_a);
    EXPECT_EQ(got.collisions[i].root_b, want.collisions[i].root_b);
    EXPECT_EQ(got.collisions[i].table, want.collisions[i].table);
  }
  EXPECT_EQ(got.collision_index, want.collision_index);
  EXPECT_EQ(got.bytes, want.bytes);
}

TEST(Serialize, OrbitSetRoundTripFuzz) {
  util::Rng rng(0x5e71a71e);
  int cases = 0;
  while (cases < 40) {
    const tree::Tree t = random_tree(rng);
    const TabularAutomaton a = random_automaton(rng);
    if (t.max_degree() > a.max_degree) continue;
    ++cases;
    const auto set = random_published_set(t, a);
    const auto bytes = dist::serialize_orbit_set(*set);
    const auto back = dist::deserialize_orbit_set(bytes);
    expect_sets_equal(*back, *set);
    // Round-trip must also be byte-stable (serialize(deserialize(x)) ==
    // x): the fs tier rewrites files from deserialized sets in no path
    // today, but a drift here would silently fork content addresses.
    EXPECT_EQ(dist::serialize_orbit_set(*back), bytes);
  }
}

TEST(Serialize, AdoptedDeserializedSetAnswersQueriesIdentically) {
  util::Rng rng(0xad0b7ull);
  int cases = 0;
  while (cases < 10) {
    const tree::Tree t = random_tree(rng);
    const TabularAutomaton a = random_automaton(rng);
    if (t.max_degree() > a.max_degree) continue;
    ++cases;
    const auto set = random_published_set(t, a);
    const auto back = dist::deserialize_orbit_set(
        dist::serialize_orbit_set(*set));

    CompiledConfigEngine local(t, a);
    CompiledConfigEngine adopted(t, a);
    adopted.rebind_adopted(back);
    for (tree::NodeId u = 0; u < t.node_count(); ++u) {
      for (tree::NodeId v = 0; v < t.node_count(); ++v) {
        if (u == v) continue;
        const auto want = sim::verify_never_meet_compiled(
            local, local, {u, v, 2, 0, 50000});
        const auto got = sim::verify_never_meet_compiled(
            adopted, adopted, {u, v, 2, 0, 50000});
        ASSERT_EQ(got.met, want.met) << u << " " << v;
        ASSERT_EQ(got.meeting_round, want.meeting_round) << u << " " << v;
        ASSERT_EQ(got.rounds_checked, want.rounds_checked) << u << " " << v;
      }
    }
    EXPECT_EQ(adopted.orbits_extracted(), 0u);  // everything served
  }
}

TEST(Serialize, FramingRejectsTruncationEverywhere) {
  util::Rng rng(0x7126ca7e);
  tree::Tree t = tree::line(5);
  const TabularAutomaton a =
      sim::random_line_automaton(3, rng).tabular();
  const auto set = random_published_set(t, a);
  const auto framed = dist::frame_payload(
      dist::WireKind::kOrbitSet, dist::serialize_orbit_set(*set));
  // Every proper prefix must be rejected (header too short, length
  // mismatch, or checksum over a shortened payload).
  for (std::size_t len = 0; len < framed.size();
       len = len * 2 + 1) {  // exponential probe + the exact boundary set
    const std::span<const std::uint8_t> cut(framed.data(), len);
    EXPECT_THROW(dist::unframe_payload(dist::WireKind::kOrbitSet, cut),
                 dist::SerializeError)
        << len;
  }
  const std::span<const std::uint8_t> almost(framed.data(),
                                             framed.size() - 1);
  EXPECT_THROW(dist::unframe_payload(dist::WireKind::kOrbitSet, almost),
               dist::SerializeError);
}

TEST(Serialize, FramingRejectsEveryCorruptedByteAndWrongKind) {
  util::Rng rng(0xc0441);
  tree::Tree t = tree::line(4);
  const TabularAutomaton a =
      sim::random_line_automaton(2, rng).tabular();
  const auto set = random_published_set(t, a);
  auto framed = dist::frame_payload(dist::WireKind::kOrbitSet,
                                    dist::serialize_orbit_set(*set));
  // Flip one byte at a time across a sample of offsets (every offset in
  // the header, strided through the payload).
  for (std::size_t off = 0; off < framed.size();
       off += off < 48 ? 1 : 97) {
    framed[off] ^= 0x5a;
    EXPECT_THROW(
        dist::unframe_payload(dist::WireKind::kOrbitSet, framed),
        dist::SerializeError)
        << "offset " << off;
    framed[off] ^= 0x5a;
  }
  // Pristine again: accepted.
  EXPECT_NO_THROW(
      dist::unframe_payload(dist::WireKind::kOrbitSet, framed));
  // Right bytes, wrong kind.
  EXPECT_THROW(dist::unframe_payload(dist::WireKind::kShardPlan, framed),
               dist::SerializeError);
}

TEST(Serialize, FramingRefusesForeignVersion) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  auto framed = dist::frame_payload(dist::WireKind::kOrbitSet, payload);
  // The version lives at offset 4 (u16, little-endian).
  framed[4] = static_cast<std::uint8_t>(dist::kWireVersion + 1);
  EXPECT_THROW(dist::unframe_payload(dist::WireKind::kOrbitSet, framed),
               dist::SerializeError);
  framed[4] = static_cast<std::uint8_t>(dist::kWireVersion);
  EXPECT_NO_THROW(
      dist::unframe_payload(dist::WireKind::kOrbitSet, framed));
}

TEST(Serialize, DeserializerRejectsStructuralLies) {
  util::Rng rng(0x57a7e);
  tree::Tree t = tree::line(4);
  const TabularAutomaton a =
      sim::random_line_automaton(2, rng).tabular();
  const auto set = random_published_set(t, a);
  const auto bytes = dist::serialize_orbit_set(*set);
  // Empty payload, and a payload with the tail cut off (arena totals
  // then disagree with the per-orbit headers).
  EXPECT_THROW(dist::deserialize_orbit_set({}), dist::SerializeError);
  const std::span<const std::uint8_t> cut(bytes.data(),
                                          bytes.size() / 2);
  EXPECT_THROW(dist::deserialize_orbit_set(cut), dist::SerializeError);
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(dist::deserialize_orbit_set(padded), dist::SerializeError);
}

TEST(Serialize, DeserializerRejectsOverflowingOrbitHeader) {
  // A forged orbit header with mu = 2^64 - 1 and lambda = 1 wraps
  // mu + lambda to 0: a naive sum-side check would accept empty
  // node/port payloads and the first node_at() would index a 0-length
  // arena window at 2^64 - 1. The validator must refuse.
  dist::WireWriter w;
  w.u32(2);                    // n
  w.u8(1);                     // has_orbit[0]
  w.u8(0);                     // has_orbit[1]
  w.u64(~0ull);                // mu (forged)
  w.u64(1);                    // lambda
  w.u64(0);                    // sn_mu
  w.u32(0);                    // cycle_root
  w.u64(0);                    // cycle_phase
  w.u32(0);                    // node size (consistent with the wrap)
  w.u32(0);                    // port size
  w.u32(2);                    // first_visit size (== n)
  w.u64(0);                    // node arena total
  w.u64(0);                    // port arena total
  w.u64(2);                    // visit arena total
  w.u32(0xFFFFFFFFu);          // visit arena entries (kNever)
  w.u32(0xFFFFFFFFu);
  w.u32(0);                    // no collision pairs
  w.u8(0);                     // no collision index
  EXPECT_THROW(dist::deserialize_orbit_set(w.bytes()),
               dist::SerializeError);
}

class SerializeFsTier : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "serialize-fs-tier-" +
           std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(SerializeFsTier, StoreLoadRoundTripAndMissSemantics) {
  util::Rng rng(0xf57e42);
  tree::Tree t = tree::line(6);
  const TabularAutomaton a =
      sim::random_line_automaton(3, rng).tabular();
  const auto set = random_published_set(t, a);
  const sim::OrbitKey key = sim::combine_orbit_keys(
      sim::tree_orbit_key(t), sim::canonical_automaton_key(a));

  dist::FsOrbitStore store(dir_);
  EXPECT_EQ(store.load(key), nullptr);  // absent: miss, no throw
  store.store(key, set);
  const auto back = store.load(key);
  ASSERT_NE(back, nullptr);
  expect_sets_equal(*back, *set);

  // Corrupt the file: load degrades to a miss, never throws.
  {
    auto bytes = *dist::read_file(store.path_for(key));
    bytes[bytes.size() / 2] ^= 0xff;
    ASSERT_TRUE(dist::write_file_atomic(store.path_for(key), bytes));
  }
  EXPECT_EQ(store.load(key), nullptr);
  // Truncated file: also a miss. (Re-publish first: the corrupt load
  // above QUARANTINED the file aside.)
  store.store(key, set);
  {
    auto bytes = *dist::read_file(store.path_for(key));
    bytes.resize(bytes.size() / 3);
    ASSERT_TRUE(dist::write_file_atomic(store.path_for(key), bytes));
  }
  EXPECT_EQ(store.load(key), nullptr);
}

TEST_F(SerializeFsTier, CorruptFileIsQuarantinedAsideNotRefailed) {
  util::Rng rng(0xdecade);
  tree::Tree t = tree::line(5);
  const TabularAutomaton a = sim::random_line_automaton(2, rng).tabular();
  const auto set = random_published_set(t, a);
  const sim::OrbitKey key = sim::combine_orbit_keys(
      sim::tree_orbit_key(t), sim::canonical_automaton_key(a));

  dist::FsOrbitStore store(dir_);
  store.store(key, set);
  auto bytes = *dist::read_file(store.path_for(key));
  bytes[bytes.size() - 1] ^= 0x01;
  ASSERT_TRUE(dist::write_file_atomic(store.path_for(key), bytes));

  EXPECT_EQ(store.load(key), nullptr);
  auto s = store.stats();
  EXPECT_EQ(s.decode_failures, 1u);
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_FALSE(s.degraded);  // corruption is not tier sickness
  // The file is renamed aside — evidence kept, re-fail loop broken.
  EXPECT_FALSE(std::filesystem::exists(store.path_for(key)));
  EXPECT_TRUE(std::filesystem::exists(store.path_for(key) + ".quarantined-0"));
  // The next load is a clean miss: no second decode, no second rename.
  EXPECT_EQ(store.load(key), nullptr);
  s = store.stats();
  EXPECT_EQ(s.decode_failures, 1u);
  EXPECT_EQ(s.quarantined, 1u);
  // The tier stays healthy: a re-publish serves the key again.
  store.store(key, set);
  EXPECT_NE(store.load(key), nullptr);
  EXPECT_EQ(store.fault_stats().quarantined, 1u);
}

TEST_F(SerializeFsTier, TransientFaultsRetryOnTheBoundedSchedule) {
  util::Rng rng(0x7e7af1);
  tree::Tree t = tree::line(5);
  const TabularAutomaton a = sim::random_line_automaton(2, rng).tabular();
  const auto set = random_published_set(t, a);
  const sim::OrbitKey key = sim::combine_orbit_keys(
      sim::tree_orbit_key(t), sim::canonical_automaton_key(a));
  auto& reg = util::FailPointRegistry::instance();

  dist::FsOrbitStore store(dir_, util::no_delay_policy(3));
  // One injected publish failure: the retry lands the file.
  reg.configure("fs_store.store=err@hit:1");
  store.store(key, set);
  reg.reset();
  EXPECT_EQ(store.stats().store_failures, 0u);
  EXPECT_EQ(store.stats().retries, 1u);
  EXPECT_TRUE(std::filesystem::exists(store.path_for(key)));
  // One injected read failure on an EXISTING file: retried, then served.
  reg.configure("fs_store.load=err@hit:1");
  EXPECT_NE(store.load(key), nullptr);
  reg.reset();
  const auto s = store.stats();
  EXPECT_EQ(s.read_failures, 0u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.exhausted, 0u);
  EXPECT_FALSE(s.degraded);
  // An ABSENT file is a miss on the first attempt — never retried.
  EXPECT_EQ(store.load(sim::OrbitKey{0xabc, 0xdef}), nullptr);
  EXPECT_EQ(store.stats().retries, 2u);
}

TEST_F(SerializeFsTier, PersistentFailureDegradesToComputeThrough) {
  util::Rng rng(0xdead11);
  tree::Tree t = tree::line(5);
  const TabularAutomaton a = sim::random_line_automaton(2, rng).tabular();
  const auto set = random_published_set(t, a);
  auto& reg = util::FailPointRegistry::instance();

  dist::FsOrbitStore store(dir_, util::no_delay_policy(2));
  reg.configure("fs_store.store=err@always");
  for (std::uint64_t i = 0; i < dist::FsOrbitStore::kDegradeAfter; ++i) {
    store.store(sim::OrbitKey{i + 1, i + 1}, set);
  }
  reg.reset();
  const auto s = store.stats();
  EXPECT_EQ(s.exhausted, dist::FsOrbitStore::kDegradeAfter);
  EXPECT_TRUE(s.degraded);
  EXPECT_TRUE(store.fault_stats().degraded);
  // Degradation is sticky compute-through: with the fault GONE, stores
  // are no-ops and loads are misses — the sweep stays correct, the dead
  // tier stops being paid for.
  const sim::OrbitKey key{0x77, 0x88};
  store.store(key, set);
  EXPECT_FALSE(std::filesystem::exists(store.path_for(key)));
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_EQ(store.stats().stores, dist::FsOrbitStore::kDegradeAfter);
}

TEST_F(SerializeFsTier, SuccessResetsTheDegradationStreak) {
  util::Rng rng(0x600d);
  tree::Tree t = tree::line(5);
  const TabularAutomaton a = sim::random_line_automaton(2, rng).tabular();
  const auto set = random_published_set(t, a);
  auto& reg = util::FailPointRegistry::instance();

  dist::FsOrbitStore store(dir_, util::no_delay_policy(2));
  // kDegradeAfter - 1 exhausted publishes, then a success, then one
  // more failure: the streak broke, so the store must NOT be degraded.
  reg.configure("fs_store.store=err@always");
  for (std::uint64_t i = 0; i + 1 < dist::FsOrbitStore::kDegradeAfter; ++i) {
    store.store(sim::OrbitKey{i + 1, i + 1}, set);
  }
  reg.reset();
  store.store(sim::OrbitKey{0x50, 0x50}, set);  // succeeds, resets streak
  reg.configure("fs_store.store=err@always");
  store.store(sim::OrbitKey{0x51, 0x51}, set);
  reg.reset();
  EXPECT_EQ(store.stats().exhausted, dist::FsOrbitStore::kDegradeAfter);
  EXPECT_FALSE(store.stats().degraded);
}

TEST_F(SerializeFsTier, UnframeFailpointSurfacesAsSerializeError) {
  auto& reg = util::FailPointRegistry::instance();
  const std::vector<std::uint8_t> framed =
      dist::frame_payload(dist::WireKind::kShardPlan, {});
  reg.configure("wire.unframe=err@always");
  EXPECT_THROW(dist::unframe_payload(dist::WireKind::kShardPlan, framed),
               dist::SerializeError);
  reg.reset();
  EXPECT_NO_THROW(dist::unframe_payload(dist::WireKind::kShardPlan, framed));
}

TEST_F(SerializeFsTier, SecondCacheAdoptsFirstCachesPublishes) {
  // Two OrbitCaches over one directory stand in for two processes on a
  // shared filesystem: everything cache A publishes, cache B must adopt
  // from the tier without its workers extracting anything.
  util::Rng rng(0x2ca15e5);
  tree::Tree t = tree::line(7);
  const TabularAutomaton a =
      sim::random_line_automaton(4, rng).tabular();
  const sim::OrbitKey key = sim::combine_orbit_keys(
      sim::tree_orbit_key(t), sim::canonical_automaton_key(a));

  dist::FsOrbitStore tier_a(dir_);
  sim::OrbitCache cache_a;
  cache_a.set_backing(&tier_a);
  ASSERT_EQ(cache_a.acquire(key), nullptr);  // claim (tier empty)
  cache_a.publish(key, random_published_set(t, a));
  EXPECT_EQ(cache_a.stats().tier_stores, 1u);

  dist::FsOrbitStore tier_b(dir_);
  sim::OrbitCache cache_b;
  cache_b.set_backing(&tier_b);
  const auto adopted = cache_b.acquire(key);  // tier hit, no claim
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(cache_b.stats().tier_hits, 1u);
  // Now in cache_b's memory table: the next acquire is a plain hit.
  const auto again = cache_b.acquire(key);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(cache_b.stats().hits, 1u);
  expect_sets_equal(*adopted, *cache_a.acquire(key));
}

}  // namespace
}  // namespace rvt

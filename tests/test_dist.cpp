// The distributed-enumeration subsystem: plans, journals, shard runs,
// merges — and above all RESUMABILITY: a shard killed mid-run (journal
// truncated mid-record) must complete on rerun without recomputing one
// committed index, and the merged totals must be bit-identical to a
// single-process sweep however the index space was cut.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "dist/merge.hpp"
#include "dist/runner.hpp"
#include "dist/serialize.hpp"
#include "dist/shard_plan.hpp"
#include "dist/workload.hpp"
#include "sim/orbit_cache.hpp"

namespace rvt {
namespace {

/// Scratch directory per test, removed afterwards.
class DistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(
               "dist-test-" +
               std::string(
                   ::testing::UnitTest::GetInstance()->current_test_info()
                       ->name()) +
               "-" + std::to_string(static_cast<unsigned>(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& leaf) const { return dir_ + "/" + leaf; }
  std::string dir_;
};

// ---- shard plans ----------------------------------------------------------

TEST_F(DistTest, PlanIsDeterministicAndContentAddressed) {
  const auto w = dist::EnumWorkload::parse("e10:6");
  const dist::ShardPlan p1 = dist::make_shard_plan(*w, 4);
  const dist::ShardPlan p2 = dist::make_shard_plan(*w, 4);
  ASSERT_EQ(p1.shards.size(), 4u);
  EXPECT_EQ(p1.fingerprint, p2.fingerprint);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p1.shards[i].id, p2.shards[i].id) << i;
  }
  // Contiguous partition of [0, count).
  std::uint64_t expect = 0;
  for (const auto& s : p1.shards) {
    EXPECT_EQ(s.begin, expect);
    EXPECT_LT(s.begin, s.end);
    expect = s.end;
  }
  EXPECT_EQ(expect, p1.count);
  EXPECT_EQ(p1.count, w->count());

  // Different grid content -> different fingerprint AND different shard
  // ids (ids hash the fingerprint).
  const auto w2 = dist::EnumWorkload::parse("e10:7");
  const dist::ShardPlan q = dist::make_shard_plan(*w2, 4);
  EXPECT_FALSE(q.fingerprint == p1.fingerprint);
  EXPECT_FALSE(q.shards[0].id == p1.shards[0].id);
  // Different partition of the same workload -> same fingerprint,
  // different ids.
  const dist::ShardPlan r = dist::make_shard_plan(*w, 2);
  EXPECT_EQ(r.fingerprint, p1.fingerprint);
  EXPECT_FALSE(r.shards[0].id == p1.shards[0].id);
}

TEST_F(DistTest, PlanFileRoundTripAndTamperRejection) {
  const auto w = dist::EnumWorkload::parse("e10:5");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 3);
  const std::string p = path("plan.bin");
  dist::write_plan(p, plan);
  const dist::ShardPlan back = dist::load_plan(p);
  EXPECT_EQ(back.workload_spec, plan.workload_spec);
  EXPECT_EQ(back.count, plan.count);
  EXPECT_EQ(back.max_rounds, plan.max_rounds);
  EXPECT_EQ(back.fingerprint, plan.fingerprint);
  ASSERT_EQ(back.shards.size(), plan.shards.size());
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    EXPECT_EQ(back.shards[i].id, plan.shards[i].id);
  }

  // A flipped byte anywhere fails the frame checksum.
  auto bytes = *dist::read_file(p);
  bytes[bytes.size() - 3] ^= 0x40;
  ASSERT_TRUE(dist::write_file_atomic(p, bytes));
  EXPECT_THROW(dist::load_plan(p), dist::SerializeError);

  // Structural tampering behind a VALID frame: forge a shard id and
  // re-frame — deserialize_plan must re-derive and refuse.
  dist::ShardPlan forged = plan;
  forged.shards[1].id.lo ^= 1;
  const auto framed = dist::frame_payload(dist::WireKind::kShardPlan,
                                          dist::serialize_plan(forged));
  ASSERT_TRUE(dist::write_file_atomic(p, framed));
  EXPECT_THROW(dist::load_plan(p), dist::SerializeError);

  EXPECT_THROW(dist::load_plan(path("absent.bin")), dist::SerializeError);
}

// ---- journals -------------------------------------------------------------

dist::JournalHeader test_header(std::uint64_t begin, std::uint64_t end) {
  dist::JournalHeader h;
  h.shard_id = {0x1111, 0x2222};
  h.fingerprint = {0x3333, 0x4444};
  h.begin = begin;
  h.end = end;
  return h;
}

TEST_F(DistTest, JournalRoundTripSealAndDoubleCompletion) {
  const std::string p = path("shard.journal");
  const dist::JournalHeader h = test_header(10, 15);
  {
    auto w = dist::JournalWriter::create(p, h);
    for (std::uint64_t i = 10; i < 15; ++i) w.record(i, i * 100);
    EXPECT_THROW(w.record(15, 0), dist::SerializeError);  // past end
    w.finish(w.sum());
    EXPECT_THROW(w.finish(w.sum()), dist::SerializeError);  // seal twice
  }
  const auto st = dist::read_journal(p);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->complete);
  EXPECT_EQ(st->next_index, 15u);
  EXPECT_EQ(st->sum, (10u + 11 + 12 + 13 + 14) * 100);
  EXPECT_EQ(st->header.begin, 10u);
  EXPECT_EQ(st->header.shard_id, h.shard_id);
  // Resuming a sealed journal is refused — the caller's double-completion
  // branch.
  EXPECT_THROW(dist::JournalWriter::resume(p, h, *st),
               dist::SerializeError);
  EXPECT_FALSE(dist::read_journal(path("absent.journal")).has_value());
}

TEST_F(DistTest, JournalScanStopsAtTornOrCorruptTail) {
  const std::string p = path("shard.journal");
  const dist::JournalHeader h = test_header(0, 8);
  {
    auto w = dist::JournalWriter::create(p, h);
    for (std::uint64_t i = 0; i < 6; ++i) w.record(i, 7);
  }  // NOT sealed: simulates a killed shard
  const std::uint64_t full = std::filesystem::file_size(p);
  ASSERT_EQ(full, 64u + 6 * 32u);  // preamble + 6 records

  // Torn tail: cut mid-record. The scan keeps the 4 whole records.
  std::filesystem::resize_file(p, 64 + 4 * 32 + 13);
  auto st = dist::read_journal(p);
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->complete);
  EXPECT_EQ(st->next_index, 4u);
  EXPECT_EQ(st->sum, 4u * 7);
  EXPECT_EQ(st->valid_bytes, 64u + 4 * 32);

  // Corrupt a MIDDLE record: everything after it is untrusted.
  {
    auto bytes = *dist::read_file(p);
    bytes[64 + 1 * 32 + 20] ^= 0xff;
    ASSERT_TRUE(dist::write_file_atomic(p, bytes));
  }
  st = dist::read_journal(p);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->next_index, 1u);
  EXPECT_EQ(st->valid_bytes, 64u + 1 * 32);

  // A corrupt preamble is unusable (recreate, says run_shard).
  std::filesystem::resize_file(p, 40);
  EXPECT_THROW(dist::read_journal(p), dist::SerializeError);
}

TEST_F(DistTest, JournalRefusesForeignVersion) {
  const std::string p = path("shard.journal");
  { dist::JournalWriter::create(p, test_header(0, 4)).record(0, 1); }
  auto bytes = *dist::read_file(p);
  bytes[4] ^= 0x01;  // preamble version u16 at offset 4
  ASSERT_TRUE(dist::write_file_atomic(p, bytes));
  EXPECT_THROW(dist::read_journal(p), dist::SerializeError);
}

// ---- shard runs + merge ---------------------------------------------------

/// Single-process reference total of a workload.
std::uint64_t single_process_total(const dist::EnumWorkload& w) {
  sim::EnumerationContext ctx(w.grids(), w.max_rounds(), nullptr);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < w.count(); ++i) {
    total += w.defeats(ctx, i);
  }
  return total;
}

TEST_F(DistTest, ShardedRunMergesBitIdenticalToSingleProcess) {
  const auto w = dist::EnumWorkload::parse("e10:5");
  const std::uint64_t want = single_process_total(*w);
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 3);
  // Shards share one fs cache tier, like processes on a shared mount.
  dist::FsOrbitStore tier(path("cache"));
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    sim::OrbitCache cache;
    cache.set_backing(&tier);
    const auto stats =
        dist::run_shard(*w, plan, s, path("journals"), &cache);
    EXPECT_FALSE(stats.already_complete);
    EXPECT_EQ(stats.computed, plan.shards[s].end - plan.shards[s].begin);
  }
  const dist::MergeResult merged =
      dist::merge_journals(plan, path("journals"));
  EXPECT_EQ(merged.total, want);
  EXPECT_EQ(merged.indices, w->count());

  // Double completion: a rerun detects the sealed journal and computes
  // NOTHING.
  const auto rerun = dist::run_shard(*w, plan, 0, path("journals"));
  EXPECT_TRUE(rerun.already_complete);
  EXPECT_EQ(rerun.computed, 0u);
}

TEST_F(DistTest, ResumeAfterKillRecomputesOnlyUncommittedIndices) {
  const auto w = dist::EnumWorkload::parse("e10:5");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  const dist::ShardSpec& spec = plan.shards[0];
  const std::uint64_t width = spec.end - spec.begin;
  ASSERT_GT(width, 10u);

  // Full run, note the sealed sum.
  const auto first = dist::run_shard(*w, plan, 0, path("journals"));
  EXPECT_EQ(first.computed, width);
  const std::string jpath = dist::journal_path(path("journals"), spec);

  // Kill simulation: truncate MID-RECORD after 7 committed indices (the
  // torn tail is exactly what a SIGKILL mid-append leaves).
  std::filesystem::resize_file(jpath, 64 + 7 * 32 + 11);

  const auto resumed = dist::run_shard(*w, plan, 0, path("journals"));
  EXPECT_FALSE(resumed.already_complete);
  EXPECT_EQ(resumed.committed_before, 7u);       // nothing before recomputed
  EXPECT_EQ(resumed.computed, width - 7);        // only the gap
  EXPECT_EQ(resumed.sum, first.sum);             // same aggregate

  // And the journal is sealed again: reruns detect double completion,
  // merges accept it.
  const auto rerun = dist::run_shard(*w, plan, 0, path("journals"));
  EXPECT_TRUE(rerun.already_complete);
  const auto st = dist::read_journal(jpath);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->complete);
  EXPECT_EQ(st->sum, first.sum);
}

TEST_F(DistTest, MergeRefusesPartialForeignOrMissingJournals) {
  const auto w = dist::EnumWorkload::parse("e10:4");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  // Nothing run yet: missing journals.
  EXPECT_THROW(dist::merge_journals(plan, path("journals")),
               dist::SerializeError);
  // Shard 0 complete, shard 1 missing.
  dist::run_shard(*w, plan, 0, path("journals"));
  EXPECT_THROW(dist::merge_journals(plan, path("journals")),
               dist::SerializeError);
  // Shard 1 present but UNSEALED (simulated kill): still refused.
  dist::run_shard(*w, plan, 1, path("journals"));
  const std::string j1 = dist::journal_path(path("journals"), plan.shards[1]);
  const std::uint64_t sealed_size = std::filesystem::file_size(j1);
  std::filesystem::resize_file(j1, sealed_size - 32);  // drop the seal
  EXPECT_THROW(dist::merge_journals(plan, path("journals")),
               dist::SerializeError);
  // Reseal by rerun; merge now equals the single-process total.
  dist::run_shard(*w, plan, 1, path("journals"));
  const auto merged = dist::merge_journals(plan, path("journals"));
  EXPECT_EQ(merged.total, single_process_total(*w));

  // A journal from a DIFFERENT plan under the expected filename is
  // rejected by the preamble binding.
  const auto w2 = dist::EnumWorkload::parse("e10:5");
  const dist::ShardPlan plan2 = dist::make_shard_plan(*w2, 2);
  dist::run_shard(*w2, plan2, 0, path("journals2"));
  std::filesystem::copy_file(
      dist::journal_path(path("journals2"), plan2.shards[0]),
      dist::journal_path(path("journals"), plan.shards[0]),
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(dist::merge_journals(plan, path("journals")),
               dist::SerializeError);
}

TEST_F(DistTest, RunShardRefusesForeignPlan) {
  const auto w = dist::EnumWorkload::parse("e10:4");
  const auto w2 = dist::EnumWorkload::parse("e10:5");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  EXPECT_THROW(dist::run_shard(*w2, plan, 0, path("journals")),
               std::invalid_argument);
  EXPECT_THROW(dist::run_shard(*w, plan, 2, path("journals")),
               std::invalid_argument);
}

TEST_F(DistTest, ResumeSurvivesTruncationAtEveryByteBoundary) {
  // The exhaustive crash sweep: a 32-shard plan keeps one shard's
  // journal small enough (preamble + ~38 records + seal) to truncate
  // after EVERY byte length and resume each time. For each prefix the
  // forward scan must recover exactly the committed records — the
  // resumed run recomputes precisely the gap, and the sealed sum is
  // bit-identical to the uninterrupted run's.
  const auto w = dist::EnumWorkload::parse("e10:4");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 32);
  const dist::ShardSpec& spec = plan.shards[0];
  const std::uint64_t width = spec.end - spec.begin;
  const std::string jpath = dist::journal_path(path("journals"), spec);

  const dist::ShardRunStats full =
      dist::run_shard(*w, plan, 0, path("journals"), nullptr);
  const auto bytes = dist::read_file(jpath);
  ASSERT_TRUE(bytes.has_value());
  constexpr std::size_t kPreamble = 64, kRecord = 32;
  ASSERT_EQ(bytes->size(), kPreamble + (width + 1) * kRecord);

  for (std::size_t len = 0; len <= bytes->size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes->begin(),
                                           bytes->begin() + len);
    ASSERT_TRUE(dist::write_file_atomic(jpath, prefix)) << len;
    const dist::ShardRunStats resumed =
        dist::run_shard(*w, plan, 0, path("journals"), nullptr);
    // A prefix shorter than the preamble (or ending inside it) cannot
    // identify the shard: the journal is recreated from scratch. Past
    // it, every COMPLETE record is kept; a torn record or the missing
    // seal recomputes exactly the tail. The full file is a detected
    // double completion.
    const std::uint64_t committed =
        len < kPreamble ? 0
                        : std::min<std::uint64_t>((len - kPreamble) / kRecord,
                                                  width);
    if (len == bytes->size()) {
      EXPECT_TRUE(resumed.already_complete) << len;
    } else {
      EXPECT_FALSE(resumed.already_complete) << len;
      EXPECT_EQ(resumed.committed_before, committed) << len;
      EXPECT_EQ(resumed.computed, width - committed) << len;
    }
    EXPECT_EQ(resumed.sum, full.sum) << len;
  }
}

TEST_F(DistTest, RunShardSurfacesJournalDirCreationFailure) {
  // The journal dir's parent is a regular FILE: create_directories must
  // fail, and run_shard must surface it as SerializeError instead of
  // charging on to fopen a path that cannot exist.
  const auto w = dist::EnumWorkload::parse("e10:4");
  const dist::ShardPlan plan = dist::make_shard_plan(*w, 2);
  const std::string blocker = path("blocker");
  ASSERT_TRUE(dist::write_file_atomic(blocker, std::vector<std::uint8_t>{1}));
  EXPECT_THROW(dist::run_shard(*w, plan, 0, blocker + "/journals"),
               dist::SerializeError);
}

TEST_F(DistTest, WorkloadSpecParsing) {
  EXPECT_EQ(dist::EnumWorkload::parse("e10")->spec(), "e10:14");
  EXPECT_EQ(dist::EnumWorkload::parse("e10:5")->spec(), "e10:5");
  EXPECT_THROW(dist::EnumWorkload::parse("e11"), std::invalid_argument);
  EXPECT_THROW(dist::EnumWorkload::parse("e10:"), std::invalid_argument);
  EXPECT_THROW(dist::EnumWorkload::parse("e10:2"), std::invalid_argument);
  EXPECT_THROW(dist::EnumWorkload::parse("e10:abc"), std::invalid_argument);
  EXPECT_THROW(dist::EnumWorkload::parse("e10:7x"), std::invalid_argument);
}

}  // namespace
}  // namespace rvt

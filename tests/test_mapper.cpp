#include <gtest/gtest.h>

#include "core/explo.hpp"
#include "core/mapper.hpp"
#include "tree/builders.hpp"
#include "tree/walk.hpp"
#include "util/rng.hpp"

namespace rvt::core {
namespace {

using tree::NodeId;
using tree::Tree;

/// Drives a MapperAgent alone on the tree from `start` until done.
MapperAgent run_mapper(const Tree& t, NodeId start) {
  MapperAgent m;
  tree::WalkPos pos{start, -1};
  const std::uint64_t cap = 4 * static_cast<std::uint64_t>(t.node_count()) + 8;
  for (std::uint64_t r = 0; r < cap && !m.done(); ++r) {
    const sim::Observation obs{pos.in_port, t.degree(pos.node)};
    const int act = m.step(obs);
    if (act == sim::kStay) {
      pos.in_port = -1;
      continue;
    }
    const tree::Port out = static_cast<tree::Port>(act % t.degree(pos.node));
    const tree::NodeId next = t.neighbor(pos.node, out);
    pos = {next, t.reverse_port(pos.node, out)};
  }
  return m;
}

TEST(Mapper, ReconstructsBuildersExactly) {
  util::Rng rng(9);
  std::vector<Tree> trees = {
      Tree::single_node(),  tree::line(2),          tree::line(9),
      tree::star(5),        tree::spider(3, 3),     tree::complete_binary(3),
      tree::complete_kary(3, 2),                    tree::binomial(4),
      tree::broom(3, 3),    tree::double_broom(4, 2, 3),
      tree::side_tree(4, 0b101)};
  for (int rep = 0; rep < 6; ++rep) {
    trees.push_back(tree::randomize_ports(
        tree::random_with_leaves(static_cast<NodeId>(10 + 7 * rep),
                                 static_cast<NodeId>(2 + rep % 4), rng),
        rng));
  }
  for (const auto& t : trees) {
    for (NodeId start : {NodeId{0},
                         static_cast<NodeId>(t.node_count() / 2),
                         static_cast<NodeId>(t.node_count() - 1)}) {
      MapperAgent m = run_mapper(t, start);
      ASSERT_TRUE(m.done()) << "n=" << t.node_count() << " start=" << start;
      const Tree recon = m.reconstruction();
      ASSERT_EQ(recon.node_count(), t.node_count());
      // Port-exact isomorphism rooted at the start.
      EXPECT_EQ(port_code_vec(t, start, -1), port_code_vec(recon, 0, -1))
          << "n=" << t.node_count() << " start=" << start;
      if (t.node_count() > 1) {
        EXPECT_EQ(m.steps_walked(),
                  2 * static_cast<std::uint64_t>(t.node_count() - 1));
      }
    }
  }
}

TEST(Mapper, ExploAgreesWithReconstruction) {
  // Everything the Explo oracle grants (DESIGN.md S1) is derivable from
  // the reconstruction an agent can physically walk out: the numeric
  // outputs must coincide.
  util::Rng rng(33);
  for (int rep = 0; rep < 12; ++rep) {
    const Tree t = tree::randomize_ports(
        tree::random_with_leaves(static_cast<NodeId>(12 + rng.index(40)),
                                 static_cast<NodeId>(2 + rng.index(4)), rng),
        rng);
    const NodeId start = static_cast<NodeId>(rng.index(t.node_count()));
    MapperAgent m = run_mapper(t, start);
    ASSERT_TRUE(m.done());
    const Tree recon = m.reconstruction();

    const ExploInfo real = explo(t, start);
    const ExploInfo learned = explo(recon, 0);
    EXPECT_EQ(learned.kind, real.kind);
    EXPECT_EQ(learned.n, real.n);
    EXPECT_EQ(learned.nu, real.nu);
    EXPECT_EQ(learned.ell, real.ell);
    EXPECT_EQ(learned.steps_to_vhat, real.steps_to_vhat);
    EXPECT_EQ(learned.tprime_arrivals_to_target,
              real.tprime_arrivals_to_target);
    EXPECT_EQ(learned.tsteps_to_target, real.tsteps_to_target);
    EXPECT_EQ(learned.central_port_at_target, real.central_port_at_target);
  }
}

TEST(Mapper, MemoryIsLinearithmic) {
  // The reference mapper pays Theta(n log n) bits — the cost the paper's
  // algorithm avoids.
  const Tree small = tree::line(16);
  const Tree large = tree::line(1024);
  MapperAgent ms = run_mapper(small, 3);
  MapperAgent ml = run_mapper(large, 3);
  EXPECT_GT(ml.memory_bits(), 40 * ms.memory_bits());
}

TEST(Mapper, ReconstructionBeforeDoneThrows) {
  MapperAgent m;
  EXPECT_THROW(m.reconstruction(), std::logic_error);
}

}  // namespace
}  // namespace rvt::core

// The service tier's transport floor: framing over hostile byte streams.
//
// The contract under test (net/frame.hpp):
//  * a frame survives ANY read fragmentation — 1-byte dribbles included;
//  * a truncated message is NEVER accepted: end-of-stream mid-frame is a
//    SerializeError, only a close at an exact frame boundary is kEof;
//  * a reader never blocks forever on a silent peer — kFrameStallLimit
//    consecutive timeouts mid-frame throw NetError;
//  * the header's length claim is checked against kMaxWirePayloadBytes
//    BEFORE any payload byte is read or allocated;
//  * a foreign format version is WireVersionError — recognizably an
//    incompatible peer, not corruption.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <thread>

#include "dist/serialize.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace rvt {
namespace {

// ---- scripted transports --------------------------------------------------

/// Replays a byte script with configurable fragmentation; after the
/// script is exhausted it either reports clean EOF or times out forever
/// (a peer that went silent without closing).
class FakeStream final : public net::ByteStream {
 public:
  FakeStream(std::vector<std::uint8_t> script, std::size_t max_per_read,
             bool eof_after = true)
      : script_(std::move(script)),
        max_per_read_(max_per_read),
        eof_after_(eof_after) {}

  std::size_t read_some(void* p, std::size_t n) override {
    ++reads_;
    if (pos_ >= script_.size()) {
      if (eof_after_) return 0;
      throw net::NetTimeout("fake: timed out");
    }
    const std::size_t take =
        std::min({n, max_per_read_, script_.size() - pos_});
    std::memcpy(p, script_.data() + pos_, take);
    pos_ += take;
    return take;
  }

  void write_all(const void*, std::size_t) override {}

  std::size_t reads() const { return reads_; }
  std::size_t consumed() const { return pos_; }

 private:
  std::vector<std::uint8_t> script_;
  std::size_t max_per_read_;
  bool eof_after_;
  std::size_t pos_ = 0;
  std::size_t reads_ = 0;
};

std::vector<std::uint8_t> sample_payload() {
  std::vector<std::uint8_t> p;
  for (int i = 0; i < 100; ++i) p.push_back(static_cast<std::uint8_t>(i));
  return p;
}

std::vector<std::uint8_t> sample_frame() {
  const auto p = sample_payload();
  return dist::frame_payload(dist::WireKind::kHeartbeat, p);
}

// ---- fragmentation --------------------------------------------------------

TEST(NetFrame, SurvivesOneByteDribbles) {
  FakeStream s(sample_frame(), /*max_per_read=*/1);
  net::Frame f;
  ASSERT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kHeartbeat);
  EXPECT_EQ(f.payload, sample_payload());
  // Every byte really did arrive alone.
  EXPECT_GE(s.reads(), sample_frame().size());
}

TEST(NetFrame, BackToBackFramesThenCleanEof) {
  auto script = sample_frame();
  const auto second = dist::frame_payload(dist::WireKind::kSeal, {});
  script.insert(script.end(), second.begin(), second.end());
  FakeStream s(std::move(script), /*max_per_read=*/7);
  net::Frame f;
  ASSERT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kHeartbeat);
  ASSERT_EQ(net::recv_frame(s, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kSeal);
  EXPECT_TRUE(f.payload.empty());
  // The peer closed exactly at a frame boundary: clean EOF, not an error.
  EXPECT_EQ(net::recv_frame(s, f), net::RecvStatus::kEof);
}

// ---- torn tails -----------------------------------------------------------

TEST(NetFrame, TornPayloadTailIsTruncationNotAFrame) {
  auto script = sample_frame();
  script.pop_back();  // lose the last payload byte, then EOF
  FakeStream s(std::move(script), /*max_per_read=*/3);
  net::Frame f;
  EXPECT_THROW(net::recv_frame(s, f), dist::SerializeError);
}

TEST(NetFrame, TornHeaderIsTruncationNotAFrame) {
  auto script = sample_frame();
  script.resize(dist::kWireFrameBytes / 2);  // half a header, then EOF
  FakeStream s(std::move(script), /*max_per_read=*/1);
  net::Frame f;
  EXPECT_THROW(net::recv_frame(s, f), dist::SerializeError);
}

TEST(NetFrame, CorruptPayloadByteIsChecksumRefusal) {
  auto script = sample_frame();
  script[dist::kWireFrameBytes + 5] ^= 0x40;
  FakeStream s(std::move(script), /*max_per_read=*/64);
  net::Frame f;
  EXPECT_THROW(net::recv_frame(s, f), dist::SerializeError);
}

// ---- stalls ---------------------------------------------------------------

TEST(NetFrame, SilentPeerAtBoundaryIsIdleOnlyWhenOptedIn) {
  FakeStream quiet({}, 1, /*eof_after=*/false);  // times out forever
  net::Frame f;
  EXPECT_EQ(net::recv_frame(quiet, f, /*idle_ok=*/true),
            net::RecvStatus::kIdle);
  // Without the opt-in a perpetual boundary stall is a hard error, not a
  // hang: the stall limit still applies.
  FakeStream quiet2({}, 1, /*eof_after=*/false);
  EXPECT_THROW(net::recv_frame(quiet2, f, /*idle_ok=*/false), net::NetError);
  EXPECT_LE(quiet2.reads(), net::kFrameStallLimit + 1);
}

TEST(NetFrame, StallMidFrameNeverBlocksForeverAndNeverGoesIdle) {
  auto script = sample_frame();
  script.resize(dist::kWireFrameBytes + 10);  // header + partial payload
  FakeStream s(std::move(script), /*max_per_read=*/4, /*eof_after=*/false);
  net::Frame f;
  // Even with idle_ok, a frame already begun must not be reported idle —
  // the stall limit turns the silence into a hard NetError.
  EXPECT_THROW(net::recv_frame(s, f, /*idle_ok=*/true), net::NetError);
  EXPECT_LE(s.reads(),
            s.consumed() + net::kFrameStallLimit + 1);
}

// ---- header validation (satellite: wire-format hardening) -----------------

/// Builds a 32-byte header by hand, byte-level — no WireHeader struct
/// access, so the test also documents the layout.
std::vector<std::uint8_t> raw_header(std::uint32_t magic,
                                     std::uint16_t version,
                                     std::uint16_t kind,
                                     std::uint64_t payload_bytes,
                                     std::uint64_t checksum,
                                     std::uint64_t reserved) {
  dist::WireWriter w;
  w.u32(magic);
  w.u16(version);
  w.u16(kind);
  w.u64(payload_bytes);
  w.u64(checksum);
  w.u64(reserved);
  return w.take();
}

TEST(WireHeader, OversizedLengthRefusedBeforePayloadIsTouched) {
  const auto header = raw_header(
      dist::kWireMagic, dist::kWireVersion,
      static_cast<std::uint16_t>(dist::WireKind::kJournalChunk),
      dist::kMaxWirePayloadBytes + 1, 0, 0);
  EXPECT_THROW(dist::validate_frame_header(header), dist::SerializeError);
  // Through the stream reader: the forged length must refuse after the
  // 32 header bytes, never read (or allocate) a payload byte.
  FakeStream s(header, /*max_per_read=*/8, /*eof_after=*/false);
  net::Frame f;
  EXPECT_THROW(net::recv_frame(s, f), dist::SerializeError);
  EXPECT_EQ(s.consumed(), dist::kWireFrameBytes);
}

TEST(WireHeader, LengthAtTheLimitPassesValidation) {
  const auto header = raw_header(
      dist::kWireMagic, dist::kWireVersion,
      static_cast<std::uint16_t>(dist::WireKind::kOrbitSet),
      dist::kMaxWirePayloadBytes, 0, 0);
  const dist::FrameInfo info = dist::validate_frame_header(header);
  EXPECT_EQ(info.payload_bytes, dist::kMaxWirePayloadBytes);
  EXPECT_EQ(info.kind, dist::WireKind::kOrbitSet);
}

TEST(WireHeader, ForeignVersionIsWireVersionErrorNotCorruption) {
  const auto header = raw_header(
      dist::kWireMagic, dist::kWireVersion + 1,
      static_cast<std::uint16_t>(dist::WireKind::kHello), 0,
      dist::fnv1a64({}), 0);
  // Distinctly a version refusal...
  EXPECT_THROW(dist::validate_frame_header(header), dist::WireVersionError);
  // ...but still catchable as SerializeError, so every pre-existing
  // refuse-and-miss path handles cross-version artifacts unchanged.
  EXPECT_THROW(dist::validate_frame_header(header), dist::SerializeError);
}

TEST(WireHeader, BadMagicIsCorruptionNotAVersionMismatch) {
  const auto header = raw_header(
      dist::kWireMagic ^ 1, dist::kWireVersion,
      static_cast<std::uint16_t>(dist::WireKind::kHello), 0,
      dist::fnv1a64({}), 0);
  try {
    dist::validate_frame_header(header);
    FAIL() << "accepted a bad magic";
  } catch (const dist::WireVersionError&) {
    FAIL() << "bad magic misreported as a version mismatch";
  } catch (const dist::SerializeError&) {
    // expected
  }
}

TEST(WireHeader, ReservedBytesMustBeZero) {
  const auto header = raw_header(
      dist::kWireMagic, dist::kWireVersion,
      static_cast<std::uint16_t>(dist::WireKind::kHello), 0,
      dist::fnv1a64({}), 0xdeadbeef);
  EXPECT_THROW(dist::validate_frame_header(header), dist::SerializeError);
}

TEST(WireHeader, UnframeAppliesTheSameGuards) {
  // A whole-file view with a forged oversized length must refuse on the
  // guard even though the file is obviously shorter — the length field
  // is never trusted before the cap check.
  auto file = raw_header(
      dist::kWireMagic, dist::kWireVersion,
      static_cast<std::uint16_t>(dist::WireKind::kShardPlan),
      dist::kMaxWirePayloadBytes + 7, 0, 0);
  EXPECT_THROW(dist::unframe_payload(dist::WireKind::kShardPlan, file),
               dist::SerializeError);
  // And a cross-version file surfaces as WireVersionError through the
  // same entry point.
  auto foreign = dist::frame_payload(dist::WireKind::kShardPlan, {});
  foreign[4] ^= 0xff;  // version field, bytes [4, 6)
  EXPECT_THROW(dist::unframe_payload(dist::WireKind::kShardPlan, foreign),
               dist::WireVersionError);
}

// ---- the real transport ---------------------------------------------------

TEST(NetSocket, FramesRoundTripOverASocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::TcpStream a(fds[0]), b(fds[1]);
  const auto payload = sample_payload();

  std::thread writer([&] {
    for (int i = 0; i < 3; ++i) {
      net::send_frame(a, dist::WireKind::kJournalChunk, payload);
    }
  });
  net::Frame f;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(net::recv_frame(b, f), net::RecvStatus::kFrame);
    EXPECT_EQ(f.kind, dist::WireKind::kJournalChunk);
    EXPECT_EQ(f.payload, payload);
  }
  writer.join();
}

TEST(NetSocket, ReadTimeoutSurfacesAsIdleAtABoundary) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::TcpStream a(fds[0]), b(fds[1]);
  b.set_read_timeout_ms(10);
  net::Frame f;
  EXPECT_EQ(net::recv_frame(b, f, /*idle_ok=*/true), net::RecvStatus::kIdle);
  // A real frame still gets through after the idle tick.
  net::send_frame(a, dist::WireKind::kHello, {});
  ASSERT_EQ(net::recv_frame(b, f, /*idle_ok=*/true), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kHello);
}

TEST(NetSocket, PeerClosingMidFrameIsATornMessage) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::TcpStream b(fds[1]);
  {
    net::TcpStream a(fds[0]);
    const auto framed = dist::frame_payload(dist::WireKind::kSeal,
                                            sample_payload());
    a.write_all(framed.data(), framed.size() - 1);
  }  // close with one payload byte missing
  net::Frame f;
  EXPECT_THROW(net::recv_frame(b, f), dist::SerializeError);
}

TEST(NetSocket, ListenerHandsOutDistinctSessionsAndUnblocksOnClose) {
  net::TcpListener listener(0);
  ASSERT_NE(listener.port(), 0);

  std::thread client([&] {
    auto c = net::tcp_connect("127.0.0.1", listener.port());
    net::send_frame(*c, dist::WireKind::kHello, {});
  });
  auto session = listener.accept();
  ASSERT_NE(session, nullptr);
  net::Frame f;
  ASSERT_EQ(net::recv_frame(*session, f), net::RecvStatus::kFrame);
  EXPECT_EQ(f.kind, dist::WireKind::kHello);
  client.join();

  // close() from another thread unblocks a pending accept with nullptr.
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.close();
  });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
}

}  // namespace
}  // namespace rvt

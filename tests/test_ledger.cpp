// The write-ahead run ledger: round trip, the exhaustive torn-tail
// sweep, per-byte corruption refusal, and the injected append faults.
//
// The invariant under test is the journal record discipline transplanted
// onto control state: a ledger truncated at ANY byte length recovers
// exactly the fsynced record prefix, a corrupt preamble is a refusal
// (never a guess), and a corrupt record merely ends the valid prefix.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "dist/ledger.hpp"
#include "dist/serialize.hpp"
#include "util/failpoint.hpp"

namespace rvt {
namespace {

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "ledger-test-" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()) +
           "-" + std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    util::FailPointRegistry::instance().reset();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& leaf) const { return dir_ + "/" + leaf; }
  std::string dir_;
};

dist::LedgerHeader test_header() {
  dist::LedgerHeader h;
  h.fingerprint = {0x1234, 0x5678};
  h.shard_count = 6;
  return h;
}

/// A representative control-state sequence: epoch, a grant, a failure,
/// a re-grant, a seal, a checkpoint.
std::vector<dist::LedgerRecord> test_records() {
  using E = dist::LedgerEvent;
  return {{E::kEpoch, 1, 1},  {E::kGrant, 0, 1},      {E::kFail, 0, 1},
          {E::kGrant, 0, 2},  {E::kSeal, 0, 424242},  {E::kCheckpoint, 37, 424242}};
}

TEST_F(LedgerTest, RoundTripAndResumeAppend) {
  const std::string p = dist::ledger_path(dir_);
  const dist::LedgerHeader h = test_header();
  const auto recs = test_records();
  {
    auto w = dist::LedgerWriter::create(p, h);
    for (const auto& r : recs) w.append(r);
  }
  auto st = dist::read_ledger(p);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->header.fingerprint, h.fingerprint);
  EXPECT_EQ(st->header.shard_count, h.shard_count);
  ASSERT_EQ(st->records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(st->records[i].event, recs[i].event) << i;
    EXPECT_EQ(st->records[i].a, recs[i].a) << i;
    EXPECT_EQ(st->records[i].b, recs[i].b) << i;
  }
  EXPECT_EQ(st->valid_bytes, st->file_bytes);

  // Resume appends after the valid prefix.
  {
    auto w = dist::LedgerWriter::resume(p, h, *st);
    w.append({dist::LedgerEvent::kEpoch, 2, 3});
  }
  st = dist::read_ledger(p);
  ASSERT_TRUE(st.has_value());
  ASSERT_EQ(st->records.size(), recs.size() + 1);
  EXPECT_EQ(st->records.back().event, dist::LedgerEvent::kEpoch);
  EXPECT_EQ(st->records.back().a, 2u);

  // A missing ledger is nullopt, not an error — the fresh-campaign case.
  EXPECT_FALSE(dist::read_ledger(path("absent.ledger")).has_value());

  // A ledger from a different campaign must never be extended.
  dist::LedgerHeader foreign = h;
  foreign.fingerprint.lo ^= 1;
  EXPECT_THROW(dist::LedgerWriter::resume(p, foreign, *st),
               dist::SerializeError);
}

TEST_F(LedgerTest, ReplaySurvivesTruncationAtEveryByteBoundary) {
  // The exhaustive crash sweep, same shape as the journal one: truncate
  // the ledger after EVERY byte length. A prefix shorter than the
  // preamble is unusable (throws); past it, exactly the complete
  // records survive, valid_bytes reflects them, and resume+append after
  // each truncation works.
  const std::string p = dist::ledger_path(dir_);
  const dist::LedgerHeader h = test_header();
  const auto recs = test_records();
  {
    auto w = dist::LedgerWriter::create(p, h);
    for (const auto& r : recs) w.append(r);
  }
  const auto bytes = dist::read_file(p);
  ASSERT_TRUE(bytes.has_value());
  constexpr std::size_t kPreamble = 64, kRecord = 32;
  ASSERT_EQ(bytes->size(), kPreamble + recs.size() * kRecord);

  for (std::size_t len = 0; len <= bytes->size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes->begin(),
                                           bytes->begin() + len);
    ASSERT_TRUE(dist::write_file_atomic(p, prefix)) << len;
    if (len < kPreamble) {
      EXPECT_THROW(dist::read_ledger(p), dist::SerializeError) << len;
      continue;
    }
    const auto st = dist::read_ledger(p);
    ASSERT_TRUE(st.has_value()) << len;
    const std::size_t committed = (len - kPreamble) / kRecord;
    ASSERT_EQ(st->records.size(), committed) << len;
    for (std::size_t i = 0; i < committed; ++i) {
      EXPECT_EQ(st->records[i].a, recs[i].a) << len;
      EXPECT_EQ(st->records[i].b, recs[i].b) << len;
    }
    EXPECT_EQ(st->valid_bytes, kPreamble + committed * kRecord) << len;
    EXPECT_EQ(st->file_bytes, len) << len;
    // The torn tail truncates and the ledger stays appendable.
    auto w = dist::LedgerWriter::resume(p, h, *st);
    w.append({dist::LedgerEvent::kCheckpoint, 1, 1});
    const auto again = dist::read_ledger(p);
    ASSERT_TRUE(again.has_value()) << len;
    EXPECT_EQ(again->records.size(), committed + 1) << len;
  }
}

TEST_F(LedgerTest, PerByteCorruptionRefusesOrEndsThePrefix) {
  // Flip every byte of a small ledger, one at a time. Preamble damage
  // makes the file unusable (throws); record damage ends the valid
  // prefix at the damaged record — never a wrong record accepted.
  const std::string p = dist::ledger_path(dir_);
  const dist::LedgerHeader h = test_header();
  const auto recs = test_records();
  {
    auto w = dist::LedgerWriter::create(p, h);
    for (const auto& r : recs) w.append(r);
  }
  const auto clean = dist::read_file(p);
  ASSERT_TRUE(clean.has_value());
  constexpr std::size_t kPreamble = 64, kRecord = 32;

  for (std::size_t pos = 0; pos < clean->size(); ++pos) {
    auto bytes = *clean;
    bytes[pos] ^= 0xff;
    ASSERT_TRUE(dist::write_file_atomic(p, bytes)) << pos;
    if (pos < kPreamble) {
      EXPECT_THROW(dist::read_ledger(p), dist::SerializeError) << pos;
      continue;
    }
    const auto st = dist::read_ledger(p);
    ASSERT_TRUE(st.has_value()) << pos;
    const std::size_t damaged = (pos - kPreamble) / kRecord;
    EXPECT_EQ(st->records.size(), damaged) << pos;
    for (std::size_t i = 0; i < damaged; ++i) {
      EXPECT_EQ(st->records[i].a, recs[i].a) << pos;
      EXPECT_EQ(st->records[i].b, recs[i].b) << pos;
    }
    EXPECT_EQ(st->valid_bytes, kPreamble + damaged * kRecord) << pos;
  }
}

TEST_F(LedgerTest, AppendFailpointSurfacesAsSerializeError) {
  const std::string p = dist::ledger_path(dir_);
  auto w = dist::LedgerWriter::create(p, test_header());
  w.append({dist::LedgerEvent::kEpoch, 1, 1});
  util::FailPointRegistry::instance().configure("ledger.append=err@hit:1");
  EXPECT_THROW(w.append({dist::LedgerEvent::kGrant, 0, 1}),
               dist::SerializeError);
  util::FailPointRegistry::instance().reset();
  // The failed append left no accepted record behind.
  const auto st = dist::read_ledger(p);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->records.size(), 1u);
}

}  // namespace
}  // namespace rvt

// The shard-orchestration loop: launch/reap, requeue-on-death,
// lease-expiry kill of hung runners, bounded attempts into quarantine,
// and the quarantine manifest's flow into a partial merge. Launchers
// fork IN-PROCESS children (no CLI dependency), so the loop's recovery
// decisions are exercised against real processes dying in real ways.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "dist/merge.hpp"
#include "dist/orchestrator.hpp"
#include "dist/runner.hpp"
#include "dist/workload.hpp"
#include "sim/enumeration.hpp"
#include "util/failpoint.hpp"

namespace rvt {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "orch-test-" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()) +
           "-" + std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    workload_ = dist::EnumWorkload::parse("e10:4");
    plan_ = dist::make_shard_plan(*workload_, 4);
    sim::EnumerationContext ctx(workload_->grids(), workload_->max_rounds(),
                                nullptr);
    total_ = 0;
    for (std::uint64_t i = 0; i < workload_->count(); ++i) {
      total_ += workload_->defeats(ctx, i);
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string journal_dir() const { return dir_ + "/journals"; }

  /// Forks a child that arms any injected RVT_FAILPOINTS and runs the
  /// shard — the production runner path, in a disposable process.
  dist::ShardLauncher fork_launcher() {
    return [this](std::size_t shard, unsigned /*attempt*/,
                  const std::vector<std::pair<std::string, std::string>>&
                      env) -> pid_t {
      const pid_t pid = ::fork();
      if (pid != 0) return pid;
      for (const auto& [k, v] : env) ::setenv(k.c_str(), v.c_str(), 1);
      try {
        util::FailPointRegistry::instance().configure_from_env();
        dist::run_shard(*workload_, plan_, shard, journal_dir(), nullptr);
      } catch (...) {
        ::_exit(40);
      }
      ::_exit(0);
    };
  }

  dist::OrchestratorConfig config() {
    dist::OrchestratorConfig cfg;
    cfg.journal_dir = journal_dir();
    cfg.max_concurrent = 2;
    cfg.max_attempts = 3;
    cfg.poll_interval = std::chrono::milliseconds(5);
    return cfg;
  }

  std::string dir_;
  std::unique_ptr<dist::EnumWorkload> workload_;
  dist::ShardPlan plan_;
  std::uint64_t total_ = 0;
};

TEST_F(OrchestratorTest, RejectsAnEmptyConfig) {
  EXPECT_THROW(
      dist::orchestrate(plan_, dist::OrchestratorConfig{}, fork_launcher()),
      std::invalid_argument);
}

TEST_F(OrchestratorTest, HappyPathRunsEveryShardOnce) {
  const auto report = dist::orchestrate(plan_, config(), fork_launcher());
  EXPECT_TRUE(report.all_complete());
  EXPECT_EQ(report.launches, 4u);
  EXPECT_EQ(report.requeues, 0u);
  EXPECT_EQ(report.lease_expiries, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  for (const auto& o : report.shards) {
    EXPECT_TRUE(o.completed);
    EXPECT_FALSE(o.already_complete);
    EXPECT_TRUE(o.failures.empty());
  }
  const auto merged = dist::merge_journals(plan_, journal_dir());
  EXPECT_EQ(merged.total, total_);
  EXPECT_TRUE(merged.complete());
}

TEST_F(OrchestratorTest, SealedShardsAreHonoredWithoutALaunch) {
  for (std::size_t i = 0; i < plan_.shards.size(); ++i) {
    dist::run_shard(*workload_, plan_, i, journal_dir(), nullptr);
  }
  const auto report = dist::orchestrate(plan_, config(), fork_launcher());
  EXPECT_TRUE(report.all_complete());
  EXPECT_EQ(report.launches, 0u);
  for (const auto& o : report.shards) EXPECT_TRUE(o.already_complete);
}

TEST_F(OrchestratorTest, CrashedRunnerRequeuesAndConverges) {
  auto cfg = config();
  // Attempt 1 of every shard dies at its 3rd index (exit 41); the clean
  // retry resumes past the 2 committed indices and seals.
  cfg.first_attempt_env.emplace_back("RVT_FAILPOINTS",
                                     "run_shard.index=crash@hit:3");
  const auto report = dist::orchestrate(plan_, cfg, fork_launcher());
  EXPECT_TRUE(report.all_complete());
  EXPECT_EQ(report.requeues, 4u);
  EXPECT_EQ(report.launches, 8u);
  EXPECT_EQ(report.quarantined, 0u);
  for (const auto& o : report.shards) {
    ASSERT_EQ(o.failures.size(), 1u);
    EXPECT_EQ(o.failures[0].exit_code, util::kFailpointCrashExitCode);
    EXPECT_NE(o.diagnostics().find("exited 41"), std::string::npos);
  }
  EXPECT_EQ(dist::merge_journals(plan_, journal_dir()).total, total_);
}

TEST_F(OrchestratorTest, HungRunnerLosesItsLeaseAndTheShardConverges) {
  auto cfg = config();
  cfg.lease_timeout = std::chrono::milliseconds(150);
  // Attempt 1 of shard 0 hangs without ever touching its journal; the
  // lease must expire, the child be killed, and the retry seal the shard.
  bool hung_once = false;
  dist::ShardLauncher launch =
      [&](std::size_t shard, unsigned attempt,
          const std::vector<std::pair<std::string, std::string>>& env)
      -> pid_t {
    if (shard == 0 && attempt == 1) {
      hung_once = true;
      const pid_t pid = ::fork();
      if (pid != 0) return pid;
      for (;;) ::pause();
    }
    return fork_launcher()(shard, attempt, env);
  };
  const auto report = dist::orchestrate(plan_, cfg, launch);
  EXPECT_TRUE(hung_once);
  EXPECT_TRUE(report.all_complete());
  EXPECT_EQ(report.lease_expiries, 1u);
  EXPECT_GE(report.requeues, 1u);
  ASSERT_EQ(report.shards[0].failures.size(), 1u);
  EXPECT_TRUE(report.shards[0].failures[0].lease_expired);
  EXPECT_NE(report.shards[0].diagnostics().find("lease expired"),
            std::string::npos);
  EXPECT_EQ(dist::merge_journals(plan_, journal_dir()).total, total_);
}

TEST_F(OrchestratorTest, ExhaustedAttemptsQuarantineIntoExplicitGaps) {
  auto cfg = config();
  cfg.max_attempts = 2;
  cfg.env_every_attempt = true;  // the fault re-fires on the retry
  cfg.first_attempt_env.emplace_back("RVT_FAILPOINTS",
                                     "run_shard.index=crash@hit:2");
  const auto report = dist::orchestrate(plan_, cfg, fork_launcher());
  EXPECT_FALSE(report.all_complete());
  EXPECT_EQ(report.quarantined, 4u);
  EXPECT_EQ(report.launches, 8u);  // 2 attempts x 4 shards
  for (const auto& o : report.shards) {
    EXPECT_FALSE(o.completed);
    EXPECT_EQ(o.failures.size(), 2u);
  }

  // The manifest round-trips and turns the plain merge's refusal into
  // an explicit partial result.
  const dist::QuarantineManifest manifest =
      dist::quarantine_manifest(plan_, report);
  ASSERT_EQ(manifest.entries.size(), 4u);
  EXPECT_FALSE(manifest.entries[0].diagnostics.empty());
  const std::string mpath = dir_ + "/quarantine.bin";
  dist::write_quarantine_manifest(mpath, manifest);
  const dist::QuarantineManifest loaded =
      dist::load_quarantine_manifest(mpath);
  EXPECT_EQ(loaded.fingerprint, plan_.fingerprint);
  ASSERT_EQ(loaded.entries.size(), 4u);
  EXPECT_EQ(loaded.entries[2].diagnostics, manifest.entries[2].diagnostics);

  EXPECT_THROW(dist::merge_journals(plan_, journal_dir()),
               dist::SerializeError);
  const auto partial = dist::merge_journals(plan_, journal_dir(), &loaded);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.covered, 0u);
  EXPECT_EQ(partial.total, 0u);
  ASSERT_EQ(partial.missing.size(), 4u);
  std::uint64_t missing = 0;
  for (const auto& [b, e] : partial.missing) missing += e - b;
  EXPECT_EQ(missing, plan_.count);
}

TEST_F(OrchestratorTest, PartialQuarantineMergesTheHealthyShards) {
  auto cfg = config();
  cfg.max_attempts = 1;
  // Only shard 2's launch dies; every other shard runs clean.
  dist::ShardLauncher launch =
      [&](std::size_t shard, unsigned attempt,
          const std::vector<std::pair<std::string, std::string>>& env)
      -> pid_t {
    if (shard == 2) {
      const pid_t pid = ::fork();
      if (pid != 0) return pid;
      ::_exit(40);
    }
    return fork_launcher()(shard, attempt, env);
  };
  const auto report = dist::orchestrate(plan_, cfg, launch);
  EXPECT_EQ(report.quarantined, 1u);

  const dist::QuarantineManifest manifest =
      dist::quarantine_manifest(plan_, report);
  ASSERT_EQ(manifest.entries.size(), 1u);
  EXPECT_EQ(manifest.entries[0].begin, plan_.shards[2].begin);
  const auto partial =
      dist::merge_journals(plan_, journal_dir(), &manifest);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.covered,
            plan_.count - (plan_.shards[2].end - plan_.shards[2].begin));
  ASSERT_EQ(partial.missing.size(), 1u);
  EXPECT_EQ(partial.missing[0].first, plan_.shards[2].begin);
  EXPECT_EQ(partial.missing[0].second, plan_.shards[2].end);
  // The partial total is exactly the healthy shards' sum: completing
  // shard 2 out-of-band and re-merging plain must land the full total.
  dist::run_shard(*workload_, plan_, 2, journal_dir(), nullptr);
  const auto full = dist::merge_journals(plan_, journal_dir());
  EXPECT_EQ(full.total, total_);
  EXPECT_EQ(partial.total + (full.total - partial.total), total_);
  // A sealed journal beats its quarantine entry on a re-merge WITH the
  // manifest too — completion out-of-band is not forgotten.
  const auto healed = dist::merge_journals(plan_, journal_dir(), &manifest);
  EXPECT_TRUE(healed.complete());
  EXPECT_EQ(healed.total, total_);
}

TEST_F(OrchestratorTest, ManifestValidationRejectsForeignEntries) {
  dist::QuarantineManifest m;
  m.fingerprint = plan_.fingerprint;
  m.entries.push_back({1, 2, dist::ShardId{9, 9}, "bogus"});
  EXPECT_THROW(dist::merge_journals(plan_, journal_dir(), &m),
               dist::SerializeError);
  dist::QuarantineManifest wrong_plan;
  wrong_plan.fingerprint = dist::ShardId{1, 2};
  EXPECT_THROW(dist::merge_journals(plan_, journal_dir(), &wrong_plan),
               dist::SerializeError);
}

TEST_F(OrchestratorTest, ChaosConfigsAreWellFormed) {
  for (const std::string& s : dist::chaos_scenarios()) {
    const std::string config = dist::chaos_failpoint_config(s, 7, 100);
    if (s == "none") {
      EXPECT_TRUE(config.empty());
    } else {
      // Every non-trivial scenario must parse as a registry config.
      util::FailPointRegistry::instance().configure(config);
      util::FailPointRegistry::instance().reset();
    }
  }
  EXPECT_EQ(dist::chaos_failpoint_config("child-kill", 7, 100),
            "run_shard.index=crash@hit:8");
  EXPECT_THROW(dist::chaos_failpoint_config("no-such-scenario", 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rvt
